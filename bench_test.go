// Benchmarks regenerating the paper's evaluation. One benchmark per table
// or in-text experiment; each runs the relevant engines on a scaled suite
// circuit (scale keeps a -bench=. run in the minutes range — use
// cmd/kbench -scale 1 for the published circuit sizes).
package placement_test

import (
	"testing"

	placement "repro"
	"repro/internal/anneal"
	"repro/internal/bench"
	"repro/internal/gordian"
	"repro/internal/legalize"
	"repro/internal/place"
	"repro/internal/timing"
)

const benchScale = 0.08

// benchCircuit generates one suite circuit at the benchmark scale.
func benchCircuit(name string) *placement.Netlist {
	c := placement.SuiteCircuit{}
	for _, s := range placement.MCNCSuite() {
		if s.Name == name {
			c = s
		}
	}
	return placement.GenerateSuite(c, benchScale, 1998)
}

// BenchmarkTable1 regenerates Table 1's engine runs: every iteration places
// one suite circuit with each engine (the table's columns).
func BenchmarkTable1(b *testing.B) {
	for _, circuit := range []string{"fract", "primary1", "biomed"} {
		base := benchCircuit(circuit)
		b.Run(circuit+"/kraftwerk", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nl := base.Clone()
				if _, err := place.Global(nl, place.Config{}); err != nil {
					b.Fatal(err)
				}
				if _, err := legalize.Legalize(nl, legalize.Options{}); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(nl.HPWL(), "hpwl")
			}
		})
		b.Run(circuit+"/gordian", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nl := base.Clone()
				if _, err := gordian.Place(nl, gordian.Config{}); err != nil {
					b.Fatal(err)
				}
				if _, err := legalize.Legalize(nl, legalize.Options{}); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(nl.HPWL(), "hpwl")
			}
		})
		b.Run(circuit+"/anneal-med", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nl := base.Clone()
				if _, err := anneal.Place(nl, anneal.Config{Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(nl.HPWL(), "hpwl")
			}
		})
		b.Run(circuit+"/anneal-high", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nl := base.Clone()
				if _, err := anneal.Place(nl, anneal.Config{Effort: anneal.High, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(nl.HPWL(), "hpwl")
			}
		})
	}
}

// BenchmarkTable2 regenerates the Table 2 comparison (it derives from the
// same engine runs as Table 1, via the harness).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunTable1(bench.Options{Scale: benchScale, Circuits: []string{"fract"}})
		t2 := bench.Table2From(rows)
		if len(t2) != 1 {
			b.Fatal("missing comparison row")
		}
		b.ReportMetric(t2[0].ImpGord, "impGord%")
	}
}

// BenchmarkTable3 regenerates one timing circuit's Table 3 row: the three
// timing-driven methods.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunTable3(bench.Options{Scale: benchScale, Circuits: []string{"struct"}})
		if len(rows) != 1 {
			b.Fatal("missing timing row")
		}
		b.ReportMetric(rows[0].Ours.With, "ours-ns")
	}
}

// BenchmarkTable4 regenerates the exploitation comparison of Table 4.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunTable3(bench.Options{Scale: benchScale, Circuits: []string{"fract"}})
		t4 := bench.Table4From(rows)
		if len(t4) != 1 {
			b.Fatal("missing exploitation row")
		}
		b.ReportMetric(t4[0].ExpOurs, "ours-expl%")
	}
}

// BenchmarkFastVsStandard regenerates experiment E5 (§6.1): K=1.0 versus
// K=0.2.
func BenchmarkFastVsStandard(b *testing.B) {
	base := benchCircuit("biomed")
	b.Run("standard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nl := base.Clone()
			if _, err := place.Global(nl, place.Config{K: 0.2}); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(nl.HPWL(), "hpwl")
		}
	})
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nl := base.Clone()
			if _, err := place.Global(nl, place.Config{K: 1.0}); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(nl.HPWL(), "hpwl")
		}
	})
}

// BenchmarkTradeoff regenerates experiment E6 (§5): the two-phase
// meet-timing-requirements flow with its tradeoff curve.
func BenchmarkTradeoff(b *testing.B) {
	base := benchCircuit("struct")
	params := timing.Calibrated(base)
	for i := 0; i < b.N; i++ {
		nl := base.Clone()
		probe := nl.Clone()
		if _, err := place.Global(probe, place.Config{}); err != nil {
			b.Fatal(err)
		}
		unopt := timing.NewAnalyzer(probe, params).Analyze().MaxDelay
		req := unopt * 0.95
		res, err := timing.MeetRequirement(nl, place.Config{}, params, req, 60)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Curve)), "curve-points")
	}
}

// Micro-benchmarks of the core machinery.

func BenchmarkPlacementTransformation(b *testing.B) {
	nl := benchCircuit("biomed")
	p := place.New(nl, place.Config{})
	if err := p.Initialize(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLegalize(b *testing.B) {
	nl := benchCircuit("biomed")
	if _, err := place.Global(nl, place.Config{}); err != nil {
		b.Fatal(err)
	}
	snap := nl.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nl.Restore(snap)
		if _, err := legalize.Legalize(nl, legalize.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTimingAnalysis(b *testing.B) {
	nl := benchCircuit("biomed")
	placement.ScatterRandom(nl, 1)
	a := timing.NewAnalyzer(nl, timing.Calibrated(nl))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := a.Analyze()
		if rep.MaxDelay <= 0 {
			b.Fatal("no delay")
		}
	}
}
