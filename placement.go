// Package placement is a generic global placement and floorplanning
// library — a from-scratch reproduction of H. Eisenmann and F. M. Johannes,
// "Generic Global Placement and Floorplanning", DAC 1998 (the original
// Kraftwerk force-directed analytical placer).
//
// The core algorithm extends the classic quadratic (spring) wire-length
// formulation with additional forces derived from the cell-density
// deviation over the placement area: Poisson's equation turns the density
// into a conservative force field, and each placement transformation
// perturbs the equilibrium C·p + d + e = 0 by the accumulated field forces.
// No hard constraint is ever imposed, which lets one engine handle standard
// cell placement, mixed block/cell floorplanning, timing optimization with
// guaranteed requirement meeting, congestion- and heat-driven placement,
// and incremental ECO.
//
// Quick start:
//
//	b := placement.NewBuilder("demo", placement.NewRegion(10, 1, 50))
//	b.AddPad("in", placement.Pt(0, 5))
//	b.AddCell("u1", 2, 1)
//	b.Connect("n1", "in", "u1")
//	nl, _ := b.Build()
//	placement.Global(nl, placement.Config{})
//	placement.Legalize(nl, placement.LegalizeOptions{})
//	fmt.Println(nl.HPWL())
//
// The subpackage structure mirrors the paper: the quadratic system (§2),
// the density force field (§3), the iterative algorithm (§4), and the §5
// applications each live in their own internal package; this package is the
// public surface.
package placement

import (
	"context"
	"io"

	"repro/internal/anneal"
	"repro/internal/density"
	"repro/internal/eco"
	"repro/internal/fft"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/gordian"
	"repro/internal/legalize"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/obsv"
	"repro/internal/place"
	"repro/internal/qp"
	"repro/internal/serve"
	"repro/internal/sparse"
	"repro/internal/timing"
)

// Geometry primitives.
type (
	// Point is a position in layout units.
	Point = geom.Point
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
	// Region is the placement area (outline plus standard-cell rows).
	Region = geom.Region
)

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// NewRegion builds a placement region of nRows rows of the given height and
// width.
func NewRegion(nRows int, rowHeight, width float64) Region {
	return geom.NewRegion(nRows, rowHeight, width)
}

// Netlist model.
type (
	// Netlist is a complete placement problem.
	Netlist = netlist.Netlist
	// Cell is a placeable element (standard cell, macro block, or pad).
	Cell = netlist.Cell
	// Net connects pins.
	Net = netlist.Net
	// Pin is one connection point.
	Pin = netlist.Pin
	// Builder assembles netlists by name.
	Builder = netlist.Builder
	// Stats summarizes a netlist.
	Stats = netlist.Stats
	// Placement is a positions snapshot.
	Placement = netlist.Placement
)

// Pin directions.
const (
	Input  = netlist.Input
	Output = netlist.Output
	Inout  = netlist.Inout
)

// NewBuilder starts a netlist for the given region.
func NewBuilder(name string, region Region) *Builder {
	return netlist.NewBuilder(name, region)
}

// ReadNetlist parses the text interchange format.
func ReadNetlist(r io.Reader) (*Netlist, error) { return netlist.Read(r) }

// WriteNetlist serializes a netlist in the text interchange format.
func WriteNetlist(w io.Writer, nl *Netlist) error { return netlist.Write(w, nl) }

// LoadBookshelf reads a GSRC/ISPD Bookshelf design from its .aux file.
func LoadBookshelf(auxPath string) (*Netlist, error) { return netlist.LoadBookshelf(auxPath) }

// ReadBookshelf assembles a netlist from Bookshelf streams (scl may be
// nil).
func ReadBookshelf(name string, nodes, nets, pl, scl io.Reader) (*Netlist, error) {
	return netlist.ReadBookshelf(name, nodes, nets, pl, scl)
}

// WriteBookshelf emits the design as the four Bookshelf streams.
func WriteBookshelf(nl *Netlist, nodes, nets, pl, scl io.Writer) error {
	return netlist.WriteBookshelf(nl, nodes, nets, pl, scl)
}

// ComputeStats gathers netlist statistics.
func ComputeStats(nl *Netlist) Stats { return netlist.ComputeStats(nl) }

// Core Kraftwerk engine (§4).
type (
	// Config controls the iterative force-directed algorithm. The zero
	// value is the paper's standard mode (K = 0.2).
	Config = place.Config
	// Result summarizes a global placement run.
	Result = place.Result
	// Placer exposes stepwise control over the iteration.
	Placer = place.Placer
	// IterStats describes one placement transformation.
	IterStats = place.IterStats
	// PhaseTotals accumulates per-phase time over a run.
	PhaseTotals = place.PhaseTotals
	// StopReason says why a run ended (one of the Stop* constants).
	StopReason = place.StopReason
)

// Stop reasons a Result can report. Criterion, stagnation and max-iter
// end a run on the algorithm's own terms; cancelled and deadline are
// externally imposed via GlobalContext / Placer.Run and leave the best
// placement so far in the netlist with a nil error.
const (
	StopCriterion  = place.StopCriterion
	StopStagnation = place.StopStagnation
	StopMaxIter    = place.StopMaxIter
	StopCancelled  = place.StopCancelled
	StopDeadline   = place.StopDeadline
)

// Solver engine knobs (Config.CG and Config.FieldMethod).
type (
	// CGOptions configures the conjugate-gradient linear solver.
	CGOptions = sparse.CGOptions
	// Preconditioner selects the CG preconditioner.
	Preconditioner = sparse.Preconditioner
	// FieldMethod selects how the density force field (eq. 9) is
	// evaluated.
	FieldMethod = density.Method
)

// Preconditioner choices for CGOptions.Precond. PrecondAuto picks IC0 for
// systems large enough to amortize the factorization and Jacobi otherwise.
const (
	PrecondJacobi = sparse.Jacobi
	PrecondIC0    = sparse.IC0
	PrecondAuto   = sparse.Auto
)

// Field-method choices for Config.FieldMethod. FieldRealFFT evaluates the
// same convolution as FieldFFT through real-input transforms on half
// spectra, roughly halving transform work.
const (
	FieldAuto    = density.Auto
	FieldDirect  = density.Direct
	FieldFFT     = density.FFT
	FieldRealFFT = density.RealFFT
)

// ParsePreconditioner maps "jacobi", "ic0", "auto" (or "") to a
// Preconditioner; ok is false for anything else.
func ParsePreconditioner(s string) (Preconditioner, bool) { return sparse.ParsePreconditioner(s) }

// ParseFieldMethod maps "auto" (or ""), "direct", "fft", "rfft" to a
// FieldMethod; ok is false for anything else.
func ParseFieldMethod(s string) (FieldMethod, bool) { return density.ParseMethod(s) }

// NetModel selects how a multi-pin net maps onto two-pin springs
// (Config.NetModel).
type NetModel = qp.NetModel

// Net-model choices for Config.NetModel. NetClique is the paper's §2.1
// model; NetStar and NetHybrid are ablation alternatives for wide nets.
const (
	NetClique = qp.Clique
	NetStar   = qp.Star
	NetHybrid = qp.Hybrid
)

// ParseNetModel maps "clique" (or ""), "star", "hybrid" to a NetModel; ok
// is false for anything else.
func ParseNetModel(s string) (NetModel, bool) { return qp.ParseNetModel(s) }

// Global runs force-directed global placement on nl (§4.2), mutating cell
// positions in place.
func Global(nl *Netlist, cfg Config) (Result, error) { return place.Global(nl, cfg) }

// GlobalContext is Global with step-granular cancellation: when ctx is
// cancelled or its deadline expires, the run stops at the next placement
// transformation and returns the best placement so far with
// Result.StopReason set to StopCancelled or StopDeadline — not an error,
// since any prefix of the iteration is a valid placement.
func GlobalContext(ctx context.Context, nl *Netlist, cfg Config) (Result, error) {
	return place.GlobalContext(ctx, nl, cfg)
}

// NewPlacer prepares a stepwise placer (call Initialize, then Step).
func NewPlacer(nl *Netlist, cfg Config) *Placer { return place.New(nl, cfg) }

// Checkpoint / resume: a Placer's full iteration state (positions,
// iteration counter, accumulated forces, net weights, solver warm state)
// serializes to a versioned JSON snapshot; resuming continues
// bit-compatibly with a run that was never interrupted.
type Checkpoint = place.Checkpoint

// CheckpointVersion is the snapshot schema version written by
// Placer.Checkpoint.
const CheckpointVersion = place.CheckpointVersion

// DecodeCheckpoint reads and validates a snapshot; truncated or corrupted
// input errors, never panics.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) { return place.DecodeCheckpoint(r) }

// Resume reconstructs a warm placer from a snapshot taken by
// Placer.Checkpoint on the same design under the same Config.
func Resume(nl *Netlist, cfg Config, ck *Checkpoint) (*Placer, error) {
	return place.Resume(nl, cfg, ck)
}

// Serving layer: a bounded job queue over a placement worker pool with
// backpressure (ErrJobQueueFull), per-job deadlines that degrade
// gracefully to the best placement so far, cancellation, panic isolation,
// and checkpoint-on-drain shutdown. cmd/kserved is the HTTP daemon over
// the same types.
type (
	// ServeConfig sizes a placement Server.
	ServeConfig = serve.Config
	// Server is the placement service.
	Server = serve.Server
	// Job is one submitted placement job.
	Job = serve.Job
	// JobRequest describes a job to submit.
	JobRequest = serve.JobRequest
	// JobStatus is a point-in-time job snapshot.
	JobStatus = serve.Status
	// JobState is a job's lifecycle position.
	JobState = serve.State
)

// Job lifecycle states.
const (
	JobQueued    = serve.StateQueued
	JobRunning   = serve.StateRunning
	JobDone      = serve.StateDone
	JobCancelled = serve.StateCancelled
	JobFailed    = serve.StateFailed
)

// Serving errors.
var (
	// ErrJobQueueFull is returned by Server.Submit under backpressure.
	ErrJobQueueFull = serve.ErrQueueFull
	// ErrServerDraining is returned by Server.Submit during shutdown.
	ErrServerDraining = serve.ErrDraining
)

// NewServer starts a placement service; call Server.Shutdown to drain it.
// Server.Handler exposes the HTTP API kserved serves.
func NewServer(cfg ServeConfig) *Server { return serve.New(cfg) }

// Observability (spans, metrics, run traces). Set Config.Spans /
// Config.Metrics / Config.OnIteration to observe a run; all sinks are
// nil-safe and cost nothing when absent.
type (
	// Spans aggregates named phase timings (count, total, min, max).
	Spans = obsv.Spans
	// PhaseStat is one phase's aggregate in a Spans snapshot.
	PhaseStat = obsv.PhaseStat
	// MetricsRegistry holds counters, gauges, and histograms and encodes
	// them as Prometheus text or JSON; it is an http.Handler.
	MetricsRegistry = obsv.Registry
	// TraceWriter streams JSONL run-trace records.
	TraceWriter = obsv.TraceWriter
)

// NewSpans returns an empty phase-span aggregator.
func NewSpans() *Spans { return obsv.NewSpans() }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obsv.NewRegistry() }

// NewTraceWriter wraps w as a JSONL run-trace sink.
func NewTraceWriter(w io.Writer) *TraceWriter { return obsv.NewTraceWriter(w) }

// OpenTrace creates (or truncates) a JSONL run-trace file.
func OpenTrace(path string) (*TraceWriter, error) { return obsv.OpenTrace(path) }

// EnableSolverMetrics registers the solver-level instruments (CG solves,
// iterations, residuals; density-field and FFT timings) on reg. Call once
// before placing; pass the same registry as Config.Metrics for the
// placement-level instruments.
func EnableSolverMetrics(reg *MetricsRegistry) {
	sparse.EnableMetrics(reg)
	density.EnableMetrics(reg)
	fft.EnableMetrics(reg)
}

// Legalization / final placement (the Domino role, §6.1).
type (
	// LegalizeOptions controls legalization and detailed improvement.
	LegalizeOptions = legalize.Options
	// LegalizeResult summarizes a legalization.
	LegalizeResult = legalize.Result
)

// Legalize snaps a global placement into legal rows and runs the detailed
// improvement pass.
func Legalize(nl *Netlist, opts LegalizeOptions) (LegalizeResult, error) {
	return legalize.Legalize(nl, opts)
}

// Timing (§5).
type (
	// TimingParams carries the electrical constants (defaults are the
	// paper's 242 pF/m and 25.5 kΩ/m).
	TimingParams = timing.Params
	// TimingReport is one longest-path analysis.
	TimingReport = timing.Report
	// TimingResult summarizes a timing-driven placement.
	TimingResult = timing.DrivenResult
	// MeetResult summarizes a meet-requirements run, including the
	// timing/area tradeoff curve.
	MeetResult = timing.MeetResult
	// TradeoffPoint is one step of the tradeoff curve.
	TradeoffPoint = timing.TradeoffPoint
)

// DefaultTimingParams returns the paper's timing constants.
func DefaultTimingParams() TimingParams { return timing.DefaultParams() }

// CalibratedTimingParams returns the paper's constants with the layout-unit
// size chosen so the chip spans a fixed physical size (≈6 cm): wire delay
// then matters at every circuit scale, as on the paper's real designs.
func CalibratedTimingParams(nl *Netlist) TimingParams { return timing.Calibrated(nl) }

// AnalyzeTiming runs a longest-path analysis at the current placement.
func AnalyzeTiming(nl *Netlist, p TimingParams) TimingReport {
	return timing.NewAnalyzer(nl, p).Analyze()
}

// TimingLowerBound returns the zero-wire-length longest path (§6.2).
func TimingLowerBound(nl *Netlist, p TimingParams) float64 {
	return timing.LowerBound(nl, p)
}

// WriteTimingReport renders a human-readable timing report (summary,
// critical path, slack histogram).
func WriteTimingReport(w io.Writer, nl *Netlist, p TimingParams, rep TimingReport) {
	timing.WriteReport(w, nl, p, rep)
}

// GlobalTimingDriven places nl with the iterative criticality-based net
// weighting of §5.
func GlobalTimingDriven(nl *Netlist, cfg Config, p TimingParams) (TimingResult, error) {
	return timing.PlaceDriven(nl, cfg, p, 0)
}

// MeetTiming runs the two-phase flow of §5: an area-optimized placement
// followed by weight-adapted transformations until the longest path drops
// under req (seconds). The returned curve is the timing/area tradeoff.
func MeetTiming(nl *Netlist, cfg Config, p TimingParams, req float64) (MeetResult, error) {
	return timing.MeetRequirement(nl, cfg, p, req, 0)
}

// Floorplanning (§5).
type (
	// FloorplanConfig controls mixed block/cell floorplanning.
	FloorplanConfig = floorplan.Config
	// FloorplanResult summarizes a floorplanning run.
	FloorplanResult = floorplan.Result
)

// Floorplan runs mixed block/cell placement with flexible-block reshaping
// and legalization.
func Floorplan(nl *Netlist, cfg FloorplanConfig) (FloorplanResult, error) {
	return floorplan.Run(nl, cfg)
}

// ECO (§5).
type (
	// ECOChange is one netlist edit.
	ECOChange = eco.Change
	// ECOResize is a gate-resizing edit.
	ECOResize = eco.Resize
	// ECOResult summarizes an incremental placement.
	ECOResult = eco.Result
)

// ApplyECO performs netlist edits on a placed design, seeding new cells
// near their connectivity.
func ApplyECO(nl *Netlist, changes []ECOChange) ([]int, error) {
	return eco.Apply(nl, changes)
}

// ReplaceECO incrementally re-places after edits with density-deviation
// forces only; preEdit is the snapshot from before ApplyECO.
func ReplaceECO(nl *Netlist, preEdit Placement, cfg Config) (ECOResult, error) {
	return eco.Replace(nl, preEdit, cfg)
}

// Comparison engines (§6 baselines).
type (
	// AnnealConfig controls the TimberWolf-style annealer.
	AnnealConfig = anneal.Config
	// AnnealResult summarizes an annealing run.
	AnnealResult = anneal.Result
	// GordianConfig controls the GORDIAN-style placer.
	GordianConfig = gordian.Config
	// GordianResult summarizes a GORDIAN run.
	GordianResult = gordian.Result
)

// Annealing effort presets.
const (
	AnnealMedium = anneal.Medium
	AnnealHigh   = anneal.High
)

// GlobalAnneal places with the simulated-annealing baseline.
func GlobalAnneal(nl *Netlist, cfg AnnealConfig) (AnnealResult, error) {
	return anneal.Place(nl, cfg)
}

// GlobalGordian places with the recursive-partitioning baseline.
func GlobalGordian(nl *Netlist, cfg GordianConfig) (GordianResult, error) {
	return gordian.Place(nl, cfg)
}

// Synthetic benchmark generation (the MCNC-suite substitution; DESIGN.md §3).
type (
	// GenConfig describes a synthetic circuit.
	GenConfig = netgen.Config
	// SuiteCircuit identifies a circuit of the paper's Table 1 suite.
	SuiteCircuit = netgen.Circuit
)

// MCNCSuite lists the paper's nine benchmark circuits.
func MCNCSuite() []SuiteCircuit { return netgen.MCNCSuite }

// Generate builds a synthetic circuit.
func Generate(cfg GenConfig) *Netlist { return netgen.Generate(cfg) }

// GenerateSuite builds one suite circuit at the given scale.
func GenerateSuite(c SuiteCircuit, scale float64, seed int64) *Netlist {
	return netgen.GenerateSuite(c, scale, seed)
}

// ScatterRandom places movable cells uniformly at random (baseline start).
func ScatterRandom(nl *Netlist, seed int64) { netgen.ScatterRandom(nl, seed) }
