package placement_test

import (
	"fmt"

	placement "repro"
)

// ExampleGlobal places a tiny chain and reports that the flow produced a
// legal placement.
func ExampleGlobal() {
	b := placement.NewBuilder("example", placement.NewRegion(4, 1, 20))
	b.AddPad("in", placement.Pt(0, 2))
	b.AddPad("out", placement.Pt(20, 2))
	for i := 0; i < 10; i++ {
		b.AddCell(fmt.Sprintf("u%d", i), 1, 1)
	}
	b.Connect("n_in", "in", "u0")
	for i := 0; i+1 < 10; i++ {
		b.Connect(fmt.Sprintf("n%d", i), fmt.Sprintf("u%d", i), fmt.Sprintf("u%d", i+1))
	}
	b.Connect("n_out", "u9", "out")
	nl, err := b.Build()
	if err != nil {
		panic(err)
	}

	if _, err := placement.Global(nl, placement.Config{}); err != nil {
		panic(err)
	}
	if _, err := placement.Legalize(nl, placement.LegalizeOptions{}); err != nil {
		panic(err)
	}
	fmt.Printf("legal: %v\n", nl.OverlapArea() < 1e-9)
	// Output: legal: true
}

// ExampleComputeStats shows the suite-circuit generator and its
// statistics.
func ExampleComputeStats() {
	suite := placement.MCNCSuite()
	nl := placement.GenerateSuite(suite[0], 1.0, 7) // fract at full scale
	s := placement.ComputeStats(nl)
	fmt.Printf("%s: %d cells, %d nets, %d rows\n", s.Name, s.Cells, s.Nets, s.Rows)
	// Output: fract: 125 cells, 147 nets, 6 rows
}

// ExampleAnalyzeTiming runs a longest-path analysis on a placed design.
func ExampleAnalyzeTiming() {
	b := placement.NewBuilder("t", placement.NewRegion(1, 1, 10))
	b.AddPad("in", placement.Pt(0, 0.5))
	b.AddPad("out", placement.Pt(10, 0.5))
	b.AddCell("g", 1, 1)
	b.SetCellTiming("g", 2e-9, false)
	b.Connect("n1", "in", "g")
	b.Connect("n2", "g", "out")
	nl, err := b.Build()
	if err != nil {
		panic(err)
	}
	nl.Cells[2].Pos = placement.Pt(5, 0.5)

	rep := placement.AnalyzeTiming(nl, placement.DefaultTimingParams())
	fmt.Printf("gate-dominated: %v\n", rep.MaxDelay >= 2e-9)
	// Output: gate-dominated: true
}
