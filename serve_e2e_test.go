package placement_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	placement "repro"
)

// e2eNetlist builds a small design and its text-interchange form through
// the public facade only.
func e2eNetlist(t *testing.T, cells int, seed int64) (*placement.Netlist, string) {
	t.Helper()
	nl := placement.Generate(placement.GenConfig{
		Name: "e2e", Cells: cells, Nets: cells + cells/4, Rows: 8, Seed: seed,
	})
	var buf bytes.Buffer
	if err := placement.WriteNetlist(&buf, nl); err != nil {
		t.Fatal(err)
	}
	return nl, buf.String()
}

// TestFacadeServeEndToEnd drives the serving layer exactly as an external
// client would: construct a Server through the facade, speak HTTP to its
// Handler, and read the placed netlist back with the facade's netlist IO.
func TestFacadeServeEndToEnd(t *testing.T) {
	srv := placement.NewServer(placement.ServeConfig{Workers: 2, QueueDepth: 8})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, text := e2eNetlist(t, 150, 11)
	body, _ := json.Marshal(map[string]any{"netlist": text, "max_iter": 60})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202", resp.StatusCode)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var st placement.JobStatus
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", sub.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != placement.JobDone {
		t.Fatalf("state = %s (error %q), want done", st.State, st.Error)
	}
	if st.StopReason != placement.StopCriterion && st.StopReason != placement.StopMaxIter && st.StopReason != placement.StopStagnation {
		t.Errorf("stop reason %q is not an algorithmic stop", st.StopReason)
	}
	if !(st.HPWL > 0) || math.IsInf(st.HPWL, 0) {
		t.Errorf("HPWL = %v, want finite positive", st.HPWL)
	}

	r, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result: got %d, want 200", r.StatusCode)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	placed, err := placement.ReadNetlist(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("result is not a readable netlist: %v", err)
	}
	if got := placement.ComputeStats(placed).Cells; got != 150 {
		t.Errorf("result has %d cells, want 150", got)
	}
}

// TestFacadeCheckpointResume interrupts a placement run, snapshots it via
// the facade's checkpoint API, and verifies a resumed run lands on the
// same final wire length as one that was never interrupted.
func TestFacadeCheckpointResume(t *testing.T) {
	cfg := placement.Config{MaxIter: 40, NoTrace: true}

	ref, _ := e2eNetlist(t, 120, 5)
	want, err := placement.Global(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}

	nl, _ := e2eNetlist(t, 120, 5)
	ctx, cancel := context.WithCancel(context.Background())
	run := cfg
	run.OnIteration = func(s placement.IterStats) {
		if s.Iter == 7 {
			cancel()
		}
	}
	res, err := placement.GlobalContext(ctx, nl, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != placement.StopCancelled {
		t.Fatalf("stop reason = %q, want %q", res.StopReason, placement.StopCancelled)
	}

	// The cancelled run left a warm Placer behind only inside Global; to
	// checkpoint through the facade, drive the stepwise API instead.
	nl2, _ := e2eNetlist(t, 120, 5)
	p := placement.NewPlacer(nl2, cfg)
	if err := p.Initialize(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := p.Checkpoint().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	ck, err := placement.DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Version != placement.CheckpointVersion {
		t.Fatalf("checkpoint version %d, want %d", ck.Version, placement.CheckpointVersion)
	}

	nl3, _ := e2eNetlist(t, 120, 5)
	rp, err := placement.Resume(nl3, cfg, ck)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.HPWL != want.HPWL {
		t.Errorf("resumed HPWL = %v, uninterrupted = %v; want bit-identical", got.HPWL, want.HPWL)
	}
	if got.Iterations != want.Iterations {
		t.Errorf("resumed iterations = %d, uninterrupted = %d", got.Iterations, want.Iterations)
	}
}

// TestFacadeServeBackpressure checks ErrJobQueueFull reaches facade users
// both as a Go error and as HTTP 429.
func TestFacadeServeBackpressure(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 4)
	block := placement.Config{MaxIter: 50, NoTrace: true}
	block.BeforeTransform = func(int, *placement.Placer) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate
	}
	srv := placement.NewServer(placement.ServeConfig{Workers: 1, QueueDepth: 1})
	defer func() {
		close(gate)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	nl, _ := e2eNetlist(t, 60, 9)
	if _, err := srv.Submit(placement.JobRequest{Netlist: nl, Config: block}); err != nil {
		t.Fatal(err)
	}
	<-started // the worker is now wedged inside the first job
	nl2, _ := e2eNetlist(t, 60, 10)
	if _, err := srv.Submit(placement.JobRequest{Netlist: nl2, Config: placement.Config{NoTrace: true}}); err != nil {
		t.Fatal(err) // occupies the single queue slot
	}
	nl3, _ := e2eNetlist(t, 60, 12)
	if _, err := srv.Submit(placement.JobRequest{Netlist: nl3, Config: placement.Config{NoTrace: true}}); err != placement.ErrJobQueueFull {
		t.Fatalf("third submit: err = %v, want ErrJobQueueFull", err)
	}
}
