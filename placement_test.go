package placement_test

import (
	"bytes"
	"strings"
	"testing"

	placement "repro"
)

// TestPublicAPIQuickstart walks the README's quickstart path end to end
// through the public facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	b := placement.NewBuilder("api", placement.NewRegion(6, 1, 30))
	b.AddPad("in", placement.Pt(0, 3))
	b.AddPad("out", placement.Pt(30, 3))
	for i := 0; i < 30; i++ {
		b.AddCell(name(i), 1.5, 1)
	}
	b.Connect("nin", "in", name(0), name(1))
	for i := 0; i+3 < 30; i++ {
		b.Connect("n"+name(i), name(i), name(i+2), name(i+3))
	}
	b.Connect("nout", name(29), "out")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	res, err := placement.Global(nl, placement.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations ran")
	}
	lres, err := placement.Legalize(nl, placement.LegalizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if nl.OverlapArea() > 1e-6 {
		t.Errorf("overlap after public-API flow: %v", nl.OverlapArea())
	}
	if lres.HPWLAfter <= 0 {
		t.Error("no wire length reported")
	}
}

func name(i int) string { return string(rune('a'+i/10)) + string(rune('0'+i%10)) }

func TestPublicAPINetlistIO(t *testing.T) {
	nl := placement.Generate(placement.GenConfig{
		Name: "io", Cells: 50, Nets: 60, Rows: 4, Seed: 3,
	})
	var buf bytes.Buffer
	if err := placement.WriteNetlist(&buf, nl); err != nil {
		t.Fatal(err)
	}
	got, err := placement.ReadNetlist(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if placement.ComputeStats(got).Cells != 50 {
		t.Error("round trip lost cells")
	}
}

func TestPublicAPISuite(t *testing.T) {
	suite := placement.MCNCSuite()
	if len(suite) != 9 {
		t.Fatalf("suite size %d", len(suite))
	}
	nl := placement.GenerateSuite(suite[0], 1, 1)
	if placement.ComputeStats(nl).Cells != suite[0].Cells {
		t.Error("suite generation mismatch")
	}
}

func TestPublicAPITimingFlow(t *testing.T) {
	nl := placement.Generate(placement.GenConfig{
		Name: "tapi", Cells: 150, Nets: 200, Rows: 6, Seed: 5,
	})
	params := placement.CalibratedTimingParams(nl)
	res, err := placement.GlobalTimingDriven(nl, placement.Config{MaxIter: 40}, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.After <= 0 || res.Before <= 0 {
		t.Fatalf("bad timing result %+v", res)
	}
	rep := placement.AnalyzeTiming(nl, params)
	if rep.MaxDelay <= 0 {
		t.Error("analysis returned no delay")
	}
	if lb := placement.TimingLowerBound(nl, params); lb > rep.MaxDelay {
		t.Error("lower bound above actual")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	nl := placement.Generate(placement.GenConfig{
		Name: "base", Cells: 100, Nets: 130, Rows: 4, Seed: 7,
	})
	if _, err := placement.GlobalGordian(nl.Clone(), placement.GordianConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := placement.GlobalAnneal(nl.Clone(), placement.AnnealConfig{Effort: placement.AnnealMedium}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIECO(t *testing.T) {
	nl := placement.Generate(placement.GenConfig{
		Name: "ecoapi", Cells: 120, Nets: 160, Rows: 6, Seed: 9,
	})
	if _, err := placement.Global(nl, placement.Config{MaxIter: 40}); err != nil {
		t.Fatal(err)
	}
	pre := nl.Snapshot()
	newIdx := len(nl.Cells)
	added, err := placement.ApplyECO(nl, []placement.ECOChange{
		{RemoveNet: -1, AddCell: &placement.Cell{Name: "new", W: 2, H: 1}},
		{RemoveNet: -1, AddNet: &placement.Net{Name: "nn", Pins: []placement.Pin{
			{Cell: newIdx, Dir: placement.Output}, {Cell: 5, Dir: placement.Input},
		}}},
	})
	if err != nil || len(added) != 1 {
		t.Fatalf("ApplyECO: %v %v", added, err)
	}
	res, err := placement.ReplaceECO(nl, pre, placement.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDisplacement > nl.Region.W() {
		t.Error("ECO displaced cells across the chip")
	}
}
