// Quickstart: build a small netlist through the public API, run global
// placement and legalization, and print the wire length and an ASCII plot.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/visual"
)

func main() {
	log.SetFlags(0)

	// A 4-row, 40-unit-wide region with two pads and a small adder-ish
	// cluster of cells.
	b := placement.NewBuilder("quickstart", placement.NewRegion(4, 1, 40))
	b.AddPad("in0", placement.Pt(0, 1))
	b.AddPad("in1", placement.Pt(0, 3))
	b.AddPad("out", placement.Pt(40, 2))
	for i := 0; i < 24; i++ {
		b.AddCell(fmt.Sprintf("u%d", i), 1.5, 1)
	}
	// A ripple of 2-input gates from the inputs to the output.
	b.Connect("n_in0", "in0", "u0", "u1")
	b.Connect("n_in1", "in1", "u2", "u3")
	for i := 0; i+4 < 24; i++ {
		b.Connect(fmt.Sprintf("n%d", i), fmt.Sprintf("u%d", i), fmt.Sprintf("u%d", i+2), fmt.Sprintf("u%d", i+4))
	}
	b.Connect("n_out", "u23", "out")

	nl, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(placement.ComputeStats(nl))

	// Global placement: the paper's standard mode (K = 0.2).
	res, err := placement.Global(nl, placement.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global placement: %d iterations, HPWL %.1f\n", res.Iterations, nl.HPWL())

	// Final placement: row legalization + detailed improvement.
	lres, err := placement.Legalize(nl, placement.LegalizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legalized: HPWL %.1f (overlap %.3f, %d improving swaps)\n",
		nl.HPWL(), nl.OverlapArea(), lres.Swaps)

	visual.Plot(os.Stdout, nl, 80, 12)
}
