// ECO: incremental placement after a netlist change (§5). A converged
// placement absorbs a burst of new gates through density-deviation forces
// alone: "the placement of cells relative to each other is preserved" and
// the edit results in only small changes.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	nl := placement.Generate(placement.GenConfig{
		Name:  "eco-demo",
		Cells: 500,
		Nets:  650,
		Rows:  10,
		Seed:  13,
	})
	if _, err := placement.Global(nl, placement.Config{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged placement: HPWL %.1f\n", nl.HPWL())
	pre := nl.Snapshot()

	// Logic synthesis hands us a patch: eight new buffers hanging off two
	// existing cells, one gate resized, one net gone.
	base := len(nl.Cells)
	var changes []placement.ECOChange
	for i := 0; i < 8; i++ {
		changes = append(changes, placement.ECOChange{
			RemoveNet: -1,
			AddCell:   &placement.Cell{Name: fmt.Sprintf("buf%d", i), W: 2, H: 1},
		})
	}
	for i := 0; i < 8; i++ {
		changes = append(changes, placement.ECOChange{
			RemoveNet: -1,
			AddNet: &placement.Net{
				Name: fmt.Sprintf("nbuf%d", i),
				Pins: []placement.Pin{
					{Cell: base + i, Dir: placement.Output},
					{Cell: 20 + i, Dir: placement.Input},
				},
			},
		})
	}
	changes = append(changes,
		placement.ECOChange{RemoveNet: -1, ResizeCell: &placement.ECOResize{Index: 5, Factor: 1.4}},
		placement.ECOChange{RemoveNet: 3},
	)

	added, err := placement.ApplyECO(nl, changes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied ECO: %d new cells, 1 resize, 1 net removed\n", len(added))

	res, err := placement.ReplaceECO(nl, pre, placement.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental re-place: HPWL %.1f -> %.1f\n", res.HPWLBefore, res.HPWLAfter)
	fmt.Printf("pre-existing cells moved: mean %.2f units, max %.2f units\n",
		res.TotalDisplacement/float64(len(pre)), res.MaxDisplacement)
	fmt.Printf("(chip is %.0f x %.0f units — the change stayed local)\n",
		nl.Region.W(), nl.Region.H())
}
