// Congestion: congestion-driven placement (§5). A routing estimation runs
// before each placement transformation; its overflow map blends into the
// density D(x,y), so "the placement and the congestion map converge
// simultaneously". The example compares plain and congestion-driven runs
// and renders the usage maps.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/density"
	"repro/internal/route"
	"repro/internal/visual"
)

func main() {
	log.SetFlags(0)

	gen := placement.GenConfig{
		Name:  "congestion-demo",
		Cells: 500,
		Nets:  700,
		Rows:  12,
		Seed:  17,
	}

	// Plain run.
	plain := placement.Generate(gen)
	if _, err := placement.Global(plain, placement.Config{MaxIter: 80}); err != nil {
		log.Fatal(err)
	}
	plainMap := route.Estimate(plain, 48, 12, 0)
	cap := plainMap.Capacity / (plainMap.BinW * plainMap.BinH)

	// Congestion-driven run: overflowing bins read as over-dense. The
	// routing capacity is anchored to the plain run so both runs face the
	// same resource budget.
	driven := placement.Generate(gen)
	cfg := placement.Config{MaxIter: 80, ExtraDemand: func(g *density.Grid) []float64 {
		m := route.Estimate(driven, g.NX, g.NY, cap)
		return m.ExtraDemand(g, 1)
	}}
	if _, err := placement.Global(driven, cfg); err != nil {
		log.Fatal(err)
	}
	drivenMap := route.Estimate(driven, 48, 12, cap)

	fmt.Printf("plain:  HPWL %.1f, peak congestion %.2f, overflow %.3f\n",
		plain.HPWL(), plainMap.MaxCongestion(), plainMap.Overflow())
	fmt.Printf("driven: HPWL %.1f, peak congestion %.2f, overflow %.3f\n",
		driven.HPWL(), drivenMap.MaxCongestion(), drivenMap.Overflow())

	fmt.Println("\nplain routing usage:")
	visual.Heat(os.Stdout, plainMap.Usage, plainMap.NX, plainMap.NY)
	fmt.Println("congestion-driven routing usage:")
	visual.Heat(os.Stdout, drivenMap.Usage, drivenMap.NX, drivenMap.NY)
}
