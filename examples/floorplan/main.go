// Floorplan: mixed block/cell placement — the paper's flagship claim is
// that Kraftwerk handles big blocks and small cells together "without
// treating blocks and cells differently" (§5). Four macro blocks and a sea
// of standard cells are placed by the same force-directed loop; flexible
// blocks reshape toward their connectivity, and legalization produces a
// non-overlapping floorplan.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/visual"
)

func main() {
	log.SetFlags(0)

	nl := placement.Generate(placement.GenConfig{
		Name:   "floorplan-demo",
		Cells:  400,
		Nets:   520,
		Rows:   30,
		Blocks: 4,
		Seed:   7,
	})
	fmt.Println(placement.ComputeStats(nl))

	res, err := placement.Floorplan(nl, placement.FloorplanConfig{
		Place: placement.Config{MaxIter: 120},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("floorplanned %d blocks (%d reshapes) in %d global iterations\n",
		res.Blocks, res.Reshapes, res.Place.Iterations)
	fmt.Printf("HPWL %.1f, residual overlap %.4f\n", res.HPWL, nl.OverlapArea())

	fmt.Println("\nfinal floorplan ('#' = macro blocks, digits = cell density):")
	visual.Plot(os.Stdout, nl, 100, 20)
}
