// Thermal: heat-driven placement (§5). "By replacing the congestion map
// with a heat map we can use the same approach to avoid hot spots in the
// layout": per-cell power builds a temperature map (steady-state diffusion
// with the chip boundary as heat sink), hot bins blend into the density
// D(x,y), and the force field carries the hot cells apart. The example
// compares peak temperature with and without heat-driven forces.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/density"
	"repro/internal/thermal"
	"repro/internal/visual"
)

func main() {
	log.SetFlags(0)

	gen := placement.GenConfig{
		Name:  "thermal-demo",
		Cells: 400,
		Nets:  520,
		Rows:  12,
		Seed:  19,
	}
	// A hot, tightly connected block of drivers: the wire-length optimum
	// piles them together, concentrating the power.
	makeHot := func(nl *placement.Netlist) {
		for i := 0; i < 30; i++ {
			nl.Cells[i].Power = 40
		}
	}

	plain := placement.Generate(gen)
	makeHot(plain)
	if _, err := placement.Global(plain, placement.Config{MaxIter: 80}); err != nil {
		log.Fatal(err)
	}
	plainMap := thermal.Solve(plain, 48, 12, 1)

	driven := placement.Generate(gen)
	makeHot(driven)
	cfg := placement.Config{MaxIter: 80, ExtraDemand: func(g *density.Grid) []float64 {
		m := thermal.Solve(driven, g.NX, g.NY, 1)
		return m.ExtraDemand(g, 2)
	}}
	if _, err := placement.Global(driven, cfg); err != nil {
		log.Fatal(err)
	}
	drivenMap := thermal.Solve(driven, 48, 12, 1)

	fmt.Printf("plain:  HPWL %.1f, peak temperature %.2f (mean %.2f)\n",
		plain.HPWL(), plainMap.Peak(), plainMap.Mean())
	fmt.Printf("driven: HPWL %.1f, peak temperature %.2f (mean %.2f)\n",
		driven.HPWL(), drivenMap.Peak(), drivenMap.Mean())

	fmt.Println("\nplain temperature map:")
	visual.Heat(os.Stdout, plainMap.T, plainMap.NX, plainMap.NY)
	fmt.Println("heat-driven temperature map:")
	visual.Heat(os.Stdout, drivenMap.T, drivenMap.NX, drivenMap.NY)
}
