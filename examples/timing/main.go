// Timing: the paper's two-phase "meeting timing requirements" flow (§5).
// Phase 1 produces an area-optimized placement; phase 2 adapts net weights
// before each placement transformation until the longest path — measured on
// the actual placement, so the result is guaranteed — meets the
// requirement. The recorded curve is the timing/area tradeoff the paper
// highlights.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	nl := placement.Generate(placement.GenConfig{
		Name:  "timing-demo",
		Cells: 600,
		Nets:  780,
		Rows:  12,
		Seed:  11,
	})
	// Calibrated constants: the chip spans a fixed physical size, so wire
	// delay is a real fraction of the longest path.
	params := placement.CalibratedTimingParams(nl)

	// Probe the unoptimized delay to pick a meaningful requirement.
	probe := nl.Clone()
	if _, err := placement.Global(probe, placement.Config{}); err != nil {
		log.Fatal(err)
	}
	unopt := placement.AnalyzeTiming(probe, params).MaxDelay
	lower := placement.TimingLowerBound(probe, params)
	req := unopt - 0.1*(unopt-lower)
	fmt.Printf("unoptimized longest path %.3f ns, lower bound %.3f ns\n", unopt*1e9, lower*1e9)
	fmt.Printf("requirement: %.3f ns\n", req*1e9)

	res, err := placement.MeetTiming(nl, placement.Config{}, params, req)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ntiming/area tradeoff curve:")
	fmt.Printf("%6s %12s %12s\n", "step", "HPWL", "delay [ns]")
	for _, p := range res.Curve {
		fmt.Printf("%6d %12.1f %12.3f\n", p.Step, p.HPWL, p.MaxDelay*1e9)
	}
	verdict := "NOT met (best effort returned)"
	if res.Met {
		verdict = "met — guaranteed, since the analysis ran on this placement"
	}
	fmt.Printf("\nrequirement %s\nfinal: %.3f ns at HPWL %.1f after %d weighted steps\n",
		verdict, res.Final*1e9, res.HPWL, res.Steps)
}
