package placement_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	placement "repro"
	"repro/internal/density"
	"repro/internal/route"
	"repro/internal/thermal"
)

// TestIntegrationFullFlow drives the complete production pipeline:
// generate → global place → legalize → text round trip → re-read →
// timing analysis → ECO → incremental re-place, asserting the invariants
// a downstream user depends on at every stage.
func TestIntegrationFullFlow(t *testing.T) {
	nl := placement.Generate(placement.GenConfig{
		Name: "flow", Cells: 400, Nets: 520, Rows: 10, Seed: 2024,
	})

	// Global placement.
	res, err := placement.Global(nl, placement.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("global placement did not converge: %+v", res)
	}
	globalHPWL := nl.HPWL()

	// Final placement.
	if _, err := placement.Legalize(nl, placement.LegalizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if ov := nl.OverlapArea(); ov > 1e-6 {
		t.Fatalf("overlap after legalization: %v", ov)
	}
	legalHPWL := nl.HPWL()
	if legalHPWL > 2*globalHPWL {
		t.Errorf("legalization doubled the wire length: %v -> %v", globalHPWL, legalHPWL)
	}

	// Serialize and re-read: placement survives.
	var buf bytes.Buffer
	if err := placement.WriteNetlist(&buf, nl); err != nil {
		t.Fatal(err)
	}
	again, err := placement.ReadNetlist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(again.HPWL()-legalHPWL) > 1e-6*legalHPWL {
		t.Errorf("round trip changed HPWL: %v vs %v", again.HPWL(), legalHPWL)
	}

	// Timing analysis on the re-read design.
	params := placement.CalibratedTimingParams(again)
	rep := placement.AnalyzeTiming(again, params)
	if rep.MaxDelay <= 0 || len(rep.CriticalPath) == 0 {
		t.Fatalf("timing on re-read design: %+v", rep)
	}
	var reportBuf strings.Builder
	placement.WriteTimingReport(&reportBuf, again, params, rep)
	if !strings.Contains(reportBuf.String(), "Critical path") {
		t.Error("timing report malformed")
	}

	// ECO on the legalized design.
	pre := again.Snapshot()
	newIdx := len(again.Cells)
	if _, err := placement.ApplyECO(again, []placement.ECOChange{
		{RemoveNet: -1, AddCell: &placement.Cell{Name: "eco0", W: 2, H: 1}},
		{RemoveNet: -1, AddNet: &placement.Net{Name: "econ", Pins: []placement.Pin{
			{Cell: newIdx, Dir: placement.Output},
			{Cell: 3, Dir: placement.Input},
		}}},
	}); err != nil {
		t.Fatal(err)
	}
	eres, err := placement.ReplaceECO(again, pre, placement.Config{})
	if err != nil {
		t.Fatal(err)
	}
	span := again.Region.W() + again.Region.H()
	if eres.TotalDisplacement/float64(len(pre)) > 0.02*span {
		t.Errorf("ECO disturbed the placement: mean displacement %v on span %v",
			eres.TotalDisplacement/float64(len(pre)), span)
	}
}

// TestIntegrationBookshelfFlow: Bookshelf in → place → Bookshelf out →
// re-read, the interchange path external users take.
func TestIntegrationBookshelfFlow(t *testing.T) {
	nl := placement.Generate(placement.GenConfig{
		Name: "bsflow", Cells: 150, Nets: 200, Rows: 6, Seed: 2025,
	})
	var nodes, nets, pl, scl bytes.Buffer
	if err := placement.WriteBookshelf(nl, &nodes, &nets, &pl, &scl); err != nil {
		t.Fatal(err)
	}
	loaded, err := placement.ReadBookshelf("bsflow", &nodes, &nets, &pl, &scl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := placement.Global(loaded, placement.Config{MaxIter: 40}); err != nil {
		t.Fatal(err)
	}
	if _, err := placement.Legalize(loaded, placement.LegalizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if loaded.OverlapArea() > 1e-6 {
		t.Error("bookshelf-loaded design not legal after the flow")
	}
}

// TestIntegrationEnginesAgreeOnLegality: all three engines produce legal
// results through the shared final placer on the same circuit.
func TestIntegrationEnginesAgreeOnLegality(t *testing.T) {
	base := placement.Generate(placement.GenConfig{
		Name: "engines", Cells: 200, Nets: 260, Rows: 8, Seed: 2026,
	})
	flows := map[string]func(nl *placement.Netlist) error{
		"kraftwerk": func(nl *placement.Netlist) error {
			_, err := placement.Global(nl, placement.Config{MaxIter: 60})
			return err
		},
		"gordian": func(nl *placement.Netlist) error {
			_, err := placement.GlobalGordian(nl, placement.GordianConfig{})
			return err
		},
		"anneal": func(nl *placement.Netlist) error {
			_, err := placement.GlobalAnneal(nl, placement.AnnealConfig{Seed: 1})
			return err
		},
	}
	random := base.Clone()
	placement.ScatterRandom(random, 9)
	randomHPWL := random.HPWL()
	for name, run := range flows {
		nl := base.Clone()
		if err := run(nl); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := placement.Legalize(nl, placement.LegalizeOptions{}); err != nil {
			t.Fatalf("%s legalize: %v", name, err)
		}
		if ov := nl.OverlapArea(); ov > 1e-6 {
			t.Errorf("%s: overlap %v", name, ov)
		}
		if nl.HPWL() >= randomHPWL {
			t.Errorf("%s: HPWL %v no better than random %v", name, nl.HPWL(), randomHPWL)
		}
	}
}

// TestIntegrationCongestionAndThermalHooks: both §5 map blends run inside
// the real placement loop without degrading legality.
func TestIntegrationCongestionAndThermalHooks(t *testing.T) {
	nl := placement.Generate(placement.GenConfig{
		Name: "hooks", Cells: 200, Nets: 260, Rows: 8, Seed: 2027,
	})
	for i := 0; i < 15; i++ {
		nl.Cells[i].Power = 25
	}
	cfg := placement.Config{MaxIter: 50, ExtraDemand: func(g *density.Grid) []float64 {
		out := route.Estimate(nl, g.NX, g.NY, 0).ExtraDemand(g, 0.5)
		for i, v := range thermal.Solve(nl, g.NX, g.NY, 1).ExtraDemand(g, 1) {
			out[i] += v
		}
		return out
	}}
	if _, err := placement.Global(nl, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := placement.Legalize(nl, placement.LegalizeOptions{}); err != nil {
		t.Fatal(err)
	}
	if nl.OverlapArea() > 1e-6 {
		t.Error("combined-hook flow not legal")
	}
}

// TestIntegrationFloorplanThenTiming: mixed block/cell floorplanning
// followed by timing analysis and a clock check.
func TestIntegrationFloorplanThenTiming(t *testing.T) {
	nl := placement.Generate(placement.GenConfig{
		Name: "fp+t", Cells: 250, Nets: 330, Rows: 24, Blocks: 3, Seed: 2028,
	})
	fres, err := placement.Floorplan(nl, placement.FloorplanConfig{
		Place: placement.Config{MaxIter: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fres.Blocks != 3 {
		t.Errorf("blocks = %d", fres.Blocks)
	}
	params := placement.CalibratedTimingParams(nl)
	rep := placement.AnalyzeTiming(nl, params)
	if rep.MaxDelay <= 0 {
		t.Fatal("no delay on floorplanned design")
	}
}
