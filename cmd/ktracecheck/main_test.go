package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTrace drops a JSONL trace into a temp file and returns its path.
func writeTrace(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const metaLine = `{"type":"meta","design":"d","cells":10,"config_hash":"abc","phases":["weight","gather","step"]}`

// iterLine is one well-formed iteration record matching metaLine's phases.
const iterLine = `{"iter":0,"hpwl":12.5,"t_weight_ns":1,"t_gather_ns":2,"t_step_ns":10}`

func TestCheckTrace(t *testing.T) {
	cases := []struct {
		name    string
		lines   []string
		wantErr string // substring; "" means the trace must validate
	}{
		{
			name:  "valid",
			lines: []string{metaLine, iterLine, `{"iter":1,"hpwl":11.0,"t_weight_ns":1,"t_gather_ns":2,"t_step_ns":9}`},
		},
		{
			name:    "unknown phase key",
			lines:   []string{metaLine, `{"iter":0,"hpwl":12.5,"t_weight_ns":1,"t_gather_ns":2,"t_step_ns":10,"t_bogus_ns":3}`},
			wantErr: `unknown phase key "t_bogus_ns"`,
		},
		{
			name:    "missing phase from meta",
			lines:   []string{metaLine, `{"iter":0,"hpwl":12.5,"t_weight_ns":1,"t_step_ns":10}`},
			wantErr: `missing phase "gather"`,
		},
		{
			name:    "meta declares unknown phase",
			lines:   []string{`{"type":"meta","design":"d","cells":10,"config_hash":"abc","phases":["teleport"]}`, iterLine},
			wantErr: `unknown phase "teleport"`,
		},
		{
			name: "legacy meta without phases skips the presence check",
			lines: []string{
				`{"type":"meta","design":"d","cells":10,"config_hash":"abc"}`,
				`{"iter":0,"hpwl":12.5,"t_step_ns":10}`,
			},
		},
		{
			name:    "iteration before meta",
			lines:   []string{iterLine},
			wantErr: "before any meta header",
		},
		{
			name:    "non-monotone iteration",
			lines:   []string{metaLine, strings.Replace(iterLine, `"iter":0`, `"iter":5`, 1), strings.Replace(iterLine, `"iter":0`, `"iter":3`, 1)},
			wantErr: "not monotone",
		},
		{
			name:    "bad hpwl",
			lines:   []string{metaLine, `{"iter":0,"hpwl":-1,"t_weight_ns":1,"t_gather_ns":2,"t_step_ns":10}`},
			wantErr: "bad hpwl",
		},
		{
			name:    "pair time exceeds step time",
			lines:   []string{`{"type":"meta","design":"d","cells":10,"config_hash":"abc"}`, `{"iter":0,"hpwl":12.5,"t_step_ns":10,"t_solve_pair_ns":20}`},
			wantErr: "t_solve_pair_ns 20 outside",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkTrace(writeTrace(t, tc.lines...))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("checkTrace() = %v, want ok", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("checkTrace() passed, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("checkTrace() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestKnownPhaseKeysMatchMeta pins the allowlist to the phase-key shape:
// every entry must parse as t_<phase>_ns, and the canonical place schema's
// required key must be present.
func TestKnownPhaseKeysMatchMeta(t *testing.T) {
	for k := range knownPhaseKeys {
		if !strings.HasPrefix(k, "t_") || !strings.HasSuffix(k, "_ns") {
			t.Errorf("allowlist key %q does not look like t_<phase>_ns", k)
		}
	}
	if !knownPhaseKeys["t_step_ns"] {
		t.Error("allowlist is missing t_step_ns, which checkTrace requires on every record")
	}
}
