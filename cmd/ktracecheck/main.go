// Command ktracecheck validates the repo's observability artifacts so CI
// can assert they are well-formed, not merely present.
//
//	ktracecheck run.jsonl ...                 validate JSONL run traces
//	ktracecheck -flight [-reason R] dump.json validate a flight-recorder dump
//
// A run trace must open with a self-describing meta record (non-empty
// config hash, positive cell count) and every iteration record must carry
// a finite positive HPWL, a positive step time, and a monotonically
// increasing iteration number — resets to 0 mark a new run within the
// file (timing-driven placement restarts), and a new meta record starts a
// fresh group outright. Phase timing keys (t_<phase>_ns) must come from
// the known phase schema, and when the meta record declares its phase
// list, every declared phase must appear on every iteration record.
//
// A flight dump must decode into the {capacity, dropped, entries} schema;
// with -reason, at least one entry must carry that reason and a span
// tree.
//
// Exit status: 0 valid, 1 validation failure, 2 usage or read error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		flight = flag.Bool("flight", false, "validate a flight-recorder dump instead of JSONL run traces")
		reason = flag.String("reason", "", "with -flight: require at least one entry with this reason (and a span tree)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ktracecheck [-flight [-reason R]] file...")
		os.Exit(2)
	}
	bad := false
	for _, path := range flag.Args() {
		var err error
		if *flight {
			err = checkFlight(path, *reason)
		} else {
			err = checkTrace(path)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ktracecheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}

// traceRec is the union of the fields ktracecheck inspects on a JSONL
// line; pointers distinguish "absent" from zero.
type traceRec struct {
	Type       string   `json:"type"`
	ConfigHash string   `json:"config_hash"`
	Cells      int      `json:"cells"`
	Phases     []string `json:"phases"`
	Iter       *int     `json:"iter"`
	HPWL       *float64 `json:"hpwl"`
	StepNS     *int64   `json:"t_step_ns"`
	PairNS     *int64   `json:"t_solve_pair_ns"`
}

// knownPhaseKeys is the trace-key allowlist: the t_<phase>_ns keys an
// iteration record may carry, one per place.PhaseKeys entry (with -
// spelled _). kvet's phasereg analyzer checks this map against the
// IterStats schema, so a phase added there without a line here is a lint
// failure, not silent drift.
var knownPhaseKeys = map[string]bool{
	"t_weight_ns":     true,
	"t_gather_ns":     true,
	"t_field_ns":      true,
	"t_build_ns":      true,
	"t_solve_x_ns":    true,
	"t_solve_y_ns":    true,
	"t_solve_pair_ns": true,
	"t_step_ns":       true,
}

// phaseKey maps a meta-record phase name ("solve-x") to its trace key
// ("t_solve_x_ns").
func phaseKey(phase string) string {
	return "t_" + strings.ReplaceAll(phase, "-", "_") + "_ns"
}

func checkTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ktracecheck: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	iters := 0
	metas := 0
	lastIter := -1
	var metaPhases []string // current group's declared phases (nil: legacy meta)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		line++
		var r traceRec
		if err := json.Unmarshal(raw, &r); err != nil {
			return fmt.Errorf("line %d: not JSON: %v", line, err)
		}
		if r.Type == "meta" {
			metas++
			if r.ConfigHash == "" {
				return fmt.Errorf("line %d: meta record without config_hash", line)
			}
			if r.Cells <= 0 {
				return fmt.Errorf("line %d: meta record with cells=%d", line, r.Cells)
			}
			for _, p := range r.Phases {
				if !knownPhaseKeys[phaseKey(p)] {
					return fmt.Errorf("line %d: meta declares unknown phase %q", line, p)
				}
			}
			metaPhases = r.Phases
			lastIter = -1
			continue
		}
		if metas == 0 {
			return fmt.Errorf("line %d: iteration record before any meta header", line)
		}
		if r.Iter == nil {
			return fmt.Errorf("line %d: record is neither meta nor iteration (no iter field)", line)
		}
		iters++
		// The phase-key schema check needs the raw key set, which the
		// typed decode above discards.
		var keys map[string]json.RawMessage
		if err := json.Unmarshal(raw, &keys); err != nil {
			return fmt.Errorf("line %d: not a JSON object: %v", line, err)
		}
		var unknown []string
		for k := range keys {
			if strings.HasPrefix(k, "t_") && strings.HasSuffix(k, "_ns") && !knownPhaseKeys[k] {
				unknown = append(unknown, k)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown) // deterministic pick across map orders
			return fmt.Errorf("line %d: unknown phase key %q", line, unknown[0])
		}
		for _, p := range metaPhases {
			if _, present := keys[phaseKey(p)]; !present {
				return fmt.Errorf("line %d: missing phase %q declared in meta", line, p)
			}
		}
		switch {
		case *r.Iter > lastIter:
			lastIter = *r.Iter
		case *r.Iter == 0:
			// A restart inside one traced run (e.g. timing-driven
			// placement re-running the engine) begins a new group.
			lastIter = 0
		default:
			return fmt.Errorf("line %d: iteration %d not monotone (previous %d)", line, *r.Iter, lastIter)
		}
		if r.HPWL == nil || math.IsNaN(*r.HPWL) || math.IsInf(*r.HPWL, 0) || *r.HPWL <= 0 {
			return fmt.Errorf("line %d: bad hpwl", line)
		}
		if r.StepNS == nil || *r.StepNS <= 0 {
			return fmt.Errorf("line %d: bad t_step_ns", line)
		}
		// t_solve_pair_ns is newer than the rest of the schema; absent is
		// fine (old traces), but when present the concurrent pair's wall
		// time must fit inside the whole transformation.
		if r.PairNS != nil && (*r.PairNS < 0 || *r.PairNS > *r.StepNS) {
			return fmt.Errorf("line %d: t_solve_pair_ns %d outside [0, t_step_ns=%d]", line, *r.PairNS, *r.StepNS)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read: %v", err)
	}
	if metas == 0 {
		return fmt.Errorf("no meta header record")
	}
	if iters == 0 {
		return fmt.Errorf("no iteration records")
	}
	return nil
}

// flightDump mirrors obsv.FlightRecorder's WriteJSON schema.
type flightDump struct {
	Capacity int `json:"capacity"`
	Dropped  int `json:"dropped"`
	Entries  []struct {
		Reason string          `json:"reason"`
		JobID  string          `json:"job_id"`
		Trace  json.RawMessage `json:"trace"`
	} `json:"entries"`
}

func checkFlight(path, reason string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ktracecheck: %v\n", err)
		os.Exit(2)
	}
	var d flightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		return fmt.Errorf("not a flight dump: %v", err)
	}
	if d.Entries == nil {
		return fmt.Errorf("missing entries array")
	}
	if d.Capacity <= 0 {
		return fmt.Errorf("capacity %d", d.Capacity)
	}
	for i, e := range d.Entries {
		if e.Reason == "" {
			return fmt.Errorf("entry %d: empty reason", i)
		}
	}
	if reason != "" {
		found := false
		for i, e := range d.Entries {
			if e.Reason != reason {
				continue
			}
			if len(e.Trace) == 0 || string(e.Trace) == "null" {
				return fmt.Errorf("entry %d: reason %q without a span tree", i, reason)
			}
			found = true
		}
		if !found {
			return fmt.Errorf("no entry with reason %q (have %d entries)", reason, len(d.Entries))
		}
	}
	return nil
}
