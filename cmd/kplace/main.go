// Command kplace places a netlist with any of the implemented engines.
//
//	kplace -in circuit.nl -out placed.nl [-engine kraftwerk|gordian|anneal]
//	       [-k 0.2] [-timing] [-legalize] [-plot]
//
// With -gen cells:nets:rows a synthetic circuit is generated instead of
// reading -in.
//
// Interruption (kraftwerk engine): -timeout bounds the run's wall time and
// Ctrl-C / SIGTERM stops it early; either way the best placement so far is
// kept and written. -checkpoint FILE snapshots the interrupted iteration
// state, and -resume FILE continues a snapshotted run bit-compatibly.
//
// Observability:
//
//	-trace run.jsonl     stream one JSON line per placement transformation
//	-metrics             dump the metrics registry (Prometheus text) on exit
//	-cpuprofile cpu.pb   write a runtime/pprof CPU profile
//	-memprofile mem.pb   write a heap profile on exit
//	-http :6060          debug server with /metrics and /debug/pprof/
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/anneal"
	"repro/internal/density"
	"repro/internal/fft"
	"repro/internal/gordian"
	"repro/internal/legalize"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/obsv"
	"repro/internal/place"
	"repro/internal/qp"
	"repro/internal/sparse"
	"repro/internal/timing"
	"repro/internal/visual"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kplace: ")

	var (
		in      = flag.String("in", "", "input netlist file (text interchange format)")
		aux     = flag.String("bookshelf", "", "input Bookshelf .aux file instead of -in")
		out     = flag.String("out", "", "output netlist file with placement (default: stdout summary only)")
		gen     = flag.String("gen", "", "generate a synthetic circuit instead: cells:nets:rows")
		seed    = flag.Int64("seed", 1, "seed for generation and stochastic engines")
		engine  = flag.String("engine", "kraftwerk", "placement engine: kraftwerk, gordian, anneal")
		k       = flag.Float64("k", 0.2, "Kraftwerk speed parameter K (0.2 standard, 1.0 fast)")
		doTime  = flag.Bool("timing", false, "timing-driven placement (kraftwerk engine)")
		legal   = flag.Bool("legalize", true, "run legalization/detailed placement afterwards")
		plot    = flag.Bool("plot", false, "print an ASCII plot of the result")
		maxIter = flag.Int("maxiter", 0, "iteration cap (0 = default)")
		cold    = flag.Bool("cold", false, "disable the hot-path engine (iteration-reuse caches and CG warm start); the A/B baseline for -metrics comparisons")
		precond = flag.String("precond", "auto", "CG preconditioner: jacobi, ic0, or auto (ic0 above a size threshold)")
		field   = flag.String("field", "auto", "density field solver: auto, direct, fft, or rfft (real-input FFT)")

		gridBins  = flag.Int("gridbins", 0, "density grid resolution per axis (0 = automatic from design size)")
		noLin     = flag.Bool("nolinearize", false, "disable the net-weight linearization (purely quadratic solve)")
		netModel  = flag.String("netmodel", "clique", "net decomposition: clique (paper model), star, or hybrid")
		keep      = flag.Bool("keep", false, "start from the input netlist's positions instead of gathering at the region center")
		stopSq    = flag.Float64("stopsq", 0, "stopping-criterion multiple of average cell area (0 = default 4)")
		emptyFrac = flag.Float64("emptyfrac", 0, "empty-bin demand fraction threshold (0 = default 0.25)")
		floor     = flag.Float64("forcefloor", 0, "zero force increments below this fraction of the field maximum (0 = off)")
		cgTol     = flag.Float64("cgtol", 0, "CG relative residual tolerance (0 = default 1e-6)")
		cgMaxIter = flag.Int("cgmaxiter", 0, "CG iteration cap per solve (0 = default)")
		timeout   = flag.Duration("timeout", 0, "wall-time budget for the kraftwerk run (0 = none); on expiry the best placement so far is kept")
		ckpt      = flag.String("checkpoint", "", "write the iteration state here if the kraftwerk run is interrupted (-timeout or Ctrl-C)")
		resume    = flag.String("resume", "", "resume a kraftwerk run from a -checkpoint snapshot instead of starting fresh")

		tracePath = flag.String("trace", "", "write a JSONL run trace (one record per transformation)")
		metrics   = flag.Bool("metrics", false, "dump the metrics registry as Prometheus text on exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		httpAddr  = flag.String("http", "", "serve /metrics and /debug/pprof/ on this address (e.g. :6060)")
	)
	flag.Parse()

	// Observability sinks. Spans are always on (the cost is a handful of
	// clock reads per pass); the registry only when something consumes it.
	spans := obsv.NewSpans()
	var reg *obsv.Registry
	if *metrics || *httpAddr != "" {
		reg = obsv.NewRegistry()
		sparse.EnableMetrics(reg)
		density.EnableMetrics(reg)
		fft.EnableMetrics(reg)
	}
	var trace *obsv.TraceWriter
	if *tracePath != "" {
		var err error
		trace, err = obsv.OpenTrace(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *httpAddr != "" {
		http.Handle("/metrics", reg)
		//lint:ignore parpolicy,golife background debug server: deliberately fire-and-forget, it lives for the whole process
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
		fmt.Printf("debug server on %s (/metrics, /debug/pprof/)\n", *httpAddr)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	pc, ok := sparse.ParsePreconditioner(*precond)
	if !ok {
		log.Fatalf("unknown -precond %q (want jacobi, ic0, or auto)", *precond)
	}
	fm, ok := density.ParseMethod(*field)
	if !ok {
		log.Fatalf("unknown -field %q (want auto, direct, fft, or rfft)", *field)
	}
	nm, ok := qp.ParseNetModel(*netModel)
	if !ok {
		log.Fatalf("unknown -netmodel %q (want clique, star, or hybrid)", *netModel)
	}

	nl, err := load(*in, *aux, *gen, *seed)
	if err != nil {
		log.Fatal(err)
	}
	st := netlist.ComputeStats(nl)
	fmt.Println(st)

	start := time.Now()
	switch *engine {
	case "kraftwerk":
		cfg := place.Config{
			K: *k, MaxIter: *maxIter,
			GridBins:         *gridBins,
			NoLinearize:      *noLin,
			NetModel:         nm,
			KeepPlacement:    *keep,
			StopSquareFactor: *stopSq,
			EmptyFrac:        *emptyFrac,
			ForceFloor:       *floor,
			NoReuse:          *cold, NoWarmStart: *cold,
			CG:          sparse.CGOptions{Tol: *cgTol, MaxIter: *cgMaxIter, Precond: pc},
			FieldMethod: fm,
			Spans:       spans, Metrics: reg,
		}
		if trace != nil {
			// The trace file opens with a self-describing meta record:
			// design size, seed, config hash — the context a bare stream
			// of iteration stats loses the moment the command line is gone.
			_ = trace.Write(place.NewRunMeta(nl, cfg, *seed, start))
			cfg.OnIteration = func(s place.IterStats) { _ = trace.Write(s) }
		}
		if *doTime {
			params := timing.Calibrated(nl)
			res, err := timing.PlaceDriven(nl, cfg, params, 0)
			if err != nil {
				log.Fatal(err)
			}
			printRunSummary(res.Place)
			fmt.Printf("timing: %.3g ns -> %.3g ns (lower bound %.3g ns, exploitation %.0f%%)\n",
				res.Before*1e9, res.After*1e9, res.LowerBound*1e9, 100*res.Exploitation())
			timing.WriteReport(os.Stdout, nl, params, timing.NewAnalyzer(nl, params).Analyze())
		} else {
			res, err := runKraftwerk(nl, cfg, *timeout, *resume, *ckpt)
			if err != nil {
				log.Fatal(err)
			}
			printRunSummary(res)
		}
	case "gordian":
		res, err := gordian.Place(nl, gordian.Config{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gordian: %d levels, %d regions\n", res.Levels, res.Regions)
	case "anneal":
		res, err := anneal.Place(nl, anneal.Config{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("anneal: %d stages, %d/%d moves accepted\n",
			res.Stages, res.Accepted, res.Moves)
	default:
		log.Fatalf("unknown engine %q", *engine)
	}

	if *legal && len(nl.Region.Rows) > 0 {
		lres, err := legalize.Legalize(nl, legalize.Options{Spans: spans})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("legalized: %d improving swaps, max displacement %.2f\n",
			lres.Swaps, lres.MaxDisp)
	}
	fmt.Printf("HPWL %.1f units, overlap %.2f, %.2fs\n",
		nl.HPWL(), nl.OverlapArea(), time.Since(start).Seconds())

	if len(spans.Snapshot()) > 0 {
		fmt.Println("\nphase breakdown:")
		spans.WriteTable(os.Stdout)
	}

	if *plot {
		visual.Plot(os.Stdout, nl, 100, 24)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := netlist.Write(f, nl); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if err := trace.Close(); err != nil {
		log.Fatalf("trace: %v", err)
	}
	if *tracePath != "" {
		fmt.Printf("wrote trace %s\n", *tracePath)
	}
	if *metrics {
		fmt.Println("\nmetrics:")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			log.Fatalf("metrics: %v", err)
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}
}

// runKraftwerk runs (or resumes) global placement under a wall-time
// budget and Ctrl-C/SIGTERM cancellation. An interrupted run keeps the
// best placement so far in nl; if ckptPath is set its iteration state is
// also snapshotted for a later -resume.
func runKraftwerk(nl *netlist.Netlist, cfg place.Config, timeout time.Duration, resumePath, ckptPath string) (place.Result, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var p *place.Placer
	if resumePath != "" {
		f, err := os.Open(resumePath)
		if err != nil {
			return place.Result{}, err
		}
		ck, err := place.DecodeCheckpoint(f)
		f.Close()
		if err != nil {
			return place.Result{}, fmt.Errorf("%s: %v", resumePath, err)
		}
		if p, err = place.Resume(nl, cfg, ck); err != nil {
			return place.Result{}, fmt.Errorf("%s: %v", resumePath, err)
		}
		fmt.Printf("resuming from %s at iteration %d\n", resumePath, ck.Iter)
	} else {
		p = place.New(nl, cfg)
	}

	res, err := p.Run(ctx)
	if err != nil {
		return res, err
	}
	interrupted := res.StopReason == place.StopCancelled || res.StopReason == place.StopDeadline
	if interrupted && ckptPath != "" {
		f, err := os.Create(ckptPath)
		if err != nil {
			return res, err
		}
		if err := p.Checkpoint().Encode(f); err != nil {
			f.Close()
			return res, err
		}
		if err := f.Close(); err != nil {
			return res, err
		}
		fmt.Printf("interrupted (%s): checkpointed iteration %d to %s; continue with -resume %s\n",
			res.StopReason, res.Iterations, ckptPath, ckptPath)
	}
	return res, nil
}

// printRunSummary reports how and why a Kraftwerk run ended, with the
// per-phase time breakdown of the global placement loop.
func printRunSummary(res place.Result) {
	fmt.Printf("global: %d iterations, stopped on %s, overflow %.3f, %.2fs\n",
		res.Iterations, res.StopReason, res.Overflow, res.Runtime.Seconds())
	p := res.Phases
	if p.Step > 0 {
		line := func(name string, d time.Duration) {
			fmt.Printf("  %-12s %10.3fs  %5.1f%%\n", name, d.Seconds(), 100*d.Seconds()/p.Step.Seconds())
		}
		fmt.Printf("  per-phase breakdown of %.2fs in transformations:\n", p.Step.Seconds())
		if p.Weight > 0 {
			line("weight", p.Weight)
		}
		line("gather", p.Gather)
		line("field", p.Field)
		line("build", p.Build)
		line("solve-x", p.SolveX)
		line("solve-y", p.SolveY)
	}
}

func load(in, aux, gen string, seed int64) (*netlist.Netlist, error) {
	switch {
	case aux != "":
		return netlist.LoadBookshelf(aux)
	case gen != "":
		parts := strings.Split(gen, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("-gen wants cells:nets:rows, got %q", gen)
		}
		cells, err1 := strconv.Atoi(parts[0])
		nets, err2 := strconv.Atoi(parts[1])
		rows, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("-gen wants integers, got %q", gen)
		}
		return netgen.Generate(netgen.Config{
			Name: "generated", Cells: cells, Nets: nets, Rows: rows, Seed: seed,
		}), nil
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.Read(f)
	default:
		return nil, fmt.Errorf("need -in FILE, -bookshelf FILE.aux, or -gen cells:nets:rows")
	}
}
