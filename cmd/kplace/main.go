// Command kplace places a netlist with any of the implemented engines.
//
//	kplace -in circuit.nl -out placed.nl [-engine kraftwerk|gordian|anneal]
//	       [-k 0.2] [-timing] [-legalize] [-plot]
//
// With -gen cells:nets:rows a synthetic circuit is generated instead of
// reading -in.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/anneal"
	"repro/internal/gordian"
	"repro/internal/legalize"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/timing"
	"repro/internal/visual"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kplace: ")

	var (
		in      = flag.String("in", "", "input netlist file (text interchange format)")
		aux     = flag.String("bookshelf", "", "input Bookshelf .aux file instead of -in")
		out     = flag.String("out", "", "output netlist file with placement (default: stdout summary only)")
		gen     = flag.String("gen", "", "generate a synthetic circuit instead: cells:nets:rows")
		seed    = flag.Int64("seed", 1, "seed for generation and stochastic engines")
		engine  = flag.String("engine", "kraftwerk", "placement engine: kraftwerk, gordian, anneal")
		k       = flag.Float64("k", 0.2, "Kraftwerk speed parameter K (0.2 standard, 1.0 fast)")
		doTime  = flag.Bool("timing", false, "timing-driven placement (kraftwerk engine)")
		legal   = flag.Bool("legalize", true, "run legalization/detailed placement afterwards")
		plot    = flag.Bool("plot", false, "print an ASCII plot of the result")
		maxIter = flag.Int("maxiter", 0, "iteration cap (0 = default)")
	)
	flag.Parse()

	nl, err := load(*in, *aux, *gen, *seed)
	if err != nil {
		log.Fatal(err)
	}
	st := netlist.ComputeStats(nl)
	fmt.Println(st)

	start := time.Now()
	switch *engine {
	case "kraftwerk":
		cfg := place.Config{K: *k, MaxIter: *maxIter}
		if *doTime {
			params := timing.Calibrated(nl)
			res, err := timing.PlaceDriven(nl, cfg, params, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("timing: %.3g ns -> %.3g ns (lower bound %.3g ns, exploitation %.0f%%)\n",
				res.Before*1e9, res.After*1e9, res.LowerBound*1e9, 100*res.Exploitation())
			timing.WriteReport(os.Stdout, nl, params, timing.NewAnalyzer(nl, params).Analyze())
		} else {
			res, err := place.Global(nl, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("global: %d iterations (%s), overflow %.3f\n",
				res.Iterations, res.StopReason, res.Overflow)
		}
	case "gordian":
		res, err := gordian.Place(nl, gordian.Config{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gordian: %d levels, %d regions\n", res.Levels, res.Regions)
	case "anneal":
		res, err := anneal.Place(nl, anneal.Config{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("anneal: %d stages, %d/%d moves accepted\n",
			res.Stages, res.Accepted, res.Moves)
	default:
		log.Fatalf("unknown engine %q", *engine)
	}

	if *legal && len(nl.Region.Rows) > 0 {
		lres, err := legalize.Legalize(nl, legalize.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("legalized: %d improving swaps, max displacement %.2f\n",
			lres.Swaps, lres.MaxDisp)
	}
	fmt.Printf("HPWL %.1f units, overlap %.2f, %.2fs\n",
		nl.HPWL(), nl.OverlapArea(), time.Since(start).Seconds())

	if *plot {
		visual.Plot(os.Stdout, nl, 100, 24)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := netlist.Write(f, nl); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func load(in, aux, gen string, seed int64) (*netlist.Netlist, error) {
	switch {
	case aux != "":
		return netlist.LoadBookshelf(aux)
	case gen != "":
		parts := strings.Split(gen, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("-gen wants cells:nets:rows, got %q", gen)
		}
		cells, err1 := strconv.Atoi(parts[0])
		nets, err2 := strconv.Atoi(parts[1])
		rows, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("-gen wants integers, got %q", gen)
		}
		return netgen.Generate(netgen.Config{
			Name: "generated", Cells: cells, Nets: nets, Rows: rows, Seed: seed,
		}), nil
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.Read(f)
	default:
		return nil, fmt.Errorf("need -in FILE, -bookshelf FILE.aux, or -gen cells:nets:rows")
	}
}
