// Command kvet runs the repo's static-analysis suite (internal/lint) over
// the named package patterns and exits non-zero on any finding. It is the
// CI gate for the invariants the hot-path engine depends on: deterministic
// iteration (detrange), clock and randomness discipline (noclock),
// centralized parallelism (parpolicy), no exact float equality (floatcmp)
// and the obsv nil-handle contract (nilsafe).
//
// Usage:
//
//	kvet [-tags tags] [-list] [patterns ...]
//
// Patterns default to ./... . Findings print as
// file:line:col: [analyzer] message. Suppress a deliberate exception with
// a "//lint:ignore <analyzer> <reason>" comment on or directly above the
// flagged line.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

func main() {
	tags := flag.String("tags", "", "build tags to select files, forwarded to go list")
	list := flag.Bool("list", false, "print the analyzers and their package policy, then exit")
	flag.Parse()

	rules := lint.Rules()
	if *list {
		for _, r := range rules {
			fmt.Printf("%-10s %s\n", r.Analyzer.Name, r.Analyzer.Doc)
		}
		return
	}

	pkgs, err := load.Load(load.Config{BuildTags: *tags}, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvet:", err)
		os.Exit(2)
	}

	found := 0
	for _, pkg := range pkgs {
		var active []*analysis.Analyzer
		for _, r := range rules {
			if r.AppliesTo(pkg.ImportPath) {
				active = append(active, r.Analyzer)
			}
		}
		if len(active) == 0 {
			continue
		}
		findings, err := lint.Run(pkg, active)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvet: %s: %v\n", pkg.ImportPath, err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
		found += len(findings)
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "kvet: %d finding(s)\n", found)
		os.Exit(1)
	}
}
