// Command kvet runs the repo's static-analysis suite (internal/lint) over
// the named package patterns and exits non-zero on any finding. It is the
// CI gate for the invariants the engine depends on: deterministic
// iteration (detrange), clock and randomness discipline (noclock),
// centralized parallelism (parpolicy), no exact float equality (floatcmp),
// the obsv nil-handle contract (nilsafe) — and, through the
// interprocedural fact layer, cancellation coverage on the serving path
// (ctxflow), no blocking under a mutex (lockheld), a zero-alloc
// place.Step loop (hotalloc), no dropped errors (errflow) — and the
// whole-program concurrency-soundness trio: a global lock-acquisition
// order free of deadlock cycles (lockorder), joined goroutines and
// received-from channels (golife), and no unsynchronized closure-capture
// races (sharecap). v4 adds the contract suite: every Config knob plumbed
// to its CLI/HTTP/hash/engine surfaces (knobflow), every phase surface
// mirroring the canonical t_<phase>_ns list and metric names obeying the
// Prometheus rules (phasereg), and exhaustive switches over module-local
// enum types (enumswitch).
//
// Usage:
//
//	kvet [flags] [patterns ...]
//
// Patterns default to ./... . Findings print as
// file:line:col: [analyzer] message. Suppress a deliberate exception with
// a "//lint:ignore <analyzer> <reason>" comment on or directly above the
// flagged line; a directive that suppresses nothing is itself a finding.
//
// Flags:
//
//	-tags tags        build tags, forwarded to go list
//	-list             print analyzers with their one-line docs, then exit
//	-debug-timing     print per-analyzer wall time to stderr after the run
//	-fix              apply suggested fixes in place
//	-diff             preview suggested fixes as a diff without writing
//	-json             print findings as a JSON array
//	-sarif file       also write findings as SARIF 2.1.0 to file
//	-baseline file    drop findings grandfathered by the baseline
//	-write-baseline f snapshot current findings into f and exit
//	-stale-baseline   with -baseline, fail when the baseline grandfathers
//	                  findings that no longer exist
//
// Exit status: 0 no findings, 1 findings, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

func main() {
	tags := flag.String("tags", "", "build tags to select files, forwarded to go list")
	list := flag.Bool("list", false, "print the analyzers and their one-line docs, then exit")
	debugTiming := flag.Bool("debug-timing", false, "print per-analyzer wall time to stderr after the run")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source files")
	diff := flag.Bool("diff", false, "print suggested fixes as a diff without applying them")
	jsonOut := flag.Bool("json", false, "print findings as JSON")
	sarifPath := flag.String("sarif", "", "write findings as SARIF 2.1.0 to this file")
	baselinePath := flag.String("baseline", "", "suppress findings grandfathered by this baseline file")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit")
	staleBaseline := flag.Bool("stale-baseline", false, "with -baseline, fail when the baseline grandfathers findings that no longer exist")
	flag.Parse()

	rules := lint.Rules()
	if *list {
		if err := lint.WriteList(os.Stdout, rules); err != nil {
			fatal(err)
		}
		return
	}

	root, err := os.Getwd()
	if err != nil {
		fatal(err)
	}

	pkgs, err := load.Load(load.Config{BuildTags: *tags}, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	res, err := lint.RunSuite(pkgs, rules, lint.Options{CheckStale: true})
	if err != nil {
		fatal(err)
	}
	findings := res.Findings
	if *debugTiming {
		for _, tm := range res.Timings {
			fmt.Fprintf(os.Stderr, "kvet: timing %-12s %s\n", tm.Analyzer, tm.Wall.Round(time.Microsecond))
		}
	}

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, root, findings); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kvet: wrote baseline with %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}
	if *baselinePath != "" {
		bl, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		if *staleBaseline {
			if stale := lint.StaleBaseline(bl, root, findings); len(stale) > 0 {
				for _, e := range stale {
					fmt.Fprintf(os.Stderr, "kvet: stale baseline entry (%d unmatched): %s %s: %s\n", e.Count, e.Analyzer, e.File, e.Message)
				}
				fmt.Fprintf(os.Stderr, "kvet: %s grandfathers %d finding class(es) that no longer exist; regenerate it with -write-baseline\n", *baselinePath, len(stale))
				os.Exit(1)
			}
		}
		var grandfathered int
		findings, grandfathered = lint.ApplyBaseline(bl, root, findings)
		if grandfathered > 0 {
			fmt.Fprintf(os.Stderr, "kvet: %d finding(s) grandfathered by %s\n", grandfathered, *baselinePath)
		}
	}

	if *fix || *diff {
		contents, applied, skipped, err := lint.ApplyFixes(res.Fset, findings)
		if err != nil {
			fatal(err)
		}
		if *diff {
			for _, file := range sortedKeys(contents) {
				old, err := os.ReadFile(file)
				if err != nil {
					fatal(err)
				}
				fmt.Print(lint.Diff(file, old, contents[file]))
			}
			_ = applied
		} else {
			for _, file := range sortedKeys(contents) {
				if err := os.WriteFile(file, contents[file], 0o644); err != nil {
					fatal(err)
				}
			}
			fmt.Fprintf(os.Stderr, "kvet: applied %d fix(es) in %d file(s)\n", applied, len(contents))
			if skipped > 0 {
				fmt.Fprintf(os.Stderr, "kvet: %d overlapping fix(es) skipped; rerun -fix\n", skipped)
			}
			// Fixed findings are resolved; what remains gates the exit code.
			findings = withoutFixes(findings)
		}
	}

	if *sarifPath != "" {
		data, err := lint.SARIF(root, rules, findings)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*sarifPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	case *diff:
		// The diff is the output.
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "kvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// withoutFixes keeps the findings -fix could not resolve.
func withoutFixes(findings []lint.Finding) []lint.Finding {
	var out []lint.Finding
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			out = append(out, f)
		}
	}
	return out
}

// sortedKeys orders the fixed-file map for deterministic output.
func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kvet:", err)
	os.Exit(2)
}
