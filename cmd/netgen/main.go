// Command netgen emits synthetic benchmark circuits in the text netlist
// format.
//
//	netgen -circuit primary1 -scale 0.5 > primary1.nl   # suite circuit
//	netgen -cells 1000 -nets 1300 -rows 16 > custom.nl  # custom circuit
//	netgen -list                                        # show the suite
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/netgen"
	"repro/internal/netlist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netgen: ")

	var (
		list    = flag.Bool("list", false, "list the MCNC-suite circuit definitions")
		circuit = flag.String("circuit", "", "generate this suite circuit (fract ... avq.large)")
		scale   = flag.Float64("scale", 1.0, "suite scale factor")
		cells   = flag.Int("cells", 0, "custom circuit: movable cell count")
		nets    = flag.Int("nets", 0, "custom circuit: net count")
		rows    = flag.Int("rows", 0, "custom circuit: row count")
		blocks  = flag.Int("blocks", 0, "custom circuit: macro block count")
		seed    = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-10s %7s %7s %5s %5s %s\n", "circuit", "#cells", "#nets", "#rows", "#pads", "timing")
		for _, c := range netgen.MCNCSuite {
			t := ""
			if c.TimingBench {
				t = "yes"
			}
			fmt.Printf("%-10s %7d %7d %5d %5d %s\n", c.Name, c.Cells, c.Nets, c.Rows, c.Pads, t)
		}
	case *circuit != "":
		c := netgen.SuiteCircuit(*circuit)
		if c == nil {
			log.Fatalf("unknown suite circuit %q (try -list)", *circuit)
		}
		nl := netgen.GenerateSuite(*c, *scale, *seed)
		if err := netlist.Write(os.Stdout, nl); err != nil {
			log.Fatal(err)
		}
	case *cells > 0:
		if *nets <= 0 {
			*nets = *cells + *cells/3
		}
		if *rows <= 0 {
			*rows = 8
		}
		nl := netgen.Generate(netgen.Config{
			Name:   "custom",
			Cells:  *cells,
			Nets:   *nets,
			Rows:   *rows,
			Blocks: *blocks,
			Seed:   *seed,
		})
		if err := netlist.Write(os.Stdout, nl); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
