// Command kserved is the placement service daemon: an HTTP front end over
// internal/serve that queues placement jobs onto a worker pool with
// backpressure, per-job deadlines (expiry returns the best placement so
// far), cancellation, and a graceful SIGTERM drain that checkpoints
// in-flight jobs for later resumption.
//
//	kserved [-addr :8437] [-workers N] [-queue 16] [-deadline 0]
//	        [-checkpoint-dir DIR] [-slo 0] [-flight-cap 32]
//	        [-profile-on-breach 0]
//
// Endpoints:
//
//	POST /jobs                   submit {"netlist": "...", "k", "max_iter", "deadline_ms"};
//	                             honors/returns W3C traceparent
//	GET  /jobs                   list job statuses
//	GET  /jobs/{id}              one job's status
//	GET  /jobs/{id}/result       placed netlist (text interchange format)
//	GET  /jobs/{id}/events       live per-iteration convergence (SSE; ?poll=1 long-poll)
//	GET  /jobs/{id}/trace        the job's span tree (accept → queue → run → phases)
//	POST /jobs/{id}/cancel       cancel a job
//	GET  /healthz                service health (queue depth, active workers, drain state)
//	GET  /metrics                Prometheus text metrics (with p50/p95/p99 gauges)
//	GET  /debug/flightrecorder   recent anomaly bundles (panic, deadline miss,
//	                             rejection burst, SLO breach)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obsv"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kserved: ")

	var (
		addr     = flag.String("addr", ":8437", "HTTP listen address")
		workers  = flag.Int("workers", 0, "concurrent placements (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 16, "job queue depth; submissions beyond it get 429")
		deadline = flag.Duration("deadline", 0, "default per-job deadline (0 = none); expiry returns the best placement so far")
		ckptDir  = flag.String("checkpoint-dir", "", "write <job>.ckpt snapshots for jobs drained by shutdown")
		grace    = flag.Duration("grace", 30*time.Second, "shutdown drain budget")
		slo      = flag.Duration("slo", 0, "per-job run-time objective; breaches record a flight-recorder bundle (0 = off)")
		flightN  = flag.Int("flight-cap", 32, "flight-recorder ring capacity (negative disables)")
		profDur  = flag.Duration("profile-on-breach", 0, "CPU profile duration captured into the flight bundle on SLO breach (0 = off)")
	)
	flag.Parse()

	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	reg := obsv.NewRegistry()
	s := serve.New(serve.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		DefaultDeadline:   *deadline,
		CheckpointDir:     *ckptDir,
		Metrics:           reg,
		Now:               time.Now,
		SLO:               *slo,
		FlightRecorderCap: *flightN,
		ProfileOnBreach:   *profDur,
	})

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	//lint:ignore parpolicy long-lived HTTP accept loop for the daemon's whole life, not data parallelism
	go func() { errc <- hs.ListenAndServe() }()
	h := s.Health()
	fmt.Printf("serving on %s (%d workers, queue %d)\n", *addr, h.Workers, *queue)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("shutting down: draining jobs")

	dctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := s.Shutdown(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	for _, st := range s.Jobs() {
		if st.Checkpoint != "" {
			fmt.Printf("checkpointed %s at iteration %d: %s\n", st.ID, st.Iterations, st.Checkpoint)
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http server: %v", err)
	}
	fmt.Println("drained cleanly")
}
