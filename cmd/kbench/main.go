// Command kbench regenerates the paper's evaluation tables and experiments.
//
//	kbench -table 1            # Table 1 (wire length + CPU, all engines)
//	kbench -table 2            # Table 2 (relative comparison; runs Table 1)
//	kbench -table 3            # Table 3 (timing results)
//	kbench -table 4            # Table 4 (exploitation; runs Table 3)
//	kbench -exp fast           # §6.1 fast-vs-standard mode experiment
//	kbench -exp tradeoff       # §5 timing/area tradeoff curve
//	kbench -exp step           # hot-vs-cold engine phase breakdown (E10)
//	kbench -exp serve          # serving-layer throughput/latency (E12)
//	kbench -all                # everything
//
// The suite is scaled by -scale (default 0.12) so a full run finishes in
// minutes; -scale 1 reproduces the published circuit sizes (hours).
//
// Observability:
//
//	-trace run.jsonl     stream one JSON line per Kraftwerk transformation,
//	                     labeled with the circuit and engine
//	-metrics             dump the metrics registry (Prometheus text) on exit
//	-cpuprofile cpu.pb   write a runtime/pprof CPU profile
//	-memprofile mem.pb   write a heap profile on exit
//	-http :6060          debug server with /metrics and /debug/pprof/
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
	"repro/internal/density"
	"repro/internal/fft"
	"repro/internal/obsv"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbench: ")

	var (
		table    = flag.Int("table", 0, "paper table to regenerate (1-4)")
		exp      = flag.String("exp", "", "experiment: fast, tradeoff, ablation, scaling, step, serve")
		stepOut  = flag.String("step-out", "", "write the step experiment's JSON document to this file (e.g. BENCH_step.json)")
		stepIter = flag.Int("step-iter", 60, "max placement transformations per step-experiment run")
		stepPC   = flag.String("step-preconds", "", "comma-separated preconditioner sweep for the step experiment (default jacobi,ic0,auto; 'none' skips the sweep)")
		stepFM   = flag.String("step-fields", "", "comma-separated field-method sweep for the step experiment (default fft,rfft; 'none' skips the sweep)")
		stepChk  = flag.String("step-check", "", "compare the step experiment's hot run against this baseline BENCH_step.json and exit nonzero on regression")
		stepChkN = flag.Int("step-check-cells", 10000, "cell count of the row the -step-check gate compares")
		stepTol  = flag.Float64("step-check-tol", 0.20, "allowed fractional hot step-time regression for -step-check")
		srvJobs  = flag.Int("serve-jobs", 8, "job count for the serve experiment")
		srvCells = flag.Int("serve-cells", 2000, "cells per job for the serve experiment")
		srvIter  = flag.Int("serve-iter", 40, "max placement transformations per serve-experiment job")
		srvWork  = flag.Int("serve-workers", 0, "worker count for the serve experiment's concurrent pass (0 = GOMAXPROCS)")
		srvOut   = flag.String("serve-out", "", "write the serve experiment's JSON document to this file (e.g. BENCH_serve.json)")
		sizes    = flag.String("sizes", "", "comma-separated cell counts for the step experiment (default 2000,10000)")
		all      = flag.Bool("all", false, "run every table and experiment")
		scale    = flag.Float64("scale", 0.12, "suite scale factor (1.0 = published sizes)")
		seed     = flag.Int64("seed", 1998, "generation seed")
		circuits = flag.String("circuits", "", "comma-separated circuit filter (e.g. fract,struct)")
		quiet    = flag.Bool("q", false, "suppress per-engine progress lines")

		tracePath = flag.String("trace", "", "write a JSONL run trace (one record per transformation)")
		metrics   = flag.Bool("metrics", false, "dump the metrics registry as Prometheus text on exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		httpAddr  = flag.String("http", "", "serve /metrics and /debug/pprof/ on this address (e.g. :6060)")
	)
	flag.Parse()

	opts := bench.Options{Scale: *scale, Seed: *seed}
	if *circuits != "" {
		opts.Circuits = splitComma(*circuits)
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	if *metrics || *httpAddr != "" {
		opts.Metrics = obsv.NewRegistry()
		sparse.EnableMetrics(opts.Metrics)
		density.EnableMetrics(opts.Metrics)
		fft.EnableMetrics(opts.Metrics)
	}
	if *tracePath != "" {
		trace, err := obsv.OpenTrace(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		opts.Trace = trace
	}
	if *httpAddr != "" {
		http.Handle("/metrics", opts.Metrics)
		//lint:ignore parpolicy,golife background debug server: deliberately fire-and-forget, it lives for the whole process
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug server on %s (/metrics, /debug/pprof/)\n", *httpAddr)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	ran := false
	if *all || *table == 1 || *table == 2 {
		rows := bench.RunTable1(opts)
		if *all || *table == 1 {
			bench.PrintTable1(os.Stdout, rows)
			fmt.Println()
		}
		if *all || *table == 2 {
			bench.PrintTable2(os.Stdout, bench.Table2From(rows))
			fmt.Println()
		}
		ran = true
	}
	if *all || *table == 3 || *table == 4 {
		rows := bench.RunTable3(opts)
		if *all || *table == 3 {
			bench.PrintTable3(os.Stdout, rows)
			fmt.Println()
		}
		if *all || *table == 4 {
			bench.PrintTable4(os.Stdout, bench.Table4From(rows))
			fmt.Println()
		}
		ran = true
	}
	if *all || *exp == "fast" {
		bench.PrintFast(os.Stdout, bench.RunFastVsStandard(opts))
		fmt.Println()
		ran = true
	}
	if *all || *exp == "ablation" {
		circuit := "primary2"
		if len(opts.Circuits) > 0 {
			circuit = opts.Circuits[0]
		}
		rows, err := bench.RunAblation(opts, circuit)
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintAblation(os.Stdout, circuit, rows)
		fmt.Println()
		ran = true
	}
	if *all || *exp == "scaling" {
		bench.PrintScaling(os.Stdout, bench.RunScaling(opts, nil))
		fmt.Println()
		ran = true
	}
	if *all || *exp == "step" {
		var ns []int
		for _, s := range splitComma(*sizes) {
			var n int
			if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n <= 0 {
				log.Fatalf("bad -sizes entry %q", s)
			}
			ns = append(ns, n)
		}
		sweep := func(s string) []string {
			switch s {
			case "":
				return nil // bench default
			case "none":
				return []string{""}
			}
			return splitComma(s)
		}
		b := bench.RunStepBench(opts, ns, *stepIter, sweep(*stepPC), sweep(*stepFM))
		bench.PrintStepBench(os.Stdout, b)
		fmt.Println()
		if *stepChk != "" {
			f, err := os.Open(*stepChk)
			if err != nil {
				log.Fatal(err)
			}
			baseline, err := bench.ReadStepBench(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
			if err := bench.CheckStepRegression(b, baseline, *stepChkN, *stepTol); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "step-check ok: hot %d-cell step time within +%.0f%% of %s\n",
				*stepChkN, *stepTol*100, *stepChk)
		}
		if *stepOut != "" {
			f, err := os.Create(*stepOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := bench.WriteStepBench(f, b); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *stepOut)
		}
		ran = true
	}
	if *all || *exp == "serve" {
		b := bench.RunServeBench(opts, *srvJobs, *srvCells, *srvIter, *srvWork)
		bench.PrintServeBench(os.Stdout, b)
		fmt.Println()
		if *srvOut != "" {
			f, err := os.Create(*srvOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := bench.WriteServeBench(f, b); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *srvOut)
		}
		ran = true
	}
	if *all || *exp == "tradeoff" {
		circuit := "struct"
		if len(opts.Circuits) > 0 {
			circuit = opts.Circuits[0]
		}
		res, err := bench.RunTradeoff(opts, circuit, 0.15)
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintTradeoff(os.Stdout, res)
		fmt.Println()
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}

	if err := opts.Trace.Close(); err != nil {
		log.Fatalf("trace: %v", err)
	}
	if *tracePath != "" {
		fmt.Fprintf(os.Stderr, "wrote trace %s\n", *tracePath)
	}
	if *metrics {
		fmt.Println("\nmetrics:")
		if err := opts.Metrics.WritePrometheus(os.Stdout); err != nil {
			log.Fatalf("metrics: %v", err)
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
