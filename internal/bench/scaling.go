package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/legalize"
	"repro/internal/netgen"
	"repro/internal/place"
)

// ScaleRow is one design size of the scalability experiment: the paper's
// floorplanning motivation ("larger designs placed in less time") turns on
// near-linear growth of the placement cost with the cell count.
type ScaleRow struct {
	Cells      int
	GlobalCPU  float64
	FinalCPU   float64 // legalization + detailed improvement
	Iterations int
	WLPerCell  float64 // final HPWL per cell, a size-free quality proxy
}

// RunScaling places a geometric ladder of synthetic circuits with the
// standard configuration and records runtime growth.
func RunScaling(opts Options, sizes []int) []ScaleRow {
	opts.setDefaults()
	if len(sizes) == 0 {
		sizes = []int{250, 500, 1000, 2000, 4000}
	}
	var rows []ScaleRow
	for _, n := range sizes {
		nl := netgen.Generate(netgen.Config{
			Name:  fmt.Sprintf("scale-%d", n),
			Cells: n,
			Nets:  n + n/3,
			Rows:  rowsFor(n),
			Seed:  opts.Seed,
		})
		start := time.Now()
		res, err := place.Global(nl, opts.placeCfg(place.Config{}, nl))
		if err != nil {
			continue
		}
		globalCPU := time.Since(start).Seconds()
		startF := time.Now()
		if _, err := legalize.Legalize(nl, legalize.Options{}); err != nil {
			continue
		}
		row := ScaleRow{
			Cells:      n,
			GlobalCPU:  globalCPU,
			FinalCPU:   time.Since(startF).Seconds(),
			Iterations: res.Iterations,
			WLPerCell:  nl.HPWL() / float64(n),
		}
		rows = append(rows, row)
		opts.logf("scale %6d cells: global %.2fs + final %.2fs (%d iters)\n",
			n, row.GlobalCPU, row.FinalCPU, row.Iterations)
	}
	return rows
}

func rowsFor(n int) int {
	r := 4
	for r*r*8 < n {
		r *= 2
	}
	return r
}

// PrintScaling renders the ladder with growth factors between consecutive
// sizes.
func PrintScaling(w io.Writer, rows []ScaleRow) {
	fmt.Fprintln(w, "E8: runtime scaling of the standard configuration")
	fmt.Fprintf(w, "%8s | %9s %9s | %6s | %10s | %s\n",
		"#cells", "global[s]", "final[s]", "iters", "wl/cell", "total growth vs size growth")
	var prev *ScaleRow
	for i := range rows {
		r := &rows[i]
		growth := ""
		if prev != nil {
			szG := float64(r.Cells) / float64(prev.Cells)
			tG := (r.GlobalCPU + r.FinalCPU) / (prev.GlobalCPU + prev.FinalCPU + 1e-9)
			growth = fmt.Sprintf("%.1fx time for %.1fx cells", tG, szG)
		}
		fmt.Fprintf(w, "%8d | %9.2f %9.2f | %6d | %10.3f | %s\n",
			r.Cells, r.GlobalCPU, r.FinalCPU, r.Iterations, r.WLPerCell, growth)
		prev = r
	}
}
