package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/anneal"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/speedtd"
	"repro/internal/timing"
)

// TimingRun is one timing-driven method's result on one circuit.
type TimingRun struct {
	Without float64 // longest path without timing optimization (ns)
	With    float64 // with timing optimization (ns)
	CPU     float64 // seconds (timing-driven run)
}

// Table3Row is one circuit's row of Table 3.
type Table3Row struct {
	Circuit string

	TW    TimingRun // TimberWolf timing-driven [20] stand-in
	Speed TimingRun // SPEED [21] stand-in
	Ours  TimingRun

	LowerBound float64 // zero-wire-length bound (ns), shared
}

const nsPerSecond = 1e9

// RunTable3 executes the three timing-driven methods over the suite's
// timing circuits (fract, struct, biomed, avq.small, avq.large).
func RunTable3(opts Options) []Table3Row {
	opts.setDefaults()
	var rows []Table3Row
	for _, c := range netgen.MCNCSuite {
		if !c.TimingBench || !opts.wants(c.Name) {
			continue
		}
		base := netgen.GenerateSuite(c, opts.Scale, opts.Seed)
		// Electrical calibration per circuit: fixed physical chip span so
		// wire delay matters at every scale.
		params := timing.Calibrated(base)
		row := Table3Row{Circuit: c.Name}
		row.LowerBound = timing.LowerBound(base, params) * nsPerSecond

		row.TW = runTWTiming(base, params, opts.Seed)
		opts.logf("%-10s tw-timing  %.3g -> %.3g ns (%.2fs)\n", c.Name, row.TW.Without, row.TW.With, row.TW.CPU)
		row.Speed = runSpeed(base, params)
		opts.logf("%-10s speed      %.3g -> %.3g ns (%.2fs)\n", c.Name, row.Speed.Without, row.Speed.With, row.Speed.CPU)
		row.Ours = runOursTiming(&opts, base, params)
		opts.logf("%-10s ours       %.3g -> %.3g ns (%.2fs)\n", c.Name, row.Ours.Without, row.Ours.With, row.Ours.CPU)

		rows = append(rows, row)
	}
	return rows
}

// runTWTiming stands in for timing-driven TimberWolf [20]: annealing on the
// weighted wire length with criticality updates between stages.
func runTWTiming(base *netlist.Netlist, params timing.Params, seed int64) TimingRun {
	// Without: plain annealing.
	plain := base.Clone()
	if _, err := anneal.Place(plain, anneal.Config{Seed: seed}); err != nil {
		return TimingRun{}
	}
	finishLegalOnly(plain)
	without := timing.NewAnalyzer(plain, params).Analyze().MaxDelay

	// With: weighted annealing, criticality refresh per stage.
	nl := base.Clone()
	start := time.Now()
	analyzer := timing.NewAnalyzer(nl, params)
	weighter := timing.NewWeighter(nl)
	cfg := anneal.Config{Seed: seed, Weighted: true,
		BeforeStage: func(stage int, nl *netlist.Netlist) {
			weighter.Update(nl, analyzer.Analyze())
		}}
	if _, err := anneal.Place(nl, cfg); err != nil {
		return TimingRun{}
	}
	finishLegalOnly(nl)
	with := timing.NewAnalyzer(nl, params).Analyze().MaxDelay
	return TimingRun{
		Without: without * nsPerSecond,
		With:    with * nsPerSecond,
		CPU:     time.Since(start).Seconds(),
	}
}

// runSpeed stands in for SPEED [21]: static slack-derived weights and one
// weighted re-placement.
func runSpeed(base *netlist.Netlist, params timing.Params) TimingRun {
	nl := base.Clone()
	start := time.Now()
	res, err := speedtd.Place(nl, speedtd.Config{Params: params})
	if err != nil {
		return TimingRun{}
	}
	finish(nl)
	with := timing.NewAnalyzer(nl, params).Analyze().MaxDelay
	return TimingRun{
		Without: res.Before * nsPerSecond,
		With:    with * nsPerSecond,
		CPU:     time.Since(start).Seconds(),
	}
}

// runOursTiming is the paper's method: iterative criticality weighting
// inside the force-directed loop (§5).
func runOursTiming(o *Options, base *netlist.Netlist, params timing.Params) TimingRun {
	// Without: plain Kraftwerk.
	plain := base.Clone()
	if _, err := place.Global(plain, o.placeCfg(place.Config{}, plain)); err != nil {
		return TimingRun{}
	}
	finish(plain)
	without := timing.NewAnalyzer(plain, params).Analyze().MaxDelay

	nl := base.Clone()
	start := time.Now()
	if _, err := timing.PlaceDriven(nl, o.placeCfg(place.Config{}, nl), params, without); err != nil {
		return TimingRun{}
	}
	finish(nl)
	with := timing.NewAnalyzer(nl, params).Analyze().MaxDelay
	return TimingRun{
		Without: without * nsPerSecond,
		With:    with * nsPerSecond,
		CPU:     time.Since(start).Seconds(),
	}
}

// PrintTable3 renders Table 3.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: Timing Results: Longest Path and CPU Time")
	fmt.Fprintf(w, "%-10s | %9s %9s %7s | %9s %9s %7s | %9s %9s %7s\n",
		"circuit",
		"TW w/o", "TW with", "cpu[s]",
		"SP w/o", "SP with", "cpu[s]",
		"our w/o", "our with", "cpu[s]")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %9.2f %9.2f %7.2f | %9.2f %9.2f %7.2f | %9.2f %9.2f %7.2f\n",
			r.Circuit,
			r.TW.Without, r.TW.With, r.TW.CPU,
			r.Speed.Without, r.Speed.With, r.Speed.CPU,
			r.Ours.Without, r.Ours.With, r.Ours.CPU)
	}
}

// Table4Row derives the paper's exploitation measure: how much of the
// optimization potential (without − lower bound) each method used.
type Table4Row struct {
	Circuit    string
	LowerBound float64 // ns

	ExpTW, ExpSpeed, ExpOurs float64 // percent
	RelTW, RelSpeed          float64 // their CPU / ours (paper: >1 = slower)
}

// Table4From derives Table 4 from Table 3 results.
func Table4From(rows []Table3Row) []Table4Row {
	out := make([]Table4Row, 0, len(rows))
	for _, r := range rows {
		exp := func(t TimingRun) float64 {
			pot := t.Without - r.LowerBound
			if pot <= 0 {
				return 0
			}
			return 100 * (t.Without - t.With) / pot
		}
		rel := func(t TimingRun) float64 {
			if r.Ours.CPU <= 0 {
				return 0
			}
			return t.CPU / r.Ours.CPU
		}
		out = append(out, Table4Row{
			Circuit:    r.Circuit,
			LowerBound: r.LowerBound,
			ExpTW:      exp(r.TW), RelTW: rel(r.TW),
			ExpSpeed: exp(r.Speed), RelSpeed: rel(r.Speed),
			ExpOurs: exp(r.Ours),
		})
	}
	return out
}

// Table4Average computes the average row.
func Table4Average(rows []Table4Row) Table4Row {
	var avg Table4Row
	if len(rows) == 0 {
		return avg
	}
	for _, r := range rows {
		avg.ExpTW += r.ExpTW
		avg.ExpSpeed += r.ExpSpeed
		avg.ExpOurs += r.ExpOurs
		avg.RelTW += r.RelTW
		avg.RelSpeed += r.RelSpeed
	}
	n := float64(len(rows))
	avg.Circuit = "average"
	avg.ExpTW /= n
	avg.ExpSpeed /= n
	avg.ExpOurs /= n
	avg.RelTW /= n
	avg.RelSpeed /= n
	return avg
}

// PrintTable4 renders Table 4 with the average row.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table 4: Relative Timing Results: Exploitation of Optimization Potential and relative CPU requirements")
	fmt.Fprintf(w, "%-10s %11s | %8s %8s | %8s %8s | %8s\n",
		"circuit", "lower[ns]", "TW expl", "rel CPU", "SP expl", "rel CPU", "our expl")
	all := append(append([]Table4Row(nil), rows...), Table4Average(rows))
	for _, r := range all {
		fmt.Fprintf(w, "%-10s %11.2f | %7.1f%% %8.2f | %7.1f%% %8.2f | %7.1f%%\n",
			r.Circuit, r.LowerBound, r.ExpTW, r.RelTW, r.ExpSpeed, r.RelSpeed, r.ExpOurs)
	}
}
