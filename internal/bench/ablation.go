package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/density"
	"repro/internal/legalize"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/qp"
	"repro/internal/sparse"
)

// AblationRow is one design-choice variant's result.
type AblationRow struct {
	Variant    string
	WL         float64 // final legal HPWL (m)
	GlobalWL   float64 // HPWL before legalization (m)
	Iterations int
	CPU        float64
	Converged  bool
}

// RunAblation evaluates the design choices DESIGN.md calls out, one
// variant at a time against the default configuration on one circuit:
// net-weight linearization, the net model, the density-field evaluation
// method, and the density-grid resolution.
func RunAblation(opts Options, circuit string) ([]AblationRow, error) {
	opts.setDefaults()
	c := netgen.SuiteCircuit(circuit)
	if c == nil {
		return nil, fmt.Errorf("bench: unknown circuit %q", circuit)
	}
	base := netgen.GenerateSuite(*c, opts.Scale, opts.Seed)

	variants := []struct {
		name string
		cfg  place.Config
	}{
		{"default (clique, linearized, auto grid, FFT/auto)", place.Config{}},
		{"no linearization (pure quadratic)", place.Config{NoLinearize: true}},
		{"star net model", place.Config{NetModel: qp.Star}},
		{"hybrid net model (star >10 pins)", place.Config{NetModel: qp.Hybrid}},
		{"direct field evaluation (O(B²) oracle)", place.Config{FieldMethod: density.Direct}},
		{"coarse grid (half resolution)", place.Config{GridBins: halfAutoBins(base)}},
		{"fine grid (double resolution)", place.Config{GridBins: 2 * autoBins(base)}},
		{"IC(0) preconditioned CG (ICCG)", place.Config{CG: sparse.CGOptions{Precond: sparse.IC0}}},
	}

	var rows []AblationRow
	for _, v := range variants {
		nl := base.Clone()
		start := time.Now()
		res, err := place.Global(nl, opts.placeCfg(v.cfg, nl))
		if err != nil {
			return rows, fmt.Errorf("bench: ablation %q: %w", v.name, err)
		}
		globalWL := nl.HPWL() * metersPerUnit
		if _, err := legalize.Legalize(nl, legalize.Options{}); err != nil {
			return rows, fmt.Errorf("bench: ablation %q legalize: %w", v.name, err)
		}
		rows = append(rows, AblationRow{
			Variant:    v.name,
			WL:         nl.HPWL() * metersPerUnit,
			GlobalWL:   globalWL,
			Iterations: res.Iterations,
			CPU:        time.Since(start).Seconds(),
			Converged:  res.Converged,
		})
		opts.logf("ablation %-45s wl %.4g m (%d iters, %.2fs)\n",
			v.name, rows[len(rows)-1].WL, res.Iterations, rows[len(rows)-1].CPU)
	}
	return rows, nil
}

func autoBins(nl *netlist.Netlist) int {
	n := nl.NumMovable()
	b := 1
	for b*b < n {
		b *= 2
	}
	if b < 8 {
		b = 8
	}
	if b > 256 {
		b = 256
	}
	return b
}

func halfAutoBins(nl *netlist.Netlist) int {
	b := autoBins(nl) / 2
	if b < 4 {
		b = 4
	}
	return b
}

// PrintAblation renders the ablation comparison with deltas against the
// first (default) row.
func PrintAblation(w io.Writer, circuit string, rows []AblationRow) {
	fmt.Fprintf(w, "Ablation on %s: design-choice variants vs default\n", circuit)
	fmt.Fprintf(w, "%-46s | %10s %8s | %5s %7s %5s\n",
		"variant", "wl[m]", "Δwl[%]", "iters", "cpu[s]", "conv")
	if len(rows) == 0 {
		return
	}
	ref := rows[0].WL
	for _, r := range rows {
		delta := 0.0
		if ref > 0 {
			delta = 100 * (r.WL - ref) / ref
		}
		conv := "yes"
		if !r.Converged {
			conv = "no"
		}
		fmt.Fprintf(w, "%-46s | %10.4g %8.1f | %5d %7.2f %5s\n",
			r.Variant, r.WL, delta, r.Iterations, r.CPU, conv)
	}
}
