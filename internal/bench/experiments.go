package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/netgen"
	"repro/internal/place"
	"repro/internal/timing"
)

// FastRow is one circuit of experiment E5 (§6.1 prose): fast mode (K=1.0)
// versus standard mode (K=0.2).
type FastRow struct {
	Circuit string

	StdWL, StdCPU   float64
	FastWL, FastCPU float64
	// WLIncrease is the fast-mode wire-length increase in percent (paper:
	// ≈6 % on average).
	WLIncrease float64
	// SpeedUp is standard CPU / fast CPU (paper: ≈3×).
	SpeedUp float64
}

// RunFastVsStandard executes E5 over the (scaled) suite.
func RunFastVsStandard(opts Options) []FastRow {
	opts.setDefaults()
	var rows []FastRow
	for _, c := range netgen.MCNCSuite {
		if !opts.wants(c.Name) {
			continue
		}
		base := netgen.GenerateSuite(c, opts.Scale, opts.Seed)

		std := runKraftwerk(&opts, base, place.Config{K: 0.2})
		fast := runKraftwerk(&opts, base, place.Config{K: 1.0})
		opts.logf("%-10s std %.4g m %.2fs | fast %.4g m %.2fs\n",
			c.Name, std.WL, std.CPU, fast.WL, fast.CPU)

		row := FastRow{
			Circuit: c.Name,
			StdWL:   std.WL, StdCPU: std.CPU,
			FastWL: fast.WL, FastCPU: fast.CPU,
		}
		if std.WL > 0 {
			row.WLIncrease = 100 * (fast.WL - std.WL) / std.WL
		}
		if fast.CPU > 0 {
			row.SpeedUp = std.CPU / fast.CPU
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintFast renders E5 with an average row.
func PrintFast(w io.Writer, rows []FastRow) {
	fmt.Fprintln(w, "E5 (§6.1): Fast mode (K=1.0) vs standard mode (K=0.2)")
	fmt.Fprintf(w, "%-10s | %10s %7s | %10s %7s | %8s %8s\n",
		"circuit", "std wl[m]", "cpu[s]", "fast wl[m]", "cpu[s]", "+wl[%]", "speedup")
	var incSum, spSum float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %10.4g %7.2f | %10.4g %7.2f | %8.1f %8.2f\n",
			r.Circuit, r.StdWL, r.StdCPU, r.FastWL, r.FastCPU, r.WLIncrease, r.SpeedUp)
		incSum += r.WLIncrease
		spSum += r.SpeedUp
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(w, "%-10s | %10s %7s | %10s %7s | %8.1f %8.2f\n",
			"average", "", "", "", "", incSum/n, spSum/n)
	}
}

// TradeoffResult is experiment E6 (§5): the timing/area tradeoff curve
// recorded while meeting a timing requirement.
type TradeoffResult struct {
	Circuit    string
	Unopt      float64 // delay of the area-optimized placement (ns)
	Target     float64 // requirement (ns)
	Met        bool
	Final      float64 // delay of the returned placement (ns)
	HPWLStart  float64 // wire length at curve start (m)
	HPWLFinal  float64 // wire length of the returned placement (m)
	Curve      []timing.TradeoffPoint
	CPUSeconds float64
}

// RunTradeoff executes E6 on one circuit: the requirement is set between
// the unoptimized delay and the lower bound (fraction toward the bound).
func RunTradeoff(opts Options, circuit string, fraction float64) (TradeoffResult, error) {
	opts.setDefaults()
	if fraction <= 0 || fraction >= 1 {
		fraction = 0.3
	}
	c := netgen.SuiteCircuit(circuit)
	if c == nil {
		return TradeoffResult{}, fmt.Errorf("bench: unknown circuit %q", circuit)
	}
	nl := netgen.GenerateSuite(*c, opts.Scale, opts.Seed)
	params := timing.Calibrated(nl)

	// Probe the unoptimized delay to set a requirement.
	probe := nl.Clone()
	if _, err := place.Global(probe, opts.placeCfg(place.Config{}, probe)); err != nil {
		return TradeoffResult{}, err
	}
	unopt := timing.NewAnalyzer(probe, params).Analyze().MaxDelay
	lb := timing.LowerBound(probe, params)
	req := unopt - fraction*(unopt-lb)

	start := time.Now()
	res, err := timing.MeetRequirement(nl, opts.placeCfg(place.Config{}, nl), params, req, 0)
	if err != nil {
		return TradeoffResult{}, err
	}
	out := TradeoffResult{
		Circuit:    circuit,
		Unopt:      unopt * nsPerSecond,
		Target:     req * nsPerSecond,
		Met:        res.Met,
		Final:      res.Final * nsPerSecond,
		Curve:      res.Curve,
		HPWLFinal:  res.HPWL * metersPerUnit,
		CPUSeconds: time.Since(start).Seconds(),
	}
	if len(res.Curve) > 0 {
		out.HPWLStart = res.Curve[0].HPWL * metersPerUnit
	}
	return out, nil
}

// PrintTradeoff renders the E6 curve.
func PrintTradeoff(w io.Writer, r TradeoffResult) {
	fmt.Fprintf(w, "E6 (§5): timing/area tradeoff on %s — target %.2f ns (unoptimized %.2f ns)\n",
		r.Circuit, r.Target, r.Unopt)
	fmt.Fprintf(w, "%6s %12s %12s\n", "step", "wl [m]", "delay [ns]")
	for _, p := range r.Curve {
		fmt.Fprintf(w, "%6d %12.4g %12.2f\n", p.Step, p.HPWL*metersPerUnit, p.MaxDelay*nsPerSecond)
	}
	verdict := "NOT met"
	if r.Met {
		verdict = "met"
	}
	fmt.Fprintf(w, "requirement %s: final %.2f ns at %.4g m (started %.4g m), %.2fs\n",
		verdict, r.Final, r.HPWLFinal, r.HPWLStart, r.CPUSeconds)
}
