package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/density"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/sparse"
)

// StepPhases is one run's per-phase wall time in integer nanoseconds,
// mirroring place.PhaseTotals for the BENCH_step.json schema.
type StepPhases struct {
	Weight int64 `json:"weight_ns"`
	Gather int64 `json:"gather_ns"`
	Field  int64 `json:"field_ns"`
	Build  int64 `json:"build_ns"`
	SolveX int64 `json:"solve_x_ns"`
	SolveY int64 `json:"solve_y_ns"`
	// SolvePair is the concurrent x/y solve pair's wall time; the per-axis
	// entries are CPU times and can sum past Step when the pair overlaps.
	SolvePair int64 `json:"solve_pair_ns"`
	Step      int64 `json:"step_ns"`
}

func stepPhases(p place.PhaseTotals) StepPhases {
	return StepPhases{
		Weight:    p.Weight.Nanoseconds(),
		Gather:    p.Gather.Nanoseconds(),
		Field:     p.Field.Nanoseconds(),
		Build:     p.Build.Nanoseconds(),
		SolveX:    p.SolveX.Nanoseconds(),
		SolveY:    p.SolveY.Nanoseconds(),
		SolvePair: p.SolvePair.Nanoseconds(),
		Step:      p.Step.Nanoseconds(),
	}
}

// StepRun is one full placement run of the hot/cold comparison.
type StepRun struct {
	Iterations int        `json:"iterations"`
	CGIters    int        `json:"cg_iters"` // Σ(cg_iter_x + cg_iter_y) over the run
	StopReason string     `json:"stop_reason"`
	HPWL       float64    `json:"hpwl"`
	Overflow   float64    `json:"overflow"`
	WallSec    float64    `json:"wall_seconds"`
	Phases     StepPhases `json:"phases"`
}

// StepVariant is one hot run under an explicit solver-engine
// configuration of the preconditioner × field-method sweep. All variants
// run at the engine-default CG tolerance, like the cold/hot baselines.
// Caveat for the quality columns: a fixed-iteration snapshot far from
// convergence (the 50k row at 40 of ~300 transformations) is chaotically
// sensitive, so switching solver engine there shifts HPWL by a few
// percent in either direction — trajectory divergence, not solver
// quality. Where trajectories stay aligned (2k/10k) the deltas are
// below 0.25%, and solver-level equivalence is pinned by unit tests.
type StepVariant struct {
	Precond string `json:"precond"`
	Field   string `json:"field"`
	StepRun
}

// StepRow compares the cold (NoReuse + NoWarmStart) and hot (default)
// engines on one circuit size, plus the solver-engine variant sweep.
type StepRow struct {
	Cells    int           `json:"cells"`
	Nets     int           `json:"nets"`
	Cold     StepRun       `json:"cold"`
	Hot      StepRun       `json:"hot"`
	Variants []StepVariant `json:"variants,omitempty"`
}

// StepBench is the BENCH_step.json document: the hot-path engine's effect on
// the per-phase cost of place.Step across design sizes.
type StepBench struct {
	GOMAXPROCS int       `json:"gomaxprocs"`
	Seed       int64     `json:"seed"`
	MaxIter    int       `json:"max_iter"`
	Rows       []StepRow `json:"rows"`
}

// RunStepBench places a synthetic circuit per size twice — cold with every
// iteration-reuse cache disabled, hot with the default engine — and records
// the per-phase time breakdown of each run. Both runs start from identical
// clones with the same seed, so quality deltas isolate the reuse machinery.
// Every preconds × fields combination then runs hot as a labeled variant;
// nil slices default to the full jacobi/ic0/auto × fft/rfft sweep, and
// a single-element []string{""} on both suppresses the sweep.
func RunStepBench(opts Options, sizes []int, maxIter int, preconds, fields []string) StepBench {
	opts.setDefaults()
	if len(sizes) == 0 {
		sizes = []int{2000, 10000}
	}
	if maxIter <= 0 {
		maxIter = 60
	}
	if preconds == nil {
		preconds = []string{"jacobi", "ic0", "auto"}
	}
	if fields == nil {
		fields = []string{"fft", "rfft"}
	}
	b := StepBench{GOMAXPROCS: runtime.GOMAXPROCS(0), Seed: opts.Seed, MaxIter: maxIter}
	for _, n := range sizes {
		nets := n + n/3
		base := netgen.Generate(netgen.Config{
			Name:  fmt.Sprintf("step-%d", n),
			Cells: n,
			Nets:  nets,
			Rows:  rowsFor(n),
			Seed:  opts.Seed,
		})
		row := StepRow{Cells: n, Nets: nets}
		row.Cold = runStep(&opts, base, maxIter, true, "", "")
		opts.logf("step %6d cells cold: %6.2fs  %3d iters (%s)\n",
			n, row.Cold.WallSec, row.Cold.Iterations, row.Cold.StopReason)
		row.Hot = runStep(&opts, base, maxIter, false, "", "")
		opts.logf("step %6d cells hot:  %6.2fs  %3d iters (%s)\n",
			n, row.Hot.WallSec, row.Hot.Iterations, row.Hot.StopReason)
		for _, pc := range preconds {
			for _, fm := range fields {
				if pc == "" && fm == "" {
					continue
				}
				v := StepVariant{Precond: pc, Field: fm}
				v.StepRun = runStep(&opts, base, maxIter, false, pc, fm)
				opts.logf("step %6d cells %s/%s: %6.2fs  %3d iters  %6d cg-it (%s)\n",
					n, pc, fm, v.WallSec, v.Iterations, v.CGIters, v.StopReason)
				row.Variants = append(row.Variants, v)
			}
		}
		b.Rows = append(b.Rows, row)
	}
	return b
}

func runStep(o *Options, base *netlist.Netlist, maxIter int, cold bool, precond, field string) StepRun {
	nl := base.Clone()
	cgIters := 0
	pc, ok := sparse.ParsePreconditioner(precond)
	if !ok {
		return StepRun{StopReason: "error: unknown preconditioner " + precond}
	}
	fm, ok := density.ParseMethod(field)
	if !ok {
		return StepRun{StopReason: "error: unknown field method " + field}
	}
	cfg := o.placeCfg(place.Config{
		MaxIter:     maxIter,
		NoReuse:     cold,
		NoWarmStart: cold,
		CG:          sparse.CGOptions{Precond: pc},
		FieldMethod: fm,
	}, nl)
	prev := cfg.OnIteration
	cfg.OnIteration = func(s place.IterStats) {
		cgIters += s.CGIterX + s.CGIterY
		if prev != nil {
			prev(s)
		}
	}
	start := time.Now()
	res, err := place.Global(nl, cfg)
	if err != nil {
		return StepRun{StopReason: "error: " + err.Error()}
	}
	return StepRun{
		Iterations: res.Iterations,
		CGIters:    cgIters,
		StopReason: string(res.StopReason),
		HPWL:       res.HPWL,
		Overflow:   res.Overflow,
		WallSec:    time.Since(start).Seconds(),
		Phases:     stepPhases(res.Phases),
	}
}

// WriteStepBench writes the BENCH_step.json document.
func WriteStepBench(w io.Writer, b StepBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// PrintStepBench renders the comparison with per-phase hot-vs-cold speedups.
func PrintStepBench(w io.Writer, b StepBench) {
	fmt.Fprintf(w, "E10: hot-path engine, cold vs hot (gomaxprocs %d, max %d iters, seed %d)\n",
		b.GOMAXPROCS, b.MaxIter, b.Seed)
	fmt.Fprintf(w, "%8s %-12s | %8s %6s %7s | %9s %9s %9s %9s | %9s\n",
		"#cells", "mode", "wall[s]", "iters", "cg-it", "gather", "field", "build", "solve", "step")
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	for _, r := range b.Rows {
		modes := []struct {
			name string
			run  StepRun
		}{{"cold", r.Cold}, {"hot", r.Hot}}
		for _, v := range r.Variants {
			modes = append(modes, struct {
				name string
				run  StepRun
			}{v.Precond + "/" + v.Field, v.StepRun})
		}
		for _, m := range modes {
			p := m.run.Phases
			fmt.Fprintf(w, "%8d %-12s | %8.2f %6d %7d | %8.1fm %8.1fm %8.1fm %8.1fm | %8.1fm\n",
				r.Cells, m.name, m.run.WallSec, m.run.Iterations, m.run.CGIters,
				ms(p.Gather), ms(p.Field), ms(p.Build), ms(p.SolvePair), ms(p.Step))
		}
		// Per-iteration speedups, so differing stop iterations don't skew the
		// phase comparison; wall speedup is the end-to-end ratio.
		speed := func(cold, hot int64, ci, hi int) float64 {
			if hot <= 0 || ci <= 0 || hi <= 0 {
				return 0
			}
			return (float64(cold) / float64(ci)) / (float64(hot) / float64(hi))
		}
		// The solve column compares the pair's wall time; older documents
		// without it degrade to the per-axis sum on both sides.
		coldSolve, hotSolve := r.Cold.Phases.SolvePair, r.Hot.Phases.SolvePair
		if coldSolve <= 0 || hotSolve <= 0 {
			coldSolve = r.Cold.Phases.SolveX + r.Cold.Phases.SolveY
			hotSolve = r.Hot.Phases.SolveX + r.Hot.Phases.SolveY
		}
		fmt.Fprintf(w, "%8s %-12s | %8.2fx %6s %7s | %8.2fx %8.2fx %8.2fx %8.2fx | %8.2fx\n",
			"", "speed", r.Cold.WallSec/r.Hot.WallSec, "", "",
			speed(r.Cold.Phases.Gather, r.Hot.Phases.Gather, r.Cold.Iterations, r.Hot.Iterations),
			speed(r.Cold.Phases.Field, r.Hot.Phases.Field, r.Cold.Iterations, r.Hot.Iterations),
			speed(r.Cold.Phases.Build, r.Hot.Phases.Build, r.Cold.Iterations, r.Hot.Iterations),
			speed(coldSolve, hotSolve, r.Cold.Iterations, r.Hot.Iterations),
			speed(r.Cold.Phases.Step, r.Hot.Phases.Step, r.Cold.Iterations, r.Hot.Iterations))
	}
}

// ReadStepBench parses a BENCH_step.json document.
func ReadStepBench(r io.Reader) (StepBench, error) {
	var b StepBench
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return StepBench{}, fmt.Errorf("step bench document: %w", err)
	}
	return b, nil
}

// CheckStepRegression gates CI on the hot engine's step time: it compares
// the current hot run at the given cell count against the checked-in
// baseline document, normalized per iteration so differing -step-iter
// settings still compare, and errors when the current time exceeds the
// baseline by more than tol (0.20 = +20%).
func CheckStepRegression(cur, base StepBench, cells int, tol float64) error {
	find := func(b StepBench, what string) (StepRun, error) {
		for _, r := range b.Rows {
			if r.Cells == cells {
				return r.Hot, nil
			}
		}
		return StepRun{}, fmt.Errorf("%s document has no %d-cell row", what, cells)
	}
	c, err := find(cur, "current")
	if err != nil {
		return err
	}
	b, err := find(base, "baseline")
	if err != nil {
		return err
	}
	if c.Iterations <= 0 || b.Iterations <= 0 || c.Phases.Step <= 0 || b.Phases.Step <= 0 {
		return fmt.Errorf("step regression check needs positive iterations and step_ns (current %d/%d, baseline %d/%d)",
			c.Iterations, c.Phases.Step, b.Iterations, b.Phases.Step)
	}
	curNS := float64(c.Phases.Step) / float64(c.Iterations)
	baseNS := float64(b.Phases.Step) / float64(b.Iterations)
	if curNS > baseNS*(1+tol) {
		return fmt.Errorf("hot step time at %d cells regressed: %.1fms/iter vs baseline %.1fms/iter (+%.0f%% > +%.0f%% budget)",
			cells, curNS/1e6, baseNS/1e6, 100*(curNS/baseNS-1), 100*tol)
	}
	return nil
}
