package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
)

// StepPhases is one run's per-phase wall time in integer nanoseconds,
// mirroring place.PhaseTotals for the BENCH_step.json schema.
type StepPhases struct {
	Weight int64 `json:"weight_ns"`
	Gather int64 `json:"gather_ns"`
	Field  int64 `json:"field_ns"`
	Build  int64 `json:"build_ns"`
	SolveX int64 `json:"solve_x_ns"`
	SolveY int64 `json:"solve_y_ns"`
	Step   int64 `json:"step_ns"`
}

func stepPhases(p place.PhaseTotals) StepPhases {
	return StepPhases{
		Weight: p.Weight.Nanoseconds(),
		Gather: p.Gather.Nanoseconds(),
		Field:  p.Field.Nanoseconds(),
		Build:  p.Build.Nanoseconds(),
		SolveX: p.SolveX.Nanoseconds(),
		SolveY: p.SolveY.Nanoseconds(),
		Step:   p.Step.Nanoseconds(),
	}
}

// StepRun is one full placement run of the hot/cold comparison.
type StepRun struct {
	Iterations int        `json:"iterations"`
	CGIters    int        `json:"cg_iters"` // Σ(cg_iter_x + cg_iter_y) over the run
	StopReason string     `json:"stop_reason"`
	HPWL       float64    `json:"hpwl"`
	Overflow   float64    `json:"overflow"`
	WallSec    float64    `json:"wall_seconds"`
	Phases     StepPhases `json:"phases"`
}

// StepRow compares the cold (NoReuse + NoWarmStart) and hot (default)
// engines on one circuit size.
type StepRow struct {
	Cells int     `json:"cells"`
	Nets  int     `json:"nets"`
	Cold  StepRun `json:"cold"`
	Hot   StepRun `json:"hot"`
}

// StepBench is the BENCH_step.json document: the hot-path engine's effect on
// the per-phase cost of place.Step across design sizes.
type StepBench struct {
	GOMAXPROCS int       `json:"gomaxprocs"`
	Seed       int64     `json:"seed"`
	MaxIter    int       `json:"max_iter"`
	Rows       []StepRow `json:"rows"`
}

// RunStepBench places a synthetic circuit per size twice — cold with every
// iteration-reuse cache disabled, hot with the default engine — and records
// the per-phase time breakdown of each run. Both runs start from identical
// clones with the same seed, so quality deltas isolate the reuse machinery.
func RunStepBench(opts Options, sizes []int, maxIter int) StepBench {
	opts.setDefaults()
	if len(sizes) == 0 {
		sizes = []int{2000, 10000}
	}
	if maxIter <= 0 {
		maxIter = 60
	}
	b := StepBench{GOMAXPROCS: runtime.GOMAXPROCS(0), Seed: opts.Seed, MaxIter: maxIter}
	for _, n := range sizes {
		nets := n + n/3
		base := netgen.Generate(netgen.Config{
			Name:  fmt.Sprintf("step-%d", n),
			Cells: n,
			Nets:  nets,
			Rows:  rowsFor(n),
			Seed:  opts.Seed,
		})
		row := StepRow{Cells: n, Nets: nets}
		row.Cold = runStep(&opts, base, maxIter, true)
		opts.logf("step %6d cells cold: %6.2fs  %3d iters (%s)\n",
			n, row.Cold.WallSec, row.Cold.Iterations, row.Cold.StopReason)
		row.Hot = runStep(&opts, base, maxIter, false)
		opts.logf("step %6d cells hot:  %6.2fs  %3d iters (%s)\n",
			n, row.Hot.WallSec, row.Hot.Iterations, row.Hot.StopReason)
		b.Rows = append(b.Rows, row)
	}
	return b
}

func runStep(o *Options, base *netlist.Netlist, maxIter int, cold bool) StepRun {
	nl := base.Clone()
	cgIters := 0
	cfg := o.placeCfg(place.Config{
		MaxIter:     maxIter,
		NoReuse:     cold,
		NoWarmStart: cold,
	}, nl)
	prev := cfg.OnIteration
	cfg.OnIteration = func(s place.IterStats) {
		cgIters += s.CGIterX + s.CGIterY
		if prev != nil {
			prev(s)
		}
	}
	start := time.Now()
	res, err := place.Global(nl, cfg)
	if err != nil {
		return StepRun{StopReason: "error: " + err.Error()}
	}
	return StepRun{
		Iterations: res.Iterations,
		CGIters:    cgIters,
		StopReason: res.StopReason,
		HPWL:       res.HPWL,
		Overflow:   res.Overflow,
		WallSec:    time.Since(start).Seconds(),
		Phases:     stepPhases(res.Phases),
	}
}

// WriteStepBench writes the BENCH_step.json document.
func WriteStepBench(w io.Writer, b StepBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// PrintStepBench renders the comparison with per-phase hot-vs-cold speedups.
func PrintStepBench(w io.Writer, b StepBench) {
	fmt.Fprintf(w, "E10: hot-path engine, cold vs hot (gomaxprocs %d, max %d iters, seed %d)\n",
		b.GOMAXPROCS, b.MaxIter, b.Seed)
	fmt.Fprintf(w, "%8s %-5s | %8s %6s %7s | %9s %9s %9s %9s | %9s\n",
		"#cells", "mode", "wall[s]", "iters", "cg-it", "gather", "field", "build", "solve", "step")
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	for _, r := range b.Rows {
		for _, m := range []struct {
			name string
			run  StepRun
		}{{"cold", r.Cold}, {"hot", r.Hot}} {
			p := m.run.Phases
			fmt.Fprintf(w, "%8d %-5s | %8.2f %6d %7d | %8.1fm %8.1fm %8.1fm %8.1fm | %8.1fm\n",
				r.Cells, m.name, m.run.WallSec, m.run.Iterations, m.run.CGIters,
				ms(p.Gather), ms(p.Field), ms(p.Build), ms(p.SolveX+p.SolveY), ms(p.Step))
		}
		// Per-iteration speedups, so differing stop iterations don't skew the
		// phase comparison; wall speedup is the end-to-end ratio.
		speed := func(cold, hot int64, ci, hi int) float64 {
			if hot <= 0 || ci <= 0 || hi <= 0 {
				return 0
			}
			return (float64(cold) / float64(ci)) / (float64(hot) / float64(hi))
		}
		fmt.Fprintf(w, "%8s %-5s | %8.2fx %6s %7s | %8.2fx %8.2fx %8.2fx %8.2fx | %8.2fx\n",
			"", "speed", r.Cold.WallSec/r.Hot.WallSec, "", "",
			speed(r.Cold.Phases.Gather, r.Hot.Phases.Gather, r.Cold.Iterations, r.Hot.Iterations),
			speed(r.Cold.Phases.Field, r.Hot.Phases.Field, r.Cold.Iterations, r.Hot.Iterations),
			speed(r.Cold.Phases.Build, r.Hot.Phases.Build, r.Cold.Iterations, r.Hot.Iterations),
			speed(r.Cold.Phases.SolveX+r.Cold.Phases.SolveY, r.Hot.Phases.SolveX+r.Hot.Phases.SolveY,
				r.Cold.Iterations, r.Hot.Iterations),
			speed(r.Cold.Phases.Step, r.Hot.Phases.Step, r.Cold.Iterations, r.Hot.Iterations))
	}
}
