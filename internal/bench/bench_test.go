package bench

import (
	"os"
	"testing"
)

func TestSmokeTable1Fract(t *testing.T) {
	rows := RunTable1(Options{Scale: 1, Circuits: []string{"fract", "primary1"}, Progress: os.Stderr})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	PrintTable1(os.Stderr, rows)
	PrintTable2(os.Stderr, Table2From(rows))
}
