package bench

import (
	"math"
	"strings"
	"testing"
)

func sampleT1() []Table1Row {
	return []Table1Row{
		{
			Circuit: "alpha", Cells: 100, Nets: 120, Rows: 8,
			TWHigh: EngineRun{WL: 1.0, CPU: 10},
			TWMed:  EngineRun{WL: 1.1, CPU: 4},
			Gord:   EngineRun{WL: 1.2, CPU: 2},
			Ours:   EngineRun{WL: 0.9, CPU: 3},
		},
		{
			Circuit: "beta", Cells: 200, Nets: 260, Rows: 12,
			TWHigh: EngineRun{WL: 2.0, CPU: 20},
			TWMed:  EngineRun{WL: 2.4, CPU: 8},
			Gord:   EngineRun{WL: 2.2, CPU: 4},
			Ours:   EngineRun{WL: 2.0, CPU: 6},
		},
	}
}

func TestTable2FromMath(t *testing.T) {
	t2 := Table2From(sampleT1())
	if len(t2) != 2 {
		t.Fatalf("rows = %d", len(t2))
	}
	// alpha: ours 0.9 vs TW-high 1.0 -> 10% improvement; CPU 3/10 = 0.3.
	if math.Abs(t2[0].ImpTWHigh-10) > 1e-9 {
		t.Errorf("ImpTWHigh = %v", t2[0].ImpTWHigh)
	}
	if math.Abs(t2[0].RelTWHigh-0.3) > 1e-9 {
		t.Errorf("RelTWHigh = %v", t2[0].RelTWHigh)
	}
	// beta vs gordian: (2.2-2.0)/2.2 = 9.09%.
	if math.Abs(t2[1].ImpGord-100*0.2/2.2) > 1e-9 {
		t.Errorf("ImpGord = %v", t2[1].ImpGord)
	}
}

func TestTable2AverageAndZeroGuards(t *testing.T) {
	t2 := Table2From(sampleT1())
	avg := Table2Average(t2)
	if avg.Circuit != "average" {
		t.Error("missing average label")
	}
	want := (t2[0].ImpTWHigh + t2[1].ImpTWHigh) / 2
	if math.Abs(avg.ImpTWHigh-want) > 1e-9 {
		t.Errorf("avg ImpTWHigh = %v, want %v", avg.ImpTWHigh, want)
	}
	// Empty input.
	if z := Table2Average(nil); z.ImpGord != 0 {
		t.Error("empty average not zero")
	}
	// Zero-valued engine runs do not divide by zero.
	z := Table2From([]Table1Row{{Circuit: "zero"}})
	if z[0].ImpTWHigh != 0 || z[0].RelTWHigh != 0 {
		t.Error("zero guard failed")
	}
}

func sampleT3() []Table3Row {
	return []Table3Row{{
		Circuit:    "gamma",
		LowerBound: 10,
		TW:         TimingRun{Without: 30, With: 22, CPU: 8},
		Speed:      TimingRun{Without: 34, With: 30, CPU: 2},
		Ours:       TimingRun{Without: 28, With: 18, CPU: 4},
	}}
}

func TestTable4FromMath(t *testing.T) {
	t4 := Table4From(sampleT3())
	if len(t4) != 1 {
		t.Fatal("missing row")
	}
	r := t4[0]
	// TW: (30-22)/(30-10) = 40%.
	if math.Abs(r.ExpTW-40) > 1e-9 {
		t.Errorf("ExpTW = %v", r.ExpTW)
	}
	// Ours: (28-18)/(28-10) = 55.55%.
	if math.Abs(r.ExpOurs-100*10.0/18.0) > 1e-9 {
		t.Errorf("ExpOurs = %v", r.ExpOurs)
	}
	// Rel CPU: theirs/ours.
	if math.Abs(r.RelTW-2) > 1e-9 || math.Abs(r.RelSpeed-0.5) > 1e-9 {
		t.Errorf("rel cpu = %v %v", r.RelTW, r.RelSpeed)
	}
}

func TestTable4ZeroPotential(t *testing.T) {
	rows := []Table3Row{{Circuit: "flat", LowerBound: 30,
		Ours: TimingRun{Without: 30, With: 30, CPU: 1}}}
	t4 := Table4From(rows)
	if t4[0].ExpOurs != 0 {
		t.Errorf("zero potential exploitation = %v", t4[0].ExpOurs)
	}
}

func TestPrinters(t *testing.T) {
	var sb strings.Builder
	PrintTable1(&sb, sampleT1())
	if !strings.Contains(sb.String(), "alpha") || !strings.Contains(sb.String(), "Table 1") {
		t.Error("Table 1 output malformed")
	}
	sb.Reset()
	PrintTable2(&sb, Table2From(sampleT1()))
	if !strings.Contains(sb.String(), "average") {
		t.Error("Table 2 missing average row")
	}
	sb.Reset()
	PrintTable3(&sb, sampleT3())
	if !strings.Contains(sb.String(), "gamma") {
		t.Error("Table 3 output malformed")
	}
	sb.Reset()
	PrintTable4(&sb, Table4From(sampleT3()))
	if !strings.Contains(sb.String(), "%") {
		t.Error("Table 4 output malformed")
	}
	sb.Reset()
	PrintFast(&sb, []FastRow{{Circuit: "x", StdWL: 1, FastWL: 1.06, WLIncrease: 6, SpeedUp: 3}})
	if !strings.Contains(sb.String(), "6.0") {
		t.Error("E5 output malformed")
	}
}

func TestOptionsFilter(t *testing.T) {
	o := Options{Circuits: []string{"fract"}}
	if !o.wants("fract") || o.wants("biomed") {
		t.Error("filter broken")
	}
	var all Options
	if !all.wants("anything") {
		t.Error("empty filter should accept all")
	}
}

func TestRunTradeoffUnknownCircuit(t *testing.T) {
	if _, err := RunTradeoff(Options{Scale: 0.1}, "ghost", 0.3); err == nil {
		t.Error("expected error for unknown circuit")
	}
}

func TestRunAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("several placement runs")
	}
	rows, err := RunAblation(Options{Scale: 0.05}, "fract")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("ablation rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WL <= 0 {
			t.Errorf("variant %q produced no wire length", r.Variant)
		}
	}
	var sb strings.Builder
	PrintAblation(&sb, "fract", rows)
	if !strings.Contains(sb.String(), "default") {
		t.Error("ablation output missing default row")
	}
	if _, err := RunAblation(Options{Scale: 0.05}, "ghost"); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestRunScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("several placement runs")
	}
	rows := RunScaling(Options{}, []int{60, 120})
	if len(rows) != 2 {
		t.Fatalf("scaling rows = %d", len(rows))
	}
	if rows[1].GlobalCPU <= 0 || rows[1].WLPerCell <= 0 {
		t.Errorf("degenerate scaling row %+v", rows[1])
	}
	var sb strings.Builder
	PrintScaling(&sb, rows)
	if !strings.Contains(sb.String(), "growth") {
		t.Error("scaling output malformed")
	}
}

func TestRunFastVsStandardSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("two placement runs")
	}
	rows := RunFastVsStandard(Options{Scale: 0.05, Circuits: []string{"fract"}})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].StdWL <= 0 || rows[0].FastWL <= 0 {
		t.Errorf("degenerate E5 row %+v", rows[0])
	}
}

func TestRunTradeoffSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("meet-timing run")
	}
	res, err := RunTradeoff(Options{Scale: 0.05}, "fract", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) == 0 || res.Unopt <= 0 {
		t.Fatalf("degenerate tradeoff %+v", res)
	}
	var sb strings.Builder
	PrintTradeoff(&sb, res)
	if !strings.Contains(sb.String(), "tradeoff") {
		t.Error("tradeoff output malformed")
	}
}
