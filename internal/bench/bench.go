// Package bench regenerates the paper's evaluation (§6): Table 1 (wire
// length and CPU time for TimberWolf, Gordian/Domino, and Kraftwerk over
// the MCNC suite), Table 2 (relative comparisons), Tables 3 and 4 (timing
// results and exploitation of the optimization potential), and the two
// in-text experiments (fast-vs-standard mode, timing/area tradeoff).
//
// Absolute numbers cannot match a 1998 Alphastation run on the original
// MCNC data (DESIGN.md §3 documents every substitution); the harness
// reports the same rows and the comparisons the paper draws.
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/anneal"
	"repro/internal/gordian"
	"repro/internal/legalize"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/obsv"
	"repro/internal/place"
	"repro/internal/timing"
)

// Options controls a harness run.
type Options struct {
	// Scale shrinks the suite circuits (1.0 = the published sizes).
	// Defaults to 0.12, which keeps a full table run in the minutes range
	// on one core.
	Scale float64
	// Seed drives circuit generation and the stochastic engines.
	Seed int64
	// Circuits filters the suite by name (nil = all).
	Circuits []string
	// Progress, when non-nil, receives one line per engine run.
	Progress io.Writer
	// Trace, when non-nil, receives one JSONL record per Kraftwerk
	// placement transformation, labeled with the circuit and engine.
	Trace *obsv.TraceWriter
	// Metrics, when non-nil, collects the stack's counters and histograms
	// (CG solves, field evaluations, transformation timings).
	Metrics *obsv.Registry
}

func (o *Options) setDefaults() {
	if o.Scale <= 0 {
		o.Scale = 0.12
	}
	if o.Seed == 0 {
		o.Seed = 1998
	}
}

func (o *Options) wants(name string) bool {
	if len(o.Circuits) == 0 {
		return true
	}
	for _, c := range o.Circuits {
		if c == name {
			return true
		}
	}
	return false
}

func (o *Options) logf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format, args...)
	}
}

// traceRec is one harness run-trace line: the per-transformation stats
// labeled with their circuit and engine.
type traceRec struct {
	Circuit string `json:"circuit"`
	Engine  string `json:"engine"`
	place.IterStats
}

// traceMetaRec is the run-metadata header line written before a run's
// iteration records; the embedded RunMeta carries "type":"meta" so
// line-oriented consumers can split the stream into self-described runs.
type traceMetaRec struct {
	Circuit string `json:"circuit"`
	Engine  string `json:"engine"`
	place.RunMeta
}

// placeCfg threads the harness's observability options into a Kraftwerk
// config for a run on nl, writing the run-metadata header when tracing.
// Result.Trace retention is always suppressed — the harness only reads
// run aggregates, and at -scale 1 the O(iterations) stats of nine
// circuits are pure ballast.
func (o *Options) placeCfg(cfg place.Config, nl *netlist.Netlist) place.Config {
	cfg.NoTrace = true
	cfg.Metrics = o.Metrics
	if o.Trace != nil {
		trace := o.Trace
		_ = trace.Write(traceMetaRec{
			Circuit: nl.Name,
			Engine:  "kraftwerk",
			RunMeta: place.NewRunMeta(nl, cfg, o.Seed, time.Now()),
		})
		circuit := nl.Name
		prev := cfg.OnIteration
		cfg.OnIteration = func(s place.IterStats) {
			if prev != nil {
				prev(s)
			}
			_ = trace.Write(traceRec{Circuit: circuit, Engine: "kraftwerk", IterStats: s})
		}
	}
	return cfg
}

// metersPerUnit converts layout units to meters for the wire-length
// columns, matching the timing model's geometry.
var metersPerUnit = timing.DefaultParams().UnitMeters

// EngineRun is one engine's result on one circuit.
type EngineRun struct {
	WL  float64 // final legal HPWL in meters
	CPU float64 // seconds
}

// Table1Row is one circuit's row of Table 1.
type Table1Row struct {
	Circuit string
	Cells   int
	Nets    int
	Rows    int

	TWHigh EngineRun // TimberWolf [19] stand-in (high effort)
	TWMed  EngineRun // TimberWolf [18] stand-in (medium effort)
	Gord   EngineRun // Gordian/Domino [17] stand-in
	Ours   EngineRun // Kraftwerk + Domino-style final placement
}

// RunTable1 executes all four engines over the (scaled) suite.
func RunTable1(opts Options) []Table1Row {
	opts.setDefaults()
	var rows []Table1Row
	for _, c := range netgen.MCNCSuite {
		if !opts.wants(c.Name) {
			continue
		}
		base := netgen.GenerateSuite(c, opts.Scale, opts.Seed)
		st := netlist.ComputeStats(base)
		row := Table1Row{Circuit: c.Name, Cells: st.Cells, Nets: st.Nets, Rows: st.Rows}

		row.TWHigh = runAnneal(base, anneal.Config{Effort: anneal.High, Seed: opts.Seed})
		opts.logf("%-10s tw-high  wl %.4g m cpu %.2fs\n", c.Name, row.TWHigh.WL, row.TWHigh.CPU)
		row.TWMed = runAnneal(base, anneal.Config{Effort: anneal.Medium, Seed: opts.Seed})
		opts.logf("%-10s tw-med   wl %.4g m cpu %.2fs\n", c.Name, row.TWMed.WL, row.TWMed.CPU)
		row.Gord = runGordian(base, gordian.Config{Seed: opts.Seed})
		opts.logf("%-10s gordian  wl %.4g m cpu %.2fs\n", c.Name, row.Gord.WL, row.Gord.CPU)
		row.Ours = runKraftwerk(&opts, base, place.Config{})
		opts.logf("%-10s ours     wl %.4g m cpu %.2fs\n", c.Name, row.Ours.WL, row.Ours.CPU)

		rows = append(rows, row)
	}
	return rows
}

// finish runs the Domino-style final placement, as the paper does for both
// Gordian and Kraftwerk (§6.1).
func finish(nl *netlist.Netlist) {
	_, _ = legalize.Legalize(nl, legalize.Options{})
}

// finishLegalOnly snaps to legal rows without the Domino-style improver:
// the paper's TimberWolf columns are standalone annealing results.
func finishLegalOnly(nl *netlist.Netlist) {
	_, _ = legalize.Legalize(nl, legalize.Options{DetailedPasses: -1})
}

func runAnneal(base *netlist.Netlist, cfg anneal.Config) EngineRun {
	nl := base.Clone()
	start := time.Now()
	if _, err := anneal.Place(nl, cfg); err != nil {
		return EngineRun{}
	}
	finishLegalOnly(nl)
	return EngineRun{WL: nl.HPWL() * metersPerUnit, CPU: time.Since(start).Seconds()}
}

func runGordian(base *netlist.Netlist, cfg gordian.Config) EngineRun {
	nl := base.Clone()
	start := time.Now()
	if _, err := gordian.Place(nl, cfg); err != nil {
		return EngineRun{}
	}
	finish(nl)
	return EngineRun{WL: nl.HPWL() * metersPerUnit, CPU: time.Since(start).Seconds()}
}

func runKraftwerk(o *Options, base *netlist.Netlist, cfg place.Config) EngineRun {
	nl := base.Clone()
	start := time.Now()
	if _, err := place.Global(nl, o.placeCfg(cfg, nl)); err != nil {
		return EngineRun{}
	}
	finish(nl)
	return EngineRun{WL: nl.HPWL() * metersPerUnit, CPU: time.Since(start).Seconds()}
}

// PrintTable1 renders the rows in the paper's Table 1 layout.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: Benchmarks: Wire Length and CPU Time")
	fmt.Fprintf(w, "%-10s %7s %7s %5s | %10s %8s | %10s %8s | %10s %8s | %10s %8s\n",
		"circuit", "#cells", "#nets", "#rows",
		"TW[19] wl", "cpu[s]", "TW[18] wl", "cpu[s]", "Go/Do wl", "cpu[s]", "ours wl", "cpu[s]")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %7d %7d %5d | %10.4g %8.2f | %10.4g %8.2f | %10.4g %8.2f | %10.4g %8.2f\n",
			r.Circuit, r.Cells, r.Nets, r.Rows,
			r.TWHigh.WL, r.TWHigh.CPU,
			r.TWMed.WL, r.TWMed.CPU,
			r.Gord.WL, r.Gord.CPU,
			r.Ours.WL, r.Ours.CPU)
	}
}

// Table2Row is one circuit's comparison row (improvement % of our wire
// length over each method, and our CPU relative to theirs).
type Table2Row struct {
	Circuit                      string
	ImpTWHigh, ImpTWMed, ImpGord float64 // percent; positive = ours better
	RelTWHigh, RelTWMed, RelGord float64 // our CPU / theirs
}

// Table2From derives Table 2 from Table 1 results.
func Table2From(rows []Table1Row) []Table2Row {
	out := make([]Table2Row, 0, len(rows))
	for _, r := range rows {
		imp := func(other EngineRun) float64 {
			if other.WL <= 0 {
				return 0
			}
			return 100 * (other.WL - r.Ours.WL) / other.WL
		}
		rel := func(other EngineRun) float64 {
			if other.CPU <= 0 {
				return 0
			}
			return r.Ours.CPU / other.CPU
		}
		out = append(out, Table2Row{
			Circuit:   r.Circuit,
			ImpTWHigh: imp(r.TWHigh), RelTWHigh: rel(r.TWHigh),
			ImpTWMed: imp(r.TWMed), RelTWMed: rel(r.TWMed),
			ImpGord: imp(r.Gord), RelGord: rel(r.Gord),
		})
	}
	return out
}

// Averages of a Table 2 slice (the paper's "average" row).
func Table2Average(rows []Table2Row) Table2Row {
	var avg Table2Row
	if len(rows) == 0 {
		return avg
	}
	for _, r := range rows {
		avg.ImpTWHigh += r.ImpTWHigh
		avg.ImpTWMed += r.ImpTWMed
		avg.ImpGord += r.ImpGord
		avg.RelTWHigh += r.RelTWHigh
		avg.RelTWMed += r.RelTWMed
		avg.RelGord += r.RelGord
	}
	n := float64(len(rows))
	avg.Circuit = "average"
	avg.ImpTWHigh /= n
	avg.ImpTWMed /= n
	avg.ImpGord /= n
	avg.RelTWHigh /= n
	avg.RelTWMed /= n
	avg.RelGord /= n
	return avg
}

// PrintTable2 renders Table 2 with the average row.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: Comparisons to Other Approaches: Wire Length Improvement and Relative CPU Times")
	fmt.Fprintf(w, "%-10s | %9s %8s | %9s %8s | %9s %8s\n",
		"circuit", "%imp TW19", "rel CPU", "%imp TW18", "rel CPU", "%imp GoDo", "rel CPU")
	all := append(append([]Table2Row(nil), rows...), Table2Average(rows))
	for _, r := range all {
		fmt.Fprintf(w, "%-10s | %9.1f %8.2f | %9.1f %8.2f | %9.1f %8.2f\n",
			r.Circuit, r.ImpTWHigh, r.RelTWHigh, r.ImpTWMed, r.RelTWMed, r.ImpGord, r.RelGord)
	}
}
