package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/serve"
)

// ServeRun is one pass of the serving experiment: the same job batch
// pushed through a serve.Server with a given worker count.
type ServeRun struct {
	Workers int `json:"workers"`
	// WallSec is submit-first to last-job-terminal.
	WallSec float64 `json:"wall_seconds"`
	// Throughput is completed jobs per second of wall time.
	Throughput float64 `json:"jobs_per_second"`
	// Latency is submit-to-terminal per job, so it includes queue wait —
	// the number a service client actually experiences.
	LatMeanSec float64 `json:"latency_mean_seconds"`
	LatP50Sec  float64 `json:"latency_p50_seconds"`
	LatMaxSec  float64 `json:"latency_max_seconds"`
	// RunMeanSec is started-to-terminal per job: pure placement time,
	// which exposes per-job slowdown from core contention.
	RunMeanSec float64 `json:"run_mean_seconds"`
	// QueueWaitMeanSec/QueueWaitMaxSec split the latency's other half out:
	// submit-to-started per job. LatMean ≈ QueueWaitMean + RunMean, so
	// this is the attribution that tells scheduling problems (long waits)
	// apart from contention problems (long runs).
	QueueWaitMeanSec float64 `json:"queue_wait_mean_seconds"`
	QueueWaitMaxSec  float64 `json:"queue_wait_max_seconds"`
	Failed           int     `json:"failed"`
}

// ServeBench is the BENCH_serve.json document: throughput and latency of
// N identical placement jobs through the serving layer, sequential
// (1 worker) versus concurrent (GOMAXPROCS workers).
type ServeBench struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	Jobs       int      `json:"jobs"`
	Cells      int      `json:"cells"`
	MaxIter    int      `json:"max_iter"`
	Seed       int64    `json:"seed"`
	Sequential ServeRun `json:"sequential"`
	Concurrent ServeRun `json:"concurrent"`
}

// RunServeBench submits the same batch of `jobs` synthetic circuits to a
// placement service twice — one worker, then `workers` workers
// (0 = GOMAXPROCS) — and measures batch wall time and per-job latency.
// Each job is an independent design (distinct seed), as a real job mix
// would be.
func RunServeBench(opts Options, jobs, cells, maxIter, workers int) ServeBench {
	opts.setDefaults()
	if jobs <= 0 {
		jobs = 8
	}
	if cells <= 0 {
		cells = 2000
	}
	if maxIter <= 0 {
		maxIter = 40
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batch := make([]*netlist.Netlist, jobs)
	for i := range batch {
		batch[i] = netgen.Generate(netgen.Config{
			Name:  fmt.Sprintf("serve-%d", i),
			Cells: cells,
			Nets:  cells + cells/3,
			Rows:  rowsFor(cells),
			Seed:  opts.Seed + int64(i),
		})
	}
	b := ServeBench{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Jobs:       jobs, Cells: cells, MaxIter: maxIter, Seed: opts.Seed,
	}
	b.Sequential = runServe(&opts, batch, maxIter, 1)
	opts.logf("serve %d jobs x %d cells, 1 worker:  %6.2fs (%.2f jobs/s)\n",
		jobs, cells, b.Sequential.WallSec, b.Sequential.Throughput)
	b.Concurrent = runServe(&opts, batch, maxIter, workers)
	opts.logf("serve %d jobs x %d cells, %d workers: %6.2fs (%.2f jobs/s)\n",
		jobs, cells, workers, b.Concurrent.WallSec, b.Concurrent.Throughput)
	return b
}

func runServe(o *Options, batch []*netlist.Netlist, maxIter, workers int) ServeRun {
	srv := serve.New(serve.Config{
		Workers:    workers,
		QueueDepth: len(batch),
		Now:        time.Now,
	})
	start := time.Now()
	handles := make([]*serve.Job, 0, len(batch))
	for _, nl := range batch {
		j, err := srv.Submit(serve.JobRequest{
			Netlist: nl.Clone(),
			Config:  place.Config{MaxIter: maxIter},
		})
		if err != nil {
			o.logf("serve submit: %v\n", err)
			continue
		}
		handles = append(handles, j)
	}
	for _, j := range handles {
		for !j.Done() {
			time.Sleep(time.Millisecond)
		}
	}
	wall := time.Since(start)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		o.logf("serve shutdown: %v\n", err)
	}

	r := ServeRun{Workers: workers, WallSec: wall.Seconds()}
	lat := make([]float64, 0, len(handles))
	var latSum, runSum, waitSum, waitMax float64
	for _, j := range handles {
		st := j.Status()
		if st.State == serve.StateFailed {
			r.Failed++
			continue
		}
		l := st.FinishedAt.Sub(st.SubmittedAt).Seconds()
		lat = append(lat, l)
		latSum += l
		runSum += st.FinishedAt.Sub(st.StartedAt).Seconds()
		wq := st.StartedAt.Sub(st.SubmittedAt).Seconds()
		waitSum += wq
		if wq > waitMax {
			waitMax = wq
		}
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		r.Throughput = float64(len(lat)) / wall.Seconds()
		r.LatMeanSec = latSum / float64(len(lat))
		r.LatP50Sec = lat[len(lat)/2]
		r.LatMaxSec = lat[len(lat)-1]
		r.RunMeanSec = runSum / float64(len(lat))
		r.QueueWaitMeanSec = waitSum / float64(len(lat))
		r.QueueWaitMaxSec = waitMax
	}
	return r
}

// WriteServeBench writes the BENCH_serve.json document.
func WriteServeBench(w io.Writer, b ServeBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// PrintServeBench renders the sequential/concurrent comparison.
func PrintServeBench(w io.Writer, b ServeBench) {
	fmt.Fprintf(w, "E12: placement service throughput (%d jobs x %d cells, max %d iters, gomaxprocs %d, seed %d)\n",
		b.Jobs, b.Cells, b.MaxIter, b.GOMAXPROCS, b.Seed)
	fmt.Fprintf(w, "%-12s | %8s %8s | %9s %9s %9s | %9s %9s\n",
		"mode", "wall[s]", "jobs/s", "lat-mean", "lat-p50", "lat-max", "wait-mean", "run-mean")
	row := func(name string, r ServeRun) {
		fmt.Fprintf(w, "%-12s | %8.2f %8.2f | %8.2fs %8.2fs %8.2fs | %8.2fs %8.2fs\n",
			fmt.Sprintf("%s (w=%d)", name, r.Workers), r.WallSec, r.Throughput,
			r.LatMeanSec, r.LatP50Sec, r.LatMaxSec, r.QueueWaitMeanSec, r.RunMeanSec)
	}
	row("sequential", b.Sequential)
	row("concurrent", b.Concurrent)
	if b.Concurrent.WallSec > 0 {
		fmt.Fprintf(w, "%-12s | %8.2fx\n", "speedup", b.Sequential.WallSec/b.Concurrent.WallSec)
	}
}
