package density

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/netlist"
)

func gridded(t *testing.T, nCells int, nx, ny int, seed int64) (*netlist.Netlist, *Grid) {
	t.Helper()
	nl := netgen.Generate(netgen.Config{Name: "d", Cells: nCells, Nets: nCells + nCells/4, Rows: 8, Seed: seed})
	netgen.ScatterRandom(nl, seed)
	g := NewGrid(nl.Region.Outline, nx, ny)
	g.Accumulate(nl)
	return nl, g
}

func TestDemandConservation(t *testing.T) {
	nl, g := gridded(t, 300, 16, 16, 1)
	var total float64
	for _, d := range g.Demand {
		total += d
	}
	if want := nl.MovableArea(); math.Abs(total-want) > 1e-6*want {
		t.Errorf("total demand = %v, movable area = %v", total, want)
	}
}

func TestTotalDIsZero(t *testing.T) {
	nl, g := gridded(t, 300, 16, 16, 2)
	if d := g.TotalD(); math.Abs(d) > 1e-6*nl.MovableArea() {
		t.Errorf("∫D = %v, want 0", d)
	}
}

func TestDemandConservedForOffRegionCells(t *testing.T) {
	// A cell hanging outside the region must still deposit its full area.
	region := geom.NewRect(0, 0, 10, 10)
	g := NewGrid(region, 8, 8)
	g.AddArea(geom.RectCenteredAt(geom.Point{X: -5, Y: 5}, 2, 2), 1)
	var total float64
	for _, d := range g.Demand {
		total += d
	}
	if math.Abs(total-4) > 1e-9 {
		t.Errorf("off-region demand = %v, want 4", total)
	}
}

func TestUniformPlacementHasLowOverflow(t *testing.T) {
	// Cells spread perfectly evenly: overflow should be small.
	region := geom.NewRect(0, 0, 16, 16)
	nl := &netlist.Netlist{Region: geom.Region{Outline: region}}
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			nl.Cells = append(nl.Cells, netlist.Cell{
				W: 0.8, H: 0.8,
				Pos: geom.Point{X: float64(x) + 0.5, Y: float64(y) + 0.5},
			})
		}
	}
	g := NewGrid(region, 16, 16)
	g.Accumulate(nl)
	if ov := g.Overflow(); ov > 0.05 {
		t.Errorf("uniform overflow = %v", ov)
	}
}

func TestClusteredPlacementHasHighOverflow(t *testing.T) {
	region := geom.NewRect(0, 0, 16, 16)
	nl := &netlist.Netlist{Region: geom.Region{Outline: region}}
	for i := 0; i < 64; i++ {
		nl.Cells = append(nl.Cells, netlist.Cell{
			W: 1, H: 1, Pos: geom.Point{X: 8, Y: 8},
		})
	}
	g := NewGrid(region, 16, 16)
	g.Accumulate(nl)
	if ov := g.Overflow(); ov < 0.5 {
		t.Errorf("clustered overflow = %v, want high", ov)
	}
}

func TestFieldRepelsFromCluster(t *testing.T) {
	// All demand at the center: field must point away from the center.
	region := geom.NewRect(0, 0, 16, 16)
	g := NewGrid(region, 16, 16)
	g.Demand[g.Idx(8, 8)] = 64
	g.finish()
	f := ComputeField(g, Direct)
	probe := []geom.Point{{X: 2, Y: 8.25}, {X: 14, Y: 8.25}, {X: 8.25, Y: 2}, {X: 8.25, Y: 14}}
	center := g.BinCenter(8, 8)
	for _, p := range probe {
		v := f.At(p)
		away := p.Sub(center)
		if dot := v.X*away.X + v.Y*away.Y; dot <= 0 {
			t.Errorf("field at %v = %v does not repel from center", p, v)
		}
	}
}

func TestFieldAttractsTowardVoid(t *testing.T) {
	// Demand uniformly except a hole on the right: field near the hole
	// points into it.
	region := geom.NewRect(0, 0, 16, 16)
	g := NewGrid(region, 16, 16)
	for iy := 0; iy < 16; iy++ {
		for ix := 0; ix < 16; ix++ {
			if ix < 12 {
				g.Demand[g.Idx(ix, iy)] = 1
			}
		}
	}
	g.finish()
	f := ComputeField(g, Direct)
	v := f.At(geom.Point{X: 11, Y: 8})
	if v.X <= 0 {
		t.Errorf("field near void = %v, want +X pull", v)
	}
}

func TestFFTMatchesDirect(t *testing.T) {
	_, g := gridded(t, 400, 32, 32, 3)
	fd := ComputeField(g, Direct)
	ff := ComputeField(g, FFT)
	scale := fd.MaxMagnitude()
	if scale == 0 {
		t.Fatal("zero field")
	}
	for i := range fd.FX {
		if math.Abs(fd.FX[i]-ff.FX[i]) > 1e-6*scale || math.Abs(fd.FY[i]-ff.FY[i]) > 1e-6*scale {
			t.Fatalf("bin %d: direct (%g,%g) vs fft (%g,%g)",
				i, fd.FX[i], fd.FY[i], ff.FX[i], ff.FY[i])
		}
	}
}

func TestAutoSelectsByGridSize(t *testing.T) {
	_, gSmall := gridded(t, 100, 16, 16, 4)
	_, gBig := gridded(t, 100, 64, 64, 4)
	// Just exercise both paths through Auto; equality with the explicit
	// methods proves the dispatch.
	fa := ComputeField(gSmall, Auto)
	fd := ComputeField(gSmall, Direct)
	for i := range fa.FX {
		if fa.FX[i] != fd.FX[i] {
			t.Fatal("Auto on small grid did not match Direct")
		}
	}
	fb := ComputeField(gBig, Auto)
	ffft := ComputeField(gBig, RealFFT)
	for i := range fb.FX {
		if fb.FX[i] != ffft.FX[i] {
			t.Fatal("Auto on big grid did not match RealFFT")
		}
	}
}

func TestFieldIsNearlyCurlFree(t *testing.T) {
	_, g := gridded(t, 500, 32, 32, 5)
	f := ComputeField(g, Direct)
	if c := f.Curl(); c > 0.2 {
		t.Errorf("relative curl = %v, want small (requirement 3)", c)
	}
}

func TestFieldAtInterpolates(t *testing.T) {
	region := geom.NewRect(0, 0, 4, 4)
	g := NewGrid(region, 4, 4)
	f := &Field{grid: g, FX: make([]float64, 16), FY: make([]float64, 16)}
	f.FX[g.Idx(1, 1)] = 1
	f.FX[g.Idx(2, 1)] = 3
	// Halfway between bin centers (1.5,1.5) and (2.5,1.5).
	v := f.At(geom.Point{X: 2.0, Y: 1.5})
	if math.Abs(v.X-2) > 1e-9 {
		t.Errorf("interp = %v, want 2", v.X)
	}
	// Clamping outside the region.
	_ = f.At(geom.Point{X: -100, Y: 100})
}

func TestMaxMagnitude(t *testing.T) {
	region := geom.NewRect(0, 0, 4, 4)
	g := NewGrid(region, 4, 4)
	f := &Field{grid: g, FX: make([]float64, 16), FY: make([]float64, 16)}
	f.FX[5] = 3
	f.FY[5] = 4
	if m := f.MaxMagnitude(); math.Abs(m-5) > 1e-12 {
		t.Errorf("MaxMagnitude = %v", m)
	}
}

func TestLargestEmptySquare(t *testing.T) {
	region := geom.NewRect(0, 0, 8, 8)
	g := NewGrid(region, 8, 8)
	// Fill everything except a 3x3 empty block.
	for iy := 0; iy < 8; iy++ {
		for ix := 0; ix < 8; ix++ {
			if ix >= 2 && ix < 5 && iy >= 3 && iy < 6 {
				continue
			}
			g.Demand[g.Idx(ix, iy)] = 1
		}
	}
	g.finish()
	got := g.LargestEmptySquare(0.25)
	if math.Abs(got-9) > 1e-9 { // 3x3 bins of 1x1
		t.Errorf("LargestEmptySquare = %v, want 9", got)
	}
}

func TestLargestEmptySquareFullyOccupied(t *testing.T) {
	region := geom.NewRect(0, 0, 4, 4)
	g := NewGrid(region, 4, 4)
	for i := range g.Demand {
		g.Demand[i] = 1
	}
	g.finish()
	if got := g.LargestEmptySquare(0.25); got != 0 {
		t.Errorf("occupied grid empty square = %v", got)
	}
}

func TestSetExtraShiftsDensity(t *testing.T) {
	nl, g := gridded(t, 200, 16, 16, 6)
	base := append([]float64(nil), g.D...)
	extra := make([]float64, 256)
	extra[g.Idx(3, 3)] = 10
	g.SetExtra(extra)
	g.Accumulate(nl)
	if g.D[g.Idx(3, 3)] <= base[g.Idx(3, 3)] {
		t.Error("extra demand did not raise density")
	}
	if d := g.TotalD(); math.Abs(d) > 1e-6*nl.MovableArea() {
		t.Errorf("∫D with extra = %v, want 0", d)
	}
	g.SetExtra(nil)
	g.Accumulate(nl)
	for i := range g.D {
		if math.Abs(g.D[i]-base[i]) > 1e-9 {
			t.Fatal("clearing extra did not restore density")
		}
	}
}

func TestSetExtraDimensionPanic(t *testing.T) {
	_, g := gridded(t, 50, 8, 8, 7)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.SetExtra(make([]float64, 3))
}

func TestNewGridRejectsBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGrid(geom.Rect{}, 4, 4)
}

func TestBinGeometry(t *testing.T) {
	g := NewGrid(geom.NewRect(0, 0, 8, 4), 4, 2)
	if g.BinW != 2 || g.BinH != 2 {
		t.Errorf("bin size %vx%v", g.BinW, g.BinH)
	}
	if c := g.BinCenter(0, 0); c != (geom.Point{X: 1, Y: 1}) {
		t.Errorf("BinCenter(0,0) = %v", c)
	}
	if r := g.BinRect(3, 1); r != geom.NewRect(6, 2, 8, 4) {
		t.Errorf("BinRect(3,1) = %v", r)
	}
}
