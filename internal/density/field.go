package density

import (
	"math"

	"repro/internal/fft"
	"repro/internal/geom"
	"repro/internal/obsv"
)

// Field is the force field induced by a density map, sampled at bin
// centers. Positive density (excess demand) repels; negative density
// (unused supply) attracts — the paper's eq. (9) and its interpretation in
// §3.4.
type Field struct {
	grid   *Grid
	FX, FY []float64
}

// Method selects how the Green's-function integral is evaluated.
type Method int

const (
	// Auto picks RealFFT for grids with ≥ 64 bins per axis (the soaked
	// production pipeline: half the transform flops of FFT, identical
	// answers), Direct below.
	Auto Method = iota
	// Direct evaluates eq. (9) by O(B²) superposition. It is the oracle
	// implementation.
	Direct
	// FFT evaluates the same convolution on a zero-padded grid in
	// O(B log B). Requires power-of-two grid dimensions.
	FFT
	// RealFFT evaluates the convolution through real-input transforms
	// (fft.RealPlan): the density map and both kernels are real, so only
	// the Hermitian half-spectrum is computed and stored — half the
	// transform flops and spectrum memory of FFT, identical answers to
	// roundoff. Requires power-of-two grid dimensions.
	RealFFT
)

// String returns the method's tag ("auto", "direct", "fft", "rfft").
func (m Method) String() string {
	switch m {
	case Direct:
		return "direct"
	case FFT:
		return "fft"
	case RealFFT:
		return "rfft"
	default:
		return "auto"
	}
}

// ParseMethod maps a tag (as printed by String) back to the method; ok is
// false for anything unrecognized.
func ParseMethod(s string) (m Method, ok bool) {
	switch s {
	case "auto", "":
		return Auto, true
	case "direct":
		return Direct, true
	case "fft":
		return FFT, true
	case "rfft":
		return RealFFT, true
	}
	return Auto, false
}

// fieldSeconds times field evaluations per effective method (indexed by
// Direct/FFT/RealFFT). Nil until EnableMetrics; a nil histogram skips even
// the clock reads.
var fieldSeconds [4]*obsv.Histogram

// EnableMetrics registers field-evaluation timing in r:
//
//	density_field_seconds{method="direct"|"fft"|"rfft"}
//
// labeled by the *effective* method (Auto resolves before recording).
// Passing nil detaches the package from any registry.
func EnableMetrics(r *obsv.Registry) {
	if r == nil {
		fieldSeconds = [4]*obsv.Histogram{}
		return
	}
	for _, m := range []Method{Direct, FFT, RealFFT} {
		fieldSeconds[m] = r.Histogram(`density_field_seconds{method="`+m.String()+`"}`,
			"force-field evaluation wall time in seconds", obsv.SecondsBuckets)
	}
}

// ComputeField evaluates the force field of g's current density map.
func ComputeField(g *Grid, m Method) *Field {
	if m == Auto {
		if g.NX*g.NY >= 2048 && fft.IsPow2(g.NX) && fft.IsPow2(g.NY) {
			m = RealFFT
		} else {
			m = Direct
		}
	}
	observe := fieldSeconds[m].Time()
	var f *Field
	switch m {
	case Direct:
		f = computeDirect(g)
	case FFT:
		f = computeFFT(g)
	case RealFFT:
		f = computeRealFFT(g)
	default:
		panic("density: unknown field method")
	}
	observe()
	return f
}

// computeDirect evaluates f(r) = Σ_b D_b · (r − r_b) / (2π·|r − r_b|²) at
// every bin center.
func computeDirect(g *Grid) *Field {
	f := &Field{grid: g, FX: make([]float64, len(g.D)), FY: make([]float64, len(g.D))}
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			i := g.Idx(ix, iy)
			p := g.BinCenter(ix, iy)
			var fx, fy float64
			for jy := 0; jy < g.NY; jy++ {
				for jx := 0; jx < g.NX; jx++ {
					j := g.Idx(jx, jy)
					if j == i || g.D[j] == 0 {
						continue
					}
					q := g.BinCenter(jx, jy)
					dx, dy := p.X-q.X, p.Y-q.Y
					r2 := dx*dx + dy*dy
					w := g.D[j] / (2 * math.Pi * r2)
					fx += w * dx
					fy += w * dy
				}
			}
			f.FX[i] = fx
			f.FY[i] = fy
		}
	}
	return f
}

// fieldKernels evaluates the Green's-function kernels Kx(d) = dx/(2π|d|²),
// Ky(d) = dy/(2π|d|²) over the pw×ph padded grid, with signed offsets
// wrapping so negative displacements live in the upper half.
func fieldKernels(g *Grid, pw, ph int) (kx, ky []float64) {
	n := pw * ph
	kx = make([]float64, n)
	ky = make([]float64, n)
	for oy := 0; oy < ph; oy++ {
		for ox := 0; ox < pw; ox++ {
			dxb := ox
			if dxb > pw/2 {
				dxb -= pw
			}
			dyb := oy
			if dyb > ph/2 {
				dyb -= ph
			}
			if dxb == 0 && dyb == 0 {
				continue
			}
			dx := float64(dxb) * g.BinW
			dy := float64(dyb) * g.BinH
			r2 := dx*dx + dy*dy
			kx[oy*pw+ox] = dx / (2 * math.Pi * r2)
			ky[oy*pw+ox] = dy / (2 * math.Pi * r2)
		}
	}
	return kx, ky
}

// fieldCache is the reusable FFT field solver of one grid: the transform
// plan (complex or real-input), the forward spectra of the two kernels
// (they depend only on the grid geometry, fixed at construction), and the
// padded scratch fields. With it, each field solve costs one forward and
// two inverse transforms instead of four forwards and two inverses, and
// allocates nothing. The real-input variant stores half-spectra and runs
// half-size transforms for the same answers to roundoff.
type fieldCache struct {
	pw, ph int
	real   bool
	plan   *fft.Plan     // when !real
	rplan  *fft.RealPlan // when real
	specs  [2][]complex128
	src    []float64
	out    [2][]float64
}

func (g *Grid) fieldSolver(realFFT bool) *fieldCache {
	pw, ph := fft.NextPow2(2*g.NX), fft.NextPow2(2*g.NY)
	if fc := g.fcache; fc != nil && fc.pw == pw && fc.ph == ph && fc.real == realFFT {
		return fc
	}
	n := pw * ph
	fc := &fieldCache{pw: pw, ph: ph, real: realFFT, src: make([]float64, n)}
	specLen := n
	if realFFT {
		fc.rplan = fft.NewRealPlan(pw, ph)
		specLen = fc.rplan.SpecLen()
	} else {
		fc.plan = fft.NewPlan(pw, ph)
	}
	kx, ky := fieldKernels(g, pw, ph)
	for i, k := range [2][]float64{kx, ky} {
		fc.specs[i] = make([]complex128, specLen)
		if realFFT {
			fc.rplan.Spectrum(fc.specs[i], k)
		} else {
			fc.plan.Spectrum(fc.specs[i], k)
		}
		fc.out[i] = make([]float64, n)
	}
	g.fcache = fc
	return fc
}

// solve scatters the density map into the padded source and runs the
// cached-spectrum convolutions for both kernels.
func (fc *fieldCache) solve(g *Grid) *Field {
	pw := fc.pw
	for i := range fc.src {
		fc.src[i] = 0
	}
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			fc.src[iy*pw+ix] = g.D[g.Idx(ix, iy)]
		}
	}
	if fc.real {
		fc.rplan.ConvolveSpectra(fc.out[:], fc.src, fc.specs[:])
	} else {
		fc.plan.ConvolveSpectra(fc.out[:], fc.src, fc.specs[:])
	}
	//lint:ignore hotalloc the Field is the solve's result and escapes to the caller; one backing allocation per field solve, not per bin
	f := &Field{grid: g, FX: make([]float64, len(g.D)), FY: make([]float64, len(g.D))}
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			f.FX[g.Idx(ix, iy)] = fc.out[0][iy*pw+ix]
			f.FY[g.Idx(ix, iy)] = fc.out[1][iy*pw+ix]
		}
	}
	return f
}

// computeFFT evaluates the same superposition as computeDirect, as a linear
// convolution with the kernels on a grid zero-padded to 2NX×2NY (so the
// cyclic convolution equals the linear one on the region). The kernel
// spectra and all working storage are cached on the grid; NoCache keeps the
// original allocate-and-retransform path for baseline comparisons.
func computeFFT(g *Grid) *Field {
	if g.NoCache {
		return computeFFTCold(g)
	}
	return g.fieldSolver(false).solve(g)
}

// computeRealFFT is computeFFT on the real-input pipeline: identical
// zero-padding and kernels, half-spectrum transforms. NoCache keeps a cold
// real-input path so hot-vs-cold stays bit-identical per configuration.
func computeRealFFT(g *Grid) *Field {
	if g.NoCache {
		return computeRealFFTCold(g)
	}
	return g.fieldSolver(true).solve(g)
}

// computeFFTCold is the uncached path: fresh scratch and a full kernel
// transform per call.
func computeFFTCold(g *Grid) *Field {
	pw, ph := fft.NextPow2(2*g.NX), fft.NextPow2(2*g.NY)
	n := pw * ph
	src := make([]float64, n)
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			src[iy*pw+ix] = g.D[g.Idx(ix, iy)]
		}
	}
	kx, ky := fieldKernels(g, pw, ph)
	outX := make([]float64, n)
	outY := make([]float64, n)
	fft.Convolve2D(outX, src, kx, pw, ph)
	fft.Convolve2D(outY, src, ky, pw, ph)
	f := &Field{grid: g, FX: make([]float64, len(g.D)), FY: make([]float64, len(g.D))}
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			f.FX[g.Idx(ix, iy)] = outX[iy*pw+ix]
			f.FY[g.Idx(ix, iy)] = outY[iy*pw+ix]
		}
	}
	return f
}

// computeRealFFTCold is the uncached real-input path: a fresh plan, fresh
// scratch, and full kernel transforms per call. It runs the same spectrum
// and convolution kernels as the cached path, so hot and cold real-FFT
// solves are bit-identical, not merely close.
func computeRealFFTCold(g *Grid) *Field {
	pw, ph := fft.NextPow2(2*g.NX), fft.NextPow2(2*g.NY)
	n := pw * ph
	src := make([]float64, n)
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			src[iy*pw+ix] = g.D[g.Idx(ix, iy)]
		}
	}
	plan := fft.NewRealPlan(pw, ph)
	kx, ky := fieldKernels(g, pw, ph)
	specs := [2][]complex128{make([]complex128, plan.SpecLen()), make([]complex128, plan.SpecLen())}
	plan.Spectrum(specs[0], kx)
	plan.Spectrum(specs[1], ky)
	out := [2][]float64{make([]float64, n), make([]float64, n)}
	plan.ConvolveSpectra(out[:], src, specs[:])
	f := &Field{grid: g, FX: make([]float64, len(g.D)), FY: make([]float64, len(g.D))}
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			f.FX[g.Idx(ix, iy)] = out[0][iy*pw+ix]
			f.FY[g.Idx(ix, iy)] = out[1][iy*pw+ix]
		}
	}
	return f
}

// At returns the field vector at an arbitrary point by bilinear
// interpolation of the bin-center samples. Points outside the region are
// clamped onto it.
func (f *Field) At(p geom.Point) geom.Point {
	g := f.grid
	// Convert to fractional bin-center coordinates.
	fx := (p.X-g.Region.Lo.X)/g.BinW - 0.5
	fy := (p.Y-g.Region.Lo.Y)/g.BinH - 0.5
	fx = math.Max(0, math.Min(float64(g.NX-1), fx))
	fy = math.Max(0, math.Min(float64(g.NY-1), fy))
	ix0 := int(fx)
	iy0 := int(fy)
	ix1 := clampInt(ix0+1, 0, g.NX-1)
	iy1 := clampInt(iy0+1, 0, g.NY-1)
	tx := fx - float64(ix0)
	ty := fy - float64(iy0)

	i00, i10 := g.Idx(ix0, iy0), g.Idx(ix1, iy0)
	i01, i11 := g.Idx(ix0, iy1), g.Idx(ix1, iy1)
	return geom.Point{
		X: bilerp(f.FX[i00], f.FX[i10], f.FX[i01], f.FX[i11], tx, ty),
		Y: bilerp(f.FY[i00], f.FY[i10], f.FY[i01], f.FY[i11], tx, ty),
	}
}

// bilerp interpolates the four corner samples at fractional offsets tx, ty.
func bilerp(v00, v10, v01, v11, tx, ty float64) float64 {
	return (1-ty)*((1-tx)*v00+tx*v10) + ty*((1-tx)*v01+tx*v11)
}

// MaxMagnitude returns the largest |f| over all bins, used for the paper's
// K·(W+H) force normalization.
func (f *Field) MaxMagnitude() float64 {
	var m float64
	for i := range f.FX {
		v := f.FX[i]*f.FX[i] + f.FY[i]*f.FY[i]
		if v > m {
			m = v
		}
	}
	return math.Sqrt(m)
}

// Curl estimates the discrete curl ∂fy/∂x − ∂fx/∂y summed in absolute value
// over interior bins, normalized by the summed field magnitude. Requirement
// 3 of the paper says the true field is curl-free; this diagnostic verifies
// the numerics (used by tests).
func (f *Field) Curl() float64 {
	g := f.grid
	var curl, mag float64
	for iy := 1; iy < g.NY-1; iy++ {
		for ix := 1; ix < g.NX-1; ix++ {
			dfy := (f.FY[g.Idx(ix+1, iy)] - f.FY[g.Idx(ix-1, iy)]) / (2 * g.BinW)
			dfx := (f.FX[g.Idx(ix, iy+1)] - f.FX[g.Idx(ix, iy-1)]) / (2 * g.BinH)
			curl += math.Abs(dfy - dfx)
			m := math.Hypot(f.FX[g.Idx(ix, iy)], f.FY[g.Idx(ix, iy)])
			mag += m / math.Min(g.BinW, g.BinH)
		}
	}
	if mag == 0 {
		return 0
	}
	return curl / mag
}
