// Package density implements the paper's supply-and-demand density model
// (§3.3, eq. 4) and the resulting force field (eq. 5–9): cell area is demand,
// the placement area scaled by the utilization s is supply, and the signed
// density D(x,y) drives a conservative force field obtained from Poisson's
// equation with zero field at infinity.
package density

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/par"
)

// Grid bins the placement area and accumulates demand/supply/density per
// bin. Density values are areas (layout units²) per bin.
type Grid struct {
	Region geom.Rect
	NX, NY int
	BinW   float64
	BinH   float64

	// Demand is the movable cell area overlapping each bin.
	Demand []float64
	// Supply is the scaled available area per bin: s · binArea inside the
	// region outline.
	Supply []float64
	// D is Demand − Supply, the paper's D(x,y) integrated over the bin.
	D []float64
	// Extra holds additional demand injected by congestion- or heat-driven
	// placement; it participates in D but is rescaled so ∫D stays 0.
	Extra []float64

	// NoCache disables the cached FFT field solver (kernel spectra + plan),
	// forcing every ComputeField call back onto the allocate-and-retransform
	// path. Benchmark baselines and A/B comparisons set it; normal runs
	// leave it false.
	NoCache bool

	// scratch backs AddArea's deposit staging; shards are the per-worker
	// deposit buffers of the parallel Accumulate, reused across iterations.
	scratch []deposit
	shards  [][]deposit
	// fcache is the lazily built FFT field solver (see field.go).
	fcache *fieldCache
}

// deposit is one bin contribution of one cell: the demand gather computes
// deposits (the expensive geometry work) possibly in parallel, then applies
// them to the demand map strictly in cell order, so the accumulated sums
// are bit-identical to the serial path for any worker count.
type deposit struct {
	idx int
	val float64
}

// NewGrid creates an nx×ny grid over the region outline.
func NewGrid(region geom.Rect, nx, ny int) *Grid {
	if nx < 1 || ny < 1 || region.Empty() {
		panic(fmt.Sprintf("density: bad grid %dx%d over %v", nx, ny, region))
	}
	n := nx * ny
	return &Grid{
		Region: region,
		NX:     nx, NY: ny,
		BinW:   region.W() / float64(nx),
		BinH:   region.H() / float64(ny),
		Demand: make([]float64, n),
		Supply: make([]float64, n),
		D:      make([]float64, n),
		Extra:  make([]float64, n),
	}
}

// Idx returns the linear index of bin (ix, iy).
func (g *Grid) Idx(ix, iy int) int { return iy*g.NX + ix }

// BinCenter returns the center point of bin (ix, iy).
func (g *Grid) BinCenter(ix, iy int) geom.Point {
	return geom.Point{
		X: g.Region.Lo.X + (float64(ix)+0.5)*g.BinW,
		Y: g.Region.Lo.Y + (float64(iy)+0.5)*g.BinH,
	}
}

// BinRect returns the rectangle of bin (ix, iy).
func (g *Grid) BinRect(ix, iy int) geom.Rect {
	return geom.RectWH(
		g.Region.Lo.X+float64(ix)*g.BinW,
		g.Region.Lo.Y+float64(iy)*g.BinH,
		g.BinW, g.BinH,
	)
}

// binRange returns the bin index span [i0,i1] overlapped by [lo,hi] along
// one axis with n bins of size step starting at origin.
func binRange(lo, hi, origin, step float64, n int) (int, int) {
	i0 := int(math.Floor((lo - origin) / step))
	i1 := int(math.Ceil((hi-origin)/step)) - 1
	if i0 < 0 {
		i0 = 0
	}
	if i1 >= n {
		i1 = n - 1
	}
	return i0, i1
}

// Accumulate recomputes Demand, Supply and D from the current cell
// positions. Movable cell area is sprayed into bins by exact rectangle
// overlap; area hanging outside the region is clamped into the boundary
// bins so demand is conserved. Designs with at least par.Threshold cells
// compute their deposits on all CPUs; the demand map is bit-identical to
// the serial result because deposits are applied in cell order either way.
func (g *Grid) Accumulate(nl *netlist.Netlist) {
	for i := range g.Demand {
		g.Demand[i] = 0
	}
	n := len(nl.Cells)
	workers := par.Workers(n)
	if workers <= 1 {
		for ci := 0; ci < n; ci++ {
			c := &nl.Cells[ci]
			if c.Fixed {
				continue
			}
			g.AddArea(c.Rect(), 1)
		}
		g.finish()
		return
	}
	if len(g.shards) < workers {
		g.shards = make([][]deposit, workers)
	}
	shards := g.shards[:workers]
	par.Run(workers, n, func(w, lo, hi int) {
		buf := shards[w][:0]
		for ci := lo; ci < hi; ci++ {
			c := &nl.Cells[ci]
			if c.Fixed {
				continue
			}
			buf = g.appendDeposits(buf, c.Rect(), 1)
		}
		shards[w] = buf
	})
	// Worker w handled the w-th contiguous cell range, so applying shards
	// in worker order replays the exact serial addition order.
	for _, sh := range shards {
		for _, d := range sh {
			g.Demand[d.idx] += d.val
		}
	}
	g.finish()
}

// AddArea sprays scale·area(r) into the demand map by rectangle overlap.
// Portions of r outside the region are attributed to the nearest boundary
// bins, conserving total demand.
func (g *Grid) AddArea(r geom.Rect, scale float64) {
	g.scratch = g.appendDeposits(g.scratch[:0], r, scale)
	for _, d := range g.scratch {
		g.Demand[d.idx] += d.val
	}
}

// appendDeposits computes the bin deposits of spraying scale·area(r) into
// the demand map and appends them to buf. It only reads the grid geometry,
// so distinct buffers may be filled concurrently; applying the returned
// deposits in append order reproduces AddArea exactly.
func (g *Grid) appendDeposits(buf []deposit, r geom.Rect, scale float64) []deposit {
	if r.Empty() {
		// Zero-area cells (points) still deposit nothing; ignore.
		return buf
	}
	// Clamp the rect into the region, preserving its area, so off-region
	// demand pushes back from the boundary.
	w, h := r.W(), r.H()
	c := g.Region.ClampCenter(r.Center(), math.Min(w, g.Region.W()), math.Min(h, g.Region.H()))
	r = geom.RectCenteredAt(c, w, h)

	ix0, ix1 := binRange(r.Lo.X, r.Hi.X, g.Region.Lo.X, g.BinW, g.NX)
	iy0, iy1 := binRange(r.Lo.Y, r.Hi.Y, g.Region.Lo.Y, g.BinH, g.NY)
	total := r.Area()
	deposited := 0.0
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			ov := g.BinRect(ix, iy).Overlap(r)
			if ov > 0 {
				//lint:ignore hotalloc buf is the caller's reused deposit buffer; growth amortizes to zero once it has seen the largest accumulation
				buf = append(buf, deposit{g.Idx(ix, iy), scale * ov})
				deposited += ov
			}
		}
	}
	// Any residue clipped off the region edge lands in the nearest corner
	// bin so ∫demand = cell area exactly.
	if res := total - deposited; res > 1e-12*total {
		cx := clampInt(int((r.Center().X-g.Region.Lo.X)/g.BinW), 0, g.NX-1)
		cy := clampInt(int((r.Center().Y-g.Region.Lo.Y)/g.BinH), 0, g.NY-1)
		//lint:ignore hotalloc same reused deposit buffer as above; at most one residue entry per cell
		buf = append(buf, deposit{g.Idx(cx, cy), scale * res})
	}
	return buf
}

// finish computes Supply and D from the accumulated demand.
func (g *Grid) finish() {
	regionArea := g.Region.Area()
	// Fold Extra demand in, then scale supply so the integral of D is
	// exactly zero (the paper scales supply by s for the same reason).
	totalDemand := 0.0
	for i := range g.Demand {
		g.Demand[i] += g.Extra[i]
		totalDemand += g.Demand[i]
	}
	binArea := g.BinW * g.BinH
	s := totalDemand / regionArea
	for i := range g.Supply {
		g.Supply[i] = s * binArea
		g.D[i] = g.Demand[i] - g.Supply[i]
	}
}

// SetExtra replaces the injected extra-demand map (len NX·NY); pass nil to
// clear. Used by congestion- and heat-driven placement.
func (g *Grid) SetExtra(extra []float64) {
	if extra == nil {
		for i := range g.Extra {
			g.Extra[i] = 0
		}
		return
	}
	if len(extra) != len(g.Extra) {
		panic("density: SetExtra dimension mismatch")
	}
	copy(g.Extra, extra)
}

// TotalD returns ∫D, which is zero by construction (a test oracle).
func (g *Grid) TotalD() float64 {
	var s float64
	for _, v := range g.D {
		s += v
	}
	return s
}

// Overflow returns Σ max(0, Demand−Supply) / Σ Demand, a normalized measure
// of how much area still sits in over-dense bins.
func (g *Grid) Overflow() float64 {
	var over, total float64
	for i := range g.D {
		if g.D[i] > 0 {
			over += g.D[i]
		}
		total += g.Demand[i]
	}
	if total == 0 {
		return 0
	}
	return over / total
}

// LargestEmptySquare returns the area (layout units²) of the largest
// axis-aligned square of empty bins, the paper's stopping criterion
// quantity (§4.2). A bin is empty when its demand is below emptyFrac of
// the average supply.
func (g *Grid) LargestEmptySquare(emptyFrac float64) float64 {
	best := 0 // side length in bins
	//lint:ignore hotalloc stopping-criterion scan: two NX-length rows once per iteration, dwarfed by the field solve it follows
	prev := make([]int, g.NX)
	//lint:ignore hotalloc second row of the same once-per-iteration scan
	cur := make([]int, g.NX)
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			i := g.Idx(ix, iy)
			empty := g.Demand[i] < emptyFrac*g.Supply[i]
			if !empty {
				cur[ix] = 0
				continue
			}
			if ix == 0 || iy == 0 {
				cur[ix] = 1
			} else {
				cur[ix] = 1 + min3(cur[ix-1], prev[ix], prev[ix-1])
			}
			if cur[ix] > best {
				best = cur[ix]
			}
		}
		prev, cur = cur, prev
	}
	side := float64(best)
	return side * g.BinW * side * g.BinH
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
