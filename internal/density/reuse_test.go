package density

import (
	"math"
	"testing"

	"repro/internal/netgen"
	"repro/internal/par"
)

func TestAccumulateParallelIsBitIdentical(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "p", Cells: 500, Nets: 600, Rows: 8, Seed: 41})
	netgen.ScatterRandom(nl, 41)

	serial := NewGrid(nl.Region.Outline, 32, 16)
	serial.Accumulate(nl)

	parallel := NewGrid(nl.Region.Outline, 32, 16)
	old := par.Threshold
	par.Threshold = 1
	defer func() { par.Threshold = old }()
	parallel.Accumulate(nl)

	for i := range serial.Demand {
		if serial.Demand[i] != parallel.Demand[i] {
			t.Fatalf("parallel demand differs at bin %d: %g vs %g",
				i, parallel.Demand[i], serial.Demand[i])
		}
		if serial.D[i] != parallel.D[i] {
			t.Fatalf("parallel D differs at bin %d: %g vs %g",
				i, parallel.D[i], serial.D[i])
		}
	}

	// Repeated accumulation reuses the shard buffers; results must not drift.
	parallel.Accumulate(nl)
	for i := range serial.Demand {
		if serial.Demand[i] != parallel.Demand[i] {
			t.Fatalf("re-accumulated demand differs at bin %d", i)
		}
	}
}

func TestCachedFieldMatchesCold(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "c", Cells: 400, Nets: 500, Rows: 8, Seed: 42})
	netgen.ScatterRandom(nl, 42)

	hot := NewGrid(nl.Region.Outline, 64, 64)
	hot.Accumulate(nl)
	cold := NewGrid(nl.Region.Outline, 64, 64)
	cold.NoCache = true
	cold.Accumulate(nl)

	// Two solves through the cache (the second reuses plan, spectra and
	// scratch) against the allocate-and-retransform baseline.
	for round := 0; round < 2; round++ {
		fh := ComputeField(hot, FFT)
		fc := ComputeField(cold, FFT)
		for i := range fh.FX {
			if d := math.Abs(fh.FX[i] - fc.FX[i]); d > 1e-9 {
				t.Fatalf("round %d: FX differs at %d: %g vs %g", round, i, fh.FX[i], fc.FX[i])
			}
			if d := math.Abs(fh.FY[i] - fc.FY[i]); d > 1e-9 {
				t.Fatalf("round %d: FY differs at %d: %g vs %g", round, i, fh.FY[i], fc.FY[i])
			}
		}
	}
}

func TestFieldCacheInvalidatedByNothing(t *testing.T) {
	// The cache keys on the padded dimensions only; a second grid of the
	// same geometry must not share state with the first (each grid owns its
	// fcache), and re-solving after a density change must track the change.
	nl := netgen.Generate(netgen.Config{Name: "i", Cells: 200, Nets: 260, Rows: 8, Seed: 43})
	netgen.ScatterRandom(nl, 43)
	g := NewGrid(nl.Region.Outline, 64, 64)
	g.Accumulate(nl)
	f1 := ComputeField(g, FFT)

	// Move everything and re-accumulate: the cached solver must see the new
	// density, not replay the old solve.
	for ci := range nl.Cells {
		if !nl.Cells[ci].Fixed {
			nl.Cells[ci].Pos.X = nl.Region.Outline.Lo.X + 1
		}
	}
	g.Accumulate(nl)
	f2 := ComputeField(g, FFT)

	var diff float64
	for i := range f1.FX {
		diff += math.Abs(f1.FX[i] - f2.FX[i])
	}
	if diff == 0 {
		t.Fatal("cached field solver returned a stale field after the density changed")
	}
}
