package density

import (
	"math"
	"testing"

	"repro/internal/netgen"
)

// TestRealFFTFieldMatchesComplex pins the real-input field solver against
// the complex one on the same density map: both evaluate the identical
// padded convolution, so they must agree to roundoff.
func TestRealFFTFieldMatchesComplex(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "r", Cells: 400, Nets: 500, Rows: 8, Seed: 44})
	netgen.ScatterRandom(nl, 44)

	gc := NewGrid(nl.Region.Outline, 64, 64)
	gc.Accumulate(nl)
	gr := NewGrid(nl.Region.Outline, 64, 64)
	gr.Accumulate(nl)

	fc := ComputeField(gc, FFT)
	fr := ComputeField(gr, RealFFT)
	var scale float64
	for i := range fc.FX {
		scale = math.Max(scale, math.Max(math.Abs(fc.FX[i]), math.Abs(fc.FY[i])))
	}
	for i := range fc.FX {
		if d := math.Abs(fr.FX[i] - fc.FX[i]); d > 1e-9*(1+scale) {
			t.Fatalf("FX differs at %d: %g vs %g", i, fr.FX[i], fc.FX[i])
		}
		if d := math.Abs(fr.FY[i] - fc.FY[i]); d > 1e-9*(1+scale) {
			t.Fatalf("FY differs at %d: %g vs %g", i, fr.FY[i], fc.FY[i])
		}
	}
}

// TestRealFFTCachedMatchesColdBitwise: the real-input cold path runs the
// same spectrum/convolution kernels as the cached one, so hot and cold are
// bit-identical (a stronger guarantee than the complex paths' 1e-9).
func TestRealFFTCachedMatchesColdBitwise(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "rc", Cells: 400, Nets: 500, Rows: 8, Seed: 45})
	netgen.ScatterRandom(nl, 45)

	hot := NewGrid(nl.Region.Outline, 64, 64)
	hot.Accumulate(nl)
	cold := NewGrid(nl.Region.Outline, 64, 64)
	cold.NoCache = true
	cold.Accumulate(nl)

	// Two rounds so the second cached solve reuses plan, spectra, scratch.
	for round := 0; round < 2; round++ {
		fh := ComputeField(hot, RealFFT)
		fc := ComputeField(cold, RealFFT)
		for i := range fh.FX {
			if math.Float64bits(fh.FX[i]) != math.Float64bits(fc.FX[i]) ||
				math.Float64bits(fh.FY[i]) != math.Float64bits(fc.FY[i]) {
				t.Fatalf("round %d: cached and cold real-FFT fields differ at bin %d", round, i)
			}
		}
	}
}

// TestFieldCacheRekeysOnMethodSwitch: flipping one grid between complex and
// real solvers must rebuild the cache each time, not replay the other
// pipeline's spectra.
func TestFieldCacheRekeysOnMethodSwitch(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "sw", Cells: 300, Nets: 400, Rows: 8, Seed: 46})
	netgen.ScatterRandom(nl, 46)
	g := NewGrid(nl.Region.Outline, 64, 64)
	g.Accumulate(nl)

	want := ComputeField(g, FFT)
	mid := ComputeField(g, RealFFT)
	got := ComputeField(g, FFT)

	var scale float64
	for i := range want.FX {
		scale = math.Max(scale, math.Abs(want.FX[i]))
	}
	for i := range want.FX {
		if math.Float64bits(want.FX[i]) != math.Float64bits(got.FX[i]) {
			t.Fatalf("complex solve after method switch is not reproducible at bin %d", i)
		}
		if d := math.Abs(mid.FX[i] - want.FX[i]); d > 1e-9*(1+scale) {
			t.Fatalf("real solve diverged at bin %d by %g", i, d)
		}
	}
}

func TestMethodStringAndParse(t *testing.T) {
	for _, tc := range []struct {
		m   Method
		tag string
	}{{Auto, "auto"}, {Direct, "direct"}, {FFT, "fft"}, {RealFFT, "rfft"}} {
		if tc.m.String() != tc.tag {
			t.Errorf("%d.String() = %q, want %q", tc.m, tc.m.String(), tc.tag)
		}
		m, ok := ParseMethod(tc.tag)
		if !ok || m != tc.m {
			t.Errorf("ParseMethod(%q) = %v,%v", tc.tag, m, ok)
		}
	}
	if _, ok := ParseMethod("spectral"); ok {
		t.Error("ParseMethod accepted an unknown tag")
	}
	if m, ok := ParseMethod(""); !ok || m != Auto {
		t.Error("empty tag must parse as Auto")
	}
}
