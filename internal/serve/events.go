package serve

import (
	"sync"

	"repro/internal/place"
)

// Event is one per-iteration progress sample of a job — the payload of
// GET /jobs/{id}/events and the "samples" section of flight-recorder
// bundles. Seq is the stream cursor: it increments by one per event for
// the job's lifetime, so a client that reconnects with its last seen seq
// misses nothing that is still buffered.
type Event struct {
	Seq      int     `json:"seq"`
	Iter     int     `json:"iter"`
	HPWL     float64 `json:"hpwl"`
	Overflow float64 `json:"overflow"`
	// GapProxy is the distance to the paper's §4.2 stopping criterion
	// (≤1 means met); see place.IterStats.
	GapProxy float64 `json:"gap_proxy"`
	WeightNS int64   `json:"weight_ns"`
	GatherNS int64   `json:"gather_ns"`
	FieldNS  int64   `json:"field_ns"`
	BuildNS  int64   `json:"build_ns"`
	SolveNS  int64   `json:"solve_ns"`
	StepNS   int64   `json:"step_ns"`
	// Final marks the stream's last event; State carries the job's
	// terminal state on it.
	Final bool  `json:"final,omitempty"`
	State State `json:"state,omitempty"`
}

// eventFrom projects one iteration's stats into the streaming schema.
// Solve time is the concurrent x/y pair's measured wall time; when the
// stats predate that phase (zero), it degrades to the larger of the two
// per-axis times, which bounds the pair's wall contribution from below.
func eventFrom(st place.IterStats) Event {
	solve := st.TSolvePair
	if solve <= 0 {
		solve = st.TSolveX
		if st.TSolveY > solve {
			solve = st.TSolveY
		}
	}
	return Event{
		Iter:     st.Iter,
		HPWL:     st.HPWL,
		Overflow: st.Overflow,
		GapProxy: st.GapProxy,
		WeightNS: st.TWeight.Nanoseconds(),
		GatherNS: st.TGather.Nanoseconds(),
		FieldNS:  st.TField.Nanoseconds(),
		BuildNS:  st.TBuild.Nanoseconds(),
		SolveNS:  solve.Nanoseconds(),
		StepNS:   st.TStep.Nanoseconds(),
	}
}

// progressCap bounds the per-job event ring. 256 iterations of history
// comfortably covers reconnect gaps while keeping per-job memory flat;
// a client further behind resumes from the oldest buffered event.
const progressCap = 256

// progress is one job's bounded event ring plus a broadcast wake-up: no
// goroutines, no per-subscriber state. Writers append; readers poll
// since(cursor) and, when empty, block on the returned wake channel,
// which append closes-and-replaces (a closed channel wakes every waiter
// at once).
type progress struct {
	mu     sync.Mutex
	buf    []Event // ring, cap progressCap
	start  int     // index of oldest event
	seq    int     // next sequence number (== total events appended)
	wake   chan struct{}
	closed bool
}

func newProgress() *progress {
	return &progress{wake: make(chan struct{})}
}

// append stamps the event's Seq, stores it (evicting the oldest past
// capacity), and wakes every waiting reader.
func (p *progress) append(e Event) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	e.Seq = p.seq
	p.seq++
	if len(p.buf) < progressCap {
		p.buf = append(p.buf, e)
	} else {
		p.buf[p.start] = e
		p.start = (p.start + 1) % len(p.buf)
	}
	close(p.wake)
	p.wake = make(chan struct{})
	p.mu.Unlock()
}

// closeWith appends a final event and seals the stream; readers draining
// past it observe closed=true and stop waiting. Idempotent.
func (p *progress) closeWith(e Event) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	e.Seq = p.seq
	p.seq++
	e.Final = true
	if len(p.buf) < progressCap {
		p.buf = append(p.buf, e)
	} else {
		p.buf[p.start] = e
		p.start = (p.start + 1) % len(p.buf)
	}
	p.closed = true
	close(p.wake)
	p.mu.Unlock()
}

// since returns buffered events with Seq >= from (oldest first), a
// channel that closes on the next append, and whether the stream is
// sealed. An empty batch with closed=false means "wait on wake".
func (p *progress) since(from int) (events []Event, wake <-chan struct{}, closed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.buf)
	for i := 0; i < n; i++ {
		e := p.buf[(p.start+i)%n]
		if e.Seq >= from {
			events = append(events, e)
		}
	}
	return events, p.wake, p.closed
}

// recent returns up to n of the newest buffered events, oldest first —
// the sample set a flight-recorder bundle freezes.
func (p *progress) recent(n int) []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := len(p.buf)
	if n > total {
		n = total
	}
	out := make([]Event, 0, n)
	for i := total - n; i < total; i++ {
		out = append(out, p.buf[(p.start+i)%total])
	}
	return out
}
