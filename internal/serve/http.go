package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/netlist"
	"repro/internal/place"
)

// SubmitRequest is the POST /jobs JSON body. The netlist travels in the
// repo's text interchange format (netlist.Read / netlist.Write).
type SubmitRequest struct {
	// Netlist is the design in text interchange format.
	Netlist string `json:"netlist"`
	// K is the Kraftwerk speed parameter (0 → 0.2 standard mode).
	K float64 `json:"k,omitempty"`
	// MaxIter caps the transformations (0 → engine default).
	MaxIter int `json:"max_iter,omitempty"`
	// DeadlineMS bounds the job's wall time in milliseconds; on expiry
	// the job completes with its best placement so far and
	// stop_reason "deadline". 0 uses the server default.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// SubmitResponse is the POST /jobs success body.
type SubmitResponse struct {
	ID string `json:"id"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST /jobs              submit (202, 400, 429 queue full, 503 draining)
//	GET  /jobs              all job statuses, submission order
//	GET  /jobs/{id}         one job's status
//	GET  /jobs/{id}/result  placed netlist, text format (409 until terminal)
//	POST /jobs/{id}/cancel  cancel a queued or running job
//	GET  /healthz           service health (503 while draining)
//	GET  /metrics           Prometheus text encoding
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.reg)
	return mux
}

//lint:ignore ctxflow response writes ride the http.Server's own connection deadlines; the handler's context adds nothing here
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	nl, err := netlist.Read(strings.NewReader(req.Netlist))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad netlist: " + err.Error()})
		return
	}
	job, err := s.Submit(JobRequest{
		Netlist:  nl,
		Config:   place.Config{K: req.K, MaxIter: req.MaxIter},
		Deadline: time.Duration(req.DeadlineMS) * time.Millisecond,
	})
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: job.ID()})
	case err == ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case err == ErrDraining:
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown job %q", r.PathValue("id"))})
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	st := j.Status()
	if !st.State.Terminal() {
		writeJSON(w, http.StatusConflict, errorResponse{Error: fmt.Sprintf("job %s is %s; result not ready", j.ID(), st.State)})
		return
	}
	if st.State == StateFailed {
		writeJSON(w, http.StatusGone, errorResponse{Error: "job failed: " + st.Error})
		return
	}
	// Done and cancelled jobs both hold a legal (possibly partial)
	// placement — that is the point of the serving layer.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := netlist.Write(w, j.Netlist()); err != nil {
		// Headers are gone; nothing better to do than log-by-status.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if h.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}
