package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/density"
	"repro/internal/netlist"
	"repro/internal/obsv"
	"repro/internal/place"
	"repro/internal/qp"
	"repro/internal/sparse"
)

// SubmitRequest is the POST /jobs JSON body. The netlist travels in the
// repo's text interchange format (netlist.Read / netlist.Write).
type SubmitRequest struct {
	// Netlist is the design in text interchange format.
	Netlist string `json:"netlist"`
	// K is the Kraftwerk speed parameter (0 → 0.2 standard mode).
	K float64 `json:"k,omitempty"`
	// MaxIter caps the transformations (0 → engine default).
	MaxIter int `json:"max_iter,omitempty"`
	// DeadlineMS bounds the job's wall time in milliseconds; on expiry
	// the job completes with its best placement so far and
	// stop_reason "deadline". 0 uses the server default.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// Precond selects the CG preconditioner: "jacobi", "ic0", or "auto"
	// ("" → jacobi, the engine default). Unknown values are a 400.
	Precond string `json:"precond,omitempty"`
	// Field selects the density field solver: "auto", "direct", "fft",
	// or "rfft" ("" → auto). Unknown values are a 400.
	Field string `json:"field,omitempty"`
	// GridBins is the density grid resolution per axis (0 → automatic
	// from the design size).
	GridBins int `json:"grid_bins,omitempty"`
	// NoLinearize disables the net-weight linearization, making the
	// solve purely quadratic.
	NoLinearize bool `json:"no_linearize,omitempty"`
	// NetModel selects the net decomposition: "clique" (or "", the
	// paper's model), "star", or "hybrid". Unknown values are a 400.
	NetModel string `json:"net_model,omitempty"`
	// KeepPlacement starts from the submitted netlist's positions
	// instead of gathering cells at the region center (ECO-style).
	KeepPlacement bool `json:"keep_placement,omitempty"`
	// StopSquareFactor is the §4.2 stopping-criterion multiple (0 →
	// engine default 4).
	StopSquareFactor float64 `json:"stop_square_factor,omitempty"`
	// EmptyFrac is the empty-bin demand threshold (0 → engine
	// default 0.25).
	EmptyFrac float64 `json:"empty_frac,omitempty"`
	// ForceFloor zeroes force increments below this fraction of the
	// field maximum (0 → off).
	ForceFloor float64 `json:"force_floor,omitempty"`
	// CGTol is the CG solver's relative residual tolerance (0 → engine
	// default 1e-6).
	CGTol float64 `json:"cg_tol,omitempty"`
	// CGMaxIter caps CG iterations per solve (0 → engine default).
	CGMaxIter int `json:"cg_max_iter,omitempty"`
	// Cold disables both the warm start and the iteration-reuse caches,
	// reproducing the cold-path baseline.
	Cold bool `json:"cold,omitempty"`
}

// SubmitResponse is the POST /jobs success body.
type SubmitResponse struct {
	ID string `json:"id"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST /jobs                   submit (202, 400, 429 queue full, 503 draining);
//	                             honors an incoming W3C traceparent header and
//	                             returns this job's traceparent on the response
//	GET  /jobs                   all job statuses, submission order
//	GET  /jobs/{id}              one job's status
//	GET  /jobs/{id}/result       placed netlist, text format (409 until terminal)
//	GET  /jobs/{id}/events       per-iteration convergence stream (SSE; ?poll=1
//	                             for long-poll JSON batches; resume with
//	                             Last-Event-ID or ?from=N)
//	GET  /jobs/{id}/trace        the job's span tree as JSON
//	POST /jobs/{id}/cancel       cancel a queued or running job
//	GET  /healthz                service health (503 while draining)
//	GET  /metrics                Prometheus text encoding
//	GET  /debug/flightrecorder   recent anomaly bundles (404 when disabled)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.reg)
	mux.Handle("GET /debug/flightrecorder", s.rec)
	return mux
}

//lint:ignore ctxflow response writes ride the http.Server's own connection deadlines; the handler's context adds nothing here
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The accept timer covers decode + netlist parse — the transport work
	// a trace would otherwise not see; Submit folds it into the span tree.
	sw := obsv.StartTimer()
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	nl, err := netlist.Read(strings.NewReader(req.Netlist))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad netlist: " + err.Error()})
		return
	}
	pc, ok := sparse.ParsePreconditioner(req.Precond)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown precond %q (want jacobi, ic0, or auto)", req.Precond)})
		return
	}
	fm, ok := density.ParseMethod(req.Field)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown field %q (want auto, direct, fft, or rfft)", req.Field)})
		return
	}
	nm, ok := qp.ParseNetModel(req.NetModel)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown net_model %q (want clique, star, or hybrid)", req.NetModel)})
		return
	}
	// A malformed traceparent degrades to a fresh trace, never to a 4xx:
	// observability must not fail requests.
	parent, _ := obsv.ParseTraceParent(r.Header.Get("traceparent"))
	job, err := s.Submit(JobRequest{
		Netlist: nl,
		Config: place.Config{
			K: req.K, MaxIter: req.MaxIter,
			GridBins:         req.GridBins,
			NoLinearize:      req.NoLinearize,
			NetModel:         nm,
			KeepPlacement:    req.KeepPlacement,
			StopSquareFactor: req.StopSquareFactor,
			EmptyFrac:        req.EmptyFrac,
			ForceFloor:       req.ForceFloor,
			CG:               sparse.CGOptions{Tol: req.CGTol, MaxIter: req.CGMaxIter, Precond: pc},
			FieldMethod:      fm,
			NoWarmStart:      req.Cold,
			NoReuse:          req.Cold,
		},
		Deadline: time.Duration(req.DeadlineMS) * time.Millisecond,
		Trace:    parent,
		Accept:   sw.Elapsed(),
	})
	switch {
	case err == nil:
		w.Header().Set("traceparent", job.TraceParent().String())
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: job.ID()})
	case err == ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case err == ErrDraining:
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown job %q", r.PathValue("id"))})
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	st := j.Status()
	if !st.State.Terminal() {
		writeJSON(w, http.StatusConflict, errorResponse{Error: fmt.Sprintf("job %s is %s; result not ready", j.ID(), st.State)})
		return
	}
	if st.State == StateFailed {
		writeJSON(w, http.StatusGone, errorResponse{Error: "job failed: " + st.Error})
		return
	}
	// Done and cancelled jobs both hold a legal (possibly partial)
	// placement — that is the point of the serving layer.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := netlist.Write(w, j.Netlist()); err != nil {
		// Headers are gone; nothing better to do than log-by-status.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.TraceTree())
}

// EventBatch is the long-poll (?poll=1) response of /jobs/{id}/events.
type EventBatch struct {
	Events []Event `json:"events"`
	// Next is the cursor to pass as ?from= on the next poll.
	Next int `json:"next"`
	// Done reports that the stream ended; the last event has Final set.
	Done bool `json:"done"`
}

// longPollWait bounds how long an empty ?poll=1 request parks before
// returning an empty batch (clients just poll again).
const longPollWait = 25 * time.Second

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			from = n
		}
	}
	// SSE reconnects resend the last delivered id; resume after it.
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			from = n + 1
		}
	}
	if r.URL.Query().Get("poll") != "" {
		s.longPollEvents(w, r, j, from)
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		// A transport that cannot stream still gets the data: degrade to
		// one long-poll batch.
		s.longPollEvents(w, r, j, from)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		events, wake, done := j.Events(from)
		for _, e := range events {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", e.Seq, data); err != nil {
				return // client went away
			}
			from = e.Seq + 1
		}
		if len(events) > 0 {
			fl.Flush()
		}
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		}
	}
}

// longPollEvents waits (bounded) for at least one event past from and
// returns the batch as JSON; an empty batch after the wait bound is a
// normal response, not an error.
func (s *Server) longPollEvents(w http.ResponseWriter, r *http.Request, j *Job, from int) {
	ctx, cancel := context.WithTimeout(r.Context(), longPollWait)
	defer cancel()
	for {
		events, wake, done := j.Events(from)
		if len(events) > 0 || done {
			next := from
			if n := len(events); n > 0 {
				next = events[n-1].Seq + 1
			}
			writeJSON(w, http.StatusOK, EventBatch{Events: events, Next: next, Done: done})
			return
		}
		select {
		case <-ctx.Done():
			writeJSON(w, http.StatusOK, EventBatch{Events: []Event{}, Next: from})
			return
		case <-wake:
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if h.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}
