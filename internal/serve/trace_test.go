package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/obsv"
	"repro/internal/place"
)

// getSpanTree fetches and decodes /jobs/{id}/trace.
func getSpanTree(t *testing.T, url, id string) obsv.SpanTree {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace for %s: %d", id, resp.StatusCode)
	}
	var st obsv.SpanTree
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func childNamed(sp obsv.SpanJSON, name string) (obsv.SpanJSON, bool) {
	for _, c := range sp.Children {
		if c.Name == name {
			return c, true
		}
	}
	return obsv.SpanJSON{}, false
}

// TestTraceStitchedEndToEnd submits over HTTP with a W3C traceparent
// header and checks the acceptance contract: the response echoes the
// job's own traceparent on the caller's trace, and the finished job's
// span tree stitches accept → queue → run with per-phase children.
func TestTraceStitchedEndToEnd(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	const parentHeader = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	body, err := json.Marshal(SubmitRequest{
		Netlist: netlistText(t, testNetlist(300, 21)),
		MaxIter: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", hs.URL+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", parentHeader)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sr SubmitResponse
	_ = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	// The response propagates the trace with the job's root span as the
	// new parent — same trace id, different span id.
	echoed, ok := obsv.ParseTraceParent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q does not parse", resp.Header.Get("traceparent"))
	}
	if echoed.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("response trace id %s, want the caller's", echoed.TraceID)
	}
	if echoed.SpanID.String() == "b7ad6b7169203331" {
		t.Error("response span id is the caller's, want the job's root span")
	}

	st := pollTerminal(t, hs.URL, sr.ID)
	if st.State != StateDone {
		t.Fatalf("state %q", st.State)
	}
	if st.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("status trace_id %q, want the propagated id", st.TraceID)
	}

	tree := getSpanTree(t, hs.URL, sr.ID)
	if tree.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id %s did not propagate", tree.TraceID)
	}
	if tree.RemoteParent != "b7ad6b7169203331" {
		t.Errorf("remote parent %q, want the caller's span id", tree.RemoteParent)
	}
	root := tree.Root
	if root.Name != "serve/job" || root.Open {
		t.Fatalf("root: name %q open %v, want a closed serve/job span", root.Name, root.Open)
	}
	if root.Attrs["job_id"] != sr.ID {
		t.Errorf("root job_id attr %q, want %s", root.Attrs["job_id"], sr.ID)
	}
	for _, name := range []string{"accept", "queue", "run"} {
		sp, ok := childNamed(root, name)
		if !ok {
			t.Fatalf("root has no %q child: %+v", name, root.Children)
		}
		if sp.Open || sp.DurNS < 0 {
			t.Errorf("%s span: open %v dur %d", name, sp.Open, sp.DurNS)
		}
	}
	run, _ := childNamed(root, "run")
	if run.Attrs["stop_reason"] == "" || run.Attrs["iterations"] == "" {
		t.Errorf("run span attrs: %+v", run.Attrs)
	}
	phases := 0
	for _, c := range run.Children {
		if strings.HasPrefix(c.Name, "phase/") {
			phases++
		}
	}
	if phases < 5 {
		t.Errorf("run span has %d phase/* children, want the full waterfall: %+v", phases, run.Children)
	}
}

// TestTraceFreshWithoutHeader: submissions without (or with malformed)
// traceparent still get a trace, and malformed headers never fail the
// request.
func TestTraceFreshWithoutHeader(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	body, _ := json.Marshal(SubmitRequest{Netlist: netlistText(t, testNetlist(80, 22)), MaxIter: 5})
	req, _ := http.NewRequest("POST", hs.URL+"/jobs", bytes.NewReader(body))
	req.Header.Set("traceparent", "garbage-not-a-traceparent")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sr SubmitResponse
	_ = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("malformed traceparent failed the submit: %d", resp.StatusCode)
	}
	pollTerminal(t, hs.URL, sr.ID)
	tree := getSpanTree(t, hs.URL, sr.ID)
	if tree.TraceID == "" || tree.TraceID == "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("fresh trace id %q", tree.TraceID)
	}
	if tree.RemoteParent != "" {
		t.Errorf("fresh trace has remote parent %q", tree.RemoteParent)
	}
}

// TestEventStreamSSE streams a job's convergence over SSE and checks the
// stream contract: contiguous sequence numbers, monotone iteration
// numbers, sane samples, and a final event carrying the terminal state.
func TestEventStreamSSE(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	code, sr := postJob(t, hs.URL, SubmitRequest{
		Netlist: netlistText(t, testNetlist(800, 23)),
		MaxIter: 40,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}

	resp, err := http.Get(hs.URL + "/jobs/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}

	var (
		events   []Event
		lastID   = -1
		sc       = bufio.NewScanner(resp.Body)
		sawFinal bool
	)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				t.Fatalf("bad id line %q", line)
			}
			if id != lastID+1 {
				t.Fatalf("sequence gap: id %d after %d", id, lastID)
			}
			lastID = id
		case strings.HasPrefix(line, "data: "):
			var e Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
			events = append(events, e)
			if e.Final {
				sawFinal = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawFinal {
		t.Fatal("stream ended without a final event")
	}
	if len(events) < 2 {
		t.Fatalf("only %d events", len(events))
	}
	final := events[len(events)-1]
	if final.State != StateDone {
		t.Errorf("final state %q, want done", final.State)
	}
	for i, e := range events[:len(events)-1] {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if i > 0 && e.Iter < events[i-1].Iter {
			t.Fatalf("iteration regressed: %d after %d", e.Iter, events[i-1].Iter)
		}
		if e.HPWL <= 0 || e.StepNS <= 0 || e.GapProxy < 0 {
			t.Fatalf("implausible sample %+v", e)
		}
	}

	// Resume from a mid-stream cursor: only the tail comes back.
	from := events[len(events)/2].Seq
	resp2, err := http.Get(fmt.Sprintf("%s/jobs/%s/events?poll=1&from=%d", hs.URL, sr.ID, from))
	if err != nil {
		t.Fatal(err)
	}
	var batch EventBatch
	if err := json.NewDecoder(resp2.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if !batch.Done {
		t.Error("finished job's batch not done")
	}
	if len(batch.Events) == 0 || batch.Events[0].Seq != from {
		t.Errorf("resume from %d returned %d events starting at %v", from, len(batch.Events), batch.Events)
	}
	if batch.Next != lastID+1 {
		t.Errorf("batch next %d, want %d", batch.Next, lastID+1)
	}
}

// TestEventStreamLongPollWhileRunning parks a long-poll on an idle gated
// job and checks it wakes when the first iteration lands.
func TestEventStreamLongPollWhileRunning(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	job, err := s.Submit(JobRequest{
		Netlist: testNetlist(60, 24),
		Config: place.Config{MaxIter: 3, BeforeTransform: func(iter int, _ *place.Placer) {
			once.Do(func() { close(started) })
			if iter == 1 {
				<-gate
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// Iteration 0 completes, then the job blocks before iteration 1; the
	// poll must return that first event rather than time out.
	resp, err := http.Get(hs.URL + "/jobs/" + job.ID() + "/events?poll=1")
	if err != nil {
		t.Fatal(err)
	}
	var batch EventBatch
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batch.Events) == 0 {
		t.Fatal("long-poll on a progressing job returned no events")
	}
	if batch.Events[0].Iter != 0 {
		t.Errorf("first event iter %d", batch.Events[0].Iter)
	}
	close(gate)
	pollTerminal(t, hs.URL, job.ID())
}

// TestDeadlineMissFlightRecord induces a deadline miss and checks the
// flight recorder holds a bundle with that job's span tree — the ISSUE's
// acceptance criterion for the anomaly path.
func TestDeadlineMissFlightRecord(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	code, sr := postJob(t, hs.URL, SubmitRequest{
		Netlist:    netlistText(t, testNetlist(1500, 25)),
		MaxIter:    400,
		DeadlineMS: 100,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	st := pollTerminal(t, hs.URL, sr.ID)
	if st.StopReason != place.StopDeadline {
		t.Skipf("job finished before its deadline (stop %q); machine too fast for this fixture", st.StopReason)
	}

	entries := s.FlightRecorder().Snapshot()
	var hit *obsv.FlightEntry
	for i := range entries {
		if entries[i].Reason == "deadline_miss" && entries[i].JobID == sr.ID {
			hit = &entries[i]
		}
	}
	if hit == nil {
		t.Fatalf("no deadline_miss entry for %s in %d records", sr.ID, len(entries))
	}
	if hit.Trace == nil || hit.Trace.Root.Name != "serve/job" {
		t.Fatalf("flight entry carries no span tree: %+v", hit.Trace)
	}
	if _, ok := childNamed(hit.Trace.Root, "run"); !ok {
		t.Error("flight entry's trace has no run span")
	}
	// Samples mirror actual progress; a deadline so tight that no
	// iteration finished leaves them legitimately empty.
	if samples, ok := hit.Samples.([]Event); ok && len(samples) == 0 && st.Iterations > 0 {
		t.Errorf("flight entry has no iteration samples after %d iterations", st.Iterations)
	}

	// The HTTP dump parses and contains the entry.
	resp, err := http.Get(hs.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flightrecorder: %d", resp.StatusCode)
	}
	var dump struct {
		Entries []struct {
			Reason string          `json:"reason"`
			JobID  string          `json:"job_id"`
			Trace  json.RawMessage `json:"trace"`
		} `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range dump.Entries {
		if e.Reason == "deadline_miss" && e.JobID == sr.ID && len(e.Trace) > 0 && string(e.Trace) != "null" {
			found = true
		}
	}
	if !found {
		t.Fatalf("HTTP dump missing the deadline_miss entry: %+v", dump.Entries)
	}
}

// TestRejectBurstFlightRecord floods a full queue past the burst
// threshold and checks a reject_burst bundle lands in the recorder.
func TestRejectBurstFlightRecord(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RejectBurst: 3})

	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	blocker, err := s.Submit(JobRequest{
		Netlist: testNetlist(60, 26),
		Config: place.Config{MaxIter: 3, BeforeTransform: func(iter int, _ *place.Placer) {
			once.Do(func() { close(started) })
			if iter == 0 {
				<-gate
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	text := netlistText(t, testNetlist(60, 27))
	if code, _ := postJob(t, hs.URL, SubmitRequest{Netlist: text, MaxIter: 3}); code != http.StatusAccepted {
		t.Fatalf("queue-filling submit: %d", code)
	}
	body, _ := json.Marshal(SubmitRequest{Netlist: text, MaxIter: 3})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(hs.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("rejection %d: %d, want 429", i, resp.StatusCode)
		}
	}

	found := false
	for _, e := range s.FlightRecorder().Snapshot() {
		if e.Reason == "reject_burst" {
			found = true
		}
	}
	if !found {
		t.Fatal("3 rejections with RejectBurst=3 recorded no reject_burst bundle")
	}
	close(gate)
	pollTerminal(t, hs.URL, blocker.ID())
}

// TestHealthzEnriched pins the JSON health schema: queue depth, active
// workers, capacity, uptime, and flight-record count.
func TestHealthzEnriched(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 2, QueueDepth: 7})

	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	job, err := s.Submit(JobRequest{
		Netlist: testNetlist(60, 28),
		Config: place.Config{MaxIter: 3, BeforeTransform: func(iter int, _ *place.Placer) {
			once.Do(func() { close(started) })
			if iter == 0 {
				<-gate
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Workers != 2 || h.QueueCap != 7 {
		t.Errorf("health identity: %+v", h)
	}
	if h.ActiveWorkers != 1 {
		t.Errorf("active_workers %d with one gated job, want 1", h.ActiveWorkers)
	}
	if h.Running != 1 || h.Jobs != 1 {
		t.Errorf("running %d jobs %d, want 1/1", h.Running, h.Jobs)
	}
	if h.UptimeSec < 0 {
		t.Errorf("uptime %g", h.UptimeSec)
	}
	close(gate)
	pollTerminal(t, hs.URL, job.ID())
}

// TestQueueWaitMetrics checks the queue-wait/run-time split lands in the
// Prometheus encoding with quantile companions.
func TestQueueWaitMetrics(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	code, sr := postJob(t, hs.URL, SubmitRequest{Netlist: netlistText(t, testNetlist(80, 29)), MaxIter: 5})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	pollTerminal(t, hs.URL, sr.ID)

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"serve_queue_wait_seconds_count 1",
		"serve_run_seconds_count 1",
		"serve_run_seconds_p50",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestCancelQueuedClosesStream: cancelling a queued job must end the
// trace and the event stream, not leave readers parked forever.
func TestCancelQueuedClosesStream(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 2})

	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	blocker, err := s.Submit(JobRequest{
		Netlist: testNetlist(60, 30),
		Config: place.Config{MaxIter: 3, BeforeTransform: func(iter int, _ *place.Placer) {
			once.Do(func() { close(started) })
			if iter == 0 {
				<-gate
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(JobRequest{Netlist: testNetlist(60, 31), Config: place.Config{MaxIter: 3}})
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()

	resp, err := http.Get(hs.URL + "/jobs/" + queued.ID() + "/events?poll=1")
	if err != nil {
		t.Fatal(err)
	}
	var batch EventBatch
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !batch.Done {
		t.Error("cancelled queued job's stream not done")
	}
	if n := len(batch.Events); n == 0 || !batch.Events[n-1].Final || batch.Events[n-1].State != StateCancelled {
		t.Errorf("terminal event: %+v", batch.Events)
	}
	tree := getSpanTree(t, hs.URL, queued.ID())
	if tree.Root.Open {
		t.Error("cancelled queued job's root span still open")
	}
	close(gate)
	pollTerminal(t, hs.URL, blocker.ID())
}

// TestConcurrentSubmitStreamDump is the -race exercise: jobs submitted,
// streamed, traced, and flight-dumped from many goroutines at once.
func TestConcurrentSubmitStreamDump(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 4, QueueDepth: 32})

	const jobs = 8
	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		code, sr := postJob(t, hs.URL, SubmitRequest{
			Netlist: netlistText(t, testNetlist(150, int64(40+i))),
			MaxIter: 20,
		})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		ids[i] = sr.ID
	}

	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			// Drain the job's stream via long-poll until done.
			from := 0
			for {
				resp, err := http.Get(fmt.Sprintf("%s/jobs/%s/events?poll=1&from=%d", hs.URL, id, from))
				if err != nil {
					t.Error(err)
					return
				}
				var batch EventBatch
				err = json.NewDecoder(resp.Body).Decode(&batch)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				for i, e := range batch.Events {
					if i > 0 && e.Seq != batch.Events[i-1].Seq+1 {
						t.Errorf("job %s: seq gap %d -> %d", id, batch.Events[i-1].Seq, e.Seq)
						return
					}
				}
				from = batch.Next
				if batch.Done {
					return
				}
			}
		}(id)
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(hs.URL + "/jobs/" + id + "/trace")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				resp, err = http.Get(hs.URL + "/debug/flightrecorder")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(id)
	}
	wg.Wait()
	for _, id := range ids {
		if st := pollTerminal(t, hs.URL, id); st.State != StateDone {
			t.Errorf("job %s ended %q", id, st.State)
		}
	}
	_ = s
}
