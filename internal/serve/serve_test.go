package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
)

func testNetlist(cells int, seed int64) *netlist.Netlist {
	return netgen.Generate(netgen.Config{
		Name: "svc", Cells: cells, Nets: cells + cells/3, Rows: 8, Seed: seed,
	})
}

func netlistText(t testing.TB, nl *netlist.Netlist) string {
	t.Helper()
	var buf bytes.Buffer
	if err := netlist.Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postJob(t *testing.T, url string, req SubmitRequest) (int, SubmitResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SubmitResponse
	_ = json.NewDecoder(resp.Body).Decode(&sr)
	return resp.StatusCode, sr
}

func getStatus(t *testing.T, url, id string) Status {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %d", id, resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// pollTerminal polls a job until it reaches a terminal state.
func pollTerminal(t *testing.T, url, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, url, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return Status{}
}

// assertLegalResult fetches /jobs/{id}/result and checks the placement is
// parseable and every movable cell sits at a finite position inside the
// region: the partial-result legality contract.
func assertLegalResult(t *testing.T, url, id string) *netlist.Netlist {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result for %s: %d", id, resp.StatusCode)
	}
	nl, err := netlist.Read(resp.Body)
	if err != nil {
		t.Fatalf("result for %s does not parse: %v", id, err)
	}
	out := nl.Region.Outline
	for i := range nl.Cells {
		c := nl.Cells[i]
		if c.Fixed {
			continue
		}
		if math.IsNaN(c.Pos.X) || math.IsNaN(c.Pos.Y) || !out.Contains(c.Pos) {
			t.Fatalf("result for %s: cell %d at illegal position %v", id, i, c.Pos)
		}
	}
	if h := nl.HPWL(); math.IsNaN(h) || math.IsInf(h, 0) || h <= 0 {
		t.Fatalf("result for %s: HPWL %v", id, h)
	}
	return nl
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, hs
}

// TestSubmitPollResult is the happy path end to end: submit over HTTP,
// poll to completion, fetch a legal placed netlist, and see the job in
// the listing, the health report, and the metrics.
func TestSubmitPollResult(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	code, sr := postJob(t, hs.URL, SubmitRequest{
		Netlist: netlistText(t, testNetlist(300, 1)),
		MaxIter: 120,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	st := pollTerminal(t, hs.URL, sr.ID)
	if st.State != StateDone {
		t.Fatalf("state %q (stop %q, err %q), want done", st.State, st.StopReason, st.Error)
	}
	if st.Iterations <= 0 || st.HPWL <= 0 {
		t.Fatalf("implausible result: %+v", st)
	}
	switch st.StopReason {
	case place.StopCriterion, place.StopStagnation, place.StopMaxIter:
	default:
		t.Fatalf("unexpected stop reason %q", st.StopReason)
	}
	assertLegalResult(t, hs.URL, sr.ID)

	// Listing contains the job.
	resp, err := http.Get(hs.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var all []Status
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(all) != 1 || all[0].ID != sr.ID {
		t.Fatalf("listing = %+v", all)
	}

	// Health and metrics endpoints respond.
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	_, _ = mbuf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(mbuf.String(), "serve_jobs_submitted_total 1") {
		t.Fatalf("metrics missing submission counter:\n%s", mbuf.String())
	}
}

// TestQueueFullBackpressure fills the single-slot queue behind a blocked
// worker and checks the next submission bounces with 429 + Retry-After.
func TestQueueFullBackpressure(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	blocker, err := s.Submit(JobRequest{
		Netlist: testNetlist(60, 2),
		Config: place.Config{MaxIter: 3, BeforeTransform: func(iter int, _ *place.Placer) {
			once.Do(func() { close(started) })
			if iter == 0 {
				<-gate
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker is now occupied; the queue is empty

	text := netlistText(t, testNetlist(60, 3))
	code, queued := postJob(t, hs.URL, SubmitRequest{Netlist: text, MaxIter: 3})
	if code != http.StatusAccepted {
		t.Fatalf("queue-filling submit: %d", code)
	}

	body, _ := json.Marshal(SubmitRequest{Netlist: text, MaxIter: 3})
	resp, err := http.Post(hs.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(gate)
	if st := pollTerminal(t, hs.URL, blocker.ID()); st.State != StateDone {
		t.Fatalf("blocker ended %q", st.State)
	}
	if st := pollTerminal(t, hs.URL, queued.ID); st.State != StateDone {
		t.Fatalf("queued job ended %q", st.State)
	}
}

// TestCancelMidRun cancels a running job over HTTP and checks it stops
// with a usable partial placement and stop_reason "cancelled".
func TestCancelMidRun(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	started := make(chan struct{})
	var once sync.Once
	job, err := s.Submit(JobRequest{
		Netlist: testNetlist(300, 4),
		Config: place.Config{MaxIter: 100000, StopSquareFactor: 1e-9, BeforeTransform: func(int, *place.Placer) {
			once.Do(func() { close(started) })
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	resp, err := http.Post(hs.URL+"/jobs/"+job.ID()+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}

	st := pollTerminal(t, hs.URL, job.ID())
	if st.State != StateCancelled {
		t.Fatalf("state %q, want cancelled", st.State)
	}
	if st.StopReason != place.StopCancelled {
		t.Fatalf("stop reason %q, want %q", st.StopReason, place.StopCancelled)
	}
	if st.Iterations >= 100000 {
		t.Fatalf("cancelled job ran to completion (%d iterations)", st.Iterations)
	}
	// A cancelled job still serves its partial placement.
	assertLegalResult(t, hs.URL, job.ID())
}

// TestDeadlinePartial submits a job whose deadline cannot possibly cover
// full convergence and checks graceful degradation: the job *succeeds*
// with stop_reason "deadline" and a legal partial placement.
func TestDeadlinePartial(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	code, sr := postJob(t, hs.URL, SubmitRequest{
		Netlist:    netlistText(t, testNetlist(1500, 5)),
		MaxIter:    400,
		DeadlineMS: 100,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	st := pollTerminal(t, hs.URL, sr.ID)
	if st.State != StateDone {
		t.Fatalf("state %q (err %q), want done — deadline expiry must not be an error", st.State, st.Error)
	}
	if st.StopReason != place.StopDeadline {
		t.Fatalf("stop reason %q, want %q", st.StopReason, place.StopDeadline)
	}
	if st.Error != "" {
		t.Fatalf("deadline partial carries error %q", st.Error)
	}
	assertLegalResult(t, hs.URL, sr.ID)
}

// TestPanicIsolation crashes one job and checks the blast radius is that
// job alone: its neighbours complete, the worker pool survives, and a
// job submitted afterwards still runs.
func TestPanicIsolation(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	bomb, err := s.Submit(JobRequest{
		Netlist: testNetlist(100, 6),
		Config: place.Config{MaxIter: 50, BeforeTransform: func(iter int, _ *place.Placer) {
			if iter == 1 {
				panic("injected failure")
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := netlistText(t, testNetlist(200, 7))
	code1, n1 := postJob(t, hs.URL, SubmitRequest{Netlist: text, MaxIter: 60})
	code2, n2 := postJob(t, hs.URL, SubmitRequest{Netlist: text, MaxIter: 60})
	if code1 != http.StatusAccepted || code2 != http.StatusAccepted {
		t.Fatalf("submits: %d, %d", code1, code2)
	}

	st := pollTerminal(t, hs.URL, bomb.ID())
	if st.State != StateFailed {
		t.Fatalf("panicking job state %q, want failed", st.State)
	}
	if !strings.Contains(st.Error, "panic") || !strings.Contains(st.Error, "injected failure") {
		t.Fatalf("panicking job error %q", st.Error)
	}
	for _, id := range []string{n1.ID, n2.ID} {
		if st := pollTerminal(t, hs.URL, id); st.State != StateDone {
			t.Fatalf("neighbour %s ended %q — panic was not isolated", id, st.State)
		}
	}
	// The pool still accepts and runs work.
	code3, n3 := postJob(t, hs.URL, SubmitRequest{Netlist: text, MaxIter: 30})
	if code3 != http.StatusAccepted {
		t.Fatalf("post-panic submit: %d", code3)
	}
	if st := pollTerminal(t, hs.URL, n3.ID); st.State != StateDone {
		t.Fatalf("post-panic job ended %q", st.State)
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %d", resp.StatusCode)
	}
}

// TestShutdownDrainsAndCheckpoints stops the server while a job is mid
// run and checks the graceful-shutdown contract: the job is cancelled at
// a transformation boundary, its state is serialized to a resumable
// checkpoint, and new submissions bounce with 503.
func TestShutdownDrainsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, QueueDepth: 4, CheckpointDir: dir})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	job, err := s.Submit(JobRequest{
		Netlist: testNetlist(800, 8),
		Config:  place.Config{MaxIter: 100000, StopSquareFactor: 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let it make real progress before pulling the plug.
	for deadline := time.Now().Add(30 * time.Second); ; {
		if st := job.Status(); st.Iterations >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job made no progress")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	st := job.Status()
	if st.State != StateCancelled {
		t.Fatalf("drained job state %q, want cancelled", st.State)
	}
	if st.Checkpoint == "" {
		t.Fatal("drained job has no checkpoint")
	}
	f, err := os.Open(st.Checkpoint)
	if err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	ck, err := place.DecodeCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatalf("checkpoint does not decode: %v", err)
	}
	if ck.Iter < 2 {
		t.Fatalf("checkpoint at iteration %d, want >= 2", ck.Iter)
	}

	// The checkpoint resumes on a fresh copy of the design.
	fresh := testNetlist(800, 8)
	p, err := place.Resume(fresh, place.Config{MaxIter: ck.Iter + 5}, ck)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if res.Iterations != ck.Iter+5 {
		t.Fatalf("resumed run stopped at %d, want %d", res.Iterations, ck.Iter+5)
	}

	// Draining server: health 503, submissions rejected.
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	if _, err := s.Submit(JobRequest{Netlist: testNetlist(60, 9)}); err != ErrDraining {
		t.Fatalf("Submit after Shutdown: %v, want ErrDraining", err)
	}
	body, _ := json.Marshal(SubmitRequest{Netlist: netlistText(t, testNetlist(60, 9))})
	hresp, err := http.Post(hs.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP submit after Shutdown: %d, want 503", hresp.StatusCode)
	}
}

// TestUnknownJob404 covers the lookup error path.
func TestUnknownJob404(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	for _, path := range []string{"/jobs/nope", "/jobs/nope/result"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Post(hs.URL+"/jobs", "application/json", strings.NewReader(`{"netlist":"garbage"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad netlist submit: %d, want 400", resp.StatusCode)
	}
}

// TestResultNotReady covers the 409 until-terminal contract.
func TestResultNotReady(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	gate := make(chan struct{})
	defer func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	}()
	started := make(chan struct{})
	var once sync.Once
	job, err := s.Submit(JobRequest{
		Netlist: testNetlist(60, 10),
		Config: place.Config{MaxIter: 3, BeforeTransform: func(iter int, _ *place.Placer) {
			once.Do(func() { close(started) })
			if iter == 0 {
				<-gate
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	resp, err := http.Get(hs.URL + "/jobs/" + job.ID() + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of running job: %d, want 409", resp.StatusCode)
	}
	close(gate)
	pollTerminal(t, hs.URL, job.ID())
}

// TestSubmitSolverKnobs: the precond/field request fields select the v2
// solver engine per job, and unknown values are rejected up front with a
// 400 rather than queued.
func TestSubmitSolverKnobs(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	text := netlistText(t, testNetlist(200, 7))

	code, sr := postJob(t, hs.URL, SubmitRequest{
		Netlist: text, MaxIter: 10, Precond: "ic0", Field: "rfft",
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit with solver knobs: %d", code)
	}
	if st := pollTerminal(t, hs.URL, sr.ID); st.State != StateDone {
		t.Fatalf("state %q (err %q), want done", st.State, st.Error)
	}
	assertLegalResult(t, hs.URL, sr.ID)

	for _, req := range []SubmitRequest{
		{Netlist: text, Precond: "ilu"},
		{Netlist: text, Field: "spectral"},
	} {
		if code, _ := postJob(t, hs.URL, req); code != http.StatusBadRequest {
			t.Fatalf("bad knob %q/%q accepted with %d, want 400", req.Precond, req.Field, code)
		}
	}
}
