// Package serve is the placement serving layer: a bounded job queue in
// front of a worker pool that runs global placements with per-job
// deadlines, cancellation, panic isolation, and checkpoint-on-drain
// shutdown.
//
// The design exploits the paper's central robustness property: the
// iterative loop can stop after any transformation and still hold a usable
// placement (§4's stopping criterion is a quality threshold, not a
// structural requirement). A job whose deadline expires therefore returns
// the best placement reached so far — graceful degradation — rather than
// an error; a job cancelled during shutdown serializes a place.Checkpoint
// so a later process can Resume it bit-compatibly.
//
// Backpressure is explicit: Submit rejects with ErrQueueFull when the
// queue is at capacity (the HTTP layer turns that into 429), so heavy
// traffic degrades by shedding load instead of by unbounded queueing.
package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/netlist"
	"repro/internal/obsv"
	"repro/internal/par"
	"repro/internal/place"
)

// Submission errors.
var (
	// ErrQueueFull reports a submission rejected by backpressure.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining reports a submission during shutdown.
	ErrDraining = errors.New("serve: server draining")
)

// Config sizes and wires a Server. The zero value serves with
// GOMAXPROCS workers, a 16-deep queue, no default deadline, and no
// checkpoint directory.
type Config struct {
	// Workers is the number of placements run concurrently. Defaults to
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the number of jobs waiting to start; submissions
	// beyond it fail with ErrQueueFull. Defaults to 16.
	QueueDepth int
	// DefaultDeadline applies to jobs that do not set their own. Zero
	// means no deadline.
	DefaultDeadline time.Duration
	// CheckpointDir, when non-empty, receives one <job-id>.ckpt snapshot
	// per in-flight job cancelled by Shutdown, so a restarted daemon (or
	// kplace -resume) can continue them.
	CheckpointDir string
	// Metrics, when set, receives the serving instruments
	// (serve_jobs_*_total, serve_queue_depth, serve_job_seconds). When
	// nil the server creates a private registry; either way /metrics
	// serves it.
	Metrics *obsv.Registry
	// Now injects the wall clock for job timestamps; cmd/kserved passes
	// time.Now. Nil falls back to the real clock.
	Now func() time.Time
}

// State is a job's lifecycle position.
type State string

// Job lifecycle. Deadline-expired jobs end in StateDone — a partial
// placement is a valid result (Status.StopReason distinguishes it).
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateCancelled State = "cancelled"
	StateFailed    State = "failed"
)

// Terminal reports whether no further transition can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// JobRequest describes one placement job. The netlist is owned by the job
// after Submit; do not touch it until the job reaches a terminal state.
type JobRequest struct {
	Netlist *netlist.Netlist
	// Config is the per-job placement configuration. The server chains
	// its own progress recorder onto OnIteration and forces NoTrace (a
	// serving process must not retain O(iterations) state per job).
	Config place.Config
	// Deadline bounds the job's run time; the job returns its best
	// placement when it expires. Zero uses Config.DefaultDeadline.
	Deadline time.Duration
}

// Status is a point-in-time snapshot of a job, also the /jobs/{id} JSON
// schema.
type Status struct {
	ID          string    `json:"id"`
	State       State     `json:"state"`
	Design      string    `json:"design"`
	Cells       int       `json:"cells"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
	// Progress/result fields; updated live while running, final once the
	// state is terminal.
	Iterations int     `json:"iterations"`
	HPWL       float64 `json:"hpwl"`
	Overflow   float64 `json:"overflow"`
	StopReason string  `json:"stop_reason,omitempty"`
	// Checkpoint is the snapshot path written when the job was drained
	// by Shutdown.
	Checkpoint string `json:"checkpoint,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Job is one submitted placement. All accessors are safe for concurrent
// use; the underlying netlist may only be read once the job is terminal.
type Job struct {
	id     string
	s      *Server
	nl     *netlist.Netlist
	cfg    place.Config
	cancel context.CancelFunc
	ctx    context.Context

	mu     sync.Mutex
	status Status
	drain  bool // set by Shutdown: cancellation should checkpoint
}

// ID returns the job's server-assigned identifier.
func (j *Job) ID() string { return j.id }

// Status returns a snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Netlist returns the job's netlist. Only read it once the job is
// terminal: the worker mutates positions while running.
func (j *Job) Netlist() *netlist.Netlist { return j.nl }

// Cancel stops the job: a queued job is marked cancelled immediately, a
// running one stops at the next transformation with its partial placement
// intact. Cancelling a terminal job is a no-op.
func (j *Job) Cancel() {
	j.mu.Lock()
	wasQueued := j.status.State == StateQueued
	if wasQueued {
		j.status.State = StateCancelled
		j.status.StopReason = place.StopCancelled
		j.status.FinishedAt = j.s.now()
	}
	j.mu.Unlock()
	if wasQueued {
		j.s.met.cancelled.Inc()
	}
	j.cancel()
}

// Done reports whether the job reached a terminal state.
func (j *Job) Done() bool { return j.Status().State.Terminal() }

// Server is the placement service: a bounded queue feeding a par.Pool of
// placement workers.
type Server struct {
	cfg  Config
	pool *par.Pool
	reg  *obsv.Registry
	met  serveMetrics

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	nextID   int
	draining bool
}

type serveMetrics struct {
	submitted  *obsv.Counter
	rejected   *obsv.Counter
	done       *obsv.Counter
	cancelled  *obsv.Counter
	failed     *obsv.Counter
	deadlined  *obsv.Counter
	queueDepth *obsv.Gauge
	jobSeconds *obsv.Histogram
}

// New starts a server with cfg's worker pool. Call Shutdown to stop it.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	s := &Server{
		cfg:  cfg,
		pool: par.NewPool(cfg.Workers, cfg.QueueDepth),
		reg:  reg,
		jobs: make(map[string]*Job),
		met: serveMetrics{
			submitted:  reg.Counter("serve_jobs_submitted_total", "placement jobs accepted"),
			rejected:   reg.Counter("serve_jobs_rejected_total", "placement jobs rejected by backpressure"),
			done:       reg.Counter("serve_jobs_done_total", "placement jobs completed (including deadline partials)"),
			cancelled:  reg.Counter("serve_jobs_cancelled_total", "placement jobs cancelled"),
			failed:     reg.Counter("serve_jobs_failed_total", "placement jobs failed (panic or structural error)"),
			deadlined:  reg.Counter("serve_jobs_deadline_total", "placement jobs that returned a deadline partial"),
			queueDepth: reg.Gauge("serve_queue_depth", "jobs waiting to start"),
			jobSeconds: reg.Histogram("serve_job_seconds", "placement job wall time in seconds", obsv.SecondsBuckets),
		},
	}
	// The pool's own recovery is a backstop; runJob recovers per job
	// before the panic can reach the worker.
	s.pool.OnPanic = func(any) { s.met.failed.Inc() }
	return s
}

// now reads the configured clock.
func (s *Server) now() time.Time {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	//lint:ignore noclock job timestamps need the wall clock; kserved injects time.Now explicitly and tests inject a fake — this is the nil-Config fallback
	return time.Now()
}

// Submit enqueues a placement job, returning ErrQueueFull under
// backpressure and ErrDraining during shutdown.
func (s *Server) Submit(req JobRequest) (*Job, error) {
	if req.Netlist == nil {
		return nil, errors.New("serve: nil netlist")
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.met.rejected.Inc()
		return nil, ErrDraining
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	s.mu.Unlock()

	deadline := req.Deadline
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:     id,
		s:      s,
		nl:     req.Netlist,
		cfg:    req.Config,
		ctx:    ctx,
		cancel: cancel,
		status: Status{
			ID:          id,
			State:       StateQueued,
			Design:      req.Netlist.Name,
			Cells:       len(req.Netlist.Cells),
			SubmittedAt: s.now(),
		},
	}
	j.cfg.NoTrace = true
	// Chain the server's progress recorder onto the caller's observer so
	// /jobs/{id} shows live iteration counts.
	user := j.cfg.OnIteration
	j.cfg.OnIteration = func(st place.IterStats) {
		j.mu.Lock()
		j.status.Iterations = st.Iter + 1
		j.status.HPWL = st.HPWL
		j.status.Overflow = st.Overflow
		j.mu.Unlock()
		if user != nil {
			user(st)
		}
	}
	run := func() { s.runJob(j, deadline) }
	if err := s.pool.Submit(run); err != nil {
		cancel()
		s.met.rejected.Inc()
		if errors.Is(err, par.ErrPoolClosed) {
			return nil, ErrDraining
		}
		return nil, ErrQueueFull
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.met.submitted.Inc()
	s.met.queueDepth.Set(float64(s.pool.Queued()))
	return j, nil
}

// runJob executes one job on a pool worker. A panic anywhere in the
// placement marks this job failed and leaves every other job untouched.
func (s *Server) runJob(j *Job, deadline time.Duration) {
	defer s.met.queueDepth.Set(float64(s.pool.Queued()))
	j.mu.Lock()
	if j.status.State != StateQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.status.State = StateRunning
	j.status.StartedAt = s.now()
	j.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			j.mu.Lock()
			j.status.State = StateFailed
			j.status.Error = fmt.Sprintf("panic: %v", r)
			j.status.FinishedAt = s.now()
			j.mu.Unlock()
			s.met.failed.Inc()
		}
	}()

	ctx := j.ctx
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	sw := obsv.StartTimer()
	placer := place.New(j.nl, j.cfg)
	res, err := placer.Run(ctx)
	s.met.jobSeconds.Observe(sw.Elapsed().Seconds())

	j.mu.Lock()
	j.status.FinishedAt = s.now()
	j.status.Iterations = res.Iterations
	j.status.HPWL = res.HPWL
	j.status.Overflow = res.Overflow
	j.status.StopReason = res.StopReason
	needCkpt := false
	switch {
	case err != nil:
		j.status.State = StateFailed
		j.status.Error = err.Error()
		s.met.failed.Inc()
	case res.StopReason == place.StopCancelled:
		j.status.State = StateCancelled
		s.met.cancelled.Inc()
		needCkpt = j.drain && s.cfg.CheckpointDir != ""
	default:
		// Deadline partials are successes: the best placement so far is
		// a valid result, distinguished only by StopReason.
		j.status.State = StateDone
		s.met.done.Inc()
		if res.StopReason == place.StopDeadline {
			s.met.deadlined.Inc()
		}
	}
	j.mu.Unlock()

	// The checkpoint write happens outside the status lock: the placer is
	// exclusively ours once Run returned, and a Status reader should never
	// wait on disk I/O. The checkpoint path lands in the status as soon as
	// the file is durable.
	if needCkpt {
		path, werr := s.writeCheckpoint(j.id, placer)
		j.mu.Lock()
		if werr != nil {
			j.status.Error = werr.Error()
		} else {
			j.status.Checkpoint = path
		}
		j.mu.Unlock()
	}
}

// writeCheckpoint serializes a drained job's placer state.
//
//lint:ignore ctxflow drain-path checkpoint: the job's context is already cancelled here, and the write must finish to be worth anything
func (s *Server) writeCheckpoint(id string, p *place.Placer) (string, error) {
	path := filepath.Join(s.cfg.CheckpointDir, id+".ckpt")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("serve: checkpoint %s: %w", id, err)
	}
	if err := p.Checkpoint().Encode(f); err != nil {
		f.Close()
		return "", fmt.Errorf("serve: checkpoint %s: %w", id, err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("serve: checkpoint %s: %w", id, err)
	}
	return path, nil
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job's status in submission order.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Health summarizes the server for /healthz.
type Health struct {
	Status   string `json:"status"` // "ok" or "draining"
	Workers  int    `json:"workers"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	Jobs     int    `json:"jobs"`
	Draining bool   `json:"draining"`
}

// Health returns the current service health.
func (s *Server) Health() Health {
	// Snapshot the job set under s.mu, then count states under each j.mu
	// after releasing it: taking a job lock inside the server lock would
	// stall every Submit/Job call behind the slowest status holder.
	s.mu.Lock()
	draining := s.draining
	total := len(s.jobs)
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	running := 0
	for _, j := range jobs {
		j.mu.Lock()
		if j.status.State == StateRunning {
			running++
		}
		j.mu.Unlock()
	}
	h := Health{
		Status:   "ok",
		Workers:  s.cfg.Workers,
		Queued:   s.pool.Queued(),
		Running:  running,
		Jobs:     total,
		Draining: draining,
	}
	if draining {
		h.Status = "draining"
	}
	return h
}

// Metrics returns the registry the server meters into.
func (s *Server) Metrics() *obsv.Registry { return s.reg }

// Shutdown drains the server: new submissions are rejected, every
// non-terminal job is cancelled (running jobs stop at their next
// transformation and, when CheckpointDir is set, serialize a resumable
// snapshot), and the worker pool is closed. It waits until the drain
// completes or ctx is done, whichever comes first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return s.pool.CloseContext(ctx)
	}
	s.draining = true
	// Drain in submission order so shutdown behavior is reproducible.
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		terminal := j.status.State.Terminal()
		if !terminal {
			j.drain = true
		}
		j.mu.Unlock()
		if !terminal {
			j.Cancel()
		}
	}
	return s.pool.CloseContext(ctx)
}
