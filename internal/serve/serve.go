// Package serve is the placement serving layer: a bounded job queue in
// front of a worker pool that runs global placements with per-job
// deadlines, cancellation, panic isolation, and checkpoint-on-drain
// shutdown.
//
// The design exploits the paper's central robustness property: the
// iterative loop can stop after any transformation and still hold a usable
// placement (§4's stopping criterion is a quality threshold, not a
// structural requirement). A job whose deadline expires therefore returns
// the best placement reached so far — graceful degradation — rather than
// an error; a job cancelled during shutdown serializes a place.Checkpoint
// so a later process can Resume it bit-compatibly.
//
// Backpressure is explicit: Submit rejects with ErrQueueFull when the
// queue is at capacity (the HTTP layer turns that into 429), so heavy
// traffic degrades by shedding load instead of by unbounded queueing.
package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/netlist"
	"repro/internal/obsv"
	"repro/internal/par"
	"repro/internal/place"
)

// Submission errors.
var (
	// ErrQueueFull reports a submission rejected by backpressure.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining reports a submission during shutdown.
	ErrDraining = errors.New("serve: server draining")
)

// Config sizes and wires a Server. The zero value serves with
// GOMAXPROCS workers, a 16-deep queue, no default deadline, and no
// checkpoint directory.
type Config struct {
	// Workers is the number of placements run concurrently. Defaults to
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the number of jobs waiting to start; submissions
	// beyond it fail with ErrQueueFull. Defaults to 16.
	QueueDepth int
	// DefaultDeadline applies to jobs that do not set their own. Zero
	// means no deadline.
	DefaultDeadline time.Duration
	// CheckpointDir, when non-empty, receives one <job-id>.ckpt snapshot
	// per in-flight job cancelled by Shutdown, so a restarted daemon (or
	// kplace -resume) can continue them.
	CheckpointDir string
	// Metrics, when set, receives the serving instruments
	// (serve_jobs_*_total, serve_queue_depth, serve_job_seconds). When
	// nil the server creates a private registry; either way /metrics
	// serves it.
	Metrics *obsv.Registry
	// Now injects the wall clock for job timestamps; cmd/kserved passes
	// time.Now. Nil falls back to the real clock.
	Now func() time.Time
	// SLO, when positive, is the per-job run-time objective: a job whose
	// placement run (queue wait excluded) takes longer records a
	// flight-recorder bundle with reason "slo_breach".
	SLO time.Duration
	// FlightRecorderCap bounds the in-memory anomaly ring. Defaults to
	// 32; negative disables the recorder entirely.
	FlightRecorderCap int
	// RejectBurst is the number of backpressure rejections within one
	// second that counts as an anomaly (reason "reject_burst"). Defaults
	// to 8; negative disables the trigger.
	RejectBurst int
	// ProfileOnBreach, when positive, captures a CPU profile of that
	// duration into the flight bundle on an SLO breach. The capture runs
	// synchronously on the breaching job's worker — the time is already
	// lost to the breach — and at most one capture runs at a time.
	ProfileOnBreach time.Duration
}

// State is a job's lifecycle position.
type State string

// Job lifecycle. Deadline-expired jobs end in StateDone — a partial
// placement is a valid result (Status.StopReason distinguishes it).
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateCancelled State = "cancelled"
	StateFailed    State = "failed"
)

// Terminal reports whether no further transition can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// JobRequest describes one placement job. The netlist is owned by the job
// after Submit; do not touch it until the job reaches a terminal state.
type JobRequest struct {
	Netlist *netlist.Netlist
	// Config is the per-job placement configuration. The server chains
	// its own progress recorder onto OnIteration and forces NoTrace (a
	// serving process must not retain O(iterations) state per job).
	Config place.Config
	// Deadline bounds the job's run time; the job returns its best
	// placement when it expires. Zero uses Config.DefaultDeadline.
	Deadline time.Duration
	// Trace is the upstream trace context (parsed W3C traceparent). The
	// zero value starts a fresh trace; a valid one stitches this job's
	// span tree under the caller's span.
	Trace obsv.TraceParent
	// Accept is how long the transport spent accepting the request
	// (decode + netlist parse) before Submit; it becomes the root span's
	// leading "accept" child so the trace covers the full request.
	Accept time.Duration
}

// Status is a point-in-time snapshot of a job, also the /jobs/{id} JSON
// schema.
type Status struct {
	ID          string    `json:"id"`
	State       State     `json:"state"`
	Design      string    `json:"design"`
	Cells       int       `json:"cells"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
	// Progress/result fields; updated live while running, final once the
	// state is terminal.
	Iterations int              `json:"iterations"`
	HPWL       float64          `json:"hpwl"`
	Overflow   float64          `json:"overflow"`
	StopReason place.StopReason `json:"stop_reason,omitempty"`
	// Checkpoint is the snapshot path written when the job was drained
	// by Shutdown.
	Checkpoint string `json:"checkpoint,omitempty"`
	Error      string `json:"error,omitempty"`
	// TraceID identifies the job's span tree (GET /jobs/{id}/trace);
	// propagated from the submitter's traceparent when one was sent.
	TraceID string `json:"trace_id,omitempty"`
}

// Job is one submitted placement. All accessors are safe for concurrent
// use; the underlying netlist may only be read once the job is terminal.
type Job struct {
	id     string
	s      *Server
	nl     *netlist.Netlist
	cfg    place.Config
	cancel context.CancelFunc
	ctx    context.Context

	// trace is the job's span tree; queueSpan is the open "queue" child
	// ended when a worker picks the job up. prog is the bounded event
	// ring behind GET /jobs/{id}/events.
	trace     *obsv.JobTrace
	queueSpan *obsv.SpanRec
	prog      *progress

	mu     sync.Mutex
	status Status
	drain  bool // set by Shutdown: cancellation should checkpoint
}

// ID returns the job's server-assigned identifier.
func (j *Job) ID() string { return j.id }

// Status returns a snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Netlist returns the job's netlist. Only read it once the job is
// terminal: the worker mutates positions while running.
func (j *Job) Netlist() *netlist.Netlist { return j.nl }

// TraceTree snapshots the job's span tree (the /jobs/{id}/trace schema).
func (j *Job) TraceTree() obsv.SpanTree { return j.trace.Snapshot() }

// TraceParent returns the trace context to propagate to work downstream
// of this job — the traceparent header value for a follow-up call.
func (j *Job) TraceParent() obsv.TraceParent { return j.trace.Child() }

// Events returns buffered progress events with Seq >= from (oldest
// first), a channel that closes when the next event arrives, and whether
// the stream has ended. An empty batch with done=false means "wait on
// wake, then call again".
func (j *Job) Events(from int) (events []Event, wake <-chan struct{}, done bool) {
	return j.prog.since(from)
}

// Cancel stops the job: a queued job is marked cancelled immediately, a
// running one stops at the next transformation with its partial placement
// intact. Cancelling a terminal job is a no-op.
func (j *Job) Cancel() {
	j.mu.Lock()
	wasQueued := j.status.State == StateQueued
	if wasQueued {
		j.status.State = StateCancelled
		j.status.StopReason = place.StopCancelled
		j.status.FinishedAt = j.s.now()
	}
	j.mu.Unlock()
	if wasQueued {
		j.s.met.cancelled.Inc()
		j.queueSpan.End()
		j.trace.Root().End()
		j.prog.closeWith(Event{State: StateCancelled})
	}
	j.cancel()
}

// Done reports whether the job reached a terminal state.
func (j *Job) Done() bool { return j.Status().State.Terminal() }

// Server is the placement service: a bounded queue feeding a par.Pool of
// placement workers.
type Server struct {
	cfg     Config
	pool    *par.Pool
	reg     *obsv.Registry
	met     serveMetrics
	rec     *obsv.FlightRecorder // nil when disabled
	started time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	nextID   int
	draining bool
	// Rejection-burst tracking: rejCount rejections since rejWindow; a
	// window is one second, and the flight trigger fires once per window.
	rejWindow time.Time
	rejCount  int
}

type serveMetrics struct {
	submitted  *obsv.Counter
	rejected   *obsv.Counter
	done       *obsv.Counter
	cancelled  *obsv.Counter
	failed     *obsv.Counter
	deadlined  *obsv.Counter
	flight     *obsv.Counter
	queueDepth *obsv.Gauge
	jobSeconds *obsv.Histogram
	queueWait  *obsv.Histogram
	runSeconds *obsv.Histogram
}

// New starts a server with cfg's worker pool. Call Shutdown to stop it.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.FlightRecorderCap == 0 {
		cfg.FlightRecorderCap = 32
	}
	if cfg.RejectBurst == 0 {
		cfg.RejectBurst = 8
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	s := &Server{
		cfg:  cfg,
		pool: par.NewPool(cfg.Workers, cfg.QueueDepth),
		reg:  reg,
		jobs: make(map[string]*Job),
		met: serveMetrics{
			submitted:  reg.Counter("serve_jobs_submitted_total", "placement jobs accepted"),
			rejected:   reg.Counter("serve_jobs_rejected_total", "placement jobs rejected by backpressure"),
			done:       reg.Counter("serve_jobs_done_total", "placement jobs completed (including deadline partials)"),
			cancelled:  reg.Counter("serve_jobs_cancelled_total", "placement jobs cancelled"),
			failed:     reg.Counter("serve_jobs_failed_total", "placement jobs failed (panic or structural error)"),
			deadlined:  reg.Counter("serve_jobs_deadline_total", "placement jobs that returned a deadline partial"),
			flight:     reg.Counter("serve_flight_records_total", "anomaly bundles captured by the flight recorder"),
			queueDepth: reg.Gauge("serve_queue_depth", "jobs waiting to start"),
			jobSeconds: reg.Histogram("serve_job_seconds", "placement job wall time in seconds", obsv.SecondsBuckets),
			queueWait:  reg.Histogram("serve_queue_wait_seconds", "time from submission to a worker picking the job up", obsv.SecondsBuckets),
			runSeconds: reg.Histogram("serve_run_seconds", "placement run time excluding queue wait", obsv.SecondsBuckets),
		},
	}
	if cfg.FlightRecorderCap > 0 {
		s.rec = obsv.NewFlightRecorder(cfg.FlightRecorderCap)
	}
	s.started = s.now()
	// The pool's own recovery is a backstop; runJob recovers per job
	// before the panic can reach the worker.
	s.pool.OnPanic = func(any) { s.met.failed.Inc() }
	return s
}

// now reads the configured clock.
func (s *Server) now() time.Time {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	//lint:ignore noclock job timestamps need the wall clock; kserved injects time.Now explicitly and tests inject a fake — this is the nil-Config fallback
	return time.Now()
}

// Submit enqueues a placement job, returning ErrQueueFull under
// backpressure and ErrDraining during shutdown.
func (s *Server) Submit(req JobRequest) (*Job, error) {
	if req.Netlist == nil {
		return nil, errors.New("serve: nil netlist")
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.noteRejection()
		return nil, ErrDraining
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	s.mu.Unlock()

	deadline := req.Deadline
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}
	now := s.now()
	tr := obsv.NewJobTraceAt("serve/job", req.Trace, s.cfg.Now)
	root := tr.Root()
	root.SetAttr("job_id", id)
	root.SetAttr("design", req.Netlist.Name)
	if req.Accept > 0 {
		// The transport's accept work (decode + parse) happened just
		// before Submit; fold it into the tree as the root's first child.
		root.RecordChild("accept", now.Add(-req.Accept), now)
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:        id,
		s:         s,
		nl:        req.Netlist,
		cfg:       req.Config,
		ctx:       ctx,
		cancel:    cancel,
		trace:     tr,
		queueSpan: root.Start("queue"),
		prog:      newProgress(),
		status: Status{
			ID:          id,
			State:       StateQueued,
			Design:      req.Netlist.Name,
			Cells:       len(req.Netlist.Cells),
			SubmittedAt: now,
			TraceID:     tr.ID(),
		},
	}
	j.cfg.NoTrace = true
	// Chain the server's progress recorder onto the caller's observer so
	// /jobs/{id} shows live iteration counts and /jobs/{id}/events
	// streams per-iteration convergence.
	user := j.cfg.OnIteration
	j.cfg.OnIteration = func(st place.IterStats) {
		j.mu.Lock()
		j.status.Iterations = st.Iter + 1
		j.status.HPWL = st.HPWL
		j.status.Overflow = st.Overflow
		j.mu.Unlock()
		j.prog.append(eventFrom(st))
		if user != nil {
			user(st)
		}
	}
	run := func() { s.runJob(j, deadline) }
	if err := s.pool.Submit(run); err != nil {
		cancel()
		s.noteRejection()
		if errors.Is(err, par.ErrPoolClosed) {
			return nil, ErrDraining
		}
		return nil, ErrQueueFull
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.met.submitted.Inc()
	s.met.queueDepth.Set(float64(s.pool.Queued()))
	return j, nil
}

// runJob executes one job on a pool worker. A panic anywhere in the
// placement marks this job failed and leaves every other job untouched.
func (s *Server) runJob(j *Job, deadline time.Duration) {
	defer s.met.queueDepth.Set(float64(s.pool.Queued()))
	j.mu.Lock()
	if j.status.State != StateQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.status.State = StateRunning
	started := s.now()
	j.status.StartedAt = started
	submitted := j.status.SubmittedAt
	j.mu.Unlock()
	j.queueSpan.End()
	s.met.queueWait.Observe(started.Sub(submitted).Seconds())
	runSpan := j.trace.Root().Start("run")

	defer func() {
		if r := recover(); r != nil {
			j.mu.Lock()
			j.status.State = StateFailed
			j.status.Error = fmt.Sprintf("panic: %v", r)
			j.status.FinishedAt = s.now()
			j.mu.Unlock()
			s.met.failed.Inc()
			runSpan.SetAttr("panic", fmt.Sprint(r))
			runSpan.End()
			j.trace.Root().End()
			s.flightDump(j, "panic", map[string]any{"panic": fmt.Sprint(r)}, nil)
			j.prog.closeWith(Event{State: StateFailed})
		}
	}()

	ctx := j.ctx
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	sw := obsv.StartTimer()
	placer := place.New(j.nl, j.cfg)
	res, err := placer.Run(ctx)
	elapsed := sw.Elapsed()
	s.met.jobSeconds.Observe(elapsed.Seconds())
	s.met.runSeconds.Observe(elapsed.Seconds())

	// Fold the run's phase totals into the trace as a waterfall of
	// aggregate child spans (laid end to end from the run start; the x/y
	// solves actually overlap, so the waterfall is a duration budget, not
	// a timeline), then close the run and root spans.
	runEnd := s.now()
	runStart := runEnd.Add(-elapsed)
	t := runStart
	for _, ph := range []struct {
		name string
		d    time.Duration
	}{
		{"phase/weight", res.Phases.Weight},
		{"phase/gather", res.Phases.Gather},
		{"phase/field", res.Phases.Field},
		{"phase/build", res.Phases.Build},
		{"phase/solve-x", res.Phases.SolveX},
		{"phase/solve-y", res.Phases.SolveY},
	} {
		if ph.d > 0 {
			runSpan.RecordChild(ph.name, t, t.Add(ph.d))
			t = t.Add(ph.d)
		}
	}
	runSpan.SetAttr("iterations", fmt.Sprint(res.Iterations))
	runSpan.SetAttr("stop_reason", string(res.StopReason))
	runSpan.SetAttr("hpwl", fmt.Sprintf("%g", res.HPWL))
	runSpan.End()
	j.trace.Root().End()

	j.mu.Lock()
	j.status.FinishedAt = runEnd
	j.status.Iterations = res.Iterations
	j.status.HPWL = res.HPWL
	j.status.Overflow = res.Overflow
	j.status.StopReason = res.StopReason
	needCkpt := false
	final := Event{HPWL: res.HPWL, Overflow: res.Overflow, Iter: res.Iterations - 1}
	switch {
	case err != nil:
		j.status.State = StateFailed
		j.status.Error = err.Error()
		s.met.failed.Inc()
	case res.StopReason == place.StopCancelled:
		j.status.State = StateCancelled
		s.met.cancelled.Inc()
		needCkpt = j.drain && s.cfg.CheckpointDir != ""
	default:
		// Deadline partials are successes: the best placement so far is
		// a valid result, distinguished only by StopReason.
		j.status.State = StateDone
		s.met.done.Inc()
		if res.StopReason == place.StopDeadline {
			s.met.deadlined.Inc()
		}
	}
	final.State = j.status.State
	j.mu.Unlock()

	// Anomaly capture. A deadline miss means the job shipped a partial;
	// an SLO breach means even a completed run was too slow. Both freeze
	// the span tree and the recent convergence samples for postmortem.
	if res.StopReason == place.StopDeadline {
		s.flightDump(j, "deadline_miss", map[string]any{
			"deadline_ms": deadline.Milliseconds(),
			"iterations":  res.Iterations,
			"stop_reason": res.StopReason,
		}, nil)
	} else if s.cfg.SLO > 0 && elapsed > s.cfg.SLO {
		var profile []byte
		if s.cfg.ProfileOnBreach > 0 {
			profile = s.rec.CaptureCPUProfile(s.cfg.ProfileOnBreach)
		}
		s.flightDump(j, "slo_breach", map[string]any{
			"slo_ms": s.cfg.SLO.Milliseconds(),
			"run_ms": elapsed.Milliseconds(),
		}, profile)
	}
	j.prog.closeWith(final)

	// The checkpoint write happens outside the status lock: the placer is
	// exclusively ours once Run returned, and a Status reader should never
	// wait on disk I/O. The checkpoint path lands in the status as soon as
	// the file is durable.
	if needCkpt {
		path, werr := s.writeCheckpoint(j.id, placer)
		j.mu.Lock()
		if werr != nil {
			j.status.Error = werr.Error()
		} else {
			j.status.Checkpoint = path
		}
		j.mu.Unlock()
	}
}

// flightDump freezes one job's observability state — span tree plus the
// most recent convergence samples — into the flight recorder. No-op when
// the recorder is disabled.
func (s *Server) flightDump(j *Job, reason string, detail map[string]any, profile []byte) {
	if s.rec == nil {
		return
	}
	tree := j.trace.Snapshot()
	s.rec.Record(obsv.FlightEntry{
		Time:       s.now(),
		Reason:     reason,
		JobID:      j.id,
		Detail:     detail,
		Trace:      &tree,
		Samples:    j.prog.recent(64),
		CPUProfile: profile,
	})
	s.met.flight.Inc()
}

// noteRejection counts one backpressure rejection and, when rejections
// burst (RejectBurst within a one-second window), records a flight
// bundle — a rejection storm is an anomaly about the service, not about
// any single job. Fires once per window.
func (s *Server) noteRejection() {
	s.met.rejected.Inc()
	if s.rec == nil || s.cfg.RejectBurst <= 0 {
		return
	}
	now := s.now()
	s.mu.Lock()
	if now.Sub(s.rejWindow) > time.Second {
		s.rejWindow = now
		s.rejCount = 0
	}
	s.rejCount++
	fire := s.rejCount == s.cfg.RejectBurst
	count := s.rejCount
	queued := s.pool.Queued()
	s.mu.Unlock()
	if fire {
		s.rec.Record(obsv.FlightEntry{
			Time:   now,
			Reason: "reject_burst",
			Detail: map[string]any{
				"rejections_in_window": count,
				"window_ms":            1000,
				"queued":               queued,
				"queue_cap":            s.cfg.QueueDepth,
			},
		})
		s.met.flight.Inc()
	}
}

// FlightRecorder exposes the anomaly ring (nil when disabled).
func (s *Server) FlightRecorder() *obsv.FlightRecorder { return s.rec }

// writeCheckpoint serializes a drained job's placer state.
//
//lint:ignore ctxflow drain-path checkpoint: the job's context is already cancelled here, and the write must finish to be worth anything
func (s *Server) writeCheckpoint(id string, p *place.Placer) (string, error) {
	path := filepath.Join(s.cfg.CheckpointDir, id+".ckpt")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("serve: checkpoint %s: %w", id, err)
	}
	if err := p.Checkpoint().Encode(f); err != nil {
		f.Close()
		return "", fmt.Errorf("serve: checkpoint %s: %w", id, err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("serve: checkpoint %s: %w", id, err)
	}
	return path, nil
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job's status in submission order.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Health summarizes the server for /healthz.
type Health struct {
	Status   string `json:"status"` // "ok" or "draining"
	Workers  int    `json:"workers"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	Jobs     int    `json:"jobs"`
	Draining bool   `json:"draining"`
	// ActiveWorkers counts pool workers mid-task right now (Running
	// counts jobs in StateRunning; the two can briefly differ around
	// state transitions).
	ActiveWorkers int `json:"active_workers"`
	// QueueCap is the configured queue bound; Queued/QueueCap is the
	// backpressure headroom.
	QueueCap int `json:"queue_cap"`
	// UptimeSec is seconds since the server started, by its own clock.
	UptimeSec float64 `json:"uptime_sec"`
	// FlightRecords is the number of anomaly bundles currently held.
	FlightRecords int `json:"flight_records"`
}

// Health returns the current service health.
func (s *Server) Health() Health {
	// Snapshot the job set under s.mu, then count states under each j.mu
	// after releasing it: taking a job lock inside the server lock would
	// stall every Submit/Job call behind the slowest status holder.
	s.mu.Lock()
	draining := s.draining
	total := len(s.jobs)
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	running := 0
	for _, j := range jobs {
		j.mu.Lock()
		if j.status.State == StateRunning {
			running++
		}
		j.mu.Unlock()
	}
	h := Health{
		Status:        "ok",
		Workers:       s.cfg.Workers,
		Queued:        s.pool.Queued(),
		Running:       running,
		Jobs:          total,
		Draining:      draining,
		ActiveWorkers: s.pool.Running(),
		QueueCap:      s.cfg.QueueDepth,
		UptimeSec:     s.now().Sub(s.started).Seconds(),
		FlightRecords: s.rec.Len(),
	}
	if draining {
		h.Status = "draining"
	}
	return h
}

// Metrics returns the registry the server meters into.
func (s *Server) Metrics() *obsv.Registry { return s.reg }

// Shutdown drains the server: new submissions are rejected, every
// non-terminal job is cancelled (running jobs stop at their next
// transformation and, when CheckpointDir is set, serialize a resumable
// snapshot), and the worker pool is closed. It waits until the drain
// completes or ctx is done, whichever comes first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return s.pool.CloseContext(ctx)
	}
	s.draining = true
	// Drain in submission order so shutdown behavior is reproducible.
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		terminal := j.status.State.Terminal()
		if !terminal {
			j.drain = true
		}
		j.mu.Unlock()
		if !terminal {
			j.Cancel()
		}
	}
	return s.pool.CloseContext(ctx)
}
