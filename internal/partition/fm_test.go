package partition

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/netlist"
)

// twoClusters builds two internally dense 6-cell cliques joined by one net.
func twoClusters(t *testing.T) (*netlist.Netlist, []int) {
	t.Helper()
	b := netlist.NewBuilder("cl", geom.NewRegion(4, 1, 40))
	names := make([]string, 12)
	for i := range names {
		names[i] = string(rune('a' + i))
		b.AddCell(names[i], 1, 1)
	}
	ni := 0
	conn := func(a, c string) {
		b.Connect("n"+string(rune('0'+ni/10))+string(rune('0'+ni%10)), a, c)
		ni++
	}
	for g := 0; g < 2; g++ {
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				conn(names[g*6+i], names[g*6+j])
			}
		}
	}
	conn(names[0], names[6]) // single bridge
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cells := make([]int, 12)
	for i := range cells {
		cells[i] = i
	}
	return nl, cells
}

func TestBipartitionFindsNaturalCut(t *testing.T) {
	nl, cells := twoClusters(t)
	// Seed with the worst split: alternating sides.
	seed := make([]int, 12)
	for i := range seed {
		seed[i] = i % 2
	}
	res := Bipartition(nl, cells, seed, Options{})
	if res.Cut != 1 {
		t.Errorf("cut = %d, want 1 (the bridge)", res.Cut)
	}
	// The two cliques end on opposite sides.
	for i := 1; i < 6; i++ {
		if res.Side[i] != res.Side[0] {
			t.Errorf("cluster 1 split: side[%d]=%d side[0]=%d", i, res.Side[i], res.Side[0])
		}
		if res.Side[6+i] != res.Side[6] {
			t.Errorf("cluster 2 split: side[%d]=%d", 6+i, res.Side[6+i])
		}
	}
	if res.Side[0] == res.Side[6] {
		t.Error("both clusters on the same side")
	}
}

func TestBipartitionBalance(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "bal", Cells: 400, Nets: 600, Rows: 8, Seed: 31})
	cells := movables(nl)
	res := Bipartition(nl, cells, nil, Options{Balance: 0.1})
	var a0, total float64
	for li, ci := range cells {
		a := nl.Cells[ci].Area()
		total += a
		if res.Side[li] == 0 {
			a0 += a
		}
	}
	dev := a0/total - 0.5
	if dev > 0.11 || dev < -0.11 {
		t.Errorf("balance deviation = %v", dev)
	}
}

func TestBipartitionImprovesOverSeed(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "imp", Cells: 300, Nets: 450, Rows: 8, Seed: 32})
	cells := movables(nl)
	seed := make([]int, len(cells))
	for i := range seed {
		seed[i] = i % 2 // interleaved: terrible for clustered nets
	}
	seedCut := cutOf(nl, cells, seed)
	res := Bipartition(nl, cells, seed, Options{})
	if res.Cut >= seedCut {
		t.Errorf("FM did not improve: %d -> %d", seedCut, res.Cut)
	}
	if got := cutOf(nl, cells, res.Side); got != res.Cut {
		t.Errorf("reported cut %d != recomputed %d", res.Cut, got)
	}
}

func TestBipartitionSubsetOnly(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "sub", Cells: 100, Nets: 150, Rows: 4, Seed: 33})
	all := movables(nl)
	subset := all[:40]
	res := Bipartition(nl, subset, nil, Options{})
	if len(res.Side) != 40 {
		t.Fatalf("side length %d", len(res.Side))
	}
}

func TestBipartitionTinyInputs(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "tiny", Cells: 4, Nets: 3, Rows: 2, Seed: 34})
	res := Bipartition(nl, []int{0, 1}, nil, Options{})
	if len(res.Side) != 2 {
		t.Fatal("bad side slice")
	}
	res = Bipartition(nl, []int{0}, nil, Options{})
	if len(res.Side) != 1 {
		t.Fatal("single-cell bipartition broken")
	}
}

func TestBipartitionDeterministic(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "det", Cells: 200, Nets: 300, Rows: 8, Seed: 35})
	cells := movables(nl)
	a := Bipartition(nl, cells, nil, Options{Seed: 7})
	b := Bipartition(nl, cells, nil, Options{Seed: 7})
	for i := range a.Side {
		if a.Side[i] != b.Side[i] {
			t.Fatal("non-deterministic result")
		}
	}
}

func movables(nl *netlist.Netlist) []int {
	var out []int
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed {
			out = append(out, i)
		}
	}
	return out
}

func cutOf(nl *netlist.Netlist, cells, side []int) int {
	loc := map[int]int{}
	for li, ci := range cells {
		loc[ci] = side[li]
	}
	cut := 0
	for ni := range nl.Nets {
		has := [2]bool{}
		members := 0
		seen := map[int]bool{}
		for _, p := range nl.Nets[ni].Pins {
			if s, ok := loc[p.Cell]; ok && !seen[p.Cell] {
				seen[p.Cell] = true
				has[s] = true
				members++
			}
		}
		if members >= 2 && has[0] && has[1] {
			cut++
		}
	}
	return cut
}
