// Package partition implements Fiduccia–Mattheyses min-cut bipartitioning,
// the engine behind the GORDIAN-style comparison placer. It operates on a
// subset of a netlist's cells, respects an area balance tolerance, and uses
// the classic gain-bucket structure for O(pins) passes.
package partition

import (
	"math"
	"math/rand"

	"repro/internal/netlist"
)

// Options controls a bipartitioning run.
type Options struct {
	// Balance is the maximum allowed deviation of either side's area from
	// half the total, as a fraction (default 0.1 → 40/60 at worst).
	Balance float64
	// MaxPasses bounds the number of FM passes (default 8; passes stop
	// early when a pass yields no improvement).
	MaxPasses int
	// Seed drives the initial partition when no seed sides are given.
	Seed int64
}

// Result of a bipartition.
type Result struct {
	// Side[i] is 0 or 1 for each input cell (indexed like the input
	// slice).
	Side []int
	// Cut is the number of nets with pins on both sides (counting only
	// nets that touch the partitioned set).
	Cut int
	// Passes is the number of FM passes executed.
	Passes int
}

// Bipartition splits the given cells of nl into two sides minimizing net
// cut. seedSide, when non-nil, provides the initial assignment (same length
// as cells); otherwise the first half by input order starts on side 0.
func Bipartition(nl *netlist.Netlist, cells []int, seedSide []int, opts Options) Result {
	if opts.Balance <= 0 {
		opts.Balance = 0.1
	}
	if opts.MaxPasses <= 0 {
		opts.MaxPasses = 8
	}
	f := newFM(nl, cells, seedSide, opts)
	for pass := 0; pass < opts.MaxPasses; pass++ {
		if !f.pass() {
			f.passes = pass + 1
			break
		}
		f.passes = pass + 1
	}
	return Result{Side: f.side, Cut: f.cutCount(), Passes: f.passes}
}

type fm struct {
	nl    *netlist.Netlist
	cells []int
	local map[int]int // cell index -> local index
	side  []int
	area  []float64
	total float64
	want  float64 // half of total
	tol   float64
	rng   *rand.Rand

	nets     []fmNet // nets restricted to the partitioned set
	cellNets [][]int // local cell -> indices into nets

	gain    []int
	buckets *gainBuckets
	locked  []bool
	passes  int
}

type fmNet struct {
	members []int  // local cell indices (deduplicated)
	count   [2]int // members per side (maintained during a pass)
}

func newFM(nl *netlist.Netlist, cells []int, seedSide []int, opts Options) *fm {
	f := &fm{
		nl:    nl,
		cells: cells,
		local: make(map[int]int, len(cells)),
		side:  make([]int, len(cells)),
		area:  make([]float64, len(cells)),
		rng:   rand.New(rand.NewSource(opts.Seed)),
	}
	for li, ci := range cells {
		f.local[ci] = li
		a := nl.Cells[ci].Area()
		if a <= 0 {
			a = 1e-9
		}
		f.area[li] = a
		f.total += a
	}
	f.want = f.total / 2
	f.tol = opts.Balance * f.total

	if seedSide != nil {
		copy(f.side, seedSide)
	} else {
		for li := range f.side {
			if li >= len(cells)/2 {
				f.side[li] = 1
			}
		}
	}
	f.rebalance()

	// Restrict nets to the partitioned set, dropping single-member nets.
	f.cellNets = make([][]int, len(cells))
	seen := make(map[int]bool)
	for ni := range nl.Nets {
		clear(seen)
		var members []int
		for _, p := range nl.Nets[ni].Pins {
			if li, ok := f.local[p.Cell]; ok && !seen[p.Cell] {
				seen[p.Cell] = true
				members = append(members, li)
			}
		}
		if len(members) < 2 {
			continue
		}
		fi := len(f.nets)
		f.nets = append(f.nets, fmNet{members: members})
		for _, li := range members {
			f.cellNets[li] = append(f.cellNets[li], fi)
		}
	}
	f.locked = make([]bool, len(cells))
	f.gain = make([]int, len(cells))
	return f
}

// rebalance greedily moves cells until both sides are within tolerance,
// fixing degenerate seeds. The iteration count is bounded: with very few or
// very unequal cells the tolerance may be unsatisfiable (one cell heavier
// than half the total), in which case the best reachable split stands.
func (f *fm) rebalance() {
	for iter := 0; iter <= len(f.cells); iter++ {
		a := f.sideArea(0)
		switch {
		case a > f.want+f.tol:
			f.moveSmallestExcessFrom(0, a-f.want)
		case f.total-a > f.want+f.tol:
			f.moveSmallestExcessFrom(1, f.total-a-f.want)
		default:
			return
		}
	}
}

// moveSmallestExcessFrom moves the largest cell on side s not exceeding the
// excess (or the smallest cell when all exceed it), converging instead of
// ping-ponging one oversized cell.
func (f *fm) moveSmallestExcessFrom(s int, excess float64) {
	best, bestA := -1, -1.0
	smallest, smallestA := -1, math.Inf(1)
	for li, sd := range f.side {
		if sd != s {
			continue
		}
		a := f.area[li]
		if a <= excess && a > bestA {
			best, bestA = li, a
		}
		if a < smallestA {
			smallest, smallestA = li, a
		}
	}
	if best < 0 {
		best = smallest
	}
	if best >= 0 {
		f.side[best] = 1 - s
	}
}

func (f *fm) sideArea(s int) float64 {
	var a float64
	for li, sd := range f.side {
		if sd == s {
			a += f.area[li]
		}
	}
	return a
}

func (f *fm) moveLargestFrom(s int) {
	best, bestA := -1, -1.0
	for li, sd := range f.side {
		if sd == s && f.area[li] > bestA {
			best, bestA = li, f.area[li]
		}
	}
	if best >= 0 {
		f.side[best] = 1 - s
	}
}

func (f *fm) cutCount() int {
	cut := 0
	for i := range f.nets {
		n := &f.nets[i]
		c0 := 0
		for _, li := range n.members {
			if f.side[li] == 0 {
				c0++
			}
		}
		if c0 > 0 && c0 < len(n.members) {
			cut++
		}
	}
	return cut
}

// pass runs one FM pass and keeps the best prefix; returns true when the
// pass improved the cut.
func (f *fm) pass() bool {
	n := len(f.cells)
	if n < 2 {
		return false
	}
	// Initialize net side counts and cell gains.
	maxDeg := 0
	for li := range f.cellNets {
		if d := len(f.cellNets[li]); d > maxDeg {
			maxDeg = d
		}
	}
	for i := range f.nets {
		f.nets[i].count = [2]int{}
		for _, li := range f.nets[i].members {
			f.nets[i].count[f.side[li]]++
		}
	}
	for li := range f.gain {
		f.gain[li] = f.computeGain(li)
		f.locked[li] = false
	}
	f.buckets = newGainBuckets(maxDeg)
	for li := range f.gain {
		f.buckets.add(li, f.gain[li])
	}

	area0 := f.sideArea(0)
	startCut := f.cutCount()
	bestGainSum, gainSum := 0, 0
	bestPrefix := 0
	moves := make([]int, 0, n)

	for len(moves) < n {
		li := f.pickMove(area0)
		if li < 0 {
			break
		}
		from := f.side[li]
		gainSum += f.gain[li]
		f.applyMove(li)
		if from == 0 {
			area0 -= f.area[li]
		} else {
			area0 += f.area[li]
		}
		moves = append(moves, li)
		if gainSum > bestGainSum {
			bestGainSum = gainSum
			bestPrefix = len(moves)
		}
	}
	// Roll back past the best prefix.
	for i := len(moves) - 1; i >= bestPrefix; i-- {
		li := moves[i]
		f.side[li] = 1 - f.side[li]
	}
	return bestGainSum > 0 && f.cutCount() < startCut
}

// computeGain returns the cut reduction of moving cell li to the other
// side.
func (f *fm) computeGain(li int) int {
	s := f.side[li]
	g := 0
	for _, fi := range f.cellNets[li] {
		n := &f.nets[fi]
		if n.count[s] == 1 {
			g++ // moving removes the last member on s: net uncut
		}
		if n.count[1-s] == 0 {
			g-- // net was uncut, moving cuts it
		}
	}
	return g
}

// pickMove returns the unlocked cell with the highest gain whose move keeps
// the balance, or -1.
func (f *fm) pickMove(area0 float64) int {
	return f.buckets.best(func(li int) bool {
		if f.locked[li] {
			return false
		}
		newArea0 := area0
		if f.side[li] == 0 {
			newArea0 -= f.area[li]
		} else {
			newArea0 += f.area[li]
		}
		return math.Abs(newArea0-f.want) <= f.tol+f.area[li]
	})
}

// applyMove flips cell li, locks it, and updates neighbor gains.
func (f *fm) applyMove(li int) {
	from := f.side[li]
	to := 1 - from
	f.locked[li] = true
	f.buckets.remove(li, f.gain[li])

	for _, fi := range f.cellNets[li] {
		n := &f.nets[fi]
		// Gain updates per the standard FM critical-net rules, before and
		// after the count change.
		if n.count[to] == 0 {
			for _, m := range n.members {
				f.bumpGain(m, +1)
			}
		} else if n.count[to] == 1 {
			for _, m := range n.members {
				if !f.locked[m] && f.side[m] == to {
					f.bumpGain(m, -1)
				}
			}
		}
		n.count[from]--
		n.count[to]++
		if n.count[from] == 0 {
			for _, m := range n.members {
				f.bumpGain(m, -1)
			}
		} else if n.count[from] == 1 {
			for _, m := range n.members {
				if !f.locked[m] && f.side[m] == from {
					f.bumpGain(m, +1)
				}
			}
		}
	}
	f.side[li] = to
}

func (f *fm) bumpGain(li, delta int) {
	if f.locked[li] {
		return
	}
	f.buckets.remove(li, f.gain[li])
	f.gain[li] += delta
	f.buckets.add(li, f.gain[li])
}

// gainBuckets is the classic FM bucket array over gains [-maxDeg, maxDeg]
// with a moving max pointer.
type gainBuckets struct {
	offset  int
	buckets [][]int
	pos     map[int]int // cell -> index within its bucket
	maxGain int
}

func newGainBuckets(maxDeg int) *gainBuckets {
	return &gainBuckets{
		offset:  maxDeg,
		buckets: make([][]int, 2*maxDeg+1),
		pos:     make(map[int]int),
		maxGain: -maxDeg,
	}
}

func (b *gainBuckets) add(li, gain int) {
	g := gain + b.offset
	if g < 0 {
		g = 0
	}
	if g >= len(b.buckets) {
		g = len(b.buckets) - 1
	}
	b.pos[li] = len(b.buckets[g])
	b.buckets[g] = append(b.buckets[g], li)
	if gain > b.maxGain {
		b.maxGain = gain
	}
}

func (b *gainBuckets) remove(li, gain int) {
	g := gain + b.offset
	if g < 0 {
		g = 0
	}
	if g >= len(b.buckets) {
		g = len(b.buckets) - 1
	}
	bucket := b.buckets[g]
	i, ok := b.pos[li]
	if !ok || i >= len(bucket) || bucket[i] != li {
		// Linear fallback (should not happen; defensive).
		for j, v := range bucket {
			if v == li {
				i = j
				break
			}
		}
	}
	last := len(bucket) - 1
	bucket[i] = bucket[last]
	b.pos[bucket[i]] = i
	b.buckets[g] = bucket[:last]
	delete(b.pos, li)
}

// best scans from the highest gain downward and returns the first cell
// accepted by ok, or -1.
func (b *gainBuckets) best(ok func(int) bool) int {
	for g := len(b.buckets) - 1; g >= 0; g-- {
		for _, li := range b.buckets[g] {
			if ok(li) {
				return li
			}
		}
	}
	return -1
}
