package eco

import (
	"testing"

	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
)

func placedCircuit(t *testing.T, cells int, seed int64) *netlist.Netlist {
	t.Helper()
	nl := netgen.Generate(netgen.Config{Name: "e", Cells: cells, Nets: cells + cells/3, Rows: 8, Seed: seed})
	if _, err := place.Global(nl, place.Config{MaxIter: 60}); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestApplyAddsCellsAndNets(t *testing.T) {
	nl := placedCircuit(t, 150, 101)
	n0 := len(nl.Cells)
	added, err := Apply(nl, []Change{
		{RemoveNet: -1, AddCell: &netlist.Cell{Name: "new1", W: 2, H: 1}},
		{RemoveNet: -1, AddCell: &netlist.Cell{Name: "new2", W: 1, H: 1}},
		{RemoveNet: -1, AddNet: &netlist.Net{Name: "nn", Pins: []netlist.Pin{
			{Cell: n0, Dir: netlist.Output},
			{Cell: n0 + 1, Dir: netlist.Input},
			{Cell: 3, Dir: netlist.Input},
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 2 || len(nl.Cells) != n0+2 {
		t.Fatalf("added = %v", added)
	}
	// New cells seeded near their neighbor (cell 3).
	if d := nl.Cells[n0].Pos.Dist(nl.Cells[3].Pos); d > nl.Region.W()/2 {
		t.Errorf("seed position %v far from neighbor %v", nl.Cells[n0].Pos, nl.Cells[3].Pos)
	}
}

func TestApplyResizeAndRemove(t *testing.T) {
	nl := placedCircuit(t, 100, 102)
	w0 := nl.Cells[5].W
	nNets := len(nl.Nets)
	if _, err := Apply(nl, []Change{
		{RemoveNet: -1, ResizeCell: &Resize{Index: 5, Factor: 1.5}},
		{RemoveNet: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if nl.Cells[5].W != w0*1.5 {
		t.Errorf("resize failed: %v", nl.Cells[5].W)
	}
	if len(nl.Nets) != nNets-1 {
		t.Errorf("net not removed: %d", len(nl.Nets))
	}
}

func TestApplyErrors(t *testing.T) {
	nl := placedCircuit(t, 50, 103)
	cases := [][]Change{
		{{RemoveNet: -1}}, // empty change
		{{RemoveNet: 9999}},
		{{RemoveNet: -1, ResizeCell: &Resize{Index: -1, Factor: 2}}},
		{{RemoveNet: -1, ResizeCell: &Resize{Index: 0, Factor: 0}}},
		{{RemoveNet: -1, AddNet: &netlist.Net{Name: "bad", Pins: []netlist.Pin{{Cell: 1}, {Cell: 12345}}}}},
	}
	for i, chs := range cases {
		if _, err := Apply(nl.Clone(), chs); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReplaceDisturbsLittle(t *testing.T) {
	nl := placedCircuit(t, 300, 104)
	pre := nl.Snapshot()
	n0 := len(nl.Cells)
	if _, err := Apply(nl, []Change{
		{RemoveNet: -1, AddCell: &netlist.Cell{Name: "x1", W: 2, H: 1}},
		{RemoveNet: -1, AddNet: &netlist.Net{Name: "xn", Pins: []netlist.Pin{
			{Cell: n0, Dir: netlist.Output},
			{Cell: 10, Dir: netlist.Input},
			{Cell: 11, Dir: netlist.Input},
		}}},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := Replace(nl, pre, place.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// "An incrementally changed netlist results in small changes in the
	// placement": mean displacement a couple of row heights at most — the
	// spring network spreads any local force a little — and well under
	// 2 % of the chip span.
	mean := res.TotalDisplacement / float64(n0)
	if mean > 2.0 {
		t.Errorf("mean displacement %v rows after tiny ECO", mean)
	}
	span := nl.Region.W() + nl.Region.H()
	if mean > 0.02*span {
		t.Errorf("mean displacement %v above 2%% of span %v", mean, span)
	}
	if res.MaxDisplacement > nl.Region.W()/2 {
		t.Errorf("max displacement %v is half the chip", res.MaxDisplacement)
	}
}

func TestReplaceAbsorbsLocalDensitySpike(t *testing.T) {
	nl := placedCircuit(t, 200, 105)
	pre := nl.Snapshot()
	// Add a burst of cells all connected to one existing cell: they seed
	// on top of it and must be spread out by the density forces.
	var changes []Change
	base := len(nl.Cells)
	for i := 0; i < 10; i++ {
		changes = append(changes, Change{RemoveNet: -1, AddCell: &netlist.Cell{W: 2, H: 1}})
	}
	for i := 0; i < 10; i++ {
		changes = append(changes, Change{RemoveNet: -1, AddNet: &netlist.Net{
			Pins: []netlist.Pin{
				{Cell: base + i, Dir: netlist.Output},
				{Cell: 7, Dir: netlist.Input},
			},
		}})
	}
	if _, err := Apply(nl, changes); err != nil {
		t.Fatal(err)
	}
	res, err := Replace(nl, pre, place.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The new cells must not all sit on one point anymore.
	distinct := map[[2]int]bool{}
	for i := 0; i < 10; i++ {
		p := nl.Cells[base+i].Pos
		distinct[[2]int{int(p.X), int(p.Y)}] = true
	}
	if len(distinct) < 3 {
		t.Errorf("ECO cells still piled: %d distinct unit positions", len(distinct))
	}
	_ = res
}
