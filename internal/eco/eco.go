// Package eco implements incremental placement after netlist changes (§5,
// "ECO and Interaction with Logic Synthesis"): edits are applied to a
// placed design, new cells start near their connectivity's center of
// gravity, and a KeepPlacement Kraftwerk run lets the density-deviation
// forces absorb the change with minimal disturbance — "the placement of
// cells relative to each other is preserved".
package eco

import (
	"fmt"

	"repro/internal/density"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place"
)

// Change is one netlist edit.
type Change struct {
	// AddCell, when non-nil, adds a movable cell.
	AddCell *netlist.Cell
	// AddNet, when non-nil, adds a net; pin cell indices may reference
	// cells added earlier in the same batch (indices continue the
	// existing cell slice).
	AddNet *netlist.Net
	// ResizeCell scales the dimensions of cell Index by Factor (gate
	// resizing).
	ResizeCell *Resize
	// RemoveNet deletes the net with this index (set to -1 when unused).
	RemoveNet int
}

// Resize describes a gate-resizing edit.
type Resize struct {
	Index  int
	Factor float64
}

// Result summarizes an incremental placement.
type Result struct {
	Place place.Result
	// MaxDisplacement and TotalDisplacement measure how much the
	// pre-existing cells moved (new cells excluded).
	MaxDisplacement   float64
	TotalDisplacement float64
	// HPWLBefore/After are measured over the final netlist (before = at
	// the moment after edits, with new cells at their seed positions).
	HPWLBefore float64
	HPWLAfter  float64
}

// Apply performs the edits in order and seeds new cells at the center of
// gravity of their connected placed neighbors (falling back to the region
// center). It returns the indices of the added cells.
func Apply(nl *netlist.Netlist, changes []Change) ([]int, error) {
	var added []int
	for i, ch := range changes {
		switch {
		case ch.AddCell != nil:
			c := *ch.AddCell
			c.Fixed = false
			nl.Cells = append(nl.Cells, c)
			added = append(added, len(nl.Cells)-1)
		case ch.AddNet != nil:
			n := *ch.AddNet
			if n.Weight <= 0 {
				n.Weight = 1
			}
			for _, p := range n.Pins {
				if p.Cell < 0 || p.Cell >= len(nl.Cells) {
					return added, fmt.Errorf("eco: change %d: pin cell %d out of range", i, p.Cell)
				}
			}
			nl.Nets = append(nl.Nets, n)
		case ch.ResizeCell != nil:
			r := ch.ResizeCell
			if r.Index < 0 || r.Index >= len(nl.Cells) {
				return added, fmt.Errorf("eco: change %d: resize cell %d out of range", i, r.Index)
			}
			if r.Factor <= 0 {
				return added, fmt.Errorf("eco: change %d: resize factor %g", i, r.Factor)
			}
			nl.Cells[r.Index].W *= r.Factor
		case ch.RemoveNet >= 0:
			if ch.RemoveNet >= len(nl.Nets) {
				return added, fmt.Errorf("eco: change %d: net %d out of range", i, ch.RemoveNet)
			}
			nl.Nets = append(nl.Nets[:ch.RemoveNet], nl.Nets[ch.RemoveNet+1:]...)
		default:
			return added, fmt.Errorf("eco: change %d is empty", i)
		}
	}
	nl.InvalidateIndex()
	seedNewCells(nl, added)
	return added, nl.Validate()
}

// seedNewCells puts each added cell at the centroid of its placed
// neighbors.
func seedNewCells(nl *netlist.Netlist, added []int) {
	isNew := map[int]bool{}
	for _, ci := range added {
		isNew[ci] = true
	}
	idx := nl.CellNets()
	for _, ci := range added {
		var sum geom.Point
		n := 0
		for _, ni := range idx[ci] {
			for _, p := range nl.Nets[ni].Pins {
				if p.Cell == ci || isNew[p.Cell] {
					continue
				}
				sum = sum.Add(nl.Cells[p.Cell].Pos)
				n++
			}
		}
		if n > 0 {
			nl.Cells[ci].Pos = sum.Scale(1 / float64(n))
		} else {
			nl.Cells[ci].Pos = nl.Region.Outline.Center()
		}
		// Deterministic jitter: cells seeded on exactly the same point
		// would receive identical density forces forever and could never
		// separate.
		j := float64(ci%7) - 3
		k := float64(ci%5) - 2
		nl.Cells[ci].Pos = nl.Region.Outline.ClampPoint(nl.Cells[ci].Pos.Add(geom.Point{
			X: j * 0.21,
			Y: k * 0.13,
		}))
	}
}

// Replace incrementally re-places nl after edits: a KeepPlacement run whose
// forces arise only from the density deviations the edits introduced.
// preEdit must be the snapshot taken before Apply (its length may be
// shorter than the current cell count; only common cells are measured).
func Replace(nl *netlist.Netlist, preEdit netlist.Placement, cfg place.Config) (Result, error) {
	cfg.KeepPlacement = true
	if cfg.MaxIter <= 0 || cfg.MaxIter > 30 {
		// ECO wants absorption, not re-placement: few gentle steps.
		cfg.MaxIter = 15
	}
	if cfg.K <= 0 {
		cfg.K = 0.1
	}
	// The §5 formulation: forces arise from the density *deviations* the
	// netlist change introduced, not from the absolute density — the
	// pre-edit demand map is subtracted, so the converged placement's
	// residual unevenness produces no force and only the edit's
	// neighborhood moves.
	var preDemand []float64
	userExtra := cfg.ExtraDemand
	cfg.ExtraDemand = func(g *density.Grid) []float64 {
		if preDemand == nil {
			tmp := density.NewGrid(g.Region, g.NX, g.NY)
			for ci := range preEdit {
				c := &nl.Cells[ci]
				if c.Fixed {
					continue
				}
				tmp.AddArea(geom.RectCenteredAt(preEdit[ci], c.W, c.H), 1)
			}
			preDemand = make([]float64, len(tmp.Demand))
			for i := range preDemand {
				preDemand[i] = -tmp.Demand[i]
			}
		}
		out := append([]float64(nil), preDemand...)
		if userExtra != nil {
			for i, v := range userExtra(g) {
				out[i] += v
			}
		}
		return out
	}
	res := Result{HPWLBefore: nl.HPWL()}
	// Drive a fixed number of placement transformations directly: the
	// global stopping criterion is already satisfied by the converged
	// pre-edit placement, so Run would exit before the density-deviation
	// forces had any chance to absorb the change.
	placer := place.New(nl, cfg)
	if err := placer.Initialize(); err != nil {
		return res, err
	}
	var pres place.Result
	for it := 0; it < cfg.MaxIter; it++ {
		stats, err := placer.Step()
		if err != nil && it == 0 {
			return res, err
		}
		pres.Trace = append(pres.Trace, stats)
		pres.Iterations = it + 1
		pres.HPWL = stats.HPWL
		pres.Overflow = stats.Overflow
	}
	pres.Converged = true
	pres.StopReason = "eco-steps"
	res.Place = pres
	res.HPWLAfter = nl.HPWL()
	after := nl.Snapshot()
	for ci := range preEdit {
		if nl.Cells[ci].Fixed {
			continue
		}
		d := preEdit[ci].Dist(after[ci])
		res.TotalDisplacement += d
		if d > res.MaxDisplacement {
			res.MaxDisplacement = d
		}
	}
	return res, nil
}
