// Package geom provides the geometric primitives shared by every placement
// subsystem: points, rectangles, placement rows and the placement region.
// All coordinates are float64 in abstract layout units; one unit is one
// standard-cell row height unless a netlist says otherwise.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

func (p Point) String() string { return fmt.Sprintf("(%.4g,%.4g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle with Lo at the lower-left corner and
// Hi at the upper-right corner. A Rect with Hi < Lo in either axis is empty.
type Rect struct {
	Lo, Hi Point
}

// NewRect builds a rectangle from any two opposite corners.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Point{x0, y0}, Point{x1, y1}}
}

// RectWH builds a rectangle from a lower-left corner and a width/height.
func RectWH(x, y, w, h float64) Rect {
	return Rect{Point{x, y}, Point{x + w, y + h}}
}

// RectCenteredAt builds a w×h rectangle centered on c.
func RectCenteredAt(c Point, w, h float64) Rect {
	return Rect{Point{c.X - w/2, c.Y - h/2}, Point{c.X + w/2, c.Y + h/2}}
}

// W returns the rectangle width (0 when empty).
func (r Rect) W() float64 { return math.Max(0, r.Hi.X-r.Lo.X) }

// H returns the rectangle height (0 when empty).
func (r Rect) H() float64 { return math.Max(0, r.Hi.Y-r.Lo.Y) }

// Area returns the rectangle area (0 when empty).
func (r Rect) Area() float64 { return r.W() * r.H() }

// Empty reports whether the rectangle has no interior.
func (r Rect) Empty() bool { return r.Hi.X <= r.Lo.X || r.Hi.Y <= r.Lo.Y }

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// HalfPerimeter returns W+H, the standard wire-length measure of a bounding
// box.
func (r Rect) HalfPerimeter() float64 { return r.W() + r.H() }

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// ContainsRect reports whether s lies fully inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.Lo.X >= r.Lo.X && s.Hi.X <= r.Hi.X && s.Lo.Y >= r.Lo.Y && s.Hi.Y <= r.Hi.Y
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		Point{math.Max(r.Lo.X, s.Lo.X), math.Max(r.Lo.Y, s.Lo.Y)},
		Point{math.Min(r.Hi.X, s.Hi.X), math.Min(r.Hi.Y, s.Hi.Y)},
	}
}

// Overlap returns the area of the intersection of r and s.
func (r Rect) Overlap(s Rect) float64 { return r.Intersect(s).Area() }

// Union returns the smallest rectangle covering both r and s. An empty
// rectangle acts as the identity.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Point{math.Min(r.Lo.X, s.Lo.X), math.Min(r.Lo.Y, s.Lo.Y)},
		Point{math.Max(r.Hi.X, s.Hi.X), math.Max(r.Hi.Y, s.Hi.Y)},
	}
}

// Expand returns r grown by m on every side (shrunk when m is negative).
func (r Rect) Expand(m float64) Rect {
	return Rect{Point{r.Lo.X - m, r.Lo.Y - m}, Point{r.Hi.X + m, r.Hi.Y + m}}
}

// ClampPoint returns the point in r closest to p.
func (r Rect) ClampPoint(p Point) Point {
	return Point{clamp(p.X, r.Lo.X, r.Hi.X), clamp(p.Y, r.Lo.Y, r.Hi.Y)}
}

// ClampCenter returns the center position closest to c such that a w×h
// rectangle centered there stays inside r. Oversized rectangles are centered.
func (r Rect) ClampCenter(c Point, w, h float64) Point {
	lox, hix := r.Lo.X+w/2, r.Hi.X-w/2
	loy, hiy := r.Lo.Y+h/2, r.Hi.Y-h/2
	out := c
	if lox > hix {
		out.X = (r.Lo.X + r.Hi.X) / 2
	} else {
		out.X = clamp(c.X, lox, hix)
	}
	if loy > hiy {
		out.Y = (r.Lo.Y + r.Hi.Y) / 2
	} else {
		out.Y = clamp(c.Y, loy, hiy)
	}
	return out
}

func (r Rect) String() string {
	return fmt.Sprintf("[%s %s]", r.Lo, r.Hi)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BBox accumulates a bounding box over a stream of points.
type BBox struct {
	r     Rect
	count int
}

// Add extends the box to cover p.
func (b *BBox) Add(p Point) {
	if b.count == 0 {
		b.r = Rect{p, p}
	} else {
		if p.X < b.r.Lo.X {
			b.r.Lo.X = p.X
		}
		if p.Y < b.r.Lo.Y {
			b.r.Lo.Y = p.Y
		}
		if p.X > b.r.Hi.X {
			b.r.Hi.X = p.X
		}
		if p.Y > b.r.Hi.Y {
			b.r.Hi.Y = p.Y
		}
	}
	b.count++
}

// Rect returns the accumulated box; the zero Rect when no point was added.
func (b *BBox) Rect() Rect { return b.r }

// Count returns how many points were added.
func (b *BBox) Count() int { return b.count }

// Row is one standard-cell row of the placement region.
type Row struct {
	Y      float64 // bottom edge of the row
	Height float64 // row (cell) height
	X0, X1 float64 // usable horizontal extent
}

// Rect returns the row footprint.
func (r Row) Rect() Rect { return NewRect(r.X0, r.Y, r.X1, r.Y+r.Height) }

// Capacity returns the total placeable width of the row.
func (r Row) Capacity() float64 { return r.X1 - r.X0 }

// Region is the placement area: an outline plus its standard-cell rows.
// Floorplanning-style designs may have zero rows and use only the outline.
type Region struct {
	Outline Rect
	Rows    []Row
}

// NewRegion builds a region of n equal rows of the given height and width,
// with the outline tightly wrapping the rows. n must be >= 1.
func NewRegion(nRows int, rowHeight, width float64) Region {
	rows := make([]Row, nRows)
	for i := range rows {
		rows[i] = Row{Y: float64(i) * rowHeight, Height: rowHeight, X0: 0, X1: width}
	}
	return Region{
		Outline: NewRect(0, 0, width, float64(nRows)*rowHeight),
		Rows:    rows,
	}
}

// W returns the outline width.
func (g Region) W() float64 { return g.Outline.W() }

// H returns the outline height.
func (g Region) H() float64 { return g.Outline.H() }

// Area returns the outline area.
func (g Region) Area() float64 { return g.Outline.Area() }

// RowAt returns the index of the row whose vertical span contains y, or the
// nearest row when y is outside all rows. It returns -1 for a row-less
// region.
func (g Region) RowAt(y float64) int {
	if len(g.Rows) == 0 {
		return -1
	}
	best, bestD := 0, math.Inf(1)
	for i, r := range g.Rows {
		if y >= r.Y && y < r.Y+r.Height {
			return i
		}
		d := math.Min(math.Abs(y-r.Y), math.Abs(y-(r.Y+r.Height)))
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// RowCapacity returns the summed capacity of all rows.
func (g Region) RowCapacity() float64 {
	var c float64
	for _, r := range g.Rows {
		c += r.Capacity()
	}
	return c
}
