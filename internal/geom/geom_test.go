package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -5}
	if got := p.Add(q); got != (Point{4, -3}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 7}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestPointDistances(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if d := p.Dist(q); !almostEq(d, 5) {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := p.Dist2(q); !almostEq(d, 25) {
		t.Errorf("Dist2 = %v, want 25", d)
	}
	if d := p.Manhattan(q); !almostEq(d, 7) {
		t.Errorf("Manhattan = %v, want 7", d)
	}
	if n := q.Norm(); !almostEq(n, 5) {
		t.Errorf("Norm = %v, want 5", n)
	}
}

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	if r.Lo != (Point{1, 2}) || r.Hi != (Point{5, 7}) {
		t.Errorf("NewRect = %v", r)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectWH(1, 2, 3, 4)
	if !almostEq(r.W(), 3) || !almostEq(r.H(), 4) {
		t.Errorf("W/H = %v/%v", r.W(), r.H())
	}
	if !almostEq(r.Area(), 12) {
		t.Errorf("Area = %v", r.Area())
	}
	if !almostEq(r.HalfPerimeter(), 7) {
		t.Errorf("HalfPerimeter = %v", r.HalfPerimeter())
	}
	if c := r.Center(); !almostEq(c.X, 2.5) || !almostEq(c.Y, 4) {
		t.Errorf("Center = %v", c)
	}
	if r.Empty() {
		t.Error("non-degenerate rect reported empty")
	}
}

func TestRectCenteredAt(t *testing.T) {
	r := RectCenteredAt(Point{5, 5}, 2, 4)
	if r.Lo != (Point{4, 3}) || r.Hi != (Point{6, 7}) {
		t.Errorf("RectCenteredAt = %v", r)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},
		{Point{10, 10}, true},
		{Point{-0.1, 5}, false},
		{Point{5, 10.1}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !r.ContainsRect(NewRect(1, 1, 9, 9)) {
		t.Error("ContainsRect inner failed")
	}
	if r.ContainsRect(NewRect(1, 1, 11, 9)) {
		t.Error("ContainsRect overflow should fail")
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	b := NewRect(2, 2, 6, 6)
	got := a.Intersect(b)
	if got.Lo != (Point{2, 2}) || got.Hi != (Point{4, 4}) {
		t.Errorf("Intersect = %v", got)
	}
	if !almostEq(a.Overlap(b), 4) {
		t.Errorf("Overlap = %v", a.Overlap(b))
	}
	u := a.Union(b)
	if u.Lo != (Point{0, 0}) || u.Hi != (Point{6, 6}) {
		t.Errorf("Union = %v", u)
	}
	c := NewRect(10, 10, 12, 12)
	if !a.Intersect(c).Empty() {
		t.Error("disjoint Intersect not empty")
	}
	if a.Overlap(c) != 0 {
		t.Error("disjoint Overlap not zero")
	}
}

func TestRectUnionEmptyIdentity(t *testing.T) {
	var zero Rect
	a := NewRect(1, 1, 2, 3)
	if got := zero.Union(a); got != a {
		t.Errorf("empty.Union(a) = %v", got)
	}
	if got := a.Union(zero); got != a {
		t.Errorf("a.Union(empty) = %v", got)
	}
}

func TestRectExpand(t *testing.T) {
	r := NewRect(2, 2, 4, 4).Expand(1)
	if r.Lo != (Point{1, 1}) || r.Hi != (Point{5, 5}) {
		t.Errorf("Expand = %v", r)
	}
}

func TestClampPoint(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if got := r.ClampPoint(Point{-5, 20}); got != (Point{0, 10}) {
		t.Errorf("ClampPoint = %v", got)
	}
	if got := r.ClampPoint(Point{5, 5}); got != (Point{5, 5}) {
		t.Errorf("interior point moved: %v", got)
	}
}

func TestClampCenterKeepsRectInside(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	c := r.ClampCenter(Point{0, 0}, 4, 2)
	if c != (Point{2, 1}) {
		t.Errorf("ClampCenter = %v", c)
	}
	// Oversized rect is centered.
	c = r.ClampCenter(Point{9, 9}, 20, 2)
	if !almostEq(c.X, 5) {
		t.Errorf("oversized ClampCenter.X = %v", c.X)
	}
}

func TestClampCenterProperty(t *testing.T) {
	region := NewRect(0, 0, 100, 50)
	f := func(x, y float64, wq, hq uint8) bool {
		w := float64(wq%100) + 0.5
		h := float64(hq%50) + 0.5
		c := region.ClampCenter(Point{x, y}, w, h)
		if w <= region.W() && h <= region.H() {
			return region.ContainsRect(RectCenteredAt(c, w, h).Expand(-1e-9))
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectCommutativeAndBounded(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint16) bool {
		a := RectWH(float64(ax%100), float64(ay%100), float64(aw%50), float64(ah%50))
		b := RectWH(float64(bx%100), float64(by%100), float64(bw%50), float64(bh%50))
		ov1, ov2 := a.Overlap(b), b.Overlap(a)
		return almostEq(ov1, ov2) && ov1 <= a.Area()+1e-9 && ov1 <= b.Area()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBBox(t *testing.T) {
	var b BBox
	if b.Count() != 0 {
		t.Fatal("fresh BBox count")
	}
	b.Add(Point{1, 1})
	b.Add(Point{-2, 3})
	b.Add(Point{0, -4})
	r := b.Rect()
	if r.Lo != (Point{-2, -4}) || r.Hi != (Point{1, 3}) {
		t.Errorf("BBox = %v", r)
	}
	if b.Count() != 3 {
		t.Errorf("Count = %d", b.Count())
	}
}

func TestBBoxSinglePointDegenerate(t *testing.T) {
	var b BBox
	b.Add(Point{5, 5})
	if hp := b.Rect().HalfPerimeter(); hp != 0 {
		t.Errorf("single-point HPWL = %v", hp)
	}
}

func TestNewRegion(t *testing.T) {
	g := NewRegion(10, 2, 50)
	if len(g.Rows) != 10 {
		t.Fatalf("rows = %d", len(g.Rows))
	}
	if !almostEq(g.W(), 50) || !almostEq(g.H(), 20) {
		t.Errorf("W/H = %v/%v", g.W(), g.H())
	}
	if !almostEq(g.Area(), 1000) {
		t.Errorf("Area = %v", g.Area())
	}
	if !almostEq(g.RowCapacity(), 500) {
		t.Errorf("RowCapacity = %v", g.RowCapacity())
	}
	if r := g.Rows[3]; !almostEq(r.Y, 6) || !almostEq(r.Capacity(), 50) {
		t.Errorf("row 3 = %+v", r)
	}
	if rr := g.Rows[3].Rect(); !almostEq(rr.Area(), 100) {
		t.Errorf("row rect = %v", rr)
	}
}

func TestRowAt(t *testing.T) {
	g := NewRegion(5, 2, 10)
	if i := g.RowAt(3); i != 1 {
		t.Errorf("RowAt(3) = %d", i)
	}
	if i := g.RowAt(-100); i != 0 {
		t.Errorf("RowAt(-100) = %d", i)
	}
	if i := g.RowAt(100); i != 4 {
		t.Errorf("RowAt(100) = %d", i)
	}
	empty := Region{Outline: NewRect(0, 0, 1, 1)}
	if i := empty.RowAt(0); i != -1 {
		t.Errorf("row-less RowAt = %d", i)
	}
}
