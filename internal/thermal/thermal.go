// Package thermal implements the heat-map substrate of the paper's
// heat-driven placement (§5): per-cell power is deposited on a grid, a
// steady-state diffusion solve (Poisson with fixed-temperature boundary,
// Gauss-Seidel/SOR) produces the temperature map, and hot bins convert to
// extra density demand so the placer moves cells out of hot spots.
package thermal

import (
	"math"

	"repro/internal/density"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// Map is a temperature field over a bin grid.
type Map struct {
	Region geom.Rect
	NX, NY int
	BinW   float64
	BinH   float64
	// Power is the deposited power per bin.
	Power []float64
	// T is the solved temperature rise per bin (boundary held at 0).
	T []float64
}

// Solve builds the power map of the current placement and solves the
// steady-state heat equation ∇²T = −P/k with T=0 at the region boundary.
// conductivity defaults to 1 (temperatures are relative anyway).
func Solve(nl *netlist.Netlist, nx, ny int, conductivity float64) *Map {
	if conductivity <= 0 {
		conductivity = 1
	}
	region := nl.Region.Outline
	m := &Map{
		Region: region,
		NX:     nx, NY: ny,
		BinW:  region.W() / float64(nx),
		BinH:  region.H() / float64(ny),
		Power: make([]float64, nx*ny),
		T:     make([]float64, nx*ny),
	}
	// Deposit power by footprint overlap.
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Power <= 0 || c.Area() <= 0 {
			continue
		}
		r := c.Rect()
		ix0, iy0 := m.binAt(r.Lo)
		ix1, iy1 := m.binAt(r.Hi)
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				ov := m.binRect(ix, iy).Overlap(r)
				if ov > 0 {
					m.Power[iy*nx+ix] += c.Power * ov / r.Area()
				}
			}
		}
	}
	m.solveSOR(conductivity)
	return m
}

// solveSOR runs successive over-relaxation on the 5-point Laplacian with
// Dirichlet zero boundary (chip edges at ambient).
func (m *Map) solveSOR(k float64) {
	hx2 := m.BinW * m.BinW
	hy2 := m.BinH * m.BinH
	denom := 2/hx2 + 2/hy2
	omega := 1.8
	at := func(ix, iy int) float64 {
		if ix < 0 || ix >= m.NX || iy < 0 || iy >= m.NY {
			return 0 // boundary: ambient
		}
		return m.T[iy*m.NX+ix]
	}
	const maxIter = 2000
	for iter := 0; iter < maxIter; iter++ {
		var residual, scale float64
		for iy := 0; iy < m.NY; iy++ {
			for ix := 0; ix < m.NX; ix++ {
				i := iy*m.NX + ix
				rhs := m.Power[i] / k
				gs := (rhs + (at(ix-1, iy)+at(ix+1, iy))/hx2 +
					(at(ix, iy-1)+at(ix, iy+1))/hy2) / denom
				delta := gs - m.T[i]
				m.T[i] += omega * delta
				residual += math.Abs(delta)
				scale += math.Abs(m.T[i])
			}
		}
		if scale == 0 || residual <= 1e-8*scale {
			return
		}
	}
}

func (m *Map) binAt(p geom.Point) (int, int) {
	ix := int((p.X - m.Region.Lo.X) / m.BinW)
	iy := int((p.Y - m.Region.Lo.Y) / m.BinH)
	return clampInt(ix, 0, m.NX-1), clampInt(iy, 0, m.NY-1)
}

func (m *Map) binRect(ix, iy int) geom.Rect {
	return geom.RectWH(
		m.Region.Lo.X+float64(ix)*m.BinW,
		m.Region.Lo.Y+float64(iy)*m.BinH,
		m.BinW, m.BinH,
	)
}

// Peak returns the maximum temperature rise.
func (m *Map) Peak() float64 {
	var p float64
	for _, t := range m.T {
		if t > p {
			p = t
		}
	}
	return p
}

// Mean returns the average temperature rise.
func (m *Map) Mean() float64 {
	var s float64
	for _, t := range m.T {
		s += t
	}
	return s / float64(len(m.T))
}

// ExtraDemand converts above-average temperature into additional density
// demand on the placement grid: hot bins read as over-dense so the force
// field moves cells (and their power) away — the paper's hot-spot
// avoidance.
func (m *Map) ExtraDemand(g *density.Grid, weight float64) []float64 {
	if weight <= 0 {
		weight = 1
	}
	mean := m.Mean()
	peak := m.Peak()
	out := make([]float64, g.NX*g.NY)
	if peak <= mean {
		return out
	}
	binArea := g.BinW * g.BinH
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			c := g.BinCenter(ix, iy)
			mx := clampInt(int((c.X-m.Region.Lo.X)/m.BinW), 0, m.NX-1)
			my := clampInt(int((c.Y-m.Region.Lo.Y)/m.BinH), 0, m.NY-1)
			t := m.T[my*m.NX+mx]
			if t > mean {
				out[iy*g.NX+ix] = weight * (t - mean) / (peak - mean) * binArea
			}
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
