package thermal

import (
	"math"
	"testing"

	"repro/internal/density"
	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
)

// hotCorner builds a design with all power in one corner cell.
func hotCorner(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("hot", geom.Region{Outline: geom.NewRect(0, 0, 16, 16)})
	b.AddCell("hot", 2, 2)
	b.AddCell("cold", 2, 2)
	b.SetCellPower("hot", 100)
	b.SetCellPower("cold", 0.01)
	b.Connect("n", "hot", "cold")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[0].Pos = geom.Point{X: 3, Y: 3}
	nl.Cells[1].Pos = geom.Point{X: 13, Y: 13}
	return nl
}

func TestSolvePowerConservation(t *testing.T) {
	nl := hotCorner(t)
	m := Solve(nl, 16, 16, 1)
	var total float64
	for _, p := range m.Power {
		total += p
	}
	if math.Abs(total-100.01) > 0.01 {
		t.Errorf("total deposited power = %v", total)
	}
}

func TestTemperaturePeaksAtHotSpot(t *testing.T) {
	nl := hotCorner(t)
	m := Solve(nl, 16, 16, 1)
	peak := m.Peak()
	if peak <= 0 {
		t.Fatal("no temperature rise")
	}
	// The hottest bin should be near the hot cell (3,3) -> bin (3,3).
	var hx, hy int
	var hot float64
	for iy := 0; iy < 16; iy++ {
		for ix := 0; ix < 16; ix++ {
			if tt := m.T[iy*16+ix]; tt > hot {
				hot, hx, hy = tt, ix, iy
			}
		}
	}
	if hx > 5 || hy > 5 {
		t.Errorf("hot spot at bin (%d,%d), expected near (3,3)", hx, hy)
	}
	// Far corner is much cooler.
	far := m.T[14*16+14]
	if far > hot/3 {
		t.Errorf("far corner %v not much cooler than peak %v", far, hot)
	}
}

func TestTemperatureIsNonNegativeAndSmooth(t *testing.T) {
	nl := hotCorner(t)
	m := Solve(nl, 16, 16, 1)
	for i, tt := range m.T {
		if tt < -1e-12 {
			t.Fatalf("negative temperature %v at %d", tt, i)
		}
	}
	// Laplacian check at an interior source-free bin: T ≈ mean of
	// neighbors.
	ix, iy := 10, 5
	i := iy*16 + ix
	if m.Power[i] != 0 {
		t.Skip("chosen probe bin has power")
	}
	nb := (m.T[i-1] + m.T[i+1] + m.T[i-16] + m.T[i+16]) / 4
	if math.Abs(m.T[i]-nb) > 1e-6*(1+m.Peak()) {
		t.Errorf("harmonicity violated: T=%v, neighbor mean=%v", m.T[i], nb)
	}
}

func TestHigherConductivityLowersPeak(t *testing.T) {
	nl := hotCorner(t)
	lo := Solve(nl, 16, 16, 1).Peak()
	hi := Solve(nl, 16, 16, 10).Peak()
	if hi >= lo {
		t.Errorf("conductivity 10 peak %v not below conductivity 1 peak %v", hi, lo)
	}
}

func TestExtraDemandMarksHotBins(t *testing.T) {
	nl := hotCorner(t)
	m := Solve(nl, 16, 16, 1)
	g := density.NewGrid(nl.Region.Outline, 16, 16)
	extra := m.ExtraDemand(g, 1)
	// The hot corner must receive demand, the cold far corner none.
	if extra[3*16+3] <= 0 {
		t.Error("hot bin got no extra demand")
	}
	if extra[14*16+14] > extra[3*16+3]/2 {
		t.Error("cold bin got comparable extra demand")
	}
}

func TestHeatDrivenPlacementSpreadsPower(t *testing.T) {
	// Heat-driven placement should lower the peak temperature vs plain.
	run := func(driven bool) float64 {
		nl := netgen.Generate(netgen.Config{Name: "hd", Cells: 250, Nets: 330, Rows: 8, Seed: 91})
		// Make a hot clique: cells 0..19 dissipate heavily and are tightly
		// connected so the plain placer piles them together.
		for i := 0; i < 20; i++ {
			nl.Cells[i].Power = 50
		}
		cfg := place.Config{MaxIter: 60}
		if driven {
			cfg.ExtraDemand = func(g *density.Grid) []float64 {
				m := Solve(nl, g.NX, g.NY, 1)
				return m.ExtraDemand(g, 2)
			}
		}
		if _, err := place.Global(nl, cfg); err != nil {
			t.Fatal(err)
		}
		return Solve(nl, 32, 8, 1).Peak()
	}
	plain := run(false)
	driven := run(true)
	if driven > plain*1.1 {
		t.Errorf("heat-driven peak %v much worse than plain %v", driven, plain)
	}
}
