package fft

import (
	"math/rand"
	"testing"

	"repro/internal/par"
)

func randField(rng *rand.Rand, n int) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = rng.NormFloat64()
	}
	return f
}

// withThreshold runs f with the parallel cutover lowered so small test grids
// exercise the multi-goroutine paths.
func withThreshold(t *testing.T, n int, f func()) {
	t.Helper()
	old := par.Threshold
	par.Threshold = n
	defer func() { par.Threshold = old }()
	f()
}

func TestPlanTransformMatchesSerialForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dim := range [][2]int{{8, 8}, {16, 4}, {4, 32}} {
		w, h := dim[0], dim[1]
		data := make([]complex128, w*h)
		for i := range data {
			data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		serial := append([]complex128(nil), data...)
		NewPlan(w, h).Forward2D(serial)

		parallel := append([]complex128(nil), data...)
		withThreshold(t, 1, func() {
			NewPlan(w, h).Forward2D(parallel)
		})
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("%dx%d: parallel Forward2D differs at %d: %v vs %v",
					w, h, i, parallel[i], serial[i])
			}
		}
	}
}

func TestPlanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	w, h := 16, 8
	data := make([]complex128, w*h)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	orig := append([]complex128(nil), data...)
	p := NewPlan(w, h)
	p.Forward2D(data)
	p.Inverse2D(data)
	for i := range data {
		if d := data[i] - orig[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, data[i], orig[i])
		}
	}
}

func TestPlanConvolveMatchesConvolve2D(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w, h := 16, 16
	src := randField(rng, w*h)
	kernel := randField(rng, w*h)

	want := make([]float64, w*h)
	Convolve2D(want, src, kernel, w, h)

	got := make([]float64, w*h)
	p := NewPlan(w, h)
	p.Convolve(got, src, kernel)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("Plan.Convolve differs at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestConvolveSpectraMatchesConvolve(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	w, h := 16, 8
	n := w * h
	src := randField(rng, n)
	k1 := randField(rng, n)
	k2 := randField(rng, n)

	p := NewPlan(w, h)
	want1 := make([]float64, n)
	want2 := make([]float64, n)
	p.Convolve(want1, src, k1)
	p.Convolve(want2, src, k2)

	spec1 := make([]complex128, n)
	spec2 := make([]complex128, n)
	p.Spectrum(spec1, k1)
	p.Spectrum(spec2, k2)
	got1 := make([]float64, n)
	got2 := make([]float64, n)
	p.ConvolveSpectra([][]float64{got1, got2}, src, [][]complex128{spec1, spec2})

	for i := 0; i < n; i++ {
		if d := got1[i] - want1[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("spectra path k1 differs at %d: %g vs %g", i, got1[i], want1[i])
		}
		if d := got2[i] - want2[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("spectra path k2 differs at %d: %g vs %g", i, got2[i], want2[i])
		}
	}
}

func TestConvolve2DParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w, h := 32, 16
	src := randField(rng, w*h)
	kernel := randField(rng, w*h)

	serial := make([]float64, w*h)
	Convolve2D(serial, src, kernel, w, h)

	parallel := make([]float64, w*h)
	withThreshold(t, 1, func() {
		Convolve2D(parallel, src, kernel, w, h)
	})
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel Convolve2D differs at %d: %g vs %g", i, parallel[i], serial[i])
		}
	}
}

func TestPlanDimensionPanics(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	assertPanic("NewPlan", func() { NewPlan(6, 8) })
	p := NewPlan(8, 8)
	assertPanic("Forward2D", func() { p.Forward2D(make([]complex128, 7)) })
	assertPanic("Spectrum", func() { p.Spectrum(make([]complex128, 64), make([]float64, 10)) })
	assertPanic("Convolve", func() { p.Convolve(make([]float64, 64), make([]float64, 64), nil) })
	assertPanic("ConvolveSpectra", func() {
		p.ConvolveSpectra([][]float64{make([]float64, 64)}, make([]float64, 64),
			[][]complex128{make([]complex128, 3)})
	})
}

func benchmarkGrids(n int) (src, kernel, dst []float64) {
	rng := rand.New(rand.NewSource(42))
	return randField(rng, n), randField(rng, n), make([]float64, n)
}

func BenchmarkConvolve2D(b *testing.B) {
	const w, h = 128, 128
	src, kernel, dst := benchmarkGrids(w * h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Convolve2D(dst, src, kernel, w, h)
	}
}

func BenchmarkPlanConvolveSpectra(b *testing.B) {
	const w, h = 128, 128
	src, kernel, dst := benchmarkGrids(w * h)
	p := NewPlan(w, h)
	spec := make([]complex128, w*h)
	p.Spectrum(spec, kernel)
	dsts, specs := [][]float64{dst}, [][]complex128{spec}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ConvolveSpectra(dsts, src, specs)
	}
}
