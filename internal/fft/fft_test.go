package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestForwardMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 32} {
		a := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(a)
		got := append([]complex128(nil), a...)
		Forward(got)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("n=%d: FFT[%d] = %v, DFT = %v", n, i, got[i], want[i])
			}
		}
	}
}

func naiveDFT(a []complex128) []complex128 {
	n := len(a)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			s += a[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]complex128, 64)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	got := append([]complex128(nil), a...)
	Forward(got)
	Inverse(got)
	for i := range a {
		if cmplx.Abs(got[i]-a[i]) > 1e-10 {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, got[i], a[i])
		}
	}
}

func TestNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Forward(make([]complex128, 6))
}

func TestGridRoundTrip2D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGrid(8, 16)
	orig := make([]complex128, len(g.Data))
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
		orig[i] = g.Data[i]
	}
	g.Forward2D()
	g.Inverse2D()
	for i := range orig {
		if cmplx.Abs(g.Data[i]-orig[i]) > 1e-10 {
			t.Fatalf("2D roundtrip[%d] = %v, want %v", i, g.Data[i], orig[i])
		}
	}
}

func TestGridAtSet(t *testing.T) {
	g := NewGrid(4, 4)
	g.Set(1, 2, 5)
	if g.At(1, 2) != 5 {
		t.Error("At/Set broken")
	}
	if g.Data[2*4+1] != 5 {
		t.Error("row-major layout broken")
	}
}

func TestNewGridNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGrid(5, 4)
}

func TestConvolve2DImpulse(t *testing.T) {
	// Convolving with a unit impulse at (0,0) is the identity.
	const w, h = 8, 8
	src := make([]float64, w*h)
	kernel := make([]float64, w*h)
	rng := rand.New(rand.NewSource(4))
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	kernel[0] = 1
	dst := make([]float64, w*h)
	Convolve2D(dst, src, kernel, w, h)
	for i := range src {
		if math.Abs(dst[i]-src[i]) > 1e-10 {
			t.Fatalf("impulse conv[%d] = %v, want %v", i, dst[i], src[i])
		}
	}
}

func TestConvolve2DShift(t *testing.T) {
	// An impulse kernel at (1,0) cyclically shifts the source right by one.
	const w, h = 4, 4
	src := make([]float64, w*h)
	src[0*w+0] = 1
	src[2*w+3] = 2
	kernel := make([]float64, w*h)
	kernel[0*w+1] = 1
	dst := make([]float64, w*h)
	Convolve2D(dst, src, kernel, w, h)
	if math.Abs(dst[0*w+1]-1) > 1e-10 {
		t.Errorf("shifted value at (1,0) = %v", dst[0*w+1])
	}
	if math.Abs(dst[2*w+0]-2) > 1e-10 { // wraps around
		t.Errorf("wrapped value at (0,2) = %v", dst[2*w+0])
	}
}

func TestConvolve2DMatchesNaive(t *testing.T) {
	const w, h = 8, 4
	rng := rand.New(rand.NewSource(5))
	src := make([]float64, w*h)
	kernel := make([]float64, w*h)
	for i := range src {
		src[i] = rng.NormFloat64()
		kernel[i] = rng.NormFloat64()
	}
	dst := make([]float64, w*h)
	Convolve2D(dst, src, kernel, w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			want := 0.0
			for ky := 0; ky < h; ky++ {
				for kx := 0; kx < w; kx++ {
					sx := ((x-kx)%w + w) % w
					sy := ((y-ky)%h + h) % h
					want += src[sy*w+sx] * kernel[ky*w+kx]
				}
			}
			if math.Abs(dst[y*w+x]-want) > 1e-9 {
				t.Fatalf("conv(%d,%d) = %v, want %v", x, y, dst[y*w+x], want)
			}
		}
	}
}

func TestConvolveDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Convolve2D(make([]float64, 4), make([]float64, 8), make([]float64, 8), 4, 2)
}

func TestParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := make([]complex128, 128)
	var timeEnergy float64
	for i := range a {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		timeEnergy += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
	}
	Forward(a)
	var freqEnergy float64
	for i := range a {
		freqEnergy += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
	}
	freqEnergy /= float64(len(a))
	if math.Abs(timeEnergy-freqEnergy) > 1e-8*timeEnergy {
		t.Errorf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}
