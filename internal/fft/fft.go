// Package fft provides the radix-2 fast Fourier transforms used to evaluate
// the Green's-function convolution of the paper's equation (9) on a grid in
// O(B log B) instead of O(B²).
package fft

import (
	"fmt"
	"math/bits"

	"repro/internal/obsv"
)

// convolveSeconds times Convolve2D calls; nil (free) until EnableMetrics.
var convolveSeconds *obsv.Histogram

// EnableMetrics registers transform timing in r:
//
//	fft_convolve_seconds — wall time of each 2-D convolution
//
// Passing nil detaches the package from any registry.
func EnableMetrics(r *obsv.Registry) {
	if r == nil {
		convolveSeconds = nil
		return
	}
	convolveSeconds = r.Histogram("fft_convolve_seconds",
		"2-D FFT convolution wall time in seconds", obsv.SecondsBuckets)
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Forward performs an in-place forward FFT of a. len(a) must be a power of
// two.
func Forward(a []complex128) { tableFor(len(a)).transform(a, false) }

// Inverse performs an in-place inverse FFT of a, including the 1/n scaling.
// len(a) must be a power of two.
func Inverse(a []complex128) {
	tableFor(len(a)).transform(a, true)
	scale := complex(1/float64(len(a)), 0)
	for i := range a {
		a[i] *= scale
	}
}

// Grid is a 2-D complex field with power-of-two dimensions, stored row-major.
type Grid struct {
	W, H int
	Data []complex128
}

// NewGrid allocates a zeroed W×H grid. Both dimensions must be powers of
// two.
func NewGrid(w, h int) *Grid {
	if !IsPow2(w) || !IsPow2(h) {
		panic(fmt.Sprintf("fft: grid %dx%d not power-of-two", w, h))
	}
	return &Grid{W: w, H: h, Data: make([]complex128, w*h)}
}

// At returns the value at column x, row y.
func (g *Grid) At(x, y int) complex128 { return g.Data[y*g.W+x] }

// Set stores v at column x, row y.
func (g *Grid) Set(x, y int, v complex128) { g.Data[y*g.W+x] = v }

// Forward2D performs an in-place forward 2-D FFT (rows then columns).
func (g *Grid) Forward2D() { NewPlan(g.W, g.H).Forward2D(g.Data) }

// Inverse2D performs an in-place inverse 2-D FFT with 1/(W·H) scaling.
func (g *Grid) Inverse2D() { NewPlan(g.W, g.H).Inverse2D(g.Data) }

// Convolve2D computes the cyclic 2-D convolution of src with kernel and
// writes the real part into dst (row-major, w*h). All three must describe
// the same power-of-two dimensions. src and kernel are real-valued inputs.
//
// Callers wanting a *linear* convolution must zero-pad to at least double
// size themselves; internal/density does so. Iterative callers that reuse
// the same kernel should hold a Plan and cache its Spectrum instead (one
// forward transform per call instead of two).
func Convolve2D(dst, src, kernel []float64, w, h int) {
	p := pooledPlan(w, h)
	p.Convolve(dst, src, kernel)
	putPooledPlan(p)
}
