package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/par"
)

func randomReal(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*rng.Float64() - 1
	}
	return v
}

// halfOf extracts the non-redundant (W/2+1)-column half of a full W×H
// complex spectrum, the layout RealPlan stores.
func halfOf(full []complex128, w, h int) []complex128 {
	hw := w/2 + 1
	half := make([]complex128, hw*h)
	for y := 0; y < h; y++ {
		copy(half[y*hw:(y+1)*hw], full[y*w:y*w+hw])
	}
	return half
}

var realPlanSizes = [][2]int{
	{1, 1}, {2, 1}, {1, 2}, {2, 2}, {4, 2}, {2, 8}, {8, 8},
	{16, 4}, {1, 16}, {64, 1}, {32, 16}, {64, 64},
}

// TestRealSpectrumMatchesComplex pins the half-spectrum against the
// complex plan's full spectrum of the same real input, within 1e-12.
func TestRealSpectrumMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, sz := range realPlanSizes {
		w, h := sz[0], sz[1]
		src := randomReal(rng, w*h)

		full := make([]complex128, w*h)
		NewPlan(w, h).Spectrum(full, src)
		want := halfOf(full, w, h)

		rp := NewRealPlan(w, h)
		got := make([]complex128, rp.SpecLen())
		rp.Spectrum(got, src)

		for i := range want {
			if d := cmplx.Abs(got[i] - want[i]); d > 1e-12*float64(1+w*h) {
				t.Fatalf("%dx%d: spectrum entry %d off by %g", w, h, i, d)
			}
		}
	}
}

// TestRealInverseRoundTrip pins IRFFT(RFFT(x)) == x within 1e-12 and
// checks Inverse leaves the spectrum untouched.
func TestRealInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, sz := range realPlanSizes {
		w, h := sz[0], sz[1]
		src := randomReal(rng, w*h)

		rp := NewRealPlan(w, h)
		spec := make([]complex128, rp.SpecLen())
		rp.Spectrum(spec, src)
		snap := append([]complex128(nil), spec...)

		out := make([]float64, w*h)
		rp.Inverse(out, spec)
		for i := range src {
			if d := math.Abs(out[i] - src[i]); d > 1e-12*float64(1+w*h) {
				t.Fatalf("%dx%d: round trip drifted %g at %d", w, h, d, i)
			}
		}
		for i := range spec {
			if spec[i] != snap[i] {
				t.Fatalf("%dx%d: Inverse mutated the input spectrum at %d", w, h, i)
			}
		}
	}
}

// TestRealConvolveSpectraMatchesComplex pins the half-spectrum convolution
// pipeline against the complex plan's: same src, same two kernels, both
// answers within 1e-12. This is the exact substitution the density field
// solver makes.
func TestRealConvolveSpectraMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, sz := range realPlanSizes {
		w, h := sz[0], sz[1]
		src := randomReal(rng, w*h)
		k1 := randomReal(rng, w*h)
		k2 := randomReal(rng, w*h)

		cp := NewPlan(w, h)
		fullSpecs := [][]complex128{make([]complex128, w*h), make([]complex128, w*h)}
		cp.Spectrum(fullSpecs[0], k1)
		cp.Spectrum(fullSpecs[1], k2)
		want := [][]float64{make([]float64, w*h), make([]float64, w*h)}
		cp.ConvolveSpectra(want, src, fullSpecs)

		rp := NewRealPlan(w, h)
		halfSpecs := [][]complex128{make([]complex128, rp.SpecLen()), make([]complex128, rp.SpecLen())}
		rp.Spectrum(halfSpecs[0], k1)
		rp.Spectrum(halfSpecs[1], k2)
		got := [][]float64{make([]float64, w*h), make([]float64, w*h)}
		rp.ConvolveSpectra(got, src, halfSpecs)

		for s := range want {
			for i := range want[s] {
				if d := math.Abs(got[s][i] - want[s][i]); d > 1e-12*float64(1+w*h) {
					t.Fatalf("%dx%d: kernel %d entry %d off by %g", w, h, s, i, d)
				}
			}
		}
	}
}

// TestRealConvolveMatchesComplex pins the one-shot Convolve paths against
// each other.
func TestRealConvolveMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for _, sz := range realPlanSizes {
		w, h := sz[0], sz[1]
		src := randomReal(rng, w*h)
		kernel := randomReal(rng, w*h)

		want := make([]float64, w*h)
		NewPlan(w, h).Convolve(want, src, kernel)
		got := make([]float64, w*h)
		NewRealPlan(w, h).Convolve(got, src, kernel)

		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > 1e-12*float64(1+w*h) {
				t.Fatalf("%dx%d: Convolve paths disagree at %d by %g", w, h, i, d)
			}
		}
	}
}

// TestRealPlanParallelIsBitIdentical forces the parallel fan-out on a grid
// large enough to split and compares against a serial run of the same
// kernels (par.Threshold trick, mirroring the density reuse tests).
func TestRealPlanParallelIsBitIdentical(t *testing.T) {
	const w, h = 64, 32
	rng := rand.New(rand.NewSource(55))
	src := randomReal(rng, w*h)

	run := func() ([]complex128, []float64) {
		rp := NewRealPlan(w, h)
		spec := make([]complex128, rp.SpecLen())
		rp.Spectrum(spec, src)
		out := make([]float64, w*h)
		rp.Inverse(out, spec)
		return spec, out
	}

	old := par.Threshold
	par.Threshold = w * h * 2 // force serial
	serialSpec, serialOut := run()
	par.Threshold = 1 // force the fan-out
	parSpec, parOut := run()
	par.Threshold = old

	for i := range serialSpec {
		if serialSpec[i] != parSpec[i] {
			t.Fatalf("spectrum entry %d differs between serial and parallel runs", i)
		}
	}
	for i := range serialOut {
		if math.Float64bits(serialOut[i]) != math.Float64bits(parOut[i]) {
			t.Fatalf("inverse entry %d differs between serial and parallel runs", i)
		}
	}
}
