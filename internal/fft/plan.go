package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"

	"repro/internal/par"
)

// radix2 holds the precomputed tables for one transform length: the
// bit-reversal permutation and the per-stage twiddle factors (forward and
// inverse). Tables are immutable after construction and shared between all
// plans of the same length through tableFor.
type radix2 struct {
	n   int
	rev []int32
	// Twiddles packed stage by stage: the stage with half-size h occupies
	// [h-1 : 2h-1], so the whole table is n-1 entries per direction.
	twF []complex128
	twI []complex128
}

var tableCache sync.Map // int -> *radix2

func tableFor(n int) *radix2 {
	if t, ok := tableCache.Load(n); ok {
		return t.(*radix2)
	}
	t, _ := tableCache.LoadOrStore(n, newRadix2(n))
	return t.(*radix2)
}

func newRadix2(n int) *radix2 {
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	t := &radix2{n: n, rev: make([]int32, n)}
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 1; i < n; i++ {
		t.rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	if n >= 2 {
		t.twF = make([]complex128, n-1)
		t.twI = make([]complex128, n-1)
		for size := 2; size <= n; size <<= 1 {
			half := size / 2
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(size)))
				t.twF[half-1+k] = w
				t.twI[half-1+k] = cmplx.Conj(w)
			}
		}
	}
	return t
}

// transform runs the in-place Cooley-Tukey butterflies on a (len n) using
// the precomputed tables. No scaling is applied in either direction.
func (t *radix2) transform(a []complex128, inverse bool) {
	if len(a) != t.n {
		panic(fmt.Sprintf("fft: length %d does not match table %d", len(a), t.n))
	}
	for i, jj := range t.rev {
		if j := int(jj); i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	tw := t.twF
	if inverse {
		tw = t.twI
	}
	n := t.n
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		ws := tw[half-1 : size-1]
		for start := 0; start < n; start += size {
			lo, hi := a[start:start+half], a[start+half:start+size]
			for k := range lo {
				u := lo[k]
				v := hi[k] * ws[k]
				lo[k] = u + v
				hi[k] = u - v
			}
		}
	}
}

// Plan caches everything a W×H 2-D transform pipeline needs between calls:
// the per-axis twiddle and bit-reversal tables and two owned scratch grids
// for convolution, so the hot loop neither allocates nor recomputes
// twiddles. Row and column passes fan out across GOMAXPROCS goroutines once
// the grid reaches par.Threshold elements; the result is identical to the
// serial pass (each row/column is transformed by exactly one goroutine with
// the same sequential kernel).
//
// A Plan's scratch is not safe for concurrent use; share tables, not plans.
type Plan struct {
	W, H int
	row  *radix2
	col  *radix2
	a, b []complex128 // lazily allocated W·H convolution scratch
}

// NewPlan prepares a plan for W×H grids (both powers of two). Table
// construction is amortized globally, so NewPlan is cheap for sizes seen
// before; the scratch grids are allocated on first convolution.
func NewPlan(w, h int) *Plan {
	if !IsPow2(w) || !IsPow2(h) {
		panic(fmt.Sprintf("fft: plan %dx%d not power-of-two", w, h))
	}
	return &Plan{W: w, H: h, row: tableFor(w), col: tableFor(h)}
}

// Forward2D performs the in-place forward 2-D FFT of data (row-major W×H).
func (p *Plan) Forward2D(data []complex128) { p.transform2D(data, false) }

// Inverse2D performs the in-place inverse 2-D FFT of data, including the
// 1/(W·H) scaling.
func (p *Plan) Inverse2D(data []complex128) {
	p.transform2D(data, true)
	scale := complex(1/float64(p.W*p.H), 0)
	for i := range data {
		data[i] *= scale
	}
}

func (p *Plan) transform2D(data []complex128, inverse bool) {
	w, h := p.W, p.H
	if len(data) != w*h {
		panic("fft: transform2D dimension mismatch")
	}
	workers := par.Workers(w * h)
	// Rows.
	par.Run(workers, h, func(_, lo, hi int) {
		for y := lo; y < hi; y++ {
			p.row.transform(data[y*w:(y+1)*w], inverse)
		}
	})
	// Columns, gathered through a per-worker scratch vector.
	par.Run(workers, w, func(_, lo, hi int) {
		//lint:ignore hotalloc per-worker column scratch: one make per fork-join worker, not per element, and sharing it would race
		col := make([]complex128, h)
		for x := lo; x < hi; x++ {
			for y := 0; y < h; y++ {
				col[y] = data[y*w+x]
			}
			p.col.transform(col, inverse)
			for y := 0; y < h; y++ {
				data[y*w+x] = col[y]
			}
		}
	})
}

// scratch returns the plan's two owned W·H complex grids.
func (p *Plan) scratch() (a, b []complex128) {
	if p.a == nil {
		p.a = make([]complex128, p.W*p.H)
		p.b = make([]complex128, p.W*p.H)
	}
	return p.a, p.b
}

// Spectrum computes the forward 2-D transform of the real field src into
// dst (both length W·H). Callers convolving many sources against the same
// kernel compute the kernel's spectrum once and pass it to ConvolveSpectra.
func (p *Plan) Spectrum(dst []complex128, src []float64) {
	if len(dst) != p.W*p.H || len(src) != p.W*p.H {
		panic("fft: Spectrum dimension mismatch")
	}
	for i := range src {
		dst[i] = complex(src[i], 0)
	}
	p.Forward2D(dst)
}

// Convolve computes the cyclic 2-D convolution of src with kernel into dst
// (all length W·H), transforming both inputs. Prefer ConvolveSpectra with a
// cached kernel spectrum on iterative paths.
func (p *Plan) Convolve(dst, src, kernel []float64) {
	n := p.W * p.H
	if len(dst) != n || len(src) != n || len(kernel) != n {
		panic("fft: Convolve dimension mismatch")
	}
	defer convolveSeconds.Time()()
	a, b := p.scratch()
	for i := range src {
		a[i] = complex(src[i], 0)
		b[i] = complex(kernel[i], 0)
	}
	p.Forward2D(a)
	p.Forward2D(b)
	for i := range a {
		a[i] *= b[i]
	}
	p.Inverse2D(a)
	for i := range dst {
		dst[i] = real(a[i])
	}
}

// ConvolveSpectra transforms src once and convolves it against each cached
// kernel spectrum: dsts[i] receives the real part of IFFT(FFT(src)·specs[i]).
// This is the field-solve fast path: one forward plus one inverse transform
// per kernel instead of two forwards and one inverse.
func (p *Plan) ConvolveSpectra(dsts [][]float64, src []float64, specs [][]complex128) {
	n := p.W * p.H
	if len(src) != n || len(dsts) != len(specs) {
		panic("fft: ConvolveSpectra dimension mismatch")
	}
	defer convolveSeconds.Time()()
	a, b := p.scratch()
	for i := range src {
		a[i] = complex(src[i], 0)
	}
	p.Forward2D(a)
	for s := range specs {
		spec, dst := specs[s], dsts[s]
		if len(spec) != n || len(dst) != n {
			panic("fft: ConvolveSpectra dimension mismatch")
		}
		for i := range a {
			b[i] = a[i] * spec[i]
		}
		p.Inverse2D(b)
		for i := range dst {
			dst[i] = real(b[i])
		}
	}
}

// planPool recycles plans per size for the package-level Convolve2D, which
// has no owner to hold one.
var planPool sync.Map // [2]int -> *sync.Pool

func pooledPlan(w, h int) *Plan {
	key := [2]int{w, h}
	if p, ok := planPool.Load(key); ok {
		return p.(*sync.Pool).Get().(*Plan)
	}
	pool := &sync.Pool{New: func() any { return NewPlan(w, h) }}
	actual, _ := planPool.LoadOrStore(key, pool)
	return actual.(*sync.Pool).Get().(*Plan)
}

func putPooledPlan(p *Plan) {
	if pool, ok := planPool.Load([2]int{p.W, p.H}); ok {
		pool.(*sync.Pool).Put(p)
	}
}
