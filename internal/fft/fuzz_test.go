package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// FuzzPlanRoundTrip checks Forward2D∘Inverse2D ≈ identity for every
// power-of-two plan up to 128×128, with the exponents fuzzed so the corpus
// hits the degenerate aspect ratios (1×64, 128×2, 1×1) that a hand-written
// table of "reasonable" sizes would skip. Amplitudes are fuzzed too: the
// tolerance scales with the input magnitude, so large inputs only get the
// relative accuracy the transform can deliver.
func FuzzPlanRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(6), int64(1), 1.0)   // 1×64 strip
	f.Add(uint8(7), uint8(1), int64(2), 1.0)   // 128×2 strip
	f.Add(uint8(0), uint8(0), int64(3), 1.0)   // 1×1 degenerate
	f.Add(uint8(3), uint8(3), int64(42), 1e6)  // square, large amplitudes
	f.Add(uint8(5), uint8(4), int64(9), 1e-12) // tiny amplitudes
	f.Fuzz(func(t *testing.T, wExp, hExp uint8, seed int64, amp float64) {
		w := 1 << (wExp % 8)
		h := 1 << (hExp % 8)
		if !(math.Abs(amp) > 0 && math.Abs(amp) < 1e100) {
			amp = 1
		}
		rng := rand.New(rand.NewSource(seed))
		data := make([]complex128, w*h)
		orig := make([]complex128, w*h)
		maxAbs := 0.0
		for i := range data {
			data[i] = complex(amp*(2*rng.Float64()-1), amp*(2*rng.Float64()-1))
			orig[i] = data[i]
			if a := cmplx.Abs(data[i]); a > maxAbs {
				maxAbs = a
			}
		}

		p := NewPlan(w, h)
		p.Forward2D(data)
		p.Inverse2D(data)

		// log2(wh) butterfly stages each contribute O(ε) relative error.
		tol := 1e-13 * float64(4+wExp%8+hExp%8) * (1 + maxAbs)
		for i := range data {
			if d := cmplx.Abs(data[i] - orig[i]); d > tol {
				t.Fatalf("plan %dx%d: element %d drifted %g (tol %g) after round trip",
					w, h, i, d, tol)
			}
		}
	})
}

// FuzzRealPlanRoundTrip checks IRFFT∘RFFT ≈ identity for every
// power-of-two real plan up to 128×128, and that the half-spectrum agrees
// with the complex plan's full spectrum on the retained columns — the
// Hermitian-symmetry contract everything downstream (cached kernel
// spectra, pointwise products) relies on.
func FuzzRealPlanRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(6), int64(1), 1.0)   // 1×64 strip
	f.Add(uint8(7), uint8(1), int64(2), 1.0)   // 128×2 strip
	f.Add(uint8(0), uint8(0), int64(3), 1.0)   // 1×1 degenerate
	f.Add(uint8(3), uint8(3), int64(42), 1e6)  // square, large amplitudes
	f.Add(uint8(5), uint8(4), int64(9), 1e-12) // tiny amplitudes
	f.Fuzz(func(t *testing.T, wExp, hExp uint8, seed int64, amp float64) {
		w := 1 << (wExp % 8)
		h := 1 << (hExp % 8)
		if !(math.Abs(amp) > 0 && math.Abs(amp) < 1e100) {
			amp = 1
		}
		rng := rand.New(rand.NewSource(seed))
		src := make([]float64, w*h)
		maxAbs := 0.0
		for i := range src {
			src[i] = amp * (2*rng.Float64() - 1)
			if a := math.Abs(src[i]); a > maxAbs {
				maxAbs = a
			}
		}

		rp := NewRealPlan(w, h)
		spec := make([]complex128, rp.SpecLen())
		rp.Spectrum(spec, src)

		tol := 1e-13 * float64(4+wExp%8+hExp%8) * float64(w*h) * (1 + maxAbs)

		// Half-spectrum must match the complex plan on retained columns.
		full := make([]complex128, w*h)
		NewPlan(w, h).Spectrum(full, src)
		hw := w/2 + 1
		for y := 0; y < h; y++ {
			for k := 0; k < hw; k++ {
				if d := cmplx.Abs(spec[y*hw+k] - full[y*w+k]); d > tol {
					t.Fatalf("real plan %dx%d: spectrum (%d,%d) off by %g (tol %g)",
						w, h, k, y, d, tol)
				}
			}
		}

		out := make([]float64, w*h)
		rp.Inverse(out, spec)
		for i := range src {
			if d := math.Abs(out[i] - src[i]); d > tol {
				t.Fatalf("real plan %dx%d: element %d drifted %g (tol %g) after round trip",
					w, h, i, d, tol)
			}
		}
	})
}

// FuzzSpectrumConvolve cross-checks the cached-spectrum convolution against
// the direct Convolve path on the same plan: both evaluate the same cyclic
// convolution, so their outputs must agree to roundoff for any kernel.
func FuzzSpectrumConvolve(f *testing.F) {
	f.Add(uint8(2), uint8(3), int64(5))
	f.Add(uint8(0), uint8(5), int64(11))
	f.Fuzz(func(t *testing.T, wExp, hExp uint8, seed int64) {
		w := 1 << (wExp % 6)
		h := 1 << (hExp % 6)
		rng := rand.New(rand.NewSource(seed))
		src := make([]float64, w*h)
		kernel := make([]float64, w*h)
		for i := range src {
			src[i] = 2*rng.Float64() - 1
			kernel[i] = 2*rng.Float64() - 1
		}

		p := NewPlan(w, h)
		direct := make([]float64, w*h)
		p.Convolve(direct, src, kernel)

		spec := make([]complex128, w*h)
		p.Spectrum(spec, kernel)
		cached := make([]float64, w*h)
		p.ConvolveSpectra([][]float64{cached}, src, [][]complex128{spec})

		for i := range direct {
			if d := math.Abs(direct[i] - cached[i]); d > 1e-9 {
				t.Fatalf("plan %dx%d: convolution paths disagree at %d by %g", w, h, i, d)
			}
		}
	})
}
