package fft

import (
	"fmt"

	"repro/internal/par"
)

// RealPlan is the real-input counterpart of Plan: a W×H pipeline that
// exploits the Hermitian symmetry of real signals, F[k,v] =
// conj(F[(W−k)%W, (H−v)%H]), to transform and store only the non-redundant
// half-spectrum of (W/2+1)×H complex values — half the transform flops and
// half the spectrum memory of the complex pipeline.
//
// The row pass packs two adjacent real rows into one complex signal
// (c = row_y + i·row_{y+1}), runs a single length-W complex FFT on the
// shared radix-2 tables, and unpacks both rows' half-spectra from the
// symmetric/antisymmetric parts; the column pass then transforms only the
// W/2+1 retained columns. Both passes fan out across GOMAXPROCS goroutines
// above par.Threshold with the same per-row/per-column serial kernels, so
// results are bit-identical to the serial path.
//
// A RealPlan's scratch is not safe for concurrent use; share tables, not
// plans.
type RealPlan struct {
	W, H int
	hw   int // W/2 + 1: retained spectrum columns
	row  *radix2
	col  *radix2
	a, b []complex128 // lazily allocated hw·H spectrum scratch
}

// NewRealPlan prepares a real-input plan for W×H grids (both powers of
// two). Tables are shared globally with complex plans of the same lengths.
func NewRealPlan(w, h int) *RealPlan {
	if !IsPow2(w) || !IsPow2(h) {
		panic(fmt.Sprintf("fft: real plan %dx%d not power-of-two", w, h))
	}
	return &RealPlan{W: w, H: h, hw: w/2 + 1, row: tableFor(w), col: tableFor(h)}
}

// SpecLen returns the length of a half-spectrum: (W/2+1)·H. Spectrum
// destinations and cached kernel spectra must have exactly this length.
func (p *RealPlan) SpecLen() int { return p.hw * p.H }

// Spectrum computes the forward real-input 2-D transform of src (row-major
// W×H) into the half-spectrum dst (length SpecLen, row-major with stride
// W/2+1). Entry k of row v is the full spectrum's F[k,v] for k ≤ W/2; the
// redundant columns are implied by Hermitian symmetry.
func (p *RealPlan) Spectrum(dst []complex128, src []float64) {
	if len(dst) != p.SpecLen() || len(src) != p.W*p.H {
		panic("fft: RealPlan.Spectrum dimension mismatch")
	}
	p.forwardRows(dst, src)
	p.transformCols(dst, false)
}

// Inverse reconstructs the real field dst (length W·H) from the
// half-spectrum spec (length SpecLen), including the 1/(W·H) scaling.
// spec is left untouched.
func (p *RealPlan) Inverse(dst []float64, spec []complex128) {
	if len(dst) != p.W*p.H || len(spec) != p.SpecLen() {
		panic("fft: RealPlan.Inverse dimension mismatch")
	}
	_, b := p.scratch()
	copy(b, spec)
	p.inverse(dst, b)
}

// inverse is the destructive core of Inverse: spec is consumed as scratch.
func (p *RealPlan) inverse(dst []float64, spec []complex128) {
	p.transformCols(spec, true)
	p.inverseRows(dst, spec)
}

// forwardRows runs the packed-pair row transforms of src into the
// half-spectrum layout of spec (stride hw, one row per grid row).
func (p *RealPlan) forwardRows(spec []complex128, src []float64) {
	w, h, hw := p.W, p.H, p.hw
	if h == 1 {
		// A single row has no partner to pack with: transform it as a
		// complex signal and keep the non-redundant half.
		//lint:ignore hotalloc degenerate H=1 path (full grids are always ≥2 rows); one row vector per call
		c := make([]complex128, w)
		for x, v := range src {
			c[x] = complex(v, 0)
		}
		p.row.transform(c, false)
		copy(spec, c[:hw])
		return
	}
	par.Run(par.Workers(w*h), h/2, func(_, lo, hi int) {
		//lint:ignore hotalloc per-worker packed-row scratch: one make per fork-join worker, not per element, and sharing it would race
		c := make([]complex128, w)
		for pr := lo; pr < hi; pr++ {
			y := 2 * pr
			r0 := src[y*w : (y+1)*w]
			r1 := src[(y+1)*w : (y+2)*w]
			for x := range c {
				c[x] = complex(r0[x], r1[x])
			}
			p.row.transform(c, false)
			// Unpack: with C = FFT(r0 + i·r1),
			//   F0[k] = (C[k] + conj(C[W−k]))/2
			//   F1[k] = −i·(C[k] − conj(C[W−k]))/2
			// (k=0 and k=W/2 are self-mirrored, covered by the same code).
			s0 := spec[y*hw : (y+1)*hw]
			s1 := spec[(y+1)*hw : (y+2)*hw]
			s0[0] = complex(real(c[0]), 0)
			s1[0] = complex(imag(c[0]), 0)
			for k := 1; k < hw; k++ {
				u := c[k]
				v := c[w-k]
				sr, si := real(u)+real(v), imag(u)-imag(v)
				dr, di := real(u)-real(v), imag(u)+imag(v)
				s0[k] = complex(sr/2, si/2)
				s1[k] = complex(di/2, -dr/2)
			}
		}
	})
}

// inverseRows reconstructs pairs of real rows from the (already
// column-inverted) half-spectrum rows of spec, applying the final 1/(W·H)
// scaling.
func (p *RealPlan) inverseRows(dst []float64, spec []complex128) {
	w, h, hw := p.W, p.H, p.hw
	scale := 1 / float64(w*h)
	if h == 1 {
		//lint:ignore hotalloc degenerate H=1 path (full grids are always ≥2 rows); one row vector per call
		c := make([]complex128, w)
		copy(c, spec[:hw])
		for k := hw; k < w; k++ {
			m := spec[w-k]
			c[k] = complex(real(m), -imag(m))
		}
		p.row.transform(c, true)
		for x := range dst {
			dst[x] = real(c[x]) * scale
		}
		return
	}
	par.Run(par.Workers(w*h), h/2, func(_, lo, hi int) {
		//lint:ignore hotalloc per-worker packed-row scratch: one make per fork-join worker, not per element, and sharing it would race
		c := make([]complex128, w)
		for pr := lo; pr < hi; pr++ {
			y := 2 * pr
			g0 := spec[y*hw : (y+1)*hw]
			g1 := spec[(y+1)*hw : (y+2)*hw]
			// Pack the Hermitian extensions of both rows into one complex
			// inverse: C[k] = G0[k] + i·G1[k], with the mirrored tail
			// C[W−m] = conj(G0[m]) + i·conj(G1[m]).
			for k := 0; k < hw; k++ {
				c[k] = complex(real(g0[k])-imag(g1[k]), imag(g0[k])+real(g1[k]))
			}
			for k := hw; k < w; k++ {
				m0, m1 := g0[w-k], g1[w-k]
				c[k] = complex(real(m0)+imag(m1), real(m1)-imag(m0))
			}
			p.row.transform(c, true)
			d0 := dst[y*w : (y+1)*w]
			d1 := dst[(y+1)*w : (y+2)*w]
			for x, v := range c {
				d0[x] = real(v) * scale
				d1[x] = imag(v) * scale
			}
		}
	})
}

// transformCols runs length-H transforms down each of the hw retained
// spectrum columns, gathered through per-worker scratch.
func (p *RealPlan) transformCols(spec []complex128, inverse bool) {
	h, hw := p.H, p.hw
	if h == 1 {
		return
	}
	par.Run(par.Workers(p.W*h), hw, func(_, lo, hi int) {
		//lint:ignore hotalloc per-worker column scratch: one make per fork-join worker, not per element, and sharing it would race
		col := make([]complex128, h)
		for x := lo; x < hi; x++ {
			for y := 0; y < h; y++ {
				col[y] = spec[y*hw+x]
			}
			p.col.transform(col, inverse)
			for y := 0; y < h; y++ {
				spec[y*hw+x] = col[y]
			}
		}
	})
}

// scratch returns the plan's two owned half-spectrum grids.
func (p *RealPlan) scratch() (a, b []complex128) {
	if p.a == nil {
		p.a = make([]complex128, p.SpecLen())
		p.b = make([]complex128, p.SpecLen())
	}
	return p.a, p.b
}

// Convolve computes the cyclic 2-D convolution of src with kernel into dst
// (all length W·H), transforming both real inputs through half-spectra.
// Prefer ConvolveSpectra with a cached kernel spectrum on iterative paths.
func (p *RealPlan) Convolve(dst, src, kernel []float64) {
	n := p.W * p.H
	if len(dst) != n || len(src) != n || len(kernel) != n {
		panic("fft: RealPlan.Convolve dimension mismatch")
	}
	defer convolveSeconds.Time()()
	a, b := p.scratch()
	p.Spectrum(a, src)
	p.forwardRows(b, kernel)
	p.transformCols(b, false)
	for i := range a {
		b[i] *= a[i]
	}
	p.inverse(dst, b)
}

// ConvolveSpectra transforms src once and convolves it against each cached
// half-spectrum: dsts[i] receives IRFFT(RFFT(src)·specs[i]). Pointwise
// products of Hermitian half-spectra are exactly the half-spectra of the
// full-spectrum products, so this matches Plan.ConvolveSpectra to roundoff
// at half the transform cost.
func (p *RealPlan) ConvolveSpectra(dsts [][]float64, src []float64, specs [][]complex128) {
	n := p.W * p.H
	if len(src) != n || len(dsts) != len(specs) {
		panic("fft: RealPlan.ConvolveSpectra dimension mismatch")
	}
	defer convolveSeconds.Time()()
	a, b := p.scratch()
	p.Spectrum(a, src)
	for s := range specs {
		spec, dst := specs[s], dsts[s]
		if len(spec) != p.SpecLen() || len(dst) != n {
			panic("fft: RealPlan.ConvolveSpectra dimension mismatch")
		}
		for i := range a {
			b[i] = a[i] * spec[i]
		}
		p.inverse(dst, b)
	}
}
