// Package floorplan wraps the core placer for mixed block/cell
// floorplanning (§5): Kraftwerk places blocks and cells together "without
// treating blocks and cells differently"; this package adds the flexible-
// block reshaping of classical floorplanning (blocks may change aspect
// ratio within limits, Otten [10]) and the block/cell legalization that
// turns the global result into a non-overlapping floorplan.
package floorplan

import (
	"math"
	"time"

	"repro/internal/legalize"
	"repro/internal/netlist"
	"repro/internal/obsv"
	"repro/internal/place"
)

// Config controls a floorplanning run.
type Config struct {
	// Place configures the global placement engine.
	Place place.Config
	// AspectMin/AspectMax bound flexible block aspect ratios (H/W);
	// defaults 0.4 and 2.5. Equal values disable reshaping.
	AspectMin float64
	AspectMax float64
	// ReshapeEvery reshapes flexible blocks every n placement
	// transformations (default 10; 0 disables).
	ReshapeEvery int
	// BlockRowFactor classifies blocks (see legalize.Options).
	BlockRowFactor float64
}

func (c *Config) setDefaults() {
	if c.AspectMin <= 0 {
		c.AspectMin = 0.4
	}
	if c.AspectMax <= 0 {
		c.AspectMax = 2.5
	}
	if c.ReshapeEvery == 0 {
		c.ReshapeEvery = 10
	}
	if c.BlockRowFactor <= 0 {
		c.BlockRowFactor = 1.5
	}
}

// Result summarizes a floorplanning run.
type Result struct {
	Place    place.Result
	Legalize legalize.Result
	Blocks   int
	Reshapes int
	HPWL     float64
	Runtime  time.Duration
}

// Run floorplans nl in place: global mixed placement with periodic
// flexible-block reshaping, then legalization.
func Run(nl *netlist.Netlist, cfg Config) (Result, error) {
	cfg.setDefaults()
	start := obsv.StartTimer()

	rowH := 1.0
	if len(nl.Region.Rows) > 0 {
		rowH = nl.Region.Rows[0].Height
	}
	var blocks []int
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if !c.Fixed && c.H > cfg.BlockRowFactor*rowH {
			blocks = append(blocks, ci)
		}
	}

	reshapes := 0
	userHook := cfg.Place.BeforeTransform
	if cfg.ReshapeEvery > 0 && cfg.AspectMin < cfg.AspectMax {
		cfg.Place.BeforeTransform = func(iter int, p *place.Placer) {
			if userHook != nil {
				userHook(iter, p)
			}
			if iter > 0 && iter%cfg.ReshapeEvery == 0 {
				for _, bi := range blocks {
					if ReshapeBlock(nl, bi, cfg.AspectMin, cfg.AspectMax) {
						reshapes++
					}
				}
			}
		}
	}

	pres, err := place.Global(nl, cfg.Place)
	if err != nil {
		return Result{}, err
	}
	var lres legalize.Result
	if len(nl.Region.Rows) > 0 {
		lres, err = legalize.Legalize(nl, legalize.Options{BlockRowFactor: cfg.BlockRowFactor})
		if err != nil {
			return Result{}, err
		}
	} else {
		legalize.LegalizeBlocks(nl, blocks)
	}
	return Result{
		Place:    pres,
		Legalize: lres,
		Blocks:   len(blocks),
		Reshapes: reshapes,
		HPWL:     nl.HPWL(),
		Runtime:  start.Elapsed(),
	}, nil
}

// ReshapeBlock adjusts block bi's aspect ratio (area preserved) to the
// candidate in [aspectMin, aspectMax] minimizing the HPWL of its incident
// nets. Pin offsets on the block scale with its dimensions (pins keep
// their relative position on the block outline). Returns true when the
// shape changed.
func ReshapeBlock(nl *netlist.Netlist, bi int, aspectMin, aspectMax float64) bool {
	c := &nl.Cells[bi]
	area := c.Area()
	if area <= 0 || c.W <= 0 || c.H <= 0 {
		return false
	}
	origW, origH := c.W, c.H
	idx := nl.CellNets()
	setShape := func(w, h float64) {
		sx, sy := w/origW, h/origH
		for _, ni := range idx[bi] {
			for pi := range nl.Nets[ni].Pins {
				p := &nl.Nets[ni].Pins[pi]
				if p.Cell != bi {
					continue
				}
				// Offsets are stored relative to the original shape; scale
				// from the original so repeated calls stay exact.
				p.Offset.X = p.Offset.X / (c.W / origW) * sx
				p.Offset.Y = p.Offset.Y / (c.H / origH) * sy
			}
		}
		c.W, c.H = w, h
	}
	cost := func() float64 {
		var s float64
		for _, ni := range idx[bi] {
			s += nl.Nets[ni].Weight * nl.NetHPWL(ni)
		}
		return s
	}
	bestW, bestH := c.W, c.H
	bestCost := cost()
	changed := false
	for _, aspect := range candidateAspects(aspectMin, aspectMax) {
		w := math.Sqrt(area / aspect)
		h := area / w
		if w > nl.Region.W() || h > nl.Region.H() {
			continue
		}
		setShape(w, h)
		if k := cost(); k < bestCost-1e-12 {
			bestCost = k
			bestW, bestH = w, h
			changed = true
		}
	}
	setShape(bestW, bestH)
	return changed
}

func candidateAspects(lo, hi float64) []float64 {
	const steps = 7
	out := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		t := float64(i) / (steps - 1)
		// Geometric interpolation keeps candidates spread evenly in log
		// aspect.
		out = append(out, lo*math.Pow(hi/lo, t))
	}
	return out
}

// Whitespace returns 1 − (placed area / region area), the classical
// floorplan quality measure.
func Whitespace(nl *netlist.Netlist) float64 {
	a := nl.Region.Area()
	if a <= 0 {
		return 0
	}
	return 1 - nl.MovableArea()/a
}
