package floorplan

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
)

func TestRunMixedBlockCell(t *testing.T) {
	nl := netgen.Generate(netgen.Config{
		Name: "fp", Cells: 250, Nets: 330, Rows: 24, Blocks: 4, Seed: 111,
	})
	res, err := Run(nl, Config{Place: place.Config{MaxIter: 80}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 4 {
		t.Errorf("blocks = %d", res.Blocks)
	}
	if ov := nl.OverlapArea(); ov > 1e-6 {
		t.Errorf("overlap after floorplanning = %v", ov)
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if !c.Fixed && !nl.Region.Outline.ContainsRect(c.Rect().Expand(-1e-9)) {
			t.Errorf("cell %q outside region", c.Name)
		}
	}
	if res.HPWL <= 0 {
		t.Error("no HPWL")
	}
}

func TestReshapeBlockImprovesIncidentWL(t *testing.T) {
	// A tall block connected to pads left and right: flattening it brings
	// its center pins closer to both.
	b := netlist.NewBuilder("rs", geom.Region{Outline: geom.NewRect(0, 0, 40, 40)})
	b.AddPad("pl", geom.Point{X: 0, Y: 20})
	b.AddPad("pr", geom.Point{X: 40, Y: 20})
	b.AddBlock("blk", 4, 16)
	ib := b.Cell("blk")
	b.AddNet("nl_", []netlist.Pin{{Cell: 0, Dir: netlist.Output}, {Cell: ib, Offset: geom.Point{X: -2, Y: 7}, Dir: netlist.Input}})
	b.AddNet("nr_", []netlist.Pin{{Cell: ib, Offset: geom.Point{X: 2, Y: -7}, Dir: netlist.Output}, {Cell: 1, Dir: netlist.Input}})
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[ib].Pos = geom.Point{X: 20, Y: 20}
	before := nl.HPWL()
	if !ReshapeBlock(nl, ib, 0.25, 4) {
		t.Fatal("no reshape happened")
	}
	// Area preserved.
	if a := nl.Cells[ib].Area(); a < 63.9 || a > 64.1 {
		t.Errorf("area changed: %v", a)
	}
	if nl.HPWL() >= before {
		t.Errorf("reshape did not shorten wires: %v >= %v", nl.HPWL(), before)
	}
}

func TestReshapeDisabledByEqualBounds(t *testing.T) {
	nl := netgen.Generate(netgen.Config{
		Name: "nr", Cells: 100, Nets: 130, Rows: 12, Blocks: 2, Seed: 112,
	})
	var shapes [][2]float64
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed && nl.Cells[i].H > 1.5 {
			shapes = append(shapes, [2]float64{nl.Cells[i].W, nl.Cells[i].H})
		}
	}
	_, err := Run(nl, Config{
		Place:     place.Config{MaxIter: 30},
		AspectMin: 1, AspectMax: 1, // equal: reshaping off
	})
	if err != nil {
		t.Fatal(err)
	}
	j := 0
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed && nl.Cells[i].H > 1.5 {
			if nl.Cells[i].W != shapes[j][0] || nl.Cells[i].H != shapes[j][1] {
				t.Error("block reshaped despite equal aspect bounds")
			}
			j++
		}
	}
}

func TestWhitespace(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "ws", Cells: 100, Nets: 130, Rows: 8, Seed: 113})
	ws := Whitespace(nl)
	if ws < 0.15 || ws > 0.25 {
		t.Errorf("whitespace = %v, want ~0.2 at 0.8 utilization", ws)
	}
}

func TestRunRowlessRegion(t *testing.T) {
	nl := netgen.Generate(netgen.Config{
		Name: "rl", Cells: 60, Nets: 80, Rows: 12, Blocks: 3, Seed: 114,
	})
	nl.Region.Rows = nil
	res, err := Run(nl, Config{Place: place.Config{MaxIter: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks == 0 {
		t.Error("no blocks detected in row-less mode")
	}
}
