// Package par centralizes the parallel-execution policy shared by the
// hot-path packages: one size threshold deciding when a loop is worth
// fanning out to goroutines, and a chunked fork-join helper whose chunk
// ordering is deterministic. sparse (MulVec), fft (the 2-D transform
// passes) and density (the demand gather) all consult the same knob, so a
// single tunable governs when parallelism engages across the engine.
package par

import (
	"runtime"
	"sync"
)

// Threshold is the minimum number of independent work items (matrix rows,
// grid elements, cells) before a hot path fans out to goroutines; below it
// the scheduling overhead outweighs the win. Tests lower it to force the
// parallel paths onto small fixtures; benchmarks may raise it to pin a
// serial baseline.
var Threshold = 8192

// Workers returns the goroutine count for n independent work items: 1 below
// Threshold, otherwise runtime.GOMAXPROCS(0) capped at n.
func Workers(n int) int {
	if n < Threshold {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Pair runs f and g concurrently and waits for both: the two-task
// fork-join used when exactly two independent jobs of similar cost exist
// (the x/y axis solves). Keeping it here, next to Run, means kvet's
// parpolicy check can forbid raw go statements everywhere else.
func Pair(f, g func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		g()
	}()
	f()
	<-done
}

// Run partitions [0, n) into at most workers contiguous chunks — worker k
// always receives chunk k, so callers that gather per-worker output can
// merge it in a deterministic order — runs fn on each concurrently, and
// waits for all of them. workers <= 1 calls fn(0, 0, n) inline.
func Run(workers, n int, fn func(worker, lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	worker := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(worker, lo, hi)
		worker++
	}
	wg.Wait()
}
