package par

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4, 64)
	var n atomic.Int64
	for i := 0; i < 64; i++ {
		if err := p.Submit(func() { n.Add(1) }); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	p.Close()
	if got := n.Load(); got != 64 {
		t.Fatalf("ran %d tasks, want 64", got)
	}
}

func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 2)
	block := make(chan struct{})
	started := make(chan struct{})
	// Occupy the single worker — wait until it has dequeued the blocking
	// task, so the queue is empty — then fill the queue.
	if err := p.Submit(func() { close(started); <-block }); err != nil {
		t.Fatalf("occupy worker: %v", err)
	}
	<-started
	filled := 0
	for i := 0; i < 10; i++ {
		if err := p.Submit(func() { <-block }); err != nil {
			if !errors.Is(err, ErrPoolFull) {
				t.Fatalf("Submit: got %v, want ErrPoolFull", err)
			}
			break
		}
		filled++
	}
	if filled != 2 {
		t.Fatalf("queue accepted %d tasks, want 2", filled)
	}
	if got := p.Queued(); got != 2 {
		t.Fatalf("Queued() = %d, want 2", got)
	}
	close(block)
	p.Close()
}

func TestPoolPanicIsolation(t *testing.T) {
	p := NewPool(1, 8)
	var recovered atomic.Value
	p.OnPanic = func(r any) { recovered.Store(r) }
	var ok atomic.Bool
	if err := p.Submit(func() { panic("job exploded") }); err != nil {
		t.Fatal(err)
	}
	// The same single worker must survive to run the next task.
	if err := p.Submit(func() { ok.Store(true) }); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if !ok.Load() {
		t.Fatal("worker died after a panicking task")
	}
	if got, _ := recovered.Load().(string); got != "job exploded" {
		t.Fatalf("OnPanic got %v, want \"job exploded\"", recovered.Load())
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(2, 2)
	p.Close()
	p.Close() // idempotent
	if err := p.Submit(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Close: got %v, want ErrPoolClosed", err)
	}
}

func TestPoolConcurrentSubmitters(t *testing.T) {
	p := NewPool(4, 1024)
	var n atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				for {
					if err := p.Submit(func() { n.Add(1) }); err == nil {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	p.Close()
	if got := n.Load(); got != 800 {
		t.Fatalf("ran %d tasks, want 800", got)
	}
}

func TestPoolRunning(t *testing.T) {
	p := NewPool(2, 8)
	if got := p.Running(); got != 0 {
		t.Fatalf("idle pool Running() = %d, want 0", got)
	}
	block := make(chan struct{})
	var started sync.WaitGroup
	started.Add(2)
	for i := 0; i < 2; i++ {
		if err := p.Submit(func() { started.Done(); <-block }); err != nil {
			t.Fatal(err)
		}
	}
	started.Wait()
	if got := p.Running(); got != 2 {
		t.Fatalf("Running() = %d with both workers busy, want 2", got)
	}
	close(block)
	p.Close()
	if got := p.Running(); got != 0 {
		t.Fatalf("Running() = %d after drain, want 0", got)
	}
}
