package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Pool errors returned by Submit.
var (
	// ErrPoolFull reports a Submit rejected because the task queue is at
	// capacity; callers translate it into backpressure (the HTTP layer
	// answers 429).
	ErrPoolFull = errors.New("par: pool queue full")
	// ErrPoolClosed reports a Submit after Close.
	ErrPoolClosed = errors.New("par: pool closed")
)

// Pool is a fixed-size worker pool with a bounded task queue, the
// long-lived counterpart of Run's fork-join: Run fans a known amount of
// work out and joins immediately, while a Pool serves an open-ended task
// stream (the placement job queue). Keeping it here, with Run and Pair,
// preserves the repo's parallelism policy — kvet's parpolicy analyzer
// forbids raw go statements elsewhere, so every goroutine in the serving
// layer is accounted for by this one type.
type Pool struct {
	// OnPanic, when set before the first Submit, receives the value
	// recovered from a panicking task. A panic never kills a worker:
	// the worker recovers, reports, and moves to the next task. Nil
	// discards the value (the task simply ends).
	OnPanic func(recovered any)

	tasks chan func()
	wg    sync.WaitGroup

	// running counts tasks currently executing on workers; it is what a
	// health endpoint reports as "active workers".
	running atomic.Int64

	mu     sync.Mutex
	closed bool
}

// NewPool starts workers goroutines consuming a task queue of the given
// capacity. workers and queue are clamped to at least 1.
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	p := &Pool{tasks: make(chan func(), queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for fn := range p.tasks {
		p.invoke(fn)
	}
}

// invoke isolates one task's panic so the worker survives it.
func (p *Pool) invoke(fn func()) {
	p.running.Add(1)
	defer func() {
		p.running.Add(-1)
		if r := recover(); r != nil && p.OnPanic != nil {
			p.OnPanic(r)
		}
	}()
	fn()
}

// Submit enqueues fn without blocking. It returns ErrPoolFull when the
// queue is at capacity and ErrPoolClosed after Close; fn runs on one of
// the pool's workers otherwise.
func (p *Pool) Submit(fn func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- fn:
		return nil
	default:
		return ErrPoolFull
	}
}

// Queued returns the number of tasks waiting in the queue (not counting
// tasks already running on workers).
func (p *Pool) Queued() int { return len(p.tasks) }

// Running returns the number of tasks currently executing on workers.
func (p *Pool) Running() int { return int(p.running.Load()) }

// Close stops accepting tasks and waits until the queue has drained and
// every worker has finished its current task. It is idempotent.
func (p *Pool) Close() {
	p.markClosed()
	p.wg.Wait()
}

// CloseContext is Close with a bounded wait: it stops accepting tasks and
// waits for the drain until ctx is done, returning ctx.Err() if the
// workers did not finish in time (they keep draining in the background).
func (p *Pool) CloseContext(ctx context.Context) error {
	p.markClosed()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *Pool) markClosed() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
}
