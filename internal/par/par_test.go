package par

import (
	"sync/atomic"
	"testing"
)

func TestWorkersBelowThreshold(t *testing.T) {
	old := Threshold
	Threshold = 100
	defer func() { Threshold = old }()
	if w := Workers(99); w != 1 {
		t.Errorf("Workers(99) = %d, want 1", w)
	}
	if w := Workers(100); w < 1 {
		t.Errorf("Workers(100) = %d, want >= 1", w)
	}
}

func TestWorkersNeverExceedItems(t *testing.T) {
	old := Threshold
	Threshold = 1
	defer func() { Threshold = old }()
	if w := Workers(2); w > 2 {
		t.Errorf("Workers(2) = %d, want <= 2", w)
	}
}

func TestRunCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		const n = 103
		var hits [n]int32
		Run(workers, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestRunWorkerChunksAreOrdered(t *testing.T) {
	const n = 40
	bounds := make([][2]int, 8)
	Run(4, n, func(w, lo, hi int) { bounds[w] = [2]int{lo, hi} })
	prev := 0
	for w := 0; w < 4 && bounds[w][1] > 0; w++ {
		if bounds[w][0] != prev {
			t.Fatalf("worker %d starts at %d, want %d", w, bounds[w][0], prev)
		}
		prev = bounds[w][1]
	}
	if prev != n {
		t.Fatalf("chunks cover up to %d, want %d", prev, n)
	}
}

func TestRunEmptyRange(t *testing.T) {
	called := 0
	Run(4, 0, func(_, lo, hi int) {
		called++
		if lo != 0 || hi != 0 {
			t.Errorf("empty range got [%d,%d)", lo, hi)
		}
	})
	if called != 1 {
		t.Errorf("fn called %d times, want 1", called)
	}
}
