package obsv

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// PhaseStat aggregates all spans recorded under one name.
type PhaseStat struct {
	Count int64
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Mean returns the average span duration (0 when empty).
func (p PhaseStat) Mean() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Count)
}

// Spans aggregates named phase timings for one run. Spans nest freely —
// a span is just a Start/End pair, and hierarchical names
// ("place/step/field") are the convention for nesting. All methods are
// safe for concurrent use and on a nil receiver: a nil *Spans records
// nothing and Start performs no time.Now call.
type Spans struct {
	mu sync.Mutex
	m  map[string]*PhaseStat
}

// NewSpans creates an empty span recorder.
func NewSpans() *Spans { return &Spans{m: make(map[string]*PhaseStat)} }

// Span is one in-flight timed section.
type Span struct {
	s    *Spans
	name string
	t0   time.Time
}

// Start opens a span; call End on the returned value to record it.
// On a nil receiver it returns an inert Span without reading the clock.
func (s *Spans) Start(name string) Span {
	if s == nil {
		return Span{}
	}
	return Span{s: s, name: name, t0: time.Now()}
}

// End closes the span, records its duration, and returns it. No-op on a
// span obtained from a nil *Spans.
func (sp Span) End() time.Duration {
	if sp.s == nil {
		return 0
	}
	d := time.Since(sp.t0)
	sp.s.Record(sp.name, d)
	return d
}

// Record folds an externally measured duration into the aggregation.
// Safe on nil.
func (s *Spans) Record(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	st, ok := s.m[name]
	if !ok {
		st = &PhaseStat{Min: d}
		s.m[name] = st
	}
	st.Count++
	st.Total += d
	if d < st.Min {
		st.Min = d
	}
	if d > st.Max {
		st.Max = d
	}
	s.mu.Unlock()
}

// Get returns the aggregate for one phase name (zero when absent or nil).
func (s *Spans) Get(name string) PhaseStat {
	if s == nil {
		return PhaseStat{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.m[name]; ok {
		return *st
	}
	return PhaseStat{}
}

// Snapshot returns a copy of all phase aggregates (nil map when empty).
func (s *Spans) Snapshot() map[string]PhaseStat {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]PhaseStat, len(s.m))
	for name, st := range s.m {
		out[name] = *st
	}
	return out
}

// WriteTable renders the aggregates as an aligned text table sorted by
// descending total time. Safe on nil (writes nothing).
func (s *Spans) WriteTable(w io.Writer) {
	if s == nil {
		return
	}
	snap := s.Snapshot()
	if len(snap) == 0 {
		return
	}
	type row struct {
		name string
		st   PhaseStat
	}
	rows := make([]row, 0, len(snap))
	width := len("phase")
	for name, st := range snap {
		rows = append(rows, row{name, st})
		if len(name) > width {
			width = len(name)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].st.Total != rows[j].st.Total {
			return rows[i].st.Total > rows[j].st.Total
		}
		return rows[i].name < rows[j].name
	})
	fmt.Fprintf(w, "%-*s %8s %12s %12s %12s %12s\n", width, "phase", "count", "total", "mean", "min", "max")
	for _, r := range rows {
		fmt.Fprintf(w, "%-*s %8d %12s %12s %12s %12s\n", width, r.name,
			r.st.Count, round(r.st.Total), round(r.st.Mean()), round(r.st.Min), round(r.st.Max))
	}
}

// round trims durations to a readable precision for tables.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d.Round(time.Nanosecond)
	}
}
