// Package obsv is the placement stack's observability layer: nestable
// phase/span timers with per-run aggregation, a process-wide registry of
// counters, gauges and fixed-bucket histograms with Prometheus-text and
// JSON encoders, and a JSONL run-trace writer.
//
// The package is standard-library only and designed to cost ~zero when
// disabled: every handle type (*Counter, *Gauge, *Histogram, *Spans,
// *TraceWriter) is nil-safe, so instrumented code records unconditionally
// and a nil sink turns each call into an inlineable no-op — no branches on
// configuration flags, no allocations, no time.Now calls on the disabled
// path.
package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n < 0 is ignored; counters only go up). Safe on nil.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down. NaN and ±Inf inputs
// are dropped (counted in obsv_bad_samples_total when the gauge came from
// a registry): one poisoned sample must not make /metrics unparseable.
type Gauge struct {
	bits atomic.Uint64
	bad  *Counter // registry's bad-sample counter; nil outside a registry
}

// Set stores v. Non-finite values are dropped. Safe on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		g.bad.Inc()
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments by v (CAS loop). Non-finite increments are dropped.
// Safe on nil.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		g.bad.Inc()
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: counts[i] observations ≤ uppers[i], plus an implicit +Inf).
type Histogram struct {
	mu     sync.Mutex
	uppers []float64 // sorted upper bounds, exclusive of +Inf
	counts []int64   // len(uppers)+1; last is the +Inf overflow
	sum    float64
	total  int64
	bad    *Counter // registry's bad-sample counter; nil outside a registry
}

// Observe records one sample. NaN and ±Inf samples are dropped (counted
// in obsv_bad_samples_total when the histogram came from a registry) so
// one bad measurement cannot poison the sum or the quantile estimates.
// Safe on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.bad.Inc()
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns bounds, cumulative counts, sum and total.
func (h *Histogram) snapshot() ([]float64, []int64, float64, int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]int64, len(h.counts))
	var run int64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return h.uppers, cum, h.sum, h.total
}

// SecondsBuckets is the default bucket ladder for durations in seconds,
// spanning microsecond kernels to multi-second solves.
var SecondsBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 60}

// ResidualBuckets is the default ladder for CG relative residuals.
var ResidualBuckets = []float64{1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1}

// Registry holds named metrics. The zero value is not usable; construct
// with NewRegistry. A nil *Registry is a valid "disabled" registry: its
// lookup methods return nil handles whose operations are no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string // by family name
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		help:       make(map[string]string),
	}
}

// Counter returns (registering on first use) the counter with the given
// full name, which may carry Prometheus labels: `cg_solves_total{precond="ic0"}`.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.setHelp(name, help)
	}
	return c
}

// Gauge returns (registering on first use) the named gauge, nil on a nil
// registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{bad: r.badSamplesLocked()}
		r.gauges[name] = g
		r.setHelp(name, help)
	}
	return g
}

// Histogram returns (registering on first use) the named histogram with
// the given upper bucket bounds (sorted ascending; +Inf is implicit).
// Returns nil on a nil registry. Bounds are fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		uppers := append([]float64(nil), buckets...)
		sort.Float64s(uppers)
		h = &Histogram{uppers: uppers, counts: make([]int64, len(uppers)+1), bad: r.badSamplesLocked()}
		r.histograms[name] = h
		r.setHelp(name, help)
	}
	return h
}

// badSamplesName counts NaN/±Inf samples dropped by Gauge.Set/Add and
// Histogram.Observe instead of poisoning the encoded output.
const badSamplesName = "obsv_bad_samples_total"

// badSamplesLocked resolves the shared bad-sample counter; r.mu held.
func (r *Registry) badSamplesLocked() *Counter {
	c, ok := r.counters[badSamplesName]
	if !ok {
		c = &Counter{}
		r.counters[badSamplesName] = c
		r.setHelp(badSamplesName, "non-finite metric samples dropped instead of recorded")
	}
	return c
}

func (r *Registry) setHelp(name, help string) {
	fam, _ := splitName(name)
	if help != "" && r.help[fam] == "" {
		r.help[fam] = help
	}
}

// splitName separates `family{labels}` into its parts; labels is the
// inner `k="v",...` text without braces (empty when unlabeled).
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinLabels merges an existing label set with one extra label.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// WritePrometheus encodes the registry in the Prometheus text exposition
// format, families sorted by name. Safe on nil (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	type line struct{ fam, typ, text string }
	var lines []line
	for name, c := range r.counters {
		fam, _ := splitName(name)
		lines = append(lines, line{fam, "counter", fmt.Sprintf("%s %d\n", name, c.Value())})
	}
	for name, g := range r.gauges {
		fam, _ := splitName(name)
		lines = append(lines, line{fam, "gauge", fmt.Sprintf("%s %g\n", name, g.Value())})
	}
	for name, h := range r.histograms {
		fam, labels := splitName(name)
		//lint:ignore lockheld fixed registry→histogram lock order, and snapshot is an O(buckets) copy with no I/O; nothing can deadlock or stall
		uppers, cum, sum, total := h.snapshot()
		var sb strings.Builder
		for i, up := range uppers {
			fmt.Fprintf(&sb, "%s_bucket%s %d\n", fam, joinLabels(labels, fmt.Sprintf("le=%q", formatFloat(up))), cum[i])
		}
		fmt.Fprintf(&sb, "%s_bucket%s %d\n", fam, joinLabels(labels, `le="+Inf"`), total)
		fmt.Fprintf(&sb, "%s_sum%s %g\n", fam, bracket(labels), sum)
		fmt.Fprintf(&sb, "%s_count%s %d\n", fam, bracket(labels), total)
		lines = append(lines, line{fam, "histogram", sb.String()})
		// Interpolated quantiles ride along as sibling gauge families
		// (fam_p50...), so plain-text consumers get latency percentiles
		// without a query engine; empty histograms encode NaN.
		if total > 0 {
			for _, qp := range quantilePoints {
				v := bucketQuantile(qp.q, uppers, cum, total)
				lines = append(lines, line{fam + qp.suffix, "gauge",
					fmt.Sprintf("%s%s%s %g\n", fam, qp.suffix, bracket(labels), v)})
			}
		}
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].fam != lines[j].fam {
			return lines[i].fam < lines[j].fam
		}
		return lines[i].text < lines[j].text
	})
	lastFam := ""
	for _, l := range lines {
		if l.fam != lastFam {
			if help := r.help[l.fam]; help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", l.fam, help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", l.fam, l.typ); err != nil {
				return err
			}
			lastFam = l.fam
		}
		if _, err := io.WriteString(w, l.text); err != nil {
			return err
		}
	}
	return nil
}

func bracket(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// quantilePoints are the percentiles both encoders surface per histogram.
var quantilePoints = []struct {
	q      float64
	suffix string
}{{0.5, "_p50"}, {0.95, "_p95"}, {0.99, "_p99"}}

// histJSON is the JSON shape of one histogram. The quantile fields are
// bucket-interpolated estimates (0 while the histogram is empty — JSON
// has no NaN).
type histJSON struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	P50     float64          `json:"p50"`
	P95     float64          `json:"p95"`
	P99     float64          `json:"p99"`
	Buckets map[string]int64 `json:"buckets"` // upper bound → cumulative count
}

// WriteJSON encodes the registry as a single JSON object. Safe on nil
// (writes {}).
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return json.NewEncoder(w).Encode(newRegistryJSON())
	}
	out := newRegistryJSON()
	r.mu.Lock()
	for name, c := range r.counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		out.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		//lint:ignore lockheld same fixed registry→histogram lock order as WritePrometheus; snapshot is a bounded copy
		uppers, cum, sum, total := h.snapshot()
		buckets := make(map[string]int64, len(uppers)+1)
		for i, up := range uppers {
			buckets[formatFloat(up)] = cum[i]
		}
		buckets["+Inf"] = total
		hj := histJSON{Count: total, Sum: sum, Buckets: buckets}
		if total > 0 {
			hj.P50 = bucketQuantile(0.5, uppers, cum, total)
			hj.P95 = bucketQuantile(0.95, uppers, cum, total)
			hj.P99 = bucketQuantile(0.99, uppers, cum, total)
		}
		out.Histograms[name] = hj
	}
	r.mu.Unlock()
	return json.NewEncoder(w).Encode(out)
}

// registryJSON is the WriteJSON document shape.
type registryJSON struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]float64  `json:"gauges"`
	Histograms map[string]histJSON `json:"histograms"`
}

func newRegistryJSON() registryJSON {
	return registryJSON{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]histJSON{},
	}
}

// ServeHTTP serves the Prometheus text encoding, making a *Registry
// mountable at /metrics on any mux. Safe on nil (serves the empty
// encoding).
//
//lint:ignore nilsafe headers are set unconditionally, then the body delegates to the nil-safe WritePrometheus
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = r.WritePrometheus(w)
}
