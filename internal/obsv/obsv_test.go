package obsv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", SecondsBuckets)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nil handles must stay zero: %d %g %d", c.Value(), g.Value(), h.Count())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WritePrometheus: %v, %q", err, buf.String())
	}

	var s *Spans
	sp := s.Start("phase")
	if d := sp.End(); d != 0 {
		t.Fatalf("nil spans recorded %v", d)
	}
	s.Record("phase", time.Second)
	if got := s.Get("phase"); got.Count != 0 {
		t.Fatalf("nil spans aggregated %+v", got)
	}

	var tw *TraceWriter
	if err := tw.Write(map[string]int{"a": 1}); err != nil {
		t.Fatalf("nil trace writer: %v", err)
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("nil trace writer close: %v", err)
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	g := r.Gauge("level", "level")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %g, want 8000", g.Value())
	}
	// Re-lookup returns the same handle.
	if r.Counter("ops_total", "") != c {
		t.Fatal("counter lookup not idempotent")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	uppers, cum, _, total := h.snapshot()
	wantCum := []int64{1, 2, 3, 4}
	for i := range uppers {
		if cum[i] != wantCum[i] {
			t.Fatalf("cumulative[%d] = %d, want %d", i, cum[i], wantCum[i])
		}
	}
	if total != 4 {
		t.Fatalf("total = %d, want 4", total)
	}
}

func TestPrometheusEncoding(t *testing.T) {
	r := NewRegistry()
	r.Counter(`cg_solves_total{precond="jacobi"}`, "CG solves").Add(3)
	r.Counter(`cg_solves_total{precond="ic0"}`, "CG solves").Add(2)
	r.Gauge("hpwl", "wire length").Set(123.5)
	h := r.Histogram("step_seconds", "step time", []float64{0.1, 1, 10, 60})
	h.Observe(0.05)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE cg_solves_total counter",
		"# HELP cg_solves_total CG solves",
		`cg_solves_total{precond="jacobi"} 3`,
		`cg_solves_total{precond="ic0"} 2`,
		"# TYPE hpwl gauge",
		"hpwl 123.5",
		"# TYPE step_seconds histogram",
		`step_seconds_bucket{le="0.1"} 1`,
		`step_seconds_bucket{le="1"} 1`,
		// Integer bounds must keep their digits (10, not "1").
		`step_seconds_bucket{le="10"} 2`,
		`step_seconds_bucket{le="60"} 2`,
		`step_seconds_bucket{le="+Inf"} 2`,
		"step_seconds_sum 2.05",
		"step_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Each family's TYPE line appears exactly once.
	if n := strings.Count(out, "# TYPE cg_solves_total"); n != 1 {
		t.Errorf("TYPE line for labeled family appears %d times", n)
	}
}

func TestJSONEncoding(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "").Add(7)
	r.Gauge("v", "").Set(1.5)
	r.Histogram("h", "", []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Counters   map[string]int64    `json:"counters"`
		Gauges     map[string]float64  `json:"gauges"`
		Histograms map[string]histJSON `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.Counters["n_total"] != 7 || got.Gauges["v"] != 1.5 {
		t.Fatalf("unexpected JSON payload: %+v", got)
	}
	if h := got.Histograms["h"]; h.Count != 1 || h.Buckets["1"] != 1 || h.Buckets["+Inf"] != 1 {
		t.Fatalf("unexpected histogram payload: %+v", got.Histograms["h"])
	}
}

func TestSpansAggregation(t *testing.T) {
	s := NewSpans()
	s.Record("solve", 10*time.Millisecond)
	s.Record("solve", 30*time.Millisecond)
	s.Record("gather", 5*time.Millisecond)

	st := s.Get("solve")
	if st.Count != 2 || st.Total != 40*time.Millisecond {
		t.Fatalf("solve aggregate = %+v", st)
	}
	if st.Min != 10*time.Millisecond || st.Max != 30*time.Millisecond {
		t.Fatalf("solve min/max = %v/%v", st.Min, st.Max)
	}
	if st.Mean() != 20*time.Millisecond {
		t.Fatalf("solve mean = %v", st.Mean())
	}

	sp := s.Start("timed")
	outer := s.Start("outer")
	inner := s.Start("outer/inner") // spans nest freely
	inner.End()
	outer.End()
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration %v", d)
	}
	snap := s.Snapshot()
	for _, name := range []string{"solve", "gather", "timed", "outer", "outer/inner"} {
		if snap[name].Count == 0 {
			t.Errorf("snapshot missing %q", name)
		}
	}

	var buf bytes.Buffer
	s.WriteTable(&buf)
	if !strings.Contains(buf.String(), "solve") || !strings.Contains(buf.String(), "phase") {
		t.Fatalf("table output:\n%s", buf.String())
	}
}

func TestTraceWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	type rec struct {
		Iter int     `json:"iter"`
		HPWL float64 `json:"hpwl"`
	}
	for i := 0; i < 3; i++ {
		if err := tw.Write(rec{Iter: i, HPWL: float64(100 - i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	n := 0
	for sc.Scan() {
		var r rec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d is not JSON: %v (%q)", n, err, sc.Text())
		}
		if r.Iter != n {
			t.Fatalf("line %d has iter %d", n, r.Iter)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("got %d JSONL lines, want 3", n)
	}
}
