package obsv

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestQuantileInterpolation pins the estimator on a hand-checkable
// distribution: buckets [1 2 4], one sample per bucket edge region.
func TestQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test", "quantile fixture", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 3.5} {
		h.Observe(v)
	}
	// cum = [1, 2, 4], total 4.
	cases := []struct{ q, want float64 }{
		{0.25, 1}, // rank 1 lands exactly on the first bucket's count → its upper bound
		{0.5, 2},  // rank 2 fills the (1,2] bucket → 2
		{0.75, 3}, // rank 3: one of two samples into (2,4] → 2 + 2*(1/2)
		{1.0, 4},  // everything observed ≤ 4
		{0, 0},    // rank 0 → the first bucket's zero floor
		{-0.5, 0}, // clamped to q=0
		{1.5, 4},  // clamped to q=1
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	qs := h.Quantiles(0.5, 0.75)
	if qs[0] != 2 || qs[1] != 3 {
		t.Errorf("Quantiles = %v, want [2 3]", qs)
	}
}

// TestQuantileFirstBucketInterpolatesFromZero checks the Prometheus
// convention: the first finite bucket's lower bound is 0.
func TestQuantileFirstBucketInterpolatesFromZero(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_first", "fixture", []float64{10})
	for i := 0; i < 4; i++ {
		h.Observe(1)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %g, want 5 (linear within [0,10])", got)
	}
}

// TestQuantileOverflowClampsToLastFinite: samples beyond the bucket
// ladder cannot be located, so quantiles in the +Inf bucket report the
// largest finite bound.
func TestQuantileOverflowClampsToLastFinite(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_inf", "fixture", []float64{1, 4})
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.99); got != 4 {
		t.Errorf("Quantile(0.99) = %g, want clamp to 4", got)
	}
}

func TestQuantileEmptyAndNil(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_empty", "fixture", []float64{1})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram Quantile = %g, want NaN", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("nil histogram Quantile = %g, want NaN", got)
	}
	for _, q := range nilH.Quantiles(0.5, 0.9) {
		if !math.IsNaN(q) {
			t.Errorf("nil histogram Quantiles contains %g, want NaN", q)
		}
	}
}

// TestEncoderQuantileGolden pins the quantile surfacing in both
// encoders: sibling _p50/_p95/_p99 gauge families in Prometheus text,
// p50/p95/p99 fields in JSON.
func TestEncoderQuantileGolden(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "fixture latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 3.5} {
		h.Observe(v)
	}

	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		"# TYPE lat_seconds_p50 gauge",
		"lat_seconds_p50 2\n",
		"lat_seconds_p95 3.8\n", // rank 3.8 → 2 + 2*(1.8/2)
		"lat_seconds_p99 3.96\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus encoding missing %q:\n%s", want, text)
		}
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Histograms map[string]struct {
			Count int64   `json:"count"`
			P50   float64 `json:"p50"`
			P95   float64 `json:"p95"`
			P99   float64 `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("JSON encoding does not parse: %v", err)
	}
	hj, ok := doc.Histograms["lat_seconds"]
	if !ok {
		t.Fatalf("JSON encoding missing histogram: %s", js.String())
	}
	if hj.Count != 4 || hj.P50 != 2 || math.Abs(hj.P95-3.8) > 1e-12 || math.Abs(hj.P99-3.96) > 1e-12 {
		t.Errorf("JSON quantiles = %+v, want count 4, p50 2, p95 3.8, p99 3.96", hj)
	}
}

// TestEmptyHistogramEncodesWithoutQuantiles: an empty histogram must not
// emit NaN into either encoding.
func TestEmptyHistogramEncodesWithoutQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_seconds", "fixture", []float64{1})

	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(prom.String(), "empty_seconds_p50") {
		t.Errorf("empty histogram emitted quantile lines:\n%s", prom.String())
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(js.String(), "NaN") {
		t.Errorf("JSON encoding contains NaN: %s", js.String())
	}
}

// TestBadSampleGuards: NaN/±Inf samples are dropped and counted, never
// recorded.
func TestBadSampleGuards(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "fixture")
	h := r.Histogram("h_seconds", "fixture", []float64{1})

	g.Set(3)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		g.Set(v)
		g.Add(v)
		h.Observe(v)
	}
	if got := g.Value(); got != 3 {
		t.Errorf("gauge poisoned: %g, want 3", got)
	}
	h.Observe(0.5)
	_, _, sum, total := h.snapshot()
	if total != 1 || sum != 0.5 {
		t.Errorf("histogram poisoned: total %d sum %g, want 1 / 0.5", total, sum)
	}
	bad := r.Counter(badSamplesName, "")
	if got := bad.Value(); got != 9 {
		t.Errorf("obsv_bad_samples_total = %d, want 9 (3 Set + 3 Add + 3 Observe)", got)
	}

	// Nil receivers stay inert.
	var nilG *Gauge
	var nilHist *Histogram
	nilG.Set(math.NaN())
	nilHist.Observe(math.Inf(1))
}
