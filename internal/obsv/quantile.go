package obsv

import "math"

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation inside the histogram's buckets —
// the same estimator Prometheus's histogram_quantile applies server-side,
// computed here so encoders can surface p50/p95/p99 without a query
// engine. Returns NaN on a nil or empty histogram; samples beyond the
// last finite bucket clamp to that bucket's upper bound (the estimator
// cannot see past its ladder).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	uppers, cum, _, total := h.snapshot()
	return bucketQuantile(q, uppers, cum, total)
}

// Quantiles evaluates several quantiles on one snapshot, so the estimates
// are mutually consistent even under concurrent Observe traffic.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	if h == nil {
		out := make([]float64, len(qs))
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	uppers, cum, _, total := h.snapshot()
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = bucketQuantile(q, uppers, cum, total)
	}
	return out
}

// bucketQuantile interpolates the q-quantile from sorted upper bounds and
// cumulative counts (cum[len(uppers)] is the +Inf total).
func bucketQuantile(q float64, uppers []float64, cum []int64, total int64) float64 {
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	b := 0
	for b < len(uppers) && float64(cum[b]) < rank {
		b++
	}
	if len(uppers) == 0 || (b == len(uppers)) {
		// Landed in the +Inf overflow bucket: the best bounded answer is
		// the largest finite bound (or NaN when there is none).
		if len(uppers) == 0 {
			return math.NaN()
		}
		return uppers[len(uppers)-1]
	}
	upper := uppers[b]
	lower := 0.0
	var below int64
	if b > 0 {
		lower = uppers[b-1]
		below = cum[b-1]
	} else if upper <= 0 {
		// An all-negative first bucket has no meaningful zero floor.
		return upper
	}
	count := cum[b] - below
	if count == 0 {
		return upper
	}
	frac := (rank - float64(below)) / float64(count)
	return lower + (upper-lower)*frac
}
