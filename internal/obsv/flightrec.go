package obsv

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// FlightEntry is one anomaly bundle captured by a FlightRecorder: the
// job's span tree and recent iteration samples frozen at the moment
// something went wrong, plus an optional CPU profile.
type FlightEntry struct {
	Time   time.Time `json:"time"`
	Reason string    `json:"reason"` // "panic" | "deadline_miss" | "reject_burst" | "slo_breach" | ...
	JobID  string    `json:"job_id,omitempty"`
	// Detail carries reason-specific context (error text, SLO numbers,
	// rejection counts). Must be JSON-encodable.
	Detail any `json:"detail,omitempty"`
	// Trace is the job's span tree snapshot at capture time.
	Trace *SpanTree `json:"trace,omitempty"`
	// Samples holds recent per-iteration progress events. Must be
	// JSON-encodable.
	Samples any `json:"samples,omitempty"`
	// CPUProfile is a pprof CPU profile (protobuf, gzip) captured on
	// breach; base64 in JSON dumps.
	CPUProfile []byte `json:"cpu_profile,omitempty"`
}

// FlightRecorder keeps the last cap anomaly bundles in memory — a
// black box to read after the fact instead of reproducing a failure
// under a debugger. All methods are nil-safe; a nil recorder drops
// everything.
type FlightRecorder struct {
	mu      sync.Mutex
	entries []FlightEntry // ring; next is the write position
	next    int
	filled  bool
	dropped int64

	profiling atomic.Bool
}

// NewFlightRecorder builds a recorder holding the last cap entries
// (cap < 1 is treated as 1).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{entries: make([]FlightEntry, 0, capacity)}
}

// Record stores one anomaly bundle, evicting the oldest when full.
func (r *FlightRecorder) Record(e FlightEntry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.entries) < cap(r.entries) {
		r.entries = append(r.entries, e)
	} else {
		r.entries[r.next] = e
		r.next = (r.next + 1) % cap(r.entries)
		r.filled = true
		r.dropped++
	}
	r.mu.Unlock()
}

// Len reports how many bundles are currently held.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Dropped reports how many bundles were evicted to make room.
func (r *FlightRecorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Snapshot copies the held bundles, oldest first.
func (r *FlightRecorder) Snapshot() []FlightEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FlightEntry, 0, len(r.entries))
	if r.filled {
		out = append(out, r.entries[r.next:]...)
		out = append(out, r.entries[:r.next]...)
	} else {
		out = append(out, r.entries...)
	}
	return out
}

// flightDump is the JSON schema of a recorder dump.
type flightDump struct {
	Capacity int           `json:"capacity"`
	Dropped  int64         `json:"dropped"`
	Entries  []FlightEntry `json:"entries"`
}

// WriteJSON dumps the recorder state as one JSON document. Safe on nil
// (writes an empty dump).
func (r *FlightRecorder) WriteJSON(w io.Writer) error {
	if r == nil {
		return json.NewEncoder(w).Encode(flightDump{Entries: []FlightEntry{}})
	}
	entries := r.Snapshot()
	r.mu.Lock()
	d := flightDump{Capacity: cap(r.entries), Dropped: r.dropped, Entries: entries}
	r.mu.Unlock()
	if d.Entries == nil {
		d.Entries = []FlightEntry{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// ServeHTTP exposes the dump (GET /debug/flightrecorder).
func (r *FlightRecorder) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	if r == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = r.WriteJSON(w)
}

// CaptureCPUProfile synchronously profiles the process for d and returns
// the pprof bytes. At most one capture runs at a time — concurrent
// breaches get nil instead of queueing behind each other — and the
// caller eats the latency, which is the point: it runs on the breaching
// job's goroutine, where the time is already lost.
func (r *FlightRecorder) CaptureCPUProfile(d time.Duration) []byte {
	if r == nil || d <= 0 {
		return nil
	}
	if !r.profiling.CompareAndSwap(false, true) {
		return nil
	}
	defer r.profiling.Store(false)
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Another profiler (e.g. net/http/pprof) already owns the CPU
		// profile; the trace and samples still make a useful bundle.
		return nil
	}
	time.Sleep(d)
	pprof.StopCPUProfile()
	return buf.Bytes()
}
