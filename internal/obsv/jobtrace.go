package obsv

import (
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"time"
)

// TraceID is a W3C trace-context trace identifier (16 bytes).
type TraceID [16]byte

// SpanID is a W3C trace-context span identifier (8 bytes).
type SpanID [8]byte

// IsZero reports the invalid all-zero trace id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports the invalid all-zero span id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String returns the 32-hex-digit encoding.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String returns the 16-hex-digit encoding.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// NewTraceID draws a random trace id. Randomness here is identity, not
// algorithm: placement results never depend on it.
func NewTraceID() TraceID {
	var id TraceID
	fillRandom(id[:])
	return id
}

// NewSpanID draws a random span id.
func NewSpanID() SpanID {
	var id SpanID
	fillRandom(id[:])
	return id
}

func fillRandom(b []byte) {
	if _, err := crand.Read(b); err != nil {
		// An unreadable entropy source should not take tracing down;
		// a fixed fallback id is still a valid (if colliding) id.
		for i := range b {
			b[i] = byte(0xA5 ^ i)
		}
	}
}

// TraceParent is the parsed W3C `traceparent` header
// (version-traceid-spanid-flags). The zero value means "no remote
// parent": a trace built from it starts a fresh trace id.
type TraceParent struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Valid reports whether the parent carries usable (non-zero) identifiers.
func (tp TraceParent) Valid() bool { return !tp.TraceID.IsZero() && !tp.SpanID.IsZero() }

// String renders the version-00 header form
// (00-<32 hex>-<16 hex>-<2 hex>).
func (tp TraceParent) String() string {
	var sb strings.Builder
	sb.Grow(55)
	sb.WriteString("00-")
	sb.WriteString(tp.TraceID.String())
	sb.WriteByte('-')
	sb.WriteString(tp.SpanID.String())
	sb.WriteByte('-')
	const hexDigits = "0123456789abcdef"
	sb.WriteByte(hexDigits[tp.Flags>>4])
	sb.WriteByte(hexDigits[tp.Flags&0xF])
	return sb.String()
}

// ParseTraceParent parses a W3C traceparent header. It accepts any
// version except the reserved ff, requires non-zero trace and span ids,
// and reports ok=false (zero TraceParent) on malformed input — the
// serving layer then starts a fresh trace instead of failing the request.
func ParseTraceParent(h string) (TraceParent, bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return TraceParent{}, false
	}
	ver, err := hex.DecodeString(parts[0])
	if err != nil || len(ver) != 1 || ver[0] == 0xFF {
		return TraceParent{}, false
	}
	var tp TraceParent
	tb, err := hex.DecodeString(parts[1])
	if err != nil || len(tb) != len(tp.TraceID) {
		return TraceParent{}, false
	}
	copy(tp.TraceID[:], tb)
	sb, err := hex.DecodeString(parts[2])
	if err != nil || len(sb) != len(tp.SpanID) {
		return TraceParent{}, false
	}
	copy(tp.SpanID[:], sb)
	fb, err := hex.DecodeString(parts[3])
	if err != nil || len(fb) != 1 {
		return TraceParent{}, false
	}
	tp.Flags = fb[0]
	if !tp.Valid() {
		return TraceParent{}, false
	}
	return tp, true
}

// JobTrace is one job's span tree: a root span opened at acceptance and
// a hierarchy of child spans (queue wait, pool dispatch, the placement
// run, per-phase aggregates) under it. Unlike Spans — which aggregates
// durations by name — a JobTrace keeps the tree and the identifiers, so
// a cross-replica collector can stitch job traces via traceparent
// propagation. All methods are safe for concurrent use and on a nil
// receiver (a nil *JobTrace records nothing).
type JobTrace struct {
	// Now injects the clock for span timestamps. Set it (if at all)
	// immediately after NewJobTrace, before the trace is shared; nil
	// falls back to the wall clock.
	Now func() time.Time

	mu      sync.Mutex
	traceID TraceID
	remote  SpanID // parent span on another node (zero when local root)
	flags   byte
	root    *SpanRec
}

// SpanRec is one node of a JobTrace. Exported methods are safe on nil.
type SpanRec struct {
	t        *JobTrace
	name     string
	id       SpanID
	start    time.Time
	end      time.Time // zero while open
	attrs    map[string]string
	children []*SpanRec
}

// NewJobTrace opens a trace whose root span is named name. When parent is
// valid the trace continues the caller's trace id with the caller's span
// as the root's parent; otherwise a fresh trace id is drawn.
func NewJobTrace(name string, parent TraceParent) *JobTrace {
	return NewJobTraceAt(name, parent, nil)
}

// NewJobTraceAt is NewJobTrace with an injected clock, applied from the
// root span's start onward; nil clock falls back to the wall clock.
func NewJobTraceAt(name string, parent TraceParent, clock func() time.Time) *JobTrace {
	t := &JobTrace{Now: clock, flags: 0x01}
	if parent.Valid() {
		t.traceID = parent.TraceID
		t.remote = parent.SpanID
		t.flags = parent.Flags | 0x01
	} else {
		t.traceID = NewTraceID()
	}
	t.root = &SpanRec{t: t, name: name, id: NewSpanID(), start: t.now()}
	return t
}

func (t *JobTrace) now() time.Time {
	if t != nil && t.Now != nil {
		return t.Now()
	}
	return time.Now()
}

// ID returns the trace id in hex ("" on nil).
func (t *JobTrace) ID() string {
	if t == nil {
		return ""
	}
	return t.traceID.String()
}

// Root returns the root span (nil on a nil trace).
func (t *JobTrace) Root() *SpanRec {
	if t == nil {
		return nil
	}
	return t.root
}

// Child returns the traceparent to propagate to work downstream of the
// root span — the header a coordinator forwards to a kserved replica so
// the replica's job trace stitches under this one.
func (t *JobTrace) Child() TraceParent {
	if t == nil {
		return TraceParent{}
	}
	return TraceParent{TraceID: t.traceID, SpanID: t.root.id, Flags: t.flags}
}

// Start opens a child span under s. Safe on nil (returns nil, which is
// itself safe to use).
func (s *SpanRec) Start(name string) *SpanRec {
	if s == nil {
		return nil
	}
	c := &SpanRec{t: s.t, name: name, id: NewSpanID(), start: s.t.now()}
	s.t.mu.Lock()
	s.children = append(s.children, c)
	s.t.mu.Unlock()
	return c
}

// End closes the span at the trace clock's current time. Ending an
// already-ended span keeps the first end. Safe on nil.
func (s *SpanRec) End() {
	if s == nil {
		return
	}
	now := s.t.now()
	s.t.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.t.mu.Unlock()
}

// SetAttr attaches a key/value attribute to the span. Safe on nil.
func (s *SpanRec) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[k] = v
	s.t.mu.Unlock()
}

// RecordChild attaches an already-measured child span — a section timed
// externally (an aggregate phase total, the HTTP accept time) folded into
// the tree after the fact. Safe on nil (returns nil).
func (s *SpanRec) RecordChild(name string, start, end time.Time) *SpanRec {
	if s == nil {
		return nil
	}
	c := &SpanRec{t: s.t, name: name, id: NewSpanID(), start: start, end: end}
	s.t.mu.Lock()
	s.children = append(s.children, c)
	s.t.mu.Unlock()
	return c
}

// SpanTree is the JSON form of a JobTrace snapshot: the schema of
// GET /jobs/{id}/trace and of flight-recorder bundles.
type SpanTree struct {
	TraceID string `json:"trace_id"`
	// RemoteParent is the span id of the upstream caller's span when the
	// trace was started from a propagated traceparent.
	RemoteParent string   `json:"remote_parent_span_id,omitempty"`
	Flags        byte     `json:"flags"`
	Root         SpanJSON `json:"root"`
}

// SpanJSON is one snapshotted span.
type SpanJSON struct {
	Name     string            `json:"name"`
	SpanID   string            `json:"span_id"`
	Start    time.Time         `json:"start"`
	DurNS    int64             `json:"dur_ns"` // 0 while the span is open
	Open     bool              `json:"open,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []SpanJSON        `json:"children,omitempty"`
}

// Snapshot copies the current span tree. Safe on nil (zero tree) and
// under concurrent span activity.
func (t *JobTrace) Snapshot() SpanTree {
	if t == nil {
		return SpanTree{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := SpanTree{TraceID: t.traceID.String(), Flags: t.flags, Root: snapshotSpan(t.root)}
	if !t.remote.IsZero() {
		st.RemoteParent = t.remote.String()
	}
	return st
}

// snapshotSpan copies one span and its subtree; t.mu held.
func snapshotSpan(s *SpanRec) SpanJSON {
	out := SpanJSON{Name: s.name, SpanID: s.id.String(), Start: s.start}
	if s.end.IsZero() {
		out.Open = true
	} else {
		out.DurNS = s.end.Sub(s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			out.Attrs[k] = v
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, snapshotSpan(c))
	}
	return out
}

// WriteJSON encodes the snapshot. Safe on nil (writes the zero tree).
func (t *JobTrace) WriteJSON(wr io.Writer) error {
	if t == nil {
		return json.NewEncoder(wr).Encode(SpanTree{})
	}
	return json.NewEncoder(wr).Encode(t.Snapshot())
}
