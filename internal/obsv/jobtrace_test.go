package obsv

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	const h = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tp, ok := ParseTraceParent(h)
	if !ok {
		t.Fatalf("ParseTraceParent(%q) rejected", h)
	}
	if tp.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id %s", tp.TraceID)
	}
	if tp.SpanID.String() != "b7ad6b7169203331" {
		t.Errorf("span id %s", tp.SpanID)
	}
	if tp.Flags != 0x01 {
		t.Errorf("flags %02x", tp.Flags)
	}
	if got := tp.String(); got != h {
		t.Errorf("String() = %q, want %q", got, h)
	}
}

func TestTraceParentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",      // missing flags
		"zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // bad version hex
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // reserved version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",   // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",   // zero span id
		"00-0af7651916cd43dd8448eb211c80319cff-b7ad6b7169203331-01", // long trace id
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0102", // long flags
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01",   // non-hex
	}
	for _, h := range bad {
		if _, ok := ParseTraceParent(h); ok {
			t.Errorf("ParseTraceParent(%q) accepted, want reject", h)
		}
	}
}

func TestJobTraceTree(t *testing.T) {
	// Deterministic clock: each read advances 1ms.
	var now time.Time = time.Unix(1700000000, 0)
	clock := func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}
	parent, _ := ParseTraceParent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	tr := NewJobTraceAt("job", parent, clock)

	if tr.ID() != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id %s did not propagate from the parent", tr.ID())
	}
	root := tr.Root()
	root.SetAttr("k", "v")
	q := root.Start("queue")
	q.End()
	run := root.Start("run")
	run.RecordChild("phase/gather", now, now.Add(3*time.Millisecond))
	run.End()
	root.End()

	st := tr.Snapshot()
	if st.TraceID != tr.ID() || st.RemoteParent != "b7ad6b7169203331" {
		t.Errorf("snapshot ids: %+v", st)
	}
	if st.Root.Name != "job" || st.Root.Attrs["k"] != "v" || st.Root.Open {
		t.Errorf("root: %+v", st.Root)
	}
	if len(st.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(st.Root.Children))
	}
	if st.Root.Children[0].Name != "queue" || st.Root.Children[1].Name != "run" {
		t.Errorf("child order: %s, %s", st.Root.Children[0].Name, st.Root.Children[1].Name)
	}
	if d := st.Root.Children[0].DurNS; d != int64(time.Millisecond) {
		t.Errorf("queue span duration %d, want 1ms", d)
	}
	runSpan := st.Root.Children[1]
	if len(runSpan.Children) != 1 || runSpan.Children[0].Name != "phase/gather" ||
		runSpan.Children[0].DurNS != int64(3*time.Millisecond) {
		t.Errorf("run children: %+v", runSpan.Children)
	}
	// End() keeps the first end.
	root.End()
	if again := tr.Snapshot(); again.Root.DurNS != st.Root.DurNS {
		t.Errorf("second End moved the root end: %d vs %d", again.Root.DurNS, st.Root.DurNS)
	}

	// Child() propagates the trace with the root as parent.
	child := tr.Child()
	if child.TraceID != parent.TraceID || child.SpanID.String() != st.Root.SpanID {
		t.Errorf("Child() = %+v", child)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded SpanTree
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v", err)
	}
	if decoded.TraceID != st.TraceID {
		t.Errorf("decoded trace id %s", decoded.TraceID)
	}
}

func TestJobTraceFreshWithoutParent(t *testing.T) {
	a := NewJobTrace("a", TraceParent{})
	b := NewJobTrace("b", TraceParent{})
	if a.ID() == "" || a.ID() == b.ID() {
		t.Errorf("fresh traces collided: %s vs %s", a.ID(), b.ID())
	}
	if st := a.Snapshot(); st.RemoteParent != "" {
		t.Errorf("fresh trace has remote parent %s", st.RemoteParent)
	}
	if !a.Snapshot().Root.Open {
		t.Error("unended root should snapshot as open")
	}
}

func TestJobTraceNilSafety(t *testing.T) {
	var tr *JobTrace
	if tr.ID() != "" || tr.Root() != nil {
		t.Error("nil trace not inert")
	}
	tr.Child()
	if st := tr.Snapshot(); st.TraceID != "" {
		t.Errorf("nil snapshot: %+v", st)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s *SpanRec
	s.End()
	s.SetAttr("k", "v")
	if c := s.Start("x"); c != nil {
		t.Error("nil span Start returned non-nil")
	}
	if c := s.RecordChild("x", time.Time{}, time.Time{}); c != nil {
		t.Error("nil span RecordChild returned non-nil")
	}
}

// TestJobTraceConcurrent hammers one trace from many goroutines; run
// with -race this is the data-race check for the span tree.
func TestJobTraceConcurrent(t *testing.T) {
	tr := NewJobTrace("job", TraceParent{})
	root := tr.Root()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				sp := root.Start("w")
				sp.SetAttr("i", "x")
				sp.End()
				_ = tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Snapshot().Root.Children); got != 800 {
		t.Errorf("children = %d, want 800", got)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	r := NewFlightRecorder(2)
	for i, reason := range []string{"a", "b", "c"} {
		r.Record(FlightEntry{Reason: reason, JobID: string(rune('0' + i))})
	}
	if r.Len() != 2 || r.Dropped() != 1 {
		t.Fatalf("len %d dropped %d, want 2/1", r.Len(), r.Dropped())
	}
	snap := r.Snapshot()
	if snap[0].Reason != "b" || snap[1].Reason != "c" {
		t.Errorf("snapshot order: %s, %s (want oldest first)", snap[0].Reason, snap[1].Reason)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Capacity int `json:"capacity"`
		Dropped  int `json:"dropped"`
		Entries  []struct {
			Reason string `json:"reason"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump does not parse: %v", err)
	}
	if dump.Capacity != 2 || dump.Dropped != 1 || len(dump.Entries) != 2 {
		t.Errorf("dump: %+v", dump)
	}

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
	if rec.Code != 200 || rec.Header().Get("Content-Type") != "application/json" {
		t.Errorf("ServeHTTP: %d %s", rec.Code, rec.Header().Get("Content-Type"))
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var r *FlightRecorder
	r.Record(FlightEntry{Reason: "x"})
	if r.Len() != 0 || r.Dropped() != 0 || r.Snapshot() != nil {
		t.Error("nil recorder not inert")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 404 {
		t.Errorf("nil recorder ServeHTTP = %d, want 404", rec.Code)
	}
	if p := r.CaptureCPUProfile(time.Millisecond); p != nil {
		t.Error("nil recorder captured a profile")
	}
}

func TestFlightRecorderCPUProfile(t *testing.T) {
	r := NewFlightRecorder(1)
	p := r.CaptureCPUProfile(10 * time.Millisecond)
	if len(p) == 0 {
		t.Skip("CPU profiling unavailable (another profiler active)")
	}
	if r.CaptureCPUProfile(0) != nil {
		t.Error("zero-duration capture should return nil")
	}
}
