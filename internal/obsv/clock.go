package obsv

import "time"

// Stopwatch is the sanctioned wall-clock reader for the algorithm
// packages. kvet's noclock analyzer forbids direct time.Now/time.Since
// there, so clock access stays concentrated in this package: runtime
// measurement routes through one type that a future fake clock (or a
// build that strips timing entirely) can intercept.
type Stopwatch struct{ t0 time.Time }

// StartTimer reads the clock once and returns a running stopwatch.
// Restart by reassigning: w = obsv.StartTimer().
func StartTimer() Stopwatch { return Stopwatch{t0: time.Now()} }

// Elapsed returns the time since StartTimer. The zero Stopwatch reports
// time since the epoch — start it before reading it.
func (w Stopwatch) Elapsed() time.Duration { return time.Since(w.t0) }

// Time reads the clock and returns a closure that records the elapsed
// seconds into the histogram; use as `defer h.Time()()` or capture the
// closure and call it at the measurement point. On a nil receiver it
// returns an inert closure without reading the clock.
func (h *Histogram) Time() func() {
	if h == nil {
		return func() {}
	}
	w := StartTimer()
	return func() { h.Observe(w.Elapsed().Seconds()) }
}
