package obsv

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
)

// TraceWriter streams run-trace records as JSON Lines: one
// newline-terminated JSON object per record. Writes are serialized, so a
// single writer can collect records from concurrent runs. A nil
// *TraceWriter discards everything, letting callers thread an optional
// trace sink without branching.
type TraceWriter struct {
	mu  sync.Mutex
	buf *bufio.Writer
	c   io.Closer // non-nil when TraceWriter owns the underlying file
}

// NewTraceWriter wraps w in a buffered JSONL encoder. Call Close (or at
// least Flush) when done.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{buf: bufio.NewWriter(w)}
}

// OpenTrace creates (truncating) a JSONL trace file at path.
func OpenTrace(path string) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := NewTraceWriter(f)
	t.c = f
	return t, nil
}

// Write appends one record as a JSON line. Safe on nil (no-op).
func (t *TraceWriter) Write(rec any) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	enc := json.NewEncoder(t.buf) // Encode appends the trailing newline
	//lint:ignore lockheld the mutex exists to serialize writers into the shared buffer; the write lands in memory, the file only sees Flush
	return enc.Encode(rec)
}

// Flush pushes buffered records to the underlying writer. Safe on nil.
func (t *TraceWriter) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	//lint:ignore lockheld Flush must exclude concurrent Write or records interleave mid-line; trace I/O stalling a tracer is the accepted cost
	return t.buf.Flush()
}

// Close flushes and, when the writer owns the underlying file, closes it.
// Safe on nil.
func (t *TraceWriter) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	//lint:ignore lockheld final flush under the writer lock: Close must win against any straggling Write before the file goes away
	err := t.buf.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
