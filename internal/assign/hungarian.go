// Package assign solves the linear assignment problem with the Hungarian
// algorithm (Jonker-style O(n³) shortest augmenting paths). The detailed
// placer uses it for independent-set matching: reassigning a group of
// interchangeable cells to their candidate positions at exactly minimal
// total cost, the optimization core of network-flow final placers like
// Domino [17].
package assign

import "math"

// Solve returns, for the square cost matrix cost[i][j] (cost of assigning
// row i to column j), the column assigned to each row, minimizing the total
// cost. All rows are assigned. Infinite costs mark forbidden pairs; if no
// perfect finite matching exists the result contains -1 entries.
func Solve(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	// Jonker–Volgenant style: potentials u, v; matchCol[j] = row matched
	// to column j. 1-indexed internals with a virtual column 0.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	matchCol := make([]int, n+1)
	for j := range matchCol {
		matchCol[j] = 0
	}
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		matchCol[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := matchCol[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 < 0 || math.IsInf(delta, 1) {
				// No augmenting path with finite cost: the remaining rows
				// cannot be assigned.
				return partialResult(matchCol, n)
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[matchCol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchCol[j0] == 0 {
				break
			}
		}
		// Augment along the path.
		for j0 != 0 {
			j1 := way[j0]
			matchCol[j0] = matchCol[j1]
			j0 = j1
		}
	}
	return partialResult(matchCol, n)
}

func partialResult(matchCol []int, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for j := 1; j <= n; j++ {
		if r := matchCol[j]; r >= 1 && r <= n {
			out[r-1] = j - 1
		}
	}
	return out
}

// Cost sums the matrix cost of an assignment (math.Inf(1) if any row is
// unassigned or forbidden).
func Cost(cost [][]float64, assignment []int) float64 {
	var s float64
	for i, j := range assignment {
		if j < 0 {
			return math.Inf(1)
		}
		s += cost[i][j]
	}
	return s
}
