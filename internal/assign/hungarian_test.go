package assign

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveTrivial(t *testing.T) {
	got := Solve([][]float64{{5}})
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("1x1 = %v", got)
	}
	if Solve(nil) != nil {
		t.Error("empty should be nil")
	}
}

func TestSolveKnown(t *testing.T) {
	// Classic example: optimal assignment (0->1, 1->0, 2->2) = 2+3+2 = 7?
	// Verify against brute force below instead of hand numbers.
	cost := [][]float64{
		{4, 2, 8},
		{3, 7, 6},
		{9, 5, 2},
	}
	got := Solve(cost)
	want := bruteForce(cost)
	if math.Abs(Cost(cost, got)-want) > 1e-9 {
		t.Errorf("cost %v, optimal %v (assignment %v)", Cost(cost, got), want, got)
	}
}

func TestSolveIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		cost := randMatrix(rng, n)
		got := Solve(cost)
		seen := make([]bool, n)
		for _, j := range got {
			if j < 0 || j >= n || seen[j] {
				t.Fatalf("not a permutation: %v", got)
			}
			seen[j] = true
		}
	}
}

func TestSolveMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		cost := randMatrix(rng, n)
		got := Cost(cost, Solve(cost))
		want := bruteForce(cost)
		return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestForbiddenPairs(t *testing.T) {
	inf := math.Inf(1)
	// Only one finite perfect matching: 0->1, 1->0.
	cost := [][]float64{
		{inf, 3},
		{2, inf},
	}
	got := Solve(cost)
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("forbidden-pair assignment = %v", got)
	}
	// No finite perfect matching at all.
	bad := [][]float64{
		{inf, inf},
		{2, 1},
	}
	got = Solve(bad)
	if got[0] != -1 && !math.IsInf(Cost(bad, got), 1) {
		t.Errorf("infeasible should surface: %v", got)
	}
}

func randMatrix(rng *rand.Rand, n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = rng.Float64() * 10
		}
	}
	return m
}

func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			s := 0.0
			for i, j := range perm {
				s += cost[i][j]
			}
			if s < best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}
