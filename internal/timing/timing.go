// Package timing implements the paper's timing machinery (§5): Elmore net
// delays on the half-perimeter bounding box, longest-path analysis over the
// combinational graph, the criticality-driven net weighting scheme, and the
// two-phase "meeting timing requirements" flow with its timing/area
// tradeoff curve.
package timing

import (
	"math"

	"repro/internal/netlist"
)

// Params carries the electrical and structural constants of the analysis.
type Params struct {
	// CapPerMeter is the wire capacitance (paper: 242 pF/m).
	CapPerMeter float64
	// ResPerMeter is the wire resistance (paper: 25.5 kΩ/m).
	ResPerMeter float64
	// UnitMeters converts layout units to meters. The default of 20 µm per
	// unit puts the synthetic suite's chip spans in the centimeter range
	// of the paper's era, making wire delay comparable to gate delay.
	UnitMeters float64
	// DefaultPinCap is the sink capacitance assumed for pins that do not
	// specify one (farads).
	DefaultPinCap float64
	// MaxDegree excludes nets with more pins from the analysis; the paper
	// disregards nets with more than 60 pins (§6.2).
	MaxDegree int
}

// DefaultParams returns the paper's electrical constants.
func DefaultParams() Params {
	return Params{
		CapPerMeter:   242e-12,
		ResPerMeter:   25.5e3,
		UnitMeters:    20e-6,
		DefaultPinCap: 5e-15,
		MaxDegree:     60,
	}
}

// Calibrated returns DefaultParams with UnitMeters chosen so the chip spans
// a fixed physical size (W+H ≈ 6 cm) regardless of the synthetic circuit's
// cell count. Real dies are centimeter-scale whatever their gate count;
// without this, small circuits have negligible wire delay and timing-driven
// placement has no optimization potential to exploit (§6.2's measure would
// divide by ~zero).
func Calibrated(nl *netlist.Netlist) Params {
	p := DefaultParams()
	span := nl.Region.W() + nl.Region.H()
	if span > 0 {
		p.UnitMeters = 0.06 / span
	}
	return p
}

func (p *Params) setDefaults() {
	d := DefaultParams()
	if p.CapPerMeter <= 0 {
		p.CapPerMeter = d.CapPerMeter
	}
	if p.ResPerMeter <= 0 {
		p.ResPerMeter = d.ResPerMeter
	}
	if p.UnitMeters <= 0 {
		p.UnitMeters = d.UnitMeters
	}
	if p.DefaultPinCap <= 0 {
		p.DefaultPinCap = d.DefaultPinCap
	}
	if p.MaxDegree <= 0 {
		p.MaxDegree = d.MaxDegree
	}
}

// NetDelay returns the Elmore delay of net ni at the current placement:
// R·L · (C·L/2 + ΣCsink), with L the half-perimeter of the net's bounding
// box (§5: "Elmore delay model based on the half perimeter of the enclosing
// rectangle"). Passing zeroLength computes the lower-bound variant (L = 0).
func NetDelay(nl *netlist.Netlist, ni int, p Params, zeroLength bool) float64 {
	p.setDefaults()
	var length float64
	if !zeroLength {
		length = nl.NetHPWL(ni) * p.UnitMeters
	}
	var sinkCap float64
	for _, pin := range nl.Nets[ni].Pins {
		if pin.Dir == netlist.Output {
			continue
		}
		if pin.Cap > 0 {
			sinkCap += pin.Cap
		} else {
			sinkCap += p.DefaultPinCap
		}
	}
	r := p.ResPerMeter * length
	c := p.CapPerMeter * length
	return r * (c/2 + sinkCap)
}

// Report is the result of one timing analysis.
type Report struct {
	// MaxDelay is the longest path delay in seconds.
	MaxDelay float64
	// NetSlack[i] is the worst slack over net i's sinks relative to
	// MaxDelay as the required time; excluded nets have +Inf.
	NetSlack []float64
	// CriticalPath lists the cell indices of one longest path, source
	// first.
	CriticalPath []int
	// Excluded counts nets skipped by the degree filter.
	Excluded int
}

// Analyzer performs longest-path analysis over the combinational graph. A
// cell is a path endpoint when it is fixed (a pad) or sequential; nets with
// more than MaxDegree pins and driverless nets carry no timing arcs.
type Analyzer struct {
	nl     *netlist.Netlist
	params Params

	order    []int // topological order of cells (cycle-broken)
	netOK    []bool
	fanout   [][]arc // per cell: outgoing arcs
	indegree []int
}

type arc struct {
	net  int
	sink int
}

// NewAnalyzer builds the timing graph structure; net delays are evaluated
// lazily per Analyze call so the placement can change between calls.
func NewAnalyzer(nl *netlist.Netlist, params Params) *Analyzer {
	params.setDefaults()
	a := &Analyzer{nl: nl, params: params}
	a.build()
	return a
}

func (a *Analyzer) build() {
	nl := a.nl
	n := len(nl.Cells)
	a.netOK = make([]bool, len(nl.Nets))
	a.fanout = make([][]arc, n)
	a.indegree = make([]int, n)
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		if net.Degree() > a.params.MaxDegree {
			continue
		}
		di := net.Driver()
		if di < 0 {
			continue
		}
		a.netOK[ni] = true
		driver := net.Pins[di].Cell
		if isEndpoint(&nl.Cells[driver]) {
			// Arcs still leave the endpoint (it launches paths) but none
			// enter it through this net.
		}
		for pi, pin := range net.Pins {
			if pi == di || pin.Cell == driver {
				continue
			}
			if isEndpoint(&nl.Cells[pin.Cell]) {
				// Path terminates here; the arc exists for delay
				// propagation into the endpoint but not beyond, which the
				// traversal handles by not relaxing out of endpoints.
			}
			a.fanout[driver] = append(a.fanout[driver], arc{net: ni, sink: pin.Cell})
			a.indegree[pin.Cell]++
		}
	}
	a.topoSort()
}

func isEndpoint(c *netlist.Cell) bool { return c.Fixed || c.Seq }

// topoSort orders cells so that combinational arcs go forward; arcs that
// would close a cycle are effectively ignored by the relaxation (synthetic
// netlists can contain combinational loops, which real designs avoid).
func (a *Analyzer) topoSort() {
	nl := a.nl
	n := len(nl.Cells)
	indeg := make([]int, n)
	// Endpoints absorb paths: arcs out of an endpoint launch new paths, so
	// for ordering purposes arcs into endpoints don't constrain them.
	for ci := range nl.Cells {
		if isEndpoint(&nl.Cells[ci]) {
			continue
		}
		indeg[ci] = a.indegree[ci]
	}
	queue := make([]int, 0, n)
	for ci := 0; ci < n; ci++ {
		if indeg[ci] == 0 {
			queue = append(queue, ci)
		}
	}
	a.order = a.order[:0]
	seen := make([]bool, n)
	for len(queue) > 0 {
		ci := queue[0]
		queue = queue[1:]
		seen[ci] = true
		a.order = append(a.order, ci)
		if isEndpoint(&nl.Cells[ci]) && a.indegree[ci] > 0 {
			// Arcs out of endpoints start fresh paths, already queued.
		}
		for _, e := range a.fanout[ci] {
			if isEndpoint(&nl.Cells[e.sink]) {
				continue
			}
			indeg[e.sink]--
			if indeg[e.sink] == 0 && !seen[e.sink] {
				queue = append(queue, e.sink)
			}
		}
	}
	// Any cells left sit on combinational cycles: append them in index
	// order; back-arcs into them are then ignored by the forward pass.
	for ci := 0; ci < n; ci++ {
		if !seen[ci] {
			a.order = append(a.order, ci)
		}
	}
	// Endpoints that never appeared (no incoming combinational arcs, no
	// outgoing) are included above via indeg==0, so order covers all cells.
}

// Analyze runs a forward longest-path pass and a backward required-time
// pass at the current placement.
func (a *Analyzer) Analyze() Report {
	nl := a.nl
	n := len(nl.Cells)
	rep := Report{NetSlack: make([]float64, len(nl.Nets))}
	for ni := range rep.NetSlack {
		rep.NetSlack[ni] = math.Inf(1)
		if a.netOK[ni] {
			continue
		}
		rep.Excluded++
	}

	// Net delays at the current placement.
	delay := make([]float64, len(nl.Nets))
	for ni := range nl.Nets {
		if a.netOK[ni] {
			delay[ni] = NetDelay(nl, ni, a.params, false)
		}
	}

	// Forward pass: arrival[c] is the latest arrival at the *output* of c.
	arrival := make([]float64, n)
	pred := make([]int, n)
	for i := range pred {
		pred[i] = -1
	}
	for ci := range nl.Cells {
		arrival[ci] = nl.Cells[ci].Delay
	}
	pos := make([]int, n)
	for i, ci := range a.order {
		pos[ci] = i
	}
	for _, ci := range a.order {
		for _, e := range a.fanout[ci] {
			if isEndpoint(&nl.Cells[e.sink]) {
				// Arrival into an endpoint terminates the path; track it
				// via a virtual arrival for MaxDelay below.
				at := arrival[ci] + delay[e.net]
				if at > rep.MaxDelay {
					rep.MaxDelay = at
					rep.CriticalPath = tracePath(pred, ci)
					rep.CriticalPath = append(rep.CriticalPath, e.sink)
				}
				continue
			}
			if pos[e.sink] <= pos[ci] {
				continue // back-arc on a broken cycle
			}
			at := arrival[ci] + delay[e.net] + nl.Cells[e.sink].Delay
			if at > arrival[e.sink] {
				arrival[e.sink] = at
				pred[e.sink] = ci
			}
		}
	}
	// Combinational outputs with no endpoint sink still bound the clock.
	for ci := range nl.Cells {
		if arrival[ci] > rep.MaxDelay {
			rep.MaxDelay = arrival[ci]
			rep.CriticalPath = tracePath(pred, ci)
		}
	}

	// Backward pass: required[c] relative to MaxDelay at every endpoint.
	required := make([]float64, n)
	for i := range required {
		required[i] = math.Inf(1)
	}
	for i := len(a.order) - 1; i >= 0; i-- {
		ci := a.order[i]
		for _, e := range a.fanout[ci] {
			var reqHere float64
			if isEndpoint(&nl.Cells[e.sink]) {
				reqHere = rep.MaxDelay - delay[e.net]
			} else {
				if pos[e.sink] <= pos[ci] {
					continue
				}
				reqHere = required[e.sink] - nl.Cells[e.sink].Delay - delay[e.net]
			}
			if reqHere < required[ci] {
				required[ci] = reqHere
			}
			// Slack of the net: how much its delay could grow before the
			// worst path through it misses MaxDelay.
			slack := reqHere - arrival[ci]
			if slack < rep.NetSlack[e.net] {
				rep.NetSlack[e.net] = slack
			}
		}
	}
	return rep
}

func tracePath(pred []int, end int) []int {
	var rev []int
	for c := end; c >= 0; c = pred[c] {
		rev = append(rev, c)
		if len(rev) > len(pred) {
			break // defensive: corrupted pred chain
		}
	}
	out := make([]int, len(rev))
	for i, c := range rev {
		out[len(rev)-1-i] = c
	}
	return out
}

// LowerBound returns the longest path with all wire lengths set to zero —
// the paper's §6.2 bound: reachable only if every net on the longest path
// had zero length.
func LowerBound(nl *netlist.Netlist, params Params) float64 {
	params.setDefaults()
	return lowerBoundExact(NewAnalyzer(nl, params))
}

func lowerBoundExact(a *Analyzer) float64 {
	nl := a.nl
	n := len(nl.Cells)
	arrival := make([]float64, n)
	for ci := range nl.Cells {
		arrival[ci] = nl.Cells[ci].Delay
	}
	pos := make([]int, n)
	for i, ci := range a.order {
		pos[ci] = i
	}
	var maxDelay float64
	for _, ci := range a.order {
		for _, e := range a.fanout[ci] {
			if isEndpoint(&nl.Cells[e.sink]) {
				if arrival[ci] > maxDelay {
					maxDelay = arrival[ci]
				}
				continue
			}
			if pos[e.sink] <= pos[ci] {
				continue
			}
			at := arrival[ci] + nl.Cells[e.sink].Delay
			if at > arrival[e.sink] {
				arrival[e.sink] = at
			}
		}
	}
	for ci := range nl.Cells {
		if arrival[ci] > maxDelay {
			maxDelay = arrival[ci]
		}
	}
	return maxDelay
}
