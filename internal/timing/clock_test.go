package timing

import (
	"math"
	"testing"
)

func TestAgainstClockMet(t *testing.T) {
	rep := Report{MaxDelay: 5e-9, NetSlack: []float64{0, 1e-9, math.Inf(1)}}
	s := AgainstClock(rep, 6e-9)
	if !s.Met || s.WNS != 0 || s.TNS != 0 || s.FailingNets != 0 {
		t.Errorf("met clock summary = %+v", s)
	}
}

func TestAgainstClockViolated(t *testing.T) {
	rep := Report{MaxDelay: 5e-9, NetSlack: []float64{0, 0.5e-9, 3e-9, math.Inf(1)}}
	s := AgainstClock(rep, 4e-9)
	if s.Met {
		t.Fatal("violated clock reported met")
	}
	if math.Abs(s.WNS-(-1e-9)) > 1e-15 {
		t.Errorf("WNS = %v, want -1ns", s.WNS)
	}
	// Period slacks: 0-1= -1, 0.5-1= -0.5, 3-1= +2 -> TNS = -1.5ns over 2 nets.
	if math.Abs(s.TNS-(-1.5e-9)) > 1e-15 {
		t.Errorf("TNS = %v, want -1.5ns", s.TNS)
	}
	if s.FailingNets != 2 {
		t.Errorf("failing nets = %d", s.FailingNets)
	}
}

func TestMinPeriod(t *testing.T) {
	rep := Report{MaxDelay: 7e-9}
	if MinPeriod(rep) != 7e-9 {
		t.Error("MinPeriod broken")
	}
	// A placement analyzed at MinPeriod always meets it.
	s := AgainstClock(rep, MinPeriod(rep))
	if !s.Met {
		t.Error("MinPeriod not met by itself")
	}
}

func TestAgainstClockOnRealCircuit(t *testing.T) {
	nl := pipeline(t)
	p := DefaultParams()
	rep := NewAnalyzer(nl, p).Analyze()
	tight := AgainstClock(rep, rep.MaxDelay*0.8)
	loose := AgainstClock(rep, rep.MaxDelay*1.2)
	if tight.Met || !loose.Met {
		t.Errorf("met flags wrong: tight %v loose %v", tight.Met, loose.Met)
	}
	if tight.TNS >= 0 || tight.FailingNets == 0 {
		t.Errorf("tight clock shows no violations: %+v", tight)
	}
}
