package timing

import "math"

// ClockSummary evaluates a report against a clock period: the standard
// worst-negative-slack / total-negative-slack figures of merit.
type ClockSummary struct {
	Period float64
	// WNS is the worst negative slack: min(period − maxDelay, 0)... in the
	// common sign convention, the most negative endpoint slack (0 when the
	// design meets the clock).
	WNS float64
	// TNS sums every net's negative slack against the period (0 when the
	// design meets the clock).
	TNS float64
	// FailingNets counts nets whose period slack is negative.
	FailingNets int
	// Met reports whether the longest path fits the period.
	Met bool
}

// AgainstClock evaluates rep against a clock period in seconds. The
// report's slacks are relative to its own MaxDelay; re-anchoring them to
// the period is a constant shift of period − MaxDelay.
func AgainstClock(rep Report, period float64) ClockSummary {
	shift := period - rep.MaxDelay
	out := ClockSummary{Period: period, Met: rep.MaxDelay <= period}
	if !out.Met {
		out.WNS = shift // negative
	}
	for _, s := range rep.NetSlack {
		if math.IsInf(s, 1) {
			continue
		}
		if ps := s + shift; ps < 0 {
			out.TNS += ps
			out.FailingNets++
		}
	}
	return out
}

// MinPeriod returns the smallest clock period the current placement
// supports — simply the longest path, exposed for symmetry with
// AgainstClock.
func MinPeriod(rep Report) float64 { return rep.MaxDelay }
