package timing

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/netlist"
)

// PathElement is one hop of a reported timing path.
type PathElement struct {
	Cell      int
	Name      string
	CellDelay float64 // intrinsic delay of the cell (s)
	NetDelay  float64 // wire delay into the *next* element (s; 0 for the last)
	Arrival   float64 // cumulative arrival at the cell's output (s)
}

// CriticalPathDetail expands the report's critical path into named hops
// with per-stage delays, the information a designer reads off a timing
// report.
func CriticalPathDetail(nl *netlist.Netlist, params Params, rep Report) []PathElement {
	params.setDefaults()
	path := rep.CriticalPath
	if len(path) == 0 {
		return nil
	}
	// Index nets by (driver, sink) over the path hops.
	netBetween := func(a, b int) int {
		for ni := range nl.Nets {
			net := &nl.Nets[ni]
			if net.Degree() > params.MaxDegree {
				continue
			}
			di := net.Driver()
			if di < 0 || net.Pins[di].Cell != a {
				continue
			}
			for _, p := range net.Pins {
				if p.Cell == b {
					return ni
				}
			}
		}
		return -1
	}
	out := make([]PathElement, 0, len(path))
	arrival := 0.0
	for i, ci := range path {
		el := PathElement{
			Cell:      ci,
			Name:      nl.Cells[ci].Name,
			CellDelay: nl.Cells[ci].Delay,
		}
		arrival += el.CellDelay
		if i+1 < len(path) {
			if ni := netBetween(ci, path[i+1]); ni >= 0 {
				el.NetDelay = NetDelay(nl, ni, params, false)
				arrival += el.NetDelay
			}
		}
		el.Arrival = arrival
		out = append(out, el)
	}
	return out
}

// SlackHistogram buckets net slacks into n bins between the worst finite
// slack and the requirement margin; excluded (infinite-slack) nets are
// not counted. Returns bin edges (n+1) and counts (n).
func SlackHistogram(rep Report, n int) (edges []float64, counts []int) {
	if n < 1 {
		n = 10
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range rep.NetSlack {
		if math.IsInf(s, 1) {
			continue
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if math.IsInf(lo, 1) {
		return nil, nil
	}
	if hi <= lo {
		hi = lo + 1e-12
	}
	edges = make([]float64, n+1)
	for i := range edges {
		edges[i] = lo + float64(i)*(hi-lo)/float64(n)
	}
	counts = make([]int, n)
	for _, s := range rep.NetSlack {
		if math.IsInf(s, 1) {
			continue
		}
		k := int(float64(n) * (s - lo) / (hi - lo))
		if k >= n {
			k = n - 1
		}
		counts[k]++
	}
	return edges, counts
}

// WorstNets returns the indices of the n smallest-slack nets, ascending by
// slack.
func WorstNets(rep Report, n int) []int {
	type ns struct {
		net   int
		slack float64
	}
	all := make([]ns, 0, len(rep.NetSlack))
	for ni, s := range rep.NetSlack {
		if !math.IsInf(s, 1) {
			all = append(all, ns{ni, s})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].slack < all[b].slack })
	if n > len(all) {
		n = len(all)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].net
	}
	return out
}

// WriteReport renders a human-readable timing report: summary, the
// critical path hop by hop, and the slack histogram.
func WriteReport(w io.Writer, nl *netlist.Netlist, params Params, rep Report) {
	params.setDefaults()
	fmt.Fprintf(w, "Timing report — longest path %.3f ns (%d nets excluded by degree filter)\n",
		rep.MaxDelay*1e9, rep.Excluded)

	fmt.Fprintln(w, "\nCritical path:")
	fmt.Fprintf(w, "  %-16s %10s %10s %10s\n", "cell", "gate[ns]", "net[ns]", "arrive[ns]")
	for _, el := range CriticalPathDetail(nl, params, rep) {
		name := el.Name
		if name == "" {
			name = fmt.Sprintf("cell%d", el.Cell)
		}
		fmt.Fprintf(w, "  %-16s %10.3f %10.3f %10.3f\n",
			name, el.CellDelay*1e9, el.NetDelay*1e9, el.Arrival*1e9)
	}

	edges, counts := SlackHistogram(rep, 8)
	if len(counts) > 0 {
		fmt.Fprintln(w, "\nNet slack histogram:")
		for i, c := range counts {
			fmt.Fprintf(w, "  [%8.3f, %8.3f) ns: %d\n", edges[i]*1e9, edges[i+1]*1e9, c)
		}
	}
}
