package timing

import (
	"math"

	"repro/internal/netlist"
	"repro/internal/place"
)

// DrivenResult reports a timing-driven placement run.
type DrivenResult struct {
	Place      place.Result
	Before     float64 // longest path before optimization (s)
	After      float64 // longest path at the final placement (s)
	LowerBound float64 // zero-wire-length bound (s)
	Analyses   int
}

// Exploitation returns how much of the optimization potential was used:
// (before−after) / (before−lowerBound), the paper's §6.2 quality measure
// comparing methods across different timing models.
func (r DrivenResult) Exploitation() float64 {
	pot := r.Before - r.LowerBound
	if pot <= 0 {
		return 0
	}
	return (r.Before - r.After) / pot
}

// PlaceDriven runs timing-driven global placement: before every placement
// transformation a longest-path analysis updates net criticalities and
// weights (§5, "Timing Optimization"). before should be the longest path of
// a non-timing-driven placement of the same circuit (pass 0 to measure it
// with a plain run first).
func PlaceDriven(nl *netlist.Netlist, cfg place.Config, params Params, before float64) (DrivenResult, error) {
	params.setDefaults()
	if before <= 0 {
		plain := nl.Clone()
		if _, err := place.Global(plain, cfg); err != nil {
			return DrivenResult{}, err
		}
		before = NewAnalyzer(plain, params).Analyze().MaxDelay
	}

	analyzer := NewAnalyzer(nl, params)
	weighter := NewWeighter(nl)
	analyses := 0
	userHook := cfg.BeforeTransform
	spans := cfg.Spans // nil-safe: a nil *Spans records nothing
	cfg.BeforeTransform = func(iter int, p *place.Placer) {
		if userHook != nil {
			userHook(iter, p)
		}
		sp := spans.Start("timing/analyze")
		rep := analyzer.Analyze()
		sp.End()
		analyses++
		sp = spans.Start("timing/weight")
		weighter.Update(nl, rep)
		p.Pull(weighter.PullForces(nl))
		sp.End()
	}
	sp := spans.Start("timing/global")
	res, err := place.Global(nl, cfg)
	sp.End()
	if err != nil {
		return DrivenResult{}, err
	}

	// Polish phase: the spreading run has converged; keep adapting weights
	// and stepping while the longest path still falls ("even in late
	// stages the placement has the ability to change globally", §5).
	polish := cfg
	polish.KeepPlacement = true
	placer := place.New(nl, polish)
	if err := placer.Initialize(); err != nil {
		return DrivenResult{}, err
	}
	polishSpan := spans.Start("timing/polish")
	best := nl.Snapshot()
	bestDelay := analyzer.Analyze().MaxDelay
	sinceBest := 0
	for step := 0; step < 60 && sinceBest < 15; step++ {
		rep := analyzer.Analyze()
		analyses++
		weighter.Update(nl, rep)
		placer.Pull(weighter.PullForces(nl))
		if _, err := placer.Step(); err != nil && step == 0 {
			break
		}
		if d := analyzer.Analyze().MaxDelay; d < bestDelay {
			bestDelay = d
			best = nl.Snapshot()
			sinceBest = 0
		} else {
			sinceBest++
		}
	}
	nl.Restore(best)
	polishSpan.End()

	after := analyzer.Analyze().MaxDelay
	return DrivenResult{
		Place:      res,
		Before:     before,
		After:      after,
		LowerBound: LowerBound(nl, params),
		Analyses:   analyses,
	}, nil
}

// TradeoffPoint is one step of the timing/area tradeoff curve recorded
// while meeting a timing requirement.
type TradeoffPoint struct {
	Step     int
	HPWL     float64
	MaxDelay float64
}

// MeetResult reports a MeetRequirement run.
type MeetResult struct {
	// Met says whether the requirement was reached.
	Met bool
	// Final is the longest path of the returned placement.
	Final float64
	// HPWL is the wire length of the returned placement.
	HPWL float64
	// Curve is the recorded timing/area tradeoff, step by step.
	Curve []TradeoffPoint
	// Steps is the number of phase-2 placement transformations executed.
	Steps int
}

// MeetRequirement implements the paper's two-phase flow for meeting a
// timing requirement (§5): first a plain area-optimized placement, then
// net-weight-adapted placement transformations until the longest path —
// measured on the actual placement, so the result is guaranteed — drops
// under req. The full tradeoff curve is recorded. maxSteps bounds phase 2
// (0 means 200).
func MeetRequirement(nl *netlist.Netlist, cfg place.Config, params Params, req float64, maxSteps int) (MeetResult, error) {
	params.setDefaults()
	if maxSteps <= 0 {
		maxSteps = 200
	}
	// Phase 1: plain run until convergence.
	if _, err := place.Global(nl, cfg); err != nil {
		return MeetResult{}, err
	}
	analyzer := NewAnalyzer(nl, params)
	weighter := NewWeighter(nl)

	rep := analyzer.Analyze()
	out := MeetResult{
		Curve: []TradeoffPoint{{Step: 0, HPWL: nl.HPWL(), MaxDelay: rep.MaxDelay}},
		Final: rep.MaxDelay,
		HPWL:  nl.HPWL(),
	}
	if rep.MaxDelay <= req {
		out.Met = true
		return out, nil
	}

	// Phase 2: continue transformations with weight adaption, starting
	// from the converged placement.
	cfg.KeepPlacement = true
	placer := place.New(nl, cfg)
	if err := placer.Initialize(); err != nil {
		return out, err
	}
	best := nl.Snapshot()
	bestDelay := rep.MaxDelay
	sinceBest := 0
	for step := 1; step <= maxSteps && sinceBest < 30; step++ {
		weighter.Update(nl, rep)
		placer.Pull(weighter.PullForces(nl))
		if _, err := placer.Step(); err != nil && step == 1 {
			return out, err
		}
		rep = analyzer.Analyze()
		out.Steps = step
		out.Curve = append(out.Curve, TradeoffPoint{Step: step, HPWL: nl.HPWL(), MaxDelay: rep.MaxDelay})
		if rep.MaxDelay < bestDelay {
			bestDelay = rep.MaxDelay
			best = nl.Snapshot()
			sinceBest = 0
		} else {
			sinceBest++
		}
		if rep.MaxDelay <= req {
			out.Met = true
			out.Final = rep.MaxDelay
			out.HPWL = nl.HPWL()
			return out, nil
		}
	}
	// Phase 2 stalled above the requirement. Escalate: a full re-placement
	// with weight adaption before every transformation ("even in late
	// stages the placement has the ability to change globally", §5) can
	// restructure far more than perturbing the converged placement. The
	// result is still measured on the actual placement, so the guarantee
	// stands.
	cfg.KeepPlacement = false
	full := place.New(nl, cfg)
	if err := full.Initialize(); err == nil {
		maxIter := cfg.MaxIter
		if maxIter <= 0 {
			maxIter = 120
		}
		for step := 0; step < maxIter; step++ {
			rep = analyzer.Analyze()
			weighter.Update(nl, rep)
			full.Pull(weighter.PullForces(nl))
			stats, err := full.Step()
			if err != nil && step == 0 {
				break
			}
			rep = analyzer.Analyze()
			out.Steps++
			out.Curve = append(out.Curve, TradeoffPoint{Step: out.Steps, HPWL: nl.HPWL(), MaxDelay: rep.MaxDelay})
			if rep.MaxDelay < bestDelay && full.Done(stats) {
				bestDelay = rep.MaxDelay
				best = nl.Snapshot()
			}
			if rep.MaxDelay <= req && full.Done(stats) {
				out.Met = true
				out.Final = rep.MaxDelay
				out.HPWL = nl.HPWL()
				return out, nil
			}
		}
	}

	// Requirement not reachable: return the best placement seen.
	nl.Restore(best)
	out.Final = bestDelay
	out.HPWL = nl.HPWL()
	out.Met = bestDelay <= req || math.Abs(bestDelay-req) < 1e-15
	return out, nil
}
