package timing

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Weighter implements the paper's iterative net weighting (§5): each net
// carries a criticality c that halves every step and gains ½ when the net
// is among the CritFrac most critical nets; the net weight is multiplied by
// (1 + c) each step. The geometric memory suppresses weight oscillation.
type Weighter struct {
	// CritFrac is the fraction of nets treated as critical per step; the
	// paper uses the 3 % most critical nets.
	CritFrac float64

	crit      []float64
	base      []float64 // original net weights, to allow Reset
	lastDelta []weightDelta
}

// NewWeighter prepares criticality state for nl's nets.
func NewWeighter(nl *netlist.Netlist) *Weighter {
	w := &Weighter{CritFrac: 0.03, crit: make([]float64, len(nl.Nets)), base: make([]float64, len(nl.Nets))}
	for ni := range nl.Nets {
		w.base[ni] = nl.Nets[ni].Weight
	}
	return w
}

// Criticality returns the current criticality of net ni (0..1).
func (w *Weighter) Criticality(ni int) float64 { return w.crit[ni] }

// Update ranks nets by the report's slack, refreshes criticalities and
// multiplies the net weights in place: w ← w·(1+c).
func (w *Weighter) Update(nl *netlist.Netlist, rep Report) {
	type ns struct {
		net   int
		slack float64
	}
	ranked := make([]ns, 0, len(nl.Nets))
	for ni := range nl.Nets {
		ranked = append(ranked, ns{ni, rep.NetSlack[ni]})
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].slack < ranked[b].slack })

	nCrit := int(w.CritFrac * float64(len(ranked)))
	if nCrit < 1 {
		nCrit = 1
	}
	isCrit := make([]bool, len(nl.Nets))
	for i := 0; i < nCrit && i < len(ranked); i++ {
		// Nets with infinite slack (excluded from analysis) are never
		// critical, even if the circuit has fewer analyzable nets.
		if !isFinite(ranked[i].slack) {
			break
		}
		isCrit[ranked[i].net] = true
	}
	w.lastDelta = w.lastDelta[:0]
	for ni := range nl.Nets {
		if isCrit[ni] {
			w.crit[ni] = (w.crit[ni] + 1) / 2
		} else {
			w.crit[ni] = w.crit[ni] / 2
		}
		old := nl.Nets[ni].Weight
		next := old * (1 + w.crit[ni])
		// A permanently critical net doubles per step; cap the compounding
		// so the matrix stays numerically tame over long runs.
		if cap := 64 * w.base[ni]; next > cap {
			next = cap
		}
		nl.Nets[ni].Weight = next
		if d := next - old; d > 1e-3*old {
			w.lastDelta = append(w.lastDelta, weightDelta{net: ni, dw: d})
		}
	}
}

type weightDelta struct {
	net int
	dw  float64
}

// PullForces converts the last Update's weight increases into the
// equivalent spring-force imbalance at the current placement: raising net
// j's weight by Δw pulls each of its pins toward the others with force
// Δw/k·Σ(p_other − p_pin) (the clique-model gradient). Injecting these
// forces into the placer contracts critical nets exactly as re-solving the
// re-weighted system would.
func (w *Weighter) PullForces(nl *netlist.Netlist) []geom.Point {
	out := make([]geom.Point, len(nl.Cells))
	for _, d := range w.lastDelta {
		net := &nl.Nets[d.net]
		k := len(net.Pins)
		if k < 2 {
			continue
		}
		scale := d.dw / float64(k)
		// Centroid form of the clique gradient: Σ_j(p_j − p_i) =
		// k·(centroid − p_i).
		var centroid geom.Point
		for _, p := range net.Pins {
			centroid = centroid.Add(nl.PinPos(p))
		}
		centroid = centroid.Scale(1 / float64(k))
		for _, p := range net.Pins {
			if nl.Cells[p.Cell].Fixed {
				continue
			}
			pull := centroid.Sub(nl.PinPos(p)).Scale(scale * float64(k))
			out[p.Cell] = out[p.Cell].Add(pull)
		}
	}
	return out
}

// Reset restores the original net weights and clears criticalities.
func (w *Weighter) Reset(nl *netlist.Netlist) {
	for ni := range nl.Nets {
		nl.Nets[ni].Weight = w.base[ni]
		w.crit[ni] = 0
	}
}

func isFinite(f float64) bool { return f == f && f < 1e308 && f > -1e308 }
