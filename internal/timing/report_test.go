package timing

import (
	"math"
	"strings"
	"testing"
)

func TestCriticalPathDetail(t *testing.T) {
	nl := pipeline(t)
	p := DefaultParams()
	rep := NewAnalyzer(nl, p).Analyze()
	det := CriticalPathDetail(nl, p, rep)
	if len(det) != len(rep.CriticalPath) {
		t.Fatalf("detail hops %d != path %d", len(det), len(rep.CriticalPath))
	}
	// Cumulative arrival at the last hop equals the reported max delay.
	last := det[len(det)-1]
	if math.Abs(last.Arrival-rep.MaxDelay) > 1e-15 {
		t.Errorf("arrival %v != MaxDelay %v", last.Arrival, rep.MaxDelay)
	}
	// Every hop but the last has a wire into the next.
	for i, el := range det[:len(det)-1] {
		if el.NetDelay <= 0 {
			t.Errorf("hop %d has no net delay", i)
		}
	}
	if last.NetDelay != 0 {
		t.Error("last hop should have no outgoing net delay")
	}
	// Names resolve.
	if det[1].Name != "a" {
		t.Errorf("hop 1 name %q", det[1].Name)
	}
}

func TestSlackHistogram(t *testing.T) {
	rep := Report{NetSlack: []float64{0, 1e-9, 2e-9, 2e-9, math.Inf(1)}}
	edges, counts := SlackHistogram(rep, 4)
	if len(edges) != 5 || len(counts) != 4 {
		t.Fatalf("shape %d/%d", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Errorf("histogram counted %d, want 4 (inf excluded)", total)
	}
	if counts[0] != 1 || counts[3] != 2 {
		t.Errorf("counts = %v", counts)
	}
}

func TestSlackHistogramDegenerate(t *testing.T) {
	inf := math.Inf(1)
	if e, c := SlackHistogram(Report{NetSlack: []float64{inf, inf}}, 4); e != nil || c != nil {
		t.Error("all-inf histogram should be empty")
	}
	// All equal slacks.
	_, c := SlackHistogram(Report{NetSlack: []float64{1e-9, 1e-9}}, 4)
	total := 0
	for _, v := range c {
		total += v
	}
	if total != 2 {
		t.Errorf("equal-slack histogram counted %d", total)
	}
}

func TestWorstNets(t *testing.T) {
	rep := Report{NetSlack: []float64{3e-9, 1e-9, math.Inf(1), 2e-9}}
	w := WorstNets(rep, 2)
	if len(w) != 2 || w[0] != 1 || w[1] != 3 {
		t.Errorf("WorstNets = %v", w)
	}
	all := WorstNets(rep, 100)
	if len(all) != 3 {
		t.Errorf("over-request returned %d", len(all))
	}
}

func TestWriteReport(t *testing.T) {
	nl := pipeline(t)
	p := DefaultParams()
	rep := NewAnalyzer(nl, p).Analyze()
	var sb strings.Builder
	WriteReport(&sb, nl, p, rep)
	out := sb.String()
	for _, want := range []string{"Timing report", "Critical path", "slack histogram", "a", "b", "c"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
