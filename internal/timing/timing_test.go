package timing

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
)

// pipeline builds pi -> a -> b -> c -> po with known delays and geometry.
func pipeline(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("pipe", geom.NewRegion(1, 1, 100))
	b.AddPad("pi", geom.Point{X: 0, Y: 0.5})
	b.AddPad("po", geom.Point{X: 100, Y: 0.5})
	b.AddCell("a", 1, 1)
	b.AddCell("b", 1, 1)
	b.AddCell("c", 1, 1)
	b.SetCellTiming("a", 1e-9, false)
	b.SetCellTiming("b", 2e-9, false)
	b.SetCellTiming("c", 1e-9, false)
	b.Connect("n0", "pi", "a")
	b.Connect("n1", "a", "b")
	b.Connect("n2", "b", "c")
	b.Connect("n3", "c", "po")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[2].Pos = geom.Point{X: 25, Y: 0.5}
	nl.Cells[3].Pos = geom.Point{X: 50, Y: 0.5}
	nl.Cells[4].Pos = geom.Point{X: 75, Y: 0.5}
	return nl
}

func TestNetDelayFormula(t *testing.T) {
	nl := pipeline(t)
	p := DefaultParams()
	// Net n1: a(25) -> b(50): HPWL 25 units = 25*20µm = 500µm.
	l := 25 * p.UnitMeters
	r := p.ResPerMeter * l
	c := p.CapPerMeter * l
	want := r * (c/2 + p.DefaultPinCap)
	if got := NetDelay(nl, 1, p, false); math.Abs(got-want) > 1e-18 {
		t.Errorf("NetDelay = %v, want %v", got, want)
	}
	if got := NetDelay(nl, 1, p, true); got != 0 {
		t.Errorf("zero-length NetDelay = %v", got)
	}
}

func TestNetDelayUsesPinCaps(t *testing.T) {
	nl := pipeline(t)
	p := DefaultParams()
	base := NetDelay(nl, 1, p, false)
	nl.Nets[1].Pins[1].Cap = 100e-15
	if got := NetDelay(nl, 1, p, false); got <= base {
		t.Errorf("bigger sink cap did not raise delay: %v <= %v", got, base)
	}
}

func TestLongestPathPipeline(t *testing.T) {
	nl := pipeline(t)
	p := DefaultParams()
	rep := NewAnalyzer(nl, p).Analyze()
	// Path: pi -> n0 -> a(1ns) -> n1 -> b(2ns) -> n2 -> c(1ns) -> n3 -> po.
	want := 1e-9 + 2e-9 + 1e-9 +
		NetDelay(nl, 0, p, false) + NetDelay(nl, 1, p, false) +
		NetDelay(nl, 2, p, false) + NetDelay(nl, 3, p, false)
	if math.Abs(rep.MaxDelay-want) > 1e-15 {
		t.Errorf("MaxDelay = %v, want %v", rep.MaxDelay, want)
	}
	// Critical path runs pi, a, b, c, po.
	wantPath := []int{0, 2, 3, 4, 1}
	if len(rep.CriticalPath) != len(wantPath) {
		t.Fatalf("critical path = %v, want %v", rep.CriticalPath, wantPath)
	}
	for i, c := range wantPath {
		if rep.CriticalPath[i] != c {
			t.Fatalf("critical path = %v, want %v", rep.CriticalPath, wantPath)
		}
	}
}

func TestLongestPathShrinksWithPlacement(t *testing.T) {
	nl := pipeline(t)
	p := DefaultParams()
	straight := NewAnalyzer(nl, p).Analyze().MaxDelay
	// A detour (b thrown far off the pi→po line) must slow the path; the
	// evenly spaced straight line is the geometric optimum.
	nl.Cells[3].Pos = geom.Point{X: 90, Y: 0.5}
	detour := NewAnalyzer(nl, p).Analyze().MaxDelay
	if detour <= straight {
		t.Errorf("detour did not slow the path: %v <= %v", detour, straight)
	}
	if straight < 4e-9 {
		t.Errorf("delay %v below gate-delay floor 4ns", straight)
	}
}

func TestLowerBound(t *testing.T) {
	nl := pipeline(t)
	p := DefaultParams()
	lb := LowerBound(nl, p)
	if math.Abs(lb-4e-9) > 1e-15 {
		t.Errorf("LowerBound = %v, want 4ns", lb)
	}
	full := NewAnalyzer(nl, p).Analyze().MaxDelay
	if lb > full {
		t.Error("lower bound exceeds actual delay")
	}
}

func TestSequentialCellsCutPaths(t *testing.T) {
	nl := pipeline(t)
	p := DefaultParams()
	uncut := NewAnalyzer(nl, p).Analyze().MaxDelay
	// Making b sequential cuts the path at b: longest combinational path
	// becomes b(launch) + wires + c + ... or pi..a..(into b).
	nl.Cells[3].Seq = true
	cut := NewAnalyzer(nl, p).Analyze().MaxDelay
	if cut >= uncut {
		t.Errorf("sequential cut did not reduce path: %v >= %v", cut, uncut)
	}
}

func TestWideNetsExcluded(t *testing.T) {
	b := netlist.NewBuilder("wide", geom.NewRegion(1, 1, 100))
	b.AddPad("pi", geom.Point{X: 0, Y: 0.5})
	names := []string{"pi"}
	for i := 0; i < 70; i++ {
		n := string(rune('a'+i%26)) + string(rune('0'+i/26))
		b.AddCell(n, 1, 1)
		b.SetCellTiming(n, 1e-9, false)
		names = append(names, n)
	}
	b.Connect("wide", names...) // 71 pins > 60
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := NewAnalyzer(nl, DefaultParams()).Analyze()
	if rep.Excluded != 1 {
		t.Errorf("excluded = %d, want 1", rep.Excluded)
	}
	if !math.IsInf(rep.NetSlack[0], 1) {
		t.Errorf("excluded net slack = %v, want +Inf", rep.NetSlack[0])
	}
}

func TestAnalyzeToleratesCombinationalCycles(t *testing.T) {
	b := netlist.NewBuilder("cyc", geom.NewRegion(1, 1, 10))
	b.AddCell("a", 1, 1)
	b.AddCell("b", 1, 1)
	b.SetCellTiming("a", 1e-9, false)
	b.SetCellTiming("b", 1e-9, false)
	b.Connect("n0", "a", "b")
	b.Connect("n1", "b", "a") // cycle
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := NewAnalyzer(nl, DefaultParams()).Analyze()
	if math.IsInf(rep.MaxDelay, 1) || rep.MaxDelay <= 0 {
		t.Errorf("cyclic MaxDelay = %v", rep.MaxDelay)
	}
}

func TestSlackSignsAndCriticalNet(t *testing.T) {
	nl := pipeline(t)
	rep := NewAnalyzer(nl, DefaultParams()).Analyze()
	// Every net on the critical path has ~zero slack; all slacks >= -eps.
	minSlack := math.Inf(1)
	for ni, s := range rep.NetSlack {
		if !math.IsInf(s, 1) && s < -1e-12 {
			t.Errorf("net %d slack %v below zero", ni, s)
		}
		if s < minSlack {
			minSlack = s
		}
	}
	if minSlack > 1e-12 {
		t.Errorf("no zero-slack net on critical path (min %v)", minSlack)
	}
}

func TestWeighterRaisesCriticalWeights(t *testing.T) {
	nl := pipeline(t)
	a := NewAnalyzer(nl, DefaultParams())
	w := NewWeighter(nl)
	rep := a.Analyze()
	w.Update(nl, rep)
	// All four nets lie on the single path; with CritFrac 0.03 and 4 nets,
	// exactly 1 net is boosted strongly.
	boosted := 0
	for ni := range nl.Nets {
		if nl.Nets[ni].Weight > 1.4 {
			boosted++
		}
	}
	if boosted != 1 {
		t.Errorf("boosted nets = %d, want 1", boosted)
	}
}

func TestWeighterConvergesToDoubling(t *testing.T) {
	// A permanently critical net approaches weight multiplication by 2 per
	// step: c -> 1, w *= (1+c).
	nl := pipeline(t)
	a := NewAnalyzer(nl, DefaultParams())
	w := NewWeighter(nl)
	var critNet int
	for step := 0; step < 12; step++ {
		rep := a.Analyze()
		w.Update(nl, rep)
		if step == 0 {
			// Identify the boosted net.
			for ni := range nl.Nets {
				if w.Criticality(ni) > 0 {
					critNet = ni
				}
			}
		}
	}
	if c := w.Criticality(critNet); c < 0.9 {
		t.Errorf("persistent criticality = %v, want -> 1", c)
	}
}

func TestWeighterDecay(t *testing.T) {
	nl := pipeline(t)
	w := NewWeighter(nl)
	w.crit[2] = 1.0
	rep := Report{NetSlack: []float64{0, 1, 1, 1}} // net 0 most critical
	w.Update(nl, rep)
	if w.Criticality(2) != 0.5 {
		t.Errorf("non-critical decay: %v, want 0.5", w.Criticality(2))
	}
	if w.Criticality(0) != 0.5 {
		t.Errorf("fresh critical: %v, want 0.5", w.Criticality(0))
	}
}

func TestWeighterReset(t *testing.T) {
	nl := pipeline(t)
	a := NewAnalyzer(nl, DefaultParams())
	w := NewWeighter(nl)
	w.Update(nl, a.Analyze())
	w.Reset(nl)
	for ni := range nl.Nets {
		if nl.Nets[ni].Weight != 1 {
			t.Errorf("net %d weight %v after reset", ni, nl.Nets[ni].Weight)
		}
		if w.Criticality(ni) != 0 {
			t.Errorf("net %d criticality %v after reset", ni, w.Criticality(ni))
		}
	}
}

func TestWeighterNeverMarksExcludedNets(t *testing.T) {
	nl := pipeline(t)
	w := NewWeighter(nl)
	inf := math.Inf(1)
	w.Update(nl, Report{NetSlack: []float64{inf, inf, inf, inf}})
	for ni := range nl.Nets {
		if w.Criticality(ni) != 0 {
			t.Errorf("net %d criticality %v from all-inf slacks", ni, w.Criticality(ni))
		}
	}
}

func TestPlaceDrivenImprovesTiming(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "td", Cells: 400, Nets: 520, Rows: 10, Seed: 21})
	params := DefaultParams()
	res, err := PlaceDriven(nl.Clone(), placeCfg(), params, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Before <= 0 || res.After <= 0 {
		t.Fatalf("degenerate delays: %+v", res)
	}
	if res.After >= res.Before {
		t.Errorf("timing-driven placement did not improve: %.3g -> %.3g", res.Before, res.After)
	}
	if res.LowerBound <= 0 || res.LowerBound > res.After {
		t.Errorf("lower bound %v inconsistent with after %v", res.LowerBound, res.After)
	}
	ex := res.Exploitation()
	if ex <= 0 || ex > 1 {
		t.Errorf("exploitation = %v", ex)
	}
	if res.Analyses == 0 {
		t.Error("no analyses ran")
	}
}

func TestMeetRequirement(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "mr", Cells: 300, Nets: 400, Rows: 8, Seed: 22})
	params := DefaultParams()

	// First find the unoptimized delay, then require a modest improvement.
	probe := nl.Clone()
	if _, err := PlaceDriven(probe, placeCfg(), params, 0); err != nil {
		t.Fatal(err)
	}
	base := probe // timing-driven placement result gives a reachable target
	target := NewAnalyzer(base, params).Analyze().MaxDelay * 1.05

	res, err := MeetRequirement(nl, placeCfg(), params, target, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) < 1 {
		t.Fatal("no tradeoff curve recorded")
	}
	if res.Met {
		// The guarantee: the returned placement itself meets the target.
		if got := NewAnalyzer(nl, params).Analyze().MaxDelay; got > target*(1+1e-9) {
			t.Errorf("claimed met but placement delay %v > target %v", got, target)
		}
	}
	// Curve must start at the area-optimized placement (step 0).
	if res.Curve[0].Step != 0 {
		t.Errorf("curve starts at step %d", res.Curve[0].Step)
	}
}

func TestMeetRequirementAlreadyMet(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "mr2", Cells: 200, Nets: 260, Rows: 8, Seed: 23})
	res, err := MeetRequirement(nl, placeCfg(), DefaultParams(), 1.0 /* 1 second: trivially met */, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.Steps != 0 {
		t.Errorf("trivial requirement: met=%v steps=%d", res.Met, res.Steps)
	}
}

// placeCfg keeps the driver tests fast: few iterations, coarse solver.
func placeCfg() place.Config {
	return place.Config{MaxIter: 60}
}
