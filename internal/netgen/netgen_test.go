package netgen

import (
	"math"
	"testing"

	"repro/internal/netlist"
)

func TestGenerateBasicShape(t *testing.T) {
	nl := Generate(Config{Name: "g", Cells: 200, Nets: 260, Rows: 8, Pads: 16, Seed: 1})
	if err := nl.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	s := netlist.ComputeStats(nl)
	if s.Cells != 200 || s.Pads != 16 || s.Nets != 260 || s.Rows != 8 {
		t.Errorf("stats = %+v", s)
	}
	if u := nl.Utilization(); math.Abs(u-0.8) > 0.02 {
		t.Errorf("utilization = %v, want ~0.8", u)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "d", Cells: 100, Nets: 120, Rows: 4, Pads: 8, Seed: 7}
	a := Generate(cfg)
	b := Generate(cfg)
	if a.HPWL() != b.HPWL() {
		t.Error("generation not deterministic (HPWL differs)")
	}
	if len(a.Nets) != len(b.Nets) {
		t.Error("net counts differ")
	}
	for i := range a.Nets {
		if a.Nets[i].Degree() != b.Nets[i].Degree() {
			t.Fatalf("net %d degree differs", i)
		}
	}
}

func TestGenerateSeedChangesCircuit(t *testing.T) {
	a := Generate(Config{Name: "s", Cells: 100, Nets: 120, Rows: 4, Pads: 8, Seed: 1})
	b := Generate(Config{Name: "s", Cells: 100, Nets: 120, Rows: 4, Pads: 8, Seed: 2})
	same := true
	for i := range a.Nets {
		if a.Nets[i].Degree() != b.Nets[i].Degree() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical degree sequences")
	}
}

func TestEveryMovableCellConnected(t *testing.T) {
	nl := Generate(Config{Name: "conn", Cells: 500, Nets: 400, Rows: 8, Seed: 3})
	used := make([]bool, len(nl.Cells))
	for ni := range nl.Nets {
		for _, p := range nl.Nets[ni].Pins {
			used[p.Cell] = true
		}
	}
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed && !used[i] {
			t.Fatalf("cell %d isolated", i)
		}
	}
}

func TestPadsOnPerimeter(t *testing.T) {
	nl := Generate(Config{Name: "pads", Cells: 50, Nets: 60, Rows: 4, Pads: 12, Seed: 4})
	r := nl.Region.Outline
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if !c.Fixed {
			continue
		}
		onEdge := c.Pos.X == r.Lo.X || c.Pos.X == r.Hi.X || c.Pos.Y == r.Lo.Y || c.Pos.Y == r.Hi.Y
		if !onEdge {
			t.Errorf("pad %q at %v not on perimeter %v", c.Name, c.Pos, r)
		}
	}
}

func TestDegreeDistributionHasTail(t *testing.T) {
	nl := Generate(Config{Name: "deg", Cells: 5000, Nets: 8000, Rows: 20, Seed: 5})
	twoPin, wide := 0, 0
	for ni := range nl.Nets {
		switch d := nl.Nets[ni].Degree(); {
		case d <= 3:
			twoPin++
		case d > 60:
			wide++
		}
	}
	if float64(twoPin) < 0.5*float64(len(nl.Nets)) {
		t.Errorf("only %d/%d nets are 2-3 pin", twoPin, len(nl.Nets))
	}
	if wide == 0 {
		t.Error("no >60-pin nets generated; timing filter untestable")
	}
}

func TestLocalityReducesSpan(t *testing.T) {
	// Higher locality should give nets whose cell-index span is smaller.
	span := func(loc float64) float64 {
		nl := Generate(Config{Name: "loc", Cells: 2000, Nets: 3000, Rows: 10, Seed: 6, Locality: loc})
		var total float64
		for ni := range nl.Nets {
			lo, hi := len(nl.Cells), 0
			for _, p := range nl.Nets[ni].Pins {
				if nl.Cells[p.Cell].Fixed {
					continue
				}
				if p.Cell < lo {
					lo = p.Cell
				}
				if p.Cell > hi {
					hi = p.Cell
				}
			}
			if hi > lo {
				total += float64(hi - lo)
			}
		}
		return total / float64(len(nl.Nets))
	}
	local := span(0.9)
	global := span(0.2)
	if local >= global {
		t.Errorf("locality 0.9 span %.1f not below locality 0.2 span %.1f", local, global)
	}
}

func TestGenerateWithBlocks(t *testing.T) {
	nl := Generate(Config{Name: "fp", Cells: 300, Nets: 400, Rows: 12, Blocks: 5, Seed: 8})
	if err := nl.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	blocks := 0
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if !c.Fixed && c.H > 1.5 {
			blocks++
		}
	}
	if blocks != 5 {
		t.Errorf("found %d blocks, want 5", blocks)
	}
	if u := nl.Utilization(); math.Abs(u-0.8) > 0.02 {
		t.Errorf("utilization with blocks = %v", u)
	}
}

func TestSuiteDefinitions(t *testing.T) {
	if len(MCNCSuite) != 9 {
		t.Fatalf("suite has %d circuits, want 9", len(MCNCSuite))
	}
	timing := 0
	for _, c := range MCNCSuite {
		if c.Cells <= 0 || c.Nets <= 0 || c.Rows <= 0 {
			t.Errorf("%s has bad counts", c.Name)
		}
		if c.TimingBench {
			timing++
		}
	}
	if timing != 5 {
		t.Errorf("%d timing circuits, want 5 (Table 3)", timing)
	}
	if SuiteCircuit("fract") == nil || SuiteCircuit("ghost") != nil {
		t.Error("SuiteCircuit lookup broken")
	}
}

func TestGenerateSuiteScaled(t *testing.T) {
	c := *SuiteCircuit("primary1")
	nl := GenerateSuite(c, 0.1, 1)
	s := netlist.ComputeStats(nl)
	if s.Cells != 75 {
		t.Errorf("scaled cells = %d, want 75", s.Cells)
	}
	if s.Rows < 2 || s.Rows > 16 {
		t.Errorf("scaled rows = %d", s.Rows)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Full scale reproduces published counts.
	full := GenerateSuite(*SuiteCircuit("fract"), 1.0, 1)
	fs := netlist.ComputeStats(full)
	if fs.Cells != 125 || fs.Nets != 147 || fs.Rows != 6 {
		t.Errorf("fract full-scale stats = %+v", fs)
	}
}

func TestScatterRandom(t *testing.T) {
	nl := Generate(Config{Name: "sc", Cells: 100, Nets: 120, Rows: 4, Seed: 9})
	ScatterRandom(nl, 42)
	r := nl.Region.Outline
	distinct := map[float64]bool{}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Fixed {
			continue
		}
		if !r.ContainsRect(c.Rect().Expand(-1e-9)) {
			t.Fatalf("cell %d at %v outside region", i, c.Pos)
		}
		distinct[c.Pos.X] = true
	}
	if len(distinct) < 50 {
		t.Errorf("scatter produced only %d distinct X positions", len(distinct))
	}
}

func TestGenerateTooFewCellsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Generate(Config{Cells: 1, Nets: 1})
}
