package netgen

import (
	"math"

	"repro/internal/netlist"
)

// Circuit identifies one benchmark of the paper's Table 1 suite.
type Circuit struct {
	Name  string
	Cells int
	Nets  int
	Rows  int
	Pads  int
	// TimingBench marks the circuits used in Tables 3 and 4.
	TimingBench bool
}

// MCNCSuite lists the nine circuits of the paper's Table 1 with the
// published cell/net/row counts of the MCNC LayoutSynth92 suite. The
// harness generates synthetic circuits with these parameters (DESIGN.md §3
// documents the substitution).
var MCNCSuite = []Circuit{
	{Name: "fract", Cells: 125, Nets: 147, Rows: 6, Pads: 24, TimingBench: true},
	{Name: "primary1", Cells: 752, Nets: 902, Rows: 16, Pads: 81},
	{Name: "struct", Cells: 1888, Nets: 1920, Rows: 21, Pads: 64, TimingBench: true},
	{Name: "primary2", Cells: 2907, Nets: 3029, Rows: 28, Pads: 107},
	{Name: "biomed", Cells: 6417, Nets: 5742, Rows: 46, Pads: 97, TimingBench: true},
	{Name: "industry2", Cells: 12142, Nets: 13419, Rows: 72, Pads: 495},
	{Name: "industry3", Cells: 15057, Nets: 21808, Rows: 54, Pads: 374},
	{Name: "avq.small", Cells: 21854, Nets: 22124, Rows: 80, Pads: 64, TimingBench: true},
	{Name: "avq.large", Cells: 25114, Nets: 25384, Rows: 86, Pads: 64, TimingBench: true},
}

// SuiteCircuit returns the suite entry with the given name, or nil.
func SuiteCircuit(name string) *Circuit {
	for i := range MCNCSuite {
		if MCNCSuite[i].Name == name {
			return &MCNCSuite[i]
		}
	}
	return nil
}

// GenerateSuite generates one circuit of the suite at the given scale
// factor (scale 1.0 reproduces the published counts; smaller scales shrink
// cells/nets/rows proportionally for quick runs, never below viable
// minimums).
func GenerateSuite(c Circuit, scale float64, seed int64) *netlist.Netlist {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	cells := max(int(float64(c.Cells)*scale), 20)
	nets := max(int(float64(c.Nets)*scale), 20)
	rows := max(int(float64(c.Rows)*sqrtScale(scale)), 2)
	pads := max(int(float64(c.Pads)*sqrtScale(scale)), 4)
	return Generate(Config{
		Name:  c.Name,
		Cells: cells,
		Nets:  nets,
		Rows:  rows,
		Pads:  pads,
		Seed:  seed,
	})
}

// sqrtScale maps an area scale to a linear-dimension scale: rows and pads
// scale with the side length, not the area.
func sqrtScale(s float64) float64 {
	if s >= 1 {
		return 1
	}
	return math.Sqrt(s)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
