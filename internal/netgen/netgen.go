// Package netgen generates synthetic benchmark circuits. The MCNC
// LayoutSynth92 suite the paper evaluates on (fract … avq.large) is not
// redistributable here, so the experiment harness substitutes circuits with
// the same cell/net/row counts and realistic structure: Rent's-rule locality
// from hierarchical clustering, an MCNC-like net-degree distribution with a
// heavy tail (including >60-pin nets so the paper's timing filter matters),
// peripheral I/O pads, and per-cell delays/powers for the timing and thermal
// experiments. See DESIGN.md §3 for the substitution rationale.
package netgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Config describes a synthetic circuit.
type Config struct {
	Name  string
	Cells int // movable standard cells
	Pads  int // fixed peripheral pads
	Nets  int
	Rows  int
	// Utilization is movable area / region area; defaults to 0.8.
	Utilization float64
	// Locality in (0,1] controls how strongly nets cluster; higher is more
	// local. Defaults to 0.75, roughly a Rent exponent of 0.65.
	Locality float64
	// Seq is the fraction of cells marked sequential. Defaults to 0.15.
	Seq float64
	// Blocks adds this many movable macro blocks (for floorplanning runs).
	Blocks int
	// BlockArea is the per-block area in multiples of the average cell
	// area. Defaults to 100.
	BlockArea float64
	Seed      int64
}

func (c *Config) setDefaults() {
	if c.Utilization <= 0 || c.Utilization > 1 {
		c.Utilization = 0.8
	}
	if c.Locality <= 0 || c.Locality > 1 {
		c.Locality = 0.75
	}
	if c.Seq <= 0 {
		c.Seq = 0.15
	}
	if c.BlockArea <= 0 {
		c.BlockArea = 100
	}
	if c.Pads <= 0 {
		c.Pads = 4 * int(math.Sqrt(float64(c.Cells))/2+1)
	}
}

// Generate builds the synthetic circuit described by cfg. The result is
// validated; generation is deterministic for a given Config.
func Generate(cfg Config) *netlist.Netlist {
	cfg.setDefaults()
	if cfg.Cells < 2 {
		panic("netgen: need at least 2 cells")
	}
	if cfg.Rows < 1 {
		cfg.Rows = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	nl := &netlist.Netlist{Name: cfg.Name}

	// Cell sizes: widths 1..4 row-height units, height = 1 row.
	const rowHeight = 1.0
	cellArea := 0.0
	for i := 0; i < cfg.Cells; i++ {
		w := 1 + rng.Float64()*3
		nl.Cells = append(nl.Cells, netlist.Cell{
			Name:  fmt.Sprintf("c%d", i),
			W:     w,
			H:     rowHeight,
			Delay: (0.1 + 0.9*rng.Float64()) * 1e-9,
			Power: 0.1 + rng.Float64(),
			Seq:   rng.Float64() < cfg.Seq,
		})
		cellArea += w * rowHeight
	}

	// Blocks for floorplanning-style runs. A block must fit well inside
	// the region on both axes or it could never be placed legally; the
	// width bound is estimated from the standard-cell area alone (an
	// underestimate of the final region, hence conservative).
	avgCell := cellArea / float64(cfg.Cells)
	maxH := 0.5 * float64(cfg.Rows) * rowHeight
	maxW := 0.5 * cellArea / cfg.Utilization / (float64(cfg.Rows) * rowHeight)
	for b := 0; b < cfg.Blocks; b++ {
		area := cfg.BlockArea * avgCell * (0.5 + rng.Float64())
		if area > 0.8*maxH*maxW {
			area = 0.8 * maxH * maxW
		}
		aspect := 0.5 + rng.Float64() // H/W
		w := math.Sqrt(area / aspect)
		h := area / w
		if h > maxH {
			h = maxH
			w = area / h
		}
		if w > maxW {
			w = maxW
			h = area / w
		}
		// A "block" between one and two rows tall fits neither the row
		// legalizer (too tall) nor the block legalizer (classified as a
		// standard cell): snap to two rows, or to one when the region is
		// too short for that.
		if h > rowHeight && h < 2*rowHeight {
			if maxH >= 2*rowHeight {
				h = 2 * rowHeight
			} else {
				h = rowHeight
			}
			w = area / h
			if w > maxW {
				w = maxW
			}
		}
		nl.Cells = append(nl.Cells, netlist.Cell{
			Name:  fmt.Sprintf("blk%d", b),
			W:     w,
			H:     h,
			Delay: 2e-9,
			Power: 20,
		})
		cellArea += area
	}

	// Region: rows sized so that movable area / region area = Utilization.
	regionArea := cellArea / cfg.Utilization
	width := regionArea / (float64(cfg.Rows) * rowHeight)
	nl.Region = geom.NewRegion(cfg.Rows, rowHeight, width)

	// Pads on the periphery, evenly spread.
	padStart := len(nl.Cells)
	for p := 0; p < cfg.Pads; p++ {
		nl.Cells = append(nl.Cells, netlist.Cell{
			Name:  fmt.Sprintf("p%d", p),
			Fixed: true,
			Pos:   perimeterPoint(nl.Region.Outline, float64(p)/float64(cfg.Pads)),
		})
	}

	// Hierarchical clustering for Rent-style locality: cells are leaves of
	// an implicit binary hierarchy in index order (generated circuits have
	// no geometric meaning yet, so index distance is cluster distance).
	nMov := cfg.Cells + cfg.Blocks
	levels := 1
	for (1 << levels) < nMov {
		levels++
	}

	degrees := sampleDegrees(rng, cfg.Nets)
	for ni, deg := range degrees {
		pins := pickClusterPins(rng, nMov, levels, deg, cfg.Locality)
		net := netlist.Net{Name: fmt.Sprintf("n%d", ni), Weight: 1}
		for pi, ci := range pins {
			dir := netlist.Input
			if pi == 0 {
				dir = netlist.Output
			}
			net.Pins = append(net.Pins, netlist.Pin{Cell: ci, Dir: dir})
		}
		// A slice of nets reach a pad: I/O connectivity.
		if rng.Float64() < padFraction(cfg) {
			pad := padStart + rng.Intn(cfg.Pads)
			net.Pins = append(net.Pins, netlist.Pin{Cell: pad, Dir: netlist.Input})
		}
		nl.Nets = append(nl.Nets, net)
	}

	// Guarantee every movable cell is connected (placers assume it).
	connectIsolated(rng, nl, nMov)

	nl.Normalize()
	if err := nl.Validate(); err != nil {
		panic(fmt.Sprintf("netgen: generated invalid netlist: %v", err))
	}
	return nl
}

func padFraction(cfg Config) float64 {
	// Enough I/O nets that every pad ends up used a few times.
	f := 3 * float64(cfg.Pads) / float64(cfg.Nets)
	if f > 0.25 {
		f = 0.25
	}
	if f < 0.02 {
		f = 0.02
	}
	return f
}

// sampleDegrees draws net pin counts from an MCNC-like distribution:
// mostly 2-3 pins, a decaying tail, and a handful of very wide nets
// (clock/reset-like) above 60 pins.
func sampleDegrees(rng *rand.Rand, n int) []int {
	out := make([]int, n)
	for i := range out {
		r := rng.Float64()
		switch {
		case r < 0.55:
			out[i] = 2
		case r < 0.75:
			out[i] = 3
		case r < 0.85:
			out[i] = 4
		case r < 0.97:
			out[i] = 5 + rng.Intn(6) // 5..10
		case r < 0.998:
			out[i] = 11 + rng.Intn(50) // 11..60
		default:
			out[i] = 61 + rng.Intn(60) // >60: excluded from timing analysis
		}
	}
	return out
}

// pickClusterPins selects deg distinct cells concentrated in one cluster of
// the implicit hierarchy. With probability locality the cluster level
// shrinks one more step, so the expected cluster size follows a geometric
// law — the standard Rent's-rule construction.
func pickClusterPins(rng *rand.Rand, nCells, levels, deg int, locality float64) []int {
	level := 0
	for level < levels-1 && rng.Float64() < locality {
		level++
	}
	span := nCells >> level
	if span < deg {
		span = deg
	}
	if span > nCells {
		span = nCells
	}
	start := 0
	if nCells > span {
		start = rng.Intn(nCells - span + 1)
	}
	if deg > span {
		deg = span
	}
	picked := make(map[int]bool, deg)
	out := make([]int, 0, deg)
	for len(out) < deg {
		c := start + rng.Intn(span)
		if !picked[c] {
			picked[c] = true
			out = append(out, c)
		}
	}
	return out
}

// connectIsolated ensures every movable cell appears on at least one net by
// attaching strays to a neighbor's net.
func connectIsolated(rng *rand.Rand, nl *netlist.Netlist, nMov int) {
	used := make([]bool, len(nl.Cells))
	for ni := range nl.Nets {
		for _, p := range nl.Nets[ni].Pins {
			used[p.Cell] = true
		}
	}
	for ci := 0; ci < nMov; ci++ {
		if used[ci] {
			continue
		}
		// Join a random existing net (keeps the net count at cfg.Nets).
		ni := rng.Intn(len(nl.Nets))
		nl.Nets[ni].Pins = append(nl.Nets[ni].Pins, netlist.Pin{Cell: ci, Dir: netlist.Input})
		used[ci] = true
	}
}

func perimeterPoint(r geom.Rect, t float64) geom.Point {
	// t in [0,1) walks the outline counterclockwise from the lower-left.
	per := 2 * (r.W() + r.H())
	d := t * per
	switch {
	case d < r.W():
		return geom.Point{X: r.Lo.X + d, Y: r.Lo.Y}
	case d < r.W()+r.H():
		return geom.Point{X: r.Hi.X, Y: r.Lo.Y + (d - r.W())}
	case d < 2*r.W()+r.H():
		return geom.Point{X: r.Hi.X - (d - r.W() - r.H()), Y: r.Hi.Y}
	default:
		return geom.Point{X: r.Lo.X, Y: r.Hi.Y - (d - 2*r.W() - r.H())}
	}
}

// ScatterRandom places every movable cell uniformly at random inside the
// region — the usual starting point for annealing baselines.
func ScatterRandom(nl *netlist.Netlist, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	r := nl.Region.Outline
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Fixed {
			continue
		}
		c.Pos = r.ClampCenter(geom.Point{
			X: r.Lo.X + rng.Float64()*r.W(),
			Y: r.Lo.Y + rng.Float64()*r.H(),
		}, c.W, c.H)
	}
}
