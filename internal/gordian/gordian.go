// Package gordian implements a GORDIAN-style comparison placer [7,14]:
// global quadratic placement alternating with recursive min-cut
// partitioning. Each region's cells are bound to their region by
// center-of-gravity anchor springs; regions split recursively (FM min-cut
// seeded by the analytical positions) until they are small, after which
// cells sit at their last solved positions clamped into their regions.
//
// This is the class of "partitioning based methods which make irreversible
// decisions at early stages" the paper compares against (§6.1).
package gordian

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obsv"
	"repro/internal/partition"
	"repro/internal/qp"
	"repro/internal/sparse"
)

// Config controls the recursive placement.
type Config struct {
	// MinRegionCells stops subdividing a region at or below this many
	// cells (default 8; deep enough that rows regions also split
	// horizontally and distribute cells vertically).
	MinRegionCells int
	// AnchorWeight scales the region-center springs relative to the mean
	// connectivity (default 0.5).
	AnchorWeight float64
	// Balance is the FM area balance tolerance (default 0.1).
	Balance float64
	// CG configures the solver.
	CG sparse.CGOptions
	// Seed drives FM tie-breaking.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.MinRegionCells <= 0 {
		c.MinRegionCells = 8
	}
	if c.AnchorWeight <= 0 {
		c.AnchorWeight = 0.5
	}
	if c.Balance <= 0 {
		c.Balance = 0.1
	}
	if c.CG.Tol <= 0 {
		c.CG.Tol = 1e-6
	}
}

// Result summarizes a run.
type Result struct {
	Levels  int
	Regions int
	HPWL    float64
	Runtime time.Duration
}

type region struct {
	rect  geom.Rect
	cells []int
}

// Place runs the recursive quadratic placement on nl, writing positions in
// place.
func Place(nl *netlist.Netlist, cfg Config) (Result, error) {
	cfg.setDefaults()
	start := obsv.StartTimer()

	var movable []int
	for ci := range nl.Cells {
		if !nl.Cells[ci].Fixed {
			movable = append(movable, ci)
		}
	}
	regions := []region{{rect: nl.Region.Outline, cells: movable}}

	// Level 0: free global solve.
	if err := solveWithAnchors(nl, nil, cfg); err != nil {
		return Result{}, fmt.Errorf("gordian: level 0: %w", err)
	}

	var res Result
	for level := 1; ; level++ {
		next := make([]region, 0, 2*len(regions))
		split := false
		for _, r := range regions {
			if len(r.cells) <= cfg.MinRegionCells {
				next = append(next, r)
				continue
			}
			a, b := splitRegion(nl, r, cfg, int64(level))
			next = append(next, a, b)
			split = true
		}
		regions = next
		if !split {
			break
		}
		res.Levels = level
		// Re-solve globally with every region pulling its cells toward its
		// center of gravity.
		if err := solveWithAnchors(nl, regions, cfg); err != nil {
			return res, fmt.Errorf("gordian: level %d: %w", level, err)
		}
		clampToRegions(nl, regions)
	}
	clampToRegions(nl, regions)
	res.Regions = len(regions)
	res.HPWL = nl.HPWL()
	res.Runtime = start.Elapsed()
	return res, nil
}

// splitRegion cuts a region along its longer axis. The initial side
// assignment comes from the analytical cell positions (terminal propagation
// in spirit); FM then minimizes the cut under the balance constraint, and
// the geometric cut line is placed to give each side area proportional to
// its cell area.
func splitRegion(nl *netlist.Netlist, r region, cfg Config, salt int64) (region, region) {
	vertical := r.rect.W() >= r.rect.H() // split with a vertical line?
	cells := append([]int(nil), r.cells...)
	sort.Slice(cells, func(a, b int) bool {
		pa, pb := nl.Cells[cells[a]].Pos, nl.Cells[cells[b]].Pos
		if vertical {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	// Seed: lower-coordinate half on side 0.
	seed := make([]int, len(cells))
	for i := range seed {
		if i >= len(cells)/2 {
			seed[i] = 1
		}
	}
	pres := partition.Bipartition(nl, cells, seed, partition.Options{
		Balance: cfg.Balance, Seed: cfg.Seed + salt,
	})

	var area0, area1 float64
	for li, ci := range cells {
		if pres.Side[li] == 0 {
			area0 += nl.Cells[ci].Area()
		} else {
			area1 += nl.Cells[ci].Area()
		}
	}
	frac := 0.5
	if area0+area1 > 0 {
		frac = area0 / (area0 + area1)
	}
	ra, rb := cutRect(r.rect, vertical, frac)
	out0 := region{rect: ra}
	out1 := region{rect: rb}
	for li, ci := range cells {
		if pres.Side[li] == 0 {
			out0.cells = append(out0.cells, ci)
		} else {
			out1.cells = append(out1.cells, ci)
		}
	}
	return out0, out1
}

func cutRect(r geom.Rect, vertical bool, frac float64) (geom.Rect, geom.Rect) {
	if frac < 0.1 {
		frac = 0.1
	}
	if frac > 0.9 {
		frac = 0.9
	}
	if vertical {
		x := r.Lo.X + frac*r.W()
		return geom.NewRect(r.Lo.X, r.Lo.Y, x, r.Hi.Y), geom.NewRect(x, r.Lo.Y, r.Hi.X, r.Hi.Y)
	}
	y := r.Lo.Y + frac*r.H()
	return geom.NewRect(r.Lo.X, r.Lo.Y, r.Hi.X, y), geom.NewRect(r.Lo.X, y, r.Hi.X, r.Hi.Y)
}

// solveWithAnchors solves the quadratic system with per-region
// center-of-gravity springs (nil regions = free solve).
func solveWithAnchors(nl *netlist.Netlist, regions []region, cfg Config) error {
	sys := qp.Build(nl, qp.Options{Linearize: true})
	if regions == nil {
		_, err := sys.Solve(nil, cfg.CG)
		return err
	}
	// Anchor each cell toward its region center with a constant force
	// proportional to its offset and its own spring stiffness (so the
	// displacement response is a uniform fraction of the offset), applied
	// over a few fixed-point sweeps. The sweeps converge toward the
	// center-of-gravity-constrained solution without assembling an
	// augmented matrix.
	diag := sys.Matrix().Diag()
	for sweep := 0; sweep < 4; sweep++ {
		forces := make([]geom.Point, len(nl.Cells))
		for _, r := range regions {
			c := r.rect.Center()
			for _, ci := range r.cells {
				vi := sys.VarOf[ci]
				if vi < 0 {
					continue
				}
				d := c.Sub(nl.Cells[ci].Pos)
				forces[ci] = d.Scale(cfg.AnchorWeight * diag[vi])
			}
		}
		if _, err := sys.SolveDelta(forces, cfg.CG); err != nil {
			return err
		}
	}
	return nil
}

func clampToRegions(nl *netlist.Netlist, regions []region) {
	for _, r := range regions {
		for _, ci := range r.cells {
			c := &nl.Cells[ci]
			c.Pos = r.rect.ClampCenter(c.Pos, min(c.W, r.rect.W()), min(c.H, r.rect.H()))
		}
	}
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
