package gordian

import (
	"testing"

	"repro/internal/netgen"
	"repro/internal/netlist"
)

func TestPlaceSpreadsAndImproves(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "g", Cells: 400, Nets: 520, Rows: 10, Seed: 41})
	netgen.ScatterRandom(nl, 99)
	randomHPWL := nl.HPWL()
	res, err := Place(nl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL >= randomHPWL {
		t.Errorf("gordian HPWL %v not below random %v", res.HPWL, randomHPWL)
	}
	if res.Levels < 2 {
		t.Errorf("levels = %d, want recursion", res.Levels)
	}
	if res.Regions < 8 {
		t.Errorf("regions = %d", res.Regions)
	}
	// All cells inside the region.
	out := nl.Region.Outline
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed && !out.Contains(nl.Cells[i].Pos) {
			t.Fatalf("cell %d at %v outside region", i, nl.Cells[i].Pos)
		}
	}
}

func TestPlaceDistributesCells(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "d", Cells: 400, Nets: 520, Rows: 10, Seed: 42})
	if _, err := Place(nl, Config{}); err != nil {
		t.Fatal(err)
	}
	// Quarters of the region should all hold a reasonable share of cells.
	out := nl.Region.Outline
	mid := out.Center()
	var q [4]int
	total := 0
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Fixed {
			continue
		}
		total++
		k := 0
		if c.Pos.X > mid.X {
			k |= 1
		}
		if c.Pos.Y > mid.Y {
			k |= 2
		}
		q[k]++
	}
	for k, n := range q {
		if n < total/10 {
			t.Errorf("quadrant %d holds only %d/%d cells", k, n, total)
		}
	}
}

func TestPlaceSmallDesignNoRecursion(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "s", Cells: 20, Nets: 25, Rows: 2, Seed: 43})
	res, err := Place(nl, Config{MinRegionCells: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regions != 1 && res.Levels != 0 {
		t.Errorf("small design: levels=%d regions=%d", res.Levels, res.Regions)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	run := func() netlist.Placement {
		nl := netgen.Generate(netgen.Config{Name: "det", Cells: 150, Nets: 200, Rows: 6, Seed: 44})
		if _, err := Place(nl, Config{Seed: 3}); err != nil {
			t.Fatal(err)
		}
		return nl.Snapshot()
	}
	a, b := run(), run()
	if netlist.MaxDisplacement(a, b) != 0 {
		t.Error("gordian not deterministic")
	}
}
