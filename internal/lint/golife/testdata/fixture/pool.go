package fixture

import (
	"context"

	"repro/internal/par"
)

type leaky struct {
	pool *par.Pool
}

// submitLeak feeds a pool no code ever drains: its queue dies with the
// process.
func (s *leaky) submitLeak() {
	_ = s.pool.Submit(func() { work() }) // want `task submitted to pool fixture\.leaky\.pool, which is never drained`
}

type drained struct {
	pool *par.Pool
}

func (d *drained) submit() {
	_ = d.pool.Submit(func() { work() })
}

// shutdown is the sanctioned drain shape: CloseContext on the same pool
// class the submissions target.
func (d *drained) shutdown(ctx context.Context) error {
	return d.pool.CloseContext(ctx)
}
