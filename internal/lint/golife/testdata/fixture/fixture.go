// The golife fixture: leaked and joined goroutines, including the
// interprocedural pool shape where the worker's WaitGroup.Done on a field
// class is matched by a Wait in another function through the fact store,
// plus lost local channel sends.
package fixture

import "sync"

func work() {}

func leakLit() {
	go func() { work() }() // want `goroutine is never awaited: it produces no completion signal`
}

func leakCall() {
	go work() // want `goroutine is never awaited: it produces no completion signal`
}

type pool struct {
	wg sync.WaitGroup
}

func (p *pool) worker() {
	defer p.wg.Done()
	work()
}

// newPool spawns a worker joined interprocedurally: worker's Done on the
// field class pool.wg is matched by Close's Wait through the fact store.
func newPool() *pool {
	p := &pool{}
	p.wg.Add(1)
	go p.worker()
	return p
}

func (p *pool) Close() { p.wg.Wait() }

func okClose() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

func okSend() int {
	res := make(chan int, 1)
	go func() { res <- 1 }()
	return <-res
}

func okWG() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func lostSend(v int) {
	ch := make(chan int, 1)
	ch <- v // want `channel is sent on but never received from`
}

func okPassed(sink func(chan int)) {
	ch := make(chan int, 1)
	ch <- 1
	sink(ch) // passed on: a receiver elsewhere cannot be ruled out
}

func leakSignal() {
	errs := make(chan error, 1)
	go func() { // want `goroutine is never awaited: nothing waits on or receives its completion signal`
		errs <- nil // want `channel is sent on but never received from`
	}()
}

func suppressed() {
	//lint:ignore golife background scrubber runs for process lifetime by design
	go func() { work() }()
}
