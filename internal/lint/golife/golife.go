// Package golife checks goroutine and channel lifecycles: every spawn
// should have a join, every send a receiver. Three rules:
//
//  1. A `go` statement must produce a completion signal someone consumes:
//     a WaitGroup.Done whose class some function Waits on, or a channel
//     close/send whose class some function receives from (classes are
//     callgraph.SyncClass names, so a field WaitGroup like par.Pool.wg
//     joins across functions and packages through the fact store, and a
//     local done-channel joins within its declaration). `go m()` resolves
//     m's signals from its summary fact. A goroutine with no matchable
//     signal is flagged: it leaks on every call, and -race only sees the
//     schedules tests happen to run.
//  2. A task submitted to a par.Pool must have its pool drained somewhere
//     (Close/CloseContext/Shutdown on the pool's class — par.Pool's
//     CloseContext drain is the sanctioned shape); otherwise shutdown
//     abandons queued work.
//  3. A send on a channel must have a possible receiver: a local channel
//     whose only uses are sends is flagged (the send blocks forever or the
//     value is lost), and a send on a field/package channel class no
//     function receives from is flagged program-wide.
//
// Deliberately fire-and-forget goroutines (a debug HTTP server, a
// best-effort cache warm) are legitimate — suppress with a reasoned
// //lint:ignore golife. Spawns of functions with no summary fact (stdlib)
// and signals scoped to another function's locals are skipped rather than
// guessed at.
package golife

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// Analyzer flags unjoined goroutines, undrained pool submissions, and
// sends without receivers.
var Analyzer = &analysis.Analyzer{
	Name:       "golife",
	Doc:        "flags goroutine spawns never awaited (no WaitGroup.Done/channel signal anyone consumes), par.Pool submissions whose pool is never drained, and channel sends with no receiver; each is a leak or lost work on every call",
	Run:        run,
	NeedsFacts: true,
}

const poolSubmit = "(*repro/internal/par.Pool).Submit"

func run(pass *analysis.Pass) error {
	if pass.Facts == nil {
		return nil
	}
	var cf callgraph.ConcFact
	if !pass.Facts.ObjectFact(callgraph.GlobalKey, &cf) {
		return nil
	}
	c := &checker{
		pass:   pass,
		waited: toSet(cf.WaitedWGs),
		recv:   toSet(cf.RecvChans),
		drains: toSet(cf.Drains),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				c.checkDecl(decl)
			}
		}
	}
	return nil
}

type checker struct {
	pass   *analysis.Pass
	waited map[string]bool
	recv   map[string]bool
	drains map[string]bool
}

func toSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

func (c *checker) checkDecl(decl *ast.FuncDecl) {
	scope := callgraph.FuncKey(c.pass.TypesInfo, decl)
	if scope == "" {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.checkGo(n, scope)
		case *ast.CallExpr:
			c.checkSubmit(n, scope)
		case *ast.SendStmt:
			c.checkFieldSend(n, scope)
		}
		return true
	})
	c.checkLocalChans(decl, scope)
}

// checkGo verifies one spawn has a consumed completion signal.
func (c *checker) checkGo(g *ast.GoStmt, scope string) {
	info := c.pass.TypesInfo
	var dones, chans []string
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		// Signals produced by the literal body, in the enclosing scope —
		// the same scoping the fact walker used, so a local done channel
		// received in this function matches through the global sets.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) == 1 {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					chans = append(chans, callgraph.SyncClass(info, call.Args[0], scope))
					return true
				}
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.FullName() == "(*sync.WaitGroup).Done" {
					dones = append(dones, callgraph.SyncClass(info, sel.X, scope))
				}
			}
			return true
		})
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if s, ok := n.(*ast.SendStmt); ok {
				chans = append(chans, callgraph.SyncClass(info, s.Chan, scope))
			}
			return true
		})
	} else {
		// go m(...): read m's summary fact. No fact (stdlib, dynamic call)
		// means no verdict.
		key := callgraph.CalleeKey(info, g.Call)
		if key == "" {
			return
		}
		var fact callgraph.FuncFact
		if !c.pass.Facts.ObjectFact(key, &fact) {
			return
		}
		dones = fact.WGDones
		chans = append(append([]string(nil), fact.ChanCloses...), fact.ChanSends...)
		// Signals on the callee's own locals cannot be matched from here;
		// if any exist, the join may be internal — stay quiet.
		for _, s := range append(append([]string(nil), dones...), chans...) {
			if callgraph.LocalClass(s) {
				return
			}
		}
	}
	for _, d := range dones {
		if c.waited[d] {
			return
		}
	}
	for _, ch := range chans {
		if c.recv[ch] {
			return
		}
	}
	var why string
	if len(dones)+len(chans) == 0 {
		why = "it produces no completion signal (no WaitGroup.Done, channel close, or send)"
	} else {
		why = "nothing waits on or receives its completion signal (" + shortList(append(dones, chans...)) + ")"
	}
	c.pass.Reportf(g.Go, "goroutine is never awaited: %s; it leaks on every call — join it with a WaitGroup or done channel, or suppress with a reasoned //lint:ignore if fire-and-forget is intended", why)
}

// checkSubmit verifies a par.Pool.Submit target pool is drained somewhere.
func (c *checker) checkSubmit(call *ast.CallExpr, scope string) {
	if callgraph.CalleeKey(c.pass.TypesInfo, call) != poolSubmit {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	class := callgraph.SyncClass(c.pass.TypesInfo, sel.X, scope)
	if c.drains[class] {
		return
	}
	c.pass.Reportf(call.Pos(), "task submitted to pool %s, which is never drained (no Close/CloseContext/Shutdown on that pool anywhere); queued tasks are abandoned on shutdown", callgraph.ShortClass(class))
}

// checkFieldSend flags sends on field/package channel classes nothing in
// the program receives from. Local channels are handled per declaration by
// checkLocalChans, where "never passed anywhere" is decidable.
func (c *checker) checkFieldSend(s *ast.SendStmt, scope string) {
	class := callgraph.SyncClass(c.pass.TypesInfo, s.Chan, scope)
	if callgraph.LocalClass(class) || c.recv[class] {
		return
	}
	c.pass.Reportf(s.Arrow, "send on %s but no function receives from that channel; the send blocks forever (or the value is never consumed)", callgraph.ShortClass(class))
}

// checkLocalChans flags local channels whose only uses are sends: nothing
// can ever receive, so the send blocks forever or the value is lost.
func (c *checker) checkLocalChans(decl *ast.FuncDecl, scope string) {
	info := c.pass.TypesInfo
	type usage struct {
		sends     int
		consumed  bool // received, closed, defined... anything but a send
		firstSend token.Pos
	}
	uses := map[types.Object]*usage{}
	lookup := func(e ast.Expr) *usage {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := info.ObjectOf(id)
		if obj == nil || obj.Pos() < decl.Pos() || obj.Pos() > decl.End() {
			return nil
		}
		if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
			return nil
		}
		u := uses[obj]
		if u == nil {
			u = &usage{}
			uses[obj] = u
		}
		return u
	}
	// First pass: account sends and receives; remember which ident nodes
	// they consumed so the second pass can classify the rest as escapes.
	accounted := map[*ast.Ident]bool{}
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			accounted[id] = true
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if u := lookup(n.Chan); u != nil {
				u.sends++
				if u.firstSend == token.NoPos {
					u.firstSend = n.Arrow
				}
			}
			mark(n.Chan)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if u := lookup(n.X); u != nil {
					u.consumed = true
				}
				mark(n.X)
			}
		case *ast.RangeStmt:
			if u := lookup(n.X); u != nil {
				u.consumed = true
			}
			mark(n.X)
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, l := range n.Lhs {
					mark(l)
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				accounted[name] = true
			}
		}
		return true
	})
	// Second pass: any unaccounted reference (argument, assignment,
	// capture by a stored closure, close) counts as a consumer we cannot
	// rule out.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || accounted[id] {
			return true
		}
		if u := lookup(id); u != nil {
			u.consumed = true
		}
		return true
	})
	var flagged []*usage
	for _, u := range uses {
		flagged = append(flagged, u)
	}
	sort.Slice(flagged, func(i, j int) bool { return flagged[i].firstSend < flagged[j].firstSend })
	for _, u := range flagged {
		if u.sends == 0 || u.consumed {
			continue
		}
		c.pass.Reportf(u.firstSend, "channel is sent on but never received from, closed, or passed anywhere; the send blocks forever (or the value is lost in the buffer)")
	}
}

func shortList(classes []string) string {
	short := make([]string, len(classes))
	for i, c := range classes {
		short[i] = callgraph.ShortClass(c)
	}
	return strings.Join(short, ", ")
}
