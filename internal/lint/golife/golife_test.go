package golife_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/golife"
)

// TestFixture covers the three lifecycle rules: unjoined `go` spawns (with
// the interprocedural WaitGroup join through pool.wg staying quiet),
// undrained par.Pool submissions, and local channels that are only ever
// sent on.
func TestFixture(t *testing.T) {
	analysistest.RunWithConfig(t, "testdata/fixture", golife.Analyzer, callgraph.Config{
		Bounded: callgraph.DefaultBounded,
	})
}
