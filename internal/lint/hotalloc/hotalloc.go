// Package hotalloc polices the paper's per-transformation hot path: in
// any function reachable from place.Step (the Hot mark of the callgraph
// fact store), it flags the allocation shapes that turn a zero-alloc
// iteration into a garbage-collector treadmill — make/new, append growth,
// slice/map/pointer composite literals, closures, and interface boxing of
// non-pointer values at call sites. PR 2 spent real effort making the
// step loop reuse its buffers (symbolic refill, cached FFT plans, warm CG
// vectors); this analyzer is what keeps that property from eroding one
// convenient `make` at a time.
//
// The grow-on-demand idiom stays legal: an allocation guarded by an
// enclosing if whose condition inspects len, cap, or nil is amortized
// (it runs until the buffer is big enough, then never again), and error
// paths guarded by `err != nil` are off the steady-state trajectory. Both
// are recognized by the same rule — a len/cap/nil test dominating the
// allocation exempts it.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// Analyzer flags per-call allocations in functions on the Step hot path.
var Analyzer = &analysis.Analyzer{
	Name:       "hotalloc",
	Doc:        "flags allocations (make/new, append growth, composite literals, closures, interface boxing) in functions reachable from place.Step; the per-transformation loop is zero-alloc by design and allocation there is a perf regression",
	Run:        run,
	NeedsFacts: true,
}

func run(pass *analysis.Pass) error {
	if pass.Facts == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			key := callgraph.FuncKey(pass.TypesInfo, decl)
			if key == "" {
				continue
			}
			var fact callgraph.FuncFact
			if !pass.Facts.ObjectFact(key, &fact) || !fact.Hot {
				continue
			}
			checkBody(pass, decl)
		}
	}
	return nil
}

// checkBody walks one hot function, tracking the stack of enclosing if
// conditions so guarded (amortized) allocations stay quiet. Two further
// exemptions: a panic(...) subtree is a cold validation path that never
// runs in steady state, and a function literal handed directly to one of
// the bounded fork-joins (par.Run, par.Pair) is the sanctioned fan-out
// idiom — the API requires a closure, and it costs one allocation per
// fan-out, not one per element.
func checkBody(pass *analysis.Pass, decl *ast.FuncDecl) {
	var guards []ast.Expr
	exemptLits := map[*ast.FuncLit]bool{}
	bounded := make(map[string]bool, len(callgraph.DefaultBounded))
	for _, k := range callgraph.DefaultBounded {
		bounded[k] = true
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			if n.Init != nil {
				walk(n.Init)
			}
			walk(n.Cond)
			guards = append(guards, n.Cond)
			walk(n.Body)
			if n.Else != nil {
				walk(n.Else)
			}
			guards = guards[:len(guards)-1]
			return
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return
				}
			}
			if bounded[callgraph.CalleeKey(pass.TypesInfo, n)] {
				for _, a := range n.Args {
					if lit, isLit := a.(*ast.FuncLit); isLit {
						exemptLits[lit] = true
					}
				}
			}
			checkCall(pass, n, guards)
		case *ast.CompositeLit:
			checkComposite(pass, n, guards)
		case *ast.FuncLit:
			if !guarded(pass, guards) && !exemptLits[n] {
				pass.Reportf(n.Pos(), "closure allocates on the place.Step hot path; hoist it out of the loop or reuse a method value")
			}
			// Still walk the body: it runs on the hot path when invoked.
		case *ast.UnaryExpr:
			// &T{...}: an address-taken struct literal escapes to the heap.
			// Slice and map literals are flagged by checkComposite when the
			// traversal reaches them.
			if cl, ok := n.X.(*ast.CompositeLit); ok {
				if tv, tok := pass.TypesInfo.Types[cl]; tok {
					if _, isStruct := tv.Type.Underlying().(*types.Struct); isStruct && !guarded(pass, guards) {
						pass.Reportf(n.Pos(), "&%s{...} allocates on the place.Step hot path; reuse a preallocated value", types.ExprString(cl.Type))
					}
				}
			}
		}
		// Generic traversal over children.
		ast.Inspect(n, func(child ast.Node) bool {
			if child == n {
				return true
			}
			if child == nil {
				return false
			}
			switch c := child.(type) {
			case *ast.IfStmt, *ast.CallExpr, *ast.CompositeLit, *ast.FuncLit:
				walk(child)
				return false
			case *ast.UnaryExpr:
				if c.Op == token.AND {
					if _, ok := c.X.(*ast.CompositeLit); ok {
						walk(child)
						return false
					}
				}
			}
			return true
		})
	}
	walk(decl.Body)
}

// guarded reports whether any enclosing if condition tests len, cap or
// nil — the lazy-grow and error-path idioms.
func guarded(pass *analysis.Pass, guards []ast.Expr) bool {
	for _, g := range guards {
		ok := false
		ast.Inspect(g, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, isID := n.Fun.(*ast.Ident); isID && (id.Name == "len" || id.Name == "cap") {
					ok = true
				}
			case *ast.Ident:
				if n.Name == "nil" {
					ok = true
				}
			}
			return !ok
		})
		if ok {
			return true
		}
	}
	return false
}

// checkCall flags make/new/append and interface boxing at call sites.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, guards []ast.Expr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				switch id.Name {
				case "make":
					if !guarded(pass, guards) {
						pass.Reportf(call.Pos(), "make allocates on the place.Step hot path; reuse a buffer sized once (guard with len/cap for amortized growth)")
					}
					return
				case "new":
					if !guarded(pass, guards) {
						pass.Reportf(call.Pos(), "new allocates on the place.Step hot path; reuse a preallocated value")
					}
					return
				case "append":
					if !guarded(pass, guards) {
						pass.Reportf(call.Pos(), "append may grow its backing array on the place.Step hot path; preallocate to final capacity outside the loop")
					}
					// fall through: argument expressions may themselves box
				}
			}
		}
	}
	checkBoxing(pass, call, guards)
}

// checkBoxing flags call arguments converted to interface parameters when
// the concrete argument is a non-pointer value — the conversion heap-boxes
// it. Pointer-shaped values ride in the interface word for free.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr, guards []ast.Expr) {
	sig := callSignature(pass, call)
	if sig == nil || guarded(pass, guards) {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if types.IsInterface(at.Type) || at.IsNil() {
			continue
		}
		if pointerShaped(at.Type) {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes a %s into an interface on the place.Step hot path; each call heap-allocates the value", at.Type.String())
	}
}

// callSignature resolves the signature a call dispatches through, nil for
// type conversions and builtins.
func callSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// pointerShaped reports types whose interface representation needs no
// heap box: pointers, channels, maps, funcs, unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

// checkComposite flags heap-bound composite literals: slice and map
// literals always allocate; a struct literal allocates when its address is
// taken. Value struct literals are plain stack values and stay quiet.
func checkComposite(pass *analysis.Pass, lit *ast.CompositeLit, guards []ast.Expr) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || guarded(pass, guards) {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal allocates on the place.Step hot path; reuse a buffer")
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal allocates on the place.Step hot path; reuse a map (clear it between iterations)")
	}
}
