package hotalloc_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/hotalloc"
)

func TestFixture(t *testing.T) {
	analysistest.RunWithConfig(t, "testdata/fixture", hotalloc.Analyzer, callgraph.Config{
		HotRoots: []string{"repro/internal/lint/hotalloc/testdata/fixture.Step"},
		Bounded:  callgraph.DefaultBounded,
	})
}
