// Package fixture exercises hotalloc: Step is the configured hot root;
// everything it reaches must not allocate per call, except through the
// len/cap/nil-guarded amortized-growth idiom.
package fixture

type pair struct{ a, b int }

type solver struct {
	buf []float64
	tmp []int
	at  *pair
}

// Step is the hot root. It only calls; no direct allocations.
func Step(s *solver, n int) float64 {
	s.refill(n)
	s.grow(n)
	s.appendGrow(n)
	s.spawn(n)
	s.box(n)
	s.point(n)
	return total(s.buf)
}

func (s *solver) refill(n int) {
	inc := make([]float64, n) // want `make allocates on the place\.Step hot path`
	for i := range inc {
		inc[i] = 1
	}
}

// grow is the sanctioned idiom: the make runs only until the buffer is
// big enough, then never again.
func (s *solver) grow(n int) {
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	s.buf = s.buf[:n]
}

func (s *solver) appendGrow(v int) {
	s.tmp = append(s.tmp, v) // want `append may grow its backing array on the place\.Step hot path`
}

func (s *solver) spawn(n int) {
	fn := func(i int) { s.tmp[0] = i } // want `closure allocates on the place\.Step hot path`
	fn(n)
}

func record(key string, v any) {}

func (s *solver) box(v int) {
	record("iter", v) // want `argument boxes a int into an interface on the place\.Step hot path`
}

func (s *solver) point(n int) {
	s.at = &pair{a: n} // want `&pair\{\.\.\.\} allocates on the place\.Step hot path`
}

// total is hot but allocation-free: quiet.
func total(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Cold allocates freely: nothing reachable from Step calls it.
func Cold(n int) []int {
	out := make([]int, n)
	return append(out, len(out))
}
