// Lock-set and lifecycle facts: the kvet v3 layer of the per-function
// summary. Where the v2 fields answer "may this function block", the v3
// fields answer "which locks does it take, in what nesting order, which
// calls does it make while holding one, and which completion signals does
// it produce or consume".
//
// Synchronization state is tracked per sync class — a canonical name for
// "this primitive as addressed through this structure". A field selector
// canonicalizes to the type declaring the base expression
// ("repro/internal/serve.Server.mu" covers s.mu on every *Server in the
// program), a package-level variable to its qualified name, and anything
// else to a name scoped to the enclosing declaration ("...Submit#errc").
// Classes deliberately coarsen instances into roles, RacerD-style: two
// distinct Jobs share the class Job.mu, which is exactly the granularity
// lock-ordering discipline is stated at — and the reason a class edge is a
// proof obligation, not a proof.
package callgraph

import (
	"bytes"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// LockSite is one direct lock acquisition: the sync class and a
// representative source position (the first acquisition of that class).
type LockSite struct {
	Class string
	Pos   token.Pos
}

// LockPair is one direct nested acquisition observed in a function body:
// Inner was acquired at Pos while Outer was already held.
type LockPair struct {
	Outer string
	Inner string
	Pos   token.Pos
}

// HeldCall is one resolved call made while a lock class was held — the
// seed of an interprocedural lock edge: any class the callee can reach an
// acquisition of is ordered after Outer.
type HeldCall struct {
	Outer  string
	Callee string
	Pos    token.Pos
}

// CallSite is one representative call position per resolved synchronous
// callee. Unlike Callees it carries positions (for witness paths) and
// excludes `go`-spawned calls: the spawned goroutine runs with its own
// held set and must not extend a caller's lock path.
type CallSite struct {
	Callee string
	Pos    token.Pos
}

// lockKind classifies a call as a lock acquisition or release.
type lockKind int

const (
	opNone lockKind = iota
	opAcquire
	opRelease
)

// lockMethodKind maps the sync mutex methods to their held-set effect.
var lockMethodKind = map[string]lockKind{
	"(*sync.Mutex).Lock":    opAcquire,
	"(*sync.RWMutex).Lock":  opAcquire,
	"(*sync.RWMutex).RLock": opAcquire,

	"(*sync.Mutex).Unlock":    opRelease,
	"(*sync.RWMutex).Unlock":  opRelease,
	"(*sync.RWMutex).RUnlock": opRelease,
}

// drainMethods are method names that read as "stop accepting work and wait
// for completion" on whatever receiver they are called: a pool submitted
// to is considered drained when any of these is called on its class.
var drainMethods = map[string]bool{
	"Close": true, "CloseContext": true, "Shutdown": true,
	"Stop": true, "Drain": true,
}

// SyncClass canonicalizes the expression a synchronization primitive is
// addressed through into its sync class. Field selectors resolve through
// go/types selections to the base expression's named type; package-level
// variables to their qualified name; everything else (locals, parameters,
// complex expressions) is scoped to the enclosing declaration key with a
// '#' separator, so classes from different functions never unify.
func SyncClass(info *types.Info, e ast.Expr, scope string) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.StarExpr:
		return SyncClass(info, x.X, scope)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			if n := namedRecv(sel.Recv()); n != nil && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + x.Sel.Name
			}
		}
		// Package-qualified variable: pkgpath.Var.
		if obj := info.Uses[x.Sel]; obj != nil {
			if key := analysis.ObjectKey(obj); key != "" {
				return key
			}
		}
		return scope + "#" + types.ExprString(x)
	case *ast.Ident:
		if obj := info.ObjectOf(x); obj != nil {
			if key := analysis.ObjectKey(obj); key != "" {
				return key
			}
		}
		return scope + "#" + x.Name
	default:
		return scope + "#" + types.ExprString(e)
	}
}

// namedRecv unwraps a pointer and returns the named type underneath, or
// nil when the receiver is not a (pointer to a) named type.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// LocalClass reports whether a class is scoped to one declaration (a local
// variable or parameter) rather than a field or package-level name. Local
// classes only ever unify with uses in the same declaration (function
// literals included — they inline into the enclosing declaration's scope).
func LocalClass(class string) bool {
	return bytes.IndexByte([]byte(class), '#') >= 0
}

// ShortClass trims import-path directories out of a class or function key
// for diagnostics: "repro/internal/serve.Server.mu" reads "serve.Server.mu"
// and "(*repro/internal/par.Pool).Submit" reads "(*par.Pool).Submit".
func ShortClass(c string) string {
	b := []byte(c)
	for {
		i := bytes.IndexByte(b, '/')
		if i < 0 {
			return string(b)
		}
		j := i
		for j > 0 && !shortSep(b[j-1]) {
			j--
		}
		b = append(b[:j], b[i+1:]...)
	}
}

func shortSep(c byte) bool {
	switch c {
	case '(', '*', '#', ' ', ',':
		return true
	}
	return false
}

// syncWalker fills the v3 fields of one FuncFact by threading a held-lock
// set through the function body, lockheld-style: branches are walked with
// a copy of the held set, a deferred unlock keeps its critical section
// open to function end, `go` statement bodies are walked under an empty
// held set (the spawned goroutine does not hold the caller's locks) while
// still contributing their own acquisitions and signals, and every other
// function literal inherits the current held set (the immediately-invoked
// callback idiom: par.Run under a lock runs the closure under that lock).
type syncWalker struct {
	info  *types.Info
	f     *FuncFact
	scope string
	seen  map[string]bool
}

// summarizeSync is the v3 half of summarize: it records lock-set and
// lifecycle facts into f.
func summarizeSync(pkg *load.Package, decl *ast.FuncDecl, f *FuncFact) {
	if decl.Body == nil {
		return
	}
	w := &syncWalker{info: pkg.Info, f: f, scope: f.Key, seen: make(map[string]bool)}
	w.stmts(decl.Body.List, nil)

	sort.Slice(f.Acquires, func(i, j int) bool { return f.Acquires[i].Class < f.Acquires[j].Class })
	sort.Slice(f.LockPairs, func(i, j int) bool {
		a, b := f.LockPairs[i], f.LockPairs[j]
		if a.Outer != b.Outer {
			return a.Outer < b.Outer
		}
		return a.Inner < b.Inner
	})
	sort.Slice(f.HeldCalls, func(i, j int) bool {
		a, b := f.HeldCalls[i], f.HeldCalls[j]
		if a.Outer != b.Outer {
			return a.Outer < b.Outer
		}
		return a.Callee < b.Callee
	})
	sort.Slice(f.CallSites, func(i, j int) bool { return f.CallSites[i].Callee < f.CallSites[j].Callee })
	for _, set := range []*[]string{
		&f.WGWaits, &f.WGDones, &f.ChanRecvs, &f.ChanSends, &f.ChanCloses, &f.Drains,
	} {
		sort.Strings(*set)
	}
}

// once reports whether key is new, marking it.
func (w *syncWalker) once(key string) bool {
	if w.seen[key] {
		return false
	}
	w.seen[key] = true
	return true
}

// addClass appends class to the set *dst if not already present (tag keys
// the dedup namespace per field).
func (w *syncWalker) addClass(dst *[]string, tag, class string) {
	if w.once(tag + "\x00" + class) {
		*dst = append(*dst, class)
	}
}

// acquire records one lock acquisition under the current held set and
// returns the extended set.
func (w *syncWalker) acquire(class string, pos token.Pos, held []string) []string {
	if w.once("acq\x00" + class) {
		w.f.Acquires = append(w.f.Acquires, LockSite{Class: class, Pos: pos})
	}
	for _, outer := range held {
		if w.once("pair\x00" + outer + "\x00" + class) {
			w.f.LockPairs = append(w.f.LockPairs, LockPair{Outer: outer, Inner: class, Pos: pos})
		}
	}
	return append(held, class)
}

// release pops the most recent acquisition of class.
func release(held []string, class string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == class {
			return append(append([]string(nil), held[:i]...), held[i+1:]...)
		}
	}
	return held
}

func copyHeldSet(held []string) []string {
	return append([]string(nil), held...)
}

// lockOp classifies call as a mutex acquire/release and resolves the
// receiver's sync class.
func (w *syncWalker) lockOp(call *ast.CallExpr) (string, lockKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	fn, ok := w.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", opNone
	}
	kind := lockMethodKind[fn.FullName()]
	if kind == opNone {
		return "", opNone
	}
	return SyncClass(w.info, sel.X, w.scope), kind
}

func (w *syncWalker) stmts(list []ast.Stmt, held []string) []string {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *syncWalker) stmt(s ast.Stmt, held []string) []string {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if class, kind := w.lockOp(call); kind == opAcquire {
				return w.acquire(class, s.Pos(), held)
			} else if kind == opRelease {
				return release(held, class)
			}
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		if _, kind := w.lockOp(s.Call); kind != opNone {
			// A deferred unlock keeps the critical section open to function
			// end; a deferred Lock is nonsense left to vet.
			break
		}
		// Deferred Done/close/funclits still run on this goroutine before
		// return: record them like any call.
		w.expr(s.Call, held)
	case *ast.SendStmt:
		w.addClass(&w.f.ChanSends, "snd", SyncClass(w.info, s.Chan, w.scope))
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, nil)
		}
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, copyHeldSet(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeldSet(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		body := w.stmts(s.Body.List, copyHeldSet(held))
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		if tv, ok := w.info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.addClass(&w.f.ChanRecvs, "rcv", SyncClass(w.info, s.X, w.scope))
			}
		}
		w.expr(s.X, held)
		w.stmts(s.Body.List, copyHeldSet(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					w.expr(e, held)
				}
				w.stmts(cl.Body, copyHeldSet(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				w.stmts(cl.Body, copyHeldSet(held))
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				h := copyHeldSet(held)
				if cl.Comm != nil {
					h = w.stmt(cl.Comm, h)
				}
				w.stmts(cl.Body, h)
			}
		}
	}
	return held
}

// expr records sync-relevant operations inside an expression evaluated
// under held: channel receives, calls (WaitGroup ops, closes, drains,
// resolved callees), and function-literal bodies (inlined under the
// current held set — statement-level so their own lock regions thread).
func (w *syncWalker) expr(e ast.Expr, held []string) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, copyHeldSet(held))
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.addClass(&w.f.ChanRecvs, "rcv", SyncClass(w.info, n.X, w.scope))
			}
		case *ast.CallExpr:
			w.call(n, held)
		}
		return true
	})
}

// call records one call expression: builtin close, WaitGroup Wait/Done,
// drain-shaped methods, and the synchronous call edge with its held set.
func (w *syncWalker) call(call *ast.CallExpr, held []string) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) == 1 {
		if b, ok := w.info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
			w.addClass(&w.f.ChanCloses, "cls", SyncClass(w.info, call.Args[0], w.scope))
			return
		}
	}
	var fn *types.Func
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if sel != nil {
		fn, _ = w.info.Uses[sel.Sel].(*types.Func)
	} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		fn, _ = w.info.Uses[id].(*types.Func)
	}
	if fn == nil {
		return
	}
	key := fn.FullName()
	if sel != nil {
		switch key {
		case "(*sync.WaitGroup).Wait":
			w.addClass(&w.f.WGWaits, "wgw", SyncClass(w.info, sel.X, w.scope))
			return
		case "(*sync.WaitGroup).Done":
			w.addClass(&w.f.WGDones, "wgd", SyncClass(w.info, sel.X, w.scope))
			return
		}
		if _, isField := w.info.Selections[sel]; isField && drainMethods[sel.Sel.Name] {
			w.addClass(&w.f.Drains, "drn", SyncClass(w.info, sel.X, w.scope))
		}
	}
	if fn.Pkg() == nil || fn.Pkg().Path() == "sync" {
		return // builtins; mutex ops are held-set effects, not edges
	}
	if w.once("call\x00" + key) {
		w.f.CallSites = append(w.f.CallSites, CallSite{Callee: key, Pos: call.Pos()})
	}
	for _, outer := range held {
		if w.once("held\x00" + outer + "\x00" + key) {
			w.f.HeldCalls = append(w.f.HeldCalls, HeldCall{Outer: outer, Callee: key, Pos: call.Pos()})
		}
	}
}
