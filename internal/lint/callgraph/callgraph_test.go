package callgraph

import (
	"testing"

	"repro/internal/lint/load"
)

const fixtureBase = "repro/internal/lint/callgraph/testdata/multi"

// loadMulti loads the two-package fixture (b imports a) exactly the way
// kvet loads the tree: one Load call, a's imports resolved from source, b's
// view of a resolved through export data.
func loadMulti(t *testing.T) []*load.Package {
	t.Helper()
	pkgs, err := load.Load(load.Config{Dir: "testdata/multi"}, "./...")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	return pkgs
}

func analyzeMulti(t *testing.T, cfg Config) (*Store, *Graph) {
	t.Helper()
	store := NewStore()
	g := Analyze(loadMulti(t), store, cfg)
	return store, g
}

func TestDirectSummaries(t *testing.T) {
	_, g := analyzeMulti(t, Config{})

	sleepy := g.Func(fixtureBase + "/a.Sleepy")
	if sleepy == nil {
		t.Fatal("no summary for a.Sleepy")
	}
	if sleepy.Blocks&Sleep == 0 {
		t.Errorf("a.Sleepy Blocks = %v, want Sleep", sleepy.Blocks)
	}
	if sleepy.HasCtx {
		t.Error("a.Sleepy should not be cancellation-aware")
	}

	ctxOK := g.Func(fixtureBase + "/a.CtxOK")
	if ctxOK == nil || !ctxOK.HasCtx {
		t.Error("a.CtxOK should be cancellation-aware")
	}
	if ctxOK.Blocks&Chan == 0 {
		t.Errorf("a.CtxOK Blocks = %v, want Chan", ctxOK.Blocks)
	}

	if calm := g.Func(fixtureBase + "/a.Calm"); calm == nil || calm.Blocks != 0 || calm.MayBlock != 0 {
		t.Errorf("a.Calm should have no blocking classes, got %+v", calm)
	}

	if bump := g.Func("(*" + fixtureBase + "/a.Counter).Bump"); bump == nil {
		t.Error("no summary under the method key (*a.Counter).Bump")
	}
}

func TestCrossPackagePropagation(t *testing.T) {
	_, g := analyzeMulti(t, Config{})

	// b.Cold calls a.Sleepy across the package boundary; the callee key
	// must match the fact exported when a was summarized.
	cold := g.Func(fixtureBase + "/b.Cold")
	if cold == nil {
		t.Fatal("no summary for b.Cold")
	}
	if cold.Blocks != 0 {
		t.Errorf("b.Cold has no direct blocking ops, got %v", cold.Blocks)
	}
	if cold.MayBlock&Sleep == 0 {
		t.Errorf("b.Cold MayBlock = %v, want Sleep via a.Sleepy", cold.MayBlock)
	}

	// Two hops: b.Handler -> a.Chain -> a.Sleepy.
	handler := g.Func(fixtureBase + "/b.Handler")
	if handler == nil || handler.MayBlock&Sleep == 0 {
		t.Errorf("b.Handler should reach a.Sleepy's sleep, got %+v", handler)
	}

	// Method call across the boundary resolves to the method key.
	um := g.Func(fixtureBase + "/b.UsesMethod")
	wantCallee := "(*" + fixtureBase + "/a.Counter).Bump"
	found := false
	for _, c := range um.Callees {
		if c == wantCallee {
			found = true
		}
	}
	if !found {
		t.Errorf("b.UsesMethod callees = %v, want %s", um.Callees, wantCallee)
	}
}

func TestReachabilityMarks(t *testing.T) {
	_, g := analyzeMulti(t, Config{HotRoots: []string{fixtureBase + "/b.Cold"}})

	// Handler is a root by signature; the mark must cross into package a.
	for _, key := range []string{
		fixtureBase + "/b.Handler",
		fixtureBase + "/a.Chain",
		fixtureBase + "/a.Sleepy",
	} {
		if f := g.Func(key); f == nil || !f.CtxReachable {
			t.Errorf("%s should be CtxReachable", key)
		}
	}
	if f := g.Func(fixtureBase + "/b.Cold"); f.CtxReachable {
		t.Error("b.Cold must not be CtxReachable")
	}
	if f := g.Func(fixtureBase + "/a.Calm"); f.CtxReachable {
		t.Error("a.Calm must not be CtxReachable")
	}

	// Hot marks follow the explicit root list.
	for key, want := range map[string]bool{
		fixtureBase + "/b.Cold":   true,
		fixtureBase + "/a.Sleepy": true,
		fixtureBase + "/a.CtxOK":  false,
	} {
		if f := g.Func(key); f == nil || f.Hot != want {
			t.Errorf("%s Hot = %v, want %v", key, f != nil && f.Hot, want)
		}
	}
}

func TestColdBarrier(t *testing.T) {
	// Without a barrier the hot mark flows b.Handler -> a.Chain -> a.Sleepy.
	_, g := analyzeMulti(t, Config{HotRoots: []string{fixtureBase + "/b.Handler"}})
	for _, key := range []string{fixtureBase + "/a.Chain", fixtureBase + "/a.Sleepy"} {
		if f := g.Func(key); f == nil || !f.Hot {
			t.Errorf("without Cold, %s should be Hot", key)
		}
	}

	// Declaring a.Chain cold stops the walk there: neither it nor anything
	// only reachable through it is marked.
	_, g = analyzeMulti(t, Config{
		HotRoots: []string{fixtureBase + "/b.Handler"},
		Cold:     []string{fixtureBase + "/a.Chain"},
	})
	if f := g.Func(fixtureBase + "/b.Handler"); f == nil || !f.Hot {
		t.Error("the root itself must stay Hot")
	}
	for _, key := range []string{fixtureBase + "/a.Chain", fixtureBase + "/a.Sleepy"} {
		if f := g.Func(key); f == nil || f.Hot {
			t.Errorf("with a.Chain cold, %s must not be Hot", key)
		}
	}
}

func TestBoundedSuppressesEdge(t *testing.T) {
	_, g := analyzeMulti(t, Config{Bounded: []string{fixtureBase + "/a.Sleepy"}})
	if cold := g.Func(fixtureBase + "/b.Cold"); cold.MayBlock != 0 {
		t.Errorf("with a.Sleepy bounded, b.Cold MayBlock = %v, want none", cold.MayBlock)
	}
	// The closure inside Fanout still attributes to Fanout itself when the
	// callee is not bounded; with it bounded the attribution disappears too.
	if f := g.Func(fixtureBase + "/b.Fanout"); f.MayBlock != 0 {
		t.Errorf("bounded callee should not leak through the closure, got %v", f.MayBlock)
	}
}

func TestAcquireSetCrossPackage(t *testing.T) {
	_, g := analyzeMulti(t, Config{})
	aClass := fixtureBase + "/a.Guarded.mu"
	bClass := fixtureBase + "/b.Holder.mu"

	locked := g.Func(fixtureBase + "/a.Locked")
	if locked == nil {
		t.Fatal("no summary for a.Locked")
	}
	if !hasString(locked.AcquireSet, aClass) {
		t.Errorf("a.Locked AcquireSet = %v, want %s", locked.AcquireSet, aClass)
	}

	// b.Nested acquires its own lock directly and a.Guarded.mu through the
	// cross-package call; both classes must be in the closed set.
	nested := g.Func(fixtureBase + "/b.Nested")
	if nested == nil {
		t.Fatal("no summary for b.Nested")
	}
	for _, class := range []string{aClass, bClass} {
		if !hasString(nested.AcquireSet, class) {
			t.Errorf("b.Nested AcquireSet = %v, missing %s", nested.AcquireSet, class)
		}
	}

	// The go-spawned call must not extend the spawner's synchronous set —
	// a goroutine's acquisitions do not happen while the caller runs.
	spawned := g.Func(fixtureBase + "/b.Spawned")
	if spawned == nil {
		t.Fatal("no summary for b.Spawned")
	}
	if len(spawned.AcquireSet) != 0 {
		t.Errorf("b.Spawned AcquireSet = %v, want empty (callee is go-spawned)", spawned.AcquireSet)
	}
}

func TestConcEdgeCrossPackage(t *testing.T) {
	store, g := analyzeMulti(t, Config{})
	aClass := fixtureBase + "/a.Guarded.mu"
	bClass := fixtureBase + "/b.Holder.mu"

	conc := g.Conc()
	if conc == nil {
		t.Fatal("no ConcFact on the graph")
	}
	var edge *LockEdge
	for i := range conc.Edges {
		if conc.Edges[i].From == bClass && conc.Edges[i].To == aClass {
			edge = &conc.Edges[i]
		}
	}
	if edge == nil {
		t.Fatalf("no %s -> %s edge; edges: %+v", bClass, aClass, conc.Edges)
	}
	if len(edge.Path) < 2 {
		t.Fatalf("cross-package edge should carry a multi-step witness, got %+v", edge.Path)
	}
	if want := fixtureBase + "/b.Nested"; edge.Path[0].Func != want {
		t.Errorf("witness starts at %s, want %s", edge.Path[0].Func, want)
	}
	if want := fixtureBase + "/a.Locked"; edge.Path[len(edge.Path)-1].Func != want {
		t.Errorf("witness ends at %s, want %s", edge.Path[len(edge.Path)-1].Func, want)
	}

	// No cycle in this fixture: the edge is one-directional.
	if len(conc.Cycles) != 0 {
		t.Errorf("acyclic fixture produced cycles: %+v", conc.Cycles)
	}

	// The singleton fact round-trips through the store under GlobalKey.
	var round ConcFact
	if !store.ObjectFact(GlobalKey, &round) {
		t.Fatal("ConcFact not in store under GlobalKey")
	}
	if len(round.Edges) != len(conc.Edges) {
		t.Errorf("round-tripped ConcFact has %d edges, want %d", len(round.Edges), len(conc.Edges))
	}
}

func hasString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestStoreRoundTrip(t *testing.T) {
	store, _ := analyzeMulti(t, Config{})
	var f FuncFact
	if !store.ObjectFact(fixtureBase+"/a.Sleepy", &f) {
		t.Fatal("fact for a.Sleepy not in store")
	}
	if f.Key != fixtureBase+"/a.Sleepy" || f.Blocks&Sleep == 0 {
		t.Errorf("round-tripped fact mismatch: %+v", f)
	}
	if store.ObjectFact(fixtureBase+"/a.NoSuch", &f) {
		t.Error("lookup of an absent key must fail")
	}
}
