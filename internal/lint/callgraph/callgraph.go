// Package callgraph builds the interprocedural layer under kvet's v2
// analyzers: a per-function summary fact (does it block, how, does it take
// a context, whom does it call) exported per package object, and a
// package-spanning call graph over those facts with reachability marks
// (is this function on a cancellation path from place.Run or an HTTP
// handler; is it inside place.Step's per-transformation hot loop).
//
// Facts are keyed by the canonical object string (types.Func.FullName),
// not by object identity: the load package type-checks target packages
// from source but resolves their imports through compiled export data, so
// the same function is a different types.Object on each side of a package
// boundary while its FullName is identical. Exporting the summary under
// that key when the defining package is analyzed and looking it up by the
// same key at every cross-package call site is what carries the analysis
// across package boundaries.
//
// The model is deliberately a summary, not a proof. Dynamic calls through
// function values and interface methods are edges to nowhere (no fact ever
// materializes for them), and ops inside `go` statements count against the
// enclosing function even though they block a different goroutine.
// Function literals are inlined into their enclosing declaration, which
// recovers the repo's dominant callback idiom (par.Run(w, n, func(...){...})
// attributes the closure's ops to the caller, where they belong).
package callgraph

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Class is a bitmask of blocking-operation classes. ctxflow cares about
// everything except Lock (mutexes are short-held by policy — lockheld
// enforces that separately); lockheld cares about all of them, nested Lock
// included.
type Class uint8

const (
	// Chan marks channel sends, receives, selects without a default, and
	// ranges over channels.
	Chan Class = 1 << iota
	// Sleep marks time.Sleep and timer/ticker waits.
	Sleep
	// Wait marks WaitGroup/Cond joins with no deadline.
	Wait
	// Lock marks mutex acquisition.
	Lock
	// IO marks file, network and process I/O.
	IO
)

// String spells the classes in a fixed order, for diagnostics.
func (c Class) String() string {
	var parts []string
	for _, e := range [...]struct {
		bit  Class
		name string
	}{{Chan, "chan-op"}, {Sleep, "sleep"}, {Wait, "wait"}, {Lock, "lock"}, {IO, "I/O"}} {
		if c&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// FuncFact is the per-function interprocedural summary. The builder fills
// the direct fields; Finalize fills the closure fields and marks.
type FuncFact struct {
	// Key is the canonical object string the fact is stored under.
	Key string
	// HasCtx reports a context.Context (or *http.Request, which carries
	// one) among the parameters, i.e. the function is cancellation-aware.
	HasCtx bool
	// HandlerShape reports the (http.ResponseWriter, *http.Request)
	// signature; such functions are automatic cancellation roots.
	HandlerShape bool
	// Blocks is the union of blocking classes of ops in the function body
	// itself (function literals included).
	Blocks Class
	// BlockDetail names one representative direct blocking op per class,
	// e.g. "time.Sleep", for diagnostics.
	BlockDetail []string
	// Callees lists the canonical keys of statically resolved calls,
	// sorted and deduplicated.
	Callees []string

	// The v3 lock-set and lifecycle facts (see sync.go). All class names
	// are canonical sync classes; all slices are sorted and deduplicated.
	//
	// Acquires lists the lock classes this function acquires directly
	// (function literals included; `go` bodies included — the spawned
	// goroutine has its own held set but the acquisition is still this
	// declaration's code).
	Acquires []LockSite
	// LockPairs records direct nested acquisition: Inner taken at Pos
	// while Outer was held in this body.
	LockPairs []LockPair
	// HeldCalls records resolved calls made while a lock class was held.
	HeldCalls []HeldCall
	// CallSites records one representative position per resolved
	// synchronous callee (`go`-spawned calls excluded), for witness paths.
	CallSites []CallSite
	// WGWaits / WGDones are WaitGroup classes this function calls
	// Wait/Done on.
	WGWaits []string
	WGDones []string
	// ChanRecvs / ChanSends / ChanCloses are channel classes this function
	// receives from, sends on, and closes.
	ChanRecvs  []string
	ChanSends  []string
	ChanCloses []string
	// Drains are receiver classes a drain-shaped method (Close,
	// CloseContext, Shutdown, Stop, Drain) is called on.
	Drains []string

	// MayBlock is the closure union: Blocks of this function and of every
	// function reachable from it through resolved calls. Filled by
	// Finalize.
	MayBlock Class
	// AcquireSet is the closure union of lock classes acquired by this
	// function or any function synchronously reachable from it through
	// CallSites. Filled by Finalize.
	AcquireSet []string
	// CtxReachable marks functions reachable from a cancellation root
	// (place.Run, the serve handlers). Filled by Finalize.
	CtxReachable bool
	// Hot marks functions reachable from a hot-loop root (place.Step).
	// Filled by Finalize.
	Hot bool
}

// AFact marks FuncFact as an analysis.Fact.
func (*FuncFact) AFact() {}

// Config parameterizes graph construction. The repo policy lives in
// lint.GraphConfig; fixtures pass their own roots.
type Config struct {
	// CtxRoots are canonical keys of cancellation entry points. Functions
	// with HandlerShape are roots automatically.
	CtxRoots []string
	// HotRoots are canonical keys of hot-loop entry points.
	HotRoots []string
	// Bounded are canonical keys treated as non-blocking even though they
	// contain waits: bounded fork-joins (par.Run, par.Pair) that return as
	// soon as their own CPU-bound work finishes, so cancellation at their
	// granularity is neither possible nor wanted.
	Bounded []string
	// Cold are canonical keys where the Hot reachability walk stops: the
	// function itself is not marked and its callees are not visited through
	// it. This declares a sanctioned cache-miss / construction layer — code
	// a hot root can reach on the first iteration but that amortizes away
	// in steady state (plan construction behind a cache lookup, symbolic
	// rebuilds behind a topology check).
	Cold []string
}

// DefaultBounded lists the repo's sanctioned bounded fork-join primitives:
// they contain waits and channel ops, but return as soon as their own
// CPU-bound work finishes, so treating them as blocking would indict every
// hot-path caller without making anything more cancellable. Cancellation
// happens at the granularity of the place.Step that invoked them.
var DefaultBounded = []string{
	"repro/internal/par.Run",
	"repro/internal/par.Pair",
}

// stdlibBlocking classifies standard-library calls by canonical key. The
// table is a policy, not an enumeration of truth: fmt.Fprintf to a
// bytes.Buffer does not block, so writer-parameterized functions stay out;
// encoding/json Encode/Decode are in because every use in this repo wraps
// a file or socket.
var stdlibBlocking = map[string]Class{
	"time.Sleep": Sleep,

	"(*sync.WaitGroup).Wait": Wait,
	"(*sync.Cond).Wait":      Wait,

	"(*sync.Mutex).Lock":    Lock,
	"(*sync.RWMutex).Lock":  Lock,
	"(*sync.RWMutex).RLock": Lock,

	"os.Create": IO, "os.Open": IO, "os.OpenFile": IO,
	"os.ReadFile": IO, "os.WriteFile": IO, "os.ReadDir": IO,
	"os.Remove": IO, "os.RemoveAll": IO, "os.Rename": IO,
	"os.Mkdir": IO, "os.MkdirAll": IO, "os.MkdirTemp": IO,
	"(*os.File).Read": IO, "(*os.File).ReadAt": IO,
	"(*os.File).Write": IO, "(*os.File).WriteAt": IO,
	"(*os.File).WriteString": IO, "(*os.File).Close": IO,
	"(*os.File).Sync": IO,

	"io.Copy": IO, "io.CopyN": IO, "io.ReadAll": IO, "io.ReadFull": IO,

	"(*bufio.Writer).Flush": IO,

	"net.Dial": IO, "net.DialTimeout": IO, "net.Listen": IO,

	"net/http.Get": IO, "net/http.Post": IO, "net/http.Head": IO,
	"net/http.PostForm": IO, "net/http.ListenAndServe": IO,
	"(*net/http.Client).Do": IO, "(*net/http.Client).Get": IO,
	"(*net/http.Client).Post": IO, "(*net/http.Client).Head": IO,
	"(*net/http.Client).PostForm":       IO,
	"(*net/http.Server).Serve":          IO,
	"(*net/http.Server).ListenAndServe": IO,

	"(*os/exec.Cmd).Run": IO, "(*os/exec.Cmd).Output": IO,
	"(*os/exec.Cmd).CombinedOutput": IO, "(*os/exec.Cmd).Wait": Wait,

	"(*encoding/json.Encoder).Encode": IO,
	"(*encoding/json.Decoder).Decode": IO,

	"fmt.Print": IO, "fmt.Printf": IO, "fmt.Println": IO,
	"fmt.Scan": IO, "fmt.Scanf": IO, "fmt.Scanln": IO,
}

// ClassifyCall resolves call's static callee and classifies it: a blocking
// class when the callee is in the stdlib table, the callee's canonical key
// when it is a project function worth an edge, or neither (dynamic call or
// uninteresting stdlib). bounded suppresses the named keys.
func ClassifyCall(info *types.Info, call *ast.CallExpr, bounded map[string]bool) (cls Class, what string, callee string) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return 0, "", ""
	}
	key := fn.FullName()
	if bounded[key] {
		return 0, "", ""
	}
	if c, ok := stdlibBlocking[key]; ok {
		return c, key, ""
	}
	if fn.Pkg() == nil {
		return 0, "", "" // builtins (error.Error and friends)
	}
	// Every other resolved callee becomes an edge. Edges into packages
	// outside the analyzed set (stdlib included) are inert: no fact ever
	// materializes under their key, so traversal stops there.
	return 0, "", key
}

// CalleeKey resolves the canonical key of a call's static callee, or ""
// for dynamic calls and builtins — for analyzers that need to recognize
// specific callees (e.g. the bounded fork-joins) without classification.
func CalleeKey(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.FullName()
}

// calleeFunc resolves the *types.Func a call statically dispatches to, or
// nil for dynamic calls (function values, interface methods resolve to the
// abstract method — kept, it still yields a stable key even if no fact
// ever lands there).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// summarize walks one function declaration and produces its direct fact.
func summarize(pkg *load.Package, decl *ast.FuncDecl, key string, bounded map[string]bool) *FuncFact {
	f := &FuncFact{Key: key}
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			tv, ok := pkg.Info.Types[field.Type]
			if !ok {
				continue
			}
			switch typeKey(tv.Type) {
			case "context.Context", "*net/http.Request":
				f.HasCtx = true
			}
		}
		f.HandlerShape = handlerShape(pkg.Info, decl.Type)
	}
	if decl.Body == nil {
		return f
	}
	callees := map[string]bool{}
	detail := map[Class]string{}
	addOp := func(c Class, what string) {
		f.Blocks |= c
		if _, ok := detail[c]; !ok {
			detail[c] = what
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			cls, what, callee := ClassifyCall(pkg.Info, n, bounded)
			if cls != 0 {
				addOp(cls, what)
			}
			if callee != "" {
				callees[callee] = true
			}
		case *ast.SendStmt:
			addOp(Chan, "chan send")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				addOp(Chan, "chan receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				addOp(Chan, "select")
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					addOp(Chan, "range over chan")
				}
			}
		}
		return true
	})
	for c := Chan; c <= IO; c <<= 1 {
		if w, ok := detail[c]; ok {
			f.BlockDetail = append(f.BlockDetail, w)
		}
	}
	f.Callees = make([]string, 0, len(callees))
	for k := range callees {
		f.Callees = append(f.Callees, k)
	}
	sort.Strings(f.Callees)
	summarizeSync(pkg, decl, f)
	return f
}

// selectHasDefault reports whether sel can always proceed immediately.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// typeKey renders a type as its canonical string ("context.Context",
// "*net/http.Request") for table lookups.
func typeKey(t types.Type) string {
	return types.TypeString(t, nil)
}

// handlerShape matches func(http.ResponseWriter, *http.Request).
func handlerShape(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	var flat []string
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			return false
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			flat = append(flat, typeKey(tv.Type))
		}
	}
	return len(flat) == 2 && flat[0] == "net/http.ResponseWriter" && flat[1] == "*net/http.Request"
}

// FuncKey returns the canonical key for the function declared by decl, or
// "" when the declaration has no resolvable object.
func FuncKey(info *types.Info, decl *ast.FuncDecl) string {
	obj := info.Defs[decl.Name]
	if obj == nil {
		return ""
	}
	return analysis.ObjectKey(obj)
}
