// Package b is the dependent side of the callgraph fixture: its call
// sites resolve into package a through export data, and reachability from
// its handler must cross the package boundary.
package b

import (
	"net/http"
	"sync"

	"repro/internal/lint/callgraph/testdata/multi/a"
)

// Handler is an automatic cancellation root by signature.
func Handler(w http.ResponseWriter, r *http.Request) {
	a.Chain()
}

// Cold is not reachable from any root.
func Cold() {
	a.Sleepy()
}

// Fanout passes a closure; the closure's ops belong to Fanout.
func Fanout(run func(func())) {
	run(func() {
		a.Sleepy()
	})
}

// UsesMethod calls a method across the boundary.
func UsesMethod(c *a.Counter) {
	c.Bump()
}

// Holder has its own lock class on the dependent side.
type Holder struct {
	mu sync.Mutex
}

// Nested calls into a while holding its own lock: the cross-package
// acquire must land in Nested's AcquireSet and produce a b.Holder.mu ->
// a.Guarded.mu order edge whose witness path crosses the boundary.
func Nested(h *Holder, g *a.Guarded) {
	h.mu.Lock()
	a.Locked(g)
	h.mu.Unlock()
}

// Spawned runs the acquiring callee on its own goroutine, so the
// acquisition must NOT extend Spawned's synchronous AcquireSet.
func Spawned(g *a.Guarded) {
	go a.Locked(g)
}
