// Package b is the dependent side of the callgraph fixture: its call
// sites resolve into package a through export data, and reachability from
// its handler must cross the package boundary.
package b

import (
	"net/http"

	"repro/internal/lint/callgraph/testdata/multi/a"
)

// Handler is an automatic cancellation root by signature.
func Handler(w http.ResponseWriter, r *http.Request) {
	a.Chain()
}

// Cold is not reachable from any root.
func Cold() {
	a.Sleepy()
}

// Fanout passes a closure; the closure's ops belong to Fanout.
func Fanout(run func(func())) {
	run(func() {
		a.Sleepy()
	})
}

// UsesMethod calls a method across the boundary.
func UsesMethod(c *a.Counter) {
	c.Bump()
}
