// Package a is the dependency side of the callgraph fixture: its facts
// must be visible when package b (which imports it) is summarized.
package a

import (
	"context"
	"sync"
	"time"
)

// Sleepy blocks without taking a context.
func Sleepy() {
	time.Sleep(time.Millisecond)
}

// CtxOK blocks but is cancellation-aware.
func CtxOK(ctx context.Context) {
	<-ctx.Done()
}

// Calm neither blocks nor calls anything that does.
func Calm() int { return 1 }

// Chain reaches Sleepy through one local hop.
func Chain() {
	Sleepy()
}

// Counter is a type for method-key coverage.
type Counter struct{ n int }

// Bump is a method with a pointer receiver.
func (c *Counter) Bump() { c.n++ }

// Guarded carries its own lock; acquisitions of g.mu from any caller must
// coarsen into the one a.Guarded.mu class.
type Guarded struct {
	mu sync.Mutex
	v  int
}

// Locked acquires the Guarded lock around its bump.
func Locked(g *Guarded) {
	g.mu.Lock()
	g.v++
	g.mu.Unlock()
}
