package callgraph

import (
	"go/ast"
	"reflect"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Store is the concrete analysis.FactStore: facts bucketed by dynamic
// type, then by canonical object key. One Store spans one driver
// invocation, so facts exported while analyzing a dependency are visible
// while analyzing its dependents.
type Store struct {
	facts map[string]map[string]analysis.Fact
}

// NewStore returns an empty fact store.
func NewStore() *Store {
	return &Store{facts: make(map[string]map[string]analysis.Fact)}
}

// ExportObjectFact stores f under key, replacing any previous fact of the
// same concrete type.
func (s *Store) ExportObjectFact(key string, f analysis.Fact) {
	if key == "" || f == nil {
		return
	}
	tn := reflect.TypeOf(f).String()
	m := s.facts[tn]
	if m == nil {
		m = make(map[string]analysis.Fact)
		s.facts[tn] = m
	}
	m[key] = f
}

// ObjectFact loads the fact of ptr's concrete type for key into ptr.
func (s *Store) ObjectFact(key string, ptr analysis.Fact) bool {
	if key == "" || ptr == nil {
		return false
	}
	f, ok := s.facts[reflect.TypeOf(ptr).String()][key]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// Graph is the whole-program view over the FuncFacts of one driver
// invocation. It shares fact pointers with the Store, so Finalize's
// closure fields and marks are visible through both.
type Graph struct {
	funcs map[string]*FuncFact
	order []string // sorted keys, for deterministic iteration
	conc  *ConcFact
}

// Func returns the summary for key, or nil.
func (g *Graph) Func(key string) *FuncFact { return g.funcs[key] }

// Conc returns the condensed whole-program concurrency fact.
func (g *Graph) Conc() *ConcFact { return g.conc }

// Len returns the number of summarized functions.
func (g *Graph) Len() int { return len(g.order) }

// Analyze builds function summaries for every package (visited in
// dependency order so a summary is exported before any dependent's call
// sites reference it), exports them into store, then finalizes the global
// graph: fixpoint-propagates MayBlock through the call edges and marks
// reachability from the configured roots.
func Analyze(pkgs []*load.Package, store *Store, cfg Config) *Graph {
	bounded := make(map[string]bool, len(cfg.Bounded))
	for _, k := range cfg.Bounded {
		bounded[k] = true
	}
	g := &Graph{funcs: make(map[string]*FuncFact)}
	for _, pkg := range depOrder(pkgs) {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				key := FuncKey(pkg.Info, decl)
				if key == "" {
					continue
				}
				f := summarize(pkg, decl, key, bounded)
				g.funcs[key] = f
				store.ExportObjectFact(key, f)
			}
		}
	}
	g.order = make([]string, 0, len(g.funcs))
	for k := range g.funcs {
		g.order = append(g.order, k)
	}
	sort.Strings(g.order)
	g.finalize(cfg)
	g.conc = buildConc(g)
	store.ExportObjectFact(GlobalKey, g.conc)
	return g
}

// finalize computes the closure fields: MayBlock to a fixpoint (cycles in
// the call graph converge because the union only grows), then the
// reachability marks from the cancellation and hot roots.
func (g *Graph) finalize(cfg Config) {
	for _, k := range g.order {
		g.funcs[k].MayBlock = g.funcs[k].Blocks
	}
	for changed := true; changed; {
		changed = false
		for _, k := range g.order {
			f := g.funcs[k]
			for _, c := range f.Callees {
				if callee := g.funcs[c]; callee != nil {
					if merged := f.MayBlock | callee.MayBlock; merged != f.MayBlock {
						f.MayBlock = merged
						changed = true
					}
				}
			}
		}
	}

	// AcquireSet: lock classes acquired here or anywhere synchronously
	// reachable. Same fixpoint shape as MayBlock, but over CallSites —
	// `go`-spawned calls must not extend a caller's lock reachability.
	acq := make(map[string]map[string]bool, len(g.order))
	for _, k := range g.order {
		m := make(map[string]bool)
		for _, a := range g.funcs[k].Acquires {
			m[a.Class] = true
		}
		acq[k] = m
	}
	for changed := true; changed; {
		changed = false
		for _, k := range g.order {
			m := acq[k]
			for _, cs := range g.funcs[k].CallSites {
				for _, c := range sortedSet(acq[cs.Callee]) {
					if !m[c] {
						m[c] = true
						changed = true
					}
				}
			}
		}
	}
	for _, k := range g.order {
		g.funcs[k].AcquireSet = sortedSet(acq[k])
	}

	ctxRoots := append([]string(nil), cfg.CtxRoots...)
	for _, k := range g.order {
		if g.funcs[k].HandlerShape {
			ctxRoots = append(ctxRoots, k)
		}
	}
	g.mark(ctxRoots, nil, func(f *FuncFact) *bool { return &f.CtxReachable })

	cold := make(map[string]bool, len(cfg.Cold))
	for _, k := range cfg.Cold {
		cold[k] = true
	}
	g.mark(cfg.HotRoots, cold, func(f *FuncFact) *bool { return &f.Hot })
}

// mark sets field(f) for every function reachable from roots, roots
// included. Keys in barrier are neither marked nor traversed through:
// the walk stops there.
func (g *Graph) mark(roots []string, barrier map[string]bool, field func(*FuncFact) *bool) {
	queue := make([]string, 0, len(roots))
	for _, r := range roots {
		if f := g.funcs[r]; f != nil && !barrier[r] && !*field(f) {
			*field(f) = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		for _, c := range g.funcs[k].Callees {
			if f := g.funcs[c]; f != nil && !barrier[c] && !*field(f) {
				*field(f) = true
				queue = append(queue, c)
			}
		}
	}
}

// depOrder returns pkgs sorted so that every package follows the packages
// it imports (ties broken by import path, so the order is deterministic).
// Packages outside the analyzed set are irrelevant: their functions arrive
// as export data only and produce no summaries.
func depOrder(pkgs []*load.Package) []*load.Package {
	byPath := make(map[string]*load.Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	sorted := make([]*load.Package, 0, len(pkgs))
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		switch state[p.ImportPath] {
		case 1, 2:
			return
		}
		state[p.ImportPath] = 1
		imps := p.Types.Imports()
		paths := make([]string, 0, len(imps))
		for _, imp := range imps {
			paths = append(paths, imp.Path())
		}
		sort.Strings(paths)
		for _, path := range paths {
			if dep, ok := byPath[path]; ok {
				visit(dep)
			}
		}
		state[p.ImportPath] = 2
		sorted = append(sorted, p)
	}
	roots := make([]*load.Package, len(pkgs))
	copy(roots, pkgs)
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	for _, p := range roots {
		visit(p)
	}
	return sorted
}
