// The whole-program concurrency view. Analyzers run per package but lock
// cycles and goroutine lifecycles are program properties, so Analyze
// condenses every function's v3 facts into one ConcFact — the global lock
// graph with witness paths and cycles, plus the program-wide "someone
// waits on this / receives from this / drains this" sets — and exports it
// into the fact store under GlobalKey. A per-package pass loads it like
// any other fact and reports only the findings anchored in its own files.
package callgraph

import (
	"go/token"
	"sort"
)

// GlobalKey is the store key the singleton ConcFact is exported under. No
// function key can collide with it (keys are qualified identifiers).
const GlobalKey = "conc:global"

// WitnessStep is one hop of an inter-procedural witness path: in Func, at
// Pos, Note happened ("calls g while holding X", "acquires Y").
type WitnessStep struct {
	Func string
	Pos  token.Pos
	Note string
}

// LockEdge records "To was acquired while From was held" with one concrete
// witness path: the first step is the acquisition or held-call in the
// function that held From, subsequent steps walk the callgraph down to the
// function that acquires To.
type LockEdge struct {
	From string
	To   string
	Path []WitnessStep
}

// LockCycle is one strongly connected set of lock classes, reported as a
// representative cycle: Edges[i] goes Classes[i] → Classes[(i+1)%n]. A
// single-class cycle is a self-edge (the class is re-acquired while held).
type LockCycle struct {
	Classes []string
	Edges   []LockEdge
}

// ConcFact is the condensed whole-program concurrency state.
type ConcFact struct {
	// Edges is the global lock-acquisition order graph, sorted by
	// (From, To).
	Edges []LockEdge
	// Cycles lists the lock-order cycles, one representative per strongly
	// connected component, sorted by first class.
	Cycles []LockCycle
	// WaitedWGs are WaitGroup classes some function calls Wait on.
	WaitedWGs []string
	// RecvChans are channel classes some function receives from (unary
	// receive, range, or select).
	RecvChans []string
	// Drains are receiver classes a drain-shaped method (Close,
	// CloseContext, Shutdown, Stop, Drain) is called on.
	Drains []string
}

// AFact marks ConcFact as an analysis.Fact.
func (*ConcFact) AFact() {}

// buildConc condenses the finalized graph into the global concurrency
// fact. Deterministic: functions iterate in sorted key order, per-function
// fact slices are sorted at build time, and first-witness-wins resolves
// duplicate edges identically on every run.
func buildConc(g *Graph) *ConcFact {
	cf := &ConcFact{}

	waited := map[string]bool{}
	recv := map[string]bool{}
	drains := map[string]bool{}
	for _, k := range g.order {
		f := g.funcs[k]
		for _, c := range f.WGWaits {
			waited[c] = true
		}
		for _, c := range f.ChanRecvs {
			recv[c] = true
		}
		for _, c := range f.Drains {
			drains[c] = true
		}
	}
	cf.WaitedWGs = sortedSet(waited)
	cf.RecvChans = sortedSet(recv)
	cf.Drains = sortedSet(drains)

	// Lock edges: direct nested pairs, then held calls expanded through
	// the callgraph to every acquisition the callee can reach.
	type edgeKey struct{ from, to string }
	edges := map[edgeKey]*LockEdge{}
	addEdge := func(from, to string, path []WitnessStep) {
		k := edgeKey{from, to}
		if _, ok := edges[k]; ok {
			return
		}
		edges[k] = &LockEdge{From: from, To: to, Path: path}
	}
	memo := map[string]map[string][]WitnessStep{}
	for _, k := range g.order {
		f := g.funcs[k]
		for _, p := range f.LockPairs {
			addEdge(p.Outer, p.Inner, []WitnessStep{{
				Func: k, Pos: p.Pos,
				Note: "acquires " + ShortClass(p.Inner) + " while holding " + ShortClass(p.Outer),
			}})
		}
		for _, hc := range f.HeldCalls {
			reach, ok := memo[hc.Callee]
			if !ok {
				reach = g.acquirePaths(hc.Callee)
				memo[hc.Callee] = reach
			}
			if len(reach) == 0 {
				continue
			}
			head := WitnessStep{
				Func: k, Pos: hc.Pos,
				Note: "calls " + ShortClass(hc.Callee) + " while holding " + ShortClass(hc.Outer),
			}
			for _, class := range sortedPathKeys(reach) {
				path := append([]WitnessStep{head}, reach[class]...)
				addEdge(hc.Outer, class, path)
			}
		}
	}
	keys := make([]edgeKey, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		cf.Edges = append(cf.Edges, *edges[k])
	}

	cf.Cycles = findCycles(cf.Edges)
	return cf
}

// acquirePaths walks the synchronous callgraph breadth-first from start
// and returns, for each lock class reachable from it, the witness path
// from entering start to the acquisition site. BFS order over sorted
// CallSites makes the chosen path deterministic (and shortest in hops).
func (g *Graph) acquirePaths(start string) map[string][]WitnessStep {
	if g.funcs[start] == nil {
		return nil
	}
	type item struct {
		key   string
		steps []WitnessStep
	}
	seen := map[string]bool{start: true}
	out := map[string][]WitnessStep{}
	queue := []item{{key: start}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		f := g.funcs[it.key]
		for _, a := range f.Acquires {
			if _, ok := out[a.Class]; !ok {
				step := WitnessStep{Func: it.key, Pos: a.Pos, Note: "acquires " + ShortClass(a.Class)}
				out[a.Class] = append(copySteps(it.steps), step)
			}
		}
		for _, cs := range f.CallSites {
			if seen[cs.Callee] || g.funcs[cs.Callee] == nil {
				continue
			}
			seen[cs.Callee] = true
			step := WitnessStep{Func: it.key, Pos: cs.Pos, Note: "calls " + ShortClass(cs.Callee)}
			queue = append(queue, item{key: cs.Callee, steps: append(copySteps(it.steps), step)})
		}
	}
	return out
}

func copySteps(s []WitnessStep) []WitnessStep {
	return append([]WitnessStep(nil), s...)
}

// findCycles condenses the edge set into strongly connected components
// (Tarjan) and emits one representative cycle per cyclic component: the
// shortest cycle through the component's smallest class, so the report is
// stable under unrelated graph growth.
func findCycles(edges []LockEdge) []LockCycle {
	adj := map[string][]string{}
	byKey := map[[2]string]LockEdge{}
	nodeSet := map[string]bool{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		byKey[[2]string{e.From, e.To}] = e
		nodeSet[e.From] = true
		nodeSet[e.To] = true
	}
	nodes := sortedSet(nodeSet)
	for _, n := range nodes {
		sort.Strings(adj[n])
	}

	// Tarjan's SCC over the sorted node list.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	var cycles []LockCycle
	for _, comp := range sccs {
		sort.Strings(comp)
		if len(comp) == 1 {
			n := comp[0]
			if e, ok := byKey[[2]string{n, n}]; ok {
				cycles = append(cycles, LockCycle{Classes: []string{n}, Edges: []LockEdge{e}})
			}
			continue
		}
		inComp := map[string]bool{}
		for _, n := range comp {
			inComp[n] = true
		}
		seq := shortestCycle(comp[0], adj, inComp)
		if seq == nil {
			continue
		}
		cyc := LockCycle{Classes: seq}
		for i, c := range seq {
			cyc.Edges = append(cyc.Edges, byKey[[2]string{c, seq[(i+1)%len(seq)]}])
		}
		cycles = append(cycles, cyc)
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i].Classes[0] < cycles[j].Classes[0] })
	return cycles
}

// shortestCycle finds the node sequence of a shortest cycle through start
// inside the component, by BFS from each successor of start back to start.
func shortestCycle(start string, adj map[string][]string, inComp map[string]bool) []string {
	parent := map[string]string{}
	var found string
	queue := []string{}
	for _, s := range adj[start] {
		if !inComp[s] {
			continue
		}
		if s == start {
			return []string{start}
		}
		if _, ok := parent[s]; !ok {
			parent[s] = start
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 && found == "" {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if w == start {
				found = v
				break
			}
			if !inComp[w] {
				continue
			}
			if _, ok := parent[w]; !ok {
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	if found == "" {
		return nil
	}
	var rev []string
	for v := found; v != start; v = parent[v] {
		rev = append(rev, v)
	}
	seq := []string{start}
	for i := len(rev) - 1; i >= 0; i-- {
		seq = append(seq, rev[i])
	}
	return seq
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedPathKeys(m map[string][]WitnessStep) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
