package errflow_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/errflow"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, "testdata/fixture", errflow.Analyzer)
}

// TestFix proves the err -> _ autofix matches the golden, still compiles,
// and leaves nothing for a second -fix pass.
func TestFix(t *testing.T) {
	analysistest.RunFix(t, "testdata/fixture", errflow.Analyzer, nil)
}
