// Package fixture exercises errflow: dropped trailing errors, sequential
// overwrites, shadowing — and the idioms that must stay quiet (wrap-and-
// reassign, loop retry, closure capture, named results, if-init defines).
package fixture

import (
	"errors"
	"os"
)

// dropped is the classic trailing-Close bug: the error is produced and
// nothing ever looks at it.
func dropped(f *os.File) {
	err := f.Sync()
	if err != nil {
		return
	}
	err = f.Close() // want `err assigned and never checked`
}

// overwritten loses the Sync error before anything checks it.
func overwritten(f *os.File) error {
	var err error
	err = f.Sync() // want `err overwritten at line \d+ before this value is checked`
	err = f.Close()
	return err
}

// wrapped is the sanctioned reassignment: the overwrite consumes the old
// value on its right-hand side.
func wrapped(f *os.File) error {
	var err error
	err = f.Sync()
	err = errors.Join(err, f.Close())
	return err
}

// shadowed declares a second err inside the block; checks on it leave the
// outer one unchecked.
func shadowed(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 4)
	if len(buf) > 0 {
		n, err := f.Read(buf) // want `err shadows the err declared at line \d+`
		if err != nil || n == 0 {
			return err
		}
	}
	return err
}

// ifInit is idiomatic scoping, not shadowing.
func ifInit(f *os.File) error {
	var err error
	err = f.Sync()
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// retryLoop reassigns in a loop; the next iteration (and the return)
// read the value.
func retryLoop(f *os.File) error {
	var err error
	for i := 0; i < 3; i++ {
		err = f.Sync()
		if err == nil {
			break
		}
	}
	return err
}

// closureRead hands the error to a closure; the write is observable.
func closureRead(f *os.File) func() error {
	var err error
	err = f.Sync()
	return func() error { return err }
}

// named results are read by every return, bare or not.
func named(f *os.File) (err error) {
	err = f.Sync()
	return
}
