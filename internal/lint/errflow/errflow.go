// Package errflow flags error values that are produced but never
// consulted: an error-typed local that is assigned and never read again
// (the call's failure is silently dropped), an error overwritten by a
// later assignment in the same block before anything reads it, and a `:=`
// that shadows an error variable of the same name from an enclosing scope
// (the classic bug where the inner err is checked but the outer one is
// returned).
//
// The analysis is per function and position-ordered rather than a full
// CFG: a write is "checked" if any read of the variable follows it. Two
// refinements keep the common idioms quiet: a write inside a loop body
// counts as read if the loop body reads the variable anywhere (the next
// iteration sees it), and any reference from a nested function literal
// counts as a read (the closure may run at any time). Named result
// parameters are skipped entirely — a bare return reads them invisibly.
//
// Findings on plain `=` assignments carry a suggested fix replacing the
// dead `err` with `_`, which preserves behavior exactly while making the
// discard explicit; `:=` findings get no fix (blanking the only variable
// would break the declaration).
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// Analyzer flags assigned-then-unchecked and shadowed error values.
var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc:  "flags error values assigned but never checked, overwritten before a check, or shadowed by an inner := of the same name; every dropped error hides a failure path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				checkFunc(pass, decl.Type, decl.Body, true)
			}
		}
	}
	return nil
}

// checkFunc analyzes one function body. Nested function literals are
// queued and analyzed as their own functions; references from them into
// this body count as reads. topLevel gates the shadow rule: closures
// redeclare err deliberately often enough that only same-function shadows
// are worth reporting.
func checkFunc(pass *analysis.Pass, ftype *ast.FuncType, body *ast.BlockStmt, topLevel bool) {
	named := namedResults(pass, ftype)

	var lits []*ast.FuncLit
	writes := map[types.Object][]writeEvent{}
	reads := map[types.Object][]token.Pos{}
	writeIdents := map[*ast.Ident]bool{}
	var loops []span

	// Pass 1: assignments, loop spans, and nested literals — all at this
	// function's level (literals are opaque here). Init-statement defines
	// (if err := ...; err != nil) are idiomatic scoping, not shadow bugs;
	// preorder traversal guarantees the parent registers its Init before
	// the AssignStmt child is visited.
	initStmts := map[ast.Stmt]bool{}
	inspectSkippingLits(body, &lits, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
			initStmts[n.Init] = true
		case *ast.RangeStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
		case *ast.IfStmt:
			initStmts[n.Init] = true
		case *ast.SwitchStmt:
			initStmts[n.Init] = true
		case *ast.TypeSwitchStmt:
			initStmts[n.Init] = true
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				id, obj := localErrorVar(pass, lhs, n.Tok)
				if id == nil || named[obj] {
					continue
				}
				// A variable captured from an enclosing function is not ours
				// to judge: writes to it are observable outside this body.
				if obj.Pos() < ftype.Pos() || obj.Pos() >= body.End() {
					continue
				}
				writeIdents[id] = true
				writes[obj] = append(writes[obj], writeEvent{
					id: id, tok: n.Tok, stmt: n,
					// Order by statement end so reads on the RHS of the
					// same assignment precede their own write.
					order: n.End(),
				})
			}
			if topLevel && n.Tok == token.DEFINE && !initStmts[ast.Stmt(n)] {
				checkShadow(pass, n)
			}
		}
	})

	// Pass 2: reads — every use of a tracked object that is not one of the
	// write idents, plus every reference from a nested literal.
	tracked := map[types.Object]bool{}
	for obj := range writes {
		tracked[obj] = true
	}
	inspectSkippingLits(body, nil, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || writeIdents[id] {
			return
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && tracked[obj] {
			reads[obj] = append(reads[obj], id.Pos())
		}
	})
	for _, lit := range lits {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && tracked[obj] {
					reads[obj] = append(reads[obj], lit.Pos(), id.Pos())
				}
			}
			return true
		})
	}

	flagUnchecked(pass, writes, reads, loops)
	flagOverwrites(pass, body, writes, reads)

	for _, lit := range lits {
		checkFunc(pass, lit.Type, lit.Body, false)
	}
}

type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return s.lo <= p && p < s.hi }

type writeEvent struct {
	id    *ast.Ident
	tok   token.Token
	stmt  *ast.AssignStmt
	order token.Pos
}

// inspectSkippingLits walks body without descending into function
// literals, optionally collecting them.
func inspectSkippingLits(body *ast.BlockStmt, lits *[]*ast.FuncLit, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if lits != nil {
				*lits = append(*lits, lit)
			}
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// localErrorVar resolves lhs to a function-local error-typed variable
// being written (defined or assigned), or nil.
func localErrorVar(pass *analysis.Pass, lhs ast.Expr, tok token.Token) (*ast.Ident, types.Object) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, nil
	}
	var obj types.Object
	if tok == token.DEFINE {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil || obj.Pkg() == nil {
		return nil, nil
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil, nil
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return nil, nil // package-level: other functions may read it
	}
	if !isErrorType(obj.Type()) {
		return nil, nil
	}
	return id, obj
}

func isErrorType(t types.Type) bool {
	return types.AssignableTo(t, types.Universe.Lookup("error").Type())
}

// namedResults collects the function's named result objects; writes to
// them are invisible reads away (a bare return), so they are exempt.
func namedResults(pass *analysis.Pass, ftype *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	if ftype.Results == nil {
		return out
	}
	for _, field := range ftype.Results.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// flagUnchecked reports writes with no read anywhere after them (with the
// loop-body rescue).
func flagUnchecked(pass *analysis.Pass, writes map[types.Object][]writeEvent, reads map[types.Object][]token.Pos, loops []span) {
	objs := sortedObjs(writes)
	for _, obj := range objs {
		rs := reads[obj]
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		for _, w := range writes[obj] {
			if readAfter(rs, w.order) {
				continue
			}
			if loopRescued(loops, rs, w.id.Pos()) {
				continue
			}
			d := analysis.Diagnostic{
				Pos:     w.id.Pos(),
				Message: w.id.Name + " assigned and never checked; the failure this call can report is silently dropped",
			}
			if fix, ok := blankFix(w); ok {
				d.SuggestedFixes = []analysis.SuggestedFix{fix}
			}
			pass.Report(d)
		}
	}
}

func readAfter(sortedReads []token.Pos, after token.Pos) bool {
	i := sort.Search(len(sortedReads), func(i int) bool { return sortedReads[i] > after })
	return i < len(sortedReads)
}

// loopRescued reports a write inside a loop whose body reads the variable
// anywhere — the next iteration observes the value.
func loopRescued(loops []span, reads []token.Pos, writePos token.Pos) bool {
	for _, l := range loops {
		if !l.contains(writePos) {
			continue
		}
		for _, r := range reads {
			if l.contains(r) {
				return true
			}
		}
	}
	return false
}

// flagOverwrites reports sequential same-block overwrites: stmt i assigns
// obj, stmt j assigns it again, and no statement between reads it (return
// and branch statements are barriers — control may leave the block).
func flagOverwrites(pass *analysis.Pass, body *ast.BlockStmt, writes map[types.Object][]writeEvent, reads map[types.Object][]token.Pos) {
	// Index writes by their statement for block scanning.
	byStmt := map[ast.Stmt][]writeEvent{}
	for _, obj := range sortedObjs(writes) {
		for _, w := range writes[obj] {
			byStmt[ast.Stmt(w.stmt)] = append(byStmt[ast.Stmt(w.stmt)], w)
		}
	}
	objOf := func(w writeEvent) types.Object {
		if o := pass.TypesInfo.Defs[w.id]; o != nil {
			return o
		}
		return pass.TypesInfo.Uses[w.id]
	}
	var scanList func(list []ast.Stmt)
	scanList = func(list []ast.Stmt) {
		last := map[types.Object]writeEvent{}
		barrier := func() { last = map[types.Object]writeEvent{} }
		for _, s := range list {
			switch s := s.(type) {
			case *ast.ReturnStmt, *ast.BranchStmt:
				barrier()
			case *ast.AssignStmt:
				for _, w := range byStmt[s] {
					obj := objOf(w)
					if prev, ok := last[obj]; ok && !readBetween(reads[obj], prev.order, w.stmt.Pos()) && !rhsReads(pass, w.stmt, obj) {
						line := pass.Fset.Position(w.id.Pos()).Line
						d := analysis.Diagnostic{
							Pos:     prev.id.Pos(),
							Message: prev.id.Name + " overwritten at line " + itoa(line) + " before this value is checked",
						}
						if fix, ok := blankFix(prev); ok {
							d.SuggestedFixes = []analysis.SuggestedFix{fix}
						}
						pass.Report(d)
					}
					last[obj] = w
				}
			default:
				// Nested blocks both read and write unpredictably from this
				// list's point of view; treat any non-trivial statement that
				// contains a nested block as a barrier for simplicity.
				if containsBlock(s) {
					barrier()
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			scanList(n.List)
		case *ast.CaseClause:
			scanList(n.Body)
		case *ast.CommClause:
			scanList(n.Body)
		}
		return true
	})
}

func readBetween(reads []token.Pos, lo, hi token.Pos) bool {
	for _, r := range reads {
		if r > lo && r < hi {
			return true
		}
	}
	return false
}

// rhsReads reports whether the assignment's right side mentions obj (an
// overwrite like err = fmt.Errorf("...: %w", err) consumes the value).
func rhsReads(pass *analysis.Pass, s *ast.AssignStmt, obj types.Object) bool {
	for _, e := range s.Rhs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func containsBlock(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			found = true
		}
		return !found
	})
	return found
}

// checkShadow flags a := that redeclares an error variable visible from
// an enclosing scope of the same function.
func checkShadow(pass *analysis.Pass, n *ast.AssignStmt) {
	for _, lhs := range n.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil || !isErrorType(obj.Type()) {
			continue
		}
		scope := pass.Pkg.Scope().Innermost(id.Pos())
		if scope == nil {
			continue
		}
		_, outer := scope.LookupParent(id.Name, id.Pos())
		if outer == nil || outer == obj || outer.Parent() == pass.Pkg.Scope() {
			continue
		}
		ov, ok := outer.(*types.Var)
		if !ok || !isErrorType(ov.Type()) {
			continue
		}
		// Redeclaring err in a nested scope is routine Go; the shadow only
		// bites when the outer value is consulted after the inner scope
		// closes — that read sees a value the checks in here never touched.
		inner := obj.Parent()
		if inner == nil || !usedAfter(pass, ov, inner.End()) {
			continue
		}
		line := pass.Fset.Position(outer.Pos()).Line
		pass.Reportf(id.Pos(), "%s shadows the %s declared at line %d; checks on the inner value leave the outer one unchecked", id.Name, id.Name, line)
	}
}

// usedAfter reports whether obj is referenced anywhere past pos (scanning
// the file that declares it; a local's references cannot leave its file).
func usedAfter(pass *analysis.Pass, obj types.Object, pos token.Pos) bool {
	for _, f := range pass.Files {
		if f.Pos() > obj.Pos() || obj.Pos() >= f.End() {
			continue
		}
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Pos() > pos && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

// blankFix builds the err -> _ replacement for plain assignments. A :=
// write gets no fix: blanking a freshly declared variable breaks the
// declaration.
func blankFix(w writeEvent) (analysis.SuggestedFix, bool) {
	if w.tok != token.ASSIGN {
		return analysis.SuggestedFix{}, false
	}
	return analysis.SuggestedFix{
		Message: "discard explicitly with _",
		TextEdits: []analysis.TextEdit{{
			Pos: w.id.Pos(), End: w.id.End(), NewText: "_",
		}},
	}, true
}

// sortedObjs orders map keys by declaration position so reports come out
// deterministically (the lint suite's own detrange rule applies to us too).
func sortedObjs(writes map[types.Object][]writeEvent) []types.Object {
	objs := make([]types.Object, 0, len(writes))
	for obj := range writes {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	return objs
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
