package lint

import (
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

// edit is one textual replacement resolved to byte offsets in a file.
type edit struct {
	start, end int
	text       string
}

// ApplyFixes applies the first suggested fix of every finding that carries
// one and returns the rewritten contents per file (absolute path), along
// with the number of fixes applied. Overlapping fixes are resolved in
// favor of the earlier one; the later is skipped and counted in skipped —
// rerunning kvet -fix picks it up once the tree has settled. A pure
// deletion that leaves its line blank consumes the whole line, so deleted
// directives do not leave empty husks behind.
func ApplyFixes(fset *token.FileSet, findings []Finding) (contents map[string][]byte, applied, skipped int, err error) {
	perFile := make(map[string][]edit)
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			continue
		}
		for _, te := range f.Fixes[0].TextEdits {
			pos := fset.Position(te.Pos)
			end := fset.Position(te.End)
			if pos.Filename == "" || pos.Filename != end.Filename {
				return nil, 0, 0, fmt.Errorf("fix for %s:%d spans files", f.File, f.Line)
			}
			perFile[pos.Filename] = append(perFile[pos.Filename], edit{
				start: pos.Offset, end: end.Offset, text: te.NewText,
			})
		}
	}

	contents = make(map[string][]byte, len(perFile))
	for _, file := range sortedKeys(perFile) {
		src, rerr := os.ReadFile(file)
		if rerr != nil {
			return nil, 0, 0, rerr
		}
		edits := perFile[file]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].start != edits[j].start {
				return edits[i].start < edits[j].start
			}
			return edits[i].end < edits[j].end
		})
		var accepted []edit
		prevEnd := -1
		for _, e := range edits {
			if e.start < prevEnd {
				skipped++
				continue
			}
			accepted = append(accepted, e)
			prevEnd = e.end
		}
		out := src
		for i := len(accepted) - 1; i >= 0; i-- {
			e := widenDeletion(src, accepted[i])
			out = append(out[:e.start:e.start], append([]byte(e.text), out[e.end:]...)...)
			applied++
		}
		contents[file] = out
	}
	return contents, applied, skipped, nil
}

// widenDeletion grows a pure deletion to swallow its whole line (newline
// included) when nothing but whitespace would remain on it.
func widenDeletion(src []byte, e edit) edit {
	if e.text != "" {
		return e
	}
	ls := e.start
	for ls > 0 && src[ls-1] != '\n' {
		ls--
	}
	le := e.end
	for le < len(src) && src[le] != '\n' {
		le++
	}
	for _, b := range append(append([]byte(nil), src[ls:e.start]...), src[e.end:le]...) {
		if b != ' ' && b != '\t' {
			return e
		}
	}
	if le < len(src) {
		le++ // the newline goes too
	}
	return edit{start: ls, end: le}
}

func sortedKeys(m map[string][]edit) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Diff renders a minimal unified-style diff between old and new contents
// of one file: common prefix and suffix lines are trimmed, the changed
// middle prints as one hunk. Enough for a -diff preview; not a patch tool.
func Diff(path string, old, new []byte) string {
	if string(old) == string(new) {
		return ""
	}
	ol := splitLines(string(old))
	nl := splitLines(string(new))
	pre := 0
	for pre < len(ol) && pre < len(nl) && ol[pre] == nl[pre] {
		pre++
	}
	suf := 0
	for suf < len(ol)-pre && suf < len(nl)-pre && ol[len(ol)-1-suf] == nl[len(nl)-1-suf] {
		suf++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "--- %s\n+++ %s\n", path, path)
	fmt.Fprintf(&b, "@@ -%d,%d +%d,%d @@\n", pre+1, len(ol)-pre-suf, pre+1, len(nl)-pre-suf)
	for _, l := range ol[pre : len(ol)-suf] {
		b.WriteString("-" + l + "\n")
	}
	for _, l := range nl[pre : len(nl)-suf] {
		b.WriteString("+" + l + "\n")
	}
	return b.String()
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
