// Package srv carries the fixture's serving surfaces: a clean streaming
// event struct (beta collapses into the aggregate "rest" field) and a
// trace waterfall missing beta. The missing-phase finding anchors on the
// package clause because the waterfall surface has no single declaration.
package srv // want `phase surface "waterfall" is missing phase "beta"`

// Event mirrors alpha and gamma directly; beta rides in the aggregate.
type Event struct {
	AlphaNS int64 `json:"alpha_ns"`
	GammaNS int64 `json:"gamma_ns"`
	RestNS  int64 `json:"rest_ns"`
}

// Waterfall emits wf/<phase> child spans — beta was forgotten.
func Waterfall() []string {
	return []string{"wf/alpha", "wf/gamma"}
}
