// Package tc is the fixture's trace-check surface: the key allowlist
// drifted by losing gamma.
package tc

var known = map[string]bool{ // want `phase surface "tracecheck" is missing phase "gamma"`
	"t_alpha_ns": true,
	"t_beta_ns":  true,
}

// Known reports whether key is an allowed trace key.
func Known(key string) bool { return known[key] }
