// Package met is the fixture's metrics registry type plus registrations
// exercising the naming and collision rules.
package met

// Reg mimics the obsv registry surface.
type Reg struct{}

func (r *Reg) Counter(name, help string)                      {}
func (r *Reg) Gauge(name, help string)                        {}
func (r *Reg) Histogram(name, help string, buckets []float64) {}

// Register exercises one rule per call.
func Register(r *Reg) {
	r.Counter("jobs_total", "jobs accepted")
	r.Counter("steps", "steps run")                // want `counter family "steps" does not end in _total`
	r.Gauge(`Depth{queue="a"}`, "queue depth")     // want `metric family "Depth" is not a legal Prometheus name`
	r.Gauge("workers", "")                         // want `metric family "workers" is registered without help text`
	r.Histogram("lat_seconds", "job latency", nil) // clean
	r.Histogram("dur", "durations", nil)           // want `histogram family "dur" derives "dur_p50" at scrape time, colliding with the gauge`
	r.Gauge("dur_p50", "median duration")
}
