// Package eng is the phasereg fixture's engine: the canonical phase list
// (alpha, beta, gamma from Stats' t_*_ns tags) plus three mirror surfaces
// with injected drift — a totals struct missing gamma, clean span names,
// and a keys function carrying the non-canonical delta.
package eng

// Stats defines the canonical list through its trace tags.
type Stats struct {
	TAlpha int64 `json:"t_alpha_ns"`
	TBeta  int64 `json:"t_beta_ns"`
	TGamma int64 `json:"t_gamma_ns"`
}

// Totals drifted: no Gamma field.
type Totals struct { // want `phase surface "totals" is missing phase "gamma"`
	Alpha int64
	Beta  int64
}

// SpanNames is the clean span surface: one ph/<phase> literal per phase.
// The labelled literal is a span label, not a phase, and must not count.
func SpanNames() []string {
	return []string{"ph/alpha", "ph/beta", "ph/gamma", "ph/alpha pass one"}
}

// Keys drifted the other way: delta is not canonical.
func Keys() []string {
	return []string{"alpha", "beta", "gamma", "delta"} // want `phase surface "keysfn" carries "delta", which is not a canonical phase`
}
