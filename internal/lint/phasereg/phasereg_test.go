package phasereg_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/phasereg"
	"repro/internal/lint/registry"
)

// TestFixture proves one finding per injected drift: the totals struct
// missing gamma, the keys function carrying non-canonical delta, the
// waterfall missing beta (events stay clean through the declared "rest"
// collapse), the trace-key allowlist missing gamma, and one metric
// finding per naming rule — while the clean surfaces stay silent.
func TestFixture(t *testing.T) {
	const root = "repro/internal/lint/phasereg/testdata/fixture"
	analysistest.RunWithRegistry(t, "testdata/fixture", phasereg.Analyzer, registry.Config{
		IterStruct:      root + "/eng.Stats",
		TotalsStruct:    root + "/eng.Totals",
		SpanPkg:         root + "/eng",
		SpanPrefix:      "ph/",
		PhaseKeysFunc:   root + "/eng.Keys",
		EventStruct:     root + "/srv.Event",
		EventCollapse:   map[string][]string{"rest": {"beta"}},
		WaterfallPkg:    root + "/srv",
		WaterfallPrefix: "wf/",
		TraceCheckVar:   root + "/tc.known",
		MetricsType:     root + "/met.Reg",
	})
}
