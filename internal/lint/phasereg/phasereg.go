// Package phasereg checks the phase and metric registries. The canonical
// phase list is the t_<phase>_ns JSON tags of the per-iteration stats
// struct; every mirror surface — the per-run totals struct, the span-name
// literals, the PhaseKeys function, serve's streaming event fields, the
// trace waterfall, ktracecheck's key allowlist — must carry exactly that
// list, minus each surface's declared exemptions and modulo declared
// aggregations (serve's one "solve" field standing in for the three solve
// phases). A phase added to the stats struct but not to a surface would
// silently vanish from that surface's output; phasereg turns the drift
// into a finding anchored at the surface that must change, with the
// canonical declaration as witness.
//
// The metric half enforces the obsv registration contract: family names
// must be legal Prometheus identifiers, counters must end in _total, one
// family must not be registered under two kinds, and no registered family
// may collide with a histogram's derived families (fam_bucket, fam_sum,
// fam_count, and the fam_p50/_p95/_p99 quantile gauges), which the
// exporter synthesizes at scrape time.
package phasereg

import (
	"regexp"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/registry"
)

// Analyzer checks phase surfaces and metric names against the registry.
var Analyzer = &analysis.Analyzer{
	Name:          "phasereg",
	Doc:           "checks every phase surface (totals struct, spans, PhaseKeys, serve events, trace waterfall, ktracecheck allowlist) mirrors the canonical t_<phase>_ns list, and metric registrations follow the Prometheus naming and histogram-derivation rules",
	Run:           run,
	NeedsRegistry: true,
}

// promFamily is the legal shape of a Prometheus metric family name.
var promFamily = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// derivedSuffixes are the families the obsv exporter synthesizes per
// histogram at scrape time.
var derivedSuffixes = []string{"_bucket", "_sum", "_count", "_p50", "_p95", "_p99"}

func run(pass *analysis.Pass) error {
	if pass.Facts == nil {
		return nil
	}
	var fact registry.Fact
	if !pass.Facts.ObjectFact(registry.GlobalKey, &fact) {
		return nil
	}
	here := pass.Pkg.Path()
	if fact.CanonOK {
		for _, s := range fact.Surfaces {
			if s.Pkg != here || !fact.Seen[s.Pkg] {
				continue
			}
			checkSurface(pass, &fact, s)
		}
	}
	checkMetrics(pass, &fact, here)
	return nil
}

// checkSurface compares one surface against the canonical list: every
// canonical phase must be present, exempt, or aggregated; every surface
// entry must be canonical or an aggregation key.
func checkSurface(pass *analysis.Pass, fact *registry.Fact, s registry.Surface) {
	exempt := make(map[string]bool, len(s.Exempt))
	for _, e := range s.Exempt {
		exempt[e] = true
	}
	entries := make([]string, 0, len(s.Collapse))
	for entry := range s.Collapse {
		entries = append(entries, entry)
	}
	sort.Strings(entries)
	collapsed := make(map[string]string) // canonical phase -> aggregate entry
	for _, entry := range entries {
		for _, p := range s.Collapse[entry] {
			collapsed[p] = entry
		}
	}
	present := make(map[string]bool, len(s.Present))
	for _, p := range s.Present {
		present[p.Name] = true
	}

	for _, c := range fact.Canon {
		if present[c.Name] || exempt[c.Name] {
			continue
		}
		if agg, ok := collapsed[c.Name]; ok && present[agg] {
			continue
		}
		pass.Reportf(s.Anchor, "phase surface %q is missing phase %q declared canonically at %s: add it or exempt it explicitly", s.Name, c.Name, pass.Fset.Position(c.Pos))
	}

	canon := make(map[string]bool, len(fact.Canon))
	for _, c := range fact.Canon {
		canon[c.Name] = true
	}
	for _, p := range s.Present {
		if canon[p.Name] {
			continue
		}
		if _, isAgg := s.Collapse[p.Name]; isAgg {
			continue
		}
		pass.Reportf(p.Pos, "phase surface %q carries %q, which is not a canonical phase: the stats struct defines the list at %s", s.Name, p.Name, pass.Fset.Position(fact.Canon[0].Pos))
	}
}

// checkMetrics enforces naming rules and cross-family collisions for the
// registrations owned by the current package.
func checkMetrics(pass *analysis.Pass, fact *registry.Fact, here string) {
	kinds := make(map[string][]registry.Metric)
	for _, m := range fact.Metrics {
		kinds[m.Family] = append(kinds[m.Family], m)
	}

	for _, m := range fact.Metrics {
		if m.Pkg != here {
			continue
		}
		if !promFamily.MatchString(m.Family) {
			pass.Reportf(m.Pos, "metric family %q is not a legal Prometheus name (want %s)", m.Family, promFamily)
		}
		if m.Kind == "counter" && !strings.HasSuffix(m.Family, "_total") {
			pass.Reportf(m.Pos, "counter family %q does not end in _total: Prometheus counter naming requires the unit-total suffix", m.Family)
		}
		if m.Help == "" {
			pass.Reportf(m.Pos, "metric family %q is registered without help text", m.Family)
		}
		for _, other := range kinds[m.Family] {
			if other.Kind != m.Kind {
				pass.Reportf(m.Pos, "metric family %q is registered both as %s here and as %s at %s: one family, one kind", m.Family, m.Kind, other.Kind, pass.Fset.Position(other.Pos))
				break
			}
		}
		if m.Kind == "histogram" {
			for _, suf := range derivedSuffixes {
				derived := m.Family + suf
				if others, ok := kinds[derived]; ok {
					pass.Reportf(m.Pos, "histogram family %q derives %q at scrape time, colliding with the %s registered at %s", m.Family, derived, others[0].Kind, pass.Fset.Position(others[0].Pos))
				}
			}
		}
	}
}
