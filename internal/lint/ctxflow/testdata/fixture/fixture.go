// Package fixture exercises ctxflow: Root is the configured cancellation
// root; handler-shaped functions are roots automatically.
package fixture

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Root is the cancellation entry point the test configures. It blocks
// only through callees, so it is not flagged itself — the functions that
// actually block are.
func Root(ctx context.Context) int {
	helper()
	aware(ctx)
	calm()
	locked()
	return drain(make(chan int, 1))
}

func helper() { // want `helper blocks \(time\.Sleep\) \[sleep\] and is reachable from a cancellation root`
	time.Sleep(time.Millisecond)
}

// aware blocks but takes a context: quiet.
func aware(ctx context.Context) {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// calm is reachable but does nothing blocking: quiet.
func calm() {}

func drain(ch chan int) int { // want `drain blocks \(chan receive\) \[chan-op\] and is reachable`
	return <-ch
}

var mu sync.Mutex

// locked only takes a mutex — that is lockheld's jurisdiction, not a
// cancellation concern: quiet.
func locked() {
	mu.Lock()
	mu.Unlock()
}

// offPath blocks without a context but nothing on a cancellation path
// calls it: quiet.
func offPath() {
	time.Sleep(time.Millisecond)
}

// Handle is handler-shaped, so it is a root without configuration. It
// carries a *http.Request (hence a context): quiet itself.
func Handle(w http.ResponseWriter, r *http.Request) {
	logLine()
}

func logLine() { // want `logLine blocks \(fmt\.Println\) \[I/O\] and is reachable`
	fmt.Println("ok")
}

var _ = offPath
