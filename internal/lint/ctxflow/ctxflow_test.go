package ctxflow_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/ctxflow"
)

func TestFixture(t *testing.T) {
	analysistest.RunWithConfig(t, "testdata/fixture", ctxflow.Analyzer, callgraph.Config{
		CtxRoots: []string{"repro/internal/lint/ctxflow/testdata/fixture.Root"},
		Bounded:  callgraph.DefaultBounded,
	})
}
