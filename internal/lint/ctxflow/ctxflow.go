// Package ctxflow enforces the cancellation contract of the serving path:
// any function reachable from a cancellation root — place.Run, the serve
// HTTP handlers — that performs a blocking operation (channel op, sleep,
// unbounded wait, file/network I/O) must take a context.Context, so the
// Kraftwerk property "every iteration prefix is a legal placement" stays
// reachable from the outside: a job can only be cancelled or deadlined if
// every blocking point on its path can observe the context.
//
// The reachability and blocking classification come from the callgraph
// fact store (interprocedural, cross-package); the analyzer itself only
// decides which of its own package's declarations to flag. Mutex
// acquisition is exempt here — short critical sections are lockheld's
// business — and so are the bounded fork-joins (par.Run, par.Pair), which
// return as soon as their own CPU-bound work completes and are cancelled
// at the granularity of the step that invoked them.
package ctxflow

import (
	"go/ast"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// Analyzer flags blocking functions on cancellation paths that cannot
// observe a context.
var Analyzer = &analysis.Analyzer{
	Name:       "ctxflow",
	Doc:        "flags functions reachable from place.Run or a serve handler that block (chan op, sleep, wait, I/O) without taking a context.Context; a blocking point that cannot observe cancellation pins jobs past their deadline",
	Run:        run,
	NeedsFacts: true,
}

func run(pass *analysis.Pass) error {
	if pass.Facts == nil {
		return nil // driver ran without the fact phase; nothing to reason from
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			key := callgraph.FuncKey(pass.TypesInfo, decl)
			if key == "" {
				continue
			}
			var fact callgraph.FuncFact
			if !pass.Facts.ObjectFact(key, &fact) {
				continue
			}
			if !fact.CtxReachable || fact.HasCtx {
				continue // off every cancellation path, or already aware
			}
			blocks := fact.Blocks &^ callgraph.Lock
			if blocks == 0 {
				continue
			}
			detail := ""
			if len(fact.BlockDetail) > 0 {
				detail = " (" + fact.BlockDetail[0] + ")"
			}
			pass.Reportf(decl.Name.Pos(),
				"%s blocks%s [%s] and is reachable from a cancellation root but takes no context.Context; a blocked call here cannot observe cancellation or deadlines",
				decl.Name.Name, detail, blocks)
		}
	}
	return nil
}
