// Package registry recovers the repo's implicit contract schemas from the
// typed AST, so analyzers can check them instead of humans re-deriving
// them per PR. Three schemas are extracted in one pass over the loaded
// packages:
//
//   - the knob registry: every field of the placement Config struct, with
//     the command-line flags and HTTP JSON fields that flow into it (a
//     taint walk from flag.* registrations and request-struct reads to
//     Config composite literals), whether the config Hash method covers
//     it, and whether the engine ever reads it;
//   - the phase registry: the canonical per-transformation phase list (the
//     IterStats t_<phase>_ns JSON tags) and every surface that must agree
//     with it — PhaseTotals fields, span-name literals, the PhaseKeys
//     function, serve's per-iteration event fields, serve's trace
//     waterfall, and ktracecheck's trace-key allowlist;
//   - the metric registry: every obsv metric registration with a
//     statically known name, its kind and help text.
//
// The extracted Fact is exported into the analysis fact store under
// GlobalKey; knobflow and phasereg load it like any other fact. Every
// datum carries a token.Pos into the driver's shared FileSet plus the
// import path of the package that owns it, so analyzers can anchor each
// finding in exactly one package and render cross-package witnesses.
//
// Extraction is deliberately conservative: a surface whose package is not
// among the loaded targets is marked unseen and analyzers skip its checks,
// so running kvet on a package subset never manufactures "missing surface"
// findings.
package registry

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// GlobalKey is the store key the singleton Fact is exported under.
const GlobalKey = "registry:global"

// Config names the anchor points of the schemas. Every entry is a
// "pkg/path.Name" key (or a bare import path); empty entries disable the
// corresponding extraction.
type Config struct {
	// ConfigStruct is the knob-bearing struct ("repro/internal/place.Config").
	ConfigStruct string
	// HashMethod is the method of ConfigStruct digesting the algorithmic
	// knobs ("Hash").
	HashMethod string
	// FlagsPkg is the package whose flag.* registrations must plumb every
	// knob ("repro/cmd/kplace").
	FlagsPkg string
	// SubmitStruct is the HTTP request struct whose JSON fields must plumb
	// every knob ("repro/internal/serve.SubmitRequest").
	SubmitStruct string
	// FacadePkg is the public package that must re-export every enum knob
	// type, its constants and its parser ("repro").
	FacadePkg string

	// IterStruct is the per-iteration stats struct whose t_<phase>_ns JSON
	// tags define the canonical phase list.
	IterStruct string
	// TotalsStruct is the per-run phase aggregate struct; its field names
	// (kebab-cased) must match the canonical list.
	TotalsStruct string
	// SpanPkg/SpanPrefix locate per-phase span names: string literals in
	// SpanPkg of the form SpanPrefix+"<phase>".
	SpanPkg    string
	SpanPrefix string
	// PhaseKeysFunc is the function returning the canonical phase list as
	// string literals.
	PhaseKeysFunc string
	// EventStruct is the streaming event struct; its *_ns JSON tags must
	// cover the canonical list up to EventCollapse.
	EventStruct string
	// EventCollapse maps one event field to the set of canonical phases it
	// aggregates (e.g. "solve" covering solve-x/solve-y/solve-pair).
	EventCollapse map[string][]string
	// WaterfallPkg/WaterfallPrefix locate the trace-waterfall span names;
	// WaterfallExempt lists canonical phases deliberately absent there.
	WaterfallPkg    string
	WaterfallPrefix string
	WaterfallExempt []string
	// TraceCheckVar is the map variable holding the trace-key allowlist
	// ("repro/cmd/ktracecheck.knownPhaseKeys"); its t_<phase>_ns keys must
	// match the canonical list.
	TraceCheckVar string

	// MetricsType is the metrics registry type whose Counter/Gauge/
	// Histogram registrations are collected ("repro/internal/obsv.Registry").
	MetricsType string
}

// Knob is one Config field (nested struct fields appear with a dotted
// path, e.g. "CG.Tol").
type Knob struct {
	Path string
	// Pos is the field declaration; OwnerPkg the package declaring it
	// (nested knobs belong to the nested struct's package).
	Pos      token.Pos
	OwnerPkg string
	// Kind is "scalar", "enum" (named type with >= 2 typed constants) or
	// "hook" (func/interface/pointer-valued fields, exempt from plumbing).
	Kind string
	// EnumType keys into Fact.Enums when Kind is "enum".
	EnumType string
	// Flags and JSONs are the flag names and request JSON fields whose
	// values flow into this knob, sorted.
	Flags []string
	JSONs []string
	// InHash reports the hash method reads the field (or a whole parent
	// struct containing it).
	InHash bool
	// Read reports the declaring package reads the field outside the hash
	// method — a knob nothing reads is dead weight.
	Read bool
}

// EnumConst is one constant of an enum type.
type EnumConst struct {
	Name   string
	Value  string // exact constant value, e.g. "0" or `"x"`
	Pos    token.Pos
	IsZero bool
}

// Enum describes one enum-like named type and its parse/print/facade
// surfaces. The String and Parse maps are extracted from single-switch
// method bodies; shapes the extractor cannot read set the Opaque flags and
// analyzers skip the round-trip checks instead of guessing.
type Enum struct {
	TypeKey string // "pkg/path.Name"
	Pkg     string
	Pos     token.Pos
	Consts  []EnumConst

	HasString    bool
	StringPos    token.Pos
	StringMap    map[string]string // const name -> printed tag
	StringOpaque bool

	ParseName      string // func name, "" when no (string) (T, bool) parser exists
	ParsePos       token.Pos
	ParseMap       map[string]string // accepted tag -> const name (ok=true returns only)
	ParseOpaque    bool
	ParseZeroEmpty bool // Parse("") accepts and yields the zero constant

	FacadeAliased     bool
	FacadeConstValues map[string]bool // constant values re-exported by the facade
	FacadeParse       bool
}

// SubmitField is one JSON field of the HTTP request struct.
type SubmitField struct {
	Name string
	JSON string
	Pos  token.Pos
	Pkg  string
	// Used reports the declaring package reads the field anywhere; an
	// unread field is an orphan the API accepts and ignores.
	Used bool
}

// PhaseRef is one phase name with the position witnessing it.
type PhaseRef struct {
	Name string
	Pos  token.Pos
}

// Surface is one place the canonical phase list must be mirrored.
type Surface struct {
	// Name identifies the surface in diagnostics: "totals", "spans",
	// "keysfn", "events", "waterfall", "tracecheck".
	Name string
	Pkg  string
	// Anchor is where a missing-phase finding is reported (the struct,
	// function or variable declaring the surface).
	Anchor token.Pos
	// Present lists the phases the surface carries, each with its own
	// witness position.
	Present []PhaseRef
	// Exempt lists canonical phases deliberately absent here.
	Exempt []string
	// Collapse maps a surface entry to the canonical phases it aggregates.
	Collapse map[string][]string
}

// Metric is one obsv metric registration with a statically known name.
type Metric struct {
	// Family is the metric name up to any '{' label brace.
	Family string
	Kind   string // "counter", "gauge", "histogram"
	Help   string
	Pkg    string
	Pos    token.Pos
}

// Fact is the extracted contract registry, exported under GlobalKey.
type Fact struct {
	Knobs    []Knob
	Enums    []Enum
	Submit   []SubmitField
	Canon    []PhaseRef // canonical phases, IterStruct tag order
	CanonOK  bool       // IterStruct was found and parsed
	Surfaces []Surface
	Metrics  []Metric
	// Seen marks the import paths loaded as targets; analyzers gate each
	// surface check on its package being present.
	Seen map[string]bool
	// Anchor packages, for analyzers that self-select the reporting pass.
	ConfigPkg string
	SubmitPkg string
	FlagsPkg  string
	FacadePkg string
	// HashPos is the hash method declaration, the witness for missing-
	// from-hash findings. NoPos when the method was not found.
	HashPos token.Pos
}

// AFact marks Fact as an analysis.Fact.
func (*Fact) AFact() {}

// Analyze extracts the registry from the loaded packages and exports it
// into store under GlobalKey.
func Analyze(pkgs []*load.Package, store analysis.FactStore, cfg Config) *Fact {
	ex := &extractor{
		cfg:    cfg,
		byPath: make(map[string]*load.Package, len(pkgs)),
		pkgs:   pkgs,
		fact:   &Fact{Seen: make(map[string]bool, len(pkgs))},
	}
	for _, p := range pkgs {
		ex.byPath[p.ImportPath] = p
		ex.fact.Seen[p.ImportPath] = true
	}
	ex.knobs()
	ex.submit()
	ex.wire()
	ex.enums()
	ex.phases()
	ex.metrics()
	store.ExportObjectFact(GlobalKey, ex.fact)
	return ex.fact
}

// extractor carries the in-flight state of one Analyze call.
type extractor struct {
	cfg    Config
	pkgs   []*load.Package
	byPath map[string]*load.Package
	fact   *Fact
	// knobField maps a knob path to its declaring field object, for the
	// read sweep (objects are package-local, never exported in the Fact).
	knobField map[string]types.Object
}

// splitKey separates "pkg/path.Name" at the last dot after the last slash.
func splitKey(key string) (pkg, name string) {
	i := strings.LastIndex(key, ".")
	if i < 0 || i < strings.LastIndex(key, "/") {
		return key, ""
	}
	return key[:i], key[i+1:]
}

// typeKeyOf renders a named type as its cross-package key.
func typeKeyOf(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// typeSpec finds the AST declaration of a package-level type.
func typeSpec(p *load.Package, name string) *ast.TypeSpec {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, s := range gd.Specs {
				ts := s.(*ast.TypeSpec)
				if ts.Name.Name == name {
					return ts
				}
			}
		}
	}
	return nil
}

// jsonName extracts the JSON field name from a struct tag literal, "" when
// untagged or explicitly skipped.
func jsonName(tag *ast.BasicLit) string {
	if tag == nil {
		return ""
	}
	raw := strings.Trim(tag.Value, "`")
	// reflect.StructTag without importing reflect: scan key:"value" pairs.
	for raw != "" {
		raw = strings.TrimLeft(raw, " ")
		i := strings.Index(raw, `:"`)
		if i < 0 {
			break
		}
		key := raw[:i]
		rest := raw[i+2:]
		j := strings.Index(rest, `"`)
		if j < 0 {
			break
		}
		if key == "json" {
			name, _, _ := strings.Cut(rest[:j], ",")
			if name == "-" {
				return ""
			}
			return name
		}
		raw = rest[j+1:]
	}
	return ""
}

// sortedSet renders a string set as a sorted slice.
func sortedSet(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
