package registry

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/load"
)

// knobs walks the Config struct (one level into nested struct fields),
// classifies each field, and computes the InHash and Read bits.
func (ex *extractor) knobs() {
	pkgPath, name := splitKey(ex.cfg.ConfigStruct)
	p := ex.byPath[pkgPath]
	if p == nil || name == "" {
		return
	}
	ts := typeSpec(p, name)
	if ts == nil {
		return
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	ex.fact.ConfigPkg = pkgPath
	ex.knobField = make(map[string]types.Object)
	ex.structKnobs(p, st, "", 0)

	hashPaths := ex.hashPaths(p, name)
	for i := range ex.fact.Knobs {
		k := &ex.fact.Knobs[i]
		if hashPaths[k.Path] {
			k.InHash = true
			continue
		}
		// A parent path in the hash (hashing the whole nested struct)
		// covers every knob below it.
		for dot := strings.LastIndex(k.Path, "."); dot > 0; dot = strings.LastIndex(k.Path[:dot], ".") {
			if hashPaths[k.Path[:dot]] {
				k.InHash = true
				break
			}
		}
	}
	ex.readSweep()
}

// structKnobs records one knob per exported field; named-struct fields
// recurse one level into the nested struct's own declaration (which may
// live in another package).
func (ex *extractor) structKnobs(p *load.Package, st *ast.StructType, prefix string, depth int) {
	for _, fl := range st.Fields.List {
		t := p.Info.Types[fl.Type].Type
		if t == nil {
			continue
		}
		for _, nm := range fl.Names {
			if !nm.IsExported() {
				continue
			}
			path := prefix + nm.Name
			kind, enumKey, nested := classify(t)
			if kind == "struct" {
				if nested == nil || depth > 0 {
					continue // anonymous or too deep: not a knob surface
				}
				np := ex.byPath[nested.Obj().Pkg().Path()]
				if np == nil {
					continue // nested struct's package not loaded: skip
				}
				nts := typeSpec(np, nested.Obj().Name())
				if nts == nil {
					continue
				}
				if nst, ok := nts.Type.(*ast.StructType); ok {
					ex.structKnobs(np, nst, path+".", depth+1)
				}
				continue
			}
			ex.fact.Knobs = append(ex.fact.Knobs, Knob{
				Path:     path,
				Pos:      nm.Pos(),
				OwnerPkg: p.ImportPath,
				Kind:     kind,
				EnumType: enumKey,
			})
			ex.knobField[path] = p.Info.Defs[nm]
		}
	}
}

// classify buckets a field type: hooks (functions, interfaces, pointers,
// channels, maps, slices) are exempt from plumbing; named basic types with
// two or more typed constants are enums; named structs recurse.
func classify(t types.Type) (kind, enumKey string, nested *types.Named) {
	switch t.Underlying().(type) {
	case *types.Signature, *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Slice:
		return "hook", "", nil
	case *types.Struct:
		n, _ := t.(*types.Named)
		return "struct", "", n
	case *types.Basic:
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
			if len(constsOf(n)) >= 2 {
				return "enum", typeKeyOf(n), nil
			}
		}
		return "scalar", "", nil
	}
	return "scalar", "", nil
}

// constsOf lists the package-scope constants of exactly type n, sorted by
// name. Works on source-checked and export-data packages alike.
func constsOf(n *types.Named) []*types.Const {
	scope := n.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() { // Names() is sorted
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), n) {
			out = append(out, c)
		}
	}
	return out
}

// hashPaths collects the receiver-rooted selector paths the hash method
// reads ("K", "CG.Tol", "BeforeTransform").
func (ex *extractor) hashPaths(p *load.Package, typeName string) map[string]bool {
	paths := make(map[string]bool)
	decl := methodDecl(p, typeName, ex.cfg.HashMethod)
	if decl == nil || decl.Body == nil {
		return paths
	}
	ex.fact.HashPos = decl.Pos()
	if len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return paths
	}
	recv := p.Info.Defs[decl.Recv.List[0].Names[0]]
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if path, ok := selPath(p, sel, recv); ok {
			paths[path] = true
			return false
		}
		return true
	})
	return paths
}

// selPath renders a selector chain rooted at root ("c.CG.Tol" -> "CG.Tol").
func selPath(p *load.Package, sel *ast.SelectorExpr, root types.Object) (string, bool) {
	var parts []string
	expr := ast.Expr(sel)
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			parts = append(parts, e.Sel.Name)
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.Ident:
			if p.Info.Uses[e] != root || root == nil {
				return "", false
			}
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return strings.Join(parts, "."), true
		default:
			return "", false
		}
	}
}

// methodDecl finds the declaration of typeName's method (value or pointer
// receiver).
func methodDecl(p *load.Package, typeName, method string) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != method || len(fd.Recv.List) == 0 {
				continue
			}
			rt := fd.Recv.List[0].Type
			if se, ok := rt.(*ast.StarExpr); ok {
				rt = se.X
			}
			if id, ok := rt.(*ast.Ident); ok && id.Name == typeName {
				return fd
			}
		}
	}
	return nil
}

// readSweep marks knobs whose field the declaring package reads outside
// the hash method. A selector that is itself an assignment target does not
// count — a knob only ever written is still dead.
func (ex *extractor) readSweep() {
	// Group knobs by owner package so each package walks once.
	byOwner := make(map[string][]int)
	for i, k := range ex.fact.Knobs {
		byOwner[k.OwnerPkg] = append(byOwner[k.OwnerPkg], i)
	}
	for _, owner := range sortedKeysInt(byOwner) {
		p := ex.byPath[owner]
		if p == nil {
			continue
		}
		want := make(map[types.Object]int)
		for _, i := range byOwner[owner] {
			if obj := ex.knobField[ex.fact.Knobs[i].Path]; obj != nil {
				want[obj] = i
			}
		}
		var hashRange [2]token.Pos
		if owner == ex.fact.ConfigPkg && ex.fact.HashPos.IsValid() {
			_, cfgName := splitKey(ex.cfg.ConfigStruct)
			if d := methodDecl(p, cfgName, ex.cfg.HashMethod); d != nil {
				hashRange = [2]token.Pos{d.Pos(), d.End()}
			}
		}
		for _, f := range p.Files {
			lhs := assignTargets(f)
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := p.Info.Uses[sel.Sel]
				i, tracked := want[obj]
				if !tracked || lhs[sel] {
					return true
				}
				if hashRange[1] != token.NoPos && sel.Pos() >= hashRange[0] && sel.Pos() < hashRange[1] {
					return true
				}
				ex.fact.Knobs[i].Read = true
				return true
			})
		}
	}
}

// assignTargets collects every expression that appears as an assignment
// LHS in the file, so the read sweep can tell stores from loads.
func assignTargets(f *ast.File) map[ast.Expr]bool {
	out := make(map[ast.Expr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				out[l] = true
			}
		}
		return true
	})
	return out
}

// sortedSinkPaths orders a taint-walk result for deterministic wiring.
func sortedSinkPaths(m map[string]map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysInt(m map[string][]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// submit records the request struct's JSON fields and whether the serving
// package reads each one.
func (ex *extractor) submit() {
	pkgPath, name := splitKey(ex.cfg.SubmitStruct)
	p := ex.byPath[pkgPath]
	if p == nil || name == "" {
		return
	}
	ts := typeSpec(p, name)
	if ts == nil {
		return
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	ex.fact.SubmitPkg = pkgPath
	fieldObjs := make(map[types.Object]int)
	for _, fl := range st.Fields.List {
		for _, nm := range fl.Names {
			if !nm.IsExported() {
				continue
			}
			jn := jsonName(fl.Tag)
			if jn == "" {
				jn = nm.Name
			}
			ex.fact.Submit = append(ex.fact.Submit, SubmitField{
				Name: nm.Name, JSON: jn, Pos: nm.Pos(), Pkg: pkgPath,
			})
			fieldObjs[p.Info.Defs[nm]] = len(ex.fact.Submit) - 1
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if i, tracked := fieldObjs[p.Info.Uses[sel.Sel]]; tracked {
				ex.fact.Submit[i].Used = true
			}
			return true
		})
	}
}

// wire runs the taint walks: flag registrations to Config sinks in
// FlagsPkg, and request-field reads to Config sinks in the submit package.
func (ex *extractor) wire() {
	if len(ex.fact.Knobs) == 0 {
		return
	}
	knobIdx := make(map[string]int, len(ex.fact.Knobs))
	for i, k := range ex.fact.Knobs {
		knobIdx[k.Path] = i
	}
	if p := ex.byPath[ex.cfg.FlagsPkg]; p != nil {
		ex.fact.FlagsPkg = ex.cfg.FlagsPkg
		sinks := ex.taintWalk(p, nil)
		for _, path := range sortedSinkPaths(sinks) {
			if i, ok := knobIdx[path]; ok {
				ex.fact.Knobs[i].Flags = append(ex.fact.Knobs[i].Flags, sortedSet(sinks[path])...)
			}
		}
	}
	if ex.fact.SubmitPkg != "" {
		p := ex.byPath[ex.fact.SubmitPkg]
		_, submitName := splitKey(ex.cfg.SubmitStruct)
		seeds := ex.submitSeeds(p, submitName)
		sinks := ex.taintWalk(p, seeds)
		for _, path := range sortedSinkPaths(sinks) {
			if i, ok := knobIdx[path]; ok {
				ex.fact.Knobs[i].JSONs = append(ex.fact.Knobs[i].JSONs, sortedSet(sinks[path])...)
			}
		}
	}
	for i := range ex.fact.Knobs {
		sort.Strings(ex.fact.Knobs[i].Flags)
		sort.Strings(ex.fact.Knobs[i].JSONs)
	}
}

// submitSeeds maps each request-struct field object to its JSON name, the
// taint sources of the serving package.
func (ex *extractor) submitSeeds(p *load.Package, structName string) map[types.Object]string {
	seeds := make(map[types.Object]string)
	ts := typeSpec(p, structName)
	if ts == nil {
		return seeds
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return seeds
	}
	for _, fl := range st.Fields.List {
		for _, nm := range fl.Names {
			jn := jsonName(fl.Tag)
			if jn == "" {
				jn = nm.Name
			}
			seeds[p.Info.Defs[nm]] = jn
		}
	}
	return seeds
}

// taintWalk propagates taint labels (flag names or JSON field names)
// through the package's assignments to Config sinks. Intra-package,
// flow-insensitive, iterated to a fixpoint: precise enough for wiring
// code, which is straight-line plumbing by construction. Returns knob
// path -> label set.
func (ex *extractor) taintWalk(p *load.Package, seeds map[types.Object]string) map[string]map[string]bool {
	taint := make(map[types.Object]map[string]bool)
	eval := func(e ast.Expr) map[string]bool { return ex.exprTaint(p, e, taint, seeds) }
	for changed := true; changed; {
		changed = false
		merge := func(obj types.Object, ts map[string]bool) {
			if obj == nil || len(ts) == 0 {
				return
			}
			cur := taint[obj]
			if cur == nil {
				cur = make(map[string]bool)
				taint[obj] = cur
			}
			for _, l := range sortedSet(ts) {
				if !cur[l] {
					cur[l] = true
					changed = true
				}
			}
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ValueSpec:
					for i, nm := range n.Names {
						if i < len(n.Values) {
							merge(p.Info.Defs[nm], eval(n.Values[i]))
						}
					}
				case *ast.AssignStmt:
					// A multi-value RHS (pc, ok := Parse(x)) taints every
					// LHS from the union of RHS taints; per-position pairs
					// also land correctly under the same union.
					var all map[string]bool
					for _, r := range n.Rhs {
						for _, l := range sortedSet(eval(r)) {
							if all == nil {
								all = make(map[string]bool)
							}
							all[l] = true
						}
					}
					for _, l := range n.Lhs {
						if id, ok := l.(*ast.Ident); ok {
							obj := p.Info.Defs[id]
							if obj == nil {
								obj = p.Info.Uses[id]
							}
							merge(obj, all)
						}
					}
				}
				return true
			})
		}
	}

	sinks := make(map[string]map[string]bool)
	add := func(path string, ts map[string]bool) {
		if len(ts) == 0 {
			return
		}
		cur := sinks[path]
		if cur == nil {
			cur = make(map[string]bool)
			sinks[path] = cur
		}
		for l := range ts {
			cur[l] = true
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if ex.isConfigType(p.Info.Types[n].Type) {
					ex.litSinks(p, n, "", add, taint, seeds)
				}
			case *ast.AssignStmt:
				for i, l := range n.Lhs {
					sel, ok := l.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if path, ok := ex.configSelPath(p, sel); ok && i < len(n.Rhs) {
						add(path, ex.exprTaint(p, n.Rhs[i], taint, seeds))
					}
				}
			}
			return true
		})
	}
	return sinks
}

// litSinks records the taints flowing into a Config composite literal,
// recursing into nested struct literals with a dotted path prefix.
func (ex *extractor) litSinks(p *load.Package, lit *ast.CompositeLit, prefix string, add func(string, map[string]bool), taint map[types.Object]map[string]bool, seeds map[types.Object]string) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		path := prefix + key.Name
		if sub, ok := kv.Value.(*ast.CompositeLit); ok {
			if t := p.Info.Types[sub].Type; t != nil {
				if _, isStruct := t.Underlying().(*types.Struct); isStruct {
					ex.litSinks(p, sub, path+".", add, taint, seeds)
					continue
				}
			}
		}
		add(path, ex.exprTaint(p, kv.Value, taint, seeds))
	}
}

// configSelPath renders an assignment target like cfg.CG.Tol as a knob
// path when the chain is rooted at a variable of the Config type.
func (ex *extractor) configSelPath(p *load.Package, sel *ast.SelectorExpr) (string, bool) {
	var parts []string
	expr := ast.Expr(sel)
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			parts = append(parts, e.Sel.Name)
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.Ident:
			if !ex.isConfigType(p.Info.Types[e].Type) {
				return "", false
			}
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return strings.Join(parts, "."), true
		default:
			return "", false
		}
	}
}

// isConfigType reports whether t is the Config struct (pointer stripped),
// compared by key string so source- and export-data views agree.
func (ex *extractor) isConfigType(t types.Type) bool {
	if t == nil {
		return false
	}
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && typeKeyOf(n) == ex.cfg.ConfigStruct
}

// exprTaint computes the taint labels of one expression: flag.*
// registration calls contribute their flag name, request-struct field
// reads their JSON name, identifiers their accumulated taint; everything
// else unions its children. Over-approximate on purpose — a label that
// reaches any subexpression of the stored value counts as plumbed.
func (ex *extractor) exprTaint(p *load.Package, e ast.Expr, taint map[types.Object]map[string]bool, seeds map[types.Object]string) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := flagName(p, n); ok {
				out[name] = true
			}
		case *ast.Ident:
			obj := p.Info.Uses[n]
			if obj == nil {
				obj = p.Info.Defs[n]
			}
			for l := range taint[obj] {
				out[l] = true
			}
		case *ast.SelectorExpr:
			if seeds != nil {
				if jn, ok := seeds[p.Info.Uses[n.Sel]]; ok {
					out[jn] = true
				}
			}
		}
		return true
	})
	return out
}

// flagName recognizes flag.String/Bool/... and flag.*Var registration
// calls and returns the registered flag name.
func flagName(p *load.Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Info.Uses[base].(*types.PkgName)
	if !ok || pn.Imported().Path() != "flag" {
		return "", false
	}
	method := sel.Sel.Name
	nameArg := 0
	if strings.HasSuffix(method, "Var") {
		method = strings.TrimSuffix(method, "Var")
		nameArg = 1
	}
	switch method {
	case "String", "Bool", "Int", "Int64", "Uint", "Uint64", "Float64", "Duration":
	default:
		return "", false
	}
	if nameArg >= len(call.Args) {
		return "", false
	}
	tv := p.Info.Types[call.Args[nameArg]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// enums extracts each enum type referenced by a knob: constants, the
// String switch, the (string) (T, bool) parser, and the facade exports.
func (ex *extractor) enums() {
	keys := make(map[string]bool)
	for _, k := range ex.fact.Knobs {
		if k.Kind == "enum" {
			keys[k.EnumType] = true
		}
	}
	for _, key := range sortedSet(keys) {
		pkgPath, name := splitKey(key)
		p := ex.byPath[pkgPath]
		if p == nil {
			continue // enum's package not loaded from source: skip checks
		}
		obj, ok := p.Types.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		e := Enum{TypeKey: key, Pkg: pkgPath, Pos: obj.Pos()}
		for _, c := range constsOf(named) {
			e.Consts = append(e.Consts, EnumConst{
				Name:   c.Name(),
				Value:  c.Val().ExactString(),
				Pos:    c.Pos(),
				IsZero: isZeroConst(c),
			})
		}
		ex.enumString(p, named, &e)
		ex.enumParse(p, named, &e)
		ex.enumFacade(named, &e)
		ex.fact.Enums = append(ex.fact.Enums, e)
	}
}

func isZeroConst(c *types.Const) bool {
	switch c.Val().Kind() {
	case constant.Int:
		v, ok := constant.Int64Val(c.Val())
		return ok && v == 0
	case constant.String:
		return constant.StringVal(c.Val()) == ""
	}
	return false
}

// enumString reads the String method as a switch over the receiver: each
// case maps its constants to the returned literal; a default clause's
// literal is attributed to the single uncovered constant. Any other shape
// marks the map opaque.
func (ex *extractor) enumString(p *load.Package, named *types.Named, e *Enum) {
	decl := methodDecl(p, named.Obj().Name(), "String")
	if decl == nil || decl.Body == nil {
		return
	}
	e.HasString = true
	e.StringPos = decl.Pos()
	e.StringMap = make(map[string]string)
	sw := soleSwitch(decl.Body)
	if sw == nil {
		e.StringOpaque = true
		return
	}
	covered := make(map[string]bool)
	var defaultTag string
	hasDefault := false
	for _, cl := range sw.Body.List {
		cc := cl.(*ast.CaseClause)
		tag, ok := soleReturnString(cc.Body)
		if !ok {
			e.StringOpaque = true
			return
		}
		if cc.List == nil {
			defaultTag, hasDefault = tag, true
			continue
		}
		for _, cx := range cc.List {
			id, ok := unparen(cx).(*ast.Ident)
			if !ok {
				e.StringOpaque = true
				return
			}
			e.StringMap[id.Name] = tag
			covered[id.Name] = true
		}
	}
	if hasDefault {
		var uncovered []string
		for _, c := range e.Consts {
			if !covered[c.Name] {
				uncovered = append(uncovered, c.Name)
			}
		}
		if len(uncovered) == 1 {
			e.StringMap[uncovered[0]] = defaultTag
		} else if len(uncovered) > 1 {
			// Several constants share one printed form; the round-trip
			// cannot hold for all of them, so don't pretend to know it.
			e.StringOpaque = true
		}
	}
}

// enumParse finds a package function with signature func(string) (T, bool)
// and reads its accepting switch cases.
func (ex *extractor) enumParse(p *load.Package, named *types.Named, e *Enum) {
	var decl *ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if sig.Params().Len() != 1 || sig.Results().Len() != 2 {
				continue
			}
			if b, ok := sig.Params().At(0).Type().(*types.Basic); !ok || b.Kind() != types.String {
				continue
			}
			if !types.Identical(sig.Results().At(0).Type(), named) {
				continue
			}
			if b, ok := sig.Results().At(1).Type().(*types.Basic); !ok || b.Kind() != types.Bool {
				continue
			}
			decl = fd
		}
	}
	if decl == nil || decl.Body == nil {
		return
	}
	e.ParseName = decl.Name.Name
	e.ParsePos = decl.Pos()
	e.ParseMap = make(map[string]string)
	sw := soleSwitch(decl.Body)
	if sw == nil {
		e.ParseOpaque = true
		return
	}
	zeroName := ""
	for _, c := range e.Consts {
		if c.IsZero {
			zeroName = c.Name
			break
		}
	}
	for _, cl := range sw.Body.List {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			continue // default: the rejection path
		}
		constName, accepted, ok := parseReturn(cc.Body, zeroName)
		if !ok {
			e.ParseOpaque = true
			return
		}
		if !accepted {
			continue
		}
		for _, cx := range cc.List {
			tv := p.Info.Types[cx]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				e.ParseOpaque = true
				return
			}
			e.ParseMap[constant.StringVal(tv.Value)] = constName
		}
	}
	if name, ok := e.ParseMap[""]; ok && name == zeroName && zeroName != "" {
		e.ParseZeroEmpty = true
	}
}

// enumFacade checks the public package re-exports the enum: a type name
// aliasing it, its constant values, and a parse wrapper.
func (ex *extractor) enumFacade(named *types.Named, e *Enum) {
	p := ex.byPath[ex.cfg.FacadePkg]
	if p == nil {
		return
	}
	ex.fact.FacadePkg = ex.cfg.FacadePkg
	e.FacadeConstValues = make(map[string]bool)
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.TypeName:
			if n, ok := o.Type().(*types.Named); ok && typeKeyOf(n) == e.TypeKey {
				e.FacadeAliased = true
			}
		case *types.Const:
			if n, ok := o.Type().(*types.Named); ok && typeKeyOf(n) == e.TypeKey {
				e.FacadeConstValues[o.Val().ExactString()] = true
			}
		case *types.Func:
			sig, ok := o.Type().(*types.Signature)
			if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
				continue
			}
			if b, ok := sig.Params().At(0).Type().(*types.Basic); !ok || b.Kind() != types.String {
				continue
			}
			if n, ok := sig.Results().At(0).Type().(*types.Named); ok && typeKeyOf(n) == e.TypeKey {
				if b, ok := sig.Results().At(1).Type().(*types.Basic); ok && b.Kind() == types.Bool {
					e.FacadeParse = true
				}
			}
		}
	}
}

// soleSwitch returns the body's single switch statement, nil for any
// other shape.
func soleSwitch(body *ast.BlockStmt) *ast.SwitchStmt {
	if len(body.List) != 1 {
		return nil
	}
	sw, _ := body.List[0].(*ast.SwitchStmt)
	if sw == nil || sw.Tag == nil {
		return nil
	}
	return sw
}

// soleReturnString reads a case body of exactly `return "lit"`.
func soleReturnString(body []ast.Stmt) (string, bool) {
	if len(body) != 1 {
		return "", false
	}
	ret, ok := body[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return "", false
	}
	lit, ok := unparen(ret.Results[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	return strings.Trim(lit.Value, `"`), true
}

// parseReturn reads a case body of exactly `return Const, true|false`,
// mapping a literal 0 first result to the zero constant.
func parseReturn(body []ast.Stmt, zeroName string) (constName string, accepted, ok bool) {
	if len(body) != 1 {
		return "", false, false
	}
	ret, rok := body[0].(*ast.ReturnStmt)
	if !rok || len(ret.Results) != 2 {
		return "", false, false
	}
	switch v := unparen(ret.Results[0]).(type) {
	case *ast.Ident:
		constName = v.Name
	case *ast.SelectorExpr:
		constName = v.Sel.Name
	case *ast.BasicLit:
		if v.Value != "0" || zeroName == "" {
			return "", false, false
		}
		constName = zeroName
	default:
		return "", false, false
	}
	okID, iok := unparen(ret.Results[1]).(*ast.Ident)
	if !iok || (okID.Name != "true" && okID.Name != "false") {
		return "", false, false
	}
	return constName, okID.Name == "true", true
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
