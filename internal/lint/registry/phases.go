package registry

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/lint/load"
)

// phaseName constrains what counts as a phase identifier in span and
// waterfall literals, so labels like "place/step grid" (a span name with a
// human suffix, not a phase) never enter a surface.
var phaseName = regexp.MustCompile(`^[a-z0-9-]+$`)

// phases extracts the canonical phase list from the iteration-stats struct
// and every mirror surface named in the config.
func (ex *extractor) phases() {
	ex.canonPhases()
	if !ex.fact.CanonOK {
		return // no canonical list, no surfaces to compare against
	}
	ex.totalsSurface()
	ex.spanSurface()
	ex.keysFnSurface()
	ex.eventsSurface()
	ex.waterfallSurface()
	ex.traceCheckSurface()
}

// canonPhases reads IterStruct's t_<phase>_ns JSON tags in declaration
// order; underscores in the tag become dashes in the canonical name
// (t_solve_x_ns -> solve-x).
func (ex *extractor) canonPhases() {
	pkgPath, name := splitKey(ex.cfg.IterStruct)
	p := ex.byPath[pkgPath]
	if p == nil || name == "" {
		return
	}
	ts := typeSpec(p, name)
	if ts == nil {
		return
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, fl := range st.Fields.List {
		jn := jsonName(fl.Tag)
		if !strings.HasPrefix(jn, "t_") || !strings.HasSuffix(jn, "_ns") {
			continue
		}
		phase := strings.ReplaceAll(strings.TrimSuffix(strings.TrimPrefix(jn, "t_"), "_ns"), "_", "-")
		pos := fl.Pos()
		if len(fl.Names) > 0 {
			pos = fl.Names[0].Pos()
		}
		ex.fact.Canon = append(ex.fact.Canon, PhaseRef{Name: phase, Pos: pos})
	}
	ex.fact.CanonOK = len(ex.fact.Canon) > 0
}

// totalsSurface mirrors the canonical list onto TotalsStruct's exported
// field names, kebab-cased (SolvePair -> solve-pair).
func (ex *extractor) totalsSurface() {
	pkgPath, name := splitKey(ex.cfg.TotalsStruct)
	p := ex.byPath[pkgPath]
	if p == nil || name == "" {
		return
	}
	ts := typeSpec(p, name)
	if ts == nil {
		return
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	s := Surface{Name: "totals", Pkg: pkgPath, Anchor: ts.Name.Pos()}
	for _, fl := range st.Fields.List {
		for _, nm := range fl.Names {
			if nm.IsExported() {
				s.Present = append(s.Present, PhaseRef{Name: kebab(nm.Name), Pos: nm.Pos()})
			}
		}
	}
	ex.fact.Surfaces = append(ex.fact.Surfaces, s)
}

// kebab converts a camel-case Go field name to its phase form:
// SolvePair -> solve-pair.
func kebab(name string) string {
	var b strings.Builder
	for i, r := range name {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('-')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// spanSurface collects SpanPrefix+"<phase>" string literals anywhere in
// SpanPkg. Literals whose suffix is not a bare phase name (spaces, label
// text) are span labels, not phase mirrors, and are skipped.
func (ex *extractor) spanSurface() {
	p := ex.byPath[ex.cfg.SpanPkg]
	if p == nil || ex.cfg.SpanPrefix == "" {
		return
	}
	s := Surface{Name: "spans", Pkg: ex.cfg.SpanPkg}
	seen := make(map[string]bool)
	for _, f := range p.Files {
		if s.Anchor == token.NoPos {
			s.Anchor = f.Pos()
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			v := strings.Trim(lit.Value, `"`)
			if !strings.HasPrefix(v, ex.cfg.SpanPrefix) {
				return true
			}
			phase := strings.TrimPrefix(v, ex.cfg.SpanPrefix)
			if !phaseName.MatchString(phase) || seen[phase] {
				return true
			}
			seen[phase] = true
			s.Present = append(s.Present, PhaseRef{Name: phase, Pos: lit.Pos()})
			return true
		})
	}
	ex.fact.Surfaces = append(ex.fact.Surfaces, s)
}

// keysFnSurface reads the string literals returned by the PhaseKeys
// function, in order.
func (ex *extractor) keysFnSurface() {
	pkgPath, name := splitKey(ex.cfg.PhaseKeysFunc)
	p := ex.byPath[pkgPath]
	if p == nil || name == "" {
		return
	}
	var decl *ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				decl = fd
			}
		}
	}
	if decl == nil || decl.Body == nil {
		return
	}
	s := Surface{Name: "keysfn", Pkg: pkgPath, Anchor: decl.Name.Pos()}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		s.Present = append(s.Present, PhaseRef{Name: strings.Trim(lit.Value, `"`), Pos: lit.Pos()})
		return true
	})
	ex.fact.Surfaces = append(ex.fact.Surfaces, s)
}

// eventsSurface mirrors the canonical list onto the streaming event
// struct's <phase>_ns JSON tags; Collapse lets one aggregate field stand
// in for several canonical phases.
func (ex *extractor) eventsSurface() {
	pkgPath, name := splitKey(ex.cfg.EventStruct)
	p := ex.byPath[pkgPath]
	if p == nil || name == "" {
		return
	}
	ts := typeSpec(p, name)
	if ts == nil {
		return
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	s := Surface{Name: "events", Pkg: pkgPath, Anchor: ts.Name.Pos(), Collapse: ex.cfg.EventCollapse}
	for _, fl := range st.Fields.List {
		jn := jsonName(fl.Tag)
		if !strings.HasSuffix(jn, "_ns") {
			continue
		}
		phase := strings.ReplaceAll(strings.TrimSuffix(jn, "_ns"), "_", "-")
		pos := fl.Pos()
		if len(fl.Names) > 0 {
			pos = fl.Names[0].Pos()
		}
		s.Present = append(s.Present, PhaseRef{Name: phase, Pos: pos})
	}
	ex.fact.Surfaces = append(ex.fact.Surfaces, s)
}

// waterfallSurface collects WaterfallPrefix+"<phase>" literals in the
// serving package, with the config's exempt list attached.
func (ex *extractor) waterfallSurface() {
	p := ex.byPath[ex.cfg.WaterfallPkg]
	if p == nil || ex.cfg.WaterfallPrefix == "" {
		return
	}
	s := Surface{Name: "waterfall", Pkg: ex.cfg.WaterfallPkg, Exempt: ex.cfg.WaterfallExempt}
	seen := make(map[string]bool)
	for _, f := range p.Files {
		if s.Anchor == token.NoPos {
			s.Anchor = f.Pos()
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			v := strings.Trim(lit.Value, `"`)
			if !strings.HasPrefix(v, ex.cfg.WaterfallPrefix) {
				return true
			}
			phase := strings.TrimPrefix(v, ex.cfg.WaterfallPrefix)
			if !phaseName.MatchString(phase) || seen[phase] {
				return true
			}
			seen[phase] = true
			s.Present = append(s.Present, PhaseRef{Name: phase, Pos: lit.Pos()})
			return true
		})
	}
	ex.fact.Surfaces = append(ex.fact.Surfaces, s)
}

// traceCheckSurface reads the t_<phase>_ns keys of the trace-key allowlist
// map literal.
func (ex *extractor) traceCheckSurface() {
	pkgPath, name := splitKey(ex.cfg.TraceCheckVar)
	p := ex.byPath[pkgPath]
	if p == nil || name == "" {
		return
	}
	var spec *ast.ValueSpec
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, sp := range gd.Specs {
				vs := sp.(*ast.ValueSpec)
				for _, nm := range vs.Names {
					if nm.Name == name {
						spec = vs
					}
				}
			}
		}
	}
	if spec == nil || len(spec.Values) != 1 {
		return
	}
	lit, ok := spec.Values[0].(*ast.CompositeLit)
	if !ok {
		return
	}
	s := Surface{Name: "tracecheck", Pkg: pkgPath, Anchor: spec.Names[0].Pos()}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		bl, ok := kv.Key.(*ast.BasicLit)
		if !ok || bl.Kind != token.STRING {
			continue
		}
		key := strings.Trim(bl.Value, `"`)
		if !strings.HasPrefix(key, "t_") || !strings.HasSuffix(key, "_ns") {
			continue
		}
		phase := strings.ReplaceAll(strings.TrimSuffix(strings.TrimPrefix(key, "t_"), "_ns"), "_", "-")
		s.Present = append(s.Present, PhaseRef{Name: phase, Pos: bl.Pos()})
	}
	ex.fact.Surfaces = append(ex.fact.Surfaces, s)
}

// metrics collects every Counter/Gauge/Histogram registration on the
// metrics registry type whose name argument is statically known — a
// constant-folded string, or a binary concatenation whose leading operand
// is a literal (the dynamic tail is a label suffix and drops out of the
// family name anyway when it starts at '{').
func (ex *extractor) metrics() {
	if ex.cfg.MetricsType == "" {
		return
	}
	for _, p := range ex.pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				kind := ""
				switch sel.Sel.Name {
				case "Counter":
					kind = "counter"
				case "Gauge":
					kind = "gauge"
				case "Histogram":
					kind = "histogram"
				default:
					return true
				}
				if !ex.isMetricsRecv(p, sel.X) || len(call.Args) < 2 {
					return true
				}
				name, exact := staticString(p, call.Args[0])
				if name == "" {
					return true
				}
				family := name
				if i := strings.IndexByte(family, '{'); i >= 0 {
					family = family[:i]
				} else if !exact {
					// "literal" + tag with no brace in the literal: the
					// family boundary is unknowable statically; skip.
					return true
				}
				help, _ := staticString(p, call.Args[1])
				ex.fact.Metrics = append(ex.fact.Metrics, Metric{
					Family: family,
					Kind:   kind,
					Help:   help,
					Pkg:    p.ImportPath,
					Pos:    call.Args[0].Pos(),
				})
				return true
			})
		}
	}
	sort.Slice(ex.fact.Metrics, func(i, j int) bool {
		a, b := ex.fact.Metrics[i], ex.fact.Metrics[j]
		if a.Family != b.Family {
			return a.Family < b.Family
		}
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Pos < b.Pos
	})
}

// isMetricsRecv reports whether e's type is the configured metrics
// registry type (pointer stripped).
func (ex *extractor) isMetricsRecv(p *load.Package, e ast.Expr) bool {
	t := p.Info.Types[e].Type
	if t == nil {
		return false
	}
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && typeKeyOf(n) == ex.cfg.MetricsType
}

// staticString evaluates e to a string when the type checker constant-
// folded it (exact=true), or to the leading literal operand of a
// concatenation chain (exact=false).
func staticString(p *load.Package, e ast.Expr) (s string, exact bool) {
	if tv := p.Info.Types[e]; tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	for {
		be, ok := unparen(e).(*ast.BinaryExpr)
		if !ok || be.Op != token.ADD {
			break
		}
		e = be.X
	}
	if tv := p.Info.Types[unparen(e)]; tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), false
	}
	return "", false
}
