// Package detrange flags `range` over maps in the core placement packages.
// Go randomizes map iteration order, so any map range whose body is
// order-sensitive makes a run irreproducible — and the Kraftwerk loop
// (C·p + d + e = 0 solved iteratively) must replay bit-identically across
// runs for the hot-path caches and the equivalence tests to mean anything.
//
// A map range is accepted when its body is provably order-insensitive:
// it only collects keys/values into slices (the collect-then-sort idiom),
// writes or deletes per-key entries of maps indexed by the iteration key,
// or accumulates integers (integer addition is associative; float
// accumulation is not and stays flagged). Everything else needs the keys
// sorted first or a //lint:ignore detrange with a reason.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer flags order-sensitive iteration over maps.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "flags range over maps whose body depends on iteration order; map order is randomized and breaks run-to-run reproducibility",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, rs) {
				return true
			}
			pass.Reportf(rs.For, "range over map %s is order-sensitive: map iteration order is randomized; sort the keys first", types.ExprString(rs.X))
			return true
		})
	}
	return nil
}

// orderInsensitive reports whether every statement of the range body is one
// of the recognized commutative forms.
func orderInsensitive(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	key := identObject(pass, rs.Key)
	for _, stmt := range rs.Body.List {
		if !insensitiveStmt(pass, stmt, key) {
			return false
		}
	}
	return true
}

// insensitiveStmt recognizes statements whose effect does not depend on
// the order they run in across loop iterations.
func insensitiveStmt(pass *analysis.Pass, stmt ast.Stmt, key types.Object) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return isIntegral(pass, s.X)
	case *ast.ExprStmt:
		// delete(m, k): per-key removal.
		call, ok := s.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		return ok && fn.Name == "delete" && usesObject(pass, call.Args[1], key)
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// n += v and friends commute only over integers.
			return isIntegral(pass, s.Lhs[0])
		case token.ASSIGN:
			// x = append(x, ...): the collect-then-sort idiom.
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" && len(call.Args) > 0 &&
					types.ExprString(call.Args[0]) == types.ExprString(s.Lhs[0]) {
					return true
				}
			}
			// m2[k] = v: a per-key write, independent across keys.
			if idx, ok := s.Lhs[0].(*ast.IndexExpr); ok && usesObject(pass, idx.Index, key) {
				return true
			}
			return false
		}
	}
	return false
}

// identObject resolves the object behind the range key identifier
// (nil for `_`, selectors, or absent keys).
func identObject(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Uses[id]
}

// usesObject reports whether e is exactly an identifier for obj.
func usesObject(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

// isIntegral reports whether e has an integer (or boolean) type, the types
// whose accumulation commutes exactly.
func isIntegral(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
}
