package detrange_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, "testdata/fixture", detrange.Analyzer)
}
