// Package fixture exercises the detrange analyzer: order-sensitive map
// ranges are flagged, the recognized commutative forms are not.
package fixture

import "sort"

// orderSensitive folds values in iteration order: flagged.
func orderSensitive(m map[string]int) int {
	total := 0
	for _, v := range m { // want `order-sensitive`
		total = total*31 + v
	}
	return total
}

// floatAccumulate sums floats, which is not associative: flagged.
func floatAccumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `order-sensitive`
		sum += v
	}
	return sum
}

// namedMapType ranges over a named map type: still flagged.
type weights map[int]float64

func namedMapType(w weights) []float64 {
	var out []float64
	for _, v := range w { // want `order-sensitive`
		out = append(out, v*2)
		_ = out
	}
	return out
}

// collectThenSort appends keys then sorts: allowed.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// intCount accumulates integers, which commutes exactly: allowed.
func intCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// perKeyWrite updates another map keyed by the iteration key: allowed.
func perKeyWrite(src map[string]int, dst map[string]int) {
	for k := range src {
		dst[k] = len(k)
	}
}

// clear deletes per key: allowed.
func clear(m, drop map[string]int) {
	for k := range drop {
		delete(m, k)
	}
}

// suppressed documents a deliberate exception: not reported.
func suppressed(m map[string]float64) float64 {
	var sum float64
	//lint:ignore detrange fixture exercises the suppression path
	for _, v := range m {
		sum += v
	}
	return sum
}
