// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against `// want` comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the standard
// library alone.
//
// A fixture is an ordinary compilable package under the analyzer's
// testdata directory (testdata keeps it out of ./... builds). Lines that
// should be flagged carry a trailing
//
//	// want `regexp`
//
// comment (multiple backquoted regexps for multiple diagnostics on one
// line). The run fails on any diagnostic without a matching want and any
// want without a matching diagnostic, so fixtures prove both that the
// analyzer catches its target pattern and that it stays quiet elsewhere.
// Suppression directives (//lint:ignore) are honored, so fixtures also
// exercise the ignore path.
//
// Interprocedural analyzers use RunWithConfig, which runs the callgraph
// fact phase over every package of the fixture (so multi-package fixtures
// exercise cross-package fact propagation) with the roots the fixture
// declares. Analyzers with autofixes use RunFix, which checks the fixed
// output against `.fixed` goldens, proves it still compiles, and proves a
// second fix pass has nothing left to do.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/load"
	"repro/internal/lint/registry"
)

// wantRE extracts the backquoted patterns of one want comment.
var wantRE = regexp.MustCompile("`([^`]*)`")

// expectation is one want entry: a pattern expected to match a diagnostic
// on a specific line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package rooted at dir (a directory path relative
// to the test's working directory), applies the analyzer, and reports any
// mismatch between diagnostics and want comments as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	check(t, dir, a, nil, nil, ".")
}

// RunWithConfig is Run with the interprocedural fact phase enabled: every
// package under dir loads (so cross-package fixtures work) and cfg names
// the reachability roots, usually functions inside the fixture itself.
func RunWithConfig(t *testing.T, dir string, a *analysis.Analyzer, cfg callgraph.Config) {
	t.Helper()
	check(t, dir, a, &cfg, nil, "./...")
}

// RunWithRegistry is Run with the contract-registry phase enabled: every
// package under dir loads and reg names the fixture's own contract
// anchors (its Config struct, flags package, phase surfaces), so fixtures
// exercise the same extraction the real tree gets.
func RunWithRegistry(t *testing.T, dir string, a *analysis.Analyzer, reg registry.Config) {
	t.Helper()
	check(t, dir, a, nil, &reg, "./...")
}

func check(t *testing.T, dir string, a *analysis.Analyzer, cfg *callgraph.Config, reg *registry.Config, pattern string) {
	t.Helper()
	pkgs, res := run(t, dir, a, cfg, reg, pattern)
	var wants []*expectation
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	for _, f := range res.Findings {
		if !claim(wants, f) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", f.File, f.Line, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// run loads the fixture and applies the analyzer as a one-rule suite.
func run(t *testing.T, dir string, a *analysis.Analyzer, cfg *callgraph.Config, reg *registry.Config, pattern string) ([]*load.Package, *lint.Result) {
	t.Helper()
	pkgs, err := load.Load(load.Config{Dir: dir}, pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	opts := lint.Options{
		Graph:    cfg,
		Registry: reg,
		NoFacts:  cfg == nil && reg == nil && !a.NeedsFacts && !a.NeedsRegistry,
	}
	res, err := lint.RunSuite(pkgs, []lint.Rule{{Analyzer: a}}, opts)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	return pkgs, res
}

// RunFix applies the analyzer's suggested fixes to the fixture at dir and
// checks three properties: the fixed content of every changed file matches
// its `<name>.fixed` golden, the fixed package still compiles (it is
// re-loaded and type-checked from a scratch module), and a second run over
// the fixed code suggests nothing — the fix is idempotent.
func RunFix(t *testing.T, dir string, a *analysis.Analyzer, cfg *callgraph.Config) {
	t.Helper()
	pkgs, res := run(t, dir, a, cfg, nil, ".")
	if len(pkgs) != 1 {
		t.Fatalf("RunFix wants a single-package fixture, got %d packages", len(pkgs))
	}
	fixed, applied, skipped, err := lint.ApplyFixes(res.Fset, res.Findings)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	if applied == 0 {
		t.Fatalf("fixture produced no applicable fixes")
	}
	if skipped != 0 {
		t.Errorf("fixture has %d overlapping fixes; RunFix fixtures should apply cleanly in one pass", skipped)
	}

	changed := make([]string, 0, len(fixed))
	for file := range fixed {
		changed = append(changed, file)
	}
	sort.Strings(changed)
	for _, file := range changed {
		golden := file + ".fixed"
		want, rerr := os.ReadFile(golden)
		if rerr != nil {
			t.Errorf("fix changed %s but no golden exists: %v", filepath.Base(file), rerr)
			continue
		}
		if string(fixed[file]) != string(want) {
			t.Errorf("fixed %s differs from golden:\n%s", filepath.Base(file),
				lint.Diff(golden, want, fixed[file]))
		}
	}

	// Rebuild the fixture in a scratch module with the fixes applied: a
	// successful load is a successful compile, and a clean re-run proves
	// the fixes do not feed the analyzer new findings.
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(pkgs[0].Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src := filepath.Join(pkgs[0].Dir, e.Name())
		content, ok := fixed[src]
		if !ok {
			if content, err = os.ReadFile(src); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(tmp, e.Name()), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	repkgs, err := load.Load(load.Config{Dir: tmp}, ".")
	if err != nil {
		t.Fatalf("fixed fixture no longer compiles: %v", err)
	}
	reres, err := lint.RunSuite(repkgs, []lint.Rule{{Analyzer: a}}, lint.Options{Graph: cfg, NoFacts: cfg == nil && !a.NeedsFacts})
	if err != nil {
		t.Fatalf("re-running %s on fixed fixture: %v", a.Name, err)
	}
	for _, f := range reres.Findings {
		if len(f.Fixes) > 0 {
			t.Errorf("fix not idempotent: second run still suggests a fix at %s:%d: %s",
				filepath.Base(f.File), f.Line, f.Message)
		}
	}
}

// claim marks the first unmatched want satisfied by finding f.
func claim(wants []*expectation, f lint.Finding) bool {
	for _, w := range wants {
		if !w.matched && w.file == f.File && w.line == f.Line && w.pattern.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every `// want` comment of the fixture package.
func collectWants(t *testing.T, pkg *load.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment (need backquoted regexp): %s", pos, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// RunAll is a convenience for multi-fixture analyzers: it runs each
// subdirectory of testdata as its own fixture.
func RunAll(t *testing.T, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	for _, d := range dirs {
		d := d
		t.Run(d, func(t *testing.T) {
			Run(t, fmt.Sprintf("testdata/%s", d), a)
		})
	}
}
