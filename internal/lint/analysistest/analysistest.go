// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against `// want` comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the standard
// library alone.
//
// A fixture is an ordinary compilable package under the analyzer's
// testdata directory (testdata keeps it out of ./... builds). Lines that
// should be flagged carry a trailing
//
//	// want `regexp`
//
// comment (multiple backquoted regexps for multiple diagnostics on one
// line). The run fails on any diagnostic without a matching want and any
// want without a matching diagnostic, so fixtures prove both that the
// analyzer catches its target pattern and that it stays quiet elsewhere.
// Suppression directives (//lint:ignore) are honored, so fixtures also
// exercise the ignore path.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// wantRE extracts the backquoted patterns of one want comment.
var wantRE = regexp.MustCompile("`([^`]*)`")

// expectation is one want entry: a pattern expected to match a diagnostic
// on a specific line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package rooted at dir (a directory path relative
// to the test's working directory), applies the analyzer, and reports any
// mismatch between diagnostics and want comments as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := load.Load(load.Config{Dir: dir}, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		wants := collectWants(t, pkg)
		findings, err := lint.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		for _, f := range findings {
			if !claim(wants, f) {
				t.Errorf("%s:%d: unexpected diagnostic: %s", f.File, f.Line, f.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
			}
		}
	}
}

// claim marks the first unmatched want satisfied by finding f.
func claim(wants []*expectation, f lint.Finding) bool {
	for _, w := range wants {
		if !w.matched && w.file == f.File && w.line == f.Line && w.pattern.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every `// want` comment of the fixture package.
func collectWants(t *testing.T, pkg *load.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment (need backquoted regexp): %s", pos, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// RunAll is a convenience for multi-fixture analyzers: it runs each
// subdirectory of testdata as its own fixture.
func RunAll(t *testing.T, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	for _, d := range dirs {
		d := d
		t.Run(d, func(t *testing.T) {
			Run(t, fmt.Sprintf("testdata/%s", d), a)
		})
	}
}
