package lockheld_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/lockheld"
)

func TestFixture(t *testing.T) {
	// No roots needed: MayBlock propagation is root-free; the config only
	// carries the bounded allowlist.
	analysistest.RunWithConfig(t, "testdata/fixture", lockheld.Analyzer, callgraph.Config{
		Bounded: callgraph.DefaultBounded,
	})
}
