// Package fixture exercises lockheld. The shapes mirror internal/serve's
// drain path: a job mutex held (by defer) across a checkpoint write, a
// registry lock nested over a job lock, and the sanctioned non-blocking
// idioms — try-send under lock (par.Pool.Submit's shape), close under
// lock, unlock-before-wait (Shutdown's shape).
package fixture

import (
	"os"
	"sync"
	"time"
)

type job struct {
	mu    sync.Mutex
	state string
	done  chan struct{}
}

// writeState is the checkpoint helper: blocking I/O two hops away from
// the lock site, visible only through the interprocedural summary.
func writeState(path, state string) error {
	return os.WriteFile(path, []byte(state), 0o644)
}

// drainBad mirrors the bug shape: the deferred unlock holds j.mu to the
// end of the function, so the checkpoint write happens inside the
// critical section.
func (j *job) drainBad(path string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = "draining"
	return writeState(path, j.state) // want `call to .*writeState \[may I/O\] while j\.mu is held`
}

// drainGood snapshots under the lock and writes outside it.
func (j *job) drainGood(path string) error {
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	return writeState(path, state)
}

type registry struct {
	mu   sync.Mutex
	jobs map[string]*job
}

// nested acquires a job lock while holding the registry lock — the
// deadlock-ordering hazard.
func (r *registry) nested(id string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	j := r.jobs[id]
	j.mu.Lock() // want `\(\*sync\.Mutex\)\.Lock \[lock\] while r\.mu is held`
	state := j.state
	j.mu.Unlock()
	return state
}

// trySend is par.Pool.Submit's shape: a select with a default cannot
// block, so it is legal under the lock.
func (j *job) trySend(ch chan string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	select {
	case ch <- j.state:
		return true
	default:
		return false
	}
}

// waitUnderLock parks on a channel inside the critical section.
func (j *job) waitUnderLock() {
	j.mu.Lock()
	defer j.mu.Unlock()
	<-j.done // want `channel receive while j\.mu is held`
}

// send is an unbuffered-send-under-lock: blocks until a receiver shows up.
func (j *job) send(ch chan string) {
	j.mu.Lock()
	ch <- j.state // want `channel send while j\.mu is held`
	j.mu.Unlock()
}

// closeDone is legal: close never blocks.
func (j *job) closeDone() {
	j.mu.Lock()
	defer j.mu.Unlock()
	close(j.done)
}

// sleepy blocks directly on the stdlib table.
func (j *job) sleepy() {
	j.mu.Lock()
	defer j.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep \[sleep\] while j\.mu is held`
}

// shutdown is serve.Shutdown's shape: release first, then wait — legal.
func (j *job) shutdown() {
	j.mu.Lock()
	j.state = "closed"
	j.mu.Unlock()
	<-j.done
}
