// Package lockheld forbids blocking while a sync.Mutex or sync.RWMutex is
// held: no channel operation, sleep, unbounded wait, file/network I/O, or
// acquisition of a second lock inside a critical section. This is the
// deadlock-and-stall shape the serve drain path is most exposed to — a
// worker that blocks on I/O while holding a job's mutex stalls every
// status poll, and two goroutines acquiring two mutexes in opposite order
// deadlock outright. Critical sections in this repo are meant to be
// pointer-swap short; anything slower belongs outside the lock.
//
// Lock regions are tracked intra-procedurally per receiver expression
// ("s.mu", "j.mu"): a region opens at mu.Lock()/RLock() and closes at the
// matching mu.Unlock()/RUnlock() in the same statement sequence; a
// deferred unlock holds the region open to the end of the function. What
// a call inside a region may do comes from the callgraph fact store, so a
// blocking operation three calls and two packages away is still caught.
// Branches are walked with a copy of the held set (a lock taken or
// released inside an if does not leak into the fall-through), and `go`
// statement bodies are skipped — the spawned goroutine does not hold the
// caller's locks.
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// Analyzer flags blocking operations inside mutex critical sections.
var Analyzer = &analysis.Analyzer{
	Name:       "lockheld",
	Doc:        "flags blocking ops (chan op, sleep, wait, I/O, nested Lock) while a sync.Mutex/RWMutex is held; a blocked critical section stalls every contender and nested acquisition risks deadlock",
	Run:        run,
	NeedsFacts: true,
}

// heldLock is one open critical section: the receiver expression the lock
// was taken on and where.
type heldLock struct {
	recv string
	pos  token.Pos
}

type checker struct {
	pass    *analysis.Pass
	bounded map[string]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, bounded: make(map[string]bool, len(callgraph.DefaultBounded))}
	for _, k := range callgraph.DefaultBounded {
		c.bounded[k] = true
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				c.walkStmts(decl.Body.List, nil)
			}
		}
	}
	return nil
}

// lockOp classifies a statement-level call as a lock acquisition or
// release on a receiver expression.
type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

func lockOp(info *types.Info, e ast.Expr) (string, lockKind) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", lockNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", lockNone
	}
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		return types.ExprString(sel.X), lockAcquire
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		return types.ExprString(sel.X), lockRelease
	}
	return "", lockNone
}

// walkStmts threads the held set through a statement sequence. The slice
// is mutated in place for straight-line flow; branches get copies.
func (c *checker) walkStmts(list []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range list {
		held = c.walkStmt(s, held)
	}
	return held
}

func copyHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

func (c *checker) walkStmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if recv, kind := lockOp(c.pass.TypesInfo, s.X); kind != lockNone {
			if kind == lockAcquire {
				// Taking a second lock inside a critical section is itself
				// a blocking op (and a deadlock risk); checkExpr flags it.
				c.checkExpr(s.X, held)
				return append(held, heldLock{recv: recv, pos: s.Pos()})
			}
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].recv == recv {
					return append(copyHeld(held[:i]), held[i+1:]...)
				}
			}
			return held
		}
		c.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the region open to function end — held
		// stays as is. Other deferred calls run at return; only their
		// argument expressions evaluate here.
		for _, a := range s.Call.Args {
			c.checkExpr(a, held)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			c.checkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkExpr(e, held)
		}
	case *ast.IncDecStmt:
		c.checkExpr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.checkExpr(e, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			c.flag(s.Arrow, "channel send", held)
		}
		c.checkExpr(s.Chan, held)
		c.checkExpr(s.Value, held)
	case *ast.GoStmt:
		// The new goroutine does not hold the caller's locks; only the
		// argument expressions evaluate under them.
		for _, a := range s.Call.Args {
			c.checkExpr(a, held)
		}
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, held)
	case *ast.BlockStmt:
		return c.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		c.checkExpr(s.Cond, held)
		c.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			c.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, held)
		}
		body := copyHeld(held)
		body = c.walkStmts(s.Body.List, body)
		if s.Post != nil {
			c.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		if tv, ok := c.pass.TypesInfo.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && len(held) > 0 {
				c.flag(s.For, "range over channel", held)
			}
		}
		c.checkExpr(s.X, held)
		c.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					c.checkExpr(e, held)
				}
				c.walkStmts(cl.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cl.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !hasDefault(s) {
			c.flag(s.Select, "select without default", held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				c.walkStmts(cl.Body, copyHeld(held))
			}
		}
	}
	return held
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// checkExpr flags blocking operations inside an expression evaluated with
// locks held: direct blocking calls (stdlib table, nested Lock), channel
// receives, and calls whose interprocedural summary says they may block.
func (c *checker) checkExpr(e ast.Expr, held []heldLock) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // defined here, not necessarily run here
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.flag(n.OpPos, "channel receive", held)
			}
		case *ast.CallExpr:
			cls, what, callee := callgraph.ClassifyCall(c.pass.TypesInfo, n, c.bounded)
			switch {
			case cls != 0:
				c.flag(n.Pos(), what+" ["+cls.String()+"]", held)
			case callee != "":
				if c.pass.Facts == nil {
					return true
				}
				var fact callgraph.FuncFact
				if c.pass.Facts.ObjectFact(callee, &fact) && fact.MayBlock != 0 {
					c.flag(n.Pos(), "call to "+callee+" [may "+fact.MayBlock.String()+"]", held)
				}
			}
		}
		return true
	})
}

// flag reports one blocking op under the earliest-held lock.
func (c *checker) flag(pos token.Pos, what string, held []heldLock) {
	h := held[0]
	line := c.pass.Fset.Position(h.pos).Line
	c.pass.Reportf(pos, "%s while %s is held (locked at line %d); blocking inside a critical section stalls every contender — move it outside the lock",
		what, h.recv, line)
}
