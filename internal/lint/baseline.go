package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baseline grandfathers known findings so kvet can gate on new ones only.
// Entries match by analyzer, module-relative file and message — not line
// numbers, which shift with every edit — and carry a count, so N
// grandfathered instances of an identical finding tolerate exactly N
// occurrences; the N+1st is new and reported.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one grandfathered finding class.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

func baselineKey(analyzer, relFile, message string) string {
	return analyzer + "\x00" + relFile + "\x00" + message
}

// relTo renders file relative to root with forward slashes, falling back
// to the input when it is not under root.
func relTo(root, file string) string {
	rel, err := filepath.Rel(root, file)
	if err != nil || rel == ".." || filepath.IsAbs(rel) || len(rel) > 1 && rel[:3] == ".."+string(filepath.Separator) {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}

// WriteBaseline snapshots findings into path, relativized against root.
func WriteBaseline(path, root string, findings []Finding) error {
	counts := make(map[string]int)
	for _, f := range findings {
		counts[baselineKey(f.Analyzer, relTo(root, f.File), f.Message)]++
	}
	bl := Baseline{}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var e BaselineEntry
		parts := splitBaselineKey(k)
		e.Analyzer, e.File, e.Message, e.Count = parts[0], parts[1], parts[2], counts[k]
		bl.Findings = append(bl.Findings, e)
	}
	data, err := json.MarshalIndent(&bl, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func splitBaselineKey(k string) [3]string {
	var out [3]string
	idx := 0
	start := 0
	for i := 0; i < len(k) && idx < 2; i++ {
		if k[i] == '\x00' {
			out[idx] = k[start:i]
			idx++
			start = i + 1
		}
	}
	out[2] = k[start:]
	return out
}

// LoadBaseline reads a baseline written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bl Baseline
	if err := json.Unmarshal(data, &bl); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	return &bl, nil
}

// ApplyBaseline removes findings the baseline grandfathers and returns
// the survivors plus the number suppressed. Matching consumes counts, so
// a finding class that grew beyond its grandfathered count surfaces the
// excess.
func ApplyBaseline(bl *Baseline, root string, findings []Finding) (kept []Finding, grandfathered int) {
	budget := make(map[string]int, len(bl.Findings))
	for _, e := range bl.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[baselineKey(e.Analyzer, e.File, e.Message)] += n
	}
	for _, f := range findings {
		k := baselineKey(f.Analyzer, relTo(root, f.File), f.Message)
		if budget[k] > 0 {
			budget[k]--
			grandfathered++
			continue
		}
		kept = append(kept, f)
	}
	return kept, grandfathered
}

// StaleBaseline reports the baseline entries (with counts) that exceed the
// current findings: grandfather budget nothing consumes. A stale entry
// means the underlying finding was fixed, so the baseline should shrink —
// left in place it would silently absorb the next regression of the same
// class.
func StaleBaseline(bl *Baseline, root string, findings []Finding) []BaselineEntry {
	counts := make(map[string]int)
	for _, f := range findings {
		counts[baselineKey(f.Analyzer, relTo(root, f.File), f.Message)]++
	}
	var stale []BaselineEntry
	for _, e := range bl.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		k := baselineKey(e.Analyzer, e.File, e.Message)
		if left := n - counts[k]; left > 0 {
			s := e
			s.Count = left
			stale = append(stale, s)
		}
		counts[k] -= n // consume across duplicate entries of one class
	}
	return stale
}
