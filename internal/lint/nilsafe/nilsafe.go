// Package nilsafe enforces the obsv handle contract: every exported
// method with a pointer receiver must begin with a nil-receiver guard
// (`if x == nil { ... }`), because instrumented code calls handles
// unconditionally and a nil handle is the documented "observability off"
// state. A method that merely delegates to another method of the same
// receiver (e.g. Inc calling Add) is accepted — the guard lives in the
// callee.
package nilsafe

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// Analyzer verifies nil-receiver guards on exported pointer-receiver
// methods.
var Analyzer = &analysis.Analyzer{
	Name: "nilsafe",
	Doc:  "verifies every exported pointer-receiver method starts with a nil-receiver guard (the obsv nil-handle no-op contract)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			recv := fd.Recv.List[0]
			if _, ok := recv.Type.(*ast.StarExpr); !ok {
				continue // value receiver: nil cannot reach it
			}
			if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
				continue // receiver unused: trivially nil-safe
			}
			if len(fd.Body.List) == 0 {
				continue
			}
			name := recv.Names[0].Name
			if startsWithNilGuard(fd.Body.List[0], name) || delegates(fd.Body.List[0], name) {
				continue
			}
			pass.Reportf(fd.Name.Pos(), "exported method (%s) %s lacks a leading nil-receiver guard; handles must be no-ops when nil", typeName(recv.Type), fd.Name.Name)
		}
	}
	return nil
}

// startsWithNilGuard matches `if recv == nil { ... }` as the first
// statement, including conditions that or-combine further checks
// (`recv == nil || n < 0`).
func startsWithNilGuard(stmt ast.Stmt, recv string) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	return condHasNilCheck(ifs.Cond, recv)
}

func condHasNilCheck(e ast.Expr, recv string) bool {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "||":
			return condHasNilCheck(e.X, recv) || condHasNilCheck(e.Y, recv)
		case "==":
			return isIdent(e.X, recv) && isIdent(e.Y, "nil") ||
				isIdent(e.X, "nil") && isIdent(e.Y, recv)
		}
	case *ast.ParenExpr:
		return condHasNilCheck(e.X, recv)
	}
	return false
}

// delegates matches a body consisting solely of a call (or return of a
// call) on the receiver, which inherits the callee's guard.
func delegates(stmt ast.Stmt, recv string) bool {
	var call ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call = s.X
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		call = s.Results[0]
	default:
		return false
	}
	ce, ok := call.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ce.Fun.(*ast.SelectorExpr)
	return ok && isIdent(sel.X, recv)
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func typeName(e ast.Expr) string {
	if st, ok := e.(*ast.StarExpr); ok {
		if id, ok := st.X.(*ast.Ident); ok {
			return "*" + id.Name
		}
	}
	return "?"
}
