package nilsafe_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/nilsafe"
)

func TestNilsafe(t *testing.T) {
	analysistest.Run(t, "testdata/fixture", nilsafe.Analyzer)
}
