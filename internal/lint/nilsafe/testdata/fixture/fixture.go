// Package fixture exercises the nilsafe analyzer: exported
// pointer-receiver methods without a leading nil guard are flagged;
// guarded methods, delegating methods, value receivers and unexported
// methods are not.
package fixture

// Handle mimics an obsv metric handle.
type Handle struct {
	n int64
}

// Add is properly guarded: allowed.
func (h *Handle) Add(n int64) {
	if h == nil {
		return
	}
	h.n += n
}

// AddGuardOr combines the nil check with a validity check: allowed.
func (h *Handle) AddGuardOr(n int64) {
	if h == nil || n < 0 {
		return
	}
	h.n += n
}

// Inc delegates to a guarded method: allowed.
func (h *Handle) Inc() { h.Add(1) }

// Value delegates via return: allowed.
func (h *Handle) Value() int64 { return h.load() }

// Unguarded dereferences a possibly-nil receiver: flagged.
func (h *Handle) Unguarded() int64 { // want `nil-receiver guard`
	return h.n
}

// WrongOrder checks something else first: flagged.
func (h *Handle) WrongOrder(n int64) { // want `nil-receiver guard`
	if n < 0 {
		return
	}
	if h == nil {
		return
	}
	h.n += n
}

// load is unexported: internal callers own the guard discipline.
func (h *Handle) load() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// View has a value receiver, which a nil pointer cannot reach: allowed.
type View struct{ v int64 }

// Get has a value receiver: allowed.
func (v View) Get() int64 { return v.v }

// Suppressed documents a deliberate exception: not reported.
//
//lint:ignore nilsafe fixture exercises the suppression path
func (h *Handle) Suppressed() int64 {
	return h.n
}
