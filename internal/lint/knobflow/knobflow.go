// Package knobflow checks the knob-plumbing contract: every algorithmic
// field of the placement Config must reach each of its user surfaces — a
// command-line flag in the flags binary, a JSON field in the HTTP request
// struct, the config hash — and must actually be read by the engine.
// Enum-typed knobs additionally need a total parse/print round-trip
// (Parse(c.String()) == c for every constant, Parse("") accepting the
// zero value) and a complete facade re-export (type alias, constants,
// parser). Request-struct fields nothing reads are flagged as orphans the
// API accepts and silently ignores.
//
// All schema data comes from the registry fact (see
// internal/lint/registry); the analyzer itself only compares and anchors.
// Each surface check is gated on that surface's package being among the
// loaded targets, so a partial run never manufactures missing-surface
// findings. Hook-typed knobs (functions, pointers, interfaces) are
// library-only by construction and exempt from plumbing; deliberate
// exceptions carry a reasoned //lint:ignore knobflow on the field.
package knobflow

import (
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/registry"
)

// Analyzer checks knob plumbing against the extracted registry.
var Analyzer = &analysis.Analyzer{
	Name:          "knobflow",
	Doc:           "checks every Config knob reaches its surfaces (CLI flag, request JSON field, config hash, an engine read) and every enum knob round-trips Parse/String and is re-exported by the facade",
	Run:           run,
	NeedsRegistry: true,
}

func run(pass *analysis.Pass) error {
	if pass.Facts == nil {
		return nil
	}
	var fact registry.Fact
	if !pass.Facts.ObjectFact(registry.GlobalKey, &fact) {
		return nil
	}
	// The registry is global but passes are per package: every finding is
	// anchored at the declaration that must change, and reported only in
	// the pass for the package owning that declaration.
	here := pass.Pkg.Path()

	for _, k := range fact.Knobs {
		if k.Kind == "hook" || k.OwnerPkg != here {
			continue
		}
		if fact.Seen[fact.FlagsPkg] && len(k.Flags) == 0 {
			pass.Reportf(k.Pos, "knob %s has no command-line flag: no flag registration in %s flows into it", k.Path, fact.FlagsPkg)
		}
		if fact.Seen[fact.SubmitPkg] && len(k.JSONs) == 0 {
			pass.Reportf(k.Pos, "knob %s has no HTTP surface: no request field in %s flows into it", k.Path, fact.SubmitPkg)
		}
		if fact.HashPos.IsValid() && !k.InHash {
			pass.Reportf(k.Pos, "knob %s is not covered by the config hash (%s): two runs differing only in it would collide as reuse candidates", k.Path, position(pass.Fset, fact.HashPos))
		}
		if !k.Read {
			pass.Reportf(k.Pos, "knob %s is never read outside the hash: dead knob — wire it into the engine or delete it", k.Path)
		}
	}

	for _, e := range fact.Enums {
		if e.Pkg != here {
			continue
		}
		checkEnum(pass, &fact, e)
	}

	for _, f := range fact.Submit {
		if f.Pkg != here || f.Used {
			continue
		}
		pass.Reportf(f.Pos, "request field %s (json %q) is decoded but never read: the API accepts and silently ignores it", f.Name, f.JSON)
	}
	return nil
}

// checkEnum verifies one enum knob type's parse/print round-trip and its
// facade re-export.
func checkEnum(pass *analysis.Pass, fact *registry.Fact, e registry.Enum) {
	typeName := e.TypeKey[strings.LastIndex(e.TypeKey, ".")+1:]

	if !e.HasString {
		pass.Reportf(e.Pos, "enum %s has no String method: its value cannot be rendered in logs or traces", typeName)
	}
	if e.ParseName == "" {
		pass.Reportf(e.Pos, "enum %s has no parser func(string) (%s, bool): user surfaces cannot accept it by name", typeName, typeName)
		return
	}
	if !e.ParseOpaque && !e.ParseZeroEmpty {
		pass.Reportf(e.ParsePos, "%s does not accept \"\" as the zero value: an unset flag or JSON field must parse to the default, not fail", e.ParseName)
	}
	if e.HasString && !e.StringOpaque && !e.ParseOpaque {
		for _, c := range consts(e) {
			tag, ok := e.StringMap[c.Name]
			if !ok {
				pass.Reportf(c.Pos, "enum constant %s is not printed by %s.String: its value is unnameable in output", c.Name, typeName)
				continue
			}
			if got, ok := e.ParseMap[tag]; !ok {
				pass.Reportf(e.ParsePos, "%s does not accept %q, the String form of %s: the round-trip Parse(c.String()) == c is broken", e.ParseName, tag, c.Name)
			} else if got != c.Name {
				pass.Reportf(e.ParsePos, "%s maps %q to %s but %s.String prints it for %s: the round-trip is broken", e.ParseName, tag, got, typeName, c.Name)
			}
		}
	}

	if fact.FacadePkg != "" && fact.Seen[fact.FacadePkg] {
		if !e.FacadeAliased {
			pass.Reportf(e.Pos, "enum %s is not re-exported by %s: facade users cannot name the type", typeName, fact.FacadePkg)
		}
		if e.FacadeConstValues != nil {
			var missing []string
			for _, c := range consts(e) {
				if !e.FacadeConstValues[c.Value] {
					missing = append(missing, c.Name)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(e.Pos, "enum %s constants %s have no re-export in %s", typeName, strings.Join(missing, ", "), fact.FacadePkg)
			}
		}
		if !e.FacadeParse {
			pass.Reportf(e.Pos, "enum %s has no parse wrapper in %s: facade users must import the internal package to parse it", typeName, fact.FacadePkg)
		}
	}
}

// consts returns the enum's constants sorted by name for deterministic
// report order.
func consts(e registry.Enum) []registry.EnumConst {
	out := append([]registry.EnumConst(nil), e.Consts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// position renders a cross-package witness position.
func position(fset *token.FileSet, pos token.Pos) string {
	return fset.Position(pos).String()
}
