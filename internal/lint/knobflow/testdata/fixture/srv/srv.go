// Package srv is the fixture's HTTP surface: every knob except Quiet
// (the injected JSON drift) has a request field, and Legacy is the orphan
// the API decodes but never reads.
package srv

import "repro/internal/lint/knobflow/testdata/fixture/engine"

// Req mirrors the engine knobs onto the wire.
type Req struct {
	K      float64 `json:"k"`
	Bins   int     `json:"bins"`
	Skew   float64 `json:"skew"`
	Dead   int     `json:"dead"`
	Mode   string  `json:"mode"`
	Dir    string  `json:"dir"`
	Legacy bool    `json:"legacy"` // want `request field Legacy \(json "legacy"\) is decoded but never read`
}

// Handle wires a request into a Config.
func Handle(r Req) float64 {
	m, _ := engine.ParseMode(r.Mode)
	d, _ := engine.ParseDir(r.Dir)
	cfg := engine.Config{
		K:    r.K,
		Bins: r.Bins,
		Skew: r.Skew,
		Dead: r.Dead,
		Mode: m,
		Dir:  d,
	}
	return engine.Run(&cfg)
}
