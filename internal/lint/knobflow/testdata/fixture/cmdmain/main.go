// Command cmdmain is the fixture's flag surface: every knob except Bins
// (the injected flag drift) is registered and wired into the Config.
package main

import (
	"flag"

	"repro/internal/lint/knobflow/testdata/fixture/engine"
)

var (
	k     = flag.Float64("k", 1, "attraction weight")
	skew  = flag.Float64("skew", 0, "skew factor")
	quiet = flag.Bool("quiet", false, "suppress output")
	dead  = flag.Int("dead", 0, "unused knob")
	mode  = flag.String("mode", "fast", "algorithm mode")
	dir   = flag.String("dir", "x", "solve direction")
)

func main() {
	flag.Parse()
	m, _ := engine.ParseMode(*mode)
	d, _ := engine.ParseDir(*dir)
	cfg := engine.Config{
		K:     *k,
		Skew:  *skew,
		Quiet: *quiet,
		Dead:  *dead,
		Mode:  m,
		Dir:   d,
	}
	engine.Run(&cfg)
}
