// Package engine is the knobflow fixture's miniature placement engine:
// a Config struct with one injected drift per plumbing surface, plus two
// enum knobs — Mode with a clean parse/print/facade round-trip and Dir
// with a broken parser and no facade re-export.
package engine

// Mode selects the fixture's algorithm variant. Fully plumbed: String and
// Parse round-trip every constant, "" parses to the zero value, and the
// facade package re-exports the type, constants and parser.
type Mode int

const (
	ModeFast Mode = iota
	ModeExact
)

func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	default:
		return "fast"
	}
}

// ParseMode maps the wire names back to constants; "" is the default.
func ParseMode(s string) (Mode, bool) {
	switch s {
	case "fast", "":
		return ModeFast, true
	case "exact":
		return ModeExact, true
	default:
		return ModeFast, false
	}
}

// Dir is the drifted enum: ParseDir rejects "" and never accepts "both",
// and the facade re-exports nothing of it.
type Dir int // want `enum Dir is not re-exported` `constants DirBoth, DirX, DirY have no re-export` `enum Dir has no parse wrapper`

const (
	DirX Dir = iota
	DirY
	DirBoth
)

func (d Dir) String() string {
	switch d {
	case DirX:
		return "x"
	case DirY:
		return "y"
	default:
		return "both"
	}
}

// ParseDir drifted from String: DirBoth's printed form is unparseable and
// the zero value must be spelled out.
func ParseDir(s string) (Dir, bool) { // want `ParseDir does not accept "" as the zero value` `ParseDir does not accept "both", the String form of DirBoth`
	switch s {
	case "x":
		return DirX, true
	case "y":
		return DirY, true
	default:
		return DirX, false
	}
}

// Config carries the fixture knobs, one drift each.
type Config struct {
	// K is fully plumbed: flag, JSON, hash, read.
	K float64
	// Bins misses its command-line flag.
	Bins int // want `knob Bins has no command-line flag`
	// Skew is plumbed everywhere but left out of Hash.
	Skew float64 // want `knob Skew is not covered by the config hash`
	// Quiet misses its JSON field.
	Quiet bool // want `knob Quiet has no HTTP surface`
	// Dead is plumbed and hashed but nothing ever reads it.
	Dead int // want `knob Dead is never read outside the hash`
	// Mode and Dir are the enum knobs.
	Mode Mode
	Dir  Dir
	// OnStep is a hook: exempt from plumbing.
	OnStep func(int)
}

// Hash folds the algorithmic knobs; Skew is the injected omission.
func (c *Config) Hash() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(c.K))
	mix(uint64(c.Bins))
	if c.Quiet {
		mix(1)
	}
	mix(uint64(c.Dead))
	mix(uint64(c.Mode))
	mix(uint64(c.Dir))
	return h
}

// Run reads every live knob (everything except Dead).
func Run(c *Config) float64 {
	out := c.K * float64(c.Bins)
	out += c.Skew
	if c.Quiet {
		out = -out
	}
	if c.Mode == ModeExact {
		out *= 2
	}
	if c.Dir == DirBoth {
		out *= 3
	}
	if c.OnStep != nil {
		c.OnStep(int(out))
	}
	return out
}
