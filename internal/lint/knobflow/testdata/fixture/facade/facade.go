// Package facade re-exports the engine's public vocabulary — completely
// for Mode, not at all for Dir (the injected facade drift).
package facade

import "repro/internal/lint/knobflow/testdata/fixture/engine"

// Mode re-exports the engine's mode enum.
type Mode = engine.Mode

// Re-exported mode constants.
const (
	ModeFast  = engine.ModeFast
	ModeExact = engine.ModeExact
)

// ParseMode re-exports the mode parser.
func ParseMode(s string) (Mode, bool) { return engine.ParseMode(s) }
