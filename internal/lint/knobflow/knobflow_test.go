package knobflow_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/knobflow"
	"repro/internal/lint/registry"
)

// TestFixture proves one finding per injected drift: a knob without a
// flag (Bins), without a JSON field (Quiet), outside the hash (Skew),
// never read (Dead), an orphaned request field (Legacy), a parser that
// rejects the zero value and breaks the String round-trip (ParseDir), and
// an enum with no facade re-export (Dir) — while the fully plumbed K and
// Mode stay silent.
func TestFixture(t *testing.T) {
	const root = "repro/internal/lint/knobflow/testdata/fixture"
	analysistest.RunWithRegistry(t, "testdata/fixture", knobflow.Analyzer, registry.Config{
		ConfigStruct: root + "/engine.Config",
		HashMethod:   "Hash",
		FlagsPkg:     root + "/cmdmain",
		SubmitStruct: root + "/srv.Req",
		FacadePkg:    root + "/facade",
	})
}
