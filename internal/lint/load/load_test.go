package load

import (
	"testing"
	"time"
)

// TestLoadMemoized proves a second Load of the same (dir, tags, patterns)
// returns the cached result — same packages, no second go list — by
// pointer identity and by wall time (a real load shells out to the go
// command; a cache hit is a map lookup).
func TestLoadMemoized(t *testing.T) {
	cfg := Config{Dir: "../testdata/stale"}
	first, err := Load(cfg, ".")
	if err != nil {
		t.Fatalf("first load: %v", err)
	}
	start := time.Now()
	second, err := Load(cfg, ".")
	hit := time.Since(start)
	if err != nil {
		t.Fatalf("second load: %v", err)
	}
	if len(first) != len(second) {
		t.Fatalf("cache returned %d packages, first load %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("package %d not shared: cache must return the memoized slice", i)
		}
	}
	// A go list + typecheck takes tens of milliseconds at minimum; a map
	// lookup is microseconds. The generous bound keeps the assertion
	// meaningful without flaking on slow machines.
	if hit > 50*time.Millisecond {
		t.Errorf("cache hit took %v; looks like a full reload", hit)
	}
}

// TestLoadDistinctKeys proves different patterns are cached separately.
func TestLoadDistinctKeys(t *testing.T) {
	cfg := Config{Dir: "../testdata"}
	stale, err := Load(cfg, "./stale")
	if err != nil {
		t.Fatalf("loading stale: %v", err)
	}
	v3, err := Load(cfg, "./stalev3")
	if err != nil {
		t.Fatalf("loading stalev3: %v", err)
	}
	if stale[0].ImportPath == v3[0].ImportPath {
		t.Errorf("distinct patterns returned the same package %q", stale[0].ImportPath)
	}
}

// TestLoadDedupsOverlappingPatterns proves a package matched by several
// patterns of one call is type-checked and returned once.
func TestLoadDedupsOverlappingPatterns(t *testing.T) {
	pkgs, err := Load(Config{Dir: "../testdata/stale"}, ".", "./...")
	if err != nil {
		t.Fatalf("loading with overlapping patterns: %v", err)
	}
	seen := make(map[string]int)
	for _, p := range pkgs {
		seen[p.ImportPath]++
	}
	for path, n := range seen {
		if n > 1 {
			t.Errorf("package %s returned %d times; overlapping patterns must dedup", path, n)
		}
	}
}
