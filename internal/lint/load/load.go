// Package load turns package patterns into type-checked syntax trees using
// only the standard library and the go command. `go list -export` compiles
// the transitive dependencies of the requested patterns and reports the
// export-data file of each one (entirely from the local build cache — no
// network); the gc importer then resolves imports through those files while
// the target packages themselves are parsed and type-checked from source,
// comments included, ready for analysis passes.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	// Files holds the parsed non-test Go files of the package, with
	// comments, in go list order.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry mirrors the go list -json fields we consume.
type listEntry struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Config adjusts a Load call.
type Config struct {
	// Dir is the working directory for the go command (the module root in
	// normal use). Empty means the current directory.
	Dir string
	// BuildTags is passed to go list as -tags and therefore selects which
	// build-constrained files are listed, compiled and analyzed.
	BuildTags string
}

// cache memoizes Load results for the process lifetime, keyed by the
// resolved working directory, build tags and patterns. One kvet
// invocation (or one test binary) then pays the go list + parse +
// typecheck cost once per distinct pattern set, no matter how many
// analyzers or subtests ask for the same packages. Results are shared,
// not copied: callers must treat the returned packages as read-only,
// which every analysis pass already does.
var cache struct {
	mu sync.Mutex
	m  map[string][]*Package
}

func cacheKey(cfg Config, patterns []string) string {
	dir := cfg.Dir
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	return dir + "\x00" + cfg.BuildTags + "\x00" + strings.Join(patterns, "\x00")
}

// Load lists, parses and type-checks the packages matching patterns. Only
// packages named by the patterns are returned; dependencies are consumed
// as compiled export data. Returns an error on the first package that
// fails to list, parse or type-check — an analyzer run on a broken tree
// would report nonsense. Successful results are memoized per (dir, tags,
// patterns) for the process lifetime; see cache.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	key := cacheKey(cfg, patterns)
	cache.mu.Lock()
	cached, ok := cache.m[key]
	cache.mu.Unlock()
	if ok {
		return cached, nil
	}
	pkgs, err := load(cfg, patterns)
	if err != nil {
		return nil, err
	}
	cache.mu.Lock()
	if cache.m == nil {
		cache.m = make(map[string][]*Package)
	}
	cache.m[key] = pkgs
	cache.mu.Unlock()
	return pkgs, nil
}

// load is the uncached Load body.
func load(cfg Config, patterns []string) ([]*Package, error) {
	args := []string{"list", "-export", "-json=Dir,ImportPath,Export,GoFiles,DepOnly,Incomplete,Error", "-deps"}
	if cfg.BuildTags != "" {
		args = append(args, "-tags", cfg.BuildTags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listEntry
	seen := make(map[string]bool)
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if e.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", e.ImportPath, e.Error.Err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		// Overlapping patterns ("./...", "./internal/...") list the same
		// package more than once; type-check each import path only once
		// so downstream passes never see duplicate packages.
		if !e.DepOnly && len(e.GoFiles) > 0 && !seen[e.ImportPath] {
			seen[e.ImportPath] = true
			targets = append(targets, e)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		p, err := checkOne(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// checkOne parses and type-checks one listed package.
func checkOne(fset *token.FileSet, imp types.Importer, e listEntry) (*Package, error) {
	files := make([]*ast.File, 0, len(e.GoFiles))
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", e.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(e.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", e.ImportPath, err)
	}
	return &Package{
		ImportPath: e.ImportPath,
		Dir:        e.Dir,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}, nil
}
