// Package floatcmp flags == and != between floating-point (and complex)
// operands. FFT-accelerated density solves accumulate rounding error by
// design, so exact float equality is almost always a latent bug in this
// codebase. Two idioms stay exempt: comparison against an exact constant
// zero (the ubiquitous division/empty guard, where 0 is a sentinel rather
// than a computed value) and the x != x NaN probe. Deliberate bit-exact
// comparisons — the hot-path equivalence oracles — carry a
// //lint:ignore floatcmp with the reason.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer flags exact floating-point equality comparisons.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= between floats outside epsilon helpers; exact comparison of computed floats is a latent bug",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
				return true
			}
			// x != x / x == x: the NaN probe, exact by definition.
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true
			}
			// Comparison against a constant zero: a sentinel guard
			// ("weight unset", "avoid dividing"), not a numeric test.
			if isZeroConst(pass, be.X) || isZeroConst(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "exact float comparison (%s): computed floats carry rounding error; compare with an epsilon or suppress with a reason", be.Op)
			return true
		})
	}
	return nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isZeroConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float, constant.Complex:
		return constant.Sign(constant.Real(tv.Value)) == 0 &&
			constant.Sign(constant.Imag(tv.Value)) == 0
	}
	return false
}
