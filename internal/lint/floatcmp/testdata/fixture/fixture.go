// Package fixture exercises the floatcmp analyzer: exact float equality
// is flagged; zero-sentinel guards, NaN probes and integer comparisons
// are not.
package fixture

// exactEqual compares computed floats exactly: flagged.
func exactEqual(a, b float64) bool {
	return a == b // want `exact float comparison`
}

// exactNot compares computed floats exactly: flagged.
func exactNot(a, b float32) bool {
	return a != b // want `exact float comparison`
}

// mixedConst compares against a non-zero constant: flagged.
func mixedConst(a float64) bool {
	return a == 0.5 // want `exact float comparison`
}

// complexEqual compares complex values exactly: flagged.
func complexEqual(a, b complex128) bool {
	return a == b // want `exact float comparison`
}

// zeroGuard uses zero as a sentinel before dividing: allowed.
func zeroGuard(w float64) float64 {
	if w == 0 {
		return 0
	}
	return 1 / w
}

// nanProbe is the canonical NaN test: allowed.
func nanProbe(x float64) bool {
	return x != x
}

// intCompare is exact by nature: allowed.
func intCompare(a, b int) bool {
	return a == b
}

// suppressed documents a deliberate bit-exact oracle: not reported.
func suppressed(a, b float64) bool {
	//lint:ignore floatcmp fixture exercises the suppression path
	return a == b
}
