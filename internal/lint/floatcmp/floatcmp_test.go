package floatcmp_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, "testdata/fixture", floatcmp.Analyzer)
}
