// Package sharecap flags closure-capture race candidates: variables
// captured by a closure handed to another goroutine — `go func(){...}()`,
// par.Run worker bodies, par.Pool.Submit tasks — written inside the
// closure and accessed outside without synchronization. It is the static
// complement to the race detector for the schedules tests never run.
//
// Two spawn shapes, two rules:
//
//   - par.Run runs N instances of the same closure concurrently, so any
//     captured write is a worker-vs-worker race unless it is indexed by a
//     closure-local variable (the deposit-list idiom: each worker writes
//     only its own slice slots, y[i] with i ranging over the worker's
//     [lo,hi) chunk) or bracketed by a mutex. par.Run itself joins before
//     returning, so reads after the call are safe and out of scope.
//
//   - `go` and Pool.Submit escape the enclosing function's lifetime, so a
//     captured write races with any enclosing access after the spawn
//     unless an await (channel receive, select, WaitGroup.Wait, pool
//     drain) intervenes or both sides hold a common lock class.
//
// The lock reasoning is bracket-coarse (a class counts as held between any
// Lock before and any Unlock after the access) and classes coarsen
// instances, so findings are candidates, not proofs — the analyzer's job
// is to make each one either fixed or argued for in a //lint:ignore
// reason.
package sharecap

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// Analyzer flags captured-variable writes racing across goroutines.
var Analyzer = &analysis.Analyzer{
	Name: "sharecap",
	Doc:  "flags variables captured by go/par.Run/Pool.Submit closures that are written inside the closure and accessed outside (or by every worker) without a worker-local index, an await, or a common lock; racy on schedules the tests never run",
	Run:  run,
}

const (
	parRun     = "repro/internal/par.Run"
	poolSubmit = "(*repro/internal/par.Pool).Submit"
)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				checkDecl(pass, decl)
			}
		}
	}
	return nil
}

type spawnKind int

const (
	multiInstance spawnKind = iota // par.Run: N concurrent instances, joined at return
	escaping                       // go / Pool.Submit: outlives the spawn point
)

type spawn struct {
	kind spawnKind
	pos  token.Pos // the go statement / call position
	lit  *ast.FuncLit
}

// write is one captured-variable store inside a spawn closure.
type write struct {
	obj        types.Object
	pos        token.Pos
	name       string
	indexLocal bool // element write indexed only by closure-local variables
	guards     []string
}

func checkDecl(pass *analysis.Pass, decl *ast.FuncDecl) {
	info := pass.TypesInfo
	scope := callgraph.FuncKey(info, decl)
	if scope == "" {
		return
	}
	var spawns []spawn
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				spawns = append(spawns, spawn{kind: escaping, pos: n.Go, lit: lit})
			}
		case *ast.CallExpr:
			switch callgraph.CalleeKey(info, n) {
			case parRun:
				if len(n.Args) > 0 {
					if lit, ok := n.Args[len(n.Args)-1].(*ast.FuncLit); ok {
						spawns = append(spawns, spawn{kind: multiInstance, pos: n.Pos(), lit: lit})
					}
				}
			case poolSubmit:
				if len(n.Args) == 1 {
					if lit, ok := n.Args[0].(*ast.FuncLit); ok {
						spawns = append(spawns, spawn{kind: escaping, pos: n.Pos(), lit: lit})
					}
				}
			}
		}
		return true
	})
	if len(spawns) == 0 {
		return
	}
	lits := make([]*ast.FuncLit, len(spawns))
	for i, s := range spawns {
		lits[i] = s.lit
	}
	outsideSpans := collectSpans(info, decl.Body, scope, lits, decl.End())
	awaits := collectAwaits(info, decl.Body, lits)

	for _, s := range spawns {
		litSpans := collectSpans(info, s.lit.Body, scope, nil, s.lit.End())
		writes := collectWrites(info, decl, s.lit, litSpans)
		switch s.kind {
		case multiInstance:
			for _, w := range writes {
				if w.indexLocal || len(w.guards) > 0 {
					continue
				}
				pass.Reportf(w.pos, "%s is captured and written by every par.Run worker without a worker-local index or a lock; use the deposit-list idiom (each worker writes only its own slots) or a mutex", w.name)
			}
		case escaping:
			reported := map[types.Object]bool{}
			for _, w := range writes {
				if reported[w.obj] {
					continue
				}
				acc := firstOutsideAccess(info, decl, lits, w.obj, s.pos)
				if acc == token.NoPos {
					continue
				}
				if awaitBetween(awaits, s.pos, acc) {
					continue
				}
				if commonGuard(w.guards, outsideSpans.guards(acc)) {
					continue
				}
				reported[w.obj] = true
				pass.Reportf(acc, "%s is accessed here while the goroutine spawned at line %d may still be writing it (no await or common lock in between); join the goroutine or guard both sides with one mutex", w.name, pass.Fset.Position(s.pos).Line)
			}
		}
	}
}

// collectWrites gathers captured-variable stores inside lit: assignment,
// op-assignment, ++/--, and range-assignment targets whose base variable
// is declared in the enclosing function before the closure.
func collectWrites(info *types.Info, decl *ast.FuncDecl, lit *ast.FuncLit, litSpans *spans) []write {
	var out []write
	mutated := mutatedObjs(info, lit)
	record := func(e ast.Expr) {
		e = ast.Unparen(e)
		indexLocal := false
		if ix, ok := e.(*ast.IndexExpr); ok {
			indexLocal = workerLocalIndex(info, ix.Index, lit, mutated)
		}
		id := baseIdent(e)
		if id == nil {
			return
		}
		obj := info.ObjectOf(id)
		if !capturedVar(obj, decl, lit) {
			return
		}
		out = append(out, write{
			obj: obj, pos: id.Pos(), name: id.Name,
			indexLocal: indexLocal,
			guards:     litSpans.guards(id.Pos()),
		})
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, l := range n.Lhs {
				record(l)
			}
		case *ast.IncDecStmt:
			record(n.X)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				record(n.Key)
				record(n.Value)
			}
		}
		return true
	})
	return out
}

// capturedVar reports whether obj is a non-field variable of the enclosing
// function declared before the closure — i.e. captured, not closure-local.
func capturedVar(obj types.Object, decl *ast.FuncDecl, lit *ast.FuncLit) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Name() == "_" {
		return false
	}
	return v.Pos() >= decl.Pos() && v.Pos() < lit.Pos()
}

// workerLocalIndex reports whether the index expression varies per worker:
// at least one referenced variable is declared inside lit (worker id, chunk
// counter) and every captured variable in it is read-only within the
// closure (a stride like `y*w+x` qualifies; a captured slot `xs[k]` with no
// worker-varying component does not).
func workerLocalIndex(info *types.Info, e ast.Expr, lit *ast.FuncLit, mutated map[types.Object]bool) bool {
	if e == nil {
		return false
	}
	anyLocal, ok := false, true
	ast.Inspect(e, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		if v, isVar := info.ObjectOf(id).(*types.Var); isVar && !v.IsField() {
			if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
				anyLocal = true
			} else if mutated[v] {
				ok = false
			}
		}
		return true
	})
	return anyLocal && ok
}

// mutatedObjs gathers the base variables stored to anywhere inside lit.
func mutatedObjs(info *types.Info, lit *ast.FuncLit) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(e ast.Expr) {
		if id := baseIdent(e); id != nil {
			if obj := info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, l := range n.Lhs {
				mark(l)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				mark(n.Key)
				mark(n.Value)
			}
		}
		return true
	})
	return out
}

// baseIdent peels index, selector, star and paren layers down to the root
// identifier of an assignable expression.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// firstOutsideAccess finds the first reference to obj after pos that is
// outside every spawn closure, or NoPos.
func firstOutsideAccess(info *types.Info, decl *ast.FuncDecl, lits []*ast.FuncLit, obj types.Object, pos token.Pos) token.Pos {
	first := token.NoPos
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		for _, lit := range lits {
			if n != nil && n.Pos() >= lit.Pos() && n.End() <= lit.End() {
				return false
			}
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= pos {
			return true
		}
		if info.ObjectOf(id) == obj && (first == token.NoPos || id.Pos() < first) {
			first = id.Pos()
		}
		return true
	})
	return first
}

// awaitBetween reports whether any await point falls strictly between the
// spawn and the access.
func awaitBetween(awaits []token.Pos, spawn, access token.Pos) bool {
	for _, a := range awaits {
		if a > spawn && a < access {
			return true
		}
	}
	return false
}

// collectAwaits gathers the happens-before points of the enclosing body,
// outside the spawn closures: channel receives (unary, range, select) and
// WaitGroup.Wait / pool-drain calls.
func collectAwaits(info *types.Info, body *ast.BlockStmt, lits []*ast.FuncLit) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		for _, lit := range lits {
			if n != nil && n.Pos() >= lit.Pos() && n.End() <= lit.End() {
				return false
			}
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				out = append(out, n.OpPos)
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					out = append(out, n.For)
				}
			}
		case *ast.SelectStmt:
			out = append(out, n.Select)
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
					switch fn.FullName() {
					case "(*sync.WaitGroup).Wait",
						"(*repro/internal/par.Pool).Close",
						"(*repro/internal/par.Pool).CloseContext":
						out = append(out, n.Pos())
					}
				}
			}
		}
		return true
	})
	return out
}

// spans is the bracket-coarse lock model of one region: a class guards a
// position when some Lock of it comes before and some Unlock (deferred
// unlocks count as end-of-region) comes after.
type spans struct {
	locks   map[string][]token.Pos
	unlocks map[string][]token.Pos
}

func (sp *spans) guards(pos token.Pos) []string {
	var out []string
	classes := make([]string, 0, len(sp.locks))
	for class := range sp.locks {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		ls := sp.locks[class]
		before := false
		for _, l := range ls {
			if l < pos {
				before = true
				break
			}
		}
		if !before {
			continue
		}
		for _, u := range sp.unlocks[class] {
			if u > pos {
				out = append(out, class)
				break
			}
		}
	}
	return out
}

func commonGuard(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// collectSpans records every mutex Lock/Unlock of the region, skipping the
// excluded closures; end anchors deferred unlocks.
func collectSpans(info *types.Info, root ast.Node, scope string, exclude []*ast.FuncLit, end token.Pos) *spans {
	sp := &spans{locks: map[string][]token.Pos{}, unlocks: map[string][]token.Pos{}}
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		for _, lit := range exclude {
			if n != nil && n.Pos() >= lit.Pos() && n.End() <= lit.End() {
				return false
			}
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			class := callgraph.SyncClass(info, sel.X, scope)
			switch fn.FullName() {
			case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
				sp.locks[class] = append(sp.locks[class], n.Pos())
			case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
				pos := n.Pos()
				if deferred[n] {
					pos = end
				}
				sp.unlocks[class] = append(sp.unlocks[class], pos)
			}
		}
		return true
	})
	return sp
}
