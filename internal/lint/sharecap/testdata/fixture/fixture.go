// The sharecap fixture: captured-write races across par.Run workers and
// escaping goroutines, next to the sanctioned shapes — deposit-list
// indexing, mutex bracketing, and join-before-read.
package fixture

import (
	"sync"

	"repro/internal/par"
)

// sumRace accumulates into a captured scalar from every worker: the
// classic lost-update race.
func sumRace(xs []float64) float64 {
	total := 0.0
	par.Run(4, len(xs), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i] // want `total is captured and written by every par\.Run worker`
		}
	})
	return total
}

// depositOK writes only worker-local slots: the deposit-list idiom.
func depositOK(xs, out []float64) {
	par.Run(4, len(xs), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = xs[i] * 2
		}
	})
}

// strideOK writes through stride arithmetic: the captured stride w is
// read-only inside the closure and the column index x varies per worker,
// so the written slots are disjoint (the transposed deposit-list idiom).
func strideOK(data []float64, w, h int) {
	par.Run(4, w, func(_, lo, hi int) {
		for x := lo; x < hi; x++ {
			for y := 0; y < h; y++ {
				data[y*w+x] = float64(x)
			}
		}
	})
}

// sharedIndexRace indexes by a captured variable, so every worker writes
// the same slot.
func sharedIndexRace(xs []float64, k int) {
	par.Run(4, len(xs), func(w, lo, hi int) {
		xs[k] = float64(hi) // want `xs is captured and written by every par\.Run worker`
	})
}

// lockOK brackets the captured write with a mutex.
func lockOK(xs []float64) float64 {
	var mu sync.Mutex
	total := 0.0
	par.Run(4, len(xs), func(w, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		mu.Lock()
		total += s
		mu.Unlock()
	})
	return total
}

// goEscape reads a variable the spawned goroutine may still be writing.
func goEscape() int {
	x := 0
	go func() { x = 1 }()
	return x // want `x is accessed here while the goroutine spawned at line \d+ may still be writing it`
}

// goJoined receives on the done channel before reading: happens-before.
func goJoined() int {
	x := 0
	done := make(chan struct{})
	go func() {
		x = 1
		close(done)
	}()
	<-done
	return x
}

// goLocked guards both sides with the same mutex class.
func goLocked() int {
	var mu sync.Mutex
	x := 0
	go func() {
		mu.Lock()
		x = 1
		mu.Unlock()
	}()
	mu.Lock()
	v := x
	mu.Unlock()
	return v
}

// submitEscape reads a counter a submitted task may still be writing.
func submitEscape(p *par.Pool) int {
	n := 0
	_ = p.Submit(func() { n++ })
	return n // want `n is accessed here while the goroutine spawned at line \d+ may still be writing it`
}

// submitDrained drains the pool before the read.
func submitDrained(p *par.Pool) int {
	n := 0
	_ = p.Submit(func() { n++ })
	p.Close()
	return n
}
