package sharecap_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/sharecap"
)

// TestFixture covers both spawn shapes: par.Run worker closures (flagged
// scalar accumulation and captured-index writes, quiet deposit-list and
// mutex shapes) and escaping go/Submit closures (flagged read-after-spawn,
// quiet join/drain/common-lock shapes).
func TestFixture(t *testing.T) {
	analysistest.Run(t, "testdata/fixture", sharecap.Analyzer)
}
