package lint_test

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/enumswitch"
	"repro/internal/lint/floatcmp"
	"repro/internal/lint/golife"
	"repro/internal/lint/knobflow"
	"repro/internal/lint/load"
	"repro/internal/lint/lockorder"
	"repro/internal/lint/phasereg"
	"repro/internal/lint/registry"
	"repro/internal/lint/sharecap"
)

func loadStale(t *testing.T) []*load.Package {
	t.Helper()
	pkgs, err := load.Load(load.Config{Dir: "testdata/stale"}, ".")
	if err != nil {
		t.Fatalf("loading stale fixture: %v", err)
	}
	return pkgs
}

// TestStaleIgnore checks the three directive fates: a directive that
// suppresses a finding is live, a directive that suppresses nothing is
// reported, and a stale directive vouched for by a reasoned
// //lint:ignore staleignore stays — with the voucher earning its own hit.
func TestStaleIgnore(t *testing.T) {
	res, err := lint.RunSuite(loadStale(t), []lint.Rule{{Analyzer: floatcmp.Analyzer}}, lint.Options{
		NoFacts:    true,
		CheckStale: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 {
		for _, f := range res.Findings {
			t.Logf("finding: %s:%d [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
		}
		t.Fatalf("want exactly 1 finding (the stale directive in dead), got %d", len(res.Findings))
	}
	f := res.Findings[0]
	if f.Analyzer != "staleignore" {
		t.Errorf("finding analyzer = %q, want staleignore", f.Analyzer)
	}
	if !strings.Contains(f.Message, "suppresses no finding") {
		t.Errorf("unexpected message: %s", f.Message)
	}
	if len(f.Fixes) == 0 {
		t.Fatalf("stale finding carries no fix")
	}
}

// TestStaleIgnoreFix checks that applying the stale finding's fix deletes
// the whole directive line, not just the comment text.
func TestStaleIgnoreFix(t *testing.T) {
	res, err := lint.RunSuite(loadStale(t), []lint.Rule{{Analyzer: floatcmp.Analyzer}}, lint.Options{
		NoFacts:    true,
		CheckStale: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	contents, applied, skipped, err := lint.ApplyFixes(res.Fset, res.Findings)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 || skipped != 0 {
		t.Fatalf("applied=%d skipped=%d, want 1/0", applied, skipped)
	}
	if len(contents) != 1 {
		t.Fatalf("fix touched %d files, want 1", len(contents))
	}
	for file, fixed := range contents {
		orig, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(fixed), "nothing here compares floats\n") {
			t.Errorf("stale directive still present after fix")
		}
		// Whole-line deletion: exactly one line shorter, no blank husk with
		// trailing indentation left behind.
		if got, want := strings.Count(string(fixed), "\n"), strings.Count(string(orig), "\n")-1; got != want {
			t.Errorf("fixed file has %d lines, want %d", got, want)
		}
		if strings.Contains(string(fixed), "\t\n") {
			t.Errorf("fix left an indented blank line behind")
		}
		// The vouched-for directive in kept must survive.
		if !strings.Contains(string(fixed), "nothing here compares floats either") {
			t.Errorf("fix deleted the vouched-for directive in kept")
		}
	}
}

// TestStaleIgnoreV3Analyzers runs the concurrency analyzers over a fixture
// whose golife directive suppresses a real leak (live) while its lockorder
// and sharecap directives suppress nothing: exactly those two must come
// back as staleignore findings.
func TestStaleIgnoreV3Analyzers(t *testing.T) {
	pkgs, err := load.Load(load.Config{Dir: "testdata/stalev3"}, ".")
	if err != nil {
		t.Fatalf("loading stalev3 fixture: %v", err)
	}
	rules := []lint.Rule{
		{Analyzer: lockorder.Analyzer},
		{Analyzer: golife.Analyzer},
		{Analyzer: sharecap.Analyzer},
	}
	res, err := lint.RunSuite(pkgs, rules, lint.Options{
		Graph:      &callgraph.Config{Bounded: callgraph.DefaultBounded},
		CheckStale: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var staleNames []string
	for _, f := range res.Findings {
		if f.Analyzer != "staleignore" {
			t.Errorf("unexpected non-stale finding: %s:%d [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
			continue
		}
		staleNames = append(staleNames, f.Message)
	}
	if len(staleNames) != 2 {
		t.Fatalf("want 2 stale directives (lockorder, sharecap), got %d: %v", len(staleNames), staleNames)
	}
	for i, want := range []string{"lockorder", "sharecap"} {
		if !strings.Contains(staleNames[i], want) {
			t.Errorf("stale finding %d = %q, want it to name %s", i, staleNames[i], want)
		}
	}
}

// TestStaleIgnoreV4Analyzers runs the contract analyzers over a fixture
// whose knobflow directive suppresses a real dead-knob finding (live)
// while its phasereg and enumswitch directives suppress nothing: exactly
// those two must come back as staleignore findings.
func TestStaleIgnoreV4Analyzers(t *testing.T) {
	pkgs, err := load.Load(load.Config{Dir: "testdata/stalev4"}, ".")
	if err != nil {
		t.Fatalf("loading stalev4 fixture: %v", err)
	}
	rules := []lint.Rule{
		{Analyzer: knobflow.Analyzer},
		{Analyzer: phasereg.Analyzer},
		{Analyzer: enumswitch.Analyzer},
	}
	res, err := lint.RunSuite(pkgs, rules, lint.Options{
		Registry: &registry.Config{
			ConfigStruct: "repro/internal/lint/testdata/stalev4.Config",
			HashMethod:   "Hash",
		},
		CheckStale: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var staleNames []string
	for _, f := range res.Findings {
		if f.Analyzer != "staleignore" {
			t.Errorf("unexpected non-stale finding: %s:%d [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
			continue
		}
		staleNames = append(staleNames, f.Message)
	}
	if len(staleNames) != 2 {
		t.Fatalf("want 2 stale directives (enumswitch, phasereg), got %d: %v", len(staleNames), staleNames)
	}
	for i, want := range []string{"enumswitch", "phasereg"} {
		if !strings.Contains(staleNames[i], want) {
			t.Errorf("stale finding %d = %q, want it to name %s", i, staleNames[i], want)
		}
	}
}

// TestDedupeFindings proves identical (analyzer, position, message)
// triples from overlapping package loads print once: running the suite
// over the same package listed twice yields exactly the single-load
// findings.
func TestDedupeFindings(t *testing.T) {
	pkgs, err := load.Load(load.Config{Dir: "enumswitch/testdata/fixture"}, ".")
	if err != nil {
		t.Fatalf("loading enumswitch fixture: %v", err)
	}
	single, err := lint.RunSuite(pkgs, []lint.Rule{{Analyzer: enumswitch.Analyzer}}, lint.Options{NoFacts: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Findings) == 0 {
		t.Fatal("fixture yields no findings to deduplicate")
	}
	doubled := append(append([]*load.Package(nil), pkgs...), pkgs...)
	deduped, err := lint.RunSuite(doubled, []lint.Rule{{Analyzer: enumswitch.Analyzer}}, lint.Options{NoFacts: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripFixes(single.Findings), stripFixes(deduped.Findings)) {
		t.Errorf("doubled load yields %d finding(s), single load %d: deduplication failed\n doubled: %+v\n single: %+v",
			len(deduped.Findings), len(single.Findings), deduped.Findings, single.Findings)
	}
}

// stripFixes clears the fix slices so DeepEqual compares finding identity
// (analyzer, position, message), not fix pointer equality.
func stripFixes(fs []lint.Finding) []lint.Finding {
	out := append([]lint.Finding(nil), fs...)
	for i := range out {
		out[i].Fixes = nil
	}
	return out
}

// TestWriteListGolden pins kvet -list output: one sorted line per
// analyzer with its one-line doc, compared against testdata/list.golden.
// Regenerate the golden by hand when adding an analyzer — the diff in
// review is the point.
func TestWriteListGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteList(&buf, lint.Rules()); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/list.golden")
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if buf.String() != string(want) {
		t.Errorf("kvet -list output differs from testdata/list.golden:\n%s", lint.Diff("list.golden", want, buf.Bytes()))
	}
}

// TestStaleBaseline checks that entries whose findings were since fixed
// are reported with the unmatched count, and a fully consumed baseline
// reports nothing.
func TestStaleBaseline(t *testing.T) {
	res, err := lint.RunSuite(loadStale(t), []lint.Rule{{Analyzer: floatcmp.Analyzer}}, lint.Options{
		NoFacts:    true,
		CheckStale: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("fixture yields no findings to baseline")
	}
	path := t.TempDir() + "/baseline.json"
	if err := lint.WriteBaseline(path, "testdata/stale", res.Findings); err != nil {
		t.Fatal(err)
	}
	bl, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if stale := lint.StaleBaseline(bl, "testdata/stale", res.Findings); len(stale) != 0 {
		t.Errorf("fresh baseline reported stale entries: %+v", stale)
	}
	// Drop the first finding, as if it were fixed: exactly its entry must
	// come back, with one unmatched occurrence.
	fixed := res.Findings[1:]
	stale := lint.StaleBaseline(bl, "testdata/stale", fixed)
	if len(stale) != 1 {
		t.Fatalf("want 1 stale entry after fixing one finding, got %+v", stale)
	}
	if stale[0].Count != 1 {
		t.Errorf("stale entry count = %d, want 1", stale[0].Count)
	}
	if want := res.Findings[0].Message; stale[0].Message != want {
		t.Errorf("stale entry message = %q, want %q", stale[0].Message, want)
	}
}

// TestBaselineRoundTrip writes a baseline from current findings and
// checks it grandfathers exactly those findings and nothing else.
func TestBaselineRoundTrip(t *testing.T) {
	res, err := lint.RunSuite(loadStale(t), []lint.Rule{{Analyzer: floatcmp.Analyzer}}, lint.Options{
		NoFacts:    true,
		CheckStale: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("fixture yields no findings to baseline")
	}
	path := t.TempDir() + "/baseline.json"
	if err := lint.WriteBaseline(path, "testdata/stale", res.Findings); err != nil {
		t.Fatal(err)
	}
	bl, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	kept, grandfathered := lint.ApplyBaseline(bl, "testdata/stale", res.Findings)
	if len(kept) != 0 || grandfathered != len(res.Findings) {
		t.Errorf("round trip: kept=%d grandfathered=%d, want 0/%d", len(kept), grandfathered, len(res.Findings))
	}
	// A finding class beyond its grandfathered count must surface.
	doubled := append(append([]lint.Finding(nil), res.Findings...), res.Findings...)
	kept, _ = lint.ApplyBaseline(bl, "testdata/stale", doubled)
	if len(kept) != len(res.Findings) {
		t.Errorf("excess occurrences: kept=%d, want %d", len(kept), len(res.Findings))
	}
}
