// Package lint is the repo's static-analysis policy: which analyzers
// exist, which packages each one polices, and how findings are collected,
// suppressed and ordered. cmd/kvet is a thin driver over this package.
//
// Suppression: a finding is silenced by a comment
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory — a bare ignore does not suppress — so every deliberate
// exception documents itself.
package lint

import (
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/detrange"
	"repro/internal/lint/floatcmp"
	"repro/internal/lint/load"
	"repro/internal/lint/nilsafe"
	"repro/internal/lint/noclock"
	"repro/internal/lint/parpolicy"
)

// Rule binds an analyzer to the set of packages it polices.
type Rule struct {
	Analyzer *analysis.Analyzer
	// Only restricts the rule to the listed import paths when non-empty.
	Only []string
	// Exempt lists import paths the rule skips. Entries ending in "/..."
	// match the path and everything below it.
	Exempt []string
}

// AppliesTo reports whether the rule polices the package at importPath.
func (r Rule) AppliesTo(importPath string) bool {
	if len(r.Only) > 0 {
		return matchAny(r.Only, importPath)
	}
	return !matchAny(r.Exempt, importPath)
}

func matchAny(pats []string, path string) bool {
	for _, p := range pats {
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			if path == rest || strings.HasPrefix(path, rest+"/") {
				return true
			}
		} else if path == p {
			return true
		}
	}
	return false
}

// Rules returns the repo policy. Rationale per rule:
//
//   - detrange guards run-to-run reproducibility of the placement loop, so
//     it polices algorithm packages; obsv/bench/cmds/examples only render
//     output and order their own emissions.
//   - noclock keeps wall-clock reads inside obsv (the sanctioned Stopwatch),
//     bench and the binaries.
//   - parpolicy funnels all fan-out through internal/par, the one place
//     that decides worker counts; par itself is the implementation. The
//     serving layer (internal/serve, cmd/kserved) is deliberately NOT
//     exempt: its worker pool is par.Pool, and the daemon's one raw
//     accept-loop goroutine carries a reasoned //lint:ignore.
//   - floatcmp applies everywhere: exact float equality is as wrong in a
//     cmd as in the solver.
//   - nilsafe enforces the obsv handle contract (every exported method on a
//     nil handle is a no-op), so it runs only there.
func Rules() []Rule {
	reporting := []string{
		"repro/internal/obsv",
		"repro/internal/bench",
		"repro/cmd/...",
		"repro/examples/...",
	}
	return []Rule{
		{Analyzer: detrange.Analyzer, Exempt: reporting},
		{Analyzer: noclock.Analyzer, Exempt: reporting},
		{Analyzer: parpolicy.Analyzer, Exempt: []string{"repro/internal/par"}},
		{Analyzer: floatcmp.Analyzer},
		{Analyzer: nilsafe.Analyzer, Only: []string{"repro/internal/obsv"}},
	}
}

// Finding is one unsuppressed diagnostic with a resolved position.
type Finding struct {
	Analyzer string
	File     string
	Line     int
	Col      int
	Message  string
}

// Run applies the analyzers to one loaded package, filters suppressed
// diagnostics, and returns the findings sorted by position.
func Run(pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	sup := collectIgnores(pkg)
	var out []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if sup.suppressed(pos.Filename, pos.Line, name) {
				return
			}
			out = append(out, Finding{
				Analyzer: name,
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// ignoreSet records, per file and line, the analyzer names ignored there.
type ignoreSet map[string]map[int][]string

// suppressed reports whether analyzer name is ignored at file:line, by a
// directive on the line itself or the line directly above.
func (s ignoreSet) suppressed(file string, line int, name string) bool {
	lines := s[file]
	for _, l := range []int{line, line - 1} {
		for _, n := range lines[l] {
			if n == name || n == "all" {
				return true
			}
		}
	}
	return false
}

// collectIgnores scans every comment of the package for lint:ignore
// directives. A directive needs an analyzer name (or comma-separated
// names, or "all") followed by a non-empty reason.
func collectIgnores(pkg *load.Package) ignoreSet {
	s := make(ignoreSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no reason given: directive is inert
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := s[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					s[pos.Filename] = lines
				}
				for _, n := range strings.Split(fields[0], ",") {
					lines[pos.Line] = append(lines[pos.Line], n)
				}
			}
		}
	}
	return s
}

// Analyzers returns every analyzer in the suite, for drivers that want to
// run all of them regardless of package policy.
func Analyzers() []*analysis.Analyzer {
	rules := Rules()
	as := make([]*analysis.Analyzer, len(rules))
	for i, r := range rules {
		as[i] = r.Analyzer
	}
	return as
}
