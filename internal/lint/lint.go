// Package lint is the repo's static-analysis policy: which analyzers
// exist, which packages each one polices, and how findings are collected,
// suppressed and ordered. cmd/kvet is a thin driver over this package.
//
// v2 adds an interprocedural layer: before any reporting analyzer runs,
// RunSuite builds per-function summaries over every loaded package (does
// it block, does it take a context, whom does it call — see
// internal/lint/callgraph), propagates them across package boundaries
// through a fact store, and hands the store to analyzers that declare
// NeedsFacts. ctxflow, lockheld and hotalloc reason from those facts;
// the per-file analyzers are unchanged.
//
// Suppression: a finding is silenced by a comment
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory — a bare ignore does not suppress — so every deliberate
// exception documents itself. A directive that suppresses nothing is
// itself reported (analyzer name "staleignore") with a fix that deletes
// it: dead suppressions otherwise outlive the finding they excused and
// silently blind the next occurrence.
package lint

import (
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/detrange"
	"repro/internal/lint/enumswitch"
	"repro/internal/lint/errflow"
	"repro/internal/lint/floatcmp"
	"repro/internal/lint/golife"
	"repro/internal/lint/hotalloc"
	"repro/internal/lint/knobflow"
	"repro/internal/lint/load"
	"repro/internal/lint/lockheld"
	"repro/internal/lint/lockorder"
	"repro/internal/lint/nilsafe"
	"repro/internal/lint/noclock"
	"repro/internal/lint/parpolicy"
	"repro/internal/lint/phasereg"
	"repro/internal/lint/registry"
	"repro/internal/lint/sharecap"
	"repro/internal/obsv"
)

// StaleIgnore is the pseudo-analyzer stale-suppression findings are
// attributed to. Its Run is a no-op: the detection lives in RunSuite,
// which sees every directive and every suppression hit; the analyzer
// exists so the findings have a name that -list documents and that a
// //lint:ignore directive can itself name.
var StaleIgnore = &analysis.Analyzer{
	Name: "staleignore",
	Doc:  "flags //lint:ignore directives that suppress no finding; a dead suppression blinds the next real occurrence on that line",
	Run:  func(*analysis.Pass) error { return nil },
}

// Rule binds an analyzer to the set of packages it polices.
type Rule struct {
	Analyzer *analysis.Analyzer
	// Only restricts the rule to the listed import paths when non-empty.
	Only []string
	// Exempt lists import paths the rule skips. Entries ending in "/..."
	// match the path and everything below it.
	Exempt []string
}

// AppliesTo reports whether the rule polices the package at importPath.
func (r Rule) AppliesTo(importPath string) bool {
	if len(r.Only) > 0 {
		return matchAny(r.Only, importPath)
	}
	return !matchAny(r.Exempt, importPath)
}

func matchAny(pats []string, path string) bool {
	for _, p := range pats {
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			if path == rest || strings.HasPrefix(path, rest+"/") {
				return true
			}
		} else if path == p {
			return true
		}
	}
	return false
}

// Rules returns the repo policy. Rationale per rule:
//
//   - detrange guards run-to-run reproducibility of the placement loop, so
//     it polices algorithm packages; obsv/bench/cmds/examples only render
//     output and order their own emissions.
//   - noclock keeps wall-clock reads inside obsv (the sanctioned Stopwatch),
//     bench and the binaries.
//   - parpolicy funnels all fan-out through internal/par, the one place
//     that decides worker counts; par itself is the implementation. The
//     serving layer (internal/serve, cmd/kserved) is deliberately NOT
//     exempt: its worker pool is par.Pool, and the daemon's one raw
//     accept-loop goroutine carries a reasoned //lint:ignore.
//   - floatcmp applies everywhere: exact float equality is as wrong in a
//     cmd as in the solver.
//   - nilsafe enforces the obsv handle contract (every exported method on a
//     nil handle is a no-op), so it runs only there.
//   - ctxflow polices the serving path's cancellation contract everywhere
//     except the reporting set (whose blocking prints are the product, not
//     a hazard) and internal/par, whose bounded joins are cancelled at the
//     granularity of the step that invoked them (see callgraph.DefaultBounded).
//   - lockheld applies everywhere: a critical section that blocks is wrong
//     in a cmd exactly as in the solver.
//   - hotalloc polices only the packages place.Step's loop actually runs
//     through; allocation elsewhere is none of its business.
//   - errflow applies everywhere: a dropped error hides a failure path
//     regardless of the package.
//   - lockorder, golife and sharecap (the v3 concurrency suite) apply
//     everywhere: a lock-order inversion, a leaked goroutine, or an
//     unsynchronized captured write is a program property — the analyzers
//     already anchor each finding to the package that owns the witness.
//   - knobflow and phasereg (the v4 contract suite) apply everywhere: the
//     registry is extracted from the whole tree and each finding is
//     anchored in the one package owning the declaration that must change.
//   - enumswitch applies everywhere: a silent fall-through on a new enum
//     constant is wrong in a cmd exactly as in the solver.
//   - staleignore applies everywhere a directive can appear.
func Rules() []Rule {
	reporting := []string{
		"repro/internal/obsv",
		"repro/internal/bench",
		"repro/cmd/...",
		"repro/examples/...",
	}
	ctxExempt := append(append([]string(nil), reporting...), "repro/internal/par")
	engine := []string{
		"repro/internal/place",
		"repro/internal/density",
		"repro/internal/fft",
		"repro/internal/sparse",
		"repro/internal/qp",
		"repro/internal/geom",
		"repro/internal/netlist",
		"repro/internal/par",
	}
	return []Rule{
		{Analyzer: detrange.Analyzer, Exempt: reporting},
		{Analyzer: noclock.Analyzer, Exempt: reporting},
		{Analyzer: parpolicy.Analyzer, Exempt: []string{"repro/internal/par"}},
		{Analyzer: floatcmp.Analyzer},
		{Analyzer: nilsafe.Analyzer, Only: []string{"repro/internal/obsv"}},
		{Analyzer: ctxflow.Analyzer, Exempt: ctxExempt},
		{Analyzer: lockheld.Analyzer},
		{Analyzer: hotalloc.Analyzer, Only: engine},
		{Analyzer: errflow.Analyzer},
		{Analyzer: lockorder.Analyzer},
		{Analyzer: golife.Analyzer},
		{Analyzer: sharecap.Analyzer},
		{Analyzer: knobflow.Analyzer},
		{Analyzer: phasereg.Analyzer},
		{Analyzer: enumswitch.Analyzer},
		{Analyzer: StaleIgnore},
	}
}

// RegistryConfig names the repo's contract anchors: where the knob,
// phase and metric schemas live. The v4 analyzers compare every mirror
// surface against these.
func RegistryConfig() registry.Config {
	return registry.Config{
		ConfigStruct: "repro/internal/place.Config",
		HashMethod:   "Hash",
		FlagsPkg:     "repro/cmd/kplace",
		SubmitStruct: "repro/internal/serve.SubmitRequest",
		FacadePkg:    "repro",

		IterStruct:    "repro/internal/place.IterStats",
		TotalsStruct:  "repro/internal/place.PhaseTotals",
		SpanPkg:       "repro/internal/place",
		SpanPrefix:    "place/",
		PhaseKeysFunc: "repro/internal/place.PhaseKeys",
		EventStruct:   "repro/internal/serve.Event",
		// serve's streaming event carries one aggregate solve time; the
		// three solver phases collapse into it by design.
		EventCollapse: map[string][]string{
			"solve": {"solve-x", "solve-y", "solve-pair"},
		},
		WaterfallPkg:    "repro/internal/serve",
		WaterfallPrefix: "phase/",
		// The waterfall renders the pipeline stages a job passes through;
		// solve-pair is an alternative to solve-x/solve-y (never both in
		// one iteration) and step is the enclosing span itself.
		WaterfallExempt: []string{"solve-pair", "step"},
		TraceCheckVar:   "repro/cmd/ktracecheck.knownPhaseKeys",

		MetricsType: "repro/internal/obsv.Registry",
	}
}

// GraphConfig is the repo's interprocedural root set: cancellation enters
// through place.Run (and the Global wrappers); the hot loop is everything
// place.Step reaches. Serve handlers are roots automatically by shape.
//
// Cold declares the sanctioned construction layer — functions Step can
// reach only on a cache miss or topology change, where allocation is the
// point (building FFT twiddle tables, assembling a fresh sparsity
// pattern) and amortizes to zero in steady state. The Hot mark stops
// there instead of indicting every make in a constructor.
func GraphConfig() callgraph.Config {
	return callgraph.Config{
		CtxRoots: []string{
			"(*repro/internal/place.Placer).Run",
			"repro/internal/place.Global",
			"repro/internal/place.GlobalContext",
		},
		HotRoots: []string{
			"(*repro/internal/place.Placer).Step",
		},
		Bounded: callgraph.DefaultBounded,
		Cold: []string{
			// Field-solver cache miss: plan + kernel-spectrum construction,
			// guarded by the pw/ph topology check in fieldSolver.
			"(*repro/internal/density.Grid).fieldSolver",
			// Baseline comparison paths, kept deliberately allocation-heavy
			// (NoCache / Direct method) so the cached path has a reference.
			"repro/internal/density.computeFFTCold",
			"repro/internal/density.computeRealFFTCold",
			"repro/internal/density.computeDirect",
			// Twiddle/bit-reversal table construction, amortized globally
			// through tableCache.
			"repro/internal/fft.NewPlan",
			"repro/internal/fft.NewRealPlan",
			// Symbolic rebuild on topology change; steady state replays the
			// numeric refill through the cached pattern instead. qp.Build is
			// the uncached one-shot assembly behind the NoReuse baseline flag.
			"(*repro/internal/qp.Assembler).rebuild",
			"repro/internal/qp.Build",
			// IC0 pattern construction: allocation happens once per sparsity
			// pattern; the steady state replays alloc-free Refactor calls
			// through the cached IC0Factor.
			"repro/internal/sparse.NewIC0Pattern",
			"repro/internal/sparse.NewIC0",
		},
	}
}

// Finding is one unsuppressed diagnostic with a resolved position.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Fixes carries the analyzer's suggested fixes, if any. ApplyFixes
	// applies the first one.
	Fixes []analysis.SuggestedFix `json:"-"`
}

// Options adjusts a RunSuite call.
type Options struct {
	// Graph overrides the interprocedural root set; nil means GraphConfig().
	Graph *callgraph.Config
	// Registry overrides the contract-schema anchors; nil means
	// RegistryConfig(). Fixture tests point this at their own structs.
	Registry *registry.Config
	// NoFacts skips the whole-program fact and registry phases. Analyzers
	// that declare NeedsFacts or NeedsRegistry then see a nil store and
	// stay silent.
	NoFacts bool
	// CheckStale reports //lint:ignore directives that suppressed nothing.
	CheckStale bool
}

// Timing is the accumulated wall time of one analyzer across every
// package it ran on. The pseudo-analyzer names "facts" and "registry"
// carry the whole-program phases.
type Timing struct {
	Analyzer string
	Wall     time.Duration
}

// Result is the outcome of one suite run.
type Result struct {
	Findings []Finding
	// Fset resolves the positions inside Findings (one shared FileSet
	// spans every loaded package), which ApplyFixes needs.
	Fset *token.FileSet
	// Timings lists per-analyzer wall time, slowest first (kvet
	// -debug-timing renders it).
	Timings []Timing
}

// RunSuite applies the rule set to the loaded packages: one whole-program
// fact phase (package summaries in dependency order, MayBlock fixpoint,
// reachability marks), then the reporting analyzers per package, then
// stale-suppression detection over the accumulated directive hits.
func RunSuite(pkgs []*load.Package, rules []Rule, opts Options) (*Result, error) {
	if len(pkgs) == 0 {
		return &Result{}, nil
	}
	res := &Result{Fset: pkgs[0].Fset}
	wall := make(map[string]time.Duration)

	var store *callgraph.Store
	if !opts.NoFacts && anyNeedsFacts(rules) {
		cfg := GraphConfig()
		if opts.Graph != nil {
			cfg = *opts.Graph
		}
		store = callgraph.NewStore()
		sw := obsv.StartTimer()
		callgraph.Analyze(pkgs, store, cfg)
		wall["facts"] = sw.Elapsed()
	}
	if !opts.NoFacts && anyNeedsRegistry(rules) {
		if store == nil {
			store = callgraph.NewStore()
		}
		rcfg := RegistryConfig()
		if opts.Registry != nil {
			rcfg = *opts.Registry
		}
		sw := obsv.StartTimer()
		registry.Analyze(pkgs, store, rcfg)
		wall["registry"] = sw.Elapsed()
	}

	ix := collectIgnores(pkgs)
	for _, pkg := range pkgs {
		for _, r := range rules {
			if !r.AppliesTo(pkg.ImportPath) {
				continue
			}
			a := r.Analyzer
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if store != nil {
				pass.Facts = store
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if ix.suppressed(pos.Filename, pos.Line, name, nil) {
					return
				}
				res.Findings = append(res.Findings, Finding{
					Analyzer: name,
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  d.Message,
					Fixes:    d.SuggestedFixes,
				})
			}
			sw := obsv.StartTimer()
			err := a.Run(pass)
			wall[name] += sw.Elapsed()
			if err != nil {
				return nil, err
			}
		}
	}

	if opts.CheckStale {
		res.Findings = append(res.Findings, ix.stale()...)
	}

	sortFindings(res.Findings)
	res.Findings = dedupeFindings(res.Findings)
	res.Timings = sortTimings(wall)
	return res, nil
}

// dedupeFindings collapses identical (analyzer, position, message)
// findings to one. Overlapping load patterns and whole-program analyzers
// re-anchoring through shared packages can both surface the same
// diagnostic twice; one defect, one line of output. Input must be sorted.
func dedupeFindings(fs []Finding) []Finding {
	out := fs[:0]
	for i, f := range fs {
		if i > 0 {
			p := out[len(out)-1]
			if p.File == f.File && p.Line == f.Line && p.Col == f.Col &&
				p.Analyzer == f.Analyzer && p.Message == f.Message {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// sortTimings renders the wall map slowest-first, ties by name.
func sortTimings(wall map[string]time.Duration) []Timing {
	out := make([]Timing, 0, len(wall))
	for name, d := range wall {
		out = append(out, Timing{Analyzer: name, Wall: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wall != out[j].Wall {
			return out[i].Wall > out[j].Wall
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

func anyNeedsFacts(rules []Rule) bool {
	for _, r := range rules {
		if r.Analyzer.NeedsFacts {
			return true
		}
	}
	return false
}

func anyNeedsRegistry(rules []Rule) bool {
	for _, r := range rules {
		if r.Analyzer.NeedsRegistry {
			return true
		}
	}
	return false
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// directive is one parsed //lint:ignore comment and its usage count.
type directive struct {
	names    []string
	file     string
	line     int
	col      int
	pos, end token.Pos // the comment's span, for the deletion fix
	hits     int
}

// ignoreIndex locates directives by file and line and remembers every one
// for the stale sweep.
type ignoreIndex struct {
	at  map[string]map[int][]*directive
	all []*directive
}

// suppressed reports whether analyzer name is ignored at file:line, by a
// directive on the line itself or the line directly above, and counts the
// hit. self, when non-nil, is excluded — a directive cannot vouch for its
// own staleness finding.
func (ix *ignoreIndex) suppressed(file string, line int, name string, self *directive) bool {
	lines := ix.at[file]
	for _, l := range []int{line, line - 1} {
		for _, d := range lines[l] {
			if d == self {
				continue
			}
			for _, n := range d.names {
				if n == name || n == "all" {
					d.hits++
					return true
				}
			}
		}
	}
	return false
}

// stale reports directives with zero hits. Two phases: first every
// zero-hit candidate's would-be finding runs through normal suppression
// (so a reasoned //lint:ignore staleignore above a deliberately kept
// directive both silences the finding and earns its own hit), then the
// survivors are re-checked — a candidate that picked up a hit while
// vouching for another is live after all.
func (ix *ignoreIndex) stale() []Finding {
	var candidates []*directive
	for _, d := range ix.all {
		if d.hits == 0 {
			candidates = append(candidates, d)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		if a.file != b.file {
			return a.file < b.file
		}
		return a.line < b.line
	})
	type tentative struct {
		d *directive
		f Finding
	}
	var kept []tentative
	for _, d := range candidates {
		if ix.suppressed(d.file, d.line, StaleIgnore.Name, d) {
			continue
		}
		kept = append(kept, tentative{d, Finding{
			Analyzer: StaleIgnore.Name,
			File:     d.file,
			Line:     d.line,
			Col:      d.col,
			Message:  "//lint:ignore " + strings.Join(d.names, ",") + " suppresses no finding; delete the stale directive",
			Fixes: []analysis.SuggestedFix{{
				Message:   "delete the stale directive",
				TextEdits: []analysis.TextEdit{{Pos: d.pos, End: d.end, NewText: ""}},
			}},
		}})
	}
	var out []Finding
	for _, t := range kept {
		if t.d.hits == 0 {
			out = append(out, t.f)
		}
	}
	return out
}

// collectIgnores scans every comment of every package for lint:ignore
// directives. A directive needs an analyzer name (or comma-separated
// names, or "all") followed by a non-empty reason.
func collectIgnores(pkgs []*load.Package) *ignoreIndex {
	ix := &ignoreIndex{at: make(map[string]map[int][]*directive)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "lint:ignore")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						continue // no reason given: directive is inert
					}
					pos := pkg.Fset.Position(c.Pos())
					d := &directive{
						names: strings.Split(fields[0], ","),
						file:  pos.Filename,
						line:  pos.Line,
						col:   pos.Column,
						pos:   c.Pos(),
						end:   c.End(),
					}
					lines := ix.at[d.file]
					if lines == nil {
						lines = make(map[int][]*directive)
						ix.at[d.file] = lines
					}
					lines[d.line] = append(lines[d.line], d)
					ix.all = append(ix.all, d)
				}
			}
		}
	}
	return ix
}

// WriteList renders the rule set for kvet -list: one line per analyzer,
// sorted by name, with the first sentence of its doc string. The full
// paragraph stays in the analyzer's package documentation; the listing is
// a table of contents, not a manual.
func WriteList(w io.Writer, rules []Rule) error {
	byName := make(map[string]*analysis.Analyzer, len(rules))
	for _, r := range rules {
		byName[r.Analyzer.Name] = r.Analyzer
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%-12s %s\n", name, firstSentence(byName[name].Doc)); err != nil {
			return err
		}
	}
	return nil
}

// firstSentence cuts doc at the first period-space boundary; docs without
// one are already a single sentence.
func firstSentence(doc string) string {
	if i := strings.Index(doc, ". "); i >= 0 {
		return doc[:i+1]
	}
	return strings.TrimSpace(doc)
}

// Analyzers returns every analyzer in the suite, for drivers that want to
// run all of them regardless of package policy.
func Analyzers() []*analysis.Analyzer {
	rules := Rules()
	as := make([]*analysis.Analyzer, len(rules))
	for i, r := range rules {
		as[i] = r.Analyzer
	}
	return as
}
