// Package analysis is a standard-library-only reimplementation of the
// golang.org/x/tools/go/analysis core: an Analyzer is a named check, a Pass
// hands it one type-checked package, and Report emits diagnostics. The
// container image pins the module graph (no network, no module cache), so
// the x/tools framework itself cannot be vendored in; this package keeps
// kvet's analyzers source-compatible with its API surface — an analyzer
// written against this package ports to x/tools by changing one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Run inspects a single package via
// the Pass and reports findings; it must not retain the Pass after return.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:ignore <name> <reason>" suppression comments. It must be a
	// valid identifier.
	Name string
	// Doc is the one-paragraph help text: the invariant being enforced
	// and why it matters to this repo.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. Wired by the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
