// Package analysis is a standard-library-only reimplementation of the
// golang.org/x/tools/go/analysis core: an Analyzer is a named check, a Pass
// hands it one type-checked package, and Report emits diagnostics. The
// container image pins the module graph (no network, no module cache), so
// the x/tools framework itself cannot be vendored in; this package keeps
// kvet's analyzers source-compatible with its API surface — an analyzer
// written against this package ports to x/tools by changing one import.
//
// Beyond the per-package core, the package defines the two interprocedural
// primitives the v2 analyzers build on: a Fact is a datum attached to a
// package-level object (a function summary, say) that survives across
// package boundaries, and a FactStore is the driver-owned map that carries
// facts from a dependency's pass to its dependents' passes. Objects are
// keyed by their types.Func.FullName-style string rather than by
// types.Object identity because the same function is a different object in
// the package that declares it (type-checked from source) and in the
// packages that import it (resolved through compiled export data).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Run inspects a single package via
// the Pass and reports findings; it must not retain the Pass after return.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:ignore <name> <reason>" suppression comments. It must be a
	// valid identifier.
	Name string
	// Doc is the one-paragraph help text: the invariant being enforced
	// and why it matters to this repo.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
	// NeedsFacts marks an analyzer that consumes the interprocedural fact
	// store (call-graph summaries). The driver runs the fact-building
	// phase over every loaded package before any such analyzer, and wires
	// Pass.Facts; an analyzer with NeedsFacts running under a driver that
	// skipped the fact phase sees a nil Facts and must degrade to
	// reporting nothing rather than guessing.
	NeedsFacts bool
	// NeedsRegistry marks an analyzer that consumes the contract registry
	// (knob/phase/metric schemas extracted from the whole loaded tree).
	// The driver runs the registry-extraction phase before any such
	// analyzer and stores the result in the fact store; the same nil-Facts
	// degradation rule as NeedsFacts applies.
	NeedsRegistry bool
}

// Fact is an arbitrary datum attached to one package-level object. A fact
// type is a pointer to a struct; the store copies values structurally, so
// facts must be plain data (no channels, no shared mutable state). The
// marker method keeps arbitrary types from sneaking into the store.
type Fact interface{ AFact() }

// FactStore carries facts across package passes. Keys are canonical object
// strings (types.Func.FullName for functions: "pkg/path.Name" or
// "(*pkg/path.Recv).Name"), which stay stable whether the object came from
// source type-checking or from export data.
type FactStore interface {
	// ObjectFact loads the fact of ptr's concrete type for key into ptr,
	// reporting whether one was stored.
	ObjectFact(key string, ptr Fact) bool
	// ExportObjectFact stores f under key, replacing any previous fact of
	// the same concrete type.
	ExportObjectFact(key string, f Fact)
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the interprocedural fact store, populated for analyzers
	// with NeedsFacts by the driver's fact phase. Nil when the driver ran
	// without that phase.
	Facts FactStore
	// Report delivers one diagnostic. Wired by the driver.
	Report func(Diagnostic)
}

// TextEdit replaces the source range [Pos, End) with NewText. Pos == End
// inserts; empty NewText deletes.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// SuggestedFix is one self-contained repair for a diagnostic: a set of
// non-overlapping edits that, applied together, remove the finding while
// keeping the package compiling. Fixes must be conservative — kvet -fix
// applies them unattended.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// SuggestedFixes carries machine-applicable repairs; kvet -fix applies
	// the first one, -diff previews it.
	SuggestedFixes []SuggestedFix
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ObjectKey returns the canonical cross-package key for obj: FullName for
// functions and methods, "pkg/path.Name" for other package-level objects,
// and "" for objects that have no stable identity (locals, blank).
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Name() == "_" {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		return fn.FullName()
	}
	if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
