package noclock_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/noclock"
)

func TestNoclock(t *testing.T) {
	analysistest.Run(t, "testdata/fixture", noclock.Analyzer)
}
