// Package fixture exercises the noclock analyzer: direct clock reads and
// global-source rand calls are flagged, seeded sources and plain
// time.Duration plumbing are not.
package fixture

import (
	"math/rand"
	"time"
)

// stamped reads the wall clock directly: flagged twice.
func stamped() time.Duration {
	start := time.Now() // want `clock read`
	work()
	return time.Since(start) // want `clock read`
}

// sleepy schedules against the clock: flagged.
func sleepy() {
	time.Sleep(time.Millisecond) // want `clock read`
}

// globalRand consults the process-global source: flagged twice.
func globalRand() float64 {
	_ = rand.Intn(10)     // want `global-source`
	return rand.Float64() // want `global-source`
}

// seededRand fully determines itself from the seed: allowed.
func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// plumbing passes durations around without reading the clock: allowed.
func plumbing(d time.Duration) time.Duration {
	return d.Round(time.Millisecond)
}

// suppressed documents a deliberate exception: not reported.
func suppressed() time.Time {
	//lint:ignore noclock fixture exercises the suppression path
	return time.Now()
}

func work() {}
