// Package noclock flags direct wall-clock reads and global-source
// math/rand calls in the algorithm packages. Clock access belongs to obsv
// (Stopwatch, span timers), bench and the command binaries; randomness in
// algorithms must flow through an explicitly seeded *rand.Rand so a seed
// fully determines a run. rand.New(rand.NewSource(seed)) is therefore
// fine; rand.Intn and friends (which consult the process-global source)
// are not.
package noclock

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer flags time.Now-style clock reads and global math/rand usage.
var Analyzer = &analysis.Analyzer{
	Name: "noclock",
	Doc:  "flags direct clock reads (time.Now etc.) and global-source math/rand calls in algorithm packages; use obsv.Stopwatch and seeded rand.New",
	Run:  run,
}

// clockFuncs are the package-time functions that read the wall clock or
// schedule against it.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true, "Sleep": true,
}

// globalRandFuncs are the math/rand (and v2) package-level functions backed
// by the shared global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "Read": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			fn, isFunc := obj.(*types.Func)
			if !isFunc {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			switch obj.Pkg().Path() {
			case "time":
				if clockFuncs[obj.Name()] {
					pass.Reportf(id.Pos(), "direct clock read time.%s in an algorithm package; route timing through obsv (Stopwatch, spans)", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[obj.Name()] {
					pass.Reportf(id.Pos(), "global-source rand.%s is seeded per process, not per run; use an explicit rand.New(rand.NewSource(seed))", obj.Name())
				}
			}
			return true
		})
	}
	return nil
}
