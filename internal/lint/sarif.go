package lint

import (
	"encoding/json"
	"sort"
)

// SARIF renders findings as a SARIF 2.1.0 log — the interchange format CI
// systems ingest for code-scanning annotations. File URIs are relativized
// against root under the standard %SRCROOT% base so the log is stable
// across checkouts.
func SARIF(root string, rules []Rule, findings []Finding) ([]byte, error) {
	type sMessage struct {
		Text string `json:"text"`
	}
	type sRule struct {
		ID               string   `json:"id"`
		ShortDescription sMessage `json:"shortDescription"`
	}
	type sArtifact struct {
		URI       string `json:"uri"`
		URIBaseID string `json:"uriBaseId"`
	}
	type sRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
	}
	type sPhysical struct {
		ArtifactLocation sArtifact `json:"artifactLocation"`
		Region           sRegion   `json:"region"`
	}
	type sLocation struct {
		PhysicalLocation sPhysical `json:"physicalLocation"`
	}
	type sResult struct {
		RuleID    string      `json:"ruleId"`
		Level     string      `json:"level"`
		Message   sMessage    `json:"message"`
		Locations []sLocation `json:"locations"`
	}
	type sDriver struct {
		Name           string  `json:"name"`
		InformationURI string  `json:"informationUri,omitempty"`
		Rules          []sRule `json:"rules"`
	}
	type sTool struct {
		Driver sDriver `json:"driver"`
	}
	type sRun struct {
		Tool    sTool     `json:"tool"`
		Results []sResult `json:"results"`
	}
	type sLog struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []sRun `json:"runs"`
	}

	var srules []sRule
	for _, r := range rules {
		srules = append(srules, sRule{
			ID:               r.Analyzer.Name,
			ShortDescription: sMessage{Text: r.Analyzer.Doc},
		})
	}
	sort.Slice(srules, func(i, j int) bool { return srules[i].ID < srules[j].ID })

	results := make([]sResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sMessage{Text: f.Message},
			Locations: []sLocation{{PhysicalLocation: sPhysical{
				ArtifactLocation: sArtifact{URI: relTo(root, f.File), URIBaseID: "%SRCROOT%"},
				Region:           sRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}

	log := sLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sRun{{
			Tool:    sTool{Driver: sDriver{Name: "kvet", Rules: srules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}
