package parpolicy_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/parpolicy"
)

func TestParpolicy(t *testing.T) {
	analysistest.Run(t, "testdata/fixture", parpolicy.Analyzer)
}
