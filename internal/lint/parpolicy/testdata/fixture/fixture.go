// Package fixture exercises the parpolicy analyzer: raw goroutines and
// WaitGroup fan-out are flagged, other sync primitives are not.
package fixture

import "sync"

// rawGo spawns an untracked goroutine: flagged.
func rawGo(f func()) {
	go f() // want `raw go statement`
}

// handRolled builds its own fork-join: flagged for the WaitGroup and for
// the go statement.
func handRolled(fns []func()) {
	var wg sync.WaitGroup // want `WaitGroup`
	for _, f := range fns {
		wg.Add(1)
		go func(f func()) { // want `raw go statement`
			defer wg.Done()
			f()
		}(f)
	}
	wg.Wait()
}

// locked uses a plain mutex, which is not fan-out: allowed.
func locked(mu *sync.Mutex, f func()) {
	mu.Lock()
	defer mu.Unlock()
	f()
}

// suppressed documents a deliberate exception (e.g. an HTTP server
// goroutine in a command): not reported.
func suppressed(f func()) {
	//lint:ignore parpolicy fixture exercises the suppression path
	go f()
}
