// Package parpolicy flags raw `go` statements and hand-rolled
// sync.WaitGroup fan-out outside internal/par. All data parallelism in the
// engine runs through par.Run (and par.Pair for two-task joins) so that a
// single policy decides worker counts, chunking stays deterministic, and
// the parallel-vs-serial equivalence tests cover every concurrent path.
// A goroutine spawned anywhere else either duplicates that policy or
// silently escapes it.
package parpolicy

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer flags ad-hoc concurrency outside internal/par.
var Analyzer = &analysis.Analyzer{
	Name: "parpolicy",
	Doc:  "flags raw go statements and sync.WaitGroup use outside internal/par; all fan-out must go through the shared par policy",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Go, "raw go statement: route fan-out through internal/par (par.Run / par.Pair) so worker policy and determinism stay centralized")
			case *ast.Ident:
				obj, ok := pass.TypesInfo.Uses[n].(*types.TypeName)
				if ok && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
					pass.Reportf(n.Pos(), "hand-rolled sync.WaitGroup fan-out: use par.Run / par.Pair instead")
				}
			}
			return true
		})
	}
	return nil
}
