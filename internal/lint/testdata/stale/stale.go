// Package stale is the fixture for stale-suppression detection: one
// directive that earns its keep, one that suppresses nothing, and one
// deliberately retained under a reasoned staleignore directive.
package stale

// live: the directive below suppresses a real floatcmp finding.
func live(a, b float64) bool {
	//lint:ignore floatcmp the caller quantized both operands to the same grid
	return a == b
}

// dead: integer comparison never triggers floatcmp, so the directive is
// stale and must be reported.
func dead(a, b int) bool {
	//lint:ignore floatcmp nothing here compares floats
	return a == b
}

// kept: the floatcmp directive is stale too, but the staleignore
// directive above it vouches for keeping it — and thereby earns its own
// hit, so neither is reported.
func kept(a, b int) bool {
	//lint:ignore staleignore retained to document the historical exception
	//lint:ignore floatcmp nothing here compares floats either
	return a == b
}
