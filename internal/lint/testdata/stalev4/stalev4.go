// Package stalev4 is the stale-suppression fixture for the v4 contract
// analyzers: a knobflow directive that earns its keep next to phasereg
// and enumswitch directives that suppress nothing and must be reported.
package stalev4

// Level is fully switched below, so the enumswitch directive is stale.
type Level int

const (
	Low Level = iota
	High
)

// Config is the fixture's knob registry anchor.
type Config struct {
	// Used is read by Run: clean.
	Used float64
	// Dead is never read; the directive below suppresses the knobflow
	// finding and is live.
	//lint:ignore knobflow fixture keeps a deliberately dead knob
	Dead float64
}

// Run reads the live knob.
func Run(c *Config) float64 { return c.Used }

// pick covers every Level, so the directive is stale.
func pick(l Level) int {
	//lint:ignore enumswitch this switch is already exhaustive
	switch l {
	case Low:
		return 0
	case High:
		return 1
	}
	return -1
}

// calm mirrors no phase surface at all, so the phasereg directive is
// stale.
func calm() int {
	//lint:ignore phasereg nothing here mirrors a phase list
	return 0
}
