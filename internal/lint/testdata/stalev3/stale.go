// Package stalev3 is the stale-suppression fixture for the v3 concurrency
// analyzers: a golife directive that earns its keep next to lockorder and
// sharecap directives that suppress nothing and must be reported.
package stalev3

func work() {}

// fire really leaks a goroutine; the directive below suppresses the
// golife finding and is live.
func fire() {
	//lint:ignore golife deliberate fire-and-forget in this fixture
	go func() { work() }()
}

// calm takes no locks at all, so the lockorder directive is stale.
func calm(a, b int) int {
	//lint:ignore lockorder nothing here acquires any lock
	return a + b
}

// solo spawns nothing, so the sharecap directive is stale.
func solo(xs []int) int {
	total := 0
	//lint:ignore sharecap no closure captures anything here
	for _, x := range xs {
		total += x
	}
	return total
}
