// Package fixture exercises enumswitch: one genuinely non-exhaustive
// switch, and every shape that must stay silent — full coverage, explicit
// default, value-aliased constants, tagless switches, dynamic cases, and
// types with fewer than two constants.
package fixture

// Color is the enum under test.
type Color int

const (
	Red Color = iota
	Green
	Blue
)

// Crimson aliases Red's value: covering one covers the other.
const Crimson = Red

// partial misses Blue and must be flagged.
func partial(c Color) string {
	switch c { // want `switch on Color is not exhaustive: missing Blue; add the cases or an explicit default`
	case Red:
		return "r"
	case Green:
		return "g"
	}
	return ""
}

// full covers every value.
func full(c Color) string {
	switch c {
	case Red:
		return "r"
	case Green, Blue:
		return "gb"
	}
	return ""
}

// aliased covers Red through Crimson: coverage is by value, not name.
func aliased(c Color) string {
	switch c {
	case Crimson, Green, Blue:
		return "x"
	}
	return ""
}

// defaulted handles the future explicitly.
func defaulted(c Color) int {
	switch c {
	case Red:
		return 1
	default:
		return 0
	}
}

// tagless switches are dispatch on conditions, not enum coverage.
func tagless(c Color) int {
	switch {
	case c == Red:
		return 1
	}
	return 0
}

// dynamic cases make coverage undecidable; the analyzer stays quiet.
func dynamic(c, other Color) int {
	switch c {
	case other:
		return 1
	}
	return 0
}

// Plain has a single constant: not an enum, any switch is fine.
type Plain int

const POne Plain = 1

func plain(p Plain) int {
	switch p {
	case POne:
		return 1
	}
	return 0
}
