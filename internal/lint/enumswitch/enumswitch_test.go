package enumswitch_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/enumswitch"
)

// TestFixture proves the missing-case switch is flagged while full
// coverage, value-aliased coverage, explicit defaults, tagless switches,
// dynamic cases and sub-two-constant types all stay silent.
func TestFixture(t *testing.T) {
	analysistest.Run(t, "testdata/fixture", enumswitch.Analyzer)
}
