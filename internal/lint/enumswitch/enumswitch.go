// Package enumswitch checks that a switch over an enum-like type — a
// named basic type from this module with two or more package-scope typed
// constants — either covers every constant or carries an explicit default
// clause. Without one, adding a fourth NetModel (say) compiles everywhere
// and silently falls through the dispatch switches that were written for
// three; the missing-case finding surfaces every such switch the moment
// the constant lands.
//
// Coverage is by constant value, not name: aliased constants (two names,
// one value) count as one case. Switches with any non-constant case
// expression, tagless switches, and type switches are out of scope — the
// check only claims switches it can decide exactly. Types from other
// modules (go/token.Token and friends) are ignored: their constant sets
// are not this repo's contract to police.
package enumswitch

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags non-exhaustive switches over module-local enum types.
var Analyzer = &analysis.Analyzer{
	Name: "enumswitch",
	Doc:  "flags a switch over a module-local enum type (named basic type with >= 2 typed constants) that neither covers every constant value nor has an explicit default clause",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			check(pass, sw)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tagType := pass.TypesInfo.Types[sw.Tag].Type
	named, ok := tagType.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsBoolean != 0 {
		return
	}
	if !sameModule(named.Obj().Pkg().Path(), pass.Pkg.Path()) {
		return
	}
	consts := enumConsts(named)
	if len(consts) < 2 {
		return
	}

	covered := make(map[string]bool)
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			return
		}
		if cc.List == nil {
			return // explicit default: the switch handles the future
		}
		for _, e := range cc.List {
			tv := pass.TypesInfo.Types[e]
			if tv.Value == nil {
				return // dynamic case: coverage is undecidable, stay quiet
			}
			covered[tv.Value.ExactString()] = true
		}
	}

	var missing []string
	seen := make(map[string]bool)
	for _, c := range consts {
		v := c.Val().ExactString()
		if covered[v] || seen[v] {
			continue
		}
		seen[v] = true
		missing = append(missing, c.Name())
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(), "switch on %s is not exhaustive: missing %s; add the cases or an explicit default",
		named.Obj().Name(), strings.Join(missing, ", "))
}

// sameModule compares the first path segment, the module boundary for
// this repo's single-module layout (and for fixture modules alike).
func sameModule(a, b string) bool {
	return firstSegment(a) == firstSegment(b)
}

func firstSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// enumConsts lists the package-scope constants of exactly type n, in
// scope (sorted-name) order.
func enumConsts(n *types.Named) []*types.Const {
	scope := n.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), n) {
			out = append(out, c)
		}
	}
	return out
}
