// Package lockorder detects lock-order deadlock cycles in the global
// lock-acquisition graph. Nodes are canonical sync classes (Server.mu,
// Job.mu — see callgraph.SyncClass); an edge A → B means some code path
// acquires B while holding A, discovered either as a direct nested
// acquisition or through any chain of synchronous calls (a function called
// with A held whose callgraph reaches an acquisition of B). A cycle means
// two goroutines can acquire the same classes in opposite orders and
// deadlock — the exact inversion lockheld's intra-procedural "nested Lock"
// heuristic warns about but cannot prove across functions.
//
// Each cycle is reported once, in the package holding its first witness
// site, with the full inter-procedural witness path for every edge spelled
// out function by function. A one-class cycle is a self-edge: the class is
// re-acquired while already held, a guaranteed self-deadlock when both
// acquisitions hit the same instance (sync.Mutex is not reentrant), and an
// ordering hazard between instances otherwise.
//
// Classes coarsen instances into roles, so a cycle is a proof obligation,
// not a proof: code that nests two distinct Job.mu instances in a globally
// consistent instance order is safe but indistinguishable at this
// granularity — suppress with a reasoned //lint:ignore naming that order.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// Analyzer reports lock-order deadlock cycles with witness paths.
var Analyzer = &analysis.Analyzer{
	Name:       "lockorder",
	Doc:        "detects cycles in the whole-program lock-acquisition graph (lock classes acquired in inconsistent order across call paths) and reports each with its inter-procedural witness path; a cycle means two goroutines can deadlock",
	Run:        run,
	NeedsFacts: true,
}

func run(pass *analysis.Pass) error {
	if pass.Facts == nil {
		return nil
	}
	var cf callgraph.ConcFact
	if !pass.Facts.ObjectFact(callgraph.GlobalKey, &cf) {
		return nil
	}
	// The graph is global but passes are per package: anchor each cycle at
	// its first witness position and report it only in the package whose
	// files contain that position, so the program-wide finding appears
	// exactly once per run.
	for _, cyc := range cf.Cycles {
		if len(cyc.Edges) == 0 || len(cyc.Edges[0].Path) == 0 {
			continue
		}
		anchor := cyc.Edges[0].Path[0].Pos
		if !inFiles(pass.Files, anchor) {
			continue
		}
		pass.Reportf(anchor, "%s", render(pass.Fset, cyc))
	}
	return nil
}

// inFiles reports whether pos falls inside one of the pass's files.
func inFiles(files []*ast.File, pos token.Pos) bool {
	for _, f := range files {
		if pos >= f.FileStart && pos < f.FileEnd {
			return true
		}
	}
	return false
}

// render spells one cycle: the class ring, then each edge's witness path.
func render(fset *token.FileSet, cyc callgraph.LockCycle) string {
	var b strings.Builder
	if len(cyc.Classes) == 1 {
		fmt.Fprintf(&b, "lock-order cycle: %s is re-acquired while already held", callgraph.ShortClass(cyc.Classes[0]))
	} else {
		b.WriteString("lock-order deadlock cycle: ")
		for _, c := range cyc.Classes {
			b.WriteString(callgraph.ShortClass(c))
			b.WriteString(" -> ")
		}
		b.WriteString(callgraph.ShortClass(cyc.Classes[0]))
	}
	b.WriteString("; witness:")
	for i, e := range cyc.Edges {
		fmt.Fprintf(&b, " [%d]", i+1)
		for j, st := range e.Path {
			if j > 0 {
				b.WriteString(",")
			}
			p := fset.Position(st.Pos)
			fmt.Fprintf(&b, " %s (%s:%d) %s", callgraph.ShortClass(st.Func),
				filepath.Base(p.Filename), p.Line, st.Note)
		}
		b.WriteString(";")
	}
	b.WriteString(" fix: acquire these locks in one global order everywhere, or release one before taking the other")
	return b.String()
}
