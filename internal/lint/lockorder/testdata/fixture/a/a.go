// Package a declares the two lock-bearing structures and the helper that
// acquires T's lock — the callee side of the inter-procedural edge the
// fixture's cycle runs through.
package a

import "sync"

type S struct {
	Mu sync.Mutex
	N  int
}

type T struct {
	Mu sync.Mutex
	N  int
}

// Bump acquires T.Mu. Called with S.Mu held (package b), it is the far end
// of the S.Mu -> T.Mu edge.
func Bump(t *T) {
	t.Mu.Lock()
	t.N++
	t.Mu.Unlock()
}
