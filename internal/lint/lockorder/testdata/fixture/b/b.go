// Package b closes the deadlock cycle across the package boundary: AB
// holds S.Mu over a call that reaches an acquisition of T.Mu two hops
// away, BA nests S.Mu directly under T.Mu. Seq shows that sequential
// (non-nested) acquisition creates no edge, and Re demonstrates the
// single-class self-edge report.
package b

import (
	"sync"

	"repro/internal/lint/lockorder/testdata/fixture/a"
)

func AB(s *a.S, t *a.T) {
	s.Mu.Lock()
	a.Bump(t) // want `lock-order deadlock cycle: a\.S\.Mu -> a\.T\.Mu -> a\.S\.Mu; witness: \[1\].*calls a\.Bump while holding a\.S\.Mu.*acquires a\.T\.Mu.*\[2\].*acquires a\.S\.Mu while holding a\.T\.Mu`
	s.Mu.Unlock()
}

func BA(s *a.S, t *a.T) {
	t.Mu.Lock()
	s.Mu.Lock()
	s.N++
	s.Mu.Unlock()
	t.Mu.Unlock()
}

// Seq acquires both locks strictly sequentially: no nesting, no edge.
func Seq(s *a.S, t *a.T) {
	s.Mu.Lock()
	s.N++
	s.Mu.Unlock()
	t.Mu.Lock()
	t.N++
	t.Mu.Unlock()
}

type R struct {
	Mu sync.Mutex
	N  int
}

// Re nests two R.Mu instances: same class, a self-edge — deadlock if both
// ever alias, an ordering hazard between instances otherwise.
func Re(r, other *R) {
	r.Mu.Lock()
	other.Mu.Lock() // want `lock-order cycle: b\.R\.Mu is re-acquired while already held`
	other.N++
	other.Mu.Unlock()
	r.Mu.Unlock()
}
