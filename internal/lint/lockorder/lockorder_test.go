package lockorder_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/lockorder"
)

// TestFixture proves the two-package deadlock cycle (S.Mu held over a call
// chain that acquires T.Mu, T.Mu nested directly over S.Mu) is detected
// and reported with its inter-procedural witness path, that the same-class
// self-edge reports, and that sequential acquisition stays silent.
func TestFixture(t *testing.T) {
	analysistest.RunWithConfig(t, "testdata/fixture", lockorder.Analyzer, callgraph.Config{})
}
