package place

import (
	"testing"
	"time"

	"repro/internal/obsv"
)

// TestObserverConsistency checks the observability contract: the stats
// delivered to OnIteration are exactly the Result.Trace entries, and the
// per-phase durations are positive and consistent with the iteration
// wall time.
func TestObserverConsistency(t *testing.T) {
	nl := testCircuit(t, 200, 4)
	var observed []IterStats
	res, err := Global(nl, Config{
		MaxIter:     40,
		OnIteration: func(s IterStats) { observed = append(observed, s) },
	})
	if err != nil {
		t.Fatalf("Global: %v", err)
	}
	if len(observed) != len(res.Trace) || len(observed) != res.Iterations {
		t.Fatalf("observer saw %d iterations, trace has %d, result says %d",
			len(observed), len(res.Trace), res.Iterations)
	}
	for i := range observed {
		if observed[i] != res.Trace[i] {
			t.Fatalf("iteration %d: observer stats %+v != trace entry %+v",
				i, observed[i], res.Trace[i])
		}
	}
	for i, s := range observed {
		if s.TStep <= 0 {
			t.Fatalf("iteration %d: TStep = %v, want > 0", i, s.TStep)
		}
		for name, d := range map[string]time.Duration{
			"gather": s.TGather, "field": s.TField, "build": s.TBuild,
			"solve-x": s.TSolveX, "solve-y": s.TSolveY,
		} {
			if d <= 0 {
				t.Fatalf("iteration %d: phase %s duration = %v, want > 0", i, name, d)
			}
		}
		// The x/y solves run concurrently, so the sequential phases plus
		// the slower solve bound the step wall time from below.
		solve := s.TSolveX
		if s.TSolveY > solve {
			solve = s.TSolveY
		}
		if sum := s.TWeight + s.TGather + s.TField + s.TBuild + solve; sum > s.TStep {
			t.Fatalf("iteration %d: phase sum %v exceeds step wall time %v", i, sum, s.TStep)
		}
		if s.CGResidX < 0 || s.CGResidY < 0 {
			t.Fatalf("iteration %d: negative residuals %g %g", i, s.CGResidX, s.CGResidY)
		}
	}
	// The run-level phase totals must equal the trace sums.
	var want PhaseTotals
	for _, s := range res.Trace {
		want.add(s)
	}
	if res.Phases != want {
		t.Fatalf("Result.Phases %+v != trace sum %+v", res.Phases, want)
	}
}

func TestNoTraceSuppressesTrace(t *testing.T) {
	nl := testCircuit(t, 150, 5)
	calls := 0
	res, err := Global(nl, Config{
		MaxIter:     25,
		NoTrace:     true,
		OnIteration: func(IterStats) { calls++ },
	})
	if err != nil {
		t.Fatalf("Global: %v", err)
	}
	if len(res.Trace) != 0 {
		t.Fatalf("NoTrace left %d trace entries", len(res.Trace))
	}
	if res.Iterations == 0 || calls != res.Iterations {
		t.Fatalf("aggregates must survive NoTrace: iterations %d, observer calls %d",
			res.Iterations, calls)
	}
	if res.Phases.Step <= 0 {
		t.Fatal("Result.Phases must be filled with NoTrace set")
	}
	if res.HPWL <= 0 {
		t.Fatal("Result.HPWL must be filled with NoTrace set")
	}
}

func TestSpansAndMetricsSinks(t *testing.T) {
	nl := testCircuit(t, 150, 6)
	spans := obsv.NewSpans()
	reg := obsv.NewRegistry()
	res, err := Global(nl, Config{MaxIter: 20, Spans: spans, Metrics: reg})
	if err != nil {
		t.Fatalf("Global: %v", err)
	}
	for _, phase := range []string{
		"place/gather", "place/field", "place/build",
		"place/solve-x", "place/solve-y", "place/step",
	} {
		st := spans.Get(phase)
		if st.Count != int64(res.Iterations) {
			t.Errorf("span %q recorded %d times, want %d", phase, st.Count, res.Iterations)
		}
		if st.Total <= 0 {
			t.Errorf("span %q total = %v, want > 0", phase, st.Total)
		}
	}
	if got := reg.Counter("place_transformations_total", "").Value(); got != int64(res.Iterations) {
		t.Errorf("place_transformations_total = %d, want %d", got, res.Iterations)
	}
	if got := reg.Gauge("place_hpwl", "").Value(); got != res.HPWL {
		t.Errorf("place_hpwl gauge = %g, want %g", got, res.HPWL)
	}
}
