package place

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// TestFixedOnlyNetlist: a design with no movable cells must terminate
// immediately and harmlessly.
func TestFixedOnlyNetlist(t *testing.T) {
	b := netlist.NewBuilder("fixed", geom.NewRegion(2, 1, 10))
	b.AddPad("a", geom.Point{X: 0, Y: 1})
	b.AddPad("c", geom.Point{X: 10, Y: 1})
	b.Connect("n", "a", "c")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Global(nl, Config{MaxIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged && res.Iterations > 5 {
		t.Errorf("fixed-only run misbehaved: %+v", res)
	}
}

// TestSingleMovableCell: one movable cell between pads lands between them.
func TestSingleMovableCell(t *testing.T) {
	b := netlist.NewBuilder("one", geom.NewRegion(2, 1, 10))
	b.AddPad("l", geom.Point{X: 0, Y: 1})
	b.AddPad("r", geom.Point{X: 10, Y: 1})
	b.AddCell("m", 1, 1)
	b.Connect("n1", "l", "m")
	b.Connect("n2", "m", "r")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Global(nl, Config{MaxIter: 30}); err != nil {
		t.Fatal(err)
	}
	x := nl.Cells[2].Pos.X
	if x < 2 || x > 8 {
		t.Errorf("single cell at x=%v, want between the pads", x)
	}
}

// TestDenseUtilization: utilization near 1 still terminates and keeps
// cells inside.
func TestDenseUtilization(t *testing.T) {
	b := netlist.NewBuilder("dense", geom.NewRegion(4, 1, 26))
	names := make([]string, 100)
	for i := range names {
		names[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
		b.AddCell(names[i], 1, 1) // 100 area in a 104 region: util 0.96
	}
	for i := 0; i+1 < len(names); i += 2 {
		b.Connect("n"+names[i], names[i], names[i+1])
	}
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Global(nl, Config{MaxIter: 80}); err != nil {
		t.Fatal(err)
	}
	for i := range nl.Cells {
		if !nl.Region.Outline.Contains(nl.Cells[i].Pos) {
			t.Fatalf("cell %d escaped at util 0.96", i)
		}
	}
}

// TestPullLengthMismatchPanics guards the external force interface.
func TestPullLengthMismatchPanics(t *testing.T) {
	b := netlist.NewBuilder("p", geom.NewRegion(2, 1, 10))
	b.AddCell("a", 1, 1)
	b.AddCell("c", 1, 1)
	b.Connect("n", "a", "c")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := New(nl, Config{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.Pull(make([]geom.Point, 1))
}
