package place

import (
	"math"
	"testing"

	"repro/internal/netgen"
	"repro/internal/netlist"
)

func warmNetlist(seed int64) *netlist.Netlist {
	return netgen.Generate(netgen.Config{
		Name: "warm", Cells: 400, Nets: 520, Rows: 8, Seed: seed,
	})
}

// TestHotEngineMatchesCold runs the full iteration with every reuse
// mechanism on and off. The two engines are not bit-identical — the refill
// sums duplicate matrix entries in insertion order while the cold build sums
// in sorted order (≈1e-16 relative), and the warm start changes the CG
// trajectory below its 1e-6 tolerance — so the comparison is at the level
// the paper cares about: same stopping behavior, same placement quality.
func TestHotEngineMatchesCold(t *testing.T) {
	run := func(cold bool) (Result, *netlist.Netlist) {
		nl := warmNetlist(51)
		cfg := Config{MaxIter: 80, NoReuse: cold, NoWarmStart: cold}
		res, err := Global(nl, cfg)
		if err != nil {
			t.Fatalf("cold=%v: %v", cold, err)
		}
		return res, nl
	}
	coldRes, coldNl := run(true)
	hotRes, hotNl := run(false)

	if hotRes.StopReason != coldRes.StopReason {
		t.Errorf("stop reason: hot %q vs cold %q", hotRes.StopReason, coldRes.StopReason)
	}
	ci, hi := coldRes.Iterations, hotRes.Iterations
	if d := math.Abs(float64(hi - ci)); d > 0.3*float64(ci)+2 {
		t.Errorf("iterations: hot %d vs cold %d", hi, ci)
	}
	if d := math.Abs(hotRes.HPWL - coldRes.HPWL); d > 0.15*coldRes.HPWL {
		t.Errorf("HPWL: hot %g vs cold %g", hotRes.HPWL, coldRes.HPWL)
	}
	if d := math.Abs(hotRes.Overflow - coldRes.Overflow); d > 0.05 {
		t.Errorf("overflow: hot %g vs cold %g", hotRes.Overflow, coldRes.Overflow)
	}

	// The placements themselves should be close cell-by-cell relative to the
	// region diagonal; the engines follow the same trajectory.
	diag := math.Hypot(coldNl.Region.W(), coldNl.Region.H())
	var worst float64
	for ciN := range coldNl.Cells {
		d := coldNl.Cells[ciN].Pos.Sub(hotNl.Cells[ciN].Pos).Norm()
		if d > worst {
			worst = d
		}
	}
	if worst > 0.1*diag {
		t.Errorf("max cell divergence %.3g exceeds 10%% of the region diagonal %.3g", worst, diag)
	}
}

// TestWarmStartAloneKeepsQuality isolates the warm start (reuse off) to make
// sure seeding CG with the previous response does not change where the
// iteration ends up.
func TestWarmStartAloneKeepsQuality(t *testing.T) {
	run := func(noWarm bool) Result {
		nl := warmNetlist(52)
		res, err := Global(nl, Config{MaxIter: 60, NoReuse: true, NoWarmStart: noWarm})
		if err != nil {
			t.Fatalf("noWarm=%v: %v", noWarm, err)
		}
		return res
	}
	base := run(true)
	warm := run(false)
	if d := math.Abs(warm.HPWL - base.HPWL); d > 0.15*base.HPWL {
		t.Errorf("HPWL: warm %g vs zero-guess %g", warm.HPWL, base.HPWL)
	}
	if d := math.Abs(warm.Overflow - base.Overflow); d > 0.05 {
		t.Errorf("overflow: warm %g vs zero-guess %g", warm.Overflow, base.Overflow)
	}
}

// TestDeterministicHotRuns guards the reuse machinery against hidden state:
// two hot runs from the same seed must be bit-identical.
func TestDeterministicHotRuns(t *testing.T) {
	run := func() *netlist.Netlist {
		nl := warmNetlist(53)
		if _, err := Global(nl, Config{MaxIter: 40}); err != nil {
			t.Fatal(err)
		}
		return nl
	}
	a, b := run(), run()
	for ci := range a.Cells {
		if a.Cells[ci].Pos != b.Cells[ci].Pos {
			t.Fatalf("hot runs diverge at cell %d: %v vs %v", ci, a.Cells[ci].Pos, b.Cells[ci].Pos)
		}
	}
}
