// Checkpointing: the full mutable state of the iterative algorithm —
// positions, iteration counter, accumulated forces, net weights, CG warm
// vectors, and the Run loop's progress — serialized to a versioned JSON
// snapshot. Because encoding/json emits float64 in the shortest form that
// round-trips exactly, a Resume from a snapshot continues bit-compatibly:
// Run-to-completion and Run→Checkpoint→Resume→Run produce identical final
// placements (the golden test in checkpoint_test.go enforces this).
//
// The serving layer uses checkpoints to drain in-flight jobs on shutdown;
// kplace -checkpoint/-resume exposes the same mechanism on the CLI.

package place

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// CheckpointVersion is the current snapshot schema version. Decoding
// rejects snapshots from other versions: the state captured here is tied
// to the iteration's internals, so silent cross-version resumes would not
// be bit-compatible.
const CheckpointVersion = 1

// ErrCheckpointVersion reports a snapshot whose version does not match
// CheckpointVersion.
var ErrCheckpointVersion = errors.New("place: unsupported checkpoint version")

// Checkpoint is a serializable snapshot of a Placer mid-run. Point vectors
// are stored as interleaved x,y float64 pairs (length 2·Cells).
type Checkpoint struct {
	Version int `json:"version"`
	// Design, Cells and Nets identify the netlist the snapshot belongs
	// to; Resume refuses a snapshot taken on a different design.
	Design string `json:"design"`
	Cells  int    `json:"cells"`
	Nets   int    `json:"nets"`

	// Iter is the number of completed placement transformations.
	Iter int `json:"iter"`
	// Started records whether Initialize has run; Resume of an unstarted
	// snapshot lets Run initialize from scratch.
	Started bool `json:"started"`

	Positions  []float64 `json:"positions"`         // cell centers, 2·Cells
	Forces     []float64 `json:"forces"`            // accumulated e, 2·Cells
	Pending    []float64 `json:"pending,omitempty"` // queued Pull forces, 2·Cells
	NetWeights []float64 `json:"net_weights"`       // one per net

	// WarmDX/WarmDY are the previous transformation's displacement
	// response, the CG starting guess of the next one.
	WarmDX []float64 `json:"warm_dx,omitempty"`
	WarmDY []float64 `json:"warm_dy,omitempty"`

	// Run-loop progress (see runState).
	DoneStreak int       `json:"done_streak"`
	BestIter   int       `json:"best_iter"`
	BestValid  bool      `json:"best_valid"` // BestOvf is meaningful (it starts at +Inf, which JSON cannot carry)
	BestOvf    float64   `json:"best_ovf"`
	BestSnap   []float64 `json:"best_snap,omitempty"` // best placement seen, 2·Cells
}

func pointsToFloats(ps []geom.Point) []float64 {
	if ps == nil {
		return nil
	}
	out := make([]float64, 2*len(ps))
	for i, p := range ps {
		out[2*i], out[2*i+1] = p.X, p.Y
	}
	return out
}

func floatsToPoints(fs []float64) []geom.Point {
	out := make([]geom.Point, len(fs)/2)
	for i := range out {
		out[i] = geom.Point{X: fs[2*i], Y: fs[2*i+1]}
	}
	return out
}

// Checkpoint captures the placer's current state. The snapshot is a deep
// copy: the placer may keep running afterwards without disturbing it.
func (p *Placer) Checkpoint() *Checkpoint {
	nl := p.nl
	ck := &Checkpoint{
		Version:    CheckpointVersion,
		Design:     nl.Name,
		Cells:      len(nl.Cells),
		Nets:       len(nl.Nets),
		Iter:       p.iter,
		Started:    p.rs.started,
		Positions:  pointsToFloats(nl.Snapshot()),
		Forces:     pointsToFloats(p.forces),
		Pending:    pointsToFloats(p.pending),
		NetWeights: make([]float64, len(nl.Nets)),
		WarmDX:     append([]float64(nil), p.warmDX...),
		WarmDY:     append([]float64(nil), p.warmDY...),
		DoneStreak: p.rs.doneStreak,
		BestIter:   p.rs.bestIter,
		BestSnap:   pointsToFloats(p.rs.bestSnap),
	}
	for i := range nl.Nets {
		ck.NetWeights[i] = nl.Nets[i].Weight
	}
	if !math.IsInf(p.rs.bestOvf, 1) {
		ck.BestValid = true
		ck.BestOvf = p.rs.bestOvf
	}
	return ck
}

// Validate checks the snapshot's internal consistency: version, vector
// lengths, and finiteness. A snapshot that validates can be passed to
// Resume without panicking.
func (c *Checkpoint) Validate() error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("%w: got %d, want %d", ErrCheckpointVersion, c.Version, CheckpointVersion)
	}
	if c.Cells < 0 || c.Nets < 0 || c.Iter < 0 {
		return fmt.Errorf("place: checkpoint with negative counts (cells %d, nets %d, iter %d)", c.Cells, c.Nets, c.Iter)
	}
	want := 2 * c.Cells
	if len(c.Positions) != want {
		return fmt.Errorf("place: checkpoint positions length %d, want %d", len(c.Positions), want)
	}
	if len(c.Forces) != want {
		return fmt.Errorf("place: checkpoint forces length %d, want %d", len(c.Forces), want)
	}
	if len(c.Pending) != 0 && len(c.Pending) != want {
		return fmt.Errorf("place: checkpoint pending length %d, want 0 or %d", len(c.Pending), want)
	}
	if len(c.NetWeights) != c.Nets {
		return fmt.Errorf("place: checkpoint net weights length %d, want %d", len(c.NetWeights), c.Nets)
	}
	if len(c.WarmDX) != len(c.WarmDY) {
		return fmt.Errorf("place: checkpoint warm vectors disagree (%d vs %d)", len(c.WarmDX), len(c.WarmDY))
	}
	if len(c.BestSnap) != 0 && len(c.BestSnap) != want {
		return fmt.Errorf("place: checkpoint best snapshot length %d, want 0 or %d", len(c.BestSnap), want)
	}
	if c.Started && len(c.BestSnap) == 0 {
		return fmt.Errorf("place: started checkpoint without best snapshot")
	}
	for _, vs := range [][]float64{c.Positions, c.Forces, c.Pending, c.NetWeights, c.WarmDX, c.WarmDY, c.BestSnap} {
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("place: checkpoint contains non-finite value")
			}
		}
	}
	if c.BestValid && (math.IsNaN(c.BestOvf) || math.IsInf(c.BestOvf, 0)) {
		return fmt.Errorf("place: checkpoint best overflow non-finite")
	}
	return nil
}

// Encode writes the snapshot as a single JSON object.
//
//lint:ignore ctxflow bounded local write: a checkpoint must land whole or not at all, so it should not be severable mid-stream by a context
func (c *Checkpoint) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c)
}

// DecodeCheckpoint reads and validates a JSON snapshot. Truncated or
// corrupted input returns an error; it never panics (the fuzz target in
// checkpoint_test.go hammers this).
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	dec := json.NewDecoder(r)
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("place: decode checkpoint: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Resume reconstructs a warm placer from a snapshot: net weights and cell
// positions are restored into nl, and the returned placer's Run continues
// from the checkpointed transformation bit-compatibly with a run that was
// never interrupted. The configuration must match the one the snapshot
// was taken under (it is not part of the snapshot); the netlist must be
// the same design.
func Resume(nl *netlist.Netlist, cfg Config, c *Checkpoint) (*Placer, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Design != nl.Name || c.Cells != len(nl.Cells) || c.Nets != len(nl.Nets) {
		return nil, fmt.Errorf("place: checkpoint for %q (%d cells, %d nets) does not match netlist %q (%d cells, %d nets)",
			c.Design, c.Cells, c.Nets, nl.Name, len(nl.Cells), len(nl.Nets))
	}
	for i := range nl.Nets {
		nl.Nets[i].Weight = c.NetWeights[i]
	}
	nl.Restore(floatsToPoints(c.Positions))

	p := New(nl, cfg)
	p.iter = c.Iter
	p.forces = floatsToPoints(c.Forces)
	if len(c.Pending) > 0 {
		p.pending = floatsToPoints(c.Pending)
	}
	if len(c.WarmDX) > 0 {
		p.warmDX = append([]float64(nil), c.WarmDX...)
		p.warmDY = append([]float64(nil), c.WarmDY...)
	}
	p.rs = runState{
		started:    c.Started,
		doneStreak: c.DoneStreak,
		bestOvf:    math.Inf(1),
		bestIter:   c.BestIter,
		bestSnap:   floatsToPoints(c.BestSnap),
	}
	if len(c.BestSnap) == 0 {
		p.rs.bestSnap = nil
	}
	if c.BestValid {
		p.rs.bestOvf = c.BestOvf
	}
	return p, nil
}
