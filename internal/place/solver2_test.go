package place

import (
	"math"
	"testing"

	"repro/internal/density"
	"repro/internal/netlist"
	"repro/internal/sparse"
)

// solver2Config is the v2 solver engine under test: IC0-preconditioned CG
// plus the real-input FFT field solver.
func solver2Config(maxIter int, cold bool) Config {
	return Config{
		MaxIter:     maxIter,
		NoReuse:     cold,
		NoWarmStart: cold,
		CG:          sparse.CGOptions{Precond: sparse.IC0},
		FieldMethod: density.RealFFT,
	}
}

// TestSolverV2HotEngineMatchesCold is TestHotEngineMatchesCold with the v2
// solver engine switched on: reuse (pattern refill + refactored IC0 factor +
// cached real-FFT spectra) must land on the same placement as the cold
// rebuild-everything engine, at the paper's quality level.
func TestSolverV2HotEngineMatchesCold(t *testing.T) {
	run := func(cold bool) (Result, *netlist.Netlist) {
		nl := warmNetlist(54)
		res, err := Global(nl, solver2Config(80, cold))
		if err != nil {
			t.Fatalf("cold=%v: %v", cold, err)
		}
		return res, nl
	}
	coldRes, coldNl := run(true)
	hotRes, hotNl := run(false)

	if hotRes.StopReason != coldRes.StopReason {
		t.Errorf("stop reason: hot %q vs cold %q", hotRes.StopReason, coldRes.StopReason)
	}
	ci, hi := coldRes.Iterations, hotRes.Iterations
	if d := math.Abs(float64(hi - ci)); d > 0.3*float64(ci)+2 {
		t.Errorf("iterations: hot %d vs cold %d", hi, ci)
	}
	if d := math.Abs(hotRes.HPWL - coldRes.HPWL); d > 0.15*coldRes.HPWL {
		t.Errorf("HPWL: hot %g vs cold %g", hotRes.HPWL, coldRes.HPWL)
	}
	if d := math.Abs(hotRes.Overflow - coldRes.Overflow); d > 0.05 {
		t.Errorf("overflow: hot %g vs cold %g", hotRes.Overflow, coldRes.Overflow)
	}
	diag := math.Hypot(coldNl.Region.W(), coldNl.Region.H())
	var worst float64
	for ciN := range coldNl.Cells {
		d := coldNl.Cells[ciN].Pos.Sub(hotNl.Cells[ciN].Pos).Norm()
		if d > worst {
			worst = d
		}
	}
	if worst > 0.1*diag {
		t.Errorf("max cell divergence %.3g exceeds 10%% of the region diagonal %.3g", worst, diag)
	}
}

// TestSolverV2Deterministic: two hot runs with IC0 + real FFT must be
// bit-identical — the factor refactorization and the half-spectrum cache
// introduce no hidden cross-run state.
func TestSolverV2Deterministic(t *testing.T) {
	run := func() *netlist.Netlist {
		nl := warmNetlist(55)
		if _, err := Global(nl, solver2Config(40, false)); err != nil {
			t.Fatal(err)
		}
		return nl
	}
	a, b := run(), run()
	for ci := range a.Cells {
		if a.Cells[ci].Pos != b.Cells[ci].Pos {
			t.Fatalf("v2 hot runs diverge at cell %d: %v vs %v", ci, a.Cells[ci].Pos, b.Cells[ci].Pos)
		}
	}
}

// TestIC0CutsCGIterations compares total CG work across a run. The IC0
// engine must converge each solve in fewer iterations than Jacobi, and the
// placement it reaches must be of the same quality.
func TestIC0CutsCGIterations(t *testing.T) {
	run := func(p sparse.Preconditioner) (total int, res Result) {
		nl := warmNetlist(56)
		res, err := Global(nl, Config{
			MaxIter: 40,
			CG:      sparse.CGOptions{Precond: p},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range res.Trace {
			total += s.CGIterX + s.CGIterY
		}
		return total, res
	}
	jIters, jRes := run(sparse.Jacobi)
	cIters, cRes := run(sparse.IC0)
	if cIters >= jIters {
		t.Errorf("total CG iterations: ic0 %d vs jacobi %d — no reduction", cIters, jIters)
	}
	if d := math.Abs(cRes.HPWL - jRes.HPWL); d > 0.15*jRes.HPWL {
		t.Errorf("HPWL: ic0 %g vs jacobi %g", cRes.HPWL, jRes.HPWL)
	}
	if d := math.Abs(cRes.Overflow - jRes.Overflow); d > 0.05 {
		t.Errorf("overflow: ic0 %g vs jacobi %g", cRes.Overflow, jRes.Overflow)
	}
}

// TestSolvePairPhaseAccounting: the new solve_pair phase must be populated
// on every traced transformation and obey its documented bounds — positive,
// at least the slower axis, and within the whole step.
func TestSolvePairPhaseAccounting(t *testing.T) {
	nl := warmNetlist(57)
	res, err := Global(nl, Config{MaxIter: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace rows")
	}
	for _, s := range res.Trace {
		if s.TSolvePair <= 0 {
			t.Fatalf("iter %d: TSolvePair %v not positive", s.Iter, s.TSolvePair)
		}
		slower := s.TSolveX
		if s.TSolveY > slower {
			slower = s.TSolveY
		}
		if s.TSolvePair < slower {
			t.Fatalf("iter %d: pair wall %v below slower axis %v", s.Iter, s.TSolvePair, slower)
		}
		if s.TSolvePair > s.TStep {
			t.Fatalf("iter %d: pair wall %v exceeds step %v", s.Iter, s.TSolvePair, s.TStep)
		}
	}
	if res.Phases.SolvePair <= 0 || res.Phases.SolvePair > res.Phases.Step {
		t.Fatalf("PhaseTotals.SolvePair %v out of range (step total %v)",
			res.Phases.SolvePair, res.Phases.Step)
	}
}
