// Package place implements the paper's core contribution: iterative
// force-directed global placement (Kraftwerk, §4). Each placement
// transformation computes the density-induced force field of the current
// placement, accumulates it into the constant force vector e, and re-solves
// the quadratic system C·p + d + e = 0. No hard constraint is ever imposed:
// cell spreading, area adaptation, mixed block/cell floorplanning, timing,
// congestion and heat all enter through forces and net weights.
package place

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/check"
	"repro/internal/density"
	"repro/internal/fft"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obsv"
	"repro/internal/qp"
	"repro/internal/sparse"
)

// Config controls the iterative algorithm. The zero value is the paper's
// standard mode.
type Config struct {
	// K is the user parameter of §4.1: each transformation's maximum force
	// increment equals the force of a net with length K·(W+H). 0.2 is the
	// paper's standard mode, 1.0 the fast mode. Defaults to 0.2.
	K float64
	// MaxIter caps the number of placement transformations. Defaults
	// to 300.
	MaxIter int
	// GridBins is the density grid resolution per axis (power of two
	// recommended). 0 picks automatically from the design size.
	GridBins int
	// FieldMethod selects how eq. (9) is evaluated. The default Auto
	// picks the real-input FFT pipeline on power-of-two grids of at
	// least 2048 bins and the direct sum below.
	FieldMethod density.Method
	// NoLinearize disables the [14] net-weight linearization, making the
	// solve purely quadratic.
	NoLinearize bool
	// NetModel selects the net decomposition (default qp.Clique, the
	// paper's model; qp.Star / qp.Hybrid are ablation alternatives).
	NetModel qp.NetModel
	// KeepPlacement starts from the netlist's current positions instead of
	// gathering all cells at the region center. Used by ECO.
	KeepPlacement bool
	// StopSquareFactor is the stopping criterion multiple: iteration ends
	// when no empty square larger than this many average cell areas
	// remains (§4.2). Defaults to 4.
	StopSquareFactor float64
	// EmptyFrac is the demand fraction of average supply below which a
	// density bin counts as empty. Defaults to 0.25.
	EmptyFrac float64
	// CG configures the linear solver.
	CG sparse.CGOptions
	// BeforeTransform, when set, runs before every placement
	// transformation; timing-driven placement updates net weights here.
	BeforeTransform func(iter int, p *Placer)
	// ExtraDemand, when set, returns an additional demand map (length
	// bins²) blended into the density before each transformation;
	// congestion- and heat-driven placement use it.
	ExtraDemand func(g *density.Grid) []float64
	// OnIteration, when set, observes every completed transformation.
	OnIteration func(s IterStats)
	// ForceFloor zeroes force increments whose magnitude is below this
	// fraction of the field maximum. ECO uses it so only the surroundings
	// of a netlist change move, leaving the converged remainder untouched.
	ForceFloor float64
	// NoTrace suppresses Result.Trace accumulation in Run, so long
	// MaxIter runs on large designs don't retain O(iterations) stats the
	// caller never reads. Per-run aggregates (Result.Phases, HPWL,
	// Overflow, Iterations) are still filled, and OnIteration still fires.
	//lint:ignore knobflow library-only memory knob: callers that stream stats set it in code; it never changes the iteration sequence (excluded from Hash) and has no CLI/HTTP surface by design
	NoTrace bool
	// NoWarmStart disables seeding each transformation's CG solve with the
	// previous transformation's displacement response. Cells move slowly
	// between transformations (§4.2), so the warm start normally saves CG
	// iterations at identical tolerance; disable it to reproduce the
	// zero-guess baseline.
	NoWarmStart bool
	// NoReuse disables the iteration-reuse caches: the quadratic system is
	// rebuilt from scratch (fresh sort/merge) and the density field solver
	// re-transforms the Green's-function kernel on every transformation.
	// The cold path is the benchmark baseline for BENCH_step.json; normal
	// runs leave it false.
	NoReuse bool
	// Spans, when set, receives per-phase span recordings
	// ("place/gather", "place/field", "place/build", "place/solve-x",
	// "place/solve-y", "place/solve-pair", "place/weight", "place/step")
	// for every placement transformation. Nil costs nothing.
	Spans *obsv.Spans
	// Metrics, when set, receives the run's counters and gauges
	// (place_transformations_total, place_hpwl, place_overflow,
	// place_step_seconds). Nil costs nothing.
	Metrics *obsv.Registry
}

func (c *Config) setDefaults(nl *netlist.Netlist) {
	if c.K <= 0 {
		c.K = 0.2
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 300
	}
	if c.StopSquareFactor <= 0 {
		c.StopSquareFactor = 4
	}
	if c.EmptyFrac <= 0 {
		c.EmptyFrac = 0.25
	}
	if c.CG.Tol <= 0 {
		// Placement transformations tolerate a loose solve; the next
		// iteration corrects any residual.
		c.CG.Tol = 1e-6
	}
	if c.GridBins <= 0 {
		n := nl.NumMovable()
		b := int(math.Sqrt(float64(n)))
		if c.K > 0.5 {
			// Fast mode trades field resolution for speed.
			b /= 2
		}
		c.GridBins = fft.NextPow2(b)
		if c.GridBins < 8 {
			c.GridBins = 8
		}
		if c.GridBins > 256 {
			c.GridBins = 256
		}
	}
}

// gridDims splits the bin budget across the axes proportionally to the
// region aspect ratio so bins stay roughly square even on wide row regions.
func gridDims(nl *netlist.Netlist, bins int) (nx, ny int) {
	w, h := nl.Region.W(), nl.Region.H()
	aspect := math.Sqrt(w / h)
	nx = fft.NextPow2(int(float64(bins) * aspect))
	ny = fft.NextPow2(int(float64(bins) / aspect))
	clamp := func(v int) int {
		if v < 4 {
			return 4
		}
		if v > 512 {
			return 512
		}
		return v
	}
	return clamp(nx), clamp(ny)
}

// IterStats describes one completed placement transformation. The JSON
// tags define the run-trace (JSONL) schema: one object per
// transformation, durations as integer nanoseconds.
type IterStats struct {
	Iter        int     `json:"iter"`
	HPWL        float64 `json:"hpwl"`
	Overflow    float64 `json:"overflow"`
	EmptySquare float64 `json:"empty_square"` // largest empty square area
	// GapProxy is EmptySquare normalized by the §4.2 stopping threshold
	// (StopSquareFactor × average cell area): a dimensionless
	// distance-to-convergence in the spirit of Coloquinte's LB/UB gap.
	// It falls toward 1 as the run approaches the stopping criterion;
	// ≤1 means the criterion is met.
	GapProxy float64 `json:"gap_proxy"`
	MaxForce float64 `json:"max_force"` // force increment magnitude before accumulation
	CGIterX  int     `json:"cg_iter_x"`
	CGIterY  int     `json:"cg_iter_y"`
	CGResidX float64 `json:"cg_resid_x"` // final relative residual, x solve
	CGResidY float64 `json:"cg_resid_y"` // final relative residual, y solve

	// Per-phase wall times of this transformation. The x and y solves run
	// concurrently, so TSolveX+TSolveY can exceed TStep; TSolvePair is the
	// pair's wall time — the duration the solve phase actually occupies —
	// and the sequential phases plus TSolvePair are bounded by TStep.
	TWeight    time.Duration `json:"t_weight_ns"` // BeforeTransform (net-weight update)
	TGather    time.Duration `json:"t_gather_ns"` // density accumulation (fine + coarse grids)
	TField     time.Duration `json:"t_field_ns"`  // Poisson force-field evaluation
	TBuild     time.Duration `json:"t_build_ns"`  // quadratic system assembly
	TSolveX    time.Duration `json:"t_solve_x_ns"`
	TSolveY    time.Duration `json:"t_solve_y_ns"`
	TSolvePair time.Duration `json:"t_solve_pair_ns"` // wall time of the concurrent x/y solve pair
	TStep      time.Duration `json:"t_step_ns"`       // whole transformation
}

// PhaseTotals accumulates per-phase durations over a run.
type PhaseTotals struct {
	Weight    time.Duration
	Gather    time.Duration
	Field     time.Duration
	Build     time.Duration
	SolveX    time.Duration
	SolveY    time.Duration
	SolvePair time.Duration // wall time of the concurrent solve pairs
	Step      time.Duration // total transformation wall time
}

func (p *PhaseTotals) add(s IterStats) {
	p.Weight += s.TWeight
	p.Gather += s.TGather
	p.Field += s.TField
	p.Build += s.TBuild
	p.SolveX += s.TSolveX
	p.SolveY += s.TSolveY
	p.SolvePair += s.TSolvePair
	p.Step += s.TStep
}

// StopReason says why a run ended. The typed string keeps the value set
// closed: every consumer switches or compares against the Stop* constants
// below, and the JSON form stays the bare string.
type StopReason string

// Stop reasons reported in Result.StopReason. The first three end a run on
// the algorithm's own terms; the last two are externally imposed. Because
// any prefix of the iteration is a valid placement (§4's stopping criterion
// is a quality threshold, not a structural requirement), a cancelled or
// deadline-expired run still leaves the best placement reached so far in
// the netlist and returns a nil error.
const (
	// StopCriterion is the paper's §4.2 empty-square rule.
	StopCriterion StopReason = "criterion"
	// StopStagnation means no coarse-overflow progress for a window; the
	// best placement seen is restored.
	StopStagnation StopReason = "stagnation"
	// StopMaxIter means Config.MaxIter transformations ran.
	StopMaxIter StopReason = "max-iter"
	// StopCancelled means the run's context was cancelled between
	// transformations.
	StopCancelled StopReason = "cancelled"
	// StopDeadline means the run's context deadline expired between
	// transformations.
	StopDeadline StopReason = "deadline"
)

// stopReasonFor maps a context error to its stop reason.
func stopReasonFor(err error) StopReason {
	if errors.Is(err, context.DeadlineExceeded) {
		return StopDeadline
	}
	return StopCancelled
}

// PhaseKeys returns the canonical per-transformation phase names, in
// IterStats declaration order: the t_<phase>_ns trace keys with the t_/_ns
// affixes stripped and underscores dashed. Every surface that breaks a
// transformation down by phase (PhaseTotals, span names, serve events,
// ktracecheck's allowlist) mirrors this list; kvet's phasereg analyzer
// holds them to it.
func PhaseKeys() []string {
	return []string{
		"weight", "gather", "field", "build",
		"solve-x", "solve-y", "solve-pair", "step",
	}
}

// Result summarizes a full run.
type Result struct {
	// Iterations is the total number of placement transformations the
	// placer has performed, including any performed before a checkpoint
	// when the placer was reconstructed by Resume.
	Iterations int
	Converged  bool
	// StopReason is one of the Stop* constants: "criterion" (the paper's
	// empty-square rule), "stagnation" (no coarse-overflow progress for a
	// window), "max-iter", or the externally imposed "cancelled" /
	// "deadline".
	StopReason StopReason
	HPWL       float64
	Overflow   float64
	Runtime    time.Duration
	// Phases breaks the run's time down by transformation phase; filled
	// even with NoTrace set.
	Phases PhaseTotals
	Trace  []IterStats
}

// Placer carries the mutable state of the iterative algorithm.
type Placer struct {
	nl      *netlist.Netlist
	cfg     Config
	grid    *density.Grid
	coarse  *density.Grid // ~6 cells per bin; drives damping and metrics
	forces  []geom.Point  // accumulated additional forces e (one per cell)
	pending []geom.Point  // externally queued forces for the next Step
	iter    int
	met     placeMetrics
	avgArea float64 // cached AvgCellArea (>0); denominator of GapProxy

	// asm caches the quadratic system's sparsity pattern and storage
	// across transformations; nil under Config.NoReuse.
	asm *qp.Assembler
	// warmDX/warmDY hold the previous transformation's displacement
	// response, the CG starting guess of the next one.
	warmDX, warmDY []float64
	// Step scratch, reused across transformations so the steady-state
	// iteration allocates nothing: the force increment, the pre-solve
	// position snapshot, and capDelta's displacement sort buffers.
	inc      []geom.Point
	before   netlist.Placement
	dxs, dys []float64

	// rs is the Run loop's progress state. It lives on the Placer (rather
	// than in Run's frame) so Checkpoint can capture it and Resume can
	// restore it: a resumed run must make the same stop/restore decisions
	// an uninterrupted run would have made.
	rs runState
}

// runState is the mutable state of the Run loop between transformations.
type runState struct {
	// started is set once Initialize has run, so a resumed or re-entered
	// Run continues instead of re-gathering all cells at the center.
	started bool
	// doneStreak counts consecutive iterations meeting the §4.2 criterion
	// (two are required, because the empty-square measure dips transiently
	// while the placement sloshes).
	doneStreak int
	// bestOvf/bestIter/bestSnap track the best (lowest-overflow) placement
	// seen, restored when the run stops on stagnation.
	bestOvf  float64
	bestIter int
	bestSnap netlist.Placement
}

// placeMetrics caches the registry handles resolved once in New; all are
// nil (free no-ops) when Config.Metrics is unset.
type placeMetrics struct {
	steps       *obsv.Counter
	hpwl        *obsv.Gauge
	overflow    *obsv.Gauge
	stepSeconds *obsv.Histogram
}

func newPlaceMetrics(r *obsv.Registry) placeMetrics {
	if r == nil {
		return placeMetrics{}
	}
	return placeMetrics{
		steps:       r.Counter("place_transformations_total", "placement transformations executed"),
		hpwl:        r.Gauge("place_hpwl", "current half-perimeter wire length in layout units"),
		overflow:    r.Gauge("place_overflow", "current density overflow fraction"),
		stepSeconds: r.Histogram("place_step_seconds", "placement transformation wall time in seconds", obsv.SecondsBuckets),
	}
}

// Pull queues additional per-cell forces (indexed like the netlist's cells)
// to be folded into the next placement transformation's force increment.
// Timing-driven placement uses it to convert net-weight increases into the
// equivalent contraction pull on the re-weighted nets' cells.
func (p *Placer) Pull(forces []geom.Point) {
	if len(forces) != len(p.nl.Cells) {
		panic("place: Pull force vector length mismatch")
	}
	if p.pending == nil {
		p.pending = make([]geom.Point, len(p.nl.Cells))
	}
	for ci := range forces {
		if !p.nl.Cells[ci].Fixed {
			p.pending[ci] = p.pending[ci].Add(forces[ci])
		}
	}
}

// New prepares a placer for the netlist. The configuration is captured by
// value; the netlist is mutated in place by Step/Run.
func New(nl *netlist.Netlist, cfg Config) *Placer {
	cfg.setDefaults(nl)
	nx, ny := gridDims(nl, cfg.GridBins)
	// The coarse grid holds ~6 average cells per bin: at that granularity
	// an evenly spread placement has near-zero overflow, so the coarse
	// overflow measures genuine clumping rather than cell quantization.
	avg := nl.AvgCellArea()
	if avg <= 0 {
		avg = 1
	}
	binSide := math.Sqrt(6 * avg / math.Max(nl.Utilization(), 0.1))
	cnx := int(nl.Region.W()/binSide) + 1
	cny := int(nl.Region.H()/binSide) + 1
	if cnx < 2 {
		cnx = 2
	}
	if cny < 2 {
		cny = 2
	}
	p := &Placer{
		nl:      nl,
		cfg:     cfg,
		grid:    density.NewGrid(nl.Region.Outline, nx, ny),
		coarse:  density.NewGrid(nl.Region.Outline, cnx, cny),
		forces:  make([]geom.Point, len(nl.Cells)),
		met:     newPlaceMetrics(cfg.Metrics),
		avgArea: avg,
	}
	p.grid.NoCache = cfg.NoReuse
	if !cfg.NoReuse {
		p.asm = qp.NewAssembler(nl, qp.Options{Linearize: !cfg.NoLinearize, Model: cfg.NetModel})
	}
	return p
}

// system assembles the quadratic system for the netlist's current state,
// through the pattern-caching assembler when iteration reuse is on.
func (p *Placer) system() *qp.System {
	if p.asm != nil {
		return p.asm.Assemble()
	}
	return qp.Build(p.nl, qp.Options{Linearize: !p.cfg.NoLinearize, Model: p.cfg.NetModel})
}

// Netlist returns the netlist being placed.
func (p *Placer) Netlist() *netlist.Netlist { return p.nl }

// Grid exposes the density grid (read-only use intended).
func (p *Placer) Grid() *density.Grid { return p.grid }

// Forces exposes the accumulated additional force vector e.
func (p *Placer) Forces() []geom.Point { return p.forces }

// Initialize implements §4.2 step 1: all movable cells at the region
// center, additional forces zero, followed by the first force-free solve —
// the global optimum of the quadratic wire length, which every subsequent
// placement transformation perturbs. With KeepPlacement set (ECO), the
// existing placement is kept as the equilibrium instead.
func (p *Placer) Initialize() error {
	p.iter = 0
	for i := range p.forces {
		p.forces[i] = geom.Point{}
	}
	p.warmDX, p.warmDY = nil, nil
	p.rs = runState{started: true, bestOvf: math.Inf(1)}
	if p.cfg.KeepPlacement {
		p.rs.bestSnap = p.nl.Snapshot()
		return nil
	}
	c := p.nl.Region.Outline.Center()
	for i := range p.nl.Cells {
		if !p.nl.Cells[i].Fixed {
			p.nl.Cells[i].Pos = c
		}
	}
	sys := p.system()
	_, err := sys.Solve(nil, p.cfg.CG)
	p.rs.bestSnap = p.nl.Snapshot()
	return err
}

// Step performs one placement transformation (§4.1): determine the density
// forces of the current placement, accumulate them into e, and solve the
// extended quadratic system.
func (p *Placer) Step() (IterStats, error) {
	nl := p.nl
	cfg := &p.cfg
	stepStart := obsv.StartTimer()
	var tWeight, tGather, tField, tBuild time.Duration
	if cfg.BeforeTransform != nil {
		cfg.BeforeTransform(p.iter, p)
		tWeight = stepStart.Elapsed()
	}

	// Density of the current placement (with any injected extra demand).
	mark := obsv.StartTimer()
	if cfg.ExtraDemand != nil {
		p.grid.SetExtra(cfg.ExtraDemand(p.grid))
	}
	p.grid.Accumulate(nl)
	tGather = mark.Elapsed()
	check.DensityBalanced("place/step grid", p.grid, 1e-6)

	mark = obsv.StartTimer()
	field := density.ComputeField(p.grid, cfg.FieldMethod)
	tField = mark.Elapsed()
	check.Finite("place/step field FX", field.FX)
	check.Finite("place/step field FY", field.FY)

	// Assemble the (possibly re-linearized) quadratic system; the force
	// normalization depends on its stiffness.
	mark = obsv.StartTimer()
	sys := p.system()
	tBuild = mark.Elapsed()
	check.Symmetric("place/step C", sys.C, 1e-8)
	check.SPDHint("place/step C", sys.C, 1e-8)

	// Force increment normalization (§4.1): the strongest field force is
	// scaled to the pull of a net of length K·(W+H). Two refinements over
	// a literal reading: the maximum is taken over the whole field (at the
	// all-cells-at-one-point start the field at the cells themselves is
	// nearly zero, and normalizing by it would amplify the common-mode
	// translation instead of spreading the blob), and the "net" strength
	// is the current mean spring stiffness, so a force increment displaces
	// an average cell by about K·(W+H) regardless of how the linearization
	// has re-weighted the springs.
	// Damping: the per-transformation renormalization alone makes the
	// iteration a driven oscillator (full-strength kicks continue after
	// the density has flattened). Attenuate by the coarse-grid overflow —
	// the fraction of cell area still genuinely clumped — so kicks decay
	// to near zero as the distribution evens out.
	mark = obsv.StartTimer()
	p.coarse.Accumulate(nl)
	tGather += mark.Elapsed()
	atten := math.Min(1, p.coarse.Overflow()/0.2)
	if atten < 0.02 {
		atten = 0.02
	}

	maxMag := field.MaxMagnitude()
	kick := kickRef * math.Sqrt(cfg.K/0.2)
	targetMax := kick * (nl.Region.W() + nl.Region.H()) * meanStiffness(sys)
	scale := 0.0
	if maxMag > 0 {
		scale = atten * targetMax / maxMag
	}
	if len(p.inc) != len(nl.Cells) {
		p.inc = make([]geom.Point, len(nl.Cells))
	}
	inc := p.inc
	for ci := range inc {
		inc[ci] = geom.Point{}
	}
	floor := cfg.ForceFloor * maxMag
	for ci := range nl.Cells {
		if nl.Cells[ci].Fixed {
			continue
		}
		f := field.At(nl.Cells[ci].Pos)
		if f.Norm() < floor {
			continue
		}
		inc[ci] = f.Scale(scale)
		p.forces[ci] = p.forces[ci].Add(inc[ci]) // accumulated e, for observers
	}

	// Fold in externally injected forces (timing-driven net-weight pulls,
	// queued via Pull), normalized to the same per-iteration budget as the
	// density kick so compounding net weights cannot blow the iteration up.
	if p.pending != nil {
		var maxPull float64
		for ci := range p.pending {
			if m := p.pending[ci].Norm(); m > maxPull {
				maxPull = m
			}
		}
		pullScale := 1.0
		if maxPull > targetMax && targetMax > 0 {
			pullScale = targetMax / maxPull
		}
		for ci := range inc {
			f := p.pending[ci].Scale(pullScale)
			inc[ci] = inc[ci].Add(f)
			p.forces[ci] = p.forces[ci].Add(f)
		}
		p.pending = nil
	}

	// Apply the transformation: starting from the previous equilibrium,
	// growing e by the increment moves the solution of C·p + d + e = 0 by
	// exactly δ = C⁻¹·inc (eq. 3, incremental form). Cells move slowly
	// between transformations, so the previous transformation's displacement
	// response is a good CG starting guess for this one; SolveDeltaFrom
	// overwrites the guess with the new response, priming the next iteration.
	p.before = nl.SnapshotInto(p.before)
	before := p.before
	var res qp.SolveResult
	var err error
	if cfg.NoWarmStart {
		res, err = sys.SolveDelta(inc, cfg.CG)
	} else {
		if len(p.warmDX) != sys.N() {
			p.warmDX = make([]float64, sys.N())
			p.warmDY = make([]float64, sys.N())
		}
		res, err = sys.SolveDeltaFrom(inc, p.warmDX, p.warmDY, cfg.CG)
	}

	// Per-axis trust region: K also bounds how far one transformation may
	// move any cell (K·W horizontally, K·H vertically, saturating at 45 %
	// of the axis so even K=1 cannot slam the design wall-to-wall). The
	// translation (common) mode of C is nearly unconstrained — only pads
	// and anchors resist it — so an almost-uniform force (e.g. the
	// interpolation residue of a single-bin blob at startup) would
	// otherwise throw the whole design across the chip in one step; on
	// strongly non-square regions the short axis needs its own bound.
	kCap := math.Min(cfg.K, 0.45)
	p.dxs, p.dys = capDelta(nl, before, kCap*nl.Region.W(), kCap*nl.Region.H(), p.dxs, p.dys)
	if err != nil {
		// An unconverged CG still yields a usable iterate; report but
		// continue (placement quality, not solver perfection, is the goal).
		err = fmt.Errorf("place: iteration %d: %w", p.iter, err)
	}

	// Keep cells inside the placement area; the supply model pushes them
	// back anyway, clamping merely speeds that up and keeps metrics sane.
	out := nl.Region.Outline
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Fixed {
			continue
		}
		c.Pos = out.ClampCenter(c.Pos, math.Min(c.W, out.W()), math.Min(c.H, out.H()))
	}

	check.CellsFinite("place/step positions", nl)
	mark = obsv.StartTimer()
	p.grid.Accumulate(nl) // refresh density for stats/stopping
	tGather += mark.Elapsed()
	stats := IterStats{
		Iter:        p.iter,
		HPWL:        nl.HPWL(),
		Overflow:    p.grid.Overflow(),
		EmptySquare: p.grid.LargestEmptySquare(cfg.EmptyFrac),
		MaxForce:    targetMax,
		CGIterX:     res.X.Iterations,
		CGIterY:     res.Y.Iterations,
		CGResidX:    res.X.Residual,
		CGResidY:    res.Y.Residual,
		TWeight:     tWeight,
		TGather:     tGather,
		TField:      tField,
		TBuild:      tBuild,
		TSolveX:     res.X.Elapsed,
		TSolveY:     res.Y.Elapsed,
		TSolvePair:  res.PairWall,
	}
	stats.GapProxy = stats.EmptySquare / (cfg.StopSquareFactor * p.avgArea)
	stats.TStep = stepStart.Elapsed()
	p.iter++
	if sp := cfg.Spans; sp != nil {
		sp.Record("place/weight", stats.TWeight)
		sp.Record("place/gather", stats.TGather)
		sp.Record("place/field", stats.TField)
		sp.Record("place/build", stats.TBuild)
		sp.Record("place/solve-x", stats.TSolveX)
		sp.Record("place/solve-y", stats.TSolveY)
		sp.Record("place/solve-pair", stats.TSolvePair)
		sp.Record("place/step", stats.TStep)
	}
	p.met.steps.Inc()
	p.met.hpwl.Set(stats.HPWL)
	p.met.overflow.Set(stats.Overflow)
	p.met.stepSeconds.Observe(stats.TStep.Seconds())
	if cfg.OnIteration != nil {
		cfg.OnIteration(stats)
	}
	return stats, err
}

// capDelta bounds this iteration's displacements to ~maxDX/maxDY per axis.
// The displacement field is split into its translation (mean) and
// differential parts, which fail in different ways: the translation mode is
// almost unresisted by C and can saturate (whole-design slam), while the
// differential part carries the spreading signal but can contain huge
// responses from weakly-connected outlier cells. The mean is clipped once;
// differential components are clipped per cell, so an outlier cannot crush
// everyone else's movement and a saturated translation cannot erase the
// spreading.
// The caller passes (and re-receives) the two sort buffers so the
// steady-state iteration reuses them instead of allocating per call.
func capDelta(nl *netlist.Netlist, before netlist.Placement, maxDX, maxDY float64, dxs, dys []float64) ([]float64, []float64) {
	movable := 0
	for ci := range nl.Cells {
		if !nl.Cells[ci].Fixed {
			movable++
		}
	}
	if cap(dxs) < movable {
		dxs = make([]float64, movable)
		dys = make([]float64, movable)
	}
	dxs, dys = dxs[:movable], dys[:movable]
	k := 0
	for ci := range nl.Cells {
		if nl.Cells[ci].Fixed {
			continue
		}
		d := nl.Cells[ci].Pos.Sub(before[ci])
		dxs[k] = d.X
		dys[k] = d.Y
		k++
	}
	if len(dxs) == 0 {
		return dxs, dys
	}
	// The translation estimate must be robust: a single near-floating cell
	// (tiny anchor stiffness) can have a displacement many orders of
	// magnitude above everyone else, and a polluted mean would cancel the
	// whole iteration after clipping. The median ignores such outliers.
	sort.Float64s(dxs)
	sort.Float64s(dys)
	med := geom.Point{X: dxs[len(dxs)/2], Y: dys[len(dys)/2]}

	shift := geom.Point{X: clip(med.X, maxDX), Y: clip(med.Y, maxDY)}
	for ci := range nl.Cells {
		if nl.Cells[ci].Fixed {
			continue
		}
		d := nl.Cells[ci].Pos.Sub(before[ci]).Sub(med)
		nl.Cells[ci].Pos = geom.Point{
			X: before[ci].X + shift.X + clip(d.X, maxDX),
			Y: before[ci].Y + shift.Y + clip(d.Y, maxDY),
		}
	}
	return dxs, dys
}

// clip bounds v to [-lim, lim].
func clip(v, lim float64) float64 {
	if v > lim {
		return lim
	}
	if v < -lim {
		return -lim
	}
	return v
}

// meanStiffness returns the average diagonal of C over movable cells — the
// mean total spring constant a force increment must work against.
func meanStiffness(sys *qp.System) float64 {
	n := sys.N()
	if n == 0 {
		return 1
	}
	var s float64
	for _, d := range sys.Matrix().Diag() {
		s += d
	}
	return s / float64(n)
}

// Done implements the §4.2 stopping criterion: no empty square larger than
// StopSquareFactor times the average cell area remains.
func (p *Placer) Done(last IterStats) bool {
	avg := p.nl.AvgCellArea()
	if avg <= 0 {
		return true
	}
	return last.EmptySquare <= p.cfg.StopSquareFactor*avg
}

// Run iterates Step until the stopping criterion, MaxIter, or ctx is done,
// checking ctx between transformations (step granularity). On the first
// call it runs Initialize; a placer reconstructed by Resume — or a placer
// whose previous Run was cancelled — continues from where it stopped, so
// Run/cancel/Run and an uninterrupted Run walk the identical iteration
// sequence.
//
// Cancellation is not an error: because every intermediate placement is
// usable, a cancelled or deadline-expired run returns the best placement
// reached so far with StopReason set to StopCancelled or StopDeadline and
// a nil error. Solver non-convergence is likewise tolerated; only
// structural errors (a solve that made no progress at all) abort.
func (p *Placer) Run(ctx context.Context) (Result, error) {
	start := obsv.StartTimer()
	var res Result
	if !p.rs.started {
		if err := p.Initialize(); err != nil {
			return res, fmt.Errorf("place: initial solve: %w", err)
		}
	}
	res.Iterations = p.iter
	res.HPWL = p.nl.HPWL()
	// Fast mode gives up on a stalled distribution much sooner.
	stagnationWindow := 30
	if p.cfg.K > 0.5 {
		stagnationWindow = 12
	}
	for p.iter < p.cfg.MaxIter {
		if err := ctx.Err(); err != nil {
			res.StopReason = stopReasonFor(err)
			break
		}
		it := p.iter
		stats, err := p.Step()
		if err != nil && stats.CGIterX == 0 && stats.CGIterY == 0 {
			// A solve that made no progress at all is fatal.
			return res, err
		}
		if !p.cfg.NoTrace {
			res.Trace = append(res.Trace, stats)
		}
		res.Phases.add(stats)
		res.Iterations = p.iter
		res.HPWL = stats.HPWL
		res.Overflow = stats.Overflow
		if stats.Overflow < p.rs.bestOvf*0.99 {
			p.rs.bestOvf = stats.Overflow
			p.rs.bestIter = it
			p.rs.bestSnap = p.nl.Snapshot()
		}
		// The empty-square measure can dip transiently while the placement
		// still sloshes; require the criterion on consecutive iterations.
		if p.Done(stats) {
			p.rs.doneStreak++
			if p.rs.doneStreak >= 2 {
				res.Converged = true
				res.StopReason = StopCriterion
				break
			}
		} else {
			p.rs.doneStreak = 0
		}
		// Secondary stop: the distribution stopped improving; keep the best
		// placement seen instead of whatever the last slosh produced.
		if it-p.rs.bestIter >= stagnationWindow {
			p.nl.Restore(p.rs.bestSnap)
			res.Converged = true
			res.StopReason = StopStagnation
			res.HPWL = p.nl.HPWL()
			res.Overflow = p.rs.bestOvf
			break
		}
	}
	if res.StopReason == "" {
		res.StopReason = StopMaxIter
	}
	res.Runtime = start.Elapsed()
	return res, nil
}

// Global is the convenience entry point: place nl with cfg and return the
// run summary.
func Global(nl *netlist.Netlist, cfg Config) (Result, error) {
	return New(nl, cfg).Run(context.Background())
}

// GlobalContext is Global with step-granular cancellation: on ctx
// cancellation or deadline the best placement so far is kept in nl and the
// result reports StopCancelled/StopDeadline instead of an error.
func GlobalContext(ctx context.Context, nl *netlist.Netlist, cfg Config) (Result, error) {
	return New(nl, cfg).Run(ctx)
}

// kickRef calibrates the force increment: the effective per-iteration kick
// is kickRef·√(K/0.2), so the paper's standard mode (K=0.2) sits at the
// wire-length-quality knee of the stable (damped) regime and the fast mode
// (K=1.0) roughly doubles the kick. Both the value and the sublinear K
// mapping were fixed by convergence/quality sweeps over the synthetic
// suite (kicks ≥ ~0.03 slosh indefinitely; kicks ≤ ~0.002 converge slowly
// with no further quality gain).
const kickRef = 0.003
