// Run metadata: a self-describing header for JSONL run traces. A trace
// file that begins with a RunMeta record can be interpreted years later
// without the command line that produced it — the design size, the seed,
// and a hash of every algorithmic knob travel with the data.
package place

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/netlist"
)

// Hash digests the algorithmic configuration — every knob that changes
// the iteration sequence, and none of the observability hooks that don't
// (Spans, Metrics, OnIteration, NoTrace). Two runs with equal hashes on
// equal inputs walk the same iterations. The digest is FNV-1a over a
// canonical text rendering, so it is stable across processes and
// platforms but NOT across releases that add knobs; it identifies
// configurations, it does not authenticate them.
func (c Config) Hash() string {
	// Hash the knobs as given: GridBins=0 ("automatic") hashes as 0,
	// which is correct — the resolved resolution follows from the
	// netlist, and NewRunMeta resolves defaults before hashing so
	// recorded hashes describe the run as executed.
	h := fnv.New64a()
	put := func(format string, args ...any) {
		fmt.Fprintf(h, format, args...)
		h.Write([]byte{0}) // field separator: ("ab","c") ≠ ("a","bc")
	}
	put("k=%g", c.K)
	put("maxiter=%d", c.MaxIter)
	put("gridbins=%d", c.GridBins)
	put("field=%d", int(c.FieldMethod))
	put("nolin=%t", c.NoLinearize)
	put("netmodel=%d", int(c.NetModel))
	put("keep=%t", c.KeepPlacement)
	put("stopsq=%g", c.StopSquareFactor)
	put("emptyfrac=%g", c.EmptyFrac)
	put("cgtol=%g", c.CG.Tol)
	put("cgmaxiter=%d", c.CG.MaxIter)
	put("precond=%d", int(c.CG.Precond))
	put("forcefloor=%g", c.ForceFloor)
	put("nowarm=%t", c.NoWarmStart)
	put("noreuse=%t", c.NoReuse)
	put("beforetransform=%t", c.BeforeTransform != nil)
	put("extrademand=%t", c.ExtraDemand != nil)
	return fmt.Sprintf("%016x", h.Sum64())
}

// RunMeta is the header record of a JSONL run trace. Type distinguishes
// it from IterStats records (which have no "type" key), so line-oriented
// consumers can dispatch on the first byte-cheap field.
type RunMeta struct {
	Type       string  `json:"type"` // always "meta"
	Design     string  `json:"design"`
	Cells      int     `json:"cells"`
	Nets       int     `json:"nets"`
	Movable    int     `json:"movable"`
	Seed       int64   `json:"seed"`
	K          float64 `json:"k"`
	MaxIter    int     `json:"max_iter"`
	ConfigHash string  `json:"config_hash"`
	// Phases is the canonical phase-key list (PhaseKeys) at record time,
	// making traces self-describing: a checker can demand exactly these
	// t_<phase>_ns keys without compiling against this package's version.
	Phases []string  `json:"phases"`
	Start  time.Time `json:"start"`
}

// NewRunMeta builds the header for a run of cfg on nl. The config is
// resolved to its defaults first so the recorded K/MaxIter (and the
// hash) describe what will actually run, not what was typed.
func NewRunMeta(nl *netlist.Netlist, cfg Config, seed int64, start time.Time) RunMeta {
	cfg.setDefaults(nl)
	return RunMeta{
		Type:       "meta",
		Design:     nl.Name,
		Cells:      len(nl.Cells),
		Nets:       len(nl.Nets),
		Movable:    nl.NumMovable(),
		Seed:       seed,
		K:          cfg.K,
		MaxIter:    cfg.MaxIter,
		ConfigHash: cfg.Hash(),
		Phases:     PhaseKeys(),
		Start:      start,
	}
}
