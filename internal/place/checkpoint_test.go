package place

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/netgen"
	"repro/internal/netlist"
)

func checkpointCircuit() *netlist.Netlist {
	return netgen.Generate(netgen.Config{
		Name: "ckpt", Cells: 400, Nets: 520, Rows: 8, Seed: 7,
	})
}

// TestCheckpointResumeBitIdentical is the golden determinism test: running
// to completion and running to iteration k, checkpointing through an
// encode/decode round trip, resuming on a fresh copy of the netlist, and
// finishing must produce bit-identical final positions and HPWL. This
// leans on the engine's insertion-order-stable refill guarantees (PR 2):
// every source of nondeterminism in the loop would show up here.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	cfg := Config{MaxIter: 60}

	// Reference: one uninterrupted run.
	ref := checkpointCircuit()
	refRes, err := New(ref, cfg).Run(context.Background())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Interrupted: cancel after k transformations, checkpoint, resume.
	const k = 17
	interrupted := checkpointCircuit()
	ctx, cancel := context.WithCancel(context.Background())
	cfgStop := cfg
	cfgStop.OnIteration = func(s IterStats) {
		if s.Iter == k-1 {
			cancel()
		}
	}
	p := New(interrupted, cfgStop)
	partial, err := p.Run(ctx)
	if err != nil {
		t.Fatalf("interrupted run: %v", err)
	}
	if partial.StopReason != StopCancelled {
		t.Fatalf("interrupted run stopped on %q, want %q", partial.StopReason, StopCancelled)
	}
	if partial.Iterations != k {
		t.Fatalf("interrupted run did %d iterations, want %d", partial.Iterations, k)
	}

	var buf bytes.Buffer
	if err := p.Checkpoint().Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	ck, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	resumedNl := checkpointCircuit()
	resumed, err := Resume(resumedNl, cfg, ck)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	resRes, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	if resRes.StopReason != refRes.StopReason {
		t.Errorf("stop reason: resumed %q vs reference %q", resRes.StopReason, refRes.StopReason)
	}
	if resRes.Iterations != refRes.Iterations {
		t.Errorf("iterations: resumed %d vs reference %d", resRes.Iterations, refRes.Iterations)
	}
	if resRes.HPWL != refRes.HPWL {
		t.Errorf("HPWL: resumed %v vs reference %v (diff %g)", resRes.HPWL, refRes.HPWL, resRes.HPWL-refRes.HPWL)
	}
	for i := range ref.Cells {
		a, b := ref.Cells[i].Pos, resumedNl.Cells[i].Pos
		if a != b {
			t.Fatalf("cell %d: reference %v vs resumed %v — positions not bit-identical", i, a, b)
		}
	}
}

// TestCheckpointIsDeepCopy: mutating the placer after Checkpoint must not
// disturb the snapshot.
func TestCheckpointIsDeepCopy(t *testing.T) {
	nl := checkpointCircuit()
	p := New(nl, Config{MaxIter: 5})
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ck := p.Checkpoint()
	posBefore := append([]float64(nil), ck.Positions...)
	if _, err := p.Step(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(posBefore, ck.Positions) {
		t.Fatal("Checkpoint positions changed when the placer kept running")
	}
}

func TestCheckpointRoundTripExact(t *testing.T) {
	nl := checkpointCircuit()
	p := New(nl, Config{MaxIter: 8})
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ck := p.Checkpoint()
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Fatal("checkpoint did not survive an encode/decode round trip exactly")
	}
}

func TestResumeRejectsMismatchedNetlist(t *testing.T) {
	nl := checkpointCircuit()
	p := New(nl, Config{MaxIter: 3})
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ck := p.Checkpoint()

	other := netgen.Generate(netgen.Config{Name: "other", Cells: 50, Nets: 60, Rows: 4, Seed: 1})
	if _, err := Resume(other, Config{}, ck); err == nil {
		t.Fatal("Resume accepted a checkpoint from a different design")
	}

	ck.Version = CheckpointVersion + 1
	if _, err := Resume(nl, Config{}, ck); err == nil {
		t.Fatal("Resume accepted a checkpoint with a wrong version")
	}
}

// TestDecodeCheckpointCorrupt: truncated and corrupted snapshots must
// error, never panic, and never produce a checkpoint that later panics.
func TestDecodeCheckpointCorrupt(t *testing.T) {
	nl := checkpointCircuit()
	p := New(nl, Config{MaxIter: 3})
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Checkpoint().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	valid := bytes.TrimSpace(buf.Bytes()) // drop the encoder's trailing newline

	for _, cut := range []int{0, 1, 10, len(valid) / 2, len(valid) - 1} {
		if _, err := DecodeCheckpoint(bytes.NewReader(valid[:cut])); err == nil {
			t.Errorf("truncation at %d decoded without error", cut)
		}
	}
	corrupt := bytes.Replace(valid, []byte(`"positions":[`), []byte(`"positions":[1e999,`), 1)
	if _, err := DecodeCheckpoint(bytes.NewReader(corrupt)); err == nil {
		t.Error("snapshot with an out-of-range float decoded without error")
	}
	n := len(nl.Cells)
	short := bytes.Replace(valid,
		[]byte(fmt.Sprintf(`"cells":%d`, n)),
		[]byte(fmt.Sprintf(`"cells":%d`, n+1)), 1)
	if bytes.Equal(short, valid) {
		t.Fatal("cell-count field not found in encoding")
	}
	if _, err := DecodeCheckpoint(bytes.NewReader(short)); err == nil {
		t.Error("snapshot with inconsistent vector lengths decoded without error")
	}
}

// FuzzCheckpointDecode hammers the decode path: arbitrary bytes must
// either fail cleanly or yield a checkpoint that validates and survives a
// re-encode round trip. A panic anywhere fails the fuzz run.
func FuzzCheckpointDecode(f *testing.F) {
	nl := checkpointCircuit()
	p := New(nl, Config{MaxIter: 3})
	if _, err := p.Run(context.Background()); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Checkpoint().Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"version":1,"cells":0,"nets":0}`))
	f.Add([]byte(`{"version":1,"cells":-1}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := ck.Encode(&out); err != nil {
			t.Fatalf("valid checkpoint failed to re-encode: %v", err)
		}
		again, err := DecodeCheckpoint(&out)
		if err != nil {
			t.Fatalf("re-encoded checkpoint failed to decode: %v", err)
		}
		if again.Iter != ck.Iter || again.Cells != ck.Cells || len(again.Positions) != len(ck.Positions) {
			t.Fatal("checkpoint changed across a re-encode round trip")
		}
		// NaN components compare unequal, but Validate guarantees
		// finiteness, so exact equality is the right check here.
		if !reflect.DeepEqual(ck, again) {
			t.Fatal("checkpoint not bit-stable across re-encode")
		}
	})
}

// TestRunCancelled: cancelling between transformations stops the run with
// StopCancelled, a nil error, and a usable partial placement.
func TestRunCancelled(t *testing.T) {
	nl := checkpointCircuit()
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{MaxIter: 200, OnIteration: func(s IterStats) {
		if s.Iter == 2 {
			cancel()
		}
	}}
	res, err := New(nl, cfg).Run(ctx)
	if err != nil {
		t.Fatalf("cancelled run returned error: %v", err)
	}
	if res.StopReason != StopCancelled {
		t.Fatalf("StopReason = %q, want %q", res.StopReason, StopCancelled)
	}
	if res.Converged {
		t.Error("cancelled run reported Converged")
	}
	if res.Iterations != 3 {
		t.Errorf("Iterations = %d, want 3 (cancel observed before the 4th step)", res.Iterations)
	}
	assertLegalPartial(t, nl, res)
}

// TestRunDeadline: an expired deadline yields StopDeadline — distinctly
// from cancellation — with the placement reached so far and no error.
func TestRunDeadline(t *testing.T) {
	nl := checkpointCircuit()
	ctx, cancel := context.WithTimeout(context.Background(), 1)
	defer cancel()
	<-ctx.Done() // deterministically expired
	res, err := New(nl, Config{MaxIter: 200}).Run(ctx)
	if err != nil {
		t.Fatalf("deadline run returned error: %v", err)
	}
	if res.StopReason != StopDeadline {
		t.Fatalf("StopReason = %q, want %q", res.StopReason, StopDeadline)
	}
	if res.Iterations != 0 {
		t.Errorf("Iterations = %d, want 0 for a pre-expired deadline", res.Iterations)
	}
	// Initialize still ran: the force-free quadratic optimum is itself a
	// valid (if unspread) placement.
	assertLegalPartial(t, nl, res)
}

// assertLegalPartial checks the graceful-degradation contract: whatever
// iteration the run stopped at, every cell sits at a finite position
// inside the region and the reported HPWL is finite.
func assertLegalPartial(t *testing.T, nl *netlist.Netlist, res Result) {
	t.Helper()
	if math.IsNaN(res.HPWL) || math.IsInf(res.HPWL, 0) {
		t.Fatalf("partial result HPWL = %v", res.HPWL)
	}
	out := nl.Region.Outline
	for i := range nl.Cells {
		c := nl.Cells[i]
		if c.Fixed {
			continue
		}
		if math.IsNaN(c.Pos.X) || math.IsNaN(c.Pos.Y) {
			t.Fatalf("cell %d at NaN position", i)
		}
		if !out.Contains(c.Pos) {
			t.Fatalf("cell %d at %v outside region", i, c.Pos)
		}
	}
}
