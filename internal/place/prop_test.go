package place

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netgen"
)

// TestGlobalInvariantsProperty: over random circuits, a global placement
// run always terminates, keeps every cell inside the region, never
// produces NaN coordinates, and never moves fixed cells.
func TestGlobalInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("many placement runs")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := netgen.Generate(netgen.Config{
			Name:  "prop",
			Cells: 30 + rng.Intn(150),
			Nets:  40 + rng.Intn(200),
			Rows:  2 + rng.Intn(10),
			Seed:  seed,
		})
		fixed := nl.Snapshot()
		res, err := Global(nl, Config{MaxIter: 60})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.Iterations == 0 {
			return false
		}
		out := nl.Region.Outline
		for ci := range nl.Cells {
			c := &nl.Cells[ci]
			if math.IsNaN(c.Pos.X) || math.IsNaN(c.Pos.Y) {
				t.Logf("seed %d: NaN", seed)
				return false
			}
			if c.Fixed {
				if c.Pos != fixed[ci] {
					t.Logf("seed %d: fixed cell moved", seed)
					return false
				}
				continue
			}
			if !out.Contains(c.Pos) {
				t.Logf("seed %d: cell %d outside at %v", seed, ci, c.Pos)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestDeterministicRuns: identical configurations produce identical
// placements (the algorithm has no hidden randomness).
func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		nl := netgen.Generate(netgen.Config{Name: "det", Cells: 120, Nets: 160, Rows: 6, Seed: 77})
		if _, err := Global(nl, Config{MaxIter: 40}); err != nil {
			t.Fatal(err)
		}
		return nl.HPWL()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}
