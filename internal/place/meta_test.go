package place

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/netgen"
	"repro/internal/sparse"
)

func TestConfigHashStability(t *testing.T) {
	a := Config{K: 0.2, MaxIter: 100}
	b := Config{K: 0.2, MaxIter: 100}
	if a.Hash() != b.Hash() {
		t.Errorf("equal configs hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	if len(a.Hash()) != 16 {
		t.Errorf("hash %q is not 16 hex digits", a.Hash())
	}

	// Every algorithmic knob must move the hash; observability must not.
	variants := []Config{
		{K: 0.3, MaxIter: 100},
		{K: 0.2, MaxIter: 101},
		{K: 0.2, MaxIter: 100, GridBins: 64},
		{K: 0.2, MaxIter: 100, NoLinearize: true},
		{K: 0.2, MaxIter: 100, StopSquareFactor: 5},
		{K: 0.2, MaxIter: 100, CG: sparse.CGOptions{Tol: 1e-4}},
		{K: 0.2, MaxIter: 100, CG: sparse.CGOptions{Precond: sparse.IC0}},
		{K: 0.2, MaxIter: 100, NoWarmStart: true},
		{K: 0.2, MaxIter: 100, NoReuse: true},
		{K: 0.2, MaxIter: 100, ForceFloor: 0.1},
		{K: 0.2, MaxIter: 100, KeepPlacement: true},
	}
	seen := map[string]int{a.Hash(): -1}
	for i, v := range variants {
		h := v.Hash()
		if j, dup := seen[h]; dup {
			t.Errorf("variant %d collides with %d: %s", i, j, h)
		}
		seen[h] = i
	}

	obs := Config{K: 0.2, MaxIter: 100, NoTrace: true, OnIteration: func(IterStats) {}}
	if obs.Hash() != a.Hash() {
		t.Errorf("observability options changed the hash")
	}
}

func TestNewRunMeta(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "meta", Cells: 120, Nets: 150, Rows: 6, Seed: 7})
	start := time.Unix(1700000000, 0)
	m := NewRunMeta(nl, Config{}, 7, start)
	if m.Type != "meta" {
		t.Errorf("type %q", m.Type)
	}
	if m.Design != "meta" || m.Cells != len(nl.Cells) || m.Nets != len(nl.Nets) || m.Movable != nl.NumMovable() {
		t.Errorf("design identity: %+v", m)
	}
	if m.Seed != 7 || !m.Start.Equal(start) {
		t.Errorf("seed/start: %+v", m)
	}
	// Defaults are resolved before recording: the zero config runs K=0.2.
	if m.K != 0.2 || m.MaxIter != 300 {
		t.Errorf("unresolved defaults: K=%g MaxIter=%d", m.K, m.MaxIter)
	}
	if m.ConfigHash == "" {
		t.Error("empty config hash")
	}
	// The recorded hash equals the resolved config's hash, so an explicit
	// K=0.2 and the default produce identical metadata.
	explicit := NewRunMeta(nl, Config{K: 0.2, MaxIter: 300}, 7, start)
	if explicit.ConfigHash != m.ConfigHash {
		t.Errorf("default and explicit-default configs hash differently")
	}
}

// TestGapProxyInStats: every iteration reports a finite positive gap
// proxy, and the run's final value is consistent with its stop reason —
// a criterion stop means the proxy reached ≤ 1.
func TestGapProxyInStats(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "gap", Cells: 200, Nets: 260, Rows: 6, Seed: 3})
	var last IterStats
	seen := 0
	cfg := Config{MaxIter: 200, OnIteration: func(s IterStats) {
		seen++
		if math.IsNaN(s.GapProxy) || math.IsInf(s.GapProxy, 0) || s.GapProxy < 0 {
			t.Fatalf("iteration %d: gap proxy %v", s.Iter, s.GapProxy)
		}
		last = s
	}}
	p := New(nl, cfg)
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if seen == 0 {
		t.Fatal("no iterations observed")
	}
	if res.StopReason == StopCriterion && last.GapProxy > 1 {
		t.Errorf("criterion stop with gap proxy %g > 1", last.GapProxy)
	}
	// The proxy is the empty-square measure in units of the stopping
	// threshold; recompute it to pin the definition.
	want := last.EmptySquare / (4 * nl.AvgCellArea())
	if math.Abs(last.GapProxy-want) > 1e-9*math.Max(1, want) {
		t.Errorf("gap proxy %g, want EmptySquare/(4·avg) = %g", last.GapProxy, want)
	}
}
