package place

import (
	"math"
	"testing"

	"repro/internal/density"
	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/netlist"
)

func testCircuit(t *testing.T, cells int, seed int64) *netlist.Netlist {
	t.Helper()
	return netgen.Generate(netgen.Config{
		Name:  "t",
		Cells: cells,
		Nets:  cells + cells/3,
		Rows:  8,
		Seed:  seed,
	})
}

func TestRunSpreadsCells(t *testing.T) {
	nl := testCircuit(t, 300, 1)
	res, err := Global(nl, Config{MaxIter: 120})
	if err != nil {
		t.Fatalf("Global: %v", err)
	}
	if !res.Converged {
		t.Errorf("did not converge in %d iterations (overflow %.3f, empty sq %.1f, avg cell %.2f)",
			res.Iterations, res.Overflow, res.Trace[len(res.Trace)-1].EmptySquare, nl.AvgCellArea())
	}
	if res.Overflow > 0.65 {
		t.Errorf("final overflow = %v", res.Overflow)
	}
	// All cells inside the region.
	out := nl.Region.Outline
	for i := range nl.Cells {
		if nl.Cells[i].Fixed {
			continue
		}
		if !out.Contains(nl.Cells[i].Pos) {
			t.Fatalf("cell %d at %v outside region", i, nl.Cells[i].Pos)
		}
	}
}

func TestInitializeSolvesWireLengthOptimum(t *testing.T) {
	nl := testCircuit(t, 50, 2)
	netgen.ScatterRandom(nl, 9)
	scattered := nl.QuadraticWL()
	p := New(nl, Config{NoLinearize: true})
	if err := p.Initialize(); err != nil {
		t.Fatal(err)
	}
	// Initialize gathers at the center then performs the force-free solve:
	// the result is the quadratic wire-length optimum.
	if got := nl.QuadraticWL(); got >= scattered {
		t.Errorf("initial solve quadratic WL %v not below scattered %v", got, scattered)
	}
	for _, f := range p.Forces() {
		if f != (geom.Point{}) {
			t.Fatal("forces not zeroed")
		}
	}
}

func TestKeepPlacementSkipsGather(t *testing.T) {
	nl := testCircuit(t, 50, 3)
	netgen.ScatterRandom(nl, 10)
	before := nl.Snapshot()
	p := New(nl, Config{KeepPlacement: true})
	p.Initialize()
	after := nl.Snapshot()
	if netlist.MaxDisplacement(before, after) != 0 {
		t.Error("KeepPlacement moved cells")
	}
}

func TestStepReducesOverflowOverTime(t *testing.T) {
	nl := testCircuit(t, 200, 4)
	p := New(nl, Config{})
	if err := p.Initialize(); err != nil {
		t.Fatal(err)
	}
	var first IterStats
	bestOvf, bestSq := math.Inf(1), math.Inf(1)
	for i := 0; i < 40; i++ {
		s, err := p.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if i == 0 {
			first = s
		} else {
			bestOvf = math.Min(bestOvf, s.Overflow)
			bestSq = math.Min(bestSq, s.EmptySquare)
		}
	}
	if bestOvf >= first.Overflow {
		t.Errorf("overflow did not fall below first-step %v (best %v)", first.Overflow, bestOvf)
	}
	if bestSq >= first.EmptySquare {
		t.Errorf("empty square did not shrink below first-step %v (best %v)", first.EmptySquare, bestSq)
	}
}

func TestFastModeFewerIterations(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second placement comparison")
	}
	// The speed advantage of K=1.0 shows on designs large enough that
	// spreading dominates the iteration count (the paper's fast-mode claim
	// is about its biggest circuits).
	mk := func(k float64) int {
		nl := netgen.Generate(netgen.Config{
			Name: "fastmode", Cells: 2000, Nets: 2600, Rows: 16, Seed: 5,
		})
		res, err := Global(nl, Config{K: k, MaxIter: 300})
		if err != nil {
			t.Fatalf("K=%v: %v", k, err)
		}
		if !res.Converged {
			t.Fatalf("K=%v did not converge", k)
		}
		return res.Iterations
	}
	fast := mk(1.0)
	std := mk(0.2)
	if fast > std {
		t.Errorf("fast mode took %d iterations, standard %d", fast, std)
	}
}

func TestFastModeWireLengthWorse(t *testing.T) {
	run := func(k float64) float64 {
		nl := testCircuit(t, 250, 6)
		if _, err := Global(nl, Config{K: k, MaxIter: 200}); err != nil {
			t.Fatal(err)
		}
		return nl.HPWL()
	}
	std := run(0.2)
	fast := run(1.0)
	if fast < std {
		t.Logf("note: fast HPWL %.1f below standard %.1f on this circuit", fast, std)
	}
	// Fast mode must at least stay within a sane factor (paper: +6%).
	if fast > 1.5*std {
		t.Errorf("fast HPWL %.1f more than 1.5x standard %.1f", fast, std)
	}
}

func TestBeforeTransformHookRuns(t *testing.T) {
	nl := testCircuit(t, 60, 7)
	calls := 0
	cfg := Config{
		MaxIter: 5,
		BeforeTransform: func(iter int, p *Placer) {
			if iter != calls {
				t.Errorf("hook iter = %d, want %d", iter, calls)
			}
			calls++
		},
	}
	p := New(nl, cfg)
	p.Initialize()
	for i := 0; i < 5; i++ {
		if _, err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 5 {
		t.Errorf("hook ran %d times", calls)
	}
}

func TestOnIterationObserver(t *testing.T) {
	nl := testCircuit(t, 60, 8)
	var seen []int
	_, err := Global(nl, Config{MaxIter: 6, OnIteration: func(s IterStats) {
		seen = append(seen, s.Iter)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 || seen[0] != 0 {
		t.Errorf("observer calls = %v", seen)
	}
}

func TestExtraDemandRepels(t *testing.T) {
	// Injecting heavy demand into the left half must push cells right.
	nl := testCircuit(t, 150, 9)
	avgX := func() float64 {
		var s float64
		var n int
		for i := range nl.Cells {
			if !nl.Cells[i].Fixed {
				s += nl.Cells[i].Pos.X
				n++
			}
		}
		return s / float64(n)
	}
	if _, err := Global(nl, Config{MaxIter: 60}); err != nil {
		t.Fatal(err)
	}
	base := avgX()

	nl2 := testCircuit(t, 150, 9)
	cfg := Config{MaxIter: 60, ExtraDemand: func(g *density.Grid) []float64 {
		extra := make([]float64, g.NX*g.NY)
		hot := g.BinW * g.BinH * 2
		for iy := 0; iy < g.NY; iy++ {
			for ix := 0; ix < g.NX/2; ix++ {
				extra[g.Idx(ix, iy)] = hot
			}
		}
		return extra
	}}
	if _, err := Global(nl2, cfg); err != nil {
		t.Fatal(err)
	}
	var s float64
	var n int
	for i := range nl2.Cells {
		if !nl2.Cells[i].Fixed {
			s += nl2.Cells[i].Pos.X
			n++
		}
	}
	shifted := s / float64(n)
	if shifted <= base {
		t.Errorf("extra left demand: mean x %v not right of baseline %v", shifted, base)
	}
}

func TestMixedBlockPlacement(t *testing.T) {
	// Kraftwerk's claim: blocks and cells placed together without special
	// treatment. The blocks must end inside the region and the overall
	// density must flatten.
	nl := netgen.Generate(netgen.Config{
		Name: "fp", Cells: 200, Nets: 280, Rows: 24, Blocks: 4, Seed: 10,
	})
	res, err := Global(nl, Config{MaxIter: 150})
	if err != nil {
		t.Fatal(err)
	}
	out := nl.Region.Outline
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Fixed {
			continue
		}
		if !out.ContainsRect(c.Rect().Expand(-1e-6)) {
			t.Errorf("cell %q rect %v outside region", c.Name, c.Rect())
		}
	}
	if res.Overflow > 0.45 {
		t.Errorf("mixed-block overflow = %v", res.Overflow)
	}
	// Blocks must have separated from the center pile.
	var blocks []geom.Point
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed && nl.Cells[i].H > 1.5 {
			blocks = append(blocks, nl.Cells[i].Pos)
		}
	}
	if len(blocks) != 4 {
		t.Fatalf("found %d blocks", len(blocks))
	}
	minPair := math.Inf(1)
	for i := range blocks {
		for j := i + 1; j < len(blocks); j++ {
			if d := blocks[i].Dist(blocks[j]); d < minPair {
				minPair = d
			}
		}
	}
	if minPair < 1 {
		t.Errorf("blocks still piled together (min pair distance %v)", minPair)
	}
}

func TestHPWLBetterThanRandom(t *testing.T) {
	nl := testCircuit(t, 300, 11)
	netgen.ScatterRandom(nl, 99)
	randomHPWL := nl.HPWL()
	if _, err := Global(nl, Config{MaxIter: 120}); err != nil {
		t.Fatal(err)
	}
	placed := nl.HPWL()
	if placed >= randomHPWL {
		t.Errorf("placed HPWL %v not below random %v", placed, randomHPWL)
	}
	// A good analytical placement should beat random by a wide margin.
	if placed > 0.7*randomHPWL {
		t.Errorf("placed HPWL %v is only marginally below random %v", placed, randomHPWL)
	}
}

func TestGridBinsAutoSelection(t *testing.T) {
	nl := testCircuit(t, 300, 12)
	p := New(nl, Config{})
	if g := p.Grid(); g.NX < 4 || g.NX > 512 || g.NY < 4 || g.NY > 512 {
		t.Errorf("auto bins = %dx%d", g.NX, g.NY)
	}
	// Bins stay roughly square: aspect-proportional split.
	g := p.Grid()
	if ratio := g.BinW / g.BinH; ratio > 4 || ratio < 0.25 {
		t.Errorf("bin aspect ratio = %v", ratio)
	}
	// A larger explicit budget yields a finer grid.
	p2 := New(nl, Config{GridBins: 64})
	if p2.Grid().NX*p2.Grid().NY <= g.NX*g.NY {
		t.Errorf("explicit 64 budget gave %dx%d, auto gave %dx%d",
			p2.Grid().NX, p2.Grid().NY, g.NX, g.NY)
	}
}

func TestDoneCriterion(t *testing.T) {
	nl := testCircuit(t, 100, 13)
	p := New(nl, Config{})
	if !p.Done(IterStats{EmptySquare: 0}) {
		t.Error("zero empty square should be done")
	}
	if p.Done(IterStats{EmptySquare: 1e9}) {
		t.Error("huge empty square should not be done")
	}
}
