package place

import (
	"testing"

	"repro/internal/netgen"
	"repro/internal/obsv"
)

// benchmarkStep measures one placement transformation in steady state.
// Comparing BenchmarkStep (no sinks attached) against a pre-observability
// checkout, and against BenchmarkStepObserved, bounds the cost of the
// instrumentation layer; with no sink attached the overhead must stay
// within noise (<2%).
func benchmarkStep(b *testing.B, cfg Config) {
	nl := netgen.Generate(netgen.Config{
		Name: "bench", Cells: 1000, Nets: 1300, Rows: 16, Seed: 7,
	})
	cfg.MaxIter = 1
	p := New(nl, cfg)
	if err := p.Initialize(); err != nil {
		b.Fatal(err)
	}
	// Warm the iteration past the all-at-center start so the measured
	// steps see a representative density distribution.
	for i := 0; i < 5; i++ {
		if _, err := p.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStep is the instrumentation-off baseline: no spans, metrics,
// trace, or observer attached.
func BenchmarkStep(b *testing.B) {
	benchmarkStep(b, Config{})
}

// BenchmarkStepObserved attaches every sink the layer offers.
func BenchmarkStepObserved(b *testing.B) {
	reg := obsv.NewRegistry()
	tw := obsv.NewTraceWriter(discard{})
	benchmarkStep(b, Config{
		Spans:       obsv.NewSpans(),
		Metrics:     reg,
		OnIteration: func(s IterStats) { _ = tw.Write(s) },
	})
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
