// Package sparse implements the sparse linear algebra the placer needs:
// symmetric positive-definite matrices in compressed sparse row form and a
// Jacobi-preconditioned conjugate gradient solver, as called for by the
// paper's §4.1 ("a conjugate gradient approach with preconditioning").
package sparse

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
)

// Builder accumulates matrix entries in triplet form. Duplicate (row,col)
// entries are summed, which makes assembling clique models trivial.
type Builder struct {
	n    int
	rows [][]entry
}

type entry struct {
	col int
	val float64
}

// NewBuilder creates a builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, rows: make([][]entry, n)}
}

// N returns the matrix dimension.
func (b *Builder) N() int { return b.n }

// Add accumulates v into entry (i, j).
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of range for n=%d", i, j, b.n))
	}
	//lint:ignore hotalloc Reset retains row capacity, so refill-path appends stop growing after the first full assembly
	b.rows[i] = append(b.rows[i], entry{j, v})
}

// AddSym accumulates v into (i, j) and (j, i); for i == j it adds once.
func (b *Builder) AddSym(i, j int, v float64) {
	b.Add(i, j, v)
	if i != j {
		b.Add(j, i, v)
	}
}

// Build compacts the triplets into CSR form, merging duplicates and dropping
// exact zeros.
func (b *Builder) Build() *CSR {
	m := &CSR{n: b.n, rowPtr: make([]int, b.n+1)}
	nnz := 0
	for _, r := range b.rows {
		nnz += len(r)
	}
	m.cols = make([]int, 0, nnz)
	m.vals = make([]float64, 0, nnz)
	for i, r := range b.rows {
		sort.Slice(r, func(a, c int) bool { return r[a].col < r[c].col })
		for k := 0; k < len(r); {
			j := r[k].col
			v := 0.0
			for ; k < len(r) && r[k].col == j; k++ {
				v += r[k].val
			}
			if v != 0 {
				m.cols = append(m.cols, j)
				m.vals = append(m.vals, v)
			}
		}
		m.rowPtr[i+1] = len(m.cols)
	}
	return m
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	n      int
	rowPtr []int
	cols   []int
	vals   []float64
}

// N returns the matrix dimension.
func (m *CSR) N() int { return m.n }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// At returns entry (i, j). O(log row degree).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.cols[lo:hi], j)
	if k < hi && m.cols[k] == j {
		return m.vals[k]
	}
	return 0
}

// MulVec computes dst = M·x. dst and x must have length N and not alias.
// Matrices with at least par.Threshold rows are processed on all CPUs; the
// result is deterministic either way (each row is written by exactly one
// goroutine, with the same per-row kernel as the serial path).
func (m *CSR) MulVec(dst, x []float64) {
	if len(dst) != m.n || len(x) != m.n {
		panic("sparse: MulVec dimension mismatch")
	}
	par.Run(par.Workers(m.n), m.n, func(_, lo, hi int) {
		m.mulRange(dst, x, lo, hi)
	})
}

func (m *CSR) mulRange(dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := 0.0
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.cols[k]]
		}
		dst[i] = s
	}
}

// Diag extracts the diagonal into a new slice in one pass over the row
// structure (columns are sorted within each row, so the scan stops at the
// first entry at or past the diagonal). CG reads the diagonal on every
// solve for Jacobi preconditioning.
func (m *CSR) Diag() []float64 {
	//lint:ignore hotalloc Diag returns a fresh slice by contract; one n-vector per solve, invalidated by every refill
	d := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			if c := m.cols[k]; c >= i {
				if c == i {
					d[i] = m.vals[k]
				}
				break
			}
		}
	}
	return d
}

// IsSymmetric reports whether the matrix equals its transpose to within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	for i := 0; i < m.n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			j := m.cols[k]
			if math.Abs(m.vals[k]-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// RowDiagonallyDominant reports whether every row's diagonal entry is at
// least the sum of absolute off-diagonals minus tol. Quadratic placement
// matrices with at least one fixed connection per connected component are
// weakly dominant with strict dominance in anchored rows, which guarantees
// positive definiteness.
func (m *CSR) RowDiagonallyDominant(tol float64) bool {
	for i := 0; i < m.n; i++ {
		var diag, off float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			if m.cols[k] == i {
				diag = m.vals[k]
			} else {
				off += math.Abs(m.vals[k])
			}
		}
		if diag+tol < off {
			return false
		}
	}
	return true
}

// Vector helpers shared by the solver.

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// Axpy computes dst[i] += alpha * x[i].
func Axpy(dst []float64, alpha float64, x []float64) {
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}
