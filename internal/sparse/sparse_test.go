package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 1, 2)
	b.Add(0, 1, 3)
	b.Add(0, 0, 1)
	b.Add(2, 2, 4)
	m := b.Build()
	if got := m.At(0, 1); got != 5 {
		t.Errorf("At(0,1) = %v", got)
	}
	if got := m.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %v", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %v", got)
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d", m.NNZ())
	}
}

func TestBuilderDropsExactZeros(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 1, 2)
	b.Add(0, 1, -2)
	m := b.Build()
	if m.NNZ() != 0 {
		t.Errorf("NNZ = %d, want 0", m.NNZ())
	}
}

func TestAddSym(t *testing.T) {
	b := NewBuilder(3)
	b.AddSym(0, 2, 7)
	b.AddSym(1, 1, 3)
	m := b.Build()
	if m.At(0, 2) != 7 || m.At(2, 0) != 7 {
		t.Error("AddSym off-diagonal broken")
	}
	if m.At(1, 1) != 3 {
		t.Errorf("AddSym diagonal = %v, want 3 (no double add)", m.At(1, 1))
	}
	if !m.IsSymmetric(0) {
		t.Error("not symmetric")
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder(2).Add(0, 5, 1)
}

func TestMulVec(t *testing.T) {
	// [2 1 0; 1 3 1; 0 1 2] * [1 2 3] = [4 10 8]
	b := NewBuilder(3)
	b.AddSym(0, 0, 2)
	b.AddSym(1, 1, 3)
	b.AddSym(2, 2, 2)
	b.AddSym(0, 1, 1)
	b.AddSym(1, 2, 1)
	m := b.Build()
	dst := make([]float64, 3)
	m.MulVec(dst, []float64{1, 2, 3})
	want := []float64{4, 10, 8}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Errorf("MulVec[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestMulVecDimensionPanic(t *testing.T) {
	m := NewBuilder(3).Build()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.MulVec(make([]float64, 2), make([]float64, 3))
}

func TestDiag(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 5)
	b.Add(2, 2, 7)
	d := b.Build().Diag()
	if d[0] != 5 || d[1] != 0 || d[2] != 7 {
		t.Errorf("Diag = %v", d)
	}
}

func TestIsSymmetricDetectsAsymmetry(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 1, 1)
	if b.Build().IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
}

func TestRowDiagonallyDominant(t *testing.T) {
	b := NewBuilder(2)
	b.AddSym(0, 0, 3)
	b.AddSym(1, 1, 3)
	b.AddSym(0, 1, -2)
	if !b.Build().RowDiagonallyDominant(1e-12) {
		t.Error("dominant matrix rejected")
	}
	b2 := NewBuilder(2)
	b2.AddSym(0, 0, 1)
	b2.AddSym(1, 1, 1)
	b2.AddSym(0, 1, -2)
	if b2.Build().RowDiagonallyDominant(1e-12) {
		t.Error("non-dominant matrix accepted")
	}
}

// randomSPD builds a random Laplacian-plus-diagonal SPD matrix, the exact
// structure of quadratic placement matrices.
func randomSPD(rng *rand.Rand, n int) *CSR {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		// chain plus random chords
		if i+1 < n {
			w := 0.5 + rng.Float64()
			b.AddSym(i, i+1, -w)
			b.AddSym(i, i, w)
			b.AddSym(i+1, i+1, w)
		}
		j := rng.Intn(n)
		if j != i {
			w := 0.5 + rng.Float64()
			b.AddSym(i, j, -w)
			b.AddSym(i, i, w)
			b.AddSym(j, j, w)
		}
	}
	// Anchor a few nodes (fixed-pin diagonal augmentation) to make it
	// strictly positive definite.
	for k := 0; k < 1+n/10; k++ {
		b.Add(rng.Intn(n), rng.Intn(n)*0+k%n, 0) // no-op keeps structure honest
		b.Add(k%n, k%n, 1+rng.Float64())
	}
	return b.Build()
}

func TestCGSolvesRandomSPDSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(60)
		m := randomSPD(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64() * 10
		}
		bvec := make([]float64, n)
		m.MulVec(bvec, want)
		x := make([]float64, n)
		res, err := SolveCG(m, x, bvec, CGOptions{Tol: 1e-10})
		if err != nil {
			t.Fatalf("trial %d: %v (res %.3g after %d iters)", trial, err, res.Residual, res.Iterations)
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], want[i])
			}
		}
	}
}

func TestCGWarmStartConvergesFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 200
	m := randomSPD(rng, n)
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	m.MulVec(b, want)

	cold := make([]float64, n)
	resCold, err := SolveCG(m, cold, b, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm := make([]float64, n)
	for i := range warm {
		warm[i] = want[i] + 1e-6*rng.NormFloat64()
	}
	resWarm, err := SolveCG(m, warm, b, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resWarm.Iterations >= resCold.Iterations {
		t.Errorf("warm start (%d iters) not faster than cold (%d iters)",
			resWarm.Iterations, resCold.Iterations)
	}
}

func TestCGZeroRHS(t *testing.T) {
	m := randomSPD(rand.New(rand.NewSource(1)), 10)
	x := make([]float64, 10)
	res, err := SolveCG(m, x, make([]float64, 10), CGOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("zero RHS: %v %+v", err, res)
	}
	for i, v := range x {
		if v != 0 {
			t.Errorf("x[%d] = %v", i, v)
		}
	}
}

func TestCGMaxIterReturnsError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomSPD(rng, 100)
	b := make([]float64, 100)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, 100)
	res, err := SolveCG(m, x, b, CGOptions{Tol: 1e-14, MaxIter: 2})
	if err == nil {
		t.Error("expected ErrNotConverged")
	}
	if res.Converged {
		t.Error("result claims convergence")
	}
	if res.Iterations != 2 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

func TestCGIndefiniteMatrixFailsGracefully(t *testing.T) {
	b := NewBuilder(2)
	b.AddSym(0, 0, -1)
	b.AddSym(1, 1, -1)
	m := b.Build()
	x := make([]float64, 2)
	_, err := SolveCG(m, x, []float64{1, 1}, CGOptions{})
	if err == nil {
		t.Error("expected failure on negative-definite matrix")
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %v", Dot(a, b))
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Errorf("Norm2 = %v", Norm2([]float64{3, 4}))
	}
	dst := []float64{1, 1, 1}
	Axpy(dst, 2, a)
	if dst[0] != 3 || dst[1] != 5 || dst[2] != 7 {
		t.Errorf("Axpy = %v", dst)
	}
}

func TestMulVecMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		dense := make([][]float64, n)
		b := NewBuilder(n)
		for i := range dense {
			dense[i] = make([]float64, n)
		}
		for k := 0; k < n*2; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			v := rng.NormFloat64()
			dense[i][j] += v
			b.Add(i, j, v)
		}
		m := b.Build()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, n)
		m.MulVec(got, x)
		for i := 0; i < n; i++ {
			want := 0.0
			for j := 0; j < n; j++ {
				want += dense[i][j] * x[j]
			}
			if math.Abs(got[i]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIC0PreconditionerSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(80)
		m := randomSPD(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64() * 5
		}
		b := make([]float64, n)
		m.MulVec(b, want)
		x := make([]float64, n)
		res, err := SolveCG(m, x, b, CGOptions{Tol: 1e-10, Precond: IC0})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], want[i])
			}
		}
		_ = res
	}
}

func TestIC0ConvergesFasterThanJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	wins := 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		n := 150
		m := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xj := make([]float64, n)
		rj, err := SolveCG(m, xj, b, CGOptions{Tol: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		xc := make([]float64, n)
		rc, err := SolveCG(m, xc, b, CGOptions{Tol: 1e-10, Precond: IC0})
		if err != nil {
			t.Fatal(err)
		}
		if rc.Iterations < rj.Iterations {
			wins++
		}
	}
	if wins < trials/2 {
		t.Errorf("IC0 beat Jacobi on only %d/%d systems", wins, trials)
	}
}

func TestIC0FallsBackOnBreakdown(t *testing.T) {
	// An indefinite matrix breaks the Cholesky factorization; the solver
	// must fall back to Jacobi and fail the same way plain CG does,
	// not panic.
	b := NewBuilder(2)
	b.AddSym(0, 0, -1)
	b.AddSym(1, 1, -1)
	m := b.Build()
	x := make([]float64, 2)
	if _, err := SolveCG(m, x, []float64{1, 1}, CGOptions{Precond: IC0}); err == nil {
		t.Error("expected failure on negative-definite matrix")
	}
}
