package sparse

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/par"
)

// fillRandomSPDish adds a random symmetric diagonally-augmented pattern with
// duplicate entries, the shape qp assembly produces.
func fillRandomSPDish(b *Builder, rng *rand.Rand, n, nnz int) {
	for i := 0; i < n; i++ {
		b.Add(i, i, 1+rng.Float64())
	}
	for k := 0; k < nnz; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		// AddSym adds the off-diagonals and the compensating diagonal, and
		// repeats produce duplicate triplets — both paths must merge them.
		b.AddSym(i, j, rng.NormFloat64())
	}
}

func denseOf(m *CSR) []float64 {
	n := m.N()
	d := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d[i*n+j] = m.At(i, j)
		}
	}
	return d
}

func TestBuildSymbolicMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 5, 40} {
		legacy := NewBuilder(n)
		cached := NewBuilder(n)
		fillRandomSPDish(legacy, rng, n, 4*n)
		cached.rows = append([][]entry(nil), legacy.rows...) // identical triplets

		want := denseOf(legacy.Build())
		m, _ := cached.BuildSymbolic()
		got := denseOf(m)
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: BuildSymbolic differs at %d: %g vs %g", n, i, got[i], want[i])
			}
		}
	}
}

func TestRefillMatchesFreshBuild(t *testing.T) {
	n := 30
	// assemble replays a fixed triplet sequence (the "topology") with values
	// scaled per round — the same shape qp re-assembly has: identical
	// insertion order, different spring weights.
	assemble := func(b *Builder, scale float64) {
		rng := rand.New(rand.NewSource(22))
		for i := 0; i < n; i++ {
			b.Add(i, i, scale*(1+rng.Float64()))
		}
		for k := 0; k < 3*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			b.AddSym(i, j, scale*rng.NormFloat64())
		}
	}

	b := NewBuilder(n)
	assemble(b, 1)
	m, sym := b.BuildSymbolic()

	for round := 0; round < 3; round++ {
		scale := 2 + float64(round)
		b.Reset()
		assemble(b, scale)
		if !sym.Refill(m, b) {
			t.Fatalf("round %d: refill refused an unchanged pattern", round)
		}
		legacy := NewBuilder(n)
		assemble(legacy, scale)
		want := denseOf(legacy.Build())
		got := denseOf(m)
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("round %d: refill differs at %d: %g vs %g", round, i, got[i], want[i])
			}
		}
	}
}

func TestRefillSamePatternIsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 25
	b := NewBuilder(n)
	fillRandomSPDish(b, rng, n, 3*n)
	m, sym := b.BuildSymbolic()
	before := append([]float64(nil), m.vals...)

	// Replay the identical triplet sequence; the refill must reproduce the
	// exact same values (this is what keeps hot and cold place.Step aligned).
	replay := NewBuilder(n)
	replay.rows = append([][]entry(nil), b.rows...)
	if !sym.Refill(m, replay) {
		t.Fatal("refill with identical triplets refused")
	}
	for i := range before {
		if m.vals[i] != before[i] {
			t.Fatalf("refill not bit-identical at %d: %g vs %g", i, m.vals[i], before[i])
		}
	}
}

func TestRefillRejectsPatternChange(t *testing.T) {
	n := 10
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 1)
	}
	b.AddSym(0, 1, -0.5)
	m, sym := b.BuildSymbolic()

	other := NewBuilder(n)
	for i := 0; i < n; i++ {
		other.Add(i, i, 1)
	}
	other.AddSym(0, 2, -0.5) // different off-diagonal: pattern mismatch
	if sym.Refill(m, other) {
		t.Fatal("refill accepted a changed sparsity pattern")
	}
}

func TestBuilderResetKeepsCapacity(t *testing.T) {
	b := NewBuilder(4)
	b.Add(0, 0, 1)
	b.Add(3, 2, 2)
	b.Reset()
	for i, r := range b.rows {
		if len(r) != 0 {
			t.Fatalf("row %d not cleared: %v", i, r)
		}
	}
	b.Add(0, 0, 5)
	m := b.Build()
	if got := m.At(0, 0); got != 5 {
		t.Fatalf("post-reset build: At(0,0) = %g, want 5", got)
	}
	if got := m.At(3, 2); got != 0 {
		t.Fatalf("post-reset build kept stale entry: At(3,2) = %g", got)
	}
}

func TestMulVecParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n := 200
	b := NewBuilder(n)
	fillRandomSPDish(b, rng, n, 6*n)
	m := b.Build()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	serial := make([]float64, n)
	m.MulVec(serial, x)

	parallel := make([]float64, n)
	old := par.Threshold
	par.Threshold = 1
	defer func() { par.Threshold = old }()
	m.MulVec(parallel, x)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel MulVec differs at %d: %g vs %g", i, parallel[i], serial[i])
		}
	}
}

func benchMatrix(n int) *CSR {
	rng := rand.New(rand.NewSource(99))
	b := NewBuilder(n)
	fillRandomSPDish(b, rng, n, 6*n)
	return b.Build()
}

func BenchmarkMulVec(b *testing.B) {
	m := benchMatrix(20000)
	x := make([]float64, m.N())
	dst := make([]float64, m.N())
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkDiag(b *testing.B) {
	m := benchMatrix(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Diag()
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(100))
	n := 5000
	tpl := NewBuilder(n)
	fillRandomSPDish(tpl, rng, n, 6*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb := NewBuilder(n)
		bb.rows = append([][]entry(nil), tpl.rows...)
		_ = bb.Build()
	}
}

func BenchmarkRefill(b *testing.B) {
	rng := rand.New(rand.NewSource(100))
	n := 5000
	tpl := NewBuilder(n)
	fillRandomSPDish(tpl, rng, n, 6*n)
	m, sym := tpl.BuildSymbolic()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sym.Refill(m, tpl) {
			b.Fatal("refill refused")
		}
	}
}
