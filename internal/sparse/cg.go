package sparse

import (
	"errors"
	"math"
)

// Preconditioner selects how CG preconditions the system.
type Preconditioner int

const (
	// Jacobi (diagonal) preconditioning: cheapest per iteration, the
	// default.
	Jacobi Preconditioner = iota
	// IC0 zero-fill incomplete Cholesky (the classic ICCG of GORDIAN-era
	// placers): fewer iterations, a sequential triangular solve each.
	// Falls back to Jacobi when the factorization breaks down.
	IC0
)

// CGOptions controls the conjugate gradient solver.
type CGOptions struct {
	// Tol is the relative residual target ‖r‖/‖b‖. Defaults to 1e-8.
	Tol float64
	// MaxIter caps the iteration count. Defaults to 10·N.
	MaxIter int
	// Precond selects the preconditioner (default Jacobi).
	Precond Preconditioner
}

// CGResult reports how a solve went.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
}

// ErrNotConverged is returned when CG hits MaxIter above tolerance. The
// best iterate found is still written to x, since a slightly unconverged
// placement solve is usable.
var ErrNotConverged = errors.New("sparse: conjugate gradient did not converge")

// SolveCG solves M·x = b for symmetric positive-definite M using conjugate
// gradients with Jacobi (diagonal) preconditioning. x carries the initial
// guess on entry (warm start) and the solution on return.
func SolveCG(m *CSR, x, b []float64, opt CGOptions) (CGResult, error) {
	n := m.N()
	if len(x) != n || len(b) != n {
		panic("sparse: SolveCG dimension mismatch")
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
		if opt.MaxIter < 100 {
			opt.MaxIter = 100
		}
	}

	var chol *ic0
	if opt.Precond == IC0 {
		chol = newIC0(m) // nil on breakdown → Jacobi fallback
	}
	invDiag := make([]float64, n)
	for i, d := range m.Diag() {
		if d > 0 {
			invDiag[i] = 1 / d
		} else {
			invDiag[i] = 1 // row with no anchor yet; plain CG behaviour
		}
	}
	precond := func(z, r []float64) {
		if chol != nil {
			chol.apply(z, r)
			return
		}
		for i := range z {
			z[i] = invDiag[i] * r[i]
		}
	}

	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	m.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	res := Norm2(r) / bnorm
	if res <= opt.Tol {
		return CGResult{0, res, true}, nil
	}

	precond(z, r)
	copy(p, z)
	rz := Dot(r, z)

	for iter := 1; iter <= opt.MaxIter; iter++ {
		m.MulVec(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			// Matrix is not positive definite along p (or numerics broke
			// down); return the best iterate.
			return CGResult{iter, res, false}, ErrNotConverged
		}
		alpha := rz / pap
		Axpy(x, alpha, p)
		Axpy(r, -alpha, ap)
		res = Norm2(r) / bnorm
		if res <= opt.Tol {
			return CGResult{iter, res, true}, nil
		}
		precond(z, r)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return CGResult{opt.MaxIter, res, false}, ErrNotConverged
}
