package sparse

import (
	"errors"
	"math"
	"time"

	"repro/internal/obsv"
)

// Preconditioner selects how CG preconditions the system.
type Preconditioner int

const (
	// Auto picks per solve: IC0 for systems of at least AutoIC0Threshold
	// unknowns (where the iteration-count savings dominate the triangular
	// solves), Jacobi below it. The zero value, so a zero CGOptions gets
	// the size-adaptive choice.
	Auto Preconditioner = iota
	// Jacobi (diagonal) preconditioning: cheapest per iteration.
	Jacobi
	// IC0 zero-fill incomplete Cholesky (the classic ICCG of GORDIAN-era
	// placers): fewer iterations, a sequential triangular solve each.
	// Falls back to Jacobi when the factorization breaks down.
	IC0
)

// AutoIC0Threshold is the system size at which Auto switches from Jacobi
// to IC0. Below it the Jacobi solves are already cheap and the
// factorization overhead is not worth amortizing.
const AutoIC0Threshold = 5000

// String returns the preconditioner's tag ("jacobi", "ic0", or "auto").
func (p Preconditioner) String() string {
	switch p {
	case Jacobi:
		return "jacobi"
	case IC0:
		return "ic0"
	default:
		return "auto"
	}
}

// ParsePreconditioner maps a tag (as printed by String) back to the
// preconditioner; the empty tag means "unset" and maps to the Auto
// default. ok is false for anything unrecognized.
func ParsePreconditioner(s string) (p Preconditioner, ok bool) {
	switch s {
	case "auto", "":
		return Auto, true
	case "jacobi":
		return Jacobi, true
	case "ic0":
		return IC0, true
	}
	return Auto, false
}

// Resolve maps Auto to the concrete preconditioner for an n-unknown
// system; Jacobi and IC0 resolve to themselves.
func (p Preconditioner) Resolve(n int) Preconditioner {
	if p == Auto {
		if n >= AutoIC0Threshold {
			return IC0
		}
		return Jacobi
	}
	return p
}

// cgMetrics holds the package's metric handles, one set per effective
// preconditioner tag. All handles are nil until EnableMetrics, and every
// obsv operation on a nil handle is a no-op, so the disabled path costs
// nothing.
type cgMetrics struct {
	solves       *obsv.Counter
	iterations   *obsv.Counter
	notConverged *obsv.Counter
	residual     *obsv.Histogram
	seconds      *obsv.Histogram
}

// metrics is indexed by the effective Preconditioner (always Jacobi or
// IC0 after Resolve and fallback); the Auto slot stays unused.
var metrics [3]cgMetrics

// EnableMetrics registers the solver's counters and histograms in r and
// routes all subsequent solves to them:
//
//	sparse_cg_solves_total{precond=...}        solves started
//	sparse_cg_iterations_total{precond=...}    CG iterations executed
//	sparse_cg_nonconverged_total{precond=...}  solves that hit ErrNotConverged
//	sparse_cg_residual{precond=...}            final relative residual
//	sparse_cg_seconds{precond=...}             solve wall time
//
// The precond label is the *effective* preconditioner (an IC0 request
// that falls back to Jacobi counts as jacobi). Passing nil detaches the
// solver from any registry.
func EnableMetrics(r *obsv.Registry) {
	for _, p := range []Preconditioner{Jacobi, IC0} {
		tag := `{precond="` + p.String() + `"}`
		m := &metrics[p]
		if r == nil {
			*m = cgMetrics{}
			continue
		}
		m.solves = r.Counter("sparse_cg_solves_total"+tag, "conjugate-gradient solves started")
		m.iterations = r.Counter("sparse_cg_iterations_total"+tag, "conjugate-gradient iterations executed")
		m.notConverged = r.Counter("sparse_cg_nonconverged_total"+tag, "CG solves that hit MaxIter above tolerance")
		m.residual = r.Histogram("sparse_cg_residual"+tag, "final relative residual per solve", obsv.ResidualBuckets)
		m.seconds = r.Histogram("sparse_cg_seconds"+tag, "CG solve wall time in seconds", obsv.SecondsBuckets)
	}
}

// CGOptions controls the conjugate gradient solver.
type CGOptions struct {
	// Tol is the relative residual target ‖r‖/‖b‖. Defaults to 1e-8.
	Tol float64
	// MaxIter caps the iteration count. Defaults to 10·N.
	MaxIter int
	// Precond selects the preconditioner. The default is Auto: IC0 for
	// systems of at least AutoIC0Threshold unknowns, Jacobi below.
	Precond Preconditioner
	// Factor, when non-nil and Precond resolves to IC0, is a
	// pre-refactored IC0 factor to apply instead of factoring inside the
	// solve. Callers that solve several right-hand sides against one
	// matrix (the placer's x/y axis pair) share a single factor this way;
	// Apply is read-only, so concurrent solves may share it.
	Factor *IC0Factor
}

// CGResult reports how a solve went.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
	Elapsed    time.Duration  // solve wall time
	Precond    Preconditioner // effective preconditioner (after Auto/fallback)
}

// ErrNotConverged is returned when CG hits MaxIter above tolerance. The
// best iterate found is still written to x, since a slightly unconverged
// placement solve is usable.
var ErrNotConverged = errors.New("sparse: conjugate gradient did not converge")

// SolveCG solves M·x = b for symmetric positive-definite M using conjugate
// gradients with Jacobi (diagonal) preconditioning. x carries the initial
// guess on entry (warm start) and the solution on return.
func SolveCG(m *CSR, x, b []float64, opt CGOptions) (res CGResult, err error) {
	n := m.N()
	if len(x) != n || len(b) != n {
		panic("sparse: SolveCG dimension mismatch")
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
		if opt.MaxIter < 100 {
			opt.MaxIter = 100
		}
	}

	var chol *IC0Factor
	if opt.Precond.Resolve(n) == IC0 {
		if opt.Factor != nil && opt.Factor.N() == n {
			chol = opt.Factor
		} else {
			chol = NewIC0(m) // nil on breakdown → Jacobi fallback
		}
	}
	eff := Jacobi // effective preconditioner, the metrics tag
	if chol != nil {
		eff = IC0
	}
	start := obsv.StartTimer()
	//lint:ignore hotalloc metrics defer: one closure per solve, recording after the result is known
	defer func() {
		res.Elapsed = start.Elapsed()
		res.Precond = eff
		mt := &metrics[eff]
		mt.solves.Inc()
		mt.iterations.Add(int64(res.Iterations))
		mt.residual.Observe(res.Residual)
		mt.seconds.Observe(res.Elapsed.Seconds())
		if err != nil {
			mt.notConverged.Inc()
		}
	}()
	//lint:ignore hotalloc per-solve Jacobi vector; the diagonal changes with every refill, so it cannot be cached on the matrix
	invDiag := make([]float64, n)
	for i, d := range m.Diag() {
		if d > 0 {
			invDiag[i] = 1 / d
		} else {
			invDiag[i] = 1 // row with no anchor yet; plain CG behaviour
		}
	}
	//lint:ignore hotalloc one closure per solve selecting the preconditioner; hoisting it would thread chol/invDiag through every call site
	precond := func(z, r []float64) {
		if chol != nil {
			chol.Apply(z, r)
			return
		}
		for i := range z {
			z[i] = invDiag[i] * r[i]
		}
	}

	// The four CG work vectors are per-solve by design: SolveCG is a
	// stateless package function (warm starts ride in through x), and
	// caller-owned scratch would leak solver internals through the API.
	//lint:ignore hotalloc per-solve CG work vector (see above)
	r := make([]float64, n)
	//lint:ignore hotalloc per-solve CG work vector (see above)
	z := make([]float64, n)
	//lint:ignore hotalloc per-solve CG work vector (see above)
	p := make([]float64, n)
	//lint:ignore hotalloc per-solve CG work vector (see above)
	ap := make([]float64, n)

	m.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	rel := Norm2(r) / bnorm
	if rel <= opt.Tol {
		return CGResult{Iterations: 0, Residual: rel, Converged: true}, nil
	}

	precond(z, r)
	copy(p, z)
	rz := Dot(r, z)

	for iter := 1; iter <= opt.MaxIter; iter++ {
		m.MulVec(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			// Matrix is not positive definite along p (or numerics broke
			// down); return the best iterate.
			return CGResult{Iterations: iter, Residual: rel}, ErrNotConverged
		}
		alpha := rz / pap
		Axpy(x, alpha, p)
		Axpy(r, -alpha, ap)
		rel = Norm2(r) / bnorm
		if rel <= opt.Tol {
			return CGResult{Iterations: iter, Residual: rel, Converged: true}, nil
		}
		precond(z, r)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return CGResult{Iterations: opt.MaxIter, Residual: rel}, ErrNotConverged
}
