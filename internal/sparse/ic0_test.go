package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// sameFactor reports bitwise equality of two factors' numeric content
// (pattern equality is implied by construction from the same CSR).
func sameFactor(a, b *IC0Factor) bool {
	if a.n != b.n || len(a.vals) != len(b.vals) {
		return false
	}
	for k := range a.vals {
		if math.Float64bits(a.vals[k]) != math.Float64bits(b.vals[k]) {
			return false
		}
	}
	for i := range a.diag {
		if math.Float64bits(a.diag[i]) != math.Float64bits(b.diag[i]) {
			return false
		}
	}
	return true
}

type spdSpring struct {
	i, j int
	w    float64
}

// randomSPDSprings draws a random diagonally dominant spring system whose
// Add sequence can be replayed with rescaled weights — the Symbolic.Refill
// contract needs the identical triplet shape on every fill.
func randomSPDSprings(rng *rand.Rand, n int) []spdSpring {
	var ss []spdSpring
	for k := 0; k < n*3; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		ss = append(ss, spdSpring{i, j, 0.1 + rng.Float64()})
	}
	return ss
}

// fillSPD replays the spring sequence into b with weights scaled by s,
// plus a unit anchor per row for strict diagonal dominance.
func fillSPD(b *Builder, n int, ss []spdSpring, s float64) {
	for _, sp := range ss {
		w := sp.w * s
		b.AddSym(sp.i, sp.j, -w)
		b.Add(sp.i, sp.i, w)
		b.Add(sp.j, sp.j, w)
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, 1)
	}
}

func buildSPDSymbolic(rng *rand.Rand, n int) (*CSR, *Symbolic, *Builder, []spdSpring) {
	ss := randomSPDSprings(rng, n)
	b := NewBuilder(n)
	fillSPD(b, n, ss, 1)
	m, sym := b.BuildSymbolic()
	return m, sym, b, ss
}

func TestIC0RefactorMatchesFreshFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(120)
		m, sym, b, ss := buildSPDSymbolic(rng, n)

		f := NewIC0Pattern(m)
		if !f.Refactor(m) {
			t.Fatalf("trial %d: refactor broke down on an SPD matrix", trial)
		}
		fresh := NewIC0(m)
		if fresh == nil {
			t.Fatalf("trial %d: fresh factor broke down", trial)
		}
		if !sameFactor(f, fresh) {
			t.Fatalf("trial %d: pattern+Refactor diverges from one-shot NewIC0", trial)
		}

		// Refill with scaled weights through the same symbolic pattern,
		// refactor the cached pattern, and compare against a factor built
		// from scratch on the refilled matrix: bit-identical.
		b.Reset()
		fillSPD(b, n, ss, 0.5+rng.Float64())
		if !sym.Refill(m, b) {
			t.Fatalf("trial %d: refill rejected", trial)
		}
		if !f.Refactor(m) {
			t.Fatalf("trial %d: refactor broke down after refill", trial)
		}
		fresh2 := NewIC0(m)
		if fresh2 == nil {
			t.Fatalf("trial %d: fresh factor broke down after refill", trial)
		}
		if !sameFactor(f, fresh2) {
			t.Fatalf("trial %d: refactor-vs-fresh-factor not bit-identical after refill", trial)
		}
	}
}

func TestIC0RefactorAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m, _, _, _ := buildSPDSymbolic(rng, 200)
	f := NewIC0Pattern(m)
	allocs := testing.AllocsPerRun(20, func() {
		if !f.Refactor(m) {
			t.Fatal("refactor broke down")
		}
	})
	if allocs != 0 {
		t.Fatalf("Refactor allocates %.1f objects per call, want 0", allocs)
	}
}

func TestIC0SharedFactorMatchesPerSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 300
	m, _, _, _ := buildSPDSymbolic(rng, n)
	b1 := make([]float64, n)
	b2 := make([]float64, n)
	for i := range b1 {
		b1[i] = rng.NormFloat64()
		b2[i] = rng.NormFloat64()
	}

	solve := func(b []float64, f *IC0Factor) ([]float64, CGResult) {
		x := make([]float64, n)
		res, err := SolveCG(m, x, b, CGOptions{Tol: 1e-10, Precond: IC0, Factor: f})
		if err != nil {
			t.Fatal(err)
		}
		return x, res
	}

	f := NewIC0(m)
	if f == nil {
		t.Fatal("factorization broke down")
	}
	for _, rhs := range [][]float64{b1, b2} {
		want, wr := solve(rhs, nil) // per-solve internal factorization
		got, gr := solve(rhs, f)    // caller-prepared shared factor
		if wr.Precond != IC0 || gr.Precond != IC0 {
			t.Fatalf("effective preconditioners: %v %v, want ic0", wr.Precond, gr.Precond)
		}
		if wr.Iterations != gr.Iterations {
			t.Fatalf("iteration counts differ: %d vs %d", wr.Iterations, gr.Iterations)
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("x[%d] differs bitwise: %v vs %v", i, want[i], got[i])
			}
		}
	}
}

func TestIC0RefactorBreakdownReported(t *testing.T) {
	b := NewBuilder(2)
	b.AddSym(0, 0, 4)
	b.AddSym(1, 1, 4)
	b.AddSym(0, 1, 1)
	m, sym := b.BuildSymbolic()
	f := NewIC0Pattern(m)
	if !f.Refactor(m) {
		t.Fatal("refactor broke down on an SPD matrix")
	}

	// Refill the same pattern with indefinite values: Refactor must report
	// breakdown, matching NewIC0's nil on the same matrix.
	b.Reset()
	b.AddSym(0, 0, -4)
	b.AddSym(1, 1, -4)
	b.AddSym(0, 1, 1)
	if !sym.Refill(m, b) {
		t.Fatal("refill rejected")
	}
	if f.Refactor(m) {
		t.Fatal("refactor succeeded on a negative-definite matrix")
	}
	if NewIC0(m) != nil {
		t.Fatal("NewIC0 succeeded on a negative-definite matrix")
	}
}

func TestIC0MissingDiagonalIsBreakdown(t *testing.T) {
	b := NewBuilder(2)
	b.AddSym(0, 1, 1) // no diagonal entries at all
	m := b.Build()
	if NewIC0(m) != nil {
		t.Fatal("NewIC0 succeeded with no stored diagonal")
	}
}

func TestPrecondResolveAndParse(t *testing.T) {
	if Auto.Resolve(AutoIC0Threshold-1) != Jacobi || Auto.Resolve(AutoIC0Threshold) != IC0 {
		t.Fatal("Auto threshold resolution wrong")
	}
	if Jacobi.Resolve(1<<20) != Jacobi || IC0.Resolve(1) != IC0 {
		t.Fatal("explicit preconditioners must resolve to themselves")
	}
	for _, tc := range []struct {
		in   string
		want Preconditioner
		ok   bool
	}{
		{"jacobi", Jacobi, true}, {"", Auto, true},
		{"ic0", IC0, true}, {"auto", Auto, true}, {"cholesky", Auto, false},
	} {
		p, ok := ParsePreconditioner(tc.in)
		if p != tc.want || ok != tc.ok {
			t.Errorf("ParsePreconditioner(%q) = %v,%v want %v,%v", tc.in, p, ok, tc.want, tc.ok)
		}
	}
	if Auto.String() != "auto" {
		t.Errorf("Auto tag %q", Auto.String())
	}
}

func TestAutoPrecondSmallSystemStaysJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	n := 50
	m, _, _, _ := buildSPDSymbolic(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	res, err := SolveCG(m, x, b, CGOptions{Tol: 1e-10, Precond: Auto})
	if err != nil {
		t.Fatal(err)
	}
	if res.Precond != Jacobi {
		t.Fatalf("Auto on %d unknowns resolved to %v, want jacobi", n, res.Precond)
	}
}
