package sparse

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/obsv"
)

// testSystem builds a small SPD tridiagonal system.
func testSystem(n int) (*CSR, []float64) {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i+1 < n {
			b.AddSym(i, i+1, -1)
		}
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%7) + 1
	}
	return b.Build(), rhs
}

func TestSolveCGMetrics(t *testing.T) {
	reg := obsv.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)

	m, rhs := testSystem(50)
	x := make([]float64, 50)
	res, err := SolveCG(m, x, rhs, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations == 0 {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.Elapsed <= 0 {
		t.Fatalf("Elapsed = %v, want > 0", res.Elapsed)
	}
	if res.Residual <= 0 || res.Residual > 1e-10 {
		t.Fatalf("Residual = %g, want in (0, 1e-10]", res.Residual)
	}

	// A starved MaxIter forces non-convergence and must be counted.
	x2 := make([]float64, 50)
	_, err = SolveCG(m, x2, rhs, CGOptions{Tol: 1e-14, MaxIter: 2})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("want ErrNotConverged, got %v", err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`sparse_cg_solves_total{precond="jacobi"} 2`,
		`sparse_cg_nonconverged_total{precond="jacobi"} 1`,
		`sparse_cg_iterations_total{precond="jacobi"}`,
		`sparse_cg_seconds_count{precond="jacobi"} 2`,
		`sparse_cg_residual_count{precond="jacobi"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `sparse_cg_solves_total{precond="ic0"} 0`) == false {
		t.Errorf("ic0 family should be registered at zero:\n%s", out)
	}
}

func TestSolveCGMetricsDisabled(t *testing.T) {
	EnableMetrics(nil)
	m, rhs := testSystem(20)
	x := make([]float64, 20)
	res, err := SolveCG(m, x, rhs, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatalf("Elapsed must be measured even without a registry, got %v", res.Elapsed)
	}
}

func TestPreconditionerString(t *testing.T) {
	if Jacobi.String() != "jacobi" || IC0.String() != "ic0" {
		t.Fatalf("tags: %q %q", Jacobi.String(), IC0.String())
	}
}
