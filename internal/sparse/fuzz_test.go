package sparse

import (
	"math"
	"testing"
)

// decodeTriplets derives a matrix dimension and a triplet sequence from raw
// fuzz bytes: 3 bytes per triplet (row, col, signed quarter-integer value),
// so the corpus freely exercises duplicates, zeros, and negative weights.
func decodeTriplets(data []byte) (n int, is, js []int, vs []float64) {
	if len(data) == 0 {
		return 1, nil, nil, nil
	}
	n = 1 + int(data[0]&7)
	data = data[1:]
	for len(data) >= 3 {
		is = append(is, int(data[0])%n)
		js = append(js, int(data[1])%n)
		vs = append(vs, float64(int8(data[2]))/4)
		data = data[3:]
	}
	return n, is, js, vs
}

func fillBuilder(n int, is, js []int, vs []float64) *Builder {
	b := NewBuilder(n)
	for k := range is {
		b.Add(is[k], js[k], vs[k])
	}
	return b
}

// sameCSR reports bitwise equality of pattern and values.
func sameCSR(a, b *CSR) bool {
	if a.n != b.n || len(a.cols) != len(b.cols) {
		return false
	}
	for i := range a.rowPtr {
		if a.rowPtr[i] != b.rowPtr[i] {
			return false
		}
	}
	for k := range a.cols {
		if a.cols[k] != b.cols[k] ||
			math.Float64bits(a.vals[k]) != math.Float64bits(b.vals[k]) {
			return false
		}
	}
	return true
}

// FuzzSymbolicRefill drives the symbolic-assembly fast path against the
// one-shot Build on arbitrary triplet streams. Invariants:
//
//  1. Reset + re-add + Refill reproduces the symbolically built matrix
//     bit-for-bit (the hot-path contract qp.Assemble relies on).
//  2. Refill with a second value set is bit-identical to a fresh
//     BuildSymbolic over those values: the pattern depends only on the
//     insertion sequence.
//  3. Every entry Build keeps appears in the symbolic pattern, and all
//     At lookups agree within roundoff (Build may drop exact-zero merges
//     and sums duplicates in sorted rather than insertion order).
//  4. Changing the triplet shape makes Refill report false instead of
//     silently scattering into the wrong slots.
//  5. IC0 refactorization through a cached pattern is bit-identical to a
//     fresh factorization of the refilled matrix (the hot-path contract
//     qp's preconditioner cache relies on), on an SPD symmetrization of
//     the fuzzed triplets.
func FuzzSymbolicRefill(f *testing.F) {
	f.Add([]byte{3, 0, 1, 8, 1, 0, 8, 2, 2, 16})           // small symmetric-ish
	f.Add([]byte{0, 0, 0, 4, 0, 0, 252})                   // duplicate that cancels to zero
	f.Add([]byte{7, 5, 5, 1, 5, 5, 1, 3, 5, 255, 5, 3, 7}) // duplicates + off-diagonals
	f.Fuzz(func(t *testing.T, data []byte) {
		n, is, js, vs := decodeTriplets(data)

		m1 := fillBuilder(n, is, js, vs).Build()
		b := fillBuilder(n, is, js, vs)
		m2, sym := b.BuildSymbolic()

		// (1) Reset, re-add the same triplets, Refill: bit-identical.
		snapshot := &CSR{n: m2.n, rowPtr: m2.rowPtr, cols: m2.cols,
			vals: append([]float64(nil), m2.vals...)}
		b.Reset()
		for k := range is {
			b.Add(is[k], js[k], vs[k])
		}
		if !sym.Refill(m2, b) {
			t.Fatal("Refill rejected the identical triplet shape")
		}
		if !sameCSR(m2, snapshot) {
			t.Fatal("Refill with identical values is not bit-identical to BuildSymbolic")
		}

		// (2) Refill with different values == fresh BuildSymbolic of them.
		vs2 := make([]float64, len(vs))
		for k, v := range vs {
			vs2[k] = 2*v + 0.25
		}
		b.Reset()
		for k := range is {
			b.Add(is[k], js[k], vs2[k])
		}
		if !sym.Refill(m2, b) {
			t.Fatal("Refill rejected same-shaped triplets with new values")
		}
		m3, _ := fillBuilder(n, is, js, vs2).BuildSymbolic()
		if !sameCSR(m2, m3) {
			t.Fatal("Refill with new values diverges from fresh BuildSymbolic")
		}

		// (3) Fresh Build agrees with the symbolic matrix entrywise.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				got, want := snapshot.At(i, j), m1.At(i, j)
				if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
					t.Fatalf("At(%d,%d): symbolic %g vs Build %g", i, j, got, want)
				}
			}
		}
		if m1.NNZ() > snapshot.NNZ() {
			t.Fatalf("Build stores %d entries, symbolic pattern only %d",
				m1.NNZ(), snapshot.NNZ())
		}

		// (4) A shape change must be detected.
		b.Reset()
		for k := range is {
			b.Add(is[k], js[k], vs[k])
		}
		b.Add(0, 0, 1) // extra triplet: row 0 is now longer than the pattern
		if sym.Refill(m2, b) {
			t.Fatal("Refill accepted a longer triplet sequence")
		}

		// (5) IC0 refactorization through a cached pattern == fresh factor
		// of the refilled matrix, bitwise. The fuzzed triplets are
		// symmetrized into a diagonally dominant SPD spring system so the
		// factorization is expected to exist; if it still breaks down, the
		// cached pattern and the fresh factorization must at least agree
		// that it did.
		addSPD := func(sb *Builder, scale float64) {
			for k := range is {
				if is[k] == js[k] {
					continue
				}
				w := (math.Abs(vs[k]) + 0.25) * scale
				sb.AddSym(is[k], js[k], -w)
				sb.Add(is[k], is[k], w)
				sb.Add(js[k], js[k], w)
			}
			for i := 0; i < n; i++ {
				sb.Add(i, i, 1)
			}
		}
		sb := NewBuilder(n)
		addSPD(sb, 1)
		sm, ssym := sb.BuildSymbolic()
		pat := NewIC0Pattern(sm)
		for round, scale := range []float64{1, 1.75} {
			if round > 0 {
				sb.Reset()
				addSPD(sb, scale)
				if !ssym.Refill(sm, sb) {
					t.Fatal("SPD refill rejected")
				}
			}
			ok := pat.Refactor(sm)
			fresh := NewIC0(sm)
			if ok != (fresh != nil) {
				t.Fatalf("round %d: Refactor ok=%v but NewIC0 nil=%v", round, ok, fresh == nil)
			}
			if !ok {
				continue
			}
			if !sameFactor(pat, fresh) {
				t.Fatalf("round %d: refactor-vs-fresh-factor not bit-identical", round)
			}
			// The factor must actually precondition: applying it to a
			// finite vector stays finite.
			r := make([]float64, n)
			z := make([]float64, n)
			for i := range r {
				r[i] = float64(i%5) - 2
			}
			pat.Apply(z, r)
			for i, v := range z {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("round %d: Apply produced non-finite z[%d]=%v", round, i, v)
				}
			}
		}
	})
}
