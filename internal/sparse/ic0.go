package sparse

import "math"

// IC0Factor is a zero-fill incomplete Cholesky factorization: L has exactly
// the sparsity of the matrix's lower triangle and L·Lᵀ ≈ M. GORDIAN-era
// analytical placers ran conjugate gradients with exactly this
// preconditioner (ICCG); it typically halves the iteration count of Jacobi
// on placement matrices at the cost of a sequential triangular solve per
// iteration.
//
// The factor is split symbolically/numerically the same way Builder/
// Symbolic split matrix assembly: NewIC0Pattern records the strict-lower
// pattern and the value-source mapping once, and Refactor re-derives the
// numeric factor from the matrix's current values with no allocation and no
// position lookups — the dot products walk the two sorted rows directly.
// Placement matrices are refilled (same pattern, new spring weights) on
// every transformation, so the steady state is one Refactor per assembly.
type IC0Factor struct {
	n      int
	rowPtr []int32
	cols   []int32 // column indices, strictly below the diagonal, ascending
	vals   []float64
	diag   []float64 // L's diagonal entries

	// src maps factor entry k to the matrix value index it refills from;
	// dsrc maps row i to its diagonal's matrix value index (-1 when the
	// row has no stored diagonal, which Refactor reports as a breakdown).
	src  []int32
	dsrc []int32
}

// NewIC0Pattern records the strict-lower-triangle pattern of m and the
// value-source mapping Refactor scatters from. The pattern stays valid for
// any matrix refilled through the same sparse.Symbolic (identical rowPtr and
// cols); the values are free to change.
func NewIC0Pattern(m *CSR) *IC0Factor {
	n := m.N()
	f := &IC0Factor{
		n:      n,
		rowPtr: make([]int32, n+1),
		diag:   make([]float64, n),
		dsrc:   make([]int32, n),
	}
	for i := 0; i < n; i++ {
		f.dsrc[i] = -1
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			switch c := m.cols[k]; {
			case c < i:
				f.cols = append(f.cols, int32(c))
				f.src = append(f.src, int32(k))
			case c == i:
				f.dsrc[i] = int32(k)
			}
		}
		f.rowPtr[i+1] = int32(len(f.cols))
	}
	f.vals = make([]float64, len(f.cols))
	return f
}

// NewIC0 factors m in one shot. Returns nil when the factorization breaks
// down (a non-positive pivot), in which case the caller should fall back to
// Jacobi preconditioning.
func NewIC0(m *CSR) *IC0Factor {
	f := NewIC0Pattern(m)
	if !f.Refactor(m) {
		return nil
	}
	return f
}

// Refactor recomputes the numeric factor from m's current values through
// the recorded pattern. m must have the exact sparsity NewIC0Pattern saw
// (the Symbolic.Refill contract); only the values may differ. It reports
// false on breakdown (a non-positive or NaN pivot) — the factor's values
// are then unspecified and the caller must fall back to Jacobi until the
// next refill. Refactor allocates nothing.
func (f *IC0Factor) Refactor(m *CSR) bool {
	// Load the raw strict-lower values; row i's raw values are consumed
	// exactly when row i is eliminated, and rows j < i already hold L.
	mv := m.vals
	for k, s := range f.src {
		f.vals[k] = mv[s]
	}
	rp, cols, vals, diag := f.rowPtr, f.cols, f.vals, f.diag
	for i := 0; i < f.n; i++ {
		lo, hi := rp[i], rp[i+1]
		// Off-diagonal entries of row i, in ascending column order.
		for k := lo; k < hi; k++ {
			j := cols[k]
			s := vals[k]
			// s -= Σ_{t<j} L[i][t]·L[j][t] over shared sparsity: both rows
			// are sorted, so the intersection is a two-pointer merge — row
			// i's entries before k all have column < j, and row j's entries
			// are strictly below j by construction.
			a, b := lo, rp[j]
			bHi := rp[j+1]
			for a < k && b < bHi {
				switch ca, cb := cols[a], cols[b]; {
				case ca == cb:
					s -= vals[a] * vals[b]
					a++
					b++
				case ca < cb:
					a++
				default:
					b++
				}
			}
			d := diag[j]
			if d == 0 {
				return false
			}
			vals[k] = s / d
		}
		// Diagonal pivot.
		var d float64
		if di := f.dsrc[i]; di >= 0 {
			d = mv[di]
		}
		for k := lo; k < hi; k++ {
			d -= vals[k] * vals[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return false
		}
		diag[i] = math.Sqrt(d)
	}
	return true
}

// N returns the factored dimension.
func (f *IC0Factor) N() int { return f.n }

// Apply solves L·Lᵀ·z = r (the preconditioner application). It only reads
// the factor, so concurrent solves (the x/y axis pair) may share one.
func (f *IC0Factor) Apply(z, r []float64) {
	rp, cols, vals, diag := f.rowPtr, f.cols, f.vals, f.diag
	// Forward: L·y = r.
	for i := 0; i < f.n; i++ {
		s := r[i]
		for k := rp[i]; k < rp[i+1]; k++ {
			s -= vals[k] * z[cols[k]]
		}
		z[i] = s / diag[i]
	}
	// Backward: Lᵀ·z = y.
	for i := f.n - 1; i >= 0; i-- {
		z[i] /= diag[i]
		for k := rp[i]; k < rp[i+1]; k++ {
			z[cols[k]] -= vals[k] * z[i]
		}
	}
}
