package sparse

import "math"

// ic0 is a zero-fill incomplete Cholesky factorization: L has exactly the
// sparsity of the matrix's lower triangle and L·Lᵀ ≈ M. GORDIAN-era
// analytical placers ran conjugate gradients with exactly this
// preconditioner (ICCG); it typically halves the iteration count of Jacobi
// on placement matrices at the cost of a sequential triangular solve per
// iteration.
type ic0 struct {
	n      int
	rowPtr []int
	cols   []int // column indices, strictly below the diagonal, ascending
	vals   []float64
	diag   []float64 // L's diagonal entries
}

// newIC0 factors m. Returns nil when the factorization breaks down (a
// non-positive pivot), in which case the caller should fall back to Jacobi.
func newIC0(m *CSR) *ic0 {
	n := m.N()
	f := &ic0{n: n, rowPtr: make([]int, n+1), diag: make([]float64, n)}
	// Gather the strict lower triangle.
	for i := 0; i < n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			if m.cols[k] < i {
				f.cols = append(f.cols, m.cols[k])
				f.vals = append(f.vals, m.vals[k])
			}
		}
		f.rowPtr[i+1] = len(f.cols)
	}
	// Column-index lookup per row for the dot products.
	pos := make(map[[2]int]int, len(f.cols))
	for i := 0; i < n; i++ {
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			pos[[2]int{i, f.cols[k]}] = k
		}
	}
	for i := 0; i < n; i++ {
		// Off-diagonal entries of row i.
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			j := f.cols[k]
			s := f.vals[k]
			// s -= Σ_{t<j} L[i][t]·L[j][t] over shared sparsity.
			for kk := f.rowPtr[i]; kk < k; kk++ {
				t := f.cols[kk]
				if jj, ok := pos[[2]int{j, t}]; ok {
					s -= f.vals[kk] * f.vals[jj]
				}
			}
			if f.diag[j] == 0 {
				return nil
			}
			f.vals[k] = s / f.diag[j]
		}
		// Diagonal.
		d := m.At(i, i)
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			d -= f.vals[k] * f.vals[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil
		}
		f.diag[i] = math.Sqrt(d)
	}
	return f
}

// apply solves L·Lᵀ·z = r (the preconditioner application).
func (f *ic0) apply(z, r []float64) {
	// Forward: L·y = r.
	for i := 0; i < f.n; i++ {
		s := r[i]
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			s -= f.vals[k] * z[f.cols[k]]
		}
		z[i] = s / f.diag[i]
	}
	// Backward: Lᵀ·z = y.
	for i := f.n - 1; i >= 0; i-- {
		z[i] /= f.diag[i]
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			z[f.cols[k]] -= f.vals[k] * z[i]
		}
	}
}
