package sparse

// Symbolic assembly support: placement matrices are re-assembled hundreds
// of times per run with an identical sparsity pattern (the netlist topology
// fixes which (row, col) pairs exist; only the spring weights change).
// BuildSymbolic performs the triplet sort/merge once and records, for every
// triplet insertion slot, the stored entry it folds into; Refill then turns
// each subsequent assembly into a straight value scatter with no sorting
// and no allocation.

// Reset clears the builder's accumulated entries while keeping the
// allocated row storage, so a numeric re-assembly of the same pattern does
// not re-allocate.
func (b *Builder) Reset() {
	for i := range b.rows {
		b.rows[i] = b.rows[i][:0]
	}
}

// Symbolic is the reusable half of Build: the triplet→entry mapping of one
// compaction. It stays valid for any later Builder state that adds the same
// (row, col) sequence — the values are free to differ.
type Symbolic struct {
	n     int
	slots [][]int32 // shaped like Builder.rows at BuildSymbolic time
}

// BuildSymbolic compacts the triplets like Build and additionally returns
// the mapping needed by Refill. Unlike Build it keeps entries whose merged
// value is exactly zero: the pattern must depend only on the insertion
// sequence, never on the values, or a later Refill could need a slot that
// was dropped. Merged duplicate values are summed in insertion order, the
// same order Refill uses, so a refilled matrix is bit-identical to a
// symbolically built one given the same triplets.
func (b *Builder) BuildSymbolic() (*CSR, *Symbolic) {
	m := &CSR{n: b.n, rowPtr: make([]int, b.n+1)}
	sym := &Symbolic{n: b.n, slots: make([][]int32, b.n)}
	nnz := 0
	for _, r := range b.rows {
		nnz += len(r)
	}
	m.cols = make([]int, 0, nnz)
	var perm []int
	for i, r := range b.rows {
		perm = perm[:0]
		for k := range r {
			perm = append(perm, k)
		}
		insertionSort(perm, r)
		slots := make([]int32, len(r))
		for k := 0; k < len(perm); {
			j := r[perm[k]].col
			slot := int32(len(m.cols))
			for ; k < len(perm) && r[perm[k]].col == j; k++ {
				slots[perm[k]] = slot
			}
			m.cols = append(m.cols, j)
		}
		sym.slots[i] = slots
		m.rowPtr[i+1] = len(m.cols)
	}
	m.vals = make([]float64, len(m.cols))
	if !sym.Refill(m, b) {
		panic("sparse: BuildSymbolic self-refill failed")
	}
	return m, sym
}

// insertionSort orders perm by r[perm[k]].col. Rows are short (net degree
// plus a diagonal run) and mostly pre-sorted by construction, where
// insertion sort beats the closure-driven sort.Slice used on the one-shot
// path.
func insertionSort(perm []int, r []entry) {
	for i := 1; i < len(perm); i++ {
		p := perm[i]
		c := r[p].col
		j := i - 1
		for ; j >= 0 && r[perm[j]].col > c; j-- {
			perm[j+1] = perm[j]
		}
		perm[j+1] = p
	}
}

// Refill re-derives m's values from b's current triplets through the
// recorded pattern, skipping the sort/merge entirely. It reports false when
// b's triplet shape no longer matches the pattern (different row lengths or
// columns) — m's values are then unspecified and the caller must fall back
// to a full Build.
func (sym *Symbolic) Refill(m *CSR, b *Builder) bool {
	if b.n != sym.n || m.n != sym.n || len(b.rows) != len(sym.slots) {
		return false
	}
	for i := range m.vals {
		m.vals[i] = 0
	}
	for i, r := range b.rows {
		slots := sym.slots[i]
		if len(r) != len(slots) {
			return false
		}
		for k := range r {
			s := slots[k]
			if int(s) >= len(m.cols) || m.cols[s] != r[k].col {
				return false
			}
			m.vals[s] += r[k].val
		}
	}
	return true
}
