package speedtd

import (
	"testing"

	"repro/internal/netgen"
	"repro/internal/timing"
)

func TestPlaceRunsAndWeights(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "sp", Cells: 300, Nets: 400, Rows: 8, Seed: 61})
	res, err := Place(nl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Before <= 0 || res.After <= 0 || res.HPWL <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	// Weights were raised on some nets.
	boosted := 0
	for ni := range nl.Nets {
		if nl.Nets[ni].Weight > 1 {
			boosted++
		}
	}
	if boosted == 0 {
		t.Error("no net weights boosted")
	}
	// The result is better than chance: compare against the zero-length
	// lower bound sanity.
	lb := timing.LowerBound(nl, timing.DefaultParams())
	if res.After < lb {
		t.Errorf("after %v below lower bound %v", res.After, lb)
	}
}

func TestPlaceUsuallyImprovesTiming(t *testing.T) {
	improved := 0
	for seed := int64(62); seed < 65; seed++ {
		nl := netgen.Generate(netgen.Config{Name: "sp2", Cells: 250, Nets: 330, Rows: 8, Seed: seed})
		res, err := Place(nl, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if res.After < res.Before {
			improved++
		}
	}
	if improved == 0 {
		t.Error("SPEED never improved timing across 3 seeds")
	}
}
