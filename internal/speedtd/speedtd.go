// Package speedtd implements a SPEED-style timing-driven comparison placer
// [21] (Riess/Ettelt, ISCAS'95): timing analysis on an initial analytical
// placement derives *static* net weights from slacks, and a single weighted
// re-placement follows. Unlike the paper's iterative criticality scheme,
// the weights are decided once from early (possibly inaccurate)
// information — exactly the contrast §6.2 draws.
package speedtd

import (
	"math"
	"time"

	"repro/internal/gordian"
	"repro/internal/netlist"
	"repro/internal/obsv"
	"repro/internal/timing"
)

// Config controls the baseline.
type Config struct {
	// Alpha scales the slack-derived weight boost (default 4).
	Alpha float64
	// Gordian configures both placement passes.
	Gordian gordian.Config
	// Params are the timing constants.
	Params timing.Params
}

// Result summarizes a run.
type Result struct {
	Before  float64 // longest path after the unweighted pass (s)
	After   float64 // longest path after the weighted pass (s)
	HPWL    float64
	Runtime time.Duration
}

// Place runs the two-pass SPEED flow on nl.
func Place(nl *netlist.Netlist, cfg Config) (Result, error) {
	if cfg.Alpha <= 0 {
		cfg.Alpha = 4
	}
	start := obsv.StartTimer()

	// Pass 1: unweighted analytical placement.
	if _, err := gordian.Place(nl, cfg.Gordian); err != nil {
		return Result{}, err
	}
	analyzer := timing.NewAnalyzer(nl, cfg.Params)
	rep := analyzer.Analyze()
	before := rep.MaxDelay

	// Static weights: nets with small slack get boosted proportionally to
	// their criticality 1 − slack/Tmax.
	if before > 0 {
		for ni := range nl.Nets {
			s := rep.NetSlack[ni]
			if math.IsInf(s, 1) {
				continue
			}
			crit := 1 - s/before
			if crit < 0 {
				crit = 0
			}
			if crit > 1 {
				crit = 1
			}
			nl.Nets[ni].Weight *= 1 + cfg.Alpha*crit
		}
	}

	// Pass 2: weighted re-placement.
	if _, err := gordian.Place(nl, cfg.Gordian); err != nil {
		return Result{}, err
	}
	after := analyzer.Analyze().MaxDelay
	return Result{
		Before:  before,
		After:   after,
		HPWL:    nl.HPWL(),
		Runtime: start.Elapsed(),
	}, nil
}
