package qp

import (
	"repro/internal/netlist"
	"repro/internal/sparse"
)

// Assembler caches the symbolic (pattern) half of Build across repeated
// assemblies of the same netlist. The iterative algorithm rebuilds
// C·p + d + e = 0 on every placement transformation, but the sparsity
// pattern is fixed by the netlist topology; only the spring weights change
// (per iteration under linearization, on explicit re-weighting otherwise).
// After the first full build, each Assemble is a numeric refill into the
// cached CSR — no sorting, no merging, no allocation — and when the values
// cannot have changed at all (clique model, no linearization, identical net
// weights) the cached system is returned untouched.
type Assembler struct {
	nl   *netlist.Netlist
	opts Options

	b   *sparse.Builder
	sym *sparse.Symbolic
	sys *System

	// lastWeights backs the full-skip test: with the clique model and no
	// linearization, C and d depend only on the net weights and the (never
	// moving) fixed pins, so unchanged weights mean an unchanged system.
	// Position-dependent models (linearize, star centroids) always refill.
	lastWeights []float64

	// Topology fingerprint guarding the cache; a changed cell or net count
	// forces a fresh symbolic build.
	cells, nets int
}

// NewAssembler prepares a cached assembler for nl. The netlist may move
// freely and change net weights between Assemble calls; structural edits
// (adding/removing cells or nets, toggling Fixed flags) require a new
// Assembler — cell/net count changes are detected and rebuilt automatically,
// same-count structural swaps are not.
func NewAssembler(nl *netlist.Netlist, opts Options) *Assembler {
	return &Assembler{nl: nl, opts: normalize(opts)}
}

// Assemble returns the system for the netlist's current state. The returned
// *System is owned by the assembler and overwritten by the next Assemble.
func (a *Assembler) Assemble() *System {
	nl := a.nl
	if a.sys != nil && (len(nl.Cells) != a.cells || len(nl.Nets) != a.nets) {
		a.sys, a.sym, a.b, a.lastWeights = nil, nil, nil, nil
	}
	if a.sys == nil {
		a.rebuild()
		return a.sys
	}
	if a.opts.Model == Clique && !a.opts.Linearize && a.weightsUnchanged() {
		return a.sys
	}
	// Numeric refill: replay the assembly into the reused builder and
	// scatter the values through the cached pattern.
	a.b.Reset()
	a.sys.assembleInto(a.b)
	if !a.sym.Refill(a.sys.C, a.b) {
		// The insertion sequence diverged from the pattern (structural
		// change at constant counts); fall back to a fresh build.
		a.rebuild()
		return a.sys
	}
	a.captureWeights()
	return a.sys
}

func (a *Assembler) rebuild() {
	s := newSkeleton(a.nl, a.opts)
	a.b = sparse.NewBuilder(s.N())
	s.assembleInto(a.b)
	s.C, a.sym = a.b.BuildSymbolic()
	a.sys = s
	a.cells = len(a.nl.Cells)
	a.nets = len(a.nl.Nets)
	a.captureWeights()
}

func (a *Assembler) captureWeights() {
	if a.lastWeights == nil || len(a.lastWeights) != len(a.nl.Nets) {
		a.lastWeights = make([]float64, len(a.nl.Nets))
	}
	for i := range a.nl.Nets {
		a.lastWeights[i] = a.nl.Nets[i].Weight
	}
}

func (a *Assembler) weightsUnchanged() bool {
	if len(a.lastWeights) != len(a.nl.Nets) {
		return false
	}
	for i := range a.nl.Nets {
		//lint:ignore floatcmp cache invalidation must be bit-exact: any weight change, however small, has to trigger a refill
		if a.nl.Nets[i].Weight != a.lastWeights[i] {
			return false
		}
	}
	return true
}
