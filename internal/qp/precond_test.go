package qp

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/sparse"
)

// TestIC0SolveMatchesJacobiSolution: both preconditioners solve the same
// system to the same tolerance, so the placements they produce must agree
// within the solve tolerance.
func TestIC0SolveMatchesJacobiSolution(t *testing.T) {
	opt := func(p sparse.Preconditioner) sparse.CGOptions {
		return sparse.CGOptions{Tol: 1e-10, Precond: p}
	}
	run := func(p sparse.Preconditioner) ([]geom.Point, SolveResult) {
		nl := netgen.Generate(netgen.Config{Name: "pc", Cells: 400, Nets: 520, Rows: 8, Seed: 61})
		sys := Build(nl, Options{})
		res, err := sys.Solve(nil, opt(p))
		if err != nil {
			t.Fatal(err)
		}
		pos := make([]geom.Point, len(nl.Cells))
		for ci := range nl.Cells {
			pos[ci] = nl.Cells[ci].Pos
		}
		return pos, res
	}
	jpos, jres := run(sparse.Jacobi)
	cpos, cres := run(sparse.IC0)
	if jres.X.Precond != sparse.Jacobi || cres.X.Precond != sparse.IC0 {
		t.Fatalf("effective preconditioners: %v / %v", jres.X.Precond, cres.X.Precond)
	}
	diag := 0.0
	for ci := range jpos {
		diag = math.Max(diag, math.Max(math.Abs(jpos[ci].X), math.Abs(jpos[ci].Y)))
	}
	for ci := range jpos {
		if d := jpos[ci].Sub(cpos[ci]).Norm(); d > 1e-5*(1+diag) {
			t.Fatalf("cell %d: jacobi %v vs ic0 %v", ci, jpos[ci], cpos[ci])
		}
	}
	if cres.X.Iterations >= jres.X.Iterations {
		t.Errorf("IC0 x solve took %d iterations, Jacobi %d — preconditioner had no effect",
			cres.X.Iterations, jres.X.Iterations)
	}
	// The concurrent pair's wall time must be recorded and bounded by the
	// per-axis sum.
	if cres.PairWall <= 0 || cres.PairWall > cres.X.Elapsed+cres.Y.Elapsed+cres.PairWall/2 {
		t.Errorf("PairWall %v implausible vs X %v + Y %v", cres.PairWall, cres.X.Elapsed, cres.Y.Elapsed)
	}
}

// TestRefilledFactorMatchesFreshAssembler: after a refill through the
// cached pattern, the system's cached IC0 factor must make the solves
// bit-identical to a brand-new assembler at the same netlist state —
// the refill-vs-fresh-factor determinism contract.
func TestRefilledFactorMatchesFreshAssembler(t *testing.T) {
	opts := Options{Linearize: true}
	cg := sparse.CGOptions{Tol: 1e-8, Precond: sparse.IC0}

	nl := netgen.Generate(netgen.Config{Name: "rf", Cells: 300, Nets: 380, Rows: 8, Seed: 62})
	a := NewAssembler(nl, opts)
	sys := a.Assemble()
	if _, err := sys.Solve(nil, cg); err != nil { // primes pattern + factor
		t.Fatal(err)
	}
	// Perturb positions (changes linearized weights), refill, re-solve.
	for ci := range nl.Cells {
		if !nl.Cells[ci].Fixed {
			nl.Cells[ci].Pos.X += float64(ci%7) - 3
			nl.Cells[ci].Pos.Y += float64(ci%5) - 2
		}
	}
	snap := nl.Snapshot()
	sys = a.Assemble() // numeric refill; factor refreshes lazily on solve
	resRefill, err := sys.Solve(nil, cg)
	if err != nil {
		t.Fatal(err)
	}
	refilled := make([]geom.Point, len(nl.Cells))
	for ci := range nl.Cells {
		refilled[ci] = nl.Cells[ci].Pos
	}

	// Fresh assembler at the identical pre-solve state: same insertion
	// sequence → bit-identical CSR (Symbolic.Refill contract) → the fresh
	// factor and cached refactored factor are bit-identical → so are the
	// solves.
	nl.Restore(snap)
	fresh := NewAssembler(nl, opts).Assemble()
	resFresh, err := fresh.Solve(nil, cg)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range nl.Cells {
		if nl.Cells[ci].Pos != refilled[ci] {
			t.Fatalf("cell %d: refill-path %v vs fresh-path %v", ci, refilled[ci], nl.Cells[ci].Pos)
		}
	}
	if resRefill.X.Iterations != resFresh.X.Iterations || resRefill.Y.Iterations != resFresh.Y.Iterations {
		t.Fatalf("iteration counts diverge: refill (%d,%d) vs fresh (%d,%d)",
			resRefill.X.Iterations, resRefill.Y.Iterations, resFresh.X.Iterations, resFresh.Y.Iterations)
	}
	if resRefill.X.Precond != sparse.IC0 || resFresh.X.Precond != sparse.IC0 {
		t.Fatalf("expected ic0 on both paths, got %v / %v", resRefill.X.Precond, resFresh.X.Precond)
	}
}

// TestFullSkipKeepsFactorValid: the assembler's full-skip path returns the
// cached system untouched; its factor must stay valid (no refactor, same
// solve) rather than being invalidated by the skipped assembly.
func TestFullSkipKeepsFactorValid(t *testing.T) {
	cg := sparse.CGOptions{Tol: 1e-8, Precond: sparse.IC0}
	nl := netgen.Generate(netgen.Config{Name: "fs", Cells: 200, Nets: 260, Rows: 6, Seed: 63})
	a := NewAssembler(nl, Options{}) // clique, no linearization: skippable
	sys := a.Assemble()
	if _, err := sys.SolveResidual(nil, cg); err != nil {
		t.Fatal(err)
	}
	if sys.cholDirty {
		t.Fatal("factor still dirty after a solve")
	}
	// Move cells; Assemble takes the full-skip path (same system pointer),
	// and the factor must not be marked dirty by it.
	for ci := range nl.Cells {
		if !nl.Cells[ci].Fixed {
			nl.Cells[ci].Pos.X += 2
		}
	}
	if got := a.Assemble(); got != sys {
		t.Fatal("expected the full-skip path")
	}
	if sys.cholDirty {
		t.Fatal("full skip invalidated the cached factor")
	}
	if _, err := sys.SolveResidual(nil, cg); err != nil {
		t.Fatal(err)
	}
}

// TestAutoResolvesBySystemSize: Auto must pick Jacobi for small systems
// without ever building a factor.
func TestAutoResolvesBySystemSize(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "au", Cells: 150, Nets: 200, Rows: 6, Seed: 64})
	sys := Build(nl, Options{})
	res, err := sys.Solve(nil, sparse.CGOptions{Precond: sparse.Auto})
	if err != nil {
		t.Fatal(err)
	}
	if res.X.Precond != sparse.Jacobi || res.Y.Precond != sparse.Jacobi {
		t.Fatalf("Auto on %d unknowns resolved to %v/%v", sys.N(), res.X.Precond, res.Y.Precond)
	}
	if sys.chol != nil {
		t.Fatal("Auto built an IC0 factor below the threshold")
	}
}
