package qp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netgen"
	"repro/internal/sparse"
)

// TestSystemInvariantsProperty checks, over random circuits, that the
// assembled matrix is symmetric, diagonally dominant (hence positive
// semidefinite) and that solving never moves fixed cells or produces NaNs.
func TestSystemInvariantsProperty(t *testing.T) {
	f := func(seed int64, linearize bool) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := netgen.Generate(netgen.Config{
			Name:  "prop",
			Cells: 20 + rng.Intn(120),
			Nets:  30 + rng.Intn(150),
			Rows:  2 + rng.Intn(8),
			Seed:  seed,
		})
		netgen.ScatterRandom(nl, seed+1)
		fixedBefore := nl.Snapshot()

		sys := Build(nl, Options{Linearize: linearize})
		m := sys.Matrix()
		if !m.IsSymmetric(1e-9) {
			t.Logf("seed %d: asymmetric", seed)
			return false
		}
		if !m.RowDiagonallyDominant(1e-6) {
			t.Logf("seed %d: not diagonally dominant", seed)
			return false
		}
		if _, err := sys.Solve(nil, sparse.CGOptions{}); err != nil {
			t.Logf("seed %d: solve: %v", seed, err)
			return false
		}
		for ci := range nl.Cells {
			c := &nl.Cells[ci]
			if c.Pos.X != c.Pos.X || c.Pos.Y != c.Pos.Y { // NaN
				t.Logf("seed %d: NaN position", seed)
				return false
			}
			if c.Fixed && c.Pos != fixedBefore[ci] {
				t.Logf("seed %d: fixed cell moved", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSolveDeltaZeroForceProperty: a zero force increment never moves
// anything.
func TestSolveDeltaZeroForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		nl := netgen.Generate(netgen.Config{
			Name: "zero", Cells: 30, Nets: 40, Rows: 4, Seed: seed,
		})
		netgen.ScatterRandom(nl, seed)
		before := nl.Snapshot()
		sys := Build(nl, Options{})
		if _, err := sys.SolveDelta(nil, sparse.CGOptions{}); err != nil {
			return false
		}
		after := nl.Snapshot()
		for i := range before {
			if before[i].Dist(after[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
